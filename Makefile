GO ?= go
FUZZTIME ?= 20s

.PHONY: build vet test race bench churn-bench parallel-bench fuzz check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The race target includes the traced channel-engine test, so the
# tracer/metrics layer is exercised under the race detector.
race:
	$(GO) test -race ./...

# bench runs the observability overhead benchmark and converts the
# result to BENCH_obs.json (see scripts/benchjson).
bench:
	$(GO) test -run '^$$' -bench BenchmarkObsOverhead -benchmem . | $(GO) run ./scripts/benchjson > BENCH_obs.json
	@cat BENCH_obs.json

# churn-bench measures incremental vs from-scratch single-fault deltas
# on the 100x100 mesh and records the result in BENCH_churn.json.
churn-bench:
	$(GO) test -run '^$$' -bench BenchmarkChurn -benchmem . | $(GO) run ./scripts/benchjson > BENCH_churn.json
	@cat BENCH_churn.json

# parallel-bench compares the sequential and tiled parallel engines on
# large meshes across worker counts and records the result in
# BENCH_parallel.json. Speedups need real cores: run it on a
# multi-core machine (CI uses ubuntu-latest).
parallel-bench:
	$(GO) test -run '^$$' -bench BenchmarkParallel -benchmem -timeout 30m . | $(GO) run ./scripts/benchjson > BENCH_parallel.json
	@cat BENCH_parallel.json

# fuzz runs each native fuzz target for FUZZTIME (default 20s). The
# targets check the paper's theorems plus sequential/parallel engine
# agreement, so any reported input is a real counterexample.
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzFormation$$' -fuzztime $(FUZZTIME) ./internal/core
	$(GO) test -run '^$$' -fuzz '^FuzzRegionOCP$$' -fuzztime $(FUZZTIME) ./internal/core

check: build vet test race
