GO ?= go
FUZZTIME ?= 20s

.PHONY: build vet test race bench churn-bench parallel-bench bitset-bench bench-check serve-demo fuzz check

# serve-demo smoke-tests the live telemetry side-car: it starts a real
# sweep with -serve, scrapes /healthz, /runz and /metrics while the
# sweep is in flight, then tears the run down. SERVE_ADDR can be
# overridden when 7070 is taken.
SERVE_ADDR ?= localhost:7070

serve-demo: build
	@$(GO) build -o .serve-demo-ocpsim ./cmd/ocpsim
	@./.serve-demo-ocpsim -figure 5a -reps 40 -serve $(SERVE_ADDR) -format csv > /dev/null 2>&1 & \
	pid=$$!; \
	trap 'kill $$pid 2> /dev/null; rm -f .serve-demo-ocpsim' EXIT; \
	ok=0; \
	for i in $$(seq 1 100); do \
		curl -sf http://$(SERVE_ADDR)/healthz > /dev/null 2>&1 && { ok=1; break; }; \
		kill -0 $$pid 2> /dev/null || break; \
		sleep 0.1; \
	done; \
	[ $$ok -eq 1 ] || { echo "serve-demo: telemetry endpoint never came up" >&2; exit 1; }; \
	echo "== /healthz"; curl -sf http://$(SERVE_ADDR)/healthz; echo; \
	echo "== /runz";    curl -sf http://$(SERVE_ADDR)/runz; echo; \
	echo "== /metrics"; curl -sf http://$(SERVE_ADDR)/metrics | grep -E '^(sweep_|core_|simnet_|ocpmesh_run_info)' | head -20

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The race target includes the traced channel-engine test, so the
# tracer/metrics layer is exercised under the race detector.
race:
	$(GO) test -race ./...

# bench runs the observability overhead benchmark and converts the
# result to BENCH_obs.json (see scripts/benchjson).
bench:
	$(GO) test -run '^$$' -bench BenchmarkObsOverhead -benchmem . | $(GO) run ./scripts/benchjson > BENCH_obs.json
	@cat BENCH_obs.json

# churn-bench measures incremental vs from-scratch single-fault deltas
# on the 100x100 mesh and records the result in BENCH_churn.json.
churn-bench:
	$(GO) test -run '^$$' -bench BenchmarkChurn -benchmem . | $(GO) run ./scripts/benchjson > BENCH_churn.json
	@cat BENCH_churn.json

# parallel-bench compares the sequential and tiled parallel engines on
# large meshes across worker counts and records the result in
# BENCH_parallel.json. Speedups need real cores: run it on a
# multi-core machine (CI uses ubuntu-latest).
parallel-bench:
	$(GO) test -run '^$$' -bench BenchmarkParallel -benchmem -timeout 30m . | $(GO) run ./scripts/benchjson > BENCH_parallel.json
	@cat BENCH_parallel.json

# bitset-bench measures the word-parallel (SWAR) bitset engine on the
# BenchmarkParallel workload and records the result in
# BENCH_bitset.json. Unlike parallel-bench its headline speedup is
# per-core (64 labels per word op), so single-CPU numbers are
# meaningful.
bitset-bench:
	$(GO) test -run '^$$' -bench BenchmarkBitset -benchmem -timeout 30m . | $(GO) run ./scripts/benchjson > BENCH_bitset.json
	@cat BENCH_bitset.json

# bench-check is the local perf regression gate: it regenerates the
# fast observability benchmark into a scratch file and compares it
# against the committed BENCH_obs.json via octrace (fails on a >25%
# median ns/op regression). CI's bench-check job runs the same gate
# over all committed BENCH_*.json baselines.
bench-check:
	$(GO) test -run '^$$' -bench BenchmarkObsOverhead -benchmem . | $(GO) run ./scripts/benchjson > .bench-obs-fresh.json
	$(GO) run ./cmd/octrace bench check -tol 0.25 BENCH_obs.json .bench-obs-fresh.json
	@rm -f .bench-obs-fresh.json

# fuzz runs each native fuzz target for FUZZTIME (default 20s). The
# targets check the paper's theorems plus sequential/parallel engine
# agreement, so any reported input is a real counterexample.
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzFormation$$' -fuzztime $(FUZZTIME) ./internal/core
	$(GO) test -run '^$$' -fuzz '^FuzzRegionOCP$$' -fuzztime $(FUZZTIME) ./internal/core

check: build vet test race
