GO ?= go

.PHONY: build vet test race bench churn-bench check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The race target includes the traced channel-engine test, so the
# tracer/metrics layer is exercised under the race detector.
race:
	$(GO) test -race ./...

# bench runs the observability overhead benchmark and converts the
# result to BENCH_obs.json (see scripts/benchjson).
bench:
	$(GO) test -run '^$$' -bench BenchmarkObsOverhead -benchmem . | $(GO) run ./scripts/benchjson > BENCH_obs.json
	@cat BENCH_obs.json

# churn-bench measures incremental vs from-scratch single-fault deltas
# on the 100x100 mesh and records the result in BENCH_churn.json.
churn-bench:
	$(GO) test -run '^$$' -bench BenchmarkChurn -benchmem . | $(GO) run ./scripts/benchjson > BENCH_churn.json
	@cat BENCH_churn.json

check: build vet test race
