GO ?= go

.PHONY: build vet test race bench check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The race target includes the traced channel-engine test, so the
# tracer/metrics layer is exercised under the race detector.
race:
	$(GO) test -race ./...

# bench runs the observability overhead benchmark and converts the
# result to BENCH_obs.json (see scripts/benchjson).
bench:
	$(GO) test -run '^$$' -bench BenchmarkObsOverhead -benchmem . | $(GO) run ./scripts/benchjson > BENCH_obs.json
	@cat BENCH_obs.json

check: build vet test race
