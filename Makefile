GO ?= go
FUZZTIME ?= 20s

.PHONY: build vet test race bench churn-bench parallel-bench bitset-bench bitset-scale-bench bench-check overhead-bench overhead-gate latency-overhead converge-demo serve-demo serve-bench route-bench route-gate fuzz check

# serve-demo smoke-tests the live telemetry side-car: it starts a real
# sweep with -serve, scrapes /healthz, /runz and /metrics while the
# sweep is in flight, then tears the run down. SERVE_ADDR can be
# overridden when 7070 is taken.
SERVE_ADDR ?= localhost:7070

serve-demo: build
	@$(GO) build -o .serve-demo-ocpsim ./cmd/ocpsim
	@./.serve-demo-ocpsim -figure 5a -reps 40 -serve $(SERVE_ADDR) -format csv > /dev/null 2>&1 & \
	pid=$$!; \
	trap 'kill $$pid 2> /dev/null; rm -f .serve-demo-ocpsim' EXIT; \
	ok=0; \
	for i in $$(seq 1 100); do \
		curl -sf http://$(SERVE_ADDR)/healthz > /dev/null 2>&1 && { ok=1; break; }; \
		kill -0 $$pid 2> /dev/null || break; \
		sleep 0.1; \
	done; \
	[ $$ok -eq 1 ] || { echo "serve-demo: telemetry endpoint never came up" >&2; exit 1; }; \
	echo "== /healthz"; curl -sf http://$(SERVE_ADDR)/healthz; echo; \
	echo "== /runz";    curl -sf http://$(SERVE_ADDR)/runz; echo; \
	echo "== /metrics"; curl -sf http://$(SERVE_ADDR)/metrics | grep -E '^(sweep_|core_|simnet_|ocpmesh_run_info)' | head -20

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The race target includes the traced channel-engine test, so the
# tracer/metrics layer is exercised under the race detector.
race:
	$(GO) test -race ./...

# bench runs the observability overhead benchmark and converts the
# result to BENCH_obs.json (see scripts/benchjson).
bench:
	$(GO) test -run '^$$' -bench BenchmarkObsOverhead -benchmem . | $(GO) run ./scripts/benchjson > BENCH_obs.json
	@cat BENCH_obs.json

# churn-bench measures incremental vs from-scratch single-fault deltas
# on the 100x100 mesh and records the result in BENCH_churn.json.
churn-bench:
	$(GO) test -run '^$$' -bench BenchmarkChurn -benchmem . | $(GO) run ./scripts/benchjson > BENCH_churn.json
	@cat BENCH_churn.json

# parallel-bench compares the sequential and tiled parallel engines on
# large meshes across worker counts and records the result in
# BENCH_parallel.json. Speedups need real cores: run it on a
# multi-core machine (CI uses ubuntu-latest).
parallel-bench:
	$(GO) test -run '^$$' -bench BenchmarkParallel -benchmem -timeout 30m . | $(GO) run ./scripts/benchjson > BENCH_parallel.json
	@cat BENCH_parallel.json

# bitset-bench measures the word-parallel (SWAR) bitset engine on the
# BenchmarkParallel workload and records the result in
# BENCH_bitset.json. Unlike parallel-bench its headline speedup is
# per-core (64 labels per word op), so single-CPU numbers are
# meaningful.
bitset-bench:
	$(GO) test -run '^$$' -bench BenchmarkBitset -benchmem -timeout 30m . | $(GO) run ./scripts/benchjson > BENCH_bitset.json
	@cat BENCH_bitset.json

# bitset-scale-bench remeasures the bitset engine across worker counts
# and enforces the worker-scaling contract: at n >= 2048 the highest
# worker count's ns/op must not exceed w=1's (octrace bench scaling).
# This gates the historical regression where per-run goroutine spawning
# made every extra worker a net slowdown.
bitset-scale-bench: bitset-bench
	$(GO) run ./cmd/octrace bench scaling BENCH_bitset.json

# bench-check is the local perf regression gate: it regenerates the
# fast observability benchmark into a scratch file and compares it
# against the committed BENCH_obs.json via octrace (fails on a >25%
# median ns/op regression). CI's bench-check job runs the same gate
# over all committed BENCH_*.json baselines.
bench-check:
	$(GO) test -run '^$$' -bench BenchmarkObsOverhead -benchmem . | $(GO) run ./scripts/benchjson > .bench-obs-fresh.json
	$(GO) run ./cmd/octrace bench check -tol 0.25 BENCH_obs.json .bench-obs-fresh.json
	@rm -f .bench-obs-fresh.json

# serve-bench drives the formation service with the open-loop load
# generator (cmd/ocpload: in-process ocpserve over loopback HTTP, mixed
# delta/route/label-query workload across two tenants) and records
# throughput plus P² latency quantiles in BENCH_serve.json. Three rounds
# are min-merged by benchjson — the minimum is the interference-robust
# sample for the latency lines, same rationale as overhead-bench.
SERVE_BENCH_CMD = $(GO) run ./cmd/ocpload -rate 2000 -duration 3s -seed 7 -bench

serve-bench:
	@rm -f .bench-serve-raw.txt
	@for i in 1 2 3; do \
		echo "== serve sample $$i"; \
		$(SERVE_BENCH_CMD) >> .bench-serve-raw.txt || exit 1; \
	done
	$(GO) run ./scripts/benchjson < .bench-serve-raw.txt > BENCH_serve.json
	@rm -f .bench-serve-raw.txt
	@cat BENCH_serve.json

# route-bench measures the routing query layer — the walk-based Detour
# (idx=off) against the precompiled boundary index (idx=on) on identical
# pair sets up to n=512 — and records the pairs in BENCH_route.json.
route-bench:
	$(GO) test -run '^$$' -bench 'BenchmarkRoute$$' -benchmem -timeout 30m . | $(GO) run ./scripts/benchjson > BENCH_route.json
	@cat BENCH_route.json

# route-gate enforces the indexed router's speedup contract on a fresh
# measurement: at n=512 the walk-based leg must cost at least 10x the
# indexed leg (octrace bench speedup), and the fresh run must not have
# regressed against the committed BENCH_route.json.
route-gate:
	$(GO) test -run '^$$' -bench 'BenchmarkRoute$$' -benchmem -timeout 30m . | $(GO) run ./scripts/benchjson > .bench-route-fresh.json
	$(GO) run ./cmd/octrace bench speedup -min 10 -min-n 512 .bench-route-fresh.json
	$(GO) run ./cmd/octrace bench check -tol 0.25 BENCH_route.json .bench-route-fresh.json
	@rm -f .bench-route-fresh.json

# overhead-bench measures the counter fabric on/off on the bitset
# engine at n=512 (the convergence observatory's acceptance workload)
# and records the pair in BENCH_overhead.json. The off and on legs must
# be sampled INTERLEAVED: `go test -count N` runs each leaf benchmark N
# times consecutively, so slow ambient drift (CPU frequency, noisy
# neighbours) lands entirely on one leg and fakes an overhead of ±15%.
# Running the whole binary several times alternates the legs at a fine
# grain; benchjson then min-merges the repeated samples per name, and
# the minimum is the drift-robust statistic. The parallel-engine pair
# stays in BenchmarkOverhead for manual runs (`go test -bench
# BenchmarkOverhead`) but is too slow and noisy for a 5% gate.
OVERHEAD_BENCH_CMD = $(GO) test -run '^$$' -bench 'BenchmarkOverhead/bitset' -benchmem -benchtime 20x -timeout 30m .
OVERHEAD_ROUNDS = 1 2 3 4 5 6 7 8

overhead-bench:
	@rm -f .bench-overhead-raw.txt
	@for i in $(OVERHEAD_ROUNDS); do \
		echo "== overhead sample $$i"; \
		$(OVERHEAD_BENCH_CMD) >> .bench-overhead-raw.txt || exit 1; \
	done
	$(GO) run ./scripts/benchjson < .bench-overhead-raw.txt > BENCH_overhead.json
	@rm -f .bench-overhead-raw.txt
	@cat BENCH_overhead.json

# overhead-gate is the convergence observatory's budget gate: it
# remeasures BenchmarkOverhead with the same interleaved sampling and
# fails when the fabric=on leg exceeds its fabric=off twin by more than
# 5% (octrace bench overhead), then checks the fresh run against the
# committed BENCH_overhead.json like the other perf gates.
overhead-gate:
	@rm -f .bench-overhead-raw.txt
	@for i in $(OVERHEAD_ROUNDS); do \
		echo "== overhead sample $$i"; \
		$(OVERHEAD_BENCH_CMD) >> .bench-overhead-raw.txt || exit 1; \
	done
	$(GO) run ./scripts/benchjson < .bench-overhead-raw.txt > .bench-overhead-fresh.json
	@rm -f .bench-overhead-raw.txt
	$(GO) run ./cmd/octrace bench overhead .bench-overhead-fresh.json
	$(GO) run ./cmd/octrace bench check -tol 0.25 BENCH_overhead.json .bench-overhead-fresh.json
	@rm -f .bench-overhead-fresh.json

# latency-overhead gates the request-latency-attribution budget: the
# served delta path with stage stamping, serve_request emission and
# the flight-recorder ring (stages=on) must stay within 5% of its
# stages=off twin (the -stages=false baseline). Same interleaved
# sampling + min-merge discipline as overhead-bench — see that
# target's comment for why -count-style consecutive legs are wrong.
LATENCY_BENCH_CMD = $(GO) test -run '^$$' -bench 'BenchmarkServeStages' -benchmem -benchtime 200x ./internal/serve
LATENCY_ROUNDS = 1 2 3 4 5 6 7 8

latency-overhead:
	@rm -f .bench-latency-raw.txt
	@for i in $(LATENCY_ROUNDS); do \
		echo "== latency sample $$i"; \
		$(LATENCY_BENCH_CMD) >> .bench-latency-raw.txt || exit 1; \
	done
	$(GO) run ./scripts/benchjson < .bench-latency-raw.txt > .bench-latency-fresh.json
	@rm -f .bench-latency-raw.txt
	$(GO) run ./cmd/octrace bench overhead -max 0.05 .bench-latency-fresh.json
	@rm -f .bench-latency-fresh.json

# converge-demo records a paper-density sweep with the counter fabric
# and strict invariant monitors on every engine, then renders the
# convergence observatory report (rounds vs d(B) scatter, messages vs
# fault density, per-block tails). CI uploads the same report as a
# workflow artifact.
converge-demo: build
	@rm -rf .converge-demo && mkdir -p .converge-demo
	@for engine in sequential channels parallel bitset; do \
		$(GO) run ./cmd/ocpsim -n 20 -maxf 4 -step 2 -reps 5 -seed 7 \
			-engine $$engine -strict -trace .converge-demo/$$engine.ndjson -format csv > /dev/null || exit 1; \
	done
	$(GO) run ./cmd/octrace converge .converge-demo/*.ndjson

# fuzz runs each native fuzz target for FUZZTIME (default 20s). The
# targets check the paper's theorems plus sequential/parallel engine
# agreement, so any reported input is a real counterexample.
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzFormation$$' -fuzztime $(FUZZTIME) ./internal/core
	$(GO) test -run '^$$' -fuzz '^FuzzRegionOCP$$' -fuzztime $(FUZZTIME) ./internal/core
	$(GO) test -run '^$$' -fuzz '^FuzzServeDelta$$' -fuzztime $(FUZZTIME) ./internal/serve
	$(GO) test -run '^$$' -fuzz '^FuzzRouteQuery$$' -fuzztime $(FUZZTIME) ./internal/routeidx

check: build vet test race
