package main

import (
	"strings"
	"testing"

	"ocpmesh/internal/sweep"
)

func TestRunSmallFigure(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-figure", "5a", "-n", "15", "-maxf", "10", "-step", "10", "-reps", "2"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "== figure 5a (15x15 mesh") {
		t.Fatalf("missing header: %q", out)
	}
	if !strings.Contains(out, "rounds to faulty blocks (def2a)") ||
		!strings.Contains(out, "rounds to faulty blocks (def2b)") {
		t.Fatalf("missing series: %q", out)
	}
}

func TestRunCSV(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-figure", "5d", "-n", "15", "-maxf", "10", "-step", "10", "-reps", "2", "-format", "csv"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "faults,enabled/unsafe-nonfaulty,ci95,n") {
		t.Fatalf("missing CSV header: %q", b.String())
	}
}

func TestRunTorusAndChannels(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-figure", "5b", "-n", "10", "-maxf", "5", "-step", "5", "-reps", "1",
		"-torus", "-channels"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "torus") {
		t.Fatalf("missing torus marker: %q", b.String())
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-figure", "bogus", "-n", "10", "-maxf", "5", "-reps", "1"}, &b); err == nil {
		t.Fatal("unknown figure must fail")
	}
	if err := run([]string{"-figure", "5a", "-n", "10", "-maxf", "5", "-reps", "1",
		"-format", "xml"}, &b); err == nil {
		t.Fatal("unknown format must fail")
	}
	if err := run([]string{"-n", "0"}, &b); err == nil {
		t.Fatal("invalid mesh size must fail")
	}
	if err := run([]string{"-bogusflag"}, &b); err == nil {
		t.Fatal("unknown flag must fail")
	}
}

func TestRunAll(t *testing.T) {
	if testing.Short() {
		t.Skip("all figures on a tiny sweep still costs a second")
	}
	var b strings.Builder
	err := run([]string{"-figure", "all", "-n", "12", "-maxf", "6", "-step", "6", "-reps", "1"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range sweep.FigureIDs() {
		if !strings.Contains(b.String(), "== figure "+id+" ") {
			t.Fatalf("figure %s missing from -figure all output", id)
		}
	}
}
