package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ocpmesh/internal/obs"
	"ocpmesh/internal/sweep"
)

func TestRunSmallFigure(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-figure", "5a", "-n", "15", "-maxf", "10", "-step", "10", "-reps", "2"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "== figure 5a (15x15 mesh") {
		t.Fatalf("missing header: %q", out)
	}
	if !strings.Contains(out, "rounds to faulty blocks (def2a)") ||
		!strings.Contains(out, "rounds to faulty blocks (def2b)") {
		t.Fatalf("missing series: %q", out)
	}
}

func TestRunCSV(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-figure", "5d", "-n", "15", "-maxf", "10", "-step", "10", "-reps", "2", "-format", "csv"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "faults,enabled/unsafe-nonfaulty,ci95,n") {
		t.Fatalf("missing CSV header: %q", b.String())
	}
}

func TestRunTorusAndChannels(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-figure", "5b", "-n", "10", "-maxf", "5", "-step", "5", "-reps", "1",
		"-torus", "-channels"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "torus") {
		t.Fatalf("missing torus marker: %q", b.String())
	}
}

func TestRunEngineFlag(t *testing.T) {
	for _, eng := range []string{"sequential", "channels", "parallel", "bitset"} {
		var b strings.Builder
		err := run([]string{"-figure", "5a", "-n", "10", "-maxf", "5", "-step", "5", "-reps", "1",
			"-engine", eng, "-workers", "2"}, &b)
		if err != nil {
			t.Fatalf("-engine %s: %v", eng, err)
		}
		if !strings.Contains(b.String(), "== figure 5a (10x10 mesh") {
			t.Fatalf("-engine %s: missing header: %q", eng, b.String())
		}
	}
}

func TestParseEngine(t *testing.T) {
	cases := []struct {
		name  string
		alias bool
		want  string
		err   bool
	}{
		{"sequential", false, "sequential", false},
		{"", false, "sequential", false},
		{"", true, "channels", false},
		{"sequential", true, "channels", false},
		{"channels", false, "channels", false},
		{"parallel", false, "parallel", false},
		{"parallel", true, "parallel", false},
		{"bitset", false, "bitset", false},
		{"bitset", true, "bitset", false},
		{"warp", false, "", true},
	}
	for _, c := range cases {
		eng, err := parseEngine(c.name, c.alias)
		if c.err {
			if err == nil {
				t.Errorf("parseEngine(%q, %v): want error", c.name, c.alias)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseEngine(%q, %v): %v", c.name, c.alias, err)
		} else if eng.String() != c.want {
			t.Errorf("parseEngine(%q, %v) = %s, want %s", c.name, c.alias, eng, c.want)
		}
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-figure", "bogus", "-n", "10", "-maxf", "5", "-reps", "1"}, &b); err == nil {
		t.Fatal("unknown figure must fail")
	}
	if err := run([]string{"-figure", "5a", "-n", "10", "-maxf", "5", "-reps", "1",
		"-format", "xml"}, &b); err == nil {
		t.Fatal("unknown format must fail")
	}
	if err := run([]string{"-n", "0"}, &b); err == nil {
		t.Fatal("invalid mesh size must fail")
	}
	if err := run([]string{"-figure", "5a", "-n", "10", "-maxf", "5", "-reps", "1",
		"-engine", "warp"}, &b); err == nil {
		t.Fatal("unknown engine must fail")
	}
	if err := run([]string{"-bogusflag"}, &b); err == nil {
		t.Fatal("unknown flag must fail")
	}
}

func TestRunAll(t *testing.T) {
	if testing.Short() {
		t.Skip("all figures on a tiny sweep still costs a second")
	}
	var b strings.Builder
	err := run([]string{"-figure", "all", "-n", "12", "-maxf", "6", "-step", "6", "-reps", "1"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range sweep.FigureIDs() {
		if !strings.Contains(b.String(), "== figure "+id+" ") {
			t.Fatalf("figure %s missing from -figure all output", id)
		}
	}
}

func TestTraceAndMetricsFiles(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "t.ndjson")
	metricsPath := filepath.Join(dir, "m.json")
	var b strings.Builder
	err := run([]string{"-figure", "5a", "-n", "20", "-maxf", "10", "-step", "10", "-reps", "2",
		"-trace", tracePath, "-metrics", metricsPath, "-progress=false"}, &b)
	if err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	dec := json.NewDecoder(bytes.NewReader(raw))
	var first, last obs.Event
	for dec.More() {
		var e obs.Event
		if err := dec.Decode(&e); err != nil {
			t.Fatalf("trace is not valid NDJSON: %v", err)
		}
		if seen["total"] == 0 {
			first = e
		}
		last = e
		seen[e.Type]++
		seen["total"]++
	}
	if first.Type != obs.ERunStart || first.Run == nil || first.Run.Tool != "ocpsim" {
		t.Fatalf("trace must open with a run_start manifest, got %+v", first)
	}
	if first.Run.Seed != 1 || first.Run.Config["n"] != float64(20) {
		t.Fatalf("manifest config wrong: %+v", first.Run)
	}
	if last.Type != obs.ERunEnd {
		t.Fatalf("trace must close with run_end, got %+v", last)
	}
	for _, typ := range []string{
		obs.EFigureStart, obs.ESweepStart, obs.ESweepCell, obs.ESweepPoint,
		obs.EPhaseStart, obs.ERound, obs.EPhaseEnd, obs.EFigureEnd,
	} {
		if seen[typ] == 0 {
			t.Errorf("trace has no %s events (counts: %v)", typ, seen)
		}
	}

	var snap obs.Snapshot
	mraw, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(mraw, &snap); err != nil {
		t.Fatalf("metrics file is not valid JSON: %v", err)
	}
	if snap.Run == nil || snap.Run.Tool != "ocpsim" {
		t.Fatalf("metrics snapshot missing run manifest: %+v", snap.Run)
	}
	if snap.Counters["sweep_cells"] == 0 || snap.Counters["simnet_rounds"] == 0 {
		t.Fatalf("metrics counters missing: %v", snap.Counters)
	}
	if h, ok := snap.Histograms["core_phase1_rounds"]; !ok || h.Count == 0 {
		t.Fatalf("metrics histograms missing: %v", snap.Histograms)
	}
}

func TestProgressSink(t *testing.T) {
	var b strings.Builder
	s := newProgressSink(&b, false)
	s.Emit(obs.Event{Type: obs.EFigureStart, Name: "5a"})
	s.Emit(obs.Event{Type: obs.ESweepStart, N: 4, Points: 2})
	s.Emit(obs.Event{Type: obs.ESweepCell, X: 0, Rep: 0})
	s.Emit(obs.Event{Type: obs.ESweepPoint, X: 5, Value: 2.5, N: 2})
	s.Emit(obs.Event{Type: obs.EFigureEnd, Name: "5a", DurNS: 1_500_000})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"figure 5a:", "f=5: mean 2.5 (n=2)", "figure 5a done in 2ms"} {
		if !strings.Contains(out, want) {
			t.Fatalf("progress output missing %q:\n%s", want, out)
		}
	}
	// Non-terminal mode must not emit carriage-return ticker frames.
	if strings.Contains(out, "\r") {
		t.Fatalf("non-tty progress must not use \\r:\n%q", out)
	}
}

func TestPprofFlagStartsServer(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-figure", "5c", "-n", "10", "-maxf", "4", "-step", "4", "-reps", "1",
		"-pprof", "127.0.0.1:0", "-progress=false"}, &b)
	if err != nil {
		t.Fatal(err)
	}
}
