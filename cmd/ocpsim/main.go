// Command ocpsim reproduces the paper's simulation study (Figure 5) and
// the extension experiments from DESIGN.md.
//
// Usage:
//
//	ocpsim -figure 5a                      # one panel, paper parameters
//	ocpsim -figure all -format csv         # everything, machine readable
//	ocpsim -figure x2 -n 40 -reps 5        # routing payoff, smaller sweep
//
// Figures: 5a, 5b (convergence rounds), 5c, 5d (enabled ratio),
// x1 (sacrificed nodes per definition), x2 (routing payoff),
// x4 (mesh vs torus), x5 (uniform vs clustered faults), x6 (wormhole
// latency), x7 (partition recovery), x8 (incremental churn: steady-state
// cost per fault arrival), or "all".
//
// With paper parameters (-n 100 -maxf 100 -reps 20) a full "all" run
// takes a few minutes; reduce -n/-reps for a quick look.
//
// Observability (see TRACE.md and the README's Observability section):
// -trace FILE writes an NDJSON event trace, -metrics FILE a JSON
// metrics snapshot, -serve ADDR starts the live telemetry server
// (/metrics in Prometheus format, /runz, /eventz, /healthz, pprof) so a
// long sweep can be watched while it runs, -pprof ADDR serves bare
// net/http/pprof plus an expvar metrics view, and -progress (default:
// on when stderr is a terminal) prints per-point sweep progress to
// stderr.
package main

import (
	"expvar"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strings"
	"sync"
	"sync/atomic"

	"ocpmesh/internal/core"
	"ocpmesh/internal/mesh"
	"ocpmesh/internal/obs"
	"ocpmesh/internal/obs/costs"
	"ocpmesh/internal/obs/serve"
	"ocpmesh/internal/stats"
	"ocpmesh/internal/sweep"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ocpsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) (retErr error) {
	fs := flag.NewFlagSet("ocpsim", flag.ContinueOnError)
	var (
		figure  = fs.String("figure", "5a", "figure id ("+strings.Join(sweep.FigureIDs(), ", ")+" or all)")
		n       = fs.Int("n", 100, "mesh side length (paper: 100)")
		maxf    = fs.Int("maxf", 100, "maximum number of faults (paper: 100)")
		step    = fs.Int("step", 5, "fault-count step between sweep points")
		reps    = fs.Int("reps", 20, "replications per sweep point")
		seed    = fs.Int64("seed", 1, "base random seed")
		torus   = fs.Bool("torus", false, "use a 2-D torus instead of a mesh")
		engine  = fs.String("engine", "sequential", "fixpoint engine: sequential, channels, parallel, or bitset (all result-identical)")
		chans   = fs.Bool("channels", false, "deprecated alias for -engine channels")
		workers = fs.Int("workers", 0, "parallel sweep workers, and the tile count of -engine parallel/bitset (0 = GOMAXPROCS)")
		format  = fs.String("format", "ascii", "output format: ascii or csv")
		width   = fs.Int("width", 60, "ascii plot width")

		tracePath   = fs.String("trace", "", "write an NDJSON event trace to this file")
		metricsPath = fs.String("metrics", "", "write a JSON metrics snapshot to this file at exit")
		serveAddr   = fs.String("serve", "", "serve live telemetry (/metrics, /runz, /convergz, /eventz, /healthz, pprof) on this address (e.g. localhost:7070)")
		pprofAddr   = fs.String("pprof", "", "serve net/http/pprof and expvar on this address (e.g. localhost:6060)")
		progress    = fs.Bool("progress", stderrIsTerminal(), "print per-sweep-point progress to stderr")
		strict      = fs.Bool("strict", false, "fail the run on any paper-invariant monitor violation (CI mode)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *n < 1 {
		return fmt.Errorf("mesh side must be >= 1, got %d", *n)
	}
	eng, err := parseEngine(*engine, *chans)
	if err != nil {
		return err
	}

	var extra []obs.Sink
	if *progress {
		extra = append(extra, newProgressSink(os.Stderr, stderrIsTerminal()))
	}
	var live *obs.LiveSink
	if *serveAddr != "" {
		live = obs.NewLiveSink(1024)
		extra = append(extra, live)
	}
	runCfg := map[string]any{
		"figure": *figure, "n": *n, "maxf": *maxf, "step": *step, "reps": *reps,
		"torus": *torus, "engine": eng.String(), "workers": *workers, "format": *format,
	}
	rec, finish, err := obs.SetupWith(obs.SetupConfig{
		Run: obs.NewRun("ocpsim", *seed, runCfg), TracePath: *tracePath,
		MetricsPath: *metricsPath, Metrics: *serveAddr != "", Extra: extra,
	})
	if err != nil {
		return err
	}
	defer func() {
		if ferr := finish(); ferr != nil && retErr == nil {
			retErr = ferr
		}
	}()
	// The convergence observatory stays on unconditionally: the sharded
	// counter fabric is cheap enough to leave enabled (BENCH_overhead
	// pins it under 5% on the bitset engine), and with -trace the costs /
	// block_converge / invariant_violation events feed octrace converge.
	fabric := costs.NewFabric(0)
	if *serveAddr != "" {
		srv := serve.New(rec, live, fabric)
		addr, err := srv.Start(*serveAddr)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "ocpsim: telemetry on http://%s/\n", addr)
	}
	if *pprofAddr != "" {
		servePprof(*pprofAddr, rec)
	}

	cfg := sweep.Config{
		Width: *n, Height: *n, MaxFaults: *maxf, Step: *step,
		Replications: *reps, Seed: *seed, Workers: *workers, Recorder: rec,
		Engine: eng, Costs: fabric, StrictInvariants: *strict,
	}
	if eng == core.EngineParallel || eng == core.EngineBitset {
		cfg.EngineWorkers = *workers
	}
	if *torus {
		cfg.Kind = mesh.Torus2D
	}
	runner, err := sweep.NewRunner(cfg)
	if err != nil {
		return err
	}

	ids := []string{*figure}
	if *figure == "all" {
		ids = sweep.FigureIDs()
	}
	for _, id := range ids {
		series, err := runner.Figure(id)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "== figure %s (%dx%d %s, f=0..%d step %d, %d reps, seed %d) ==\n",
			id, cfg.Width, cfg.Height, kindName(*torus), cfg.MaxFaults, cfg.Step,
			cfg.Replications, cfg.Seed)
		for _, s := range series {
			if err := emit(out, s, *format, *width); err != nil {
				return err
			}
		}
	}
	return nil
}

// pprofRec is the recorder the expvar snapshot reads; an atomic pointer
// so repeated run calls (tests) can retarget the single published Func.
var (
	pprofRec  atomic.Pointer[obs.Recorder]
	pprofOnce sync.Once
)

// servePprof exposes the standard net/http/pprof handlers plus an
// "ocpsim_metrics" expvar holding the live metrics snapshot. The server
// runs for the remainder of the process; listen errors are reported to
// stderr but do not fail the run.
func servePprof(addr string, rec *obs.Recorder) {
	pprofRec.Store(rec)
	pprofOnce.Do(func() {
		expvar.Publish("ocpsim_metrics", expvar.Func(func() any {
			return pprofRec.Load().Metrics().Snapshot()
		}))
	})
	go func() {
		if err := http.ListenAndServe(addr, nil); err != nil {
			fmt.Fprintln(os.Stderr, "ocpsim: pprof server:", err)
		}
	}()
}

// parseEngine maps the -engine flag (and the deprecated -channels alias)
// onto an engine kind.
func parseEngine(name string, channelsAlias bool) (core.EngineKind, error) {
	switch name {
	case "", "sequential":
		if channelsAlias {
			return core.EngineChannels, nil
		}
		return core.EngineSequential, nil
	case "channels":
		return core.EngineChannels, nil
	case "parallel":
		return core.EngineParallel, nil
	case "bitset":
		return core.EngineBitset, nil
	default:
		return 0, fmt.Errorf("unknown engine %q (want sequential, channels, parallel, or bitset)", name)
	}
}

func kindName(torus bool) string {
	if torus {
		return "torus"
	}
	return "mesh"
}

func emit(out io.Writer, s *stats.Series, format string, width int) error {
	switch format {
	case "csv":
		fmt.Fprintf(out, "# %s\n%s\n", s.Label, s.CSV())
	case "ascii":
		fmt.Fprintln(out, s.ASCII(width))
	default:
		return fmt.Errorf("unknown format %q (want ascii or csv)", format)
	}
	return nil
}
