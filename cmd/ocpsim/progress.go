package main

import (
	"fmt"
	"io"
	"os"
	"time"

	"ocpmesh/internal/obs"
)

// stderrIsTerminal reports whether stderr is a character device — the
// default gate for -progress, so interactive runs show progress and
// redirected or scripted runs stay quiet.
func stderrIsTerminal() bool {
	fi, err := os.Stderr.Stat()
	if err != nil {
		return false
	}
	return fi.Mode()&os.ModeCharDevice != 0
}

// progressSink renders sweep progress from the trace event stream: a
// per-cell ticker (overwritten in place on terminals) and one line per
// aggregated sweep point. It implements obs.Sink and tees off the same
// tracer as the NDJSON file, so progress needs no instrumentation of its
// own. Emit runs under the tracer's lock, so no further synchronization
// is needed.
type progressSink struct {
	w     io.Writer
	tty   bool
	total int // cells expected in the current sweep
	done  int // cells finished in the current sweep
}

func newProgressSink(w io.Writer, tty bool) *progressSink {
	return &progressSink{w: w, tty: tty}
}

// Emit implements obs.Sink.
func (s *progressSink) Emit(e obs.Event) {
	switch e.Type {
	case obs.EFigureStart:
		fmt.Fprintf(s.w, "figure %s:\n", e.Name)
	case obs.ESweepStart:
		s.total, s.done = e.N, 0
	case obs.ESweepCell:
		s.done++
		if s.tty {
			fmt.Fprintf(s.w, "\r  cell %d/%d", s.done, s.total)
		}
	case obs.ESweepPoint:
		s.clearTicker()
		fmt.Fprintf(s.w, "  f=%g: mean %.4g (n=%d)\n", e.X, e.Value, e.N)
	case obs.EFigureEnd:
		s.clearTicker()
		fmt.Fprintf(s.w, "figure %s done in %v\n",
			e.Name, time.Duration(e.DurNS).Round(time.Millisecond))
	}
}

func (s *progressSink) clearTicker() {
	if s.tty {
		fmt.Fprint(s.w, "\r\x1b[K")
	}
}

// Close implements obs.Sink.
func (s *progressSink) Close() error {
	s.clearTicker()
	return nil
}
