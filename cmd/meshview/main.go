// Command meshview renders a fault configuration and the result of the
// two-phase formation as ASCII art, reproducing the pictures of the
// paper's Figures 1 and 2.
//
// Usage:
//
//	meshview -fixture section3          # the paper's Section 3 example
//	meshview -fixture figure1 -def 2a   # Figure 1 under Definition 2a
//	meshview -n 30 -f 25 -seed 7        # a random configuration
//	meshview -fixture list              # list available fixtures
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"ocpmesh/internal/core"
	"ocpmesh/internal/fault"
	"ocpmesh/internal/grid"
	"ocpmesh/internal/mesh"
	"ocpmesh/internal/obs"
	"ocpmesh/internal/region"
	"ocpmesh/internal/simnet"
	"ocpmesh/internal/status"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "meshview:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) (retErr error) {
	fs := flag.NewFlagSet("meshview", flag.ContinueOnError)
	var (
		fixture = fs.String("fixture", "", "named fixture (section3, figure1, figure2a, figure2b; 'list' to enumerate)")
		n       = fs.Int("n", 20, "mesh side length for random configurations")
		f       = fs.Int("f", 10, "number of random faults")
		seed    = fs.Int64("seed", 1, "random seed")
		def     = fs.String("def", "2b", "safety definition: 2a or 2b")
		torus   = fs.Bool("torus", false, "use a 2-D torus")
		frames  = fs.Bool("frames", false, "print a frame after every changing round of each phase")

		tracePath   = fs.String("trace", "", "write an NDJSON event trace to this file")
		metricsPath = fs.String("metrics", "", "write a JSON metrics snapshot to this file at exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *fixture == "list" {
		for _, fx := range fault.Fixtures() {
			fmt.Fprintf(out, "%-10s %v — %s\n", fx.Name, fx.Topo, fx.Doc)
		}
		return nil
	}

	safety := status.Def2b
	switch *def {
	case "2a":
		safety = status.Def2a
	case "2b":
	default:
		return fmt.Errorf("unknown definition %q (want 2a or 2b)", *def)
	}

	var (
		topo   *mesh.Topology
		faults = (*fault.Fixture)(nil)
		err    error
	)
	if *fixture != "" {
		fx, ok := fault.ByName(*fixture)
		if !ok {
			return fmt.Errorf("unknown fixture %q (try -fixture list)", *fixture)
		}
		faults, topo = &fx, fx.Topo
	} else {
		kind := mesh.Mesh2D
		if *torus {
			kind = mesh.Torus2D
		}
		topo, err = mesh.New(*n, *n, kind)
		if err != nil {
			return err
		}
	}

	rec, finish, err := obs.Setup(obs.NewRun("meshview", *seed, map[string]any{
		"fixture": *fixture, "n": *n, "f": *f, "def": *def, "torus": *torus,
	}), *tracePath, *metricsPath)
	if err != nil {
		return err
	}
	defer func() {
		if ferr := finish(); ferr != nil && retErr == nil {
			retErr = ferr
		}
	}()

	cfg := core.Config{
		Width: topo.Width(), Height: topo.Height(), Kind: topo.Kind(),
		Safety: safety, Connectivity: region.Conn8, Recorder: rec,
	}
	var faultSet *grid.PointSet
	if faults != nil {
		faultSet = faults.Faults
	} else {
		rng := rand.New(rand.NewSource(*seed))
		faultSet = fault.Uniform{Count: *f}.Generate(topo, rng)
	}
	if *frames {
		if err := traceRounds(out, topo, faultSet, safety); err != nil {
			return err
		}
	}
	res, err := core.FormOn(cfg, topo, faultSet)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "%v, %d faults, %v\n", topo, res.Faults.Len(), safety)
	fmt.Fprintln(out, core.RenderLegend())
	fmt.Fprintln(out)
	fmt.Fprint(out, res.Render())
	fmt.Fprintln(out)
	fmt.Fprintf(out, "phase 1: %d rounds -> %d faulty block(s)\n", res.RoundsPhase1, len(res.Blocks))
	for _, b := range res.Blocks {
		fmt.Fprintf(out, "  block %v  d(B)=%d  nonfaulty inside: %d\n", b.Bounds(), b.Diameter(), b.NonfaultyCount())
	}
	fmt.Fprintf(out, "phase 2: %d rounds -> %d disabled region(s)\n", res.RoundsPhase2, len(res.Regions))
	for _, r := range res.Regions {
		convex := "orthogonal convex"
		if !r.IsOrthogonallyConvex() {
			convex = "NOT orthogonally convex (bug!)"
		}
		fmt.Fprintf(out, "  region %v  %d node(s), %d faulty — %s\n", r.Bounds(), r.Size(), r.Faults.Len(), convex)
	}
	if ratio, ok := res.EnabledRatio(); ok {
		fmt.Fprintf(out, "reactivated %d of %d unsafe nonfaulty nodes (ratio %.3f)\n",
			res.EnabledUnsafeCount(), res.UnsafeNonfaultyCount(), ratio)
	}
	return nil
}

// traceRounds re-runs both phases with a round observer, printing one
// frame per changing round: 'u' marks nodes turned unsafe so far in
// phase 1, 'x' marks nodes still disabled in phase 2.
func traceRounds(out io.Writer, topo *mesh.Topology, faults *grid.PointSet, safety status.SafetyDef) error {
	env, err := simnet.NewEnv(topo, faults, nil)
	if err != nil {
		return err
	}
	frame := func(round int, phase string, mark func(i int) byte) {
		fmt.Fprintf(out, "-- %s, round %d --\n", phase, round)
		for y := topo.Height() - 1; y >= 0; y-- {
			for x := 0; x < topo.Width(); x++ {
				i := topo.Index(grid.Pt(x, y))
				if faults.Has(grid.Pt(x, y)) {
					fmt.Fprintf(out, "#")
					continue
				}
				fmt.Fprintf(out, "%c", mark(i))
			}
			fmt.Fprintln(out)
		}
	}
	p1, err := simnet.Sequential().Run(env, status.UnsafeRule(safety), simnet.Options{
		OnRound: func(round int, labels []bool) {
			frame(round, "phase 1 (unsafe spreading)", func(i int) byte {
				if labels[i] {
					return 'u'
				}
				return '.'
			})
		},
	})
	if err != nil {
		return err
	}
	env2, err := simnet.NewEnv(topo, faults, p1.Labels)
	if err != nil {
		return err
	}
	_, err = simnet.Sequential().Run(env2, status.EnabledRule(), simnet.Options{
		OnRound: func(round int, labels []bool) {
			frame(round, "phase 2 (enabling shrinks regions)", func(i int) byte {
				if !labels[i] {
					return 'x'
				}
				if p1.Labels[i] {
					return '+'
				}
				return '.'
			})
		},
	})
	return err
}
