package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ocpmesh/internal/obs"
)

func TestFixtureList(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-fixture", "list"}, &b); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"section3", "figure1", "figure2a", "figure2b"} {
		if !strings.Contains(b.String(), name) {
			t.Fatalf("fixture %s missing from list: %q", name, b.String())
		}
	}
}

func TestSectionThreeRendering(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-fixture", "section3"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"5x5 mesh, 3 faults, def2b",
		".#++.",
		"block [1..3]x[1..3]",
		"2 disabled region(s)",
		"ratio 1.000",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFigure1UnderBothDefinitions(t *testing.T) {
	var a, b strings.Builder
	if err := run([]string{"-fixture", "figure1", "-def", "2a"}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-fixture", "figure1", "-def", "2b"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(a.String(), "1 faulty block(s)") {
		t.Fatalf("2a should merge into one block:\n%s", a.String())
	}
	if !strings.Contains(b.String(), "2 faulty block(s)") {
		t.Fatalf("2b should split into two blocks:\n%s", b.String())
	}
}

func TestRandomConfiguration(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-n", "12", "-f", "8", "-seed", "3"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "12x12 mesh, 8 faults") {
		t.Fatalf("header wrong:\n%s", b.String())
	}
	if strings.Contains(b.String(), "bug!") {
		t.Fatalf("non-convex region rendered:\n%s", b.String())
	}
}

func TestTorusFlag(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-n", "8", "-f", "4", "-torus"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "torus") {
		t.Fatalf("torus marker missing:\n%s", b.String())
	}
}

func TestRejectsBadInput(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-fixture", "bogus"}, &b); err == nil {
		t.Fatal("unknown fixture must fail")
	}
	if err := run([]string{"-def", "2c"}, &b); err == nil {
		t.Fatal("unknown definition must fail")
	}
	if err := run([]string{"-n", "0"}, &b); err == nil {
		t.Fatal("invalid size must fail")
	}
	if err := run([]string{"-notaflag"}, &b); err == nil {
		t.Fatal("unknown flag must fail")
	}
}

func TestFrameMode(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-fixture", "section3", "-frames"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "phase 1 (unsafe spreading), round 1") {
		t.Fatalf("missing phase 1 frames:\n%s", out)
	}
	if !strings.Contains(out, "phase 2 (enabling shrinks regions), round 1") {
		t.Fatalf("missing phase 2 frames:\n%s", out)
	}
	// The final summary still follows the trace.
	if !strings.Contains(out, "2 disabled region(s)") {
		t.Fatalf("missing summary after trace:\n%s", out)
	}
}

func TestTraceAndMetricsFiles(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "t.ndjson")
	metricsPath := filepath.Join(dir, "m.json")
	var b strings.Builder
	err := run([]string{"-fixture", "figure1",
		"-trace", tracePath, "-metrics", metricsPath}, &b)
	if err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	dec := json.NewDecoder(bytes.NewReader(raw))
	for dec.More() {
		var e obs.Event
		if err := dec.Decode(&e); err != nil {
			t.Fatalf("trace is not valid NDJSON: %v", err)
		}
		seen[e.Type]++
	}
	for _, typ := range []string{obs.ERunStart, obs.EPhaseStart, obs.ERound, obs.EPhaseEnd, obs.ERunEnd} {
		if seen[typ] == 0 {
			t.Errorf("trace has no %s events (counts: %v)", typ, seen)
		}
	}

	var snap obs.Snapshot
	mraw, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(mraw, &snap); err != nil {
		t.Fatalf("metrics file is not valid JSON: %v", err)
	}
	if snap.Counters["core_forms"] != 1 {
		t.Fatalf("core_forms counter wrong: %v", snap.Counters)
	}
}
