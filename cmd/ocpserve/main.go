// Command ocpserve runs the formation service: a long-lived HTTP server
// owning a pool of incremental formation sessions — one per tenant mesh
// — and applying fault deltas, label/region queries, route requests and
// snapshot/restore over a JSON API (see internal/serve).
//
// Usage:
//
//	ocpserve                               # serve on localhost:8080
//	ocpserve -addr :9000 -shards 4         # four single-writer shards
//	ocpserve -batch 200us                  # widen the delta batch window
//
// Tenants are sharded onto a fixed ring of single-writer loops;
// concurrent deltas to one tenant coalesce into shared engine passes
// (see the DeltaResponse "batched" field). Reads are lock-free against
// immutable published snapshots.
//
// Observability: the tenant API and the telemetry side-car share one
// listener — /metrics (Prometheus text), /runz, /eventz (SSE trace
// tail), /convergz, /debugz and /debug/pprof/ answer next to /api/.
// -trace FILE writes the NDJSON event trace (serve_delta / serve_batch
// / serve_request events, see TRACE.md), -metrics FILE a JSON metrics
// snapshot at exit.
//
// A flight recorder is always on: a bounded ring of recent events
// (fetchable at /debugz) that auto-dumps an NDJSON snapshot into
// -flight-dir when an invariant_violation arrives or a serve_request
// breaches the -flight-slo per-stage budget, so a bad second is
// analyzable after the fact without tracing having been enabled.
// -flight-dir "" keeps the ring /debugz-only; -stages=false turns off
// per-request latency attribution entirely (the latency-overhead
// benchmark's baseline leg).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ocpmesh/internal/obs"
	"ocpmesh/internal/obs/costs"
	obsserve "ocpmesh/internal/obs/serve"
	"ocpmesh/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ocpserve:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) (retErr error) {
	fs := flag.NewFlagSet("ocpserve", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "localhost:8080", "listen address for the tenant API and telemetry")
		shards   = fs.Int("shards", 0, "single-writer shard loops tenants hash onto (0 = GOMAXPROCS)")
		batch    = fs.Duration("batch", 0, "delta batch window per shard (0 = drain-only batching)")
		queue    = fs.Int("queue", 0, "per-shard request queue depth (0 = default 256)")
		maxNodes = fs.Int("max-nodes", 0, "largest tenant mesh in nodes (0 = default 1<<22)")
		seed     = fs.Int64("seed", 1, "run manifest seed")
		drain    = fs.Duration("drain", 10*time.Second, "graceful shutdown drain deadline")

		tracePath   = fs.String("trace", "", "write an NDJSON event trace to this file")
		metricsPath = fs.String("metrics", "", "write a JSON metrics snapshot to this file at exit")

		stages       = fs.Bool("stages", true, "per-request latency attribution (serve_request events, stage metrics, response breakdowns)")
		flightDir    = fs.String("flight-dir", ".", "directory for flight-recorder auto-dumps (empty = ring is /debugz-only)")
		flightSize   = fs.Int("flight-size", 0, "flight-recorder ring capacity in events (0 = 4096)")
		flightWindow = fs.Duration("flight-window", 0, "minimum spacing between flight dumps (0 = 10s)")
		flightSLO    = fs.String("flight-slo", "", "per-stage latency budget triggering a dump, e.g. queue=5ms,compute=50ms,total=1s")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	slo, err := obs.ParseStageSLO(*flightSLO)
	if err != nil {
		return err
	}
	flight := obs.NewFlightRecorder(obs.FlightConfig{
		Size: *flightSize, Dir: *flightDir, Window: *flightWindow, SLO: slo,
	})

	live := obs.NewLiveSink(1024)
	rec, finish, err := obs.SetupWith(obs.SetupConfig{
		Run: obs.NewRun("ocpserve", *seed, map[string]any{
			"addr": *addr, "shards": *shards, "batch": batch.String(), "queue": *queue,
		}),
		TracePath: *tracePath, MetricsPath: *metricsPath, Metrics: true,
		Extra: []obs.Sink{live, flight},
	})
	if err != nil {
		return err
	}
	defer func() {
		if ferr := finish(); ferr != nil && retErr == nil {
			retErr = ferr
		}
	}()
	fabric := costs.NewFabric(0)

	svc := serve.New(serve.Options{
		Shards:        *shards,
		BatchWindow:   *batch,
		QueueDepth:    *queue,
		MaxMeshNodes:  *maxNodes,
		Recorder:      rec,
		DisableStages: !*stages,
	})
	side := obsserve.New(rec, live, fabric).WithFlight(flight)
	srv := serve.NewServer(svc, side.Handler())
	bound, err := srv.Start(*addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "ocpserve: serving on http://%s/ (API under /api/, telemetry on /metrics /runz /eventz)\n", bound)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop()

	fmt.Fprintf(out, "ocpserve: draining (deadline %v)\n", *drain)
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	return srv.Shutdown(dctx)
}
