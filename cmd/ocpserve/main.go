// Command ocpserve runs the formation service: a long-lived HTTP server
// owning a pool of incremental formation sessions — one per tenant mesh
// — and applying fault deltas, label/region queries, route requests and
// snapshot/restore over a JSON API (see internal/serve).
//
// Usage:
//
//	ocpserve                               # serve on localhost:8080
//	ocpserve -addr :9000 -shards 4         # four single-writer shards
//	ocpserve -batch 200us                  # widen the delta batch window
//
// Tenants are sharded onto a fixed ring of single-writer loops;
// concurrent deltas to one tenant coalesce into shared engine passes
// (see the DeltaResponse "batched" field). Reads are lock-free against
// immutable published snapshots.
//
// Observability: the tenant API and the telemetry side-car share one
// listener — /metrics (Prometheus text), /runz, /eventz (SSE trace
// tail), /convergz and /debug/pprof/ answer next to /api/. -trace FILE
// writes the NDJSON event trace (serve_delta / serve_batch events, see
// TRACE.md), -metrics FILE a JSON metrics snapshot at exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ocpmesh/internal/obs"
	"ocpmesh/internal/obs/costs"
	obsserve "ocpmesh/internal/obs/serve"
	"ocpmesh/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ocpserve:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) (retErr error) {
	fs := flag.NewFlagSet("ocpserve", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "localhost:8080", "listen address for the tenant API and telemetry")
		shards   = fs.Int("shards", 0, "single-writer shard loops tenants hash onto (0 = GOMAXPROCS)")
		batch    = fs.Duration("batch", 0, "delta batch window per shard (0 = drain-only batching)")
		queue    = fs.Int("queue", 0, "per-shard request queue depth (0 = default 256)")
		maxNodes = fs.Int("max-nodes", 0, "largest tenant mesh in nodes (0 = default 1<<22)")
		seed     = fs.Int64("seed", 1, "run manifest seed")
		drain    = fs.Duration("drain", 10*time.Second, "graceful shutdown drain deadline")

		tracePath   = fs.String("trace", "", "write an NDJSON event trace to this file")
		metricsPath = fs.String("metrics", "", "write a JSON metrics snapshot to this file at exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	live := obs.NewLiveSink(1024)
	rec, finish, err := obs.SetupWith(obs.SetupConfig{
		Run: obs.NewRun("ocpserve", *seed, map[string]any{
			"addr": *addr, "shards": *shards, "batch": batch.String(), "queue": *queue,
		}),
		TracePath: *tracePath, MetricsPath: *metricsPath, Metrics: true,
		Extra: []obs.Sink{live},
	})
	if err != nil {
		return err
	}
	defer func() {
		if ferr := finish(); ferr != nil && retErr == nil {
			retErr = ferr
		}
	}()
	fabric := costs.NewFabric(0)

	svc := serve.New(serve.Options{
		Shards:       *shards,
		BatchWindow:  *batch,
		QueueDepth:   *queue,
		MaxMeshNodes: *maxNodes,
		Recorder:     rec,
	})
	side := obsserve.New(rec, live, fabric)
	srv := serve.NewServer(svc, side.Handler())
	bound, err := srv.Start(*addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "ocpserve: serving on http://%s/ (API under /api/, telemetry on /metrics /runz /eventz)\n", bound)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop()

	fmt.Fprintf(out, "ocpserve: draining (deadline %v)\n", *drain)
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	return srv.Shutdown(dctx)
}
