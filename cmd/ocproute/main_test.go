package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ocpmesh/internal/obs"
)

func TestRouteDefaults(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-n", "12", "-f", "6", "-seed", "2"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "delivered in") && !strings.Contains(out, "routing failed") {
		t.Fatalf("no outcome reported:\n%s", out)
	}
	if !strings.Contains(out, "S") || !strings.Contains(out, "D") {
		t.Fatalf("endpoints not rendered:\n%s", out)
	}
}

func TestAllRoutersAndModels(t *testing.T) {
	for _, router := range []string{"xy", "adaptive", "detour", "oracle", "safety"} {
		for _, model := range []string{"blocks", "regions", "faults"} {
			var b strings.Builder
			err := run([]string{"-n", "10", "-f", "5", "-seed", "3",
				"-router", router, "-model", model}, &b)
			if err != nil {
				t.Fatalf("%s/%s: %v", router, model, err)
			}
		}
	}
}

func TestExplicitEndpoints(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-n", "10", "-f", "0", "-src", "1,1", "-dst", "8,8", "-router", "xy"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "delivered in 14 hops (minimal)") {
		t.Fatalf("XY on a fault-free mesh must be minimal:\n%s", b.String())
	}
}

func TestFixtureRouting(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-fixture", "figure1", "-src", "0,3", "-dst", "9,3", "-router", "oracle"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "delivered in") {
		t.Fatalf("oracle must deliver on figure1:\n%s", b.String())
	}
}

func TestBlockedXYReportsOracleAlternative(t *testing.T) {
	// A fault dead ahead on the default row blocks XY; the tool must
	// explain that a path exists.
	var b strings.Builder
	err := run([]string{"-fixture", "section3", "-src", "0,1", "-dst", "4,1", "-router", "xy",
		"-model", "blocks"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "routing failed") || !strings.Contains(out, "the oracle finds it") {
		t.Fatalf("expected failure with oracle hint:\n%s", out)
	}
}

func TestRejectsBadFlags(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-model", "bogus"}, &b); err == nil {
		t.Fatal("bad model must fail")
	}
	if err := run([]string{"-router", "bogus"}, &b); err == nil {
		t.Fatal("bad router must fail")
	}
	if err := run([]string{"-src", "nope"}, &b); err == nil {
		t.Fatal("bad src must fail")
	}
	if err := run([]string{"-src", "99,99"}, &b); err == nil {
		t.Fatal("out-of-machine src must fail")
	}
	if err := run([]string{"-fixture", "bogus"}, &b); err == nil {
		t.Fatal("bad fixture must fail")
	}
	if err := run([]string{"-n", "0"}, &b); err == nil {
		t.Fatal("bad size must fail")
	}
}

func TestTorusRoute(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-n", "8", "-f", "0", "-torus", "-src", "0,0", "-dst", "7,7", "-router", "xy"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "delivered in 2 hops") {
		t.Fatalf("torus wrap must give a 2-hop route:\n%s", b.String())
	}
}

func TestTraceAndMetricsFiles(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "t.ndjson")
	metricsPath := filepath.Join(dir, "m.json")
	var b strings.Builder
	err := run([]string{"-fixture", "figure1", "-src", "0,3", "-dst", "9,3", "-router", "oracle",
		"-trace", tracePath, "-metrics", metricsPath}, &b)
	if err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	dec := json.NewDecoder(bytes.NewReader(raw))
	for dec.More() {
		var e obs.Event
		if err := dec.Decode(&e); err != nil {
			t.Fatalf("trace is not valid NDJSON: %v", err)
		}
		seen[e.Type]++
	}
	for _, typ := range []string{obs.ERunStart, obs.EPhaseStart, obs.ERound, obs.ERoute, obs.ERunEnd} {
		if seen[typ] == 0 {
			t.Errorf("trace has no %s events (counts: %v)", typ, seen)
		}
	}

	var snap obs.Snapshot
	mraw, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(mraw, &snap); err != nil {
		t.Fatalf("metrics file is not valid JSON: %v", err)
	}
	if snap.Counters["route_requests"] != 1 || snap.Counters["route_delivered"] != 1 {
		t.Fatalf("route counters wrong: %v", snap.Counters)
	}
	if h, ok := snap.Histograms["route_hops"]; !ok || h.Count != 1 {
		t.Fatalf("route_hops histogram missing: %v", snap.Histograms)
	}
}
