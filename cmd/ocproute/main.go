// Command ocproute routes one message across a faulty machine and draws
// the path over the fault-region rendering — a quick way to see the
// refined fault model's shorter detours. It can also measure batch
// query throughput of the precompiled routing index against the
// walk-based router (-qps), and find k node-disjoint paths (-k).
//
// Usage:
//
//	ocproute -n 20 -f 18 -seed 7 -src 0,10 -dst 19,10
//	ocproute -router detour -model blocks -src 0,4 -dst 19,4
//	ocproute -fixture figure1 -src 0,3 -dst 9,3 -router oracle
//	ocproute -n 512 -f 200 -qps 100000
//	ocproute -n 20 -f 12 -k 3 -src 0,10 -dst 19,10
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"
	"time"

	"ocpmesh/internal/core"
	"ocpmesh/internal/fault"
	"ocpmesh/internal/grid"
	"ocpmesh/internal/mesh"
	"ocpmesh/internal/obs"
	"ocpmesh/internal/obs/costs"
	"ocpmesh/internal/obs/serve"
	"ocpmesh/internal/routeidx"
	"ocpmesh/internal/routing"
	"ocpmesh/internal/safety"
	"ocpmesh/internal/status"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ocproute:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) (retErr error) {
	fs := flag.NewFlagSet("ocproute", flag.ContinueOnError)
	var (
		fixture = fs.String("fixture", "", "named fixture instead of random faults")
		n       = fs.Int("n", 20, "mesh side length")
		f       = fs.Int("f", 15, "number of random faults")
		seed    = fs.Int64("seed", 1, "random seed")
		model   = fs.String("model", "regions", "fault model: blocks, regions or faults")
		router  = fs.String("router", "adaptive", "router: xy, adaptive, detour, indexed, oracle or safety")
		srcStr  = fs.String("src", "", "source node as x,y (default west edge middle)")
		dstStr  = fs.String("dst", "", "destination node as x,y (default east edge middle)")
		torus   = fs.Bool("torus", false, "use a 2-D torus")
		qps     = fs.Int("qps", 0, "measure batch throughput over this many random queries (indexed vs walk-based) instead of routing one message")
		kPaths  = fs.Int("k", 0, "find k node-disjoint paths instead of a single route")

		tracePath   = fs.String("trace", "", "write an NDJSON event trace to this file")
		metricsPath = fs.String("metrics", "", "write a JSON metrics snapshot to this file at exit")
		serveAddr   = fs.String("serve", "", "serve live telemetry (/metrics, /runz, /eventz, /healthz, pprof) on this address")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var live *obs.LiveSink
	var extra []obs.Sink
	if *serveAddr != "" {
		live = obs.NewLiveSink(256)
		extra = append(extra, live)
	}
	rec, finish, err := obs.SetupWith(obs.SetupConfig{
		Run: obs.NewRun("ocproute", *seed, map[string]any{
			"fixture": *fixture, "n": *n, "f": *f, "model": *model, "router": *router,
			"src": *srcStr, "dst": *dstStr, "torus": *torus,
		}),
		TracePath: *tracePath, MetricsPath: *metricsPath,
		Metrics: *serveAddr != "", Extra: extra,
	})
	if err != nil {
		return err
	}
	defer func() {
		if ferr := finish(); ferr != nil && retErr == nil {
			retErr = ferr
		}
	}()
	fabric := costs.NewFabric(0)
	if *serveAddr != "" {
		srv := serve.New(rec, live, fabric)
		addr, err := srv.Start(*serveAddr)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "ocproute: telemetry on http://%s/\n", addr)
	}

	var (
		topo   *mesh.Topology
		faults *grid.PointSet
	)
	if *fixture != "" {
		fx, ok := fault.ByName(*fixture)
		if !ok {
			return fmt.Errorf("unknown fixture %q", *fixture)
		}
		topo, faults = fx.Topo, fx.Faults
	} else {
		kind := mesh.Mesh2D
		if *torus {
			kind = mesh.Torus2D
		}
		if topo, err = mesh.New(*n, *n, kind); err != nil {
			return err
		}
		faults = fault.Uniform{Count: *f}.Generate(topo, rand.New(rand.NewSource(*seed)))
	}

	res, err := core.FormOn(core.Config{
		Width: topo.Width(), Height: topo.Height(), Kind: topo.Kind(), Safety: status.Def2a,
		Recorder: rec, Costs: fabric,
	}, topo, faults)
	if err != nil {
		return err
	}

	var m routing.Model
	switch *model {
	case "blocks":
		m = routing.ModelBlocks
	case "regions":
		m = routing.ModelRegions
	case "faults":
		m = routing.ModelFaultsOnly
	default:
		return fmt.Errorf("unknown model %q (want blocks, regions or faults)", *model)
	}
	g := routing.NewGraph(res, m)

	if *qps > 0 {
		return measureQPS(out, res, m, *qps, *seed, rec)
	}

	src, err := parsePoint(*srcStr, grid.Pt(0, topo.Height()/2), topo)
	if err != nil {
		return err
	}
	dst, err := parsePoint(*dstStr, grid.Pt(topo.Width()-1, topo.Height()/2), topo)
	if err != nil {
		return err
	}

	if *kPaths > 0 {
		return disjointPaths(out, res, g, src, dst, *kPaths)
	}

	var r routing.Router
	switch *router {
	case "xy":
		r = routing.XY{}
	case "adaptive":
		r = routing.AdaptiveMinimal{}
	case "detour":
		r = routing.Detour{}
	case "indexed":
		r = routeidx.Compile(res, m, routeidx.Options{Recorder: rec}).AsRouter()
	case "oracle":
		r = routing.Oracle{}
	case "safety":
		field, err := safety.Compute(res, core.EngineSequential)
		if err != nil {
			return err
		}
		r = safety.Router{Field: field}
	default:
		return fmt.Errorf("unknown router %q (want xy, adaptive, detour, indexed, oracle or safety)", *router)
	}
	r = routing.Instrument(r, rec)

	fmt.Fprintf(out, "%v, %d faults, model %v, router %s, %v -> %v\n",
		topo, faults.Len(), m, r.Name(), src, dst)
	path, rerr := r.Route(g, src, dst)
	if rerr != nil {
		fmt.Fprintf(out, "routing failed: %v\n", rerr)
		if errors.Is(rerr, routing.ErrUnroutable) {
			fmt.Fprintln(out, "(the endpoint itself is faulty or disabled under this model — pick nodes outside the marked regions below)")
			fmt.Fprintln(out)
			fmt.Fprint(out, overlay(res, nil, src, dst))
			return nil
		}
		if oracle, ok := g.ShortestPath(src, dst); ok {
			fmt.Fprintf(out, "(a path of %d hops exists — the oracle finds it)\n", oracle.Len())
		} else {
			fmt.Fprintln(out, "(no path exists under this fault model)")
		}
		fmt.Fprintln(out)
		fmt.Fprint(out, overlay(res, nil, src, dst))
		return nil
	}

	minimal := ""
	if path.Len() == topo.Dist(src, dst) {
		minimal = " (minimal)"
	} else {
		minimal = fmt.Sprintf(" (detour +%d over the fault-free distance)", path.Len()-topo.Dist(src, dst))
	}
	fmt.Fprintf(out, "delivered in %d hops%s\n\n", path.Len(), minimal)
	fmt.Fprintln(out, core.RenderLegend()+"   o path   S source   D destination")
	fmt.Fprint(out, overlay(res, path, src, dst))
	return nil
}

// measureQPS compares batch query throughput of the precompiled index
// against the walk-based Detour over the same random query set.
func measureQPS(out io.Writer, res *core.Result, m routing.Model, n int, seed int64, rec *obs.Recorder) error {
	rng := rand.New(rand.NewSource(seed + 1))
	pairs := routing.SamplePairs(res, n, rng)
	if len(pairs) == 0 {
		return fmt.Errorf("no routable node pairs on this machine")
	}
	qs := make([]routeidx.Query, len(pairs))
	for i, pr := range pairs {
		qs[i] = routeidx.Query{Src: pr[0], Dst: pr[1]}
	}

	start := time.Now()
	ix := routeidx.Compile(res, m, routeidx.Options{Recorder: rec})
	compileDur := time.Since(start)

	start = time.Now()
	answers := ix.RouteMany(qs, routeidx.BatchOptions{})
	idxDur := time.Since(start)

	g := routing.NewGraph(res, m)
	var buf routing.Path
	delivered := 0
	start = time.Now()
	for _, q := range qs {
		p, err := routing.Detour{}.RouteAppend(g, q.Src, q.Dst, buf)
		buf = p
		if err == nil {
			delivered++
		}
	}
	walkDur := time.Since(start)

	idxDelivered := 0
	for _, a := range answers {
		if a.Err == nil {
			idxDelivered++
		}
	}
	if idxDelivered != delivered {
		return fmt.Errorf("delivery disagreement: indexed %d, walk-based %d", idxDelivered, delivered)
	}
	qpsOf := func(d time.Duration) float64 { return float64(len(qs)) / d.Seconds() }
	fmt.Fprintf(out, "%v, %d faults, model %v: %d queries, %d delivered\n",
		res.Topo, res.Faults.Len(), m, len(qs), delivered)
	fmt.Fprintf(out, "index compile:  %v\n", compileDur)
	fmt.Fprintf(out, "indexed batch:  %v  (%.0f queries/sec)\n", idxDur, qpsOf(idxDur))
	fmt.Fprintf(out, "walk-based:     %v  (%.0f queries/sec)\n", walkDur, qpsOf(walkDur))
	fmt.Fprintf(out, "speedup:        %.1fx\n", float64(walkDur)/float64(idxDur))
	return nil
}

// disjointPaths finds k node-disjoint paths and overlays them all.
func disjointPaths(out io.Writer, res *core.Result, g *routing.Graph, src, dst grid.Point, k int) error {
	result, err := routing.KDisjointPaths(g, src, dst, k)
	if err != nil {
		if errors.Is(err, routing.ErrUnroutable) {
			fmt.Fprintf(out, "disjoint routing failed: %v\n", err)
			fmt.Fprintln(out, "(the endpoint itself is faulty or disabled under this model)")
			return nil
		}
		return err
	}
	fmt.Fprintf(out, "%d of %d node-disjoint paths, %v -> %v\n",
		result.Found, result.Requested, src, dst)
	for i, p := range result.Paths {
		fmt.Fprintf(out, "  path %d: %d hops\n", i+1, p.Len())
	}
	fmt.Fprintln(out)
	fmt.Fprintln(out, core.RenderLegend()+"   1..9 path   S source   D destination")
	base := overlay(res, nil, src, dst)
	rows := strings.Split(strings.TrimRight(base, "\n"), "\n")
	h := res.Topo.Height()
	for i, p := range result.Paths {
		ch := byte('1' + i%9)
		for _, q := range p {
			if q == src || q == dst {
				continue
			}
			row := []byte(rows[h-1-q.Y])
			row[q.X] = ch
			rows[h-1-q.Y] = string(row)
		}
	}
	fmt.Fprint(out, strings.Join(rows, "\n")+"\n")
	return nil
}

// parsePoint parses "x,y" with a default.
func parsePoint(s string, def grid.Point, topo *mesh.Topology) (grid.Point, error) {
	if s == "" {
		return def, nil
	}
	parts := strings.Split(s, ",")
	if len(parts) != 2 {
		return grid.Point{}, fmt.Errorf("bad point %q (want x,y)", s)
	}
	var x, y int
	if _, err := fmt.Sscanf(s, "%d,%d", &x, &y); err != nil {
		return grid.Point{}, fmt.Errorf("bad point %q: %v", s, err)
	}
	p := grid.Pt(x, y)
	if !topo.Contains(p) {
		return grid.Point{}, fmt.Errorf("point %v outside %v", p, topo)
	}
	return p, nil
}

// overlay renders the machine with the path drawn on top.
func overlay(res *core.Result, path routing.Path, src, dst grid.Point) string {
	base := res.Render()
	rows := strings.Split(strings.TrimRight(base, "\n"), "\n")
	h := res.Topo.Height()
	set := func(p grid.Point, ch byte) {
		row := []byte(rows[h-1-p.Y])
		row[p.X] = ch
		rows[h-1-p.Y] = string(row)
	}
	for _, p := range path {
		set(p, 'o')
	}
	set(src, 'S')
	set(dst, 'D')
	return strings.Join(rows, "\n") + "\n"
}
