// Command ocpload is the load generator for the formation service: an
// open-loop driver firing a mixed delta/query/route workload at an
// ocpserve instance and reporting throughput and latency quantiles.
//
// Usage:
//
//	ocpload                                  # in-process server, defaults
//	ocpload -addr localhost:8080             # drive an external ocpserve
//	ocpload -rate 5000 -duration 10s         # heavier sustained load
//	ocpload -bench | go run ./scripts/benchjson > BENCH_serve.json
//
// Arrivals are open-loop: operations fire on a fixed schedule derived
// from -rate regardless of how fast earlier operations complete, so a
// saturated server shows up as latency growth rather than silently
// throttled offered load. The workload mixes fault deltas (-delta-frac)
// and route requests (-route-frac) with label-plane queries making up
// the rest, spread round-robin over -tenants tenant meshes. Delta
// points cycle through a bounded candidate pool, so the fault set
// fluctuates without drifting (steady-state churn, the serving analogue
// of the X8 experiment).
//
// Latencies are measured per kind with the observability layer's P²
// histograms. Delta responses additionally carry the server-side stage
// breakdown (queue / batch / compute / publish — see TRACE.md), which
// ocpload folds into its own histograms and reports next to the
// client-observed latency, so "the server is fast but the wire is not"
// and "the queue is the problem" are separable from the client side.
// The target server must advertise the "stages" feature in its create
// response; ocpload fails fast against one that does not (run with
// -stages=false to drive a pre-attribution or DisableStages server).
//
// -bench prints go-test-style benchmark lines (inverse throughput plus
// p50/p99 per kind, plus per-stage delta quantiles) that
// scripts/benchjson converts into BENCH_serve.json for the
// `octrace bench check` gate.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"ocpmesh/internal/grid"
	"ocpmesh/internal/obs"
	"ocpmesh/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ocpload:", err)
		os.Exit(1)
	}
}

// op is one planned operation.
type op struct {
	kind   string // "delta", "query", "route", "routes"
	tenant string
	body   []byte // delta / batch-route request body
	path   string // query/route request path suffix
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ocpload", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", "", "ocpserve address to drive (empty = start an in-process server)")
		tenants   = fs.Int("tenants", 2, "tenant meshes to spread load over")
		size      = fs.Int("size", 64, "tenant mesh side length")
		engine    = fs.String("engine", "bitset", "tenant engine: sequential, channels, parallel, or bitset")
		nfaults   = fs.Int("faults", 32, "initial random faults per tenant")
		rate      = fs.Float64("rate", 2000, "offered load in operations/second (open loop)")
		duration  = fs.Duration("duration", 3*time.Second, "measured load duration")
		deltaFrac = fs.Float64("delta-frac", 0.4, "fraction of operations that are fault deltas")
		routeFrac = fs.Float64("route-frac", 0.3, "fraction of operations that are route requests")
		batchFrac = fs.Float64("routes-frac", 0, "fraction of operations that are batch route requests (POST /routes)")
		batchSize = fs.Int("routes-batch", 64, "queries per batch route request")
		points    = fs.Int("points", 3, "fault points per delta")
		seed      = fs.Int64("seed", 1, "workload random seed")
		warmup    = fs.Int("warmup", 50, "unrecorded warmup operations per tenant")
		bench     = fs.Bool("bench", false, "print go-bench result lines (pipe through scripts/benchjson)")
		shards    = fs.Int("shards", 0, "in-process server shard count (0 = GOMAXPROCS)")
		batch     = fs.Duration("batch", 0, "in-process server batch window")
		stages    = fs.Bool("stages", true, "collect server-side stage breakdowns from delta responses (requires the server's \"stages\" feature)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *rate <= 0 || *duration <= 0 {
		return fmt.Errorf("rate and duration must be positive")
	}
	if *deltaFrac < 0 || *routeFrac < 0 || *batchFrac < 0 || *deltaFrac+*routeFrac+*batchFrac > 1 {
		return fmt.Errorf("delta-frac %v + route-frac %v + routes-frac %v must fit in [0,1]", *deltaFrac, *routeFrac, *batchFrac)
	}
	if *batchSize < 1 || *batchSize > 1<<14 {
		return fmt.Errorf("routes-batch %d out of range [1, 16384]", *batchSize)
	}

	base := *addr
	if base == "" {
		svc := serve.New(serve.Options{Shards: *shards, BatchWindow: *batch})
		srv := serve.NewServer(svc, nil)
		bound, err := srv.Start("127.0.0.1:0")
		if err != nil {
			return err
		}
		defer srv.Close()
		base = bound.String()
		fmt.Fprintf(os.Stderr, "ocpload: in-process server on %s\n", base)
	}
	baseURL := "http://" + base
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 256}}

	// Create the tenants (idempotent: re-driving a running server is
	// fine as long as the config matches).
	rng := rand.New(rand.NewSource(*seed))
	ids := make([]string, *tenants)
	pools := make([][]grid.Point, *tenants)
	for i := range ids {
		ids[i] = fmt.Sprintf("load-%d", i)
		// The candidate pool bounds the reachable fault set.
		pool := make([]grid.Point, 4**nfaults)
		for j := range pool {
			pool[j] = grid.Pt(rng.Intn(*size), rng.Intn(*size))
		}
		pools[i] = pool
		init := make([][2]int, *nfaults)
		for j := range init {
			p := pool[rng.Intn(len(pool))]
			init[j] = [2]int{p.X, p.Y}
		}
		body, _ := json.Marshal(serve.CreateRequest{
			ID:     ids[i],
			Config: serve.TenantConfig{Width: *size, Height: *size, Engine: *engine},
			Faults: init,
		})
		resp, err := client.Post(baseURL+"/api/tenants", "application/json", bytes.NewReader(body))
		if err != nil {
			return fmt.Errorf("create tenant %s: %w", ids[i], err)
		}
		data, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
			return fmt.Errorf("create tenant %s: HTTP %d", ids[i], resp.StatusCode)
		}
		// Feature negotiation off the create response: refuse to run a
		// stage-collecting load against a server that will answer with no
		// stage fields — zeroed breakdown columns would be worse than an
		// error.
		if *stages {
			var st serve.TenantStatus
			if rerr == nil {
				rerr = json.Unmarshal(data, &st)
			}
			if rerr != nil {
				return fmt.Errorf("create tenant %s: bad status response: %v", ids[i], rerr)
			}
			if !hasFeature(st.Features, "stages") {
				return fmt.Errorf("server %s does not advertise the \"stages\" feature: it predates per-request latency attribution or runs with stages disabled — upgrade/reconfigure it, or rerun with -stages=false", base)
			}
		}
	}

	// Plan the whole run up front so the hot loop does no generation
	// work and the workload is reproducible from the seed.
	total := int(*rate * duration.Seconds())
	if total < 1 {
		total = 1
	}
	plan := make([]op, total)
	for i := range plan {
		ti := i % *tenants
		o := op{tenant: ids[ti]}
		switch r := rng.Float64(); {
		case r < *deltaFrac:
			o.kind = "delta"
			kind := "add"
			if rng.Intn(2) == 0 {
				kind = "remove"
			}
			pts := make([][2]int, *points)
			for j := range pts {
				p := pools[ti][rng.Intn(len(pools[ti]))]
				pts[j] = [2]int{p.X, p.Y}
			}
			o.body, _ = json.Marshal(serve.DeltaRequest{Op: kind, Points: pts})
		case r < *deltaFrac+*routeFrac:
			o.kind = "route"
			o.path = fmt.Sprintf("/route?src=%d,%d&dst=%d,%d",
				rng.Intn(*size), rng.Intn(*size), rng.Intn(*size), rng.Intn(*size))
		case r < *deltaFrac+*routeFrac+*batchFrac:
			o.kind = "routes"
			qs := make([][4]int, *batchSize)
			for j := range qs {
				qs[j] = [4]int{rng.Intn(*size), rng.Intn(*size), rng.Intn(*size), rng.Intn(*size)}
			}
			o.body, _ = json.Marshal(serve.RoutesRequest{Queries: qs})
		default:
			o.kind = "query"
			o.path = "/labels"
		}
		plan[i] = o
	}

	rec := obs.NewRecorder(nil, obs.NewRegistry())
	hist := map[string]*obs.Histogram{
		"delta":  rec.Histogram("load_delta_ns", obs.NSBuckets),
		"query":  rec.Histogram("load_query_ns", obs.NSBuckets),
		"route":  rec.Histogram("load_route_ns", obs.NSBuckets),
		"routes": rec.Histogram("load_routes_ns", obs.NSBuckets),
	}
	// stageHist holds the server-reported delta stage breakdowns, in the
	// serving pipeline's stage order.
	stageOrder := []string{"queue", "batch", "compute", "publish", "total"}
	stageHist := map[string]*obs.Histogram{}
	for _, st := range stageOrder {
		stageHist[st] = rec.Histogram("load_stage_"+st+"_ns", obs.NSBuckets)
	}
	counts := map[string]*atomic.Int64{
		"delta": {}, "query": {}, "route": {}, "routes": {},
	}
	var errs atomic.Int64
	var firstErr atomic.Pointer[string]

	fire := func(o op, record bool) {
		var (
			resp *http.Response
			err  error
			sb   *serve.StageBreakdown
		)
		start := time.Now()
		switch o.kind {
		case "delta":
			resp, err = client.Post(baseURL+"/api/tenants/"+o.tenant+"/deltas",
				"application/json", bytes.NewReader(o.body))
		case "routes":
			resp, err = client.Post(baseURL+"/api/tenants/"+o.tenant+"/routes",
				"application/json", bytes.NewReader(o.body))
		default:
			resp, err = client.Get(baseURL + "/api/tenants/" + o.tenant + o.path)
		}
		if err == nil && o.kind == "delta" && *stages {
			// Decode the delta response for its server-side stage fields;
			// their absence is an error (the create-time negotiation said
			// they would be there), never a row of zeroed columns.
			data, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			var dr serve.DeltaResponse
			switch {
			case resp.StatusCode != http.StatusOK:
				err = fmt.Errorf("%s %s: HTTP %d", o.kind, o.tenant, resp.StatusCode)
			case rerr != nil:
				err = fmt.Errorf("%s %s: %v", o.kind, o.tenant, rerr)
			case json.Unmarshal(data, &dr) != nil || dr.Stages == nil:
				err = fmt.Errorf("%s %s: response carries no stage breakdown (server lost the \"stages\" feature mid-run?)", o.kind, o.tenant)
			default:
				sb = dr.Stages
			}
		} else if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			// Route queries pick random endpoints, some of which land on
			// faulty nodes: the server's 422 is the correct answer there,
			// not a load-generator failure.
			unroutable := o.kind == "route" && resp.StatusCode == http.StatusUnprocessableEntity
			if resp.StatusCode != http.StatusOK && !unroutable {
				err = fmt.Errorf("%s %s: HTTP %d", o.kind, o.tenant, resp.StatusCode)
			}
		}
		elapsed := time.Since(start)
		if !record {
			return
		}
		if err != nil {
			errs.Add(1)
			msg := err.Error()
			firstErr.CompareAndSwap(nil, &msg)
			return
		}
		hist[o.kind].Observe(float64(elapsed.Nanoseconds()))
		counts[o.kind].Add(1)
		if sb != nil {
			stageHist["queue"].Observe(float64(sb.QueueNS))
			stageHist["batch"].Observe(float64(sb.BatchNS))
			stageHist["compute"].Observe(float64(sb.ComputeNS))
			stageHist["publish"].Observe(float64(sb.PublishNS))
			stageHist["total"].Observe(float64(sb.TotalNS))
		}
	}

	// Warmup: sequential, unrecorded (connection setup, first-touch
	// allocations, engine pool spin-up).
	for i := 0; i < *warmup**tenants && i < len(plan); i++ {
		fire(plan[i%len(plan)], false)
	}

	// Open loop: every operation fires at its scheduled arrival time,
	// in its own goroutine, whether or not earlier ones came back.
	interval := time.Duration(float64(time.Second) / *rate)
	var wg sync.WaitGroup
	start := time.Now()
	for i, o := range plan {
		due := start.Add(time.Duration(i) * interval)
		if d := time.Until(due); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func(o op) {
			defer wg.Done()
			fire(o, true)
		}(o)
	}
	wg.Wait()
	elapsed := time.Since(start)

	if n := errs.Load(); n > 0 {
		return fmt.Errorf("%d/%d operations failed (first: %s)", n, total, *firstErr.Load())
	}

	// Report. The bench lines carry inverse throughput (wall time per
	// completed op of the kind) and the latency quantiles; benchjson
	// folds them into BENCH_serve.json.
	type kindStats struct {
		name          string
		n             int64
		opsSec        float64
		p50, p99, max time.Duration
	}
	var stats []kindStats
	for _, k := range []string{"delta", "route", "routes", "query"} {
		n := counts[k].Load()
		if n == 0 {
			continue
		}
		h := hist[k]
		stats = append(stats, kindStats{
			name:   k,
			n:      n,
			opsSec: float64(n) / elapsed.Seconds(),
			p50:    time.Duration(h.Quantile(0.5)),
			p99:    time.Duration(h.Quantile(0.99)),
		})
	}
	if *bench {
		plural := map[string]string{"delta": "deltas", "route": "routes", "routes": "route_batches", "query": "queries"}
		for _, s := range stats {
			nsPerOp := elapsed.Seconds() * 1e9 / float64(s.n)
			fmt.Fprintf(out, "BenchmarkServe/%s %d %.1f ns/op\n", plural[s.name], s.n, nsPerOp)
			fmt.Fprintf(out, "BenchmarkServe/%s_p50 %d %d ns/op\n", s.name, s.n, s.p50.Nanoseconds())
			fmt.Fprintf(out, "BenchmarkServe/%s_p99 %d %d ns/op\n", s.name, s.n, s.p99.Nanoseconds())
		}
		for _, st := range stageOrder {
			h := stageHist[st]
			n := int64(h.Count())
			if n == 0 {
				continue
			}
			fmt.Fprintf(out, "BenchmarkServe/delta_%s_p50 %d %d ns/op\n", st, n, int64(h.Quantile(0.5)))
			fmt.Fprintf(out, "BenchmarkServe/delta_%s_p99 %d %d ns/op\n", st, n, int64(h.Quantile(0.99)))
		}
		return nil
	}
	fmt.Fprintf(out, "ocpload: %d ops in %v (offered %.0f/s, %d tenants, %dx%d %s)\n",
		total, elapsed.Round(time.Millisecond), *rate, *tenants, *size, *size, *engine)
	for _, s := range stats {
		fmt.Fprintf(out, "  %-6s %7d ops  %8.0f/s  p50 %10v  p99 %10v\n",
			s.name, s.n, s.opsSec, s.p50.Round(time.Microsecond), s.p99.Round(time.Microsecond))
	}
	// Server-side delta stage breakdown, next to the client-observed
	// delta latency above: the difference between client p99 and stage
	// total p99 is wire + HTTP handling.
	if stageHist["total"].Count() > 0 {
		fmt.Fprintf(out, "  server-side delta stages:\n")
		for _, st := range stageOrder {
			h := stageHist[st]
			fmt.Fprintf(out, "    %-8s p50 %10v  p99 %10v\n", st,
				time.Duration(h.Quantile(0.5)).Round(time.Microsecond),
				time.Duration(h.Quantile(0.99)).Round(time.Microsecond))
		}
	}
	return nil
}

// hasFeature reports whether the create response advertised a serving
// capability.
func hasFeature(features []string, want string) bool {
	for _, f := range features {
		if f == want {
			return true
		}
	}
	return false
}
