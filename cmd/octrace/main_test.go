package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ocpmesh/internal/core"
	"ocpmesh/internal/grid"
	"ocpmesh/internal/obs"
	"ocpmesh/internal/obs/analyze"
	"ocpmesh/internal/obs/costs"
	"ocpmesh/internal/serve"
	"ocpmesh/internal/status"
	"ocpmesh/internal/sweep"
)

// writeTrace runs one formation on the given engine with a trace file
// and returns the path.
func writeTrace(t *testing.T, dir, name string, engine core.EngineKind) string {
	t.Helper()
	path := filepath.Join(dir, name)
	rec, finish, err := obs.Setup(obs.NewRun("octrace-test", 1, nil), path, "")
	if err != nil {
		t.Fatal(err)
	}
	faults := []grid.Point{{X: 2, Y: 2}, {X: 3, Y: 3}, {X: 4, Y: 4}, {X: 6, Y: 7}}
	if _, err := core.Form(core.Config{Width: 12, Height: 12, Engine: engine, Recorder: rec}, faults); err != nil {
		t.Fatal(err)
	}
	if err := finish(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestReportOnRealTrace drives `octrace report` over a real formation
// trace.
func TestReportOnRealTrace(t *testing.T) {
	dir := t.TempDir()
	path := writeTrace(t, dir, "seq.ndjson", core.EngineSequential)
	var out strings.Builder
	if err := run([]string{"report", path}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"octrace-test", "phase1", "phase2", "sequential"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("report missing %q:\n%s", want, out.String())
		}
	}

	out.Reset()
	if err := run([]string{"report", "-json", path}, &out); err != nil {
		t.Fatal(err)
	}
	var rep analyze.Report
	if err := json.Unmarshal([]byte(out.String()), &rep); err != nil {
		t.Fatalf("-json output not JSON: %v", err)
	}
	if len(rep.Phases) != 2 {
		t.Fatalf("phases = %+v, want phase1 and phase2", rep.Phases)
	}
}

// TestDiffEngineInvariance asserts the PR 3 invariance property from
// real traces: a sequential and a parallel run of the same
// configuration produce equivalent trace skeletons, and a different
// configuration does not.
func TestDiffEngineInvariance(t *testing.T) {
	dir := t.TempDir()
	seq := writeTrace(t, dir, "seq.ndjson", core.EngineSequential)
	par := writeTrace(t, dir, "par.ndjson", core.EngineParallel)
	bit := writeTrace(t, dir, "bit.ndjson", core.EngineBitset)
	for _, other := range []string{par, bit} {
		var out strings.Builder
		if err := run([]string{"diff", seq, other}, &out); err != nil {
			t.Fatalf("sequential vs %s traces diverge: %v\n%s", filepath.Base(other), err, out.String())
		}
		if !strings.Contains(out.String(), "traces equivalent") {
			t.Fatalf("diff output: %s", out.String())
		}
	}
	var out strings.Builder

	// Perturb the configuration: the skeletons must diverge.
	other := filepath.Join(dir, "other.ndjson")
	rec, finish, err := obs.Setup(obs.NewRun("octrace-test", 1, nil), other, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.Form(core.Config{Width: 12, Height: 12, Recorder: rec},
		[]grid.Point{{X: 5, Y: 5}}); err != nil {
		t.Fatal(err)
	}
	if err := finish(); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run([]string{"diff", seq, other}, &out); err == nil {
		t.Fatalf("different configurations reported equivalent:\n%s", out.String())
	}
}

// TestBenchCheckOnCommittedBaselines is the acceptance check for the CI
// perf gate: every committed BENCH_*.json passes against itself, and a
// synthetically regressed copy fails.
func TestBenchCheckOnCommittedBaselines(t *testing.T) {
	baselines, err := filepath.Glob(filepath.Join("..", "..", "BENCH_*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(baselines) == 0 {
		t.Fatal("no committed BENCH_*.json baselines found")
	}
	for _, path := range baselines {
		var out strings.Builder
		if err := run([]string{"bench", "check", path, path}, &out); err != nil {
			t.Errorf("%s vs itself failed: %v\n%s", path, err, out.String())
		}
		if !strings.Contains(out.String(), "bench check ok") {
			t.Errorf("%s: missing ok marker:\n%s", path, out.String())
		}
	}

	// Regress a copy of the first baseline by 2x: the gate must fail.
	raw, err := os.ReadFile(baselines[0])
	if err != nil {
		t.Fatal(err)
	}
	var rep analyze.BenchReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	for i := range rep.Results {
		rep.Results[i].NsPerOp *= 2
	}
	regressed := filepath.Join(t.TempDir(), "regressed.json")
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(regressed, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"bench", "check", baselines[0], regressed}, &out); err == nil {
		t.Fatalf("2x regression passed the gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "!!") {
		t.Errorf("regressed benchmarks not marked:\n%s", out.String())
	}

	// And an improved copy (0.5x) passes: the gate is one-sided.
	for i := range rep.Results {
		rep.Results[i].NsPerOp /= 8 // 2x * 1/8 = 0.25x of baseline
	}
	improved := filepath.Join(t.TempDir(), "improved.json")
	data, _ = json.Marshal(rep)
	if err := os.WriteFile(improved, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"bench", "check", baselines[0], improved}, &out); err != nil {
		t.Fatalf("improvement failed the gate: %v", err)
	}
}

// TestConvergeAcrossEngines is the converge acceptance check: a sweep
// at the paper's fault density recorded with the counter fabric, on
// every engine, reports every phase within the rounds <= max d(B)
// bound and zero invariant violations.
func TestConvergeAcrossEngines(t *testing.T) {
	dir := t.TempDir()
	for _, engine := range []core.EngineKind{
		core.EngineSequential, core.EngineChannels, core.EngineParallel, core.EngineBitset,
	} {
		path := filepath.Join(dir, engine.String()+".ndjson")
		rec, finish, err := obs.Setup(obs.NewRun("converge-test", 1, nil), path, "")
		if err != nil {
			t.Fatal(err)
		}
		fabric := costs.NewFabric(0)
		runner, err := sweep.NewRunner(sweep.Config{
			// 20x20 with up to 4 faults: the paper's <= 1% density regime,
			// where the round bound holds (see core/monitor.go).
			Width: 20, Height: 20, MaxFaults: 4, Step: 2, Replications: 3,
			Seed: 7, Engine: engine, Recorder: rec, Costs: fabric,
			StrictInvariants: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := runner.Sweep(status.Def2b, sweep.Uniform, sweep.RoundsPhase1); err != nil {
			t.Fatalf("%s sweep: %v", engine, err)
		}
		if err := finish(); err != nil {
			t.Fatal(err)
		}

		var out strings.Builder
		if err := run([]string{"converge", path}, &out); err != nil {
			t.Fatalf("%s: converge failed: %v\n%s", engine, err, out.String())
		}
		text := out.String()
		if !strings.Contains(text, "invariants ok") {
			t.Errorf("%s: no invariants-ok marker:\n%s", engine, text)
		}
		if strings.Contains(text, "VIOLATION") {
			t.Errorf("%s: violations reported:\n%s", engine, text)
		}
		// Every phase line must show all runs within the bound.
		for _, line := range strings.Split(text, "\n") {
			if !strings.HasPrefix(line, "phase") {
				continue
			}
			fields := strings.Fields(line)
			var within string
			for _, f := range fields {
				if strings.HasPrefix(f, "within-bound=") {
					within = strings.TrimPrefix(f, "within-bound=")
				}
			}
			parts := strings.SplitN(within, "/", 2)
			if len(parts) != 2 || parts[0] != parts[1] {
				t.Errorf("%s: phase not fully within bound: %s", engine, line)
			}
		}

		// JSON mode parses and agrees on the violation count.
		out.Reset()
		if err := run([]string{"converge", "-json", path}, &out); err != nil {
			t.Fatalf("%s: converge -json: %v", engine, err)
		}
		var rep analyze.ConvergeReport
		if err := json.Unmarshal([]byte(out.String()), &rep); err != nil {
			t.Fatalf("%s: converge -json output invalid: %v", engine, err)
		}
		if rep.ViolationCount() != 0 || rep.CostsEvents == 0 {
			t.Errorf("%s: json report = %d violations, %d costs events", engine, rep.ViolationCount(), rep.CostsEvents)
		}
	}
}

// TestConvergeWithoutFabric pins the CI-misuse guard: a trace recorded
// with no counter fabric must fail the converge gate, not pass it.
func TestConvergeWithoutFabric(t *testing.T) {
	dir := t.TempDir()
	path := writeTrace(t, dir, "nofabric.ndjson", core.EngineSequential)
	var out strings.Builder
	err := run([]string{"converge", path}, &out)
	if err == nil {
		t.Fatal("fabric-less trace passed the converge gate")
	}
	if !strings.Contains(err.Error(), "no costs events") {
		t.Fatalf("error %q does not explain the missing fabric", err)
	}
}

// TestBenchCheckMissingBaseline pins satellite behavior: a gate run
// against a baseline path that does not exist must fail with a
// diagnostic naming the role and the path, not pass silently.
func TestBenchCheckMissingBaseline(t *testing.T) {
	dir := t.TempDir()
	fresh := filepath.Join(dir, "fresh.json")
	rep := analyze.BenchReport{Results: []analyze.BenchResult{{Name: "BenchmarkX", NsPerOp: 100}}}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(fresh, data, 0o644); err != nil {
		t.Fatal(err)
	}

	missing := filepath.Join(dir, "BENCH_nope.json")
	var out strings.Builder
	err = run([]string{"bench", "check", missing, fresh}, &out)
	if err == nil {
		t.Fatal("missing baseline passed the gate")
	}
	for _, want := range []string{"baseline", missing, "does not exist"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("missing-baseline error %q lacks %q", err, want)
		}
	}

	// A missing fresh file names the other role.
	err = run([]string{"bench", "check", fresh, filepath.Join(dir, "gone.json")}, &out)
	if err == nil {
		t.Fatal("missing fresh file passed the gate")
	}
	if !strings.Contains(err.Error(), "fresh") {
		t.Errorf("missing-fresh error %q does not name the fresh role", err)
	}
}

// TestBenchCheckMalformedBaseline pins the other satellite case: a
// baseline that exists but is not a valid bench document (bad JSON, or
// valid JSON with no results) fails with a clear diagnostic.
func TestBenchCheckMalformedBaseline(t *testing.T) {
	dir := t.TempDir()
	fresh := filepath.Join(dir, "fresh.json")
	rep := analyze.BenchReport{Results: []analyze.BenchResult{{Name: "BenchmarkX", NsPerOp: 100}}}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(fresh, data, 0o644); err != nil {
		t.Fatal(err)
	}

	for name, content := range map[string]string{
		"truncated.json": `{"results": [{"name": "Bench`,
		"notjson.json":   "iterations: lots\n",
		"empty.json":     `{"results": []}`,
	} {
		bad := filepath.Join(dir, name)
		if err := os.WriteFile(bad, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		var out strings.Builder
		err := run([]string{"bench", "check", bad, fresh}, &out)
		if err == nil {
			t.Fatalf("malformed baseline %s passed the gate", name)
		}
		for _, want := range []string{"baseline", bad, "not a valid"} {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("%s: error %q lacks %q", name, err, want)
			}
		}
	}
}

// TestBenchOverheadGate pins the CI overhead-gate command: the
// committed BENCH_overhead.json passes the 5% budget, a synthetic
// document over budget fails and marks the offending engine, and a
// document without fabric pairs is rejected.
func TestBenchOverheadGate(t *testing.T) {
	var out strings.Builder
	committed := filepath.Join("..", "..", "BENCH_overhead.json")
	if err := run([]string{"bench", "overhead", committed}, &out); err != nil {
		t.Fatalf("committed overhead baseline over budget: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "overhead ok") {
		t.Fatalf("missing ok marker:\n%s", out.String())
	}

	dir := t.TempDir()
	write := func(name string, rep analyze.BenchReport) string {
		t.Helper()
		data, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}

	over := write("over.json", analyze.BenchReport{Results: []analyze.BenchResult{
		{Name: "BenchmarkOverhead/bitset/n=512/fabric=off-8", NsPerOp: 100},
		{Name: "BenchmarkOverhead/bitset/n=512/fabric=on-8", NsPerOp: 120},
		{Name: "BenchmarkOverhead/parallel/n=512/fabric=off-8", NsPerOp: 1000},
		{Name: "BenchmarkOverhead/parallel/n=512/fabric=on-8", NsPerOp: 1010},
	}})
	out.Reset()
	err := run([]string{"bench", "overhead", over}, &out)
	if err == nil || !strings.Contains(err.Error(), "1 of 2") {
		t.Fatalf("20%% overhead passed the 5%% gate: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "!!") {
		t.Fatalf("offending engine not marked:\n%s", out.String())
	}
	// A looser budget admits the same document.
	if err := run([]string{"bench", "overhead", "-max", "0.25", over}, &out); err != nil {
		t.Fatalf("25%% budget rejected a 20%% overhead: %v", err)
	}

	unpaired := write("unpaired.json", analyze.BenchReport{Results: []analyze.BenchResult{
		{Name: "BenchmarkChurn/incremental/f=10", NsPerOp: 100},
	}})
	if err := run([]string{"bench", "overhead", unpaired}, &out); err == nil ||
		!strings.Contains(err.Error(), "no <key>=off/<key>=on pairs") {
		t.Fatalf("pairless document not rejected: %v", err)
	}

	if err := run([]string{"bench", "overhead", filepath.Join(dir, "gone.json")}, &out); err == nil ||
		!strings.Contains(err.Error(), "overhead") || !strings.Contains(err.Error(), "does not exist") {
		t.Fatalf("missing overhead document not diagnosed: %v", err)
	}
}

// TestLatencyCommand drives `octrace latency` over a real served
// trace: the report must print the stage and attribution tables, and
// the command must fail on traces with no serve_request events and on
// traces whose stage sums do not telescope.
func TestLatencyCommand(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "served.ndjson")
	rec, finish, err := obs.Setup(obs.NewRun("latency-test", 1, nil), path, "")
	if err != nil {
		t.Fatal(err)
	}
	svc := serve.New(serve.Options{Shards: 2, Recorder: rec})
	for i := 0; i < 2; i++ {
		cfg := serve.TenantConfig{Width: 12, Height: 12, Engine: "bitset"}
		if _, _, err := svc.Create([]string{"alpha", "beta"}[i], cfg, nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		tenant := []string{"alpha", "beta"}[i%2]
		if _, err := svc.Apply(tenant, "add", []grid.Point{{X: i, Y: i}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := finish(); err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	if err := run([]string{"latency", "-top", "3", path}, &out); err != nil {
		t.Fatalf("latency over served trace: %v\n%s", err, out.String())
	}
	for _, want := range []string{"requests 10", "queue", "compute", "shard", "alpha", "beta", "worst requests:"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("latency report missing %q:\n%s", want, out.String())
		}
	}
	out.Reset()
	if err := run([]string{"latency", "-json", path}, &out); err != nil {
		t.Fatal(err)
	}
	var rep analyze.LatencyReport
	if err := json.Unmarshal([]byte(out.String()), &rep); err != nil {
		t.Fatalf("latency -json not JSON: %v\n%s", err, out.String())
	}
	if rep.Requests != 10 || rep.Inconsistent != 0 {
		t.Fatalf("latency -json report = %+v, want 10 consistent requests", rep)
	}

	// A trace with no serve_request events is an error, with a pointer
	// at the stages feature.
	bare := writeTrace(t, dir, "formation.ndjson", core.EngineSequential)
	if err := run([]string{"latency", bare}, &out); err == nil ||
		!strings.Contains(err.Error(), "no serve_request events") {
		t.Fatalf("serve_request-free trace not diagnosed: %v", err)
	}

	// A serve_request whose stages do not sum to its DurNS exits nonzero.
	broken := filepath.Join(dir, "broken.ndjson")
	line, err := json.Marshal(obs.Event{
		Type: obs.EServeRequest, Tenant: "x", Shard: 1, Req: 1,
		QueueNS: 1, BatchNS: 1, ComputeNS: 1, PublishNS: 1, DurNS: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(broken, append(line, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"latency", broken}, &out); err == nil ||
		!strings.Contains(err.Error(), "do not sum") {
		t.Fatalf("inconsistent trace not diagnosed: %v", err)
	}
}

// TestBenchOverheadStagesPair pins the generalized pair matcher on the
// latency-attribution legs: BenchmarkServeStages' stages=off/on pair
// gates like fabric=off/on, and its warmup leg is ignored.
func TestBenchOverheadStagesPair(t *testing.T) {
	dir := t.TempDir()
	data, err := json.Marshal(analyze.BenchReport{Results: []analyze.BenchResult{
		{Name: "BenchmarkServeStages/warmup-8", NsPerOp: 999999},
		{Name: "BenchmarkServeStages/delta/stages=off-8", NsPerOp: 100},
		{Name: "BenchmarkServeStages/delta/stages=on-8", NsPerOp: 103},
	}})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "stages.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"bench", "overhead", path}, &out); err != nil {
		t.Fatalf("3%% stage overhead failed the 5%% gate: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "1 pair(s)") {
		t.Fatalf("warmup leg counted as a pair:\n%s", out.String())
	}
}

// TestUsageErrors pins the CLI's error surface.
func TestUsageErrors(t *testing.T) {
	var out strings.Builder
	for _, args := range [][]string{
		nil,
		{"frobnicate"},
		{"bench"},
		{"bench", "frob"},
		{"diff", "only-one.ndjson"},
		{"report"},
	} {
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v) succeeded, want usage error", args)
		}
	}
	if err := run([]string{"report", filepath.Join(t.TempDir(), "missing.ndjson")}, &out); err == nil {
		t.Error("missing trace file not reported")
	}
}

// writeBenchDoc marshals a bench report to a temp file.
func writeBenchDoc(t *testing.T, rep *analyze.BenchReport) string {
	t.Helper()
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestBenchCheckMissingCounterpartDiagnostic: a fresh run that dropped
// baseline benchmarks (a renamed /w=N leg, a deleted sub-benchmark)
// must fail with a diagnostic naming the missing benchmarks — not the
// misleading "regressed beyond tolerance" message.
func TestBenchCheckMissingCounterpartDiagnostic(t *testing.T) {
	base := &analyze.BenchReport{Results: []analyze.BenchResult{
		{Name: "BenchmarkBitset/bitset/n=2048/w=1-8", Iterations: 1, NsPerOp: 100},
		{Name: "BenchmarkBitset/bitset/n=2048/w=8-8", Iterations: 1, NsPerOp: 100},
	}}
	fresh := &analyze.BenchReport{Results: base.Results[:1]}
	var out strings.Builder
	err := run([]string{"bench", "check", writeBenchDoc(t, base), writeBenchDoc(t, fresh)}, &out)
	if err == nil {
		t.Fatalf("shrunk fresh run passed the gate:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "missing") || !strings.Contains(err.Error(), "BenchmarkBitset/bitset/n=2048/w=8") {
		t.Fatalf("diagnostic does not name the missing benchmark: %v", err)
	}
	if strings.Contains(err.Error(), "regressed beyond") {
		t.Fatalf("missing counterpart misreported as a regression: %v", err)
	}
}

// TestBenchScalingGate drives `octrace bench scaling`: the committed
// bitset baseline passes, a doctored w=8 slowdown at n=2048 fails, a
// document without /w=N legs fails loudly, and one whose families are
// all below the size floor fails rather than passing vacuously.
func TestBenchScalingGate(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"bench", "scaling", filepath.Join("..", "..", "BENCH_bitset.json")}, &out); err != nil {
		t.Fatalf("committed bitset baseline fails the scaling gate: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "scaling ok") {
		t.Fatalf("missing ok marker:\n%s", out.String())
	}

	bad := &analyze.BenchReport{Results: []analyze.BenchResult{
		{Name: "BenchmarkBitset/bitset/n=2048/w=1-8", Iterations: 1, NsPerOp: 1000},
		{Name: "BenchmarkBitset/bitset/n=2048/w=8-8", Iterations: 1, NsPerOp: 1500},
	}}
	out.Reset()
	if err := run([]string{"bench", "scaling", writeBenchDoc(t, bad)}, &out); err == nil {
		t.Fatalf("w=8 slowdown at n=2048 passed:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "!!") {
		t.Fatalf("violation not marked:\n%s", out.String())
	}

	noLegs := &analyze.BenchReport{Results: []analyze.BenchResult{
		{Name: "BenchmarkChurn/incremental/f=10-8", Iterations: 1, NsPerOp: 50},
	}}
	if err := run([]string{"bench", "scaling", writeBenchDoc(t, noLegs)}, &out); err == nil {
		t.Fatal("document without /w=N legs passed the scaling gate")
	}

	tooSmall := &analyze.BenchReport{Results: []analyze.BenchResult{
		{Name: "BenchmarkBitset/bitset/n=512/w=1-8", Iterations: 1, NsPerOp: 100},
		{Name: "BenchmarkBitset/bitset/n=512/w=8-8", Iterations: 1, NsPerOp: 400},
	}}
	if err := run([]string{"bench", "scaling", writeBenchDoc(t, tooSmall)}, &out); err == nil {
		t.Fatal("document with no family at n >= 2048 passed vacuously")
	}
	// With the floor lowered to 0 the n=512 family enters the gate, and
	// its 4x w=8 leg must violate.
	out.Reset()
	if err := run([]string{"bench", "scaling", "-min-n", "0", writeBenchDoc(t, tooSmall)}, &out); err == nil {
		t.Fatalf("lowered floor did not catch the n=512 violation:\n%s", out.String())
	}
}
