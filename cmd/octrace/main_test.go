package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ocpmesh/internal/core"
	"ocpmesh/internal/grid"
	"ocpmesh/internal/obs"
	"ocpmesh/internal/obs/analyze"
)

// writeTrace runs one formation on the given engine with a trace file
// and returns the path.
func writeTrace(t *testing.T, dir, name string, engine core.EngineKind) string {
	t.Helper()
	path := filepath.Join(dir, name)
	rec, finish, err := obs.Setup(obs.NewRun("octrace-test", 1, nil), path, "")
	if err != nil {
		t.Fatal(err)
	}
	faults := []grid.Point{{X: 2, Y: 2}, {X: 3, Y: 3}, {X: 4, Y: 4}, {X: 6, Y: 7}}
	if _, err := core.Form(core.Config{Width: 12, Height: 12, Engine: engine, Recorder: rec}, faults); err != nil {
		t.Fatal(err)
	}
	if err := finish(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestReportOnRealTrace drives `octrace report` over a real formation
// trace.
func TestReportOnRealTrace(t *testing.T) {
	dir := t.TempDir()
	path := writeTrace(t, dir, "seq.ndjson", core.EngineSequential)
	var out strings.Builder
	if err := run([]string{"report", path}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"octrace-test", "phase1", "phase2", "sequential"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("report missing %q:\n%s", want, out.String())
		}
	}

	out.Reset()
	if err := run([]string{"report", "-json", path}, &out); err != nil {
		t.Fatal(err)
	}
	var rep analyze.Report
	if err := json.Unmarshal([]byte(out.String()), &rep); err != nil {
		t.Fatalf("-json output not JSON: %v", err)
	}
	if len(rep.Phases) != 2 {
		t.Fatalf("phases = %+v, want phase1 and phase2", rep.Phases)
	}
}

// TestDiffEngineInvariance asserts the PR 3 invariance property from
// real traces: a sequential and a parallel run of the same
// configuration produce equivalent trace skeletons, and a different
// configuration does not.
func TestDiffEngineInvariance(t *testing.T) {
	dir := t.TempDir()
	seq := writeTrace(t, dir, "seq.ndjson", core.EngineSequential)
	par := writeTrace(t, dir, "par.ndjson", core.EngineParallel)
	bit := writeTrace(t, dir, "bit.ndjson", core.EngineBitset)
	for _, other := range []string{par, bit} {
		var out strings.Builder
		if err := run([]string{"diff", seq, other}, &out); err != nil {
			t.Fatalf("sequential vs %s traces diverge: %v\n%s", filepath.Base(other), err, out.String())
		}
		if !strings.Contains(out.String(), "traces equivalent") {
			t.Fatalf("diff output: %s", out.String())
		}
	}
	var out strings.Builder

	// Perturb the configuration: the skeletons must diverge.
	other := filepath.Join(dir, "other.ndjson")
	rec, finish, err := obs.Setup(obs.NewRun("octrace-test", 1, nil), other, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.Form(core.Config{Width: 12, Height: 12, Recorder: rec},
		[]grid.Point{{X: 5, Y: 5}}); err != nil {
		t.Fatal(err)
	}
	if err := finish(); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run([]string{"diff", seq, other}, &out); err == nil {
		t.Fatalf("different configurations reported equivalent:\n%s", out.String())
	}
}

// TestBenchCheckOnCommittedBaselines is the acceptance check for the CI
// perf gate: every committed BENCH_*.json passes against itself, and a
// synthetically regressed copy fails.
func TestBenchCheckOnCommittedBaselines(t *testing.T) {
	baselines, err := filepath.Glob(filepath.Join("..", "..", "BENCH_*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(baselines) == 0 {
		t.Fatal("no committed BENCH_*.json baselines found")
	}
	for _, path := range baselines {
		var out strings.Builder
		if err := run([]string{"bench", "check", path, path}, &out); err != nil {
			t.Errorf("%s vs itself failed: %v\n%s", path, err, out.String())
		}
		if !strings.Contains(out.String(), "bench check ok") {
			t.Errorf("%s: missing ok marker:\n%s", path, out.String())
		}
	}

	// Regress a copy of the first baseline by 2x: the gate must fail.
	raw, err := os.ReadFile(baselines[0])
	if err != nil {
		t.Fatal(err)
	}
	var rep analyze.BenchReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	for i := range rep.Results {
		rep.Results[i].NsPerOp *= 2
	}
	regressed := filepath.Join(t.TempDir(), "regressed.json")
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(regressed, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"bench", "check", baselines[0], regressed}, &out); err == nil {
		t.Fatalf("2x regression passed the gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "!!") {
		t.Errorf("regressed benchmarks not marked:\n%s", out.String())
	}

	// And an improved copy (0.5x) passes: the gate is one-sided.
	for i := range rep.Results {
		rep.Results[i].NsPerOp /= 8 // 2x * 1/8 = 0.25x of baseline
	}
	improved := filepath.Join(t.TempDir(), "improved.json")
	data, _ = json.Marshal(rep)
	if err := os.WriteFile(improved, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"bench", "check", baselines[0], improved}, &out); err != nil {
		t.Fatalf("improvement failed the gate: %v", err)
	}
}

// TestUsageErrors pins the CLI's error surface.
func TestUsageErrors(t *testing.T) {
	var out strings.Builder
	for _, args := range [][]string{
		nil,
		{"frobnicate"},
		{"bench"},
		{"bench", "frob"},
		{"diff", "only-one.ndjson"},
		{"report"},
	} {
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v) succeeded, want usage error", args)
		}
	}
	if err := run([]string{"report", filepath.Join(t.TempDir(), "missing.ndjson")}, &out); err == nil {
		t.Error("missing trace file not reported")
	}
}
