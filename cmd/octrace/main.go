// Command octrace analyzes the artifacts the observability layer
// writes offline: NDJSON event traces (-trace on the other commands)
// and BENCH_*.json benchmark documents (make bench / churn-bench /
// parallel-bench).
//
// Usage:
//
//	octrace report t.ndjson [more.ndjson ...]
//	    Per-trace summary: event counts, per-phase/per-engine round and
//	    timing breakdowns, span roll-ups, figure wall-clock, sweep /
//	    route / churn totals. -json emits the report as JSON.
//
//	octrace diff a.ndjson b.ndjson
//	    Compare the engine-invariant skeletons of two traces — e.g. a
//	    sequential and a parallel run of the same configuration, which
//	    must match event for event. Exits 1 on divergence. -unordered
//	    compares multisets (needed for sweeps recorded with -workers >1,
//	    where cell scheduling interleaves events).
//
//	octrace bench check [-tol 0.25] [-each] baseline.json fresh.json
//	    Compare a fresh benchmark document against a committed baseline
//	    and exit 1 when the median slowdown across benchmarks exceeds
//	    the tolerance (or, with -each, when any single benchmark does).
//	    The CI perf gate runs this against the committed BENCH_*.json.
//
//	octrace bench overhead [-max 0.05] BENCH_overhead.json
//	    Enforce an instrumentation overhead budget: each <key>=on
//	    benchmark in the document must stay within the budget of its
//	    <key>=off twin (BenchmarkOverhead emits fabric=off/on pairs,
//	    BenchmarkServeStages stages=off/on pairs). Exits 1 when any
//	    pair exceeds it.
//
//	octrace bench speedup [-min 10] [-min-n 512] BENCH_route.json
//	    Enforce the indexed-router speedup contract on a document with
//	    idx=off/idx=on benchmark pairs (BenchmarkRoute): at problem
//	    sizes n >= -min-n, the off leg's ns/op must be at least -min
//	    times the on leg's. Exits 1 on violation, on a document without
//	    idx pairs, and when no pair reaches -min-n (make route-bench).
//
//	octrace bench scaling [-min-n 2048] [-tol 0.10] BENCH_bitset.json
//	    Enforce the worker-scaling contract on a document with /w=N
//	    sub-benchmark legs: at problem sizes n >= -min-n, the highest
//	    worker count's ns/op must not exceed the lowest's beyond -tol.
//	    Exits 1 on violation, on a document without /w=N legs, and
//	    when no family reaches -min-n (make bitset-scale-bench).
//
//	octrace latency [-json] [-top 5] trace.ndjson [more.ndjson ...]
//	    Latency attribution from serve_request events (a trace recorded
//	    by ocpserve -trace under load): exact per-stage percentiles
//	    (queue / batch / compute / publish vs end-to-end), per-shard and
//	    per-tenant attribution tables, and a worst-request drill-down.
//	    Exits 1 when any event's stage sums disagree with its end-to-end
//	    latency (a corrupted trace) or when the trace carries no
//	    serve_request events at all.
//
//	octrace converge [-json] trace.ndjson [more.ndjson ...]
//	    The convergence observatory's offline report, from the costs /
//	    block_converge / invariant_violation events a run with the
//	    counter fabric attached writes: per-phase rounds-vs-max-d(B)
//	    scatter with within-bound counts, messages vs fault density,
//	    per-block convergence-round tails (p50/p90/p99/max), and every
//	    invariant violation. Exits 1 when any trace carries violations
//	    or lacks costs events entirely (a trace recorded without the
//	    fabric must not silently pass the CI invariant gate).
//
// See TRACE.md for the trace schema and more examples.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"

	"ocpmesh/internal/obs"
	"ocpmesh/internal/obs/analyze"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "octrace:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: octrace <report|diff|bench> ... (see go doc ocpmesh/cmd/octrace)")
	}
	switch args[0] {
	case "report":
		return runReport(args[1:], out)
	case "diff":
		return runDiff(args[1:], out)
	case "latency":
		return runLatency(args[1:], out)
	case "converge":
		return runConverge(args[1:], out)
	case "bench":
		if len(args) >= 2 && args[1] == "overhead" {
			return runBenchOverhead(args[2:], out)
		}
		if len(args) >= 2 && args[1] == "scaling" {
			return runBenchScaling(args[2:], out)
		}
		if len(args) >= 2 && args[1] == "speedup" {
			return runBenchSpeedup(args[2:], out)
		}
		if len(args) < 2 || args[1] != "check" {
			return fmt.Errorf("usage: octrace bench check [-tol 0.25] [-each] baseline.json fresh.json | octrace bench overhead [-max 0.05] overhead.json | octrace bench scaling [-min-n 2048] [-tol 0.10] bench.json | octrace bench speedup [-min 10] [-min-n 512] bench.json")
		}
		return runBenchCheck(args[2:], out)
	default:
		return fmt.Errorf("unknown subcommand %q (want report, diff, latency, converge, or bench check)", args[0])
	}
}

func runReport(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("octrace report", flag.ContinueOnError)
	asJSON := fs.Bool("json", false, "emit the report as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("usage: octrace report [-json] trace.ndjson ...")
	}
	for i, path := range fs.Args() {
		events, err := readTrace(path)
		if err != nil {
			return err
		}
		rep := analyze.Summarize(events)
		if *asJSON {
			enc := json.NewEncoder(out)
			enc.SetIndent("", "  ")
			if err := enc.Encode(rep); err != nil {
				return err
			}
			continue
		}
		if i > 0 {
			fmt.Fprintln(out)
		}
		fmt.Fprintf(out, "== %s ==\n", path)
		rep.WriteText(out)
	}
	return nil
}

func runDiff(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("octrace diff", flag.ContinueOnError)
	unordered := fs.Bool("unordered", false, "compare as multisets (for traces of concurrent sweeps)")
	max := fs.Int("max", 10, "maximum divergences to report")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("usage: octrace diff [-unordered] a.ndjson b.ndjson")
	}
	a, err := readTrace(fs.Arg(0))
	if err != nil {
		return err
	}
	b, err := readTrace(fs.Arg(1))
	if err != nil {
		return err
	}
	diffs := analyze.Diff(a, b, analyze.DiffOptions{Unordered: *unordered, MaxDiffs: *max})
	if len(diffs) == 0 {
		fmt.Fprintf(out, "traces equivalent: %d comparable events\n", len(analyze.Comparable(a)))
		return nil
	}
	for _, d := range diffs {
		fmt.Fprintln(out, d)
	}
	return fmt.Errorf("traces diverge (%d difference(s) shown)", len(diffs))
}

// runLatency is the serving layer's offline latency-attribution
// report. It treats a stage-sum mismatch as trace corruption and exits
// nonzero: the serving layer derives every serve_request's stages from
// one chain of monotonic stamps, so they telescope exactly by
// construction.
func runLatency(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("octrace latency", flag.ContinueOnError)
	asJSON := fs.Bool("json", false, "emit the report as JSON")
	top := fs.Int("top", 5, "worst requests to list in the drill-down (0 = none)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("usage: octrace latency [-json] [-top 5] trace.ndjson ...")
	}
	inconsistent := 0
	for i, path := range fs.Args() {
		events, err := readTrace(path)
		if err != nil {
			return err
		}
		rep := analyze.Latency(events, *top)
		if rep.Requests == 0 {
			return fmt.Errorf("latency: %s has no serve_request events — server run with stages disabled, or trace predates latency attribution? (see TRACE.md)", path)
		}
		inconsistent += rep.Inconsistent
		if *asJSON {
			enc := json.NewEncoder(out)
			enc.SetIndent("", "  ")
			if err := enc.Encode(rep); err != nil {
				return err
			}
			continue
		}
		if i > 0 {
			fmt.Fprintln(out)
		}
		fmt.Fprintf(out, "== %s ==\n", path)
		rep.WriteText(out)
	}
	if inconsistent > 0 {
		return fmt.Errorf("latency: %d serve_request event(s) whose stages do not sum to the end-to-end latency — corrupted trace?", inconsistent)
	}
	return nil
}

func runConverge(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("octrace converge", flag.ContinueOnError)
	asJSON := fs.Bool("json", false, "emit the report as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("usage: octrace converge [-json] trace.ndjson ...")
	}
	violations := 0
	for i, path := range fs.Args() {
		events, err := readTrace(path)
		if err != nil {
			return err
		}
		rep := analyze.Converge(events)
		if rep.CostsEvents == 0 {
			return fmt.Errorf("converge: %s has no costs events — was it recorded without a counter fabric? (see TRACE.md)", path)
		}
		violations += rep.ViolationCount()
		if *asJSON {
			enc := json.NewEncoder(out)
			enc.SetIndent("", "  ")
			if err := enc.Encode(rep); err != nil {
				return err
			}
			continue
		}
		if i > 0 {
			fmt.Fprintln(out)
		}
		fmt.Fprintf(out, "== %s ==\n", path)
		rep.WriteText(out)
	}
	if violations > 0 {
		return fmt.Errorf("converge: %d invariant violation(s)", violations)
	}
	return nil
}

func runBenchCheck(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("octrace bench check", flag.ContinueOnError)
	tol := fs.Float64("tol", 0.25, "allowed slowdown fraction (0.25 = fail beyond +25%)")
	each := fs.Bool("each", false, "fail when any single benchmark regresses, not just the median")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("usage: octrace bench check [-tol 0.25] [-each] baseline.json fresh.json")
	}
	base, err := readBenchFile("baseline", fs.Arg(0))
	if err != nil {
		return err
	}
	fresh, err := readBenchFile("fresh", fs.Arg(1))
	if err != nil {
		return err
	}
	check := analyze.CompareBench(base, fresh)
	check.WriteText(out, *tol)
	// A shrunk suite is its own failure, named as such: "regressed
	// beyond tolerance" when the real cause is benchmarks that never
	// ran (a renamed /w=N leg, a dropped sub-benchmark) would send the
	// investigation in the wrong direction.
	if len(check.Missing) > 0 {
		return fmt.Errorf("bench check failed: %d baseline benchmark(s) missing from %s: %s — rename the baseline entries or regenerate %s, the gate never skips them",
			len(check.Missing), fs.Arg(1), strings.Join(check.Missing, ", "), fs.Arg(0))
	}
	regressed := check.Regressed(*tol)
	if *each {
		regressed = check.AnyRegressed(*tol)
	}
	if regressed {
		return fmt.Errorf("bench check failed: %s regressed beyond +%.0f%% vs %s",
			fs.Arg(1), *tol*100, fs.Arg(0))
	}
	fmt.Fprintln(out, "bench check ok")
	return nil
}

// runBenchScaling enforces the worker-scaling contract on a benchmark
// document with /w=N sub-benchmark legs (BENCH_bitset.json,
// BENCH_parallel.json): at problem sizes n >= -min-n, the highest
// worker count must not be slower than the lowest beyond -tol. The CI
// scaling gate runs this against the committed bitset baseline so a
// reintroduced per-run spawn cost (workers made the engine *slower*)
// fails loudly.
func runBenchScaling(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("octrace bench scaling", flag.ContinueOnError)
	minN := fs.Int("min-n", 2048, "smallest problem size the contract applies to")
	tol := fs.Float64("tol", 0.10, "allowed max-vs-min worker slowdown fraction")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: octrace bench scaling [-min-n 2048] [-tol 0.10] bench.json")
	}
	rep, err := readBenchFile("scaling", fs.Arg(0))
	if err != nil {
		return err
	}
	fams := analyze.WorkerScalings(rep)
	if len(fams) == 0 {
		return fmt.Errorf("bench scaling: %s has no /w=N benchmarks — wrong document, or a renamed worker leg? the gate never passes silently", fs.Arg(0))
	}
	checked := 0
	for _, f := range fams {
		gated := f.N >= *minN && len(f.Points) >= 2
		if gated {
			checked++
		}
		marker := "  "
		if !gated {
			marker = "- " // shown but below the gate's size floor
		}
		fmt.Fprintf(out, "%s %-40s", marker, f.Name)
		for _, p := range f.Points {
			fmt.Fprintf(out, "  w=%d %12.0f", p.Workers, p.NsPerOp)
		}
		fmt.Fprintln(out)
	}
	if violations := analyze.ScalingViolations(fams, *minN, *tol); len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(out, "!!", v)
		}
		return fmt.Errorf("bench scaling: %d violation(s) in %s", len(violations), fs.Arg(0))
	}
	if checked == 0 {
		return fmt.Errorf("bench scaling: %s has no /w=N family at n >= %d — nothing the contract applies to, which must not pass as ok", fs.Arg(0), *minN)
	}
	fmt.Fprintf(out, "scaling ok: %d family(ies) at n >= %d within +%.0f%%\n", checked, *minN, *tol*100)
	return nil
}

// runBenchSpeedup enforces the indexed-router speedup contract on a
// document with idx=off/idx=on pairs (BenchmarkRoute → BENCH_route.json,
// CI route-bench gate): the walk-based off leg must cost at least -min
// times the precompiled on leg at every problem size n >= -min-n.
// Smaller pairs are reported but not gated (short paths leave the walk
// little to lose).
func runBenchSpeedup(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("octrace bench speedup", flag.ContinueOnError)
	min := fs.Float64("min", 10, "required off/on speedup factor")
	minN := fs.Int("min-n", 512, "gate only pairs at /n=N legs at or above this size")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: octrace bench speedup [-min 10] [-min-n 512] bench.json")
	}
	rep, err := readBenchFile("speedup", fs.Arg(0))
	if err != nil {
		return err
	}
	pairs := analyze.OverheadPairs(rep)
	if len(pairs) == 0 {
		return fmt.Errorf("bench speedup: %s has no idx=off/idx=on pairs — was it produced by BenchmarkRoute (make route-bench)?", fs.Arg(0))
	}
	gated, failed := 0, 0
	for _, p := range pairs {
		speed := p.OffNS / p.OnNS
		marker := "  "
		if m := benchSizeLeg.FindStringSubmatch(p.Name); m != nil {
			if n, _ := strconv.Atoi(m[1]); n >= *minN {
				gated++
				if speed < *min {
					marker = "!!"
					failed++
				}
			}
		}
		fmt.Fprintf(out, "%s %-32s %12.0f -> %12.0f ns/op  (%.1fx)\n",
			marker, p.Name, p.OffNS, p.OnNS, speed)
	}
	if failed > 0 {
		return fmt.Errorf("bench speedup: %d of %d gated pair(s) below %.0fx in %s", failed, gated, *min, fs.Arg(0))
	}
	if gated == 0 {
		return fmt.Errorf("bench speedup: %s has no idx pair at n >= %d — nothing the contract applies to, which must not pass as ok", fs.Arg(0), *minN)
	}
	fmt.Fprintf(out, "speedup ok: %d pair(s) at n >= %d at or above %.0fx\n", gated, *minN, *min)
	return nil
}

var benchSizeLeg = regexp.MustCompile(`/n=(\d+)(/|$)`)

// runBenchOverhead enforces an instrumentation acceptance budget:
// every <key>=on benchmark in the document must stay within -max
// (default 5%) of its <key>=off twin — fabric=off/on for the counter
// fabric (CI overhead-gate), stages=off/on for request-latency
// attribution (CI latency-overhead gate). Both gates run this against
// a freshly measured document.
func runBenchOverhead(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("octrace bench overhead", flag.ContinueOnError)
	max := fs.Float64("max", 0.05, "allowed on/off overhead fraction (0.05 = fail beyond +5%)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: octrace bench overhead [-max 0.05] overhead.json")
	}
	rep, err := readBenchFile("overhead", fs.Arg(0))
	if err != nil {
		return err
	}
	pairs := analyze.OverheadPairs(rep)
	if len(pairs) == 0 {
		return fmt.Errorf("bench overhead: %s has no <key>=off/<key>=on pairs — was it produced by BenchmarkOverhead or BenchmarkServeStages?", fs.Arg(0))
	}
	exceeded := 0
	for _, p := range pairs {
		marker := "  "
		if p.Ratio > 1+*max {
			marker = "!!"
			exceeded++
		}
		fmt.Fprintf(out, "%s %-32s %12.0f -> %12.0f ns/op  (x%.3f)\n",
			marker, p.Name, p.OffNS, p.OnNS, p.Ratio)
	}
	if exceeded > 0 {
		return fmt.Errorf("bench overhead: instrumentation exceeds +%.0f%% on %d of %d pair(s)",
			*max*100, exceeded, len(pairs))
	}
	fmt.Fprintf(out, "overhead ok: %d pair(s) within +%.0f%%\n", len(pairs), *max*100)
	return nil
}

func readTrace(path string) ([]obs.Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	events, err := analyze.ReadEvents(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return events, nil
}

// readBenchFile reads one side of a bench comparison. The role
// ("baseline" or "fresh") labels the diagnostic so a CI failure names
// which file is at fault: a missing or corrupted committed baseline
// must fail the gate loudly, never pass it silently.
func readBenchFile(role, path string) (*analyze.BenchReport, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("bench check: %s file %q does not exist (baseline not committed, or fresh run not written?)", role, path)
		}
		return nil, fmt.Errorf("bench check: %s file: %w", role, err)
	}
	defer f.Close()
	rep, err := analyze.ReadBench(f)
	if err != nil {
		return nil, fmt.Errorf("bench check: %s file %q is not a valid BENCH_*.json document: %w", role, path, err)
	}
	return rep, nil
}
