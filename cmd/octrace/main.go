// Command octrace analyzes the artifacts the observability layer
// writes offline: NDJSON event traces (-trace on the other commands)
// and BENCH_*.json benchmark documents (make bench / churn-bench /
// parallel-bench).
//
// Usage:
//
//	octrace report t.ndjson [more.ndjson ...]
//	    Per-trace summary: event counts, per-phase/per-engine round and
//	    timing breakdowns, span roll-ups, figure wall-clock, sweep /
//	    route / churn totals. -json emits the report as JSON.
//
//	octrace diff a.ndjson b.ndjson
//	    Compare the engine-invariant skeletons of two traces — e.g. a
//	    sequential and a parallel run of the same configuration, which
//	    must match event for event. Exits 1 on divergence. -unordered
//	    compares multisets (needed for sweeps recorded with -workers >1,
//	    where cell scheduling interleaves events).
//
//	octrace bench check [-tol 0.25] [-each] baseline.json fresh.json
//	    Compare a fresh benchmark document against a committed baseline
//	    and exit 1 when the median slowdown across benchmarks exceeds
//	    the tolerance (or, with -each, when any single benchmark does).
//	    The CI perf gate runs this against the committed BENCH_*.json.
//
// See TRACE.md for the trace schema and more examples.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"ocpmesh/internal/obs"
	"ocpmesh/internal/obs/analyze"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "octrace:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: octrace <report|diff|bench> ... (see go doc ocpmesh/cmd/octrace)")
	}
	switch args[0] {
	case "report":
		return runReport(args[1:], out)
	case "diff":
		return runDiff(args[1:], out)
	case "bench":
		if len(args) < 2 || args[1] != "check" {
			return fmt.Errorf("usage: octrace bench check [-tol 0.25] [-each] baseline.json fresh.json")
		}
		return runBenchCheck(args[2:], out)
	default:
		return fmt.Errorf("unknown subcommand %q (want report, diff, or bench check)", args[0])
	}
}

func runReport(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("octrace report", flag.ContinueOnError)
	asJSON := fs.Bool("json", false, "emit the report as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("usage: octrace report [-json] trace.ndjson ...")
	}
	for i, path := range fs.Args() {
		events, err := readTrace(path)
		if err != nil {
			return err
		}
		rep := analyze.Summarize(events)
		if *asJSON {
			enc := json.NewEncoder(out)
			enc.SetIndent("", "  ")
			if err := enc.Encode(rep); err != nil {
				return err
			}
			continue
		}
		if i > 0 {
			fmt.Fprintln(out)
		}
		fmt.Fprintf(out, "== %s ==\n", path)
		rep.WriteText(out)
	}
	return nil
}

func runDiff(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("octrace diff", flag.ContinueOnError)
	unordered := fs.Bool("unordered", false, "compare as multisets (for traces of concurrent sweeps)")
	max := fs.Int("max", 10, "maximum divergences to report")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("usage: octrace diff [-unordered] a.ndjson b.ndjson")
	}
	a, err := readTrace(fs.Arg(0))
	if err != nil {
		return err
	}
	b, err := readTrace(fs.Arg(1))
	if err != nil {
		return err
	}
	diffs := analyze.Diff(a, b, analyze.DiffOptions{Unordered: *unordered, MaxDiffs: *max})
	if len(diffs) == 0 {
		fmt.Fprintf(out, "traces equivalent: %d comparable events\n", len(analyze.Comparable(a)))
		return nil
	}
	for _, d := range diffs {
		fmt.Fprintln(out, d)
	}
	return fmt.Errorf("traces diverge (%d difference(s) shown)", len(diffs))
}

func runBenchCheck(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("octrace bench check", flag.ContinueOnError)
	tol := fs.Float64("tol", 0.25, "allowed slowdown fraction (0.25 = fail beyond +25%)")
	each := fs.Bool("each", false, "fail when any single benchmark regresses, not just the median")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("usage: octrace bench check [-tol 0.25] [-each] baseline.json fresh.json")
	}
	base, err := readBench(fs.Arg(0))
	if err != nil {
		return err
	}
	fresh, err := readBench(fs.Arg(1))
	if err != nil {
		return err
	}
	check := analyze.CompareBench(base, fresh)
	check.WriteText(out, *tol)
	regressed := check.Regressed(*tol)
	if *each {
		regressed = check.AnyRegressed(*tol)
	}
	if regressed {
		return fmt.Errorf("bench check failed: %s regressed beyond +%.0f%% vs %s",
			fs.Arg(1), *tol*100, fs.Arg(0))
	}
	fmt.Fprintln(out, "bench check ok")
	return nil
}

func readTrace(path string) ([]obs.Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	events, err := analyze.ReadEvents(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return events, nil
}

func readBench(path string) (*analyze.BenchReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rep, err := analyze.ReadBench(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}
