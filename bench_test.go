// Benchmark harness: one benchmark per reproduced figure plus the
// ablations from DESIGN.md. The benchmarks measure the cost of
// regenerating each experiment's data point at paper scale (a 100x100
// mesh unless noted); the experiment VALUES themselves are produced by
// cmd/ocpsim and recorded in EXPERIMENTS.md.
//
//	go test -bench=. -benchmem
package ocpmesh_test

import (
	"fmt"
	"io"
	"math/rand"
	"testing"

	"ocpmesh/internal/core"
	"ocpmesh/internal/fault"
	"ocpmesh/internal/geometry"
	"ocpmesh/internal/grid"
	"ocpmesh/internal/mesh"
	"ocpmesh/internal/obs"
	"ocpmesh/internal/obs/costs"
	"ocpmesh/internal/partition"
	"ocpmesh/internal/region"
	"ocpmesh/internal/routeidx"
	"ocpmesh/internal/routing"
	"ocpmesh/internal/safety"
	"ocpmesh/internal/simnet"
	"ocpmesh/internal/status"
	"ocpmesh/internal/wormhole"
)

// form runs the full two-phase pipeline once.
func form(b *testing.B, cfg core.Config, topo *mesh.Topology, faults *grid.PointSet) *core.Result {
	b.Helper()
	res, err := core.FormOn(cfg, topo, faults)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// paperMachine returns the paper's 100x100 mesh and a fault pattern.
func paperMachine(b *testing.B, f int, seed int64) (*mesh.Topology, *grid.PointSet) {
	b.Helper()
	topo := mesh.MustNew(100, 100, mesh.Mesh2D)
	rng := rand.New(rand.NewSource(seed))
	return topo, fault.Uniform{Count: f}.Generate(topo, rng)
}

// BenchmarkFigure5a measures phase 1 (faulty-block formation) on the
// paper's 100x100 mesh across the f sweep, per safety definition.
func BenchmarkFigure5a(b *testing.B) {
	for _, def := range []status.SafetyDef{status.Def2a, status.Def2b} {
		for _, f := range []int{10, 50, 100} {
			b.Run(fmt.Sprintf("%v/f=%d", def, f), func(b *testing.B) {
				topo, faults := paperMachine(b, f, 7)
				env, err := simnet.NewEnv(topo, faults, nil)
				if err != nil {
					b.Fatal(err)
				}
				rule := status.UnsafeRule(def)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := simnet.Sequential().Run(env, rule, simnet.Options{}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFigure5b measures phase 2 (disabled-region formation) given
// precomputed phase-1 labels.
func BenchmarkFigure5b(b *testing.B) {
	for _, f := range []int{10, 50, 100} {
		b.Run(fmt.Sprintf("f=%d", f), func(b *testing.B) {
			topo, faults := paperMachine(b, f, 7)
			env, err := simnet.NewEnv(topo, faults, nil)
			if err != nil {
				b.Fatal(err)
			}
			p1, err := simnet.Sequential().Run(env, status.UnsafeRule(status.Def2b), simnet.Options{})
			if err != nil {
				b.Fatal(err)
			}
			env2, err := simnet.NewEnv(topo, faults, p1.Labels)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := simnet.Sequential().Run(env2, status.EnabledRule(), simnet.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFigure5cd measures the full pipeline plus the enabled-ratio
// metric behind Figure 5(c)/(d).
func BenchmarkFigure5cd(b *testing.B) {
	for _, def := range []status.SafetyDef{status.Def2a, status.Def2b} {
		b.Run(def.String(), func(b *testing.B) {
			topo, faults := paperMachine(b, 50, 7)
			cfg := core.Config{Width: 100, Height: 100, Safety: def}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := form(b, cfg, topo, faults)
				// At sparse fault counts Def2b may capture no nonfaulty
				// node, leaving the ratio undefined — that is fine and
				// mirrors the paper's "can be reduced" filter.
				_, _ = res.EnabledRatio()
			}
		})
	}
}

// BenchmarkFigure1 regenerates the Figure 1 fixture decomposition.
func BenchmarkFigure1(b *testing.B) {
	fx := fault.Figure1()
	cfg := core.Config{Width: 10, Height: 10, Safety: status.Def2a}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := form(b, cfg, fx.Topo, fx.Faults)
		if len(res.Regions) != 2 {
			b.Fatal("unexpected region count")
		}
	}
}

// BenchmarkFigure2 regenerates both Figure 2 fixtures (the
// double-status counterexamples).
func BenchmarkFigure2(b *testing.B) {
	for _, fx := range []fault.Fixture{fault.Figure2A(), fault.Figure2B()} {
		b.Run(fx.Name, func(b *testing.B) {
			cfg := core.Config{Width: 10, Height: 10, Safety: status.Def2b}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				form(b, cfg, fx.Topo, fx.Faults)
			}
		})
	}
}

// BenchmarkX2Routing measures the fault-model routing comparison: BFS
// oracle paths under the block model vs the refined region model.
func BenchmarkX2Routing(b *testing.B) {
	for _, m := range []routing.Model{routing.ModelBlocks, routing.ModelRegions} {
		b.Run(m.String(), func(b *testing.B) {
			topo, faults := paperMachine(b, 60, 3)
			res := form(b, core.Config{Width: 100, Height: 100, Safety: status.Def2a}, topo, faults)
			rng := rand.New(rand.NewSource(5))
			pairs := routing.SamplePairs(res, 20, rng)
			g := routing.NewGraph(res, m)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, pr := range pairs {
					g.ShortestPath(pr[0], pr[1])
				}
			}
		})
	}
}

// BenchmarkX3Engines is the engine ablation: the deterministic sequential
// engine vs the goroutine-per-node channel engine on the same workload.
func BenchmarkX3Engines(b *testing.B) {
	for _, eng := range []core.EngineKind{core.EngineSequential, core.EngineChannels} {
		for _, n := range []int{30, 100} {
			b.Run(fmt.Sprintf("%v/n=%d", eng, n), func(b *testing.B) {
				topo := mesh.MustNew(n, n, mesh.Mesh2D)
				rng := rand.New(rand.NewSource(9))
				faults := fault.Uniform{Count: n / 2}.Generate(topo, rng)
				cfg := core.Config{Width: n, Height: n, Engine: eng}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					form(b, cfg, topo, faults)
				}
			})
		}
	}
}

// BenchmarkX4Torus compares mesh and torus formation cost.
func BenchmarkX4Torus(b *testing.B) {
	for _, kind := range []mesh.Kind{mesh.Mesh2D, mesh.Torus2D} {
		b.Run(kind.String(), func(b *testing.B) {
			topo := mesh.MustNew(100, 100, kind)
			rng := rand.New(rand.NewSource(13))
			faults := fault.Uniform{Count: 50}.Generate(topo, rng)
			cfg := core.Config{Width: 100, Height: 100, Kind: kind}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				form(b, cfg, topo, faults)
			}
		})
	}
}

// BenchmarkX5Clustered compares uniform and clustered fault workloads.
func BenchmarkX5Clustered(b *testing.B) {
	gens := map[string]fault.Generator{
		"uniform":   fault.Uniform{Count: 60},
		"clustered": fault.Clustered{Count: 60, Clusters: 3, Spread: 3},
	}
	for name, gen := range gens {
		b.Run(name, func(b *testing.B) {
			topo := mesh.MustNew(100, 100, mesh.Mesh2D)
			rng := rand.New(rand.NewSource(21))
			faults := gen.Generate(topo, rng)
			cfg := core.Config{Width: 100, Height: 100}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				form(b, cfg, topo, faults)
			}
		})
	}
}

// BenchmarkClosure is the geometry ablation: the rectilinear convex
// closure used by the Theorem 2 checkers.
func BenchmarkClosure(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	seeds := make([]*grid.PointSet, 16)
	for i := range seeds {
		s := grid.NewPointSet()
		for j := 0; j < 12; j++ {
			s.Add(grid.Pt(rng.Intn(30), rng.Intn(30)))
		}
		seeds[i] = s
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		geometry.ConnectedOrthogonalClosure(seeds[i%len(seeds)])
	}
}

// BenchmarkRegionExtraction measures block and region extraction from
// precomputed label vectors at paper scale.
func BenchmarkRegionExtraction(b *testing.B) {
	topo, faults := paperMachine(b, 80, 4)
	res := form(b, core.Config{Width: 100, Height: 100}, topo, faults)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		region.FaultyBlocks(topo, faults, res.Unsafe)
		region.DisabledRegions(topo, faults, res.Enabled, region.Conn8)
	}
}

// BenchmarkDetourRouter measures the online wall-following router against
// the BFS oracle on the same pairs. The detour leg reuses one path
// buffer across queries (RouteAppend), so its allocs/op stay near zero.
func BenchmarkDetourRouter(b *testing.B) {
	topo, faults := paperMachine(b, 60, 8)
	res := form(b, core.Config{Width: 100, Height: 100}, topo, faults)
	g := routing.NewGraph(res, routing.ModelRegions)
	rng := rand.New(rand.NewSource(6))
	pairs := routing.SamplePairs(res, 20, rng)
	b.Run("detour", func(b *testing.B) {
		b.ReportAllocs()
		var buf routing.Path
		for i := 0; i < b.N; i++ {
			for _, pr := range pairs {
				buf, _ = (routing.Detour{}).RouteAppend(g, pr[0], pr[1], buf)
			}
		}
	})
	b.Run("bfs-oracle", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, pr := range pairs {
				g.ShortestPath(pr[0], pr[1])
			}
		}
	})
}

// BenchmarkRoute pins the routing query layer's speedup contract: the
// idx=off legs answer hop-count queries with the walk-based Detour, the
// idx=on legs with the precompiled boundary index (internal/routeidx),
// over identical pair sets. `octrace bench speedup` gates the committed
// BENCH_route.json on off/on >= 10x at n=512 (CI route-bench job). One
// op is one query, so ns/op is directly comparable across legs.
func BenchmarkRoute(b *testing.B) {
	for _, c := range []struct{ n, f int }{{128, 16}, {512, 60}, {512, 200}} {
		topo := mesh.MustNew(c.n, c.n, mesh.Mesh2D)
		rng := rand.New(rand.NewSource(8))
		faults := fault.Uniform{Count: c.f}.Generate(topo, rng)
		res := form(b, core.Config{Width: c.n, Height: c.n, Engine: core.EngineBitset}, topo, faults)
		g := routing.NewGraph(res, routing.ModelRegions)
		pairs := routing.SamplePairs(res, 64, rand.New(rand.NewSource(6)))
		b.Run(fmt.Sprintf("n=%d/f=%d/idx=off", c.n, c.f), func(b *testing.B) {
			b.ReportAllocs()
			var buf routing.Path
			for i := 0; i < b.N; i++ {
				pr := pairs[i%len(pairs)]
				buf, _ = (routing.Detour{}).RouteAppend(g, pr[0], pr[1], buf)
			}
		})
		ix := routeidx.Compile(res, routing.ModelRegions, routeidx.Options{})
		b.Run(fmt.Sprintf("n=%d/f=%d/idx=on", c.n, c.f), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pr := pairs[i%len(pairs)]
				_, _ = ix.Hops(pr[0], pr[1])
			}
		})
	}
}

// BenchmarkX6Wormhole measures the wormhole simulators routing
// oracle-path traffic under the refined fault model.
func BenchmarkX6Wormhole(b *testing.B) {
	topo, faults := paperMachine(b, 40, 11)
	res := form(b, core.Config{Width: 100, Height: 100}, topo, faults)
	g := routing.NewGraph(res, routing.ModelRegions)
	rng := rand.New(rand.NewSource(12))
	pairs := routing.SamplePairs(res, 60, rng)
	flows := make([]wormhole.Flow, len(pairs))
	for i, pr := range pairs {
		flows[i] = wormhole.Flow{Src: pr[0], Dst: pr[1], InjectCycle: i}
	}
	b.Run("worm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := wormhole.Simulate(g, routing.Oracle{}, flows, wormhole.Config{PacketLen: 4}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("flit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := wormhole.SimulateFlits(g, routing.Oracle{}, flows,
				wormhole.FlitConfig{PacketLen: 4, BufDepth: 2}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkX7Partition measures the open-problem solvers on clustered
// fault sets.
func BenchmarkX7Partition(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	seeds := make([]*grid.PointSet, 8)
	for i := range seeds {
		s := grid.NewPointSet()
		for j := 0; j < 8; j++ {
			s.Add(grid.Pt(rng.Intn(14), rng.Intn(14)))
		}
		seeds[i] = s
	}
	b.Run("greedy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			partition.Greedy(seeds[i%len(seeds)])
		}
	})
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := partition.Exact(seeds[i%len(seeds)]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSafetyField measures the extended-safety-level fixpoint at
// paper scale.
func BenchmarkSafetyField(b *testing.B) {
	topo, faults := paperMachine(b, 60, 14)
	res := form(b, core.Config{Width: 100, Height: 100}, topo, faults)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := safety.Compute(res, core.EngineSequential); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkObsOverhead pins the observability contract: the nil-Recorder
// path must cost nothing measurable relative to the uninstrumented
// engine. Three variants run the paper-scale phase-1 fixpoint — no
// recorder, metrics only, and a full NDJSON trace to io.Discard — so
// the delta between "off" and the others is the whole story.
func BenchmarkObsOverhead(b *testing.B) {
	topo, faults := paperMachine(b, 50, 7)
	variants := []struct {
		name string
		rec  func() *obs.Recorder
	}{
		{"off", func() *obs.Recorder { return nil }},
		{"metrics", func() *obs.Recorder { return obs.NewRecorder(nil, obs.NewRegistry()) }},
		{"ndjson", func() *obs.Recorder {
			return obs.NewRecorder(obs.NewTracer(obs.NewNDJSONSink(io.Discard)), obs.NewRegistry())
		}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			env, err := simnet.NewEnv(topo, faults, nil)
			if err != nil {
				b.Fatal(err)
			}
			rule := status.UnsafeRule(status.Def2b)
			rec := v.rec()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := simnet.Sequential().Run(env, rule, simnet.Options{Recorder: rec}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOverhead pins the convergence observatory's acceptance
// criterion: the full formation with the counter fabric attached
// (per-phase cost collectors, per-node last-changed trackers, and the
// paper-invariant monitors over the finished run) must stay within 5%
// of the fabric-off run on the bitset engine at n=512. The same on/off
// pair runs on the tiled parallel engine for cross-checking. `make
// overhead-bench` converts the output to BENCH_overhead.json and
// `octrace bench check` gates regressions against it in CI.
func BenchmarkOverhead(b *testing.B) {
	const n = 512
	topo := mesh.MustNew(n, n, mesh.Mesh2D)
	rng := rand.New(rand.NewSource(42))
	faults := fault.Clustered{Count: n / 2, Clusters: 4, Spread: n / 32}.Generate(topo, rng)

	for _, engine := range []core.EngineKind{core.EngineBitset, core.EngineParallel} {
		for _, fabricOn := range []bool{false, true} {
			state := "off"
			if fabricOn {
				state = "on"
			}
			b.Run(fmt.Sprintf("%s/n=%d/fabric=%s", engine, n, state), func(b *testing.B) {
				cfg := core.Config{Width: n, Height: n, Engine: engine, Workers: 4}
				if fabricOn {
					cfg.Costs = costs.NewFabric(0)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					form(b, cfg, topo, faults)
				}
			})
		}
	}
}

// BenchmarkParallel is the tiled-parallel-engine scaling benchmark: the
// full two-phase formation on large meshes with clustered faults (the
// workload with the deepest fixpoints, hence the most rounds to
// amortize tile spawning over), sequential baseline vs EngineParallel
// at 1, 2, 4 and 8 workers. `make parallel-bench` converts the output
// to BENCH_parallel.json; speedups require real cores, so the recorded
// numbers come from multi-core CI, not a 1-CPU container.
func BenchmarkParallel(b *testing.B) {
	for _, n := range []int{512, 2048} {
		topo := mesh.MustNew(n, n, mesh.Mesh2D)
		rng := rand.New(rand.NewSource(42))
		faults := fault.Clustered{Count: n / 2, Clusters: 4, Spread: n / 32}.Generate(topo, rng)

		b.Run(fmt.Sprintf("sequential/n=%d", n), func(b *testing.B) {
			cfg := core.Config{Width: n, Height: n}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				form(b, cfg, topo, faults)
			}
		})
		for _, w := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("parallel/n=%d/w=%d", n, w), func(b *testing.B) {
				cfg := core.Config{Width: n, Height: n, Engine: core.EngineParallel, Workers: w}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					form(b, cfg, topo, faults)
				}
			})
		}
	}
}

// BenchmarkBitset is the word-parallel-engine benchmark on the same
// workload as BenchmarkParallel, so the two JSON baselines are directly
// comparable: full two-phase formation, large meshes, clustered faults.
// Unlike the tiled engine, the bitset engine's 64-way SWAR parallelism
// and changed-word frontier pay off on a single core, so w=1 against
// BenchmarkParallel's sequential baseline is the headline number.
// `make bitset-bench` converts the output to BENCH_bitset.json.
func BenchmarkBitset(b *testing.B) {
	for _, n := range []int{512, 2048} {
		topo := mesh.MustNew(n, n, mesh.Mesh2D)
		rng := rand.New(rand.NewSource(42))
		faults := fault.Clustered{Count: n / 2, Clusters: 4, Spread: n / 32}.Generate(topo, rng)

		for _, w := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("bitset/n=%d/w=%d", n, w), func(b *testing.B) {
				cfg := core.Config{Width: n, Height: n, Engine: core.EngineBitset, Workers: w}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					form(b, cfg, topo, faults)
				}
			})
		}
	}
}

// BenchmarkChurn compares the cost of absorbing a single-fault delta on
// the paper's 100x100 mesh: incremental (core.Session frontier
// restabilization, one add + one remove per iteration to stay in steady
// state) versus a full from-scratch recompute of both fixpoints and the
// region lists. The ratio is the point of the incremental engine — the
// delta cost tracks the perturbation, not the mesh. The engine=node leg
// restabilizes through the per-node RunFrontierGeneric; engine=bitset
// routes the same deltas through the word-granularity RunBitsetFrontier
// over the session's persistent packed planes.
func BenchmarkChurn(b *testing.B) {
	for _, f := range []int{10, 50, 100} {
		topo, faults := paperMachine(b, f, 11)
		cfg := core.Config{Width: 100, Height: 100}
		// A pool of churn sites away from the background faults.
		rng := rand.New(rand.NewSource(13))
		var sites []grid.Point
		for len(sites) < 256 {
			p := grid.Pt(rng.Intn(100), rng.Intn(100))
			if !faults.Has(p) {
				sites = append(sites, p)
			}
		}

		for _, eng := range []struct {
			name string
			kind core.EngineKind
		}{
			{"node", core.EngineSequential},
			{"bitset", core.EngineBitset},
		} {
			b.Run(fmt.Sprintf("incremental/f=%d/engine=%s", f, eng.name), func(b *testing.B) {
				engCfg := cfg
				engCfg.Engine = eng.kind
				s, err := core.NewSessionOn(engCfg, topo, faults)
				if err != nil {
					b.Fatal(err)
				}
				defer s.Close()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					p := sites[i%len(sites)]
					if _, err := s.AddFaults(p); err != nil {
						b.Fatal(err)
					}
					if _, err := s.RemoveFaults(p); err != nil {
						b.Fatal(err)
					}
				}
			})
		}

		b.Run(fmt.Sprintf("full/f=%d", f), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				churned := faults.Clone()
				churned.Add(sites[i%len(sites)])
				if _, err := core.FormOn(cfg, topo, churned); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
