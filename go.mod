module ocpmesh

go 1.22
