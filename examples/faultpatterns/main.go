// Faultpatterns walks through the paper's worked examples (Section 3,
// Figures 1 and 2) and the non-rectangular fault shapes from the
// introduction (L, T, +, U, H), showing which are orthogonal convex
// polygons and how the two-phase formation treats each.
package main

import (
	"fmt"
	"log"

	"ocpmesh/internal/core"
	"ocpmesh/internal/fault"
	"ocpmesh/internal/geometry"
	"ocpmesh/internal/grid"
	"ocpmesh/internal/mesh"
	"ocpmesh/internal/status"
)

func main() {
	shapes()
	fmt.Println()
	fixtures()
}

// shapes classifies the introduction's fault-region shapes.
func shapes() {
	fmt.Println("== shape classification (paper Section 2) ==")
	for _, kind := range []fault.ShapeKind{fault.ShapeL, fault.ShapeT, fault.ShapePlus, fault.ShapeU, fault.ShapeH} {
		pts := fault.ShapePoints(kind, grid.Pt(0, 0), 2)
		set := grid.PointSetOf(pts...)
		fmt.Printf("  %v-shape: orthogonal convex = %-5t (paper says %t)\n",
			kind, geometry.IsOrthogonallyConvex(set), kind.OrthogonallyConvex())
	}
	fmt.Println("  -> U and H are the shapes a convex fault model must round up;")
	fmt.Println("     the rectilinear convex closure of a U fills its cavity:")
	u := grid.PointSetOf(fault.ShapePoints(fault.ShapeU, grid.Pt(0, 0), 1)...)
	closure := geometry.OrthogonalClosure(u)
	fmt.Printf("     |U| = %d nodes, closure = %d nodes\n", u.Len(), closure.Len())
}

// fixtures re-runs every paper fixture through the pipeline.
func fixtures() {
	fmt.Println("== paper fixtures ==")
	for _, fx := range fault.Fixtures() {
		for _, def := range []status.SafetyDef{status.Def2a, status.Def2b} {
			res, err := core.FormOn(core.Config{
				Width: fx.Topo.Width(), Height: fx.Topo.Height(), Kind: mesh.Mesh2D, Safety: def,
			}, fx.Topo, fx.Faults)
			if err != nil {
				log.Fatal(err)
			}
			if err := res.Validate(def); err != nil {
				log.Fatalf("%s/%v: %v", fx.Name, def, err)
			}
			ratio, ok := res.EnabledRatio()
			ratioStr := "n/a"
			if ok {
				ratioStr = fmt.Sprintf("%.2f", ratio)
			}
			fmt.Printf("  %-9s %v: %d block(s) -> %d region(s), rounds %d+%d, enabled ratio %s\n",
				fx.Name, def, len(res.Blocks), len(res.Regions),
				res.RoundsPhase1, res.RoundsPhase2, ratioStr)
		}
	}
	fmt.Println("\nfigure2b under Definition 2b (everything stays disabled):")
	fx := fault.Figure2B()
	res, err := core.FormOn(core.Config{Width: 10, Height: 10, Safety: status.Def2b}, fx.Topo, fx.Faults)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(core.RenderLegend())
	fmt.Print(res.Render())
}
