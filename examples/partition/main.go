// Partition explores the open problem the paper ends with: some disabled
// regions can be partitioned further into several orthogonal convex
// polygons that keep fewer nonfaulty nodes (conjectured NP-complete in
// general). This example forms disabled regions on clustered faults,
// refines each region with the exact small-case solver (greedy fallback),
// and reports the recovered nodes.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ocpmesh/internal/core"
	"ocpmesh/internal/fault"
	"ocpmesh/internal/mesh"
	"ocpmesh/internal/partition"
	"ocpmesh/internal/status"
)

func main() {
	topo := mesh.MustNew(20, 20, mesh.Mesh2D)
	rng := rand.New(rand.NewSource(4))
	faults := fault.Clustered{Count: 24, Clusters: 3, Spread: 2}.Generate(topo, rng)

	res, err := core.FormOn(core.Config{Width: 20, Height: 20, Safety: status.Def2b}, topo, faults)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%v, %d clustered faults -> %d disabled region(s)\n\n", topo, faults.Len(), len(res.Regions))
	fmt.Println(core.RenderLegend())
	fmt.Print(res.Render())
	fmt.Println()

	totalBefore, totalAfter := 0, 0
	for i, r := range res.Regions {
		cover := partition.Refine(r.Nodes, r.Faults)
		before, after := r.NonfaultyCount(), cover.NonfaultyCount(r.Faults)
		totalBefore += before
		totalAfter += after
		verdict := "already optimal under the canonical closure"
		if after < before {
			verdict = fmt.Sprintf("recovered %d node(s) by splitting into %d polygon(s)",
				before-after, len(cover.Polygons))
		}
		fmt.Printf("region %d: %d nodes, %d faulty, %d nonfaulty disabled — %s\n",
			i, r.Size(), r.Faults.Len(), before, verdict)
		if err := cover.Validate(r.Faults); err != nil {
			log.Fatalf("refined cover invalid: %v", err)
		}
	}
	fmt.Printf("\ntotal nonfaulty nodes kept disabled: %d -> %d\n", totalBefore, totalAfter)
}
