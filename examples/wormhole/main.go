// Wormhole drives the cycle-accurate wormhole simulators: it reproduces
// the classic single-virtual-channel ring deadlock on a torus, fixes it
// with a dateline VC policy, and then measures latency under rising
// offered load for the block model vs the refined region model.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ocpmesh/internal/core"
	"ocpmesh/internal/fault"
	"ocpmesh/internal/grid"
	"ocpmesh/internal/mesh"
	"ocpmesh/internal/routing"
	"ocpmesh/internal/status"
	"ocpmesh/internal/wormhole"
)

func main() {
	ringDeadlockDemo()
	fmt.Println()
	loadSweep()
}

func ringDeadlockDemo() {
	fmt.Println("== ring deadlock on a 4x4 torus (flit level) ==")
	res, err := core.Form(core.Config{Width: 4, Height: 4, Kind: mesh.Torus2D}, nil)
	if err != nil {
		log.Fatal(err)
	}
	g := routing.NewGraph(res, routing.ModelRegions)
	flows := []wormhole.Flow{
		{Src: grid.Pt(0, 0), Dst: grid.Pt(2, 0)},
		{Src: grid.Pt(1, 0), Dst: grid.Pt(3, 0)},
		{Src: grid.Pt(2, 0), Dst: grid.Pt(0, 0)},
		{Src: grid.Pt(3, 0), Dst: grid.Pt(1, 0)},
	}

	st, err := wormhole.SimulateFlits(g, routing.XY{}, flows, wormhole.FlitConfig{PacketLen: 3, BufDepth: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  one VC:      deadlocked=%t delivered=%d/%d after %d cycles\n",
		st.Deadlocked, st.Delivered, st.Injected, st.Cycles)

	dateline := func(p routing.Path, hop int) int {
		for i := 1; i <= hop; i++ {
			if p[i].X == 0 {
				return 1
			}
		}
		return 0
	}
	st2, err := wormhole.SimulateFlits(g, routing.XY{}, flows,
		wormhole.FlitConfig{PacketLen: 3, BufDepth: 1, Policy: dateline})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  dateline VC: deadlocked=%t delivered=%d/%d avg latency %.1f cycles\n",
		st2.Deadlocked, st2.Delivered, st2.Injected, st2.AvgLatency())
}

func loadSweep() {
	fmt.Println("== latency vs offered load, 16x16 mesh with 2 fault clusters ==")
	topo := mesh.MustNew(16, 16, mesh.Mesh2D)
	rng := rand.New(rand.NewSource(8))
	faults := fault.Clustered{Count: 14, Clusters: 2, Spread: 2}.Generate(topo, rng)
	res, err := core.FormOn(core.Config{Width: 16, Height: 16, Safety: status.Def2a}, topo, faults)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("  %-10s %-8s %24s %24s\n", "packets", "window",
		"blocks lat/delivered", "regions lat/delivered")
	for _, load := range []struct{ packets, window int }{
		{20, 200}, {40, 200}, {80, 200}, {160, 200},
	} {
		pairs := routing.SamplePairs(res, load.packets, rng)
		flows := make([]wormhole.Flow, len(pairs))
		for i, pr := range pairs {
			flows[i] = wormhole.Flow{Src: pr[0], Dst: pr[1], InjectCycle: rng.Intn(load.window)}
		}
		var cell [2]string
		for i, m := range []routing.Model{routing.ModelBlocks, routing.ModelRegions} {
			g := routing.NewGraph(res, m)
			st, err := wormhole.SimulateFlits(g, routing.Oracle{}, flows,
				wormhole.FlitConfig{PacketLen: 4, BufDepth: 2})
			if err != nil {
				log.Fatal(err)
			}
			if st.Deadlocked {
				fmt.Printf("  (deadlock under %v at %d packets)\n", m, load.packets)
			}
			cell[i] = fmt.Sprintf("%.1f cy / %d+%d", st.AvgLatency(), st.Delivered, st.Unroutable)
		}
		fmt.Printf("  %-10d %-8d %24s %24s\n", load.packets, load.window, cell[0], cell[1])
	}
	fmt.Println("  (delivered+unroutable; the region model loses fewer packets to")
	fmt.Println("   unroutable endpoints and its latency grows no faster under load)")
}
