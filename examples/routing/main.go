// Routing demonstrates the payoff of the refined fault model: the same
// clustered fault pattern routed under the rectangular-block model vs the
// orthogonal-convex-polygon model, plus a deadlock analysis of
// dimension-order routing.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ocpmesh/internal/core"
	"ocpmesh/internal/fault"
	"ocpmesh/internal/grid"
	"ocpmesh/internal/mesh"
	"ocpmesh/internal/routing"
	"ocpmesh/internal/status"
)

func main() {
	topo := mesh.MustNew(24, 24, mesh.Mesh2D)
	rng := rand.New(rand.NewSource(11))
	faults := fault.Clustered{Count: 30, Clusters: 2, Spread: 3}.Generate(topo, rng)

	res, err := core.FormOn(core.Config{
		Width: 24, Height: 24, Safety: status.Def2a, // the block model the paper improves on
	}, topo, faults)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%v, %d clustered faults\n", topo, faults.Len())
	fmt.Printf("faulty blocks sacrifice %d nonfaulty nodes; Definition 3 reactivates %d of them\n\n",
		res.UnsafeNonfaultyCount(), res.EnabledUnsafeCount())

	pairs := routing.SamplePairs(res, 500, rng)
	for _, m := range []routing.Model{routing.ModelBlocks, routing.ModelRegions, routing.ModelFaultsOnly} {
		st := routing.CompareModels(res, pairs)[m]
		fmt.Printf("  %-12v usable pairs %4d/%d, delivered %4d (%.1f%%), avg stretch %.3f\n",
			m, st.Usable, st.Pairs, st.Delivered, 100*st.DeliveryRate(), st.AvgStretch())
	}

	// A concrete detour: route across the fault clusters with the online
	// wall-following router under each model.
	g := routing.NewGraph(res, routing.ModelRegions)
	src, dst := pickPair(res, rng)
	path, err := (routing.Detour{}).Route(g, src, dst)
	if err != nil {
		fmt.Printf("\ndetour router %v -> %v: %v\n", src, dst, err)
	} else {
		fmt.Printf("\ndetour router %v -> %v: %d hops (manhattan %d)\n",
			src, dst, path.Len(), topo.Dist(src, dst))
	}

	// Deadlock analysis: XY on the fault-free 6x6 sub-problem is acyclic
	// with one virtual channel.
	clean, err := core.Form(core.Config{Width: 6, Height: 6}, nil)
	if err != nil {
		log.Fatal(err)
	}
	cg := routing.NewGraph(clean, routing.ModelRegions)
	cdg, _, err := routing.AnalyzeDeadlock(cg, routing.XY{}, routing.SingleVC, routing.AllPairs(cg))
	if err != nil {
		log.Fatal(err)
	}
	if _, cyclic := cdg.FindCycle(); cyclic {
		fmt.Println("XY channel dependency graph: CYCLIC (unexpected!)")
	} else {
		fmt.Printf("XY channel dependency graph: %d dependencies, acyclic -> deadlock-free\n", cdg.Size())
	}
}

// pickPair draws a pair of enabled nodes on opposite sides of the
// machine so the route must negotiate the fault clusters.
func pickPair(res *core.Result, rng *rand.Rand) (src, dst grid.Point) {
	g := routing.NewGraph(res, routing.ModelRegions)
	for {
		src = grid.Pt(rng.Intn(3), rng.Intn(res.Topo.Height()))
		dst = grid.Pt(res.Topo.Width()-1-rng.Intn(3), rng.Intn(res.Topo.Height()))
		if g.Allowed(src) && g.Allowed(dst) {
			return src, dst
		}
	}
}
