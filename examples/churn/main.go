// Churn: keep a formation current while faults arrive and get repaired,
// without ever recomputing from scratch. A core.Session absorbs each
// fault delta by re-iterating only over the dirty frontier's closure;
// the demo prints what every delta cost and checks the final state
// against a from-scratch formation.
package main

import (
	"fmt"
	"log"

	"ocpmesh/internal/core"
	"ocpmesh/internal/grid"
)

func main() {
	cfg := core.Config{Width: 16, Height: 12}
	initial := []grid.Point{grid.Pt(3, 3), grid.Pt(4, 4), grid.Pt(11, 7)}

	s, err := core.NewSession(cfg, initial)
	if err != nil {
		log.Fatal(err)
	}
	res := s.Result()
	fmt.Printf("initial formation: %d faults, %d blocks, %d regions (%d+%d rounds)\n\n",
		res.Faults.Len(), len(res.Blocks), len(res.Regions), res.RoundsPhase1, res.RoundsPhase2)
	fmt.Print(res.Render())

	// A churn script: two arrivals bridging the diagonal pair into a
	// bigger block, one arrival elsewhere, then two repairs.
	script := []struct {
		op string
		ps []grid.Point
	}{
		{"add", []grid.Point{grid.Pt(3, 4), grid.Pt(4, 3)}},
		{"add", []grid.Point{grid.Pt(12, 8)}},
		{"remove", []grid.Point{grid.Pt(4, 4)}},
		{"remove", []grid.Point{grid.Pt(12, 8), grid.Pt(11, 7)}},
	}
	for _, step := range script {
		var (
			d   core.Delta
			err error
		)
		if step.op == "add" {
			d, err = s.AddFaults(step.ps...)
		} else {
			d, err = s.RemoveFaults(step.ps...)
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s %v: frontier %d, rounds %d, labels changed %d+%d\n",
			d.Op, step.ps, d.Frontier, d.Rounds(), d.ChangedPhase1, d.ChangedPhase2)
	}

	fmt.Println()
	fmt.Print(s.Result().Render())

	// The equivalence guarantee: the session's state is bit-for-bit what
	// a from-scratch formation on the current fault set computes.
	got := s.Result()
	want, err := core.FormSet(cfg, s.Faults())
	if err != nil {
		log.Fatal(err)
	}
	same := got.Faults.Equal(want.Faults) && len(got.Regions) == len(want.Regions)
	for i := range want.Unsafe {
		same = same && got.Unsafe[i] == want.Unsafe[i] && got.Enabled[i] == want.Enabled[i]
	}
	fmt.Printf("\nmatches from-scratch formation: %t\n", same)
}
