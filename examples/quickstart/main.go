// Quickstart: form orthogonal convex polygons from a handful of faults
// on a small mesh and print everything the library computed.
package main

import (
	"fmt"
	"log"

	"ocpmesh/internal/core"
	"ocpmesh/internal/grid"
	"ocpmesh/internal/status"
)

func main() {
	// A 12x12 mesh with five faulty nodes, two of them diagonal.
	faults := []grid.Point{
		grid.Pt(3, 3), grid.Pt(4, 4), // diagonal pair -> one 2x2 faulty block
		grid.Pt(8, 2),                // isolated fault
		grid.Pt(8, 8), grid.Pt(8, 9), // vertical pair
	}

	res, err := core.Form(core.Config{Width: 12, Height: 12}, faults)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("machine:", res.Topo)
	fmt.Println(core.RenderLegend())
	fmt.Println()
	fmt.Print(res.Render())

	fmt.Printf("\nphase 1 (safe/unsafe, Definition 2b): %d rounds\n", res.RoundsPhase1)
	for i, b := range res.Blocks {
		fmt.Printf("  faulty block %d: %v, %d nodes (%d nonfaulty sacrificed)\n",
			i, b.Bounds(), b.Size(), b.NonfaultyCount())
	}

	fmt.Printf("\nphase 2 (enabled/disabled, Definition 3): %d rounds\n", res.RoundsPhase2)
	for i, r := range res.Regions {
		fmt.Printf("  disabled region %d: %v — orthogonal convex: %t, corners all faulty: %t\n",
			i, r.Nodes.Points(), r.IsOrthogonallyConvex(), len(r.Faults.Points()) > 0)
	}

	if ratio, ok := res.EnabledRatio(); ok {
		fmt.Printf("\nreactivated %d/%d sacrificed nodes (ratio %.2f)\n",
			res.EnabledUnsafeCount(), res.UnsafeNonfaultyCount(), ratio)
	}

	// Validate re-checks every theorem of the paper on this result.
	if err := res.Validate(status.Def2b); err != nil {
		log.Fatal("invariant violated: ", err)
	}
	fmt.Println("all paper invariants hold on this configuration")
}
