// Distributed runs the formation on the faithful goroutine-per-node
// engine — one goroutine per nonfaulty node, channels for links,
// synchronous lock-step rounds — and traces the labeling round by round,
// then cross-checks the result against the sequential engine.
package main

import (
	"fmt"
	"log"

	"ocpmesh/internal/core"
	"ocpmesh/internal/grid"
	"ocpmesh/internal/mesh"
	"ocpmesh/internal/simnet"
	"ocpmesh/internal/status"
)

func main() {
	topo := mesh.MustNew(9, 9, mesh.Mesh2D)
	faults := grid.PointSetOf(
		grid.Pt(3, 3), grid.Pt(4, 4), grid.Pt(5, 3), // diagonal cluster
		grid.Pt(7, 7),
	)
	env, err := simnet.NewEnv(topo, faults, nil)
	if err != nil {
		log.Fatal(err)
	}

	// Phase 1 on the channel engine, observing every round.
	fmt.Println("phase 1 (safe/unsafe, Definition 2b) on the channel engine:")
	rule := status.UnsafeRule(status.Def2b)
	p1, err := simnet.Channels().Run(env, rule, simnet.Options{
		OnRound: func(round int, labels []bool) {
			n := count(labels)
			fmt.Printf("  round %d: %d unsafe nodes\n", round, n)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stabilized after %d changing rounds, %d unsafe nodes total\n\n",
		p1.Rounds, count(p1.Labels))

	// Phase 2, same engine.
	env2, err := simnet.NewEnv(topo, faults, p1.Labels)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("phase 2 (enabled/disabled, Definition 3):")
	p2, err := simnet.Channels().Run(env2, status.EnabledRule(), simnet.Options{
		OnRound: func(round int, labels []bool) {
			fmt.Printf("  round %d: %d nodes enabled\n", round, count(labels))
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	disabled := len(p2.Labels) - count(p2.Labels)
	fmt.Printf("stabilized after %d changing rounds, %d nodes disabled\n\n", p2.Rounds, disabled)

	// The high-level API runs the same thing; verify both engines agree.
	for _, engine := range []core.EngineKind{core.EngineSequential, core.EngineChannels} {
		res, err := core.FormOn(core.Config{
			Width: 9, Height: 9, Safety: status.Def2b, Engine: engine,
		}, topo, faults)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10v engine: rounds %d+%d, %d block(s), %d region(s)\n",
			engine, res.RoundsPhase1, res.RoundsPhase2, len(res.Blocks), len(res.Regions))
	}
}

func count(labels []bool) int {
	n := 0
	for _, l := range labels {
		if l {
			n++
		}
	}
	return n
}
