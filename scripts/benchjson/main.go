// Command benchjson converts `go test -bench` text output (stdin) into a
// JSON document (stdout): the environment header lines plus one record
// per benchmark result. The Makefile's bench target pipes the
// observability benchmark through it to produce BENCH_obs.json.
//
// Usage:
//
//	go test -run '^$' -bench BenchmarkObsOverhead -benchmem . | go run ./scripts/benchjson
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// result is one parsed benchmark line.
type result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// report is the emitted document.
type report struct {
	GOOS    string   `json:"goos,omitempty"`
	GOARCH  string   `json:"goarch,omitempty"`
	Package string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []result `json:"results"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run() error {
	var rep report
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Package = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			r, ok := parseLine(line)
			if !ok {
				continue
			}
			rep.Results = append(rep.Results, r)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(rep.Results) == 0 {
		return fmt.Errorf("no benchmark lines found on stdin")
	}
	rep.Results = mergeSamples(rep.Results)
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// mergeSamples folds repeated samples of the same benchmark (go test
// -count N emits one line per run) into a single record carrying the
// minimum ns/op sample. The minimum is the interference-robust
// statistic: on a busy machine every sample is the true cost plus
// nonnegative noise, so the smallest sample is the best estimate. The
// overhead-gate relies on this — a 5% budget cannot be checked from
// single samples whose run-to-run spread exceeds 5%. Iterations are
// summed; bytes and allocs follow the minimum-ns sample.
func mergeSamples(results []result) []result {
	byName := map[string]int{}
	merged := results[:0]
	for _, r := range results {
		i, ok := byName[r.Name]
		if !ok {
			byName[r.Name] = len(merged)
			merged = append(merged, r)
			continue
		}
		merged[i].Iterations += r.Iterations
		if r.NsPerOp < merged[i].NsPerOp {
			merged[i].NsPerOp = r.NsPerOp
			merged[i].BytesPerOp = r.BytesPerOp
			merged[i].AllocsPerOp = r.AllocsPerOp
		}
	}
	return merged
}

// parseLine parses "BenchmarkX/sub-8  123  456 ns/op [789 B/op  2 allocs/op]".
func parseLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{Name: fields[0], Iterations: iters}
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
			seen = true
		case "B/op":
			r.BytesPerOp = int64(v)
		case "allocs/op":
			r.AllocsPerOp = int64(v)
		}
	}
	return r, seen
}
