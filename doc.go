// Package ocpmesh reproduces Jie Wu's "A Distributed Formation of
// Orthogonal Convex Polygons in Mesh-Connected Multicomputers"
// (IPPS 2001): a two-phase distributed labeling algorithm that shrinks
// the rectangular faulty blocks of a 2-D mesh (or torus) to orthogonal
// convex polygons covering the same faults, activating as many nonfaulty
// nodes as possible for fault-tolerant routing.
//
// The public API lives in internal/core (Form, FormSet, FormOn, Result);
// see README.md for the layout, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured results.
package ocpmesh
