package sweep

import (
	"fmt"
	"sort"
	"time"

	"ocpmesh/internal/fault"
	"ocpmesh/internal/mesh"
	"ocpmesh/internal/obs"
	"ocpmesh/internal/stats"
	"ocpmesh/internal/status"
)

// Figure runs the named experiment and returns its curves. Figure ids:
//
//	5a   avg rounds to construct faulty blocks vs f (Def 2a and 2b curves)
//	5b   avg rounds to construct disabled regions vs f (Def 2a and 2b)
//	5c   avg enabled/(unsafe and nonfaulty) ratio vs f, Def 2a pipeline
//	5d   same ratio, Def 2b pipeline
//	x1   avg nonfaulty nodes sacrificed per definition vs f
//	x2   routing payoff: delivery rate and stretch per fault model vs f
//	x4   mesh vs torus: phase rounds and ratio (Def 2b)
//	x5   uniform vs clustered faults: enabled ratio (Def 2b)
//	x6   wormhole latency and delivery per fault model vs f
//	x7   open problem: disabled nonfaulty nodes before/after partitioning
//	x8   incremental churn: steady-state cost per fault arrival vs f
//
// (x3, the engine cost comparison, lives in the benchmark harness; see
// bench_test.go.)
//
// When the runner has a Recorder, the experiment is bracketed by
// figure_start/figure_end trace events carrying the figure id.
func (r *Runner) Figure(id string) ([]*stats.Series, error) {
	rec := r.cfg.Recorder
	var start time.Time
	if rec != nil {
		start = rec.Now()
	}
	rec.Emit(obs.Event{Type: obs.EFigureStart, Name: id})
	series, err := r.figure(id)
	end := obs.Event{Type: obs.EFigureEnd, Name: id, N: len(series)}
	if rec != nil {
		end.DurNS = rec.Now().Sub(start).Nanoseconds()
	}
	if err != nil {
		end.Err = err.Error()
	}
	rec.Emit(end)
	return series, err
}

func (r *Runner) figure(id string) ([]*stats.Series, error) {
	switch id {
	case "5a":
		return r.perDefinition("rounds to faulty blocks", RoundsPhase1)
	case "5b":
		return r.perDefinition("rounds to disabled regions", RoundsPhase2)
	case "5c":
		s, err := r.Sweep(status.Def2a, Uniform, EnabledRatio)
		if err != nil {
			return nil, err
		}
		s.Label = "enabled ratio (def2a)"
		s.YLabel = "enabled/unsafe-nonfaulty"
		return []*stats.Series{s}, nil
	case "5d":
		s, err := r.Sweep(status.Def2b, Uniform, EnabledRatio)
		if err != nil {
			return nil, err
		}
		s.Label = "enabled ratio (def2b)"
		s.YLabel = "enabled/unsafe-nonfaulty"
		return []*stats.Series{s}, nil
	case "x1":
		return r.perDefinition("unsafe nonfaulty nodes", UnsafeNonfaulty)
	case "x2":
		return r.RoutingComparison(0)
	case "x6":
		return r.WormholeComparison(0, 0)
	case "x7":
		return r.PartitionRecovery()
	case "x8":
		return r.ChurnCost(0)
	case "x4":
		return r.meshVsTorus()
	case "x5":
		return r.uniformVsClustered()
	default:
		return nil, fmt.Errorf("sweep: unknown figure %q (known: %v)", id, FigureIDs())
	}
}

// FigureIDs lists the experiments Figure accepts, in display order.
func FigureIDs() []string {
	ids := []string{"5a", "5b", "5c", "5d", "x1", "x2", "x4", "x5", "x6", "x7", "x8"}
	sort.Strings(ids)
	return ids
}

func (r *Runner) perDefinition(what string, metric Metric) ([]*stats.Series, error) {
	var out []*stats.Series
	for _, def := range []status.SafetyDef{status.Def2a, status.Def2b} {
		s, err := r.Sweep(def, Uniform, metric)
		if err != nil {
			return nil, err
		}
		s.Label = fmt.Sprintf("%s (%v)", what, def)
		s.YLabel = what
		out = append(out, s)
	}
	return out, nil
}

func (r *Runner) meshVsTorus() ([]*stats.Series, error) {
	var out []*stats.Series
	for _, kind := range []struct {
		name string
		cfg  Config
	}{
		{"mesh", r.cfg},
		{"torus", func() Config { c := r.cfg; c.Kind = mesh.Torus2D; return c }()},
	} {
		sub, err := NewRunner(kind.cfg)
		if err != nil {
			return nil, err
		}
		for _, m := range []struct {
			name   string
			metric Metric
		}{
			{"rounds p1", RoundsPhase1},
			{"enabled ratio", EnabledRatio},
		} {
			s, err := sub.Sweep(status.Def2b, Uniform, m.metric)
			if err != nil {
				return nil, err
			}
			s.Label = fmt.Sprintf("%s (%s)", m.name, kind.name)
			s.YLabel = m.name
			out = append(out, s)
		}
	}
	return out, nil
}

func (r *Runner) uniformVsClustered() ([]*stats.Series, error) {
	gens := []struct {
		name string
		gen  func(f int) fault.Generator
	}{
		{"uniform", Uniform},
		{"clustered", func(f int) fault.Generator {
			k := 1 + f/25
			return fault.Clustered{Count: f, Clusters: k, Spread: 3}
		}},
	}
	var out []*stats.Series
	for _, g := range gens {
		s, err := r.Sweep(status.Def2b, g.gen, EnabledRatio)
		if err != nil {
			return nil, err
		}
		s.Label = fmt.Sprintf("enabled ratio (%s)", g.name)
		s.YLabel = "enabled/unsafe-nonfaulty"
		out = append(out, s)
	}
	return out, nil
}
