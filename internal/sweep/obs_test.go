package sweep

import (
	"testing"

	"ocpmesh/internal/obs"
	"ocpmesh/internal/status"
)

func tracedRunner(t *testing.T, cfg Config) (*Runner, *obs.CollectSink, *obs.Recorder) {
	t.Helper()
	sink := &obs.CollectSink{}
	rec := obs.NewRecorder(obs.NewTracer(sink), obs.NewRegistry())
	cfg.Recorder = rec
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r, sink, rec
}

func TestSweepEmitsCellAndPointEvents(t *testing.T) {
	r, sink, rec := tracedRunner(t, Config{
		Width: 12, Height: 12, MaxFaults: 4, Step: 2, Replications: 3, Seed: 7,
	})
	series, err := r.Sweep(status.Def2a, Uniform, RoundsPhase1)
	if err != nil {
		t.Fatal(err)
	}

	starts := sink.Filter(obs.ESweepStart)
	if len(starts) != 1 {
		t.Fatalf("got %d sweep_start events, want 1", len(starts))
	}
	wantCells := 3 * 3 // three sweep points (f=0,2,4), three replications
	if starts[0].N != wantCells || starts[0].Points != 3 {
		t.Fatalf("sweep_start wrong: %+v", starts[0])
	}
	if starts[0].Rule != "def2a" {
		t.Fatalf("sweep_start rule = %q, want def2a", starts[0].Rule)
	}

	cells := sink.Filter(obs.ESweepCell)
	if len(cells) != wantCells {
		t.Fatalf("got %d sweep_cell events, want %d", len(cells), wantCells)
	}
	points := sink.Filter(obs.ESweepPoint)
	if len(points) != len(series.Points) {
		t.Fatalf("got %d sweep_point events, want one per series point (%d)", len(points), len(series.Points))
	}
	for i, p := range points {
		sp := series.Points[i]
		if p.X != sp.X || p.Value != sp.Y || p.N != sp.N {
			t.Fatalf("sweep_point %d = %+v, series has %+v", i, p, sp)
		}
	}

	// Formation phases run under the same recorder, so the trace also
	// carries phase and round events from the cells.
	if len(sink.Filter(obs.EPhaseStart)) == 0 {
		t.Fatal("sweep trace should include core phase events")
	}
	if rec.Metrics().Snapshot().Counters["sweep_cells"] != int64(wantCells) {
		t.Fatal("sweep_cells counter wrong")
	}
	spans := sink.Filter(obs.ESpan)
	found := false
	for _, s := range spans {
		if s.Name == "sweep" {
			found = true
		}
	}
	if !found {
		t.Fatal("missing sweep span event")
	}
}

// TestSweepRecorderPreservesResults pins that tracing never changes the
// science: the same seeded sweep with and without a recorder produces
// identical series.
func TestSweepRecorderPreservesResults(t *testing.T) {
	base := Config{Width: 12, Height: 12, MaxFaults: 4, Step: 2, Replications: 3, Seed: 7}
	plainRunner, err := NewRunner(base)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := plainRunner.Sweep(status.Def2b, Uniform, EnabledRatio)
	if err != nil {
		t.Fatal(err)
	}
	r, _, _ := tracedRunner(t, base)
	traced, err := r.Sweep(status.Def2b, Uniform, EnabledRatio)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Points) != len(traced.Points) {
		t.Fatalf("series lengths diverge: %d vs %d", len(plain.Points), len(traced.Points))
	}
	for i := range plain.Points {
		if plain.Points[i] != traced.Points[i] {
			t.Fatalf("point %d diverges: %+v vs %+v", i, plain.Points[i], traced.Points[i])
		}
	}
}

func TestFigureEventsBracketExperiment(t *testing.T) {
	r, sink, _ := tracedRunner(t, Config{
		Width: 10, Height: 10, MaxFaults: 2, Step: 2, Replications: 2, Seed: 11,
	})
	if _, err := r.Figure("5c"); err != nil {
		t.Fatal(err)
	}
	events := sink.Events()
	if len(events) == 0 {
		t.Fatal("no events")
	}
	if events[0].Type != obs.EFigureStart || events[0].Name != "5c" {
		t.Fatalf("first event = %+v, want figure_start 5c", events[0])
	}
	last := events[len(events)-1]
	if last.Type != obs.EFigureEnd || last.Name != "5c" || last.N != 1 || last.Err != "" {
		t.Fatalf("last event = %+v, want clean figure_end 5c", last)
	}
}

// TestSweepEmitsSkippedPointEvent checks that an f whose every
// replication returned ok=false stays out of the series but leaves an
// explicit N=0 sweep_point in the trace instead of vanishing silently.
func TestSweepEmitsSkippedPointEvent(t *testing.T) {
	r, sink, _ := tracedRunner(t, Config{
		Width: 10, Height: 10, MaxFaults: 5, Step: 10, Replications: 2, Seed: 3,
	})
	s, err := r.Sweep(status.Def2b, Uniform, EnabledRatio)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range s.Points {
		if p.X == 0 {
			t.Fatal("f=0 has no unsafe nonfaulty nodes; the point must be dropped")
		}
	}
	skipped := false
	for _, e := range sink.Filter(obs.ESweepPoint) {
		if e.X == 0 && e.N == 0 {
			skipped = true
		}
	}
	if !skipped {
		t.Fatal("all-undefined sweep point left no n=0 sweep_point event in the trace")
	}
}
