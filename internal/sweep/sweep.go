// Package sweep is the experiment harness: it sweeps the number of faults
// f over replicated random configurations and aggregates per-run metrics
// into series, reproducing the paper's Figure 5 and the extension
// experiments listed in DESIGN.md.
//
// The paper's simulation study (Section 5): a 100 x 100 mesh, f faults
// (0 <= f <= 100) selected uniformly at random, measuring (a)/(b) the
// average number of rounds needed to construct faulty blocks and then
// disabled regions, and (c)/(d) the average percentage of enabled nodes
// among the unsafe-but-nonfaulty nodes of configurations whose faulty
// blocks can be reduced.
package sweep

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"

	"ocpmesh/internal/core"
	"ocpmesh/internal/fault"
	"ocpmesh/internal/mesh"
	"ocpmesh/internal/obs"
	"ocpmesh/internal/obs/costs"
	"ocpmesh/internal/region"
	"ocpmesh/internal/stats"
	"ocpmesh/internal/status"
)

// Config parameterizes a sweep. The zero value is completed by
// Normalize to the paper's setup (100 x 100 mesh, f = 0..100,
// 20 replications).
type Config struct {
	// Width and Height are the machine dimensions (paper: 100 x 100).
	Width, Height int
	// Kind selects mesh or torus (paper: mesh).
	Kind mesh.Kind
	// MaxFaults is the largest f (paper: 100).
	MaxFaults int
	// Step is the f increment between sweep points.
	Step int
	// Replications is the number of random configurations per f.
	Replications int
	// Seed derives the per-run RNG streams, making sweeps reproducible.
	Seed int64
	// Engine selects the fixpoint engine (sequential by default; the
	// engines are result-equivalent, see simnet).
	Engine core.EngineKind
	// EngineWorkers is the per-formation tile count when Engine is
	// core.EngineParallel or core.EngineBitset (0 = GOMAXPROCS). Other
	// engines ignore it.
	EngineWorkers int
	// Workers is the number of goroutines evaluating sweep cells
	// concurrently; 0 means runtime.GOMAXPROCS(0). Each (f, replication)
	// cell owns a seed-derived RNG, so results are identical at any
	// worker count.
	Workers int
	// Recorder, when non-nil, traces the sweep — sweep_start, one
	// sweep_cell per evaluated (f, replication) cell, one sweep_point per
	// aggregated point — and is forwarded to the formation core and the
	// experiment simulators, so phase, round, route and wormhole events
	// land in the same stream. Nil disables observability at no cost, and
	// never affects results.
	Recorder *obs.Recorder
	// Costs, when non-nil, is forwarded to every formation the sweep
	// runs: the cells' distributed costs accumulate into the one fabric
	// (it is sharded and atomic, so concurrent sweep workers need no
	// coordination) and the paper-invariant monitors run on every cell.
	// Nil disables the observatory at no cost.
	Costs *costs.Fabric
	// StrictInvariants makes any cell with an invariant-monitor
	// violation fail the sweep (the CI mode; see core.Config).
	StrictInvariants bool
}

// Normalize fills unset fields with the paper's defaults and validates
// the rest.
func (c Config) Normalize() (Config, error) {
	if c.Width == 0 {
		c.Width = 100
	}
	if c.Height == 0 {
		c.Height = 100
	}
	if c.MaxFaults == 0 {
		c.MaxFaults = 100
	}
	if c.Step == 0 {
		c.Step = 5
	}
	if c.Replications == 0 {
		c.Replications = 20
	}
	if c.Width < 1 || c.Height < 1 || c.MaxFaults < 0 || c.Step < 1 || c.Replications < 1 {
		return c, fmt.Errorf("sweep: invalid config %+v", c)
	}
	if c.MaxFaults > c.Width*c.Height {
		return c, fmt.Errorf("sweep: MaxFaults %d exceeds machine size %d", c.MaxFaults, c.Width*c.Height)
	}
	return c, nil
}

// Metric extracts one observation from a formation result; ok=false
// drops the observation (used for ratios that are undefined when no
// nonfaulty node is unsafe).
type Metric func(res *core.Result) (v float64, ok bool)

// Runner executes sweeps under one configuration.
type Runner struct {
	cfg Config
}

// NewRunner validates the configuration and returns a runner.
func NewRunner(cfg Config) (*Runner, error) {
	norm, err := cfg.Normalize()
	if err != nil {
		return nil, err
	}
	return &Runner{cfg: norm}, nil
}

// Config returns the normalized configuration.
func (r *Runner) Config() Config { return r.cfg }

// faultCounts returns the sweep points: 0, Step, 2*Step, ..., MaxFaults.
func (r *Runner) faultCounts() []int {
	var out []int
	for f := 0; f <= r.cfg.MaxFaults; f += r.cfg.Step {
		out = append(out, f)
	}
	if out[len(out)-1] != r.cfg.MaxFaults {
		out = append(out, r.cfg.MaxFaults)
	}
	return out
}

// Sweep runs the metric over every (f, replication) cell using the given
// safety definition and fault generator factory, and aggregates one
// series point per f. Cells are evaluated by a pool of Workers
// goroutines; the per-cell seeded RNG keeps the output independent of
// the worker count and of scheduling.
func (r *Runner) Sweep(def status.SafetyDef, gen func(f int) fault.Generator, metric Metric) (*stats.Series, error) {
	series := &stats.Series{XLabel: "faults", YLabel: "value"}
	rec := r.cfg.Recorder
	formCfg := core.Config{
		Width: r.cfg.Width, Height: r.cfg.Height, Kind: r.cfg.Kind,
		Safety: def, Connectivity: region.Conn8, Engine: r.cfg.Engine, Workers: r.cfg.EngineWorkers,
		Recorder: rec, Costs: r.cfg.Costs, StrictInvariants: r.cfg.StrictInvariants,
	}
	topo, err := mesh.New(r.cfg.Width, r.cfg.Height, r.cfg.Kind)
	if err != nil {
		return nil, err
	}

	type cell struct{ f, rep int }
	type outcome struct {
		f      int
		v      float64
		ok     bool
		failed bool
	}
	counts := r.faultCounts()
	span := rec.StartSpan("sweep")
	rec.Emit(obs.Event{
		Type: obs.ESweepStart, Rule: def.String(),
		N: len(counts) * r.cfg.Replications, Points: len(counts),
	})
	cells := make(chan cell)
	outcomes := make(chan outcome)
	errs := make(chan error, 1)

	workers := r.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range cells {
				var cellStart time.Time
				if rec != nil {
					cellStart = rec.Now()
				}
				rng := rand.New(rand.NewSource(r.cfg.Seed + int64(c.f)*1_000_003 + int64(c.rep)))
				faults := gen(c.f).Generate(topo, rng)
				res, err := core.FormOn(formCfg, topo, faults)
				if err != nil {
					if rec != nil {
						rec.Emit(obs.Event{
							Type: obs.ESweepCell, X: float64(c.f), Rep: c.rep,
							Err: err.Error(), DurNS: rec.Now().Sub(cellStart).Nanoseconds(),
						})
					}
					select {
					case errs <- fmt.Errorf("f=%d rep=%d: %w", c.f, c.rep, err):
					default:
					}
					outcomes <- outcome{f: c.f, failed: true}
					continue
				}
				v, ok := metric(res)
				if rec != nil {
					rec.Emit(obs.Event{
						Type: obs.ESweepCell, X: float64(c.f), Rep: c.rep,
						Value: v, OK: ok, DurNS: rec.Now().Sub(cellStart).Nanoseconds(),
					})
					rec.Counter("sweep_cells").Inc()
				}
				outcomes <- outcome{f: c.f, v: v, ok: ok}
			}
		}()
	}
	go func() {
		for _, f := range counts {
			for rep := 0; rep < r.cfg.Replications; rep++ {
				cells <- cell{f: f, rep: rep}
			}
		}
		close(cells)
		wg.Wait()
		close(outcomes)
	}()

	values := make(map[int][]float64, len(counts))
	received, failed := 0, 0
	for o := range outcomes {
		received++
		if o.failed {
			failed++
			continue
		}
		if o.ok {
			values[o.f] = append(values[o.f], o.v)
		}
	}
	if failed > 0 {
		err := <-errs // at least one worker reported before sending its failed outcome
		return nil, fmt.Errorf("sweep: %d of %d cells failed: first error: %w",
			failed, len(counts)*r.cfg.Replications, err)
	}
	if want := len(counts) * r.cfg.Replications; received != want {
		return nil, fmt.Errorf("sweep: internal error: %d of %d cell outcomes received", received, want)
	}
	for _, f := range counts {
		vs := values[f]
		if len(vs) == 0 {
			// Every replication returned ok=false: the metric is undefined
			// at this f. The point is deliberately absent from the series,
			// but the skip is recorded in the trace rather than dropped
			// silently.
			rec.Emit(obs.Event{Type: obs.ESweepPoint, X: float64(f), N: 0})
			continue
		}
		// Accumulate in sorted order so floating-point sums (hence means
		// and CIs) do not depend on goroutine scheduling.
		sort.Float64s(vs)
		var sample stats.Sample
		for _, v := range vs {
			sample.Add(v)
		}
		series.Add(float64(f), &sample)
		rec.Emit(obs.Event{
			Type: obs.ESweepPoint, X: float64(f), N: sample.N(), Value: sample.Mean(),
		})
	}
	span.End()
	return series, nil
}

// Uniform is the default generator factory: f uniform random faults.
func Uniform(f int) fault.Generator { return fault.Uniform{Count: f} }

// Standard metrics.

// RoundsPhase1 measures the rounds needed to construct the faulty blocks
// (Figure 5(a)).
func RoundsPhase1(res *core.Result) (float64, bool) { return float64(res.RoundsPhase1), true }

// RoundsPhase2 measures the rounds needed to construct the disabled
// regions after the blocks (Figure 5(b)).
func RoundsPhase2(res *core.Result) (float64, bool) { return float64(res.RoundsPhase2), true }

// EnabledRatio measures the fraction of unsafe-but-nonfaulty nodes that
// the enabled/disabled rule reactivates (Figure 5(c)/(d)); undefined
// configurations (no reducible block) are skipped, as in the paper.
func EnabledRatio(res *core.Result) (float64, bool) { return res.EnabledRatio() }

// UnsafeNonfaulty measures how many nonfaulty nodes phase 1 sacrifices
// (extension experiment X1).
func UnsafeNonfaulty(res *core.Result) (float64, bool) {
	return float64(res.UnsafeNonfaultyCount()), true
}

// DisabledNonfaulty measures how many nonfaulty nodes remain disabled
// after phase 2.
func DisabledNonfaulty(res *core.Result) (float64, bool) {
	return float64(res.DisabledNonfaultyCount()), true
}

// BlockCount measures the number of faulty blocks.
func BlockCount(res *core.Result) (float64, bool) { return float64(len(res.Blocks)), true }

// RegionCount measures the number of disabled regions.
func RegionCount(res *core.Result) (float64, bool) { return float64(len(res.Regions)), true }

// MaxBlockDiameter measures max d(B), the paper's round-bound parameter.
func MaxBlockDiameter(res *core.Result) (float64, bool) {
	return float64(res.MaxBlockDiameter()), true
}
