package sweep

import (
	"math/rand"
	"time"

	"ocpmesh/internal/core"
	"ocpmesh/internal/grid"
	"ocpmesh/internal/mesh"
	"ocpmesh/internal/obs"
	"ocpmesh/internal/stats"
	"ocpmesh/internal/status"
)

// ChurnCost is extension experiment X8: the steady-state cost of
// absorbing one fault arrival incrementally, as a function of the
// background fault load f. For each f it forms a core.Session over a
// random f-fault pattern, then drives arrivalsPerRun single-fault
// arrival/repair cycles through it (one AddFaults plus one RemoveFaults
// per cycle, keeping the load at f between cycles) and averages the
// per-delta dirty-frontier size, restabilization rounds, and settled
// label changes. The paper's Figure 5(a)/(b) measures the rounds to
// form everything from scratch; this experiment measures what churn
// costs once the formation already exists — the frontier curves stay
// near-constant in the mesh size, which is the point of the
// incremental engine.
func (r *Runner) ChurnCost(arrivalsPerRun int) ([]*stats.Series, error) {
	if arrivalsPerRun < 1 {
		arrivalsPerRun = 20
	}
	frontier := &stats.Series{Label: "dirty frontier per arrival", XLabel: "faults", YLabel: "frontier nodes"}
	rounds := &stats.Series{Label: "rounds per arrival", XLabel: "faults", YLabel: "frontier rounds"}
	changed := &stats.Series{Label: "labels changed per arrival", XLabel: "faults", YLabel: "labels"}

	rec := r.cfg.Recorder
	formCfg := core.Config{
		Width: r.cfg.Width, Height: r.cfg.Height, Kind: r.cfg.Kind,
		Safety: status.Def2b, Engine: r.cfg.Engine, Workers: r.cfg.EngineWorkers,
		Recorder: rec,
	}
	topo, err := mesh.New(r.cfg.Width, r.cfg.Height, r.cfg.Kind)
	if err != nil {
		return nil, err
	}

	counts := r.faultCounts()
	rec.Emit(obs.Event{
		Type: obs.ESweepStart, Name: "churn",
		N: len(counts) * r.cfg.Replications, Points: len(counts),
	})
	for _, f := range counts {
		frontierSample := &stats.Sample{}
		roundsSample := &stats.Sample{}
		changedSample := &stats.Sample{}
		for rep := 0; rep < r.cfg.Replications; rep++ {
			var cellStart time.Time
			if rec != nil {
				cellStart = rec.Now()
			}
			rng := rand.New(rand.NewSource(r.cfg.Seed + int64(f)*9_999_991 + int64(rep)))
			faults := Uniform(f).Generate(topo, rng)
			s, err := core.NewSessionOn(formCfg, topo, faults)
			if err != nil {
				return nil, err
			}
			for a := 0; a < arrivalsPerRun; a++ {
				var p grid.Point
				for {
					p = grid.Pt(rng.Intn(topo.Width()), rng.Intn(topo.Height()))
					if !s.Faults().Has(p) {
						break
					}
				}
				add, err := s.AddFaults(p)
				if err != nil {
					s.Close()
					return nil, err
				}
				rem, err := s.RemoveFaults(p)
				if err != nil {
					s.Close()
					return nil, err
				}
				for _, d := range []core.Delta{add, rem} {
					frontierSample.Add(float64(d.Frontier))
					roundsSample.Add(float64(d.Rounds()))
					changedSample.Add(float64(d.ChangedPhase1 + d.ChangedPhase2))
				}
			}
			s.Close()
			if rec != nil {
				rec.Emit(obs.Event{
					Type: obs.ESweepCell, X: float64(f), Rep: rep, OK: true,
					N: 2 * arrivalsPerRun, DurNS: rec.Now().Sub(cellStart).Nanoseconds(),
				})
				rec.Counter("sweep_cells").Inc()
			}
		}
		frontier.Add(float64(f), frontierSample)
		rounds.Add(float64(f), roundsSample)
		changed.Add(float64(f), changedSample)
	}
	return []*stats.Series{frontier, rounds, changed}, nil
}
