package sweep

import (
	"fmt"
	"math/rand"
	"time"

	"ocpmesh/internal/core"
	"ocpmesh/internal/mesh"
	"ocpmesh/internal/obs"
	"ocpmesh/internal/region"
	"ocpmesh/internal/routing"
	"ocpmesh/internal/stats"
	"ocpmesh/internal/status"
)

// RoutingComparison is extension experiment X2: the routing payoff of the
// refined fault model. For each f it samples random fault patterns, forms
// blocks and regions, draws pairsPerRun random nonfaulty
// source/destination pairs and measures exact (BFS) delivery rate and
// path stretch under the block model, the refined region model, and the
// faults-only optimum. The expected shape — the paper's motivation — is
// regions delivering more pairs with lower stretch than blocks.
func (r *Runner) RoutingComparison(pairsPerRun int) ([]*stats.Series, error) {
	if pairsPerRun < 1 {
		pairsPerRun = 50
	}
	models := []routing.Model{routing.ModelBlocks, routing.ModelRegions, routing.ModelFaultsOnly}
	delivery := make(map[routing.Model]*stats.Series, len(models))
	stretch := make(map[routing.Model]*stats.Series, len(models))
	for _, m := range models {
		delivery[m] = &stats.Series{
			Label: fmt.Sprintf("delivery rate (%v)", m), XLabel: "faults", YLabel: "delivery rate",
		}
		stretch[m] = &stats.Series{
			Label: fmt.Sprintf("path stretch (%v)", m), XLabel: "faults", YLabel: "hops/manhattan",
		}
	}

	rec := r.cfg.Recorder
	formCfg := core.Config{
		Width: r.cfg.Width, Height: r.cfg.Height, Kind: r.cfg.Kind,
		Safety:       status.Def2a, // the block model the paper improves on
		Connectivity: region.Conn8, Engine: r.cfg.Engine, Workers: r.cfg.EngineWorkers,
		Recorder: rec,
	}
	topo, err := mesh.New(r.cfg.Width, r.cfg.Height, r.cfg.Kind)
	if err != nil {
		return nil, err
	}

	counts := r.faultCounts()
	rec.Emit(obs.Event{
		Type: obs.ESweepStart, Name: "routing",
		N: len(counts) * r.cfg.Replications, Points: len(counts),
	})
	for _, f := range counts {
		deliverySamples := make(map[routing.Model]*stats.Sample, len(models))
		stretchSamples := make(map[routing.Model]*stats.Sample, len(models))
		for _, m := range models {
			deliverySamples[m] = &stats.Sample{}
			stretchSamples[m] = &stats.Sample{}
		}
		for rep := 0; rep < r.cfg.Replications; rep++ {
			var cellStart time.Time
			if rec != nil {
				cellStart = rec.Now()
			}
			rng := rand.New(rand.NewSource(r.cfg.Seed + int64(f)*7_368_787 + int64(rep)))
			faults := Uniform(f).Generate(topo, rng)
			res, err := core.FormOn(formCfg, topo, faults)
			if err != nil {
				return nil, err
			}
			pairs := routing.SamplePairs(res, pairsPerRun, rng)
			if pairs == nil {
				continue
			}
			for m, st := range routing.CompareModels(res, pairs) {
				deliverySamples[m].Add(st.DeliveryRate())
				if st.Delivered > 0 {
					stretchSamples[m].Add(st.AvgStretch())
				}
			}
			if rec != nil {
				rec.Emit(obs.Event{
					Type: obs.ESweepCell, X: float64(f), Rep: rep, OK: true,
					DurNS: rec.Now().Sub(cellStart).Nanoseconds(),
				})
				rec.Counter("sweep_cells").Inc()
			}
		}
		for _, m := range models {
			if deliverySamples[m].N() > 0 {
				delivery[m].Add(float64(f), deliverySamples[m])
			}
			if stretchSamples[m].N() > 0 {
				stretch[m].Add(float64(f), stretchSamples[m])
			}
		}
	}

	out := make([]*stats.Series, 0, 2*len(models))
	for _, m := range models {
		out = append(out, delivery[m])
	}
	for _, m := range models {
		out = append(out, stretch[m])
	}
	return out, nil
}
