package sweep

import (
	"math/rand"
	"strings"
	"testing"

	"ocpmesh/internal/core"
	"ocpmesh/internal/fault"
	"ocpmesh/internal/grid"
	"ocpmesh/internal/mesh"
	"ocpmesh/internal/stats"
	"ocpmesh/internal/status"
)

// small returns a fast configuration for tests.
func small() Config {
	return Config{Width: 20, Height: 20, MaxFaults: 20, Step: 10, Replications: 4, Seed: 1}
}

func TestConfigNormalize(t *testing.T) {
	c, err := Config{}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if c.Width != 100 || c.Height != 100 || c.MaxFaults != 100 || c.Step != 5 || c.Replications != 20 {
		t.Fatalf("paper defaults wrong: %+v", c)
	}
	if _, err := (Config{Width: -1}).Normalize(); err == nil {
		t.Fatal("negative width must fail")
	}
	if _, err := (Config{Width: 3, Height: 3, MaxFaults: 100}).Normalize(); err == nil {
		t.Fatal("MaxFaults > size must fail")
	}
}

func TestFaultCounts(t *testing.T) {
	r, err := NewRunner(Config{Width: 10, Height: 10, MaxFaults: 7, Step: 3, Replications: 1})
	if err != nil {
		t.Fatal(err)
	}
	got := r.faultCounts()
	want := []int{0, 3, 6, 7}
	if len(got) != len(want) {
		t.Fatalf("faultCounts = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("faultCounts = %v, want %v", got, want)
		}
	}
}

func TestSweepReproducible(t *testing.T) {
	r, err := NewRunner(small())
	if err != nil {
		t.Fatal(err)
	}
	a, err := r.Sweep(status.Def2b, Uniform, RoundsPhase1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Sweep(status.Def2b, Uniform, RoundsPhase1)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Points) != len(b.Points) {
		t.Fatal("sweep not reproducible")
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Fatalf("point %d differs: %v vs %v", i, a.Points[i], b.Points[i])
		}
	}
}

func TestSweepShapes(t *testing.T) {
	r, err := NewRunner(Config{Width: 30, Height: 30, MaxFaults: 30, Step: 15, Replications: 6, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}

	rounds, err := r.Sweep(status.Def2b, Uniform, RoundsPhase1)
	if err != nil {
		t.Fatal(err)
	}
	pts := rounds.Sorted()
	if pts[0].X != 0 || pts[0].Y != 0 {
		t.Fatalf("f=0 must need 0 rounds: %v", pts[0])
	}
	last := pts[len(pts)-1]
	if last.Y <= 0 {
		t.Fatalf("f=%g should need some rounds: %v", last.X, last)
	}
	// Paper claim: far below the mesh diameter (58 here).
	if last.Y >= float64(30+30-2)/2 {
		t.Fatalf("rounds %v not far below the mesh diameter", last)
	}

	ratio, err := r.Sweep(status.Def2b, Uniform, EnabledRatio)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range ratio.Sorted() {
		if p.Y < 0 || p.Y > 1 {
			t.Fatalf("ratio out of range: %v", p)
		}
	}
	// Paper claim: the enabled percentage stays very high at low fault
	// counts.
	rpts := ratio.Sorted()
	if len(rpts) > 0 && rpts[0].Y < 0.8 {
		t.Fatalf("low-fault enabled ratio %v unexpectedly low", rpts[0])
	}
}

func TestSweepSkipsUndefinedRatio(t *testing.T) {
	// With f=0 only, the ratio metric never fires and the series is empty.
	r, err := NewRunner(Config{Width: 10, Height: 10, MaxFaults: 5, Step: 10, Replications: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	s, err := r.Sweep(status.Def2b, Uniform, EnabledRatio)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range s.Points {
		if p.X == 0 {
			t.Fatal("f=0 has no unsafe nonfaulty nodes; the point must be dropped")
		}
	}
}

func TestFigureIDsAllRun(t *testing.T) {
	r, err := NewRunner(Config{Width: 12, Height: 12, MaxFaults: 12, Step: 12, Replications: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range FigureIDs() {
		series, err := r.Figure(id)
		if err != nil {
			t.Fatalf("figure %s: %v", id, err)
		}
		if len(series) == 0 {
			t.Fatalf("figure %s returned no series", id)
		}
		for _, s := range series {
			if s.Label == "" {
				t.Fatalf("figure %s has an unlabeled series", id)
			}
			if s.CSV() == "" || !strings.Contains(s.ASCII(40), "#") {
				t.Fatalf("figure %s: rendering broken", id)
			}
		}
	}
	if _, err := r.Figure("nope"); err == nil {
		t.Fatal("unknown figure must fail")
	}
}

func TestMetrics(t *testing.T) {
	res, err := core.Form(core.Config{Width: 6, Height: 6, Kind: mesh.Mesh2D},
		nil)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := RoundsPhase1(res); !ok || v != 0 {
		t.Fatal("RoundsPhase1 on empty run")
	}
	if v, ok := RoundsPhase2(res); !ok || v != 0 {
		t.Fatal("RoundsPhase2 on empty run")
	}
	if _, ok := EnabledRatio(res); ok {
		t.Fatal("EnabledRatio must be undefined without faults")
	}
	if v, ok := UnsafeNonfaulty(res); !ok || v != 0 {
		t.Fatal("UnsafeNonfaulty on empty run")
	}
	if v, ok := DisabledNonfaulty(res); !ok || v != 0 {
		t.Fatal("DisabledNonfaulty on empty run")
	}
	if v, ok := BlockCount(res); !ok || v != 0 {
		t.Fatal("BlockCount on empty run")
	}
	if v, ok := RegionCount(res); !ok || v != 0 {
		t.Fatal("RegionCount on empty run")
	}
	if v, ok := MaxBlockDiameter(res); !ok || v != 0 {
		t.Fatal("MaxBlockDiameter on empty run")
	}
}

func TestRunnerConfigAccessor(t *testing.T) {
	r, err := NewRunner(small())
	if err != nil {
		t.Fatal(err)
	}
	if r.Config().Width != 20 {
		t.Fatal("Config accessor wrong")
	}
}

// Results are bit-identical at any worker count: each cell owns a
// seed-derived RNG and aggregation sorts before summing.
func TestSweepWorkerCountInvariant(t *testing.T) {
	base := Config{Width: 25, Height: 25, MaxFaults: 20, Step: 10, Replications: 6, Seed: 5}
	var prev *stats.Series
	for _, workers := range []int{1, 2, 8} {
		cfg := base
		cfg.Workers = workers
		r, err := NewRunner(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s, err := r.Sweep(status.Def2a, Uniform, EnabledRatio)
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil {
			if len(s.Points) != len(prev.Points) {
				t.Fatalf("workers=%d: point count differs", workers)
			}
			for i := range s.Points {
				if s.Points[i] != prev.Points[i] {
					t.Fatalf("workers=%d: point %d differs: %+v vs %+v",
						workers, i, s.Points[i], prev.Points[i])
				}
			}
		}
		prev = s
	}
}

// failingGen generates an out-of-machine fault whenever f > 0, making
// every such formation cell fail inside core.FormOn.
type failingGen struct{ f int }

func (g failingGen) Name() string { return "failing" }
func (g failingGen) Generate(t *mesh.Topology, rng *rand.Rand) *grid.PointSet {
	if g.f == 0 {
		return grid.NewPointSet()
	}
	return grid.PointSetOf(grid.Pt(-1, -1))
}

// TestSweepReportsFailedCells injects a generator whose cells fail for
// every f > 0 and checks the error reports the exact failed-cell count
// (previously, failed cells were silently dropped from the tally and
// the count message was unreachable).
func TestSweepReportsFailedCells(t *testing.T) {
	r, err := NewRunner(Config{Width: 10, Height: 10, MaxFaults: 4, Step: 2, Replications: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.Sweep(status.Def2b, func(f int) fault.Generator { return failingGen{f: f} }, RoundsPhase1)
	if err == nil {
		t.Fatal("sweep with failing cells must fail")
	}
	// Three sweep points (f=0,2,4), three replications: the six f>0 cells
	// fail, the three f=0 cells succeed.
	if !strings.Contains(err.Error(), "6 of 9 cells failed") {
		t.Fatalf("error does not carry the failed-cell count: %v", err)
	}
	if !strings.Contains(err.Error(), "outside") {
		t.Fatalf("error does not carry the first cell error: %v", err)
	}
}
