package sweep

import (
	"fmt"
	"math/rand"
	"time"

	"ocpmesh/internal/core"
	"ocpmesh/internal/mesh"
	"ocpmesh/internal/obs"
	"ocpmesh/internal/region"
	"ocpmesh/internal/routing"
	"ocpmesh/internal/stats"
	"ocpmesh/internal/status"
	"ocpmesh/internal/wormhole"
)

// WormholeComparison is extension experiment X6: cycle-accurate wormhole
// latency under the two fault models. For each f it injects flowsPerRun
// packets (random nonfaulty pairs, staggered injection) routed by the
// BFS oracle under the block model and the refined region model, and
// reports average packet latency and delivered fraction. The refined
// model's extra enabled nodes shorten detours and spread contention, so
// its latency curve should sit at or below the block model's.
func (r *Runner) WormholeComparison(flowsPerRun, packetLen int) ([]*stats.Series, error) {
	if flowsPerRun < 1 {
		flowsPerRun = 60
	}
	if packetLen < 1 {
		packetLen = 4
	}
	models := []routing.Model{routing.ModelBlocks, routing.ModelRegions}
	latency := make(map[routing.Model]*stats.Series, len(models))
	delivered := make(map[routing.Model]*stats.Series, len(models))
	for _, m := range models {
		latency[m] = &stats.Series{
			Label: fmt.Sprintf("wormhole latency (%v)", m), XLabel: "faults", YLabel: "cycles",
		}
		delivered[m] = &stats.Series{
			Label: fmt.Sprintf("wormhole delivered fraction (%v)", m), XLabel: "faults", YLabel: "fraction",
		}
	}

	rec := r.cfg.Recorder
	formCfg := core.Config{
		Width: r.cfg.Width, Height: r.cfg.Height, Kind: r.cfg.Kind,
		Safety: status.Def2a, Connectivity: region.Conn8, Engine: r.cfg.Engine, Workers: r.cfg.EngineWorkers,
		Recorder: rec,
	}
	topo, err := mesh.New(r.cfg.Width, r.cfg.Height, r.cfg.Kind)
	if err != nil {
		return nil, err
	}

	counts := r.faultCounts()
	rec.Emit(obs.Event{
		Type: obs.ESweepStart, Name: "wormhole",
		N: len(counts) * r.cfg.Replications, Points: len(counts),
	})
	for _, f := range counts {
		latSamples := map[routing.Model]*stats.Sample{}
		delSamples := map[routing.Model]*stats.Sample{}
		for _, m := range models {
			latSamples[m] = &stats.Sample{}
			delSamples[m] = &stats.Sample{}
		}
		for rep := 0; rep < r.cfg.Replications; rep++ {
			var cellStart time.Time
			if rec != nil {
				cellStart = rec.Now()
			}
			rng := rand.New(rand.NewSource(r.cfg.Seed + int64(f)*15_485_863 + int64(rep)))
			faults := Uniform(f).Generate(topo, rng)
			res, err := core.FormOn(formCfg, topo, faults)
			if err != nil {
				return nil, err
			}
			pairs := routing.SamplePairs(res, flowsPerRun, rng)
			if pairs == nil {
				continue
			}
			flows := make([]wormhole.Flow, len(pairs))
			for i, pr := range pairs {
				flows[i] = wormhole.Flow{Src: pr[0], Dst: pr[1], InjectCycle: rng.Intn(2 * flowsPerRun)}
			}
			for _, m := range models {
				g := routing.NewGraph(res, m)
				st, err := wormhole.Simulate(g, routing.Instrument(routing.Oracle{}, rec), flows,
					wormhole.Config{PacketLen: packetLen, Recorder: rec})
				if err != nil {
					return nil, fmt.Errorf("sweep: wormhole f=%d rep=%d: %w", f, rep, err)
				}
				// Oracle paths are not dimension-ordered, so single-VC
				// deadlock is possible in principle; a deadlocked run
				// simply contributes its partial delivery fraction.
				if st.Delivered > 0 {
					latSamples[m].Add(st.AvgLatency())
				}
				delSamples[m].Add(float64(st.Delivered) / float64(len(flows)))
			}
			if rec != nil {
				rec.Emit(obs.Event{
					Type: obs.ESweepCell, X: float64(f), Rep: rep, OK: true,
					DurNS: rec.Now().Sub(cellStart).Nanoseconds(),
				})
				rec.Counter("sweep_cells").Inc()
			}
		}
		for _, m := range models {
			if latSamples[m].N() > 0 {
				latency[m].Add(float64(f), latSamples[m])
			}
			if delSamples[m].N() > 0 {
				delivered[m].Add(float64(f), delSamples[m])
			}
		}
	}

	out := make([]*stats.Series, 0, 2*len(models))
	for _, m := range models {
		out = append(out, latency[m])
	}
	for _, m := range models {
		out = append(out, delivered[m])
	}
	return out, nil
}
