package sweep

import (
	"math/rand"
	"time"

	"ocpmesh/internal/core"
	"ocpmesh/internal/fault"
	"ocpmesh/internal/mesh"
	"ocpmesh/internal/obs"
	"ocpmesh/internal/partition"
	"ocpmesh/internal/region"
	"ocpmesh/internal/stats"
	"ocpmesh/internal/status"
)

// PartitionRecovery is extension experiment X7: how many nonfaulty nodes
// the open-problem solvers (package partition) recover beyond the
// disabled regions themselves, on clustered faults where large regions
// arise. Two curves: nonfaulty nodes kept disabled by the paper's
// algorithm, and the residue after refining every region with the
// exact/greedy cover.
func (r *Runner) PartitionRecovery() ([]*stats.Series, error) {
	before := &stats.Series{
		Label: "disabled nonfaulty (paper's regions)", XLabel: "faults", YLabel: "nodes",
	}
	after := &stats.Series{
		Label: "disabled nonfaulty (after partitioning)", XLabel: "faults", YLabel: "nodes",
	}
	rec := r.cfg.Recorder
	formCfg := core.Config{
		Width: r.cfg.Width, Height: r.cfg.Height, Kind: r.cfg.Kind,
		Safety: status.Def2b, Connectivity: region.Conn8, Engine: r.cfg.Engine, Workers: r.cfg.EngineWorkers,
		Recorder: rec,
	}
	topo, err := mesh.New(r.cfg.Width, r.cfg.Height, r.cfg.Kind)
	if err != nil {
		return nil, err
	}
	counts := r.faultCounts()
	rec.Emit(obs.Event{
		Type: obs.ESweepStart, Name: "partition",
		N: len(counts) * r.cfg.Replications, Points: len(counts),
	})
	for _, f := range counts {
		var sBefore, sAfter stats.Sample
		for rep := 0; rep < r.cfg.Replications; rep++ {
			var cellStart time.Time
			if rec != nil {
				cellStart = rec.Now()
			}
			rng := rand.New(rand.NewSource(r.cfg.Seed + int64(f)*6_700_417 + int64(rep)))
			k := 1 + f/20
			faults := fault.Clustered{Count: f, Clusters: k, Spread: 2}.Generate(topo, rng)
			res, err := core.FormOn(formCfg, topo, faults)
			if err != nil {
				return nil, err
			}
			totalBefore, totalAfter := 0, 0
			for _, reg := range res.Regions {
				cover := partition.Refine(reg.Nodes, reg.Faults)
				totalBefore += reg.NonfaultyCount()
				totalAfter += cover.NonfaultyCount(reg.Faults)
			}
			sBefore.Add(float64(totalBefore))
			sAfter.Add(float64(totalAfter))
			if rec != nil {
				rec.Emit(obs.Event{
					Type: obs.ESweepCell, X: float64(f), Rep: rep, OK: true,
					Value: float64(totalAfter), DurNS: rec.Now().Sub(cellStart).Nanoseconds(),
				})
				rec.Counter("sweep_cells").Inc()
			}
		}
		if sBefore.N() > 0 {
			before.Add(float64(f), &sBefore)
			after.Add(float64(f), &sAfter)
		}
	}
	return []*stats.Series{before, after}, nil
}
