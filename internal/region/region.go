// Package region extracts and analyzes the paper's two kinds of fault
// regions from label vectors: the rectangular faulty blocks produced by
// phase 1 (safe/unsafe) and the orthogonal-convex disabled regions
// produced by phase 2 (enabled/disabled).
//
// It also provides the invariant checkers used throughout the test suite:
// blocks must be disjoint rectangles at the definition-specific minimum
// distance; disabled regions must be orthogonal convex polygons whose
// corner nodes are all faulty (Theorem 1, Lemma 1) and must equal the
// rectilinear convex closure of their faults when that closure is
// connected (Theorem 2).
package region

import (
	"fmt"
	"sort"

	"ocpmesh/internal/geometry"
	"ocpmesh/internal/grid"
	"ocpmesh/internal/mesh"
)

// Connectivity selects how cells are grouped into regions.
type Connectivity int

const (
	// Conn8 groups edge-adjacent and corner-touching cells, matching the
	// paper's convention that diagonally adjacent faults share a region.
	// It is the zero value, hence the default of core.Config.
	Conn8 Connectivity = iota
	// Conn4 groups edge-adjacent cells only.
	Conn4
)

// String returns the connectivity name.
func (c Connectivity) String() string {
	if c == Conn8 {
		return "8-connected"
	}
	return "4-connected"
}

// Region is a connected group of nodes carrying the same label, together
// with the faults it contains.
type Region struct {
	// Nodes is the full node set of the region.
	Nodes *grid.PointSet
	// Faults is the subset of Nodes that is faulty.
	Faults *grid.PointSet

	// min memoizes the canonical (row-major minimal) node. Regions are
	// never mutated once built, so the scan runs at most once per region
	// instead of once per UpdateRegions call that carries it along.
	min    grid.Point
	minSet bool
}

// canonical returns the row-major minimal node of the region, memoized.
func (r *Region) canonical() grid.Point {
	if !r.minSet {
		r.min = minNode(r)
		r.minSet = true
	}
	return r.min
}

// Bounds returns the bounding rectangle of the region.
func (r *Region) Bounds() grid.Rect { return r.Nodes.Bounds() }

// Diameter returns the L1 diameter d(B) of the region.
func (r *Region) Diameter() int { return r.Nodes.Diameter() }

// Size returns the number of nodes in the region.
func (r *Region) Size() int { return r.Nodes.Len() }

// NonfaultyCount returns the number of nonfaulty nodes captured by the
// region — the quantity the paper's algorithm minimizes.
func (r *Region) NonfaultyCount() int { return r.Nodes.Len() - r.Faults.Len() }

// IsRectangle reports whether the region fills its bounding rectangle.
func (r *Region) IsRectangle() bool { return geometry.IsRectangle(r.Nodes) }

// IsOrthogonallyConvex reports whether the region satisfies Definition 1.
func (r *Region) IsOrthogonallyConvex() bool { return geometry.IsOrthogonallyConvex(r.Nodes) }

// String summarizes the region.
func (r *Region) String() string {
	return fmt.Sprintf("region{%v, %d nodes, %d faulty}", r.Bounds(), r.Size(), r.Faults.Len())
}

// neighborsFunc returns the adjacency used to group cells: the
// topology's own (so torus regions merge across the wraparound seam),
// plus the diagonals for Conn8.
func neighborsFunc(topo *mesh.Topology, conn Connectivity) func(grid.Point) []grid.Point {
	// One scratch slice per extraction: the flood fills below consume
	// each result before asking for the next, so reusing the backing
	// array is safe and spares an allocation per visited cell.
	buf := make([]grid.Point, 0, 8)
	return func(p grid.Point) []grid.Point {
		out := topo.AppendNeighbors(p, buf[:0])
		if conn == Conn8 {
			for _, d := range [4]grid.Point{{X: -1, Y: -1}, {X: 1, Y: -1}, {X: -1, Y: 1}, {X: 1, Y: 1}} {
				q := topo.Wrap(p.Add(d))
				if topo.Contains(q) {
					out = append(out, q)
				}
			}
		}
		buf = out
		return out
	}
}

// component floods the connected component of start among the cells with
// label want, marking every visited cell in seen. queue is scratch
// storage for the BFS worklist (head-indexed, never shrunk); the
// (possibly grown) slice is returned so callers can reuse it across
// components instead of reallocating per flood.
func component(topo *mesh.Topology, labels []bool, want bool, neighbors func(grid.Point) []grid.Point, start grid.Point, seen *grid.PointSet, queue []grid.Point) (*grid.PointSet, []grid.Point, grid.Rect) {
	comp := grid.NewPointSet()
	bounds := grid.Empty().Include(start)
	queue = append(queue[:0], start)
	seen.Add(start)
	comp.Add(start)
	for head := 0; head < len(queue); head++ {
		p := queue[head]
		for _, q := range neighbors(p) {
			if labels[topo.Index(q)] == want && !seen.Has(q) {
				seen.Add(q)
				comp.Add(q)
				bounds = bounds.Include(q)
				queue = append(queue, q)
			}
		}
	}
	return comp, queue, bounds
}

// regionFaults returns the faulty subset of comp, iterating whichever
// set is smaller rather than cloning the whole component.
func regionFaults(comp, faults *grid.PointSet) *grid.PointSet {
	small, other := comp, faults
	if faults.Len() < comp.Len() {
		small, other = faults, comp
	}
	out := grid.NewPointSetCap(small.Len())
	small.Each(func(p grid.Point) {
		if other.Has(p) {
			out.Add(p)
		}
	})
	return out
}

// extract groups the true-labeled cells of want into regions. The cell
// count is known before any set is built, so the cell and seen sets are
// sized up front and the flood fills share one worklist — region
// extraction stays free of incremental map and slice growth, which
// profiles showed dominating formation allocation churn.
func extract(topo *mesh.Topology, faults *grid.PointSet, labels []bool, want bool, conn Connectivity) []*Region {
	n := 0
	for _, l := range labels {
		if l == want {
			n++
		}
	}
	cells := grid.NewPointSetCap(n)
	for i, l := range labels {
		if l == want {
			cells.Add(topo.PointAt(i))
		}
	}
	neighbors := neighborsFunc(topo, conn)
	seen := grid.NewPointSetCap(n)
	queue := make([]grid.Point, 0, n)
	var out []*Region
	for _, start := range cells.Points() { // canonical order => deterministic output
		if seen.Has(start) {
			continue
		}
		var comp *grid.PointSet
		comp, queue, _ = component(topo, labels, want, neighbors, start, seen, queue)
		// Starts are visited in canonical order, so the first cell reached
		// in each component is its minimal node.
		out = append(out, &Region{Nodes: comp, Faults: regionFaults(comp, faults), min: start, minSet: true})
	}
	return out
}

// minNode returns the canonical (row-major minimal) node of the region,
// the key extract orders its output by.
func minNode(r *Region) grid.Point {
	first := true
	var best grid.Point
	r.Nodes.Each(func(p grid.Point) {
		if first || p.Less(best) {
			best = p
			first = false
		}
	})
	return best
}

// UpdateRegions incrementally updates a region list after a label delta.
// touched must cover every cell whose label changed AND, for every
// region affected by the delta, that region's full former footprint
// (incremental formation guarantees this by resetting whole block
// footprints). The function re-extracts only the components reachable
// from touched cells, keeps every old region the delta could not have
// reached, and returns the combined list in the same canonical order as
// a from-scratch extraction — bit for bit.
func UpdateRegions(topo *mesh.Topology, faults *grid.PointSet, labels []bool, want bool, conn Connectivity, old []*Region, touched *grid.PointSet) []*Region {
	neighbors := neighborsFunc(topo, conn)
	// touched.Len() is only a lower bound on the re-extracted area (a
	// fresh component may grow past the touched footprint), but it is the
	// best O(perturbation) hint available without scanning all labels.
	seen := grid.NewPointSetCap(touched.Len())
	queue := make([]grid.Point, 0, touched.Len())
	var fresh []*Region
	// hot accumulates the bounding box of touched ∪ seen during walks
	// that run anyway, so the survivor loop below can rule most regions
	// out with a rectangle test instead of hashed map lookups.
	hot := grid.Empty()
	// Start order is immaterial: components are order-independent and
	// fresh is sorted by canonical node below, so the unordered walk
	// skips the Points() allocation and sort.
	touched.Each(func(start grid.Point) {
		hot = hot.Include(start)
		if seen.Has(start) || labels[topo.Index(start)] != want {
			return
		}
		var comp *grid.PointSet
		var cb grid.Rect
		comp, queue, cb = component(topo, labels, want, neighbors, start, seen, queue)
		hot = hot.Include(grid.Pt(cb.MinX, cb.MinY)).Include(grid.Pt(cb.MaxX, cb.MaxY))
		fresh = append(fresh, &Region{Nodes: comp, Faults: regionFaults(comp, faults)})
	})
	// Only the handful of fresh components need sorting: old is already
	// in canonical order (this function's own postcondition), and a
	// subsequence of a sorted list stays sorted, so survivors merge in
	// O(len(old)) without re-keying and re-sorting the whole list.
	sort.Slice(fresh, func(i, j int) bool { return fresh[i].canonical().Less(fresh[j].canonical()) })
	out := make([]*Region, 0, len(fresh)+len(old))
	fi := 0
	for _, r := range old {
		// A surviving region is untouched and disjoint from every fresh
		// component. touched covers an affected region's entire former
		// footprint (the documented contract) and a fresh component
		// overlapping any of its cells has necessarily swallowed all of
		// them, so both conditions hold for every cell or for none — one
		// representative-cell membership test decides survival in O(1)
		// instead of a walk over the region's area.
		p := r.canonical()
		if hot.Contains(p) && (touched.Has(p) || seen.Has(p)) {
			continue
		}
		for fi < len(fresh) && fresh[fi].canonical().Less(p) {
			out = append(out, fresh[fi])
			fi++
		}
		out = append(out, r)
	}
	return append(out, fresh[fi:]...)
}

// FaultyBlocks groups the unsafe nodes (phase-1 labels, true = unsafe)
// into faulty blocks. Blocks are returned in canonical order. Because
// blocks are rectangles, 4- and 8-connectivity give the same grouping for
// Definition 2a; Definition 2b blocks can touch corners (distance-2
// diagonal blocks never touch, so Conn4 is used and matches the paper's
// "disjoint" claim).
func FaultyBlocks(topo *mesh.Topology, faults *grid.PointSet, unsafe []bool) []*Region {
	return extract(topo, faults, unsafe, true, Conn4)
}

// DisabledRegions groups the disabled nodes (phase-2 labels, true =
// enabled, so regions collect the false entries) into disabled regions
// using the given connectivity. The paper's convention is Conn8.
func DisabledRegions(topo *mesh.Topology, faults *grid.PointSet, enabled []bool, conn Connectivity) []*Region {
	return extract(topo, faults, enabled, false, conn)
}

// AssignToBlocks maps each disabled region to the index of the faulty
// block containing it. Disabled nodes are a subset of unsafe nodes, so
// every region lies inside exactly one block; a region spanning no block
// or several is reported as an error.
func AssignToBlocks(regions, blocks []*Region) ([]int, error) {
	owner := make([]int, len(regions))
	for ri, r := range regions {
		owner[ri] = -1
		for bi, b := range blocks {
			if r.Nodes.SubsetOf(b.Nodes) {
				owner[ri] = bi
				break
			}
		}
		if owner[ri] == -1 {
			return nil, fmt.Errorf("region: %v not contained in any faulty block", r)
		}
	}
	return owner, nil
}
