package region

import (
	"math/rand"
	"testing"

	"ocpmesh/internal/fault"
	"ocpmesh/internal/geometry"
	"ocpmesh/internal/grid"
	"ocpmesh/internal/mesh"
	"ocpmesh/internal/simnet"
	"ocpmesh/internal/simnet/simnettest"
	"ocpmesh/internal/status"
)

// label runs both phases sequentially and returns (unsafe, enabled).
func label(t *testing.T, topo *mesh.Topology, faults *grid.PointSet, def status.SafetyDef) ([]bool, []bool) {
	t.Helper()
	env, err := simnet.NewEnv(topo, faults, nil)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := simnet.Sequential().Run(env, status.UnsafeRule(def), simnet.Options{})
	if err != nil {
		t.Fatal(err)
	}
	env2, err := simnet.NewEnv(topo, faults, p1.Labels)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := simnet.Sequential().Run(env2, status.EnabledRule(), simnet.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return p1.Labels, p2.Labels
}

func minDist(def status.SafetyDef) int {
	if def == status.Def2a {
		return 3
	}
	return 2
}

func TestConnectivityString(t *testing.T) {
	if Conn4.String() != "4-connected" || Conn8.String() != "8-connected" {
		t.Fatal("connectivity names wrong")
	}
}

func TestSectionThreeRegions(t *testing.T) {
	fix := fault.SectionThreeExample()
	unsafe, enabled := label(t, fix.Topo, fix.Faults, status.Def2b)

	blocks := FaultyBlocks(fix.Topo, fix.Faults, unsafe)
	if len(blocks) != 1 {
		t.Fatalf("blocks = %d, want 1", len(blocks))
	}
	b := blocks[0]
	if !b.IsRectangle() || b.Bounds() != grid.NewRect(1, 1, 3, 3) {
		t.Fatalf("block = %v", b)
	}
	if b.Size() != 9 || b.Faults.Len() != 3 || b.NonfaultyCount() != 6 {
		t.Fatalf("block counts wrong: %v", b)
	}
	if b.Diameter() != 4 {
		t.Fatalf("block diameter = %d", b.Diameter())
	}

	// The paper reports TWO disabled regions: {(1,3)} and {(2,1),(3,2)}
	// (diagonal nodes grouped).
	regions := DisabledRegions(fix.Topo, fix.Faults, enabled, Conn8)
	if len(regions) != 2 {
		t.Fatalf("disabled regions = %d, want 2", len(regions))
	}
	if !regions[0].Nodes.Equal(grid.PointSetOf(grid.Pt(2, 1), grid.Pt(3, 2))) {
		t.Fatalf("region 0 = %v", regions[0].Nodes.Points())
	}
	if !regions[1].Nodes.Equal(grid.PointSetOf(grid.Pt(1, 3))) {
		t.Fatalf("region 1 = %v", regions[1].Nodes.Points())
	}

	// Under plain 4-connectivity the diagonal pair splits: 3 regions.
	if got := DisabledRegions(fix.Topo, fix.Faults, enabled, Conn4); len(got) != 3 {
		t.Fatalf("4-connected regions = %d, want 3", len(got))
	}

	if err := CheckBlockInvariants(blocks, minDist(status.Def2b)); err != nil {
		t.Fatal(err)
	}
	if err := CheckDisabledRegionInvariants(regions); err != nil {
		t.Fatal(err)
	}
	if err := CheckRegionsInsideBlocks(regions, blocks); err != nil {
		t.Fatal(err)
	}
}

func TestFigure1Regions(t *testing.T) {
	fix := fault.Figure1()
	unsafe2a, enabled2a := label(t, fix.Topo, fix.Faults, status.Def2a)
	blocks2a := FaultyBlocks(fix.Topo, fix.Faults, unsafe2a)
	if len(blocks2a) != 1 || blocks2a[0].Bounds() != grid.NewRect(2, 2, 5, 3) {
		t.Fatalf("Def2a blocks = %v", blocks2a)
	}

	unsafe2b, _ := label(t, fix.Topo, fix.Faults, status.Def2b)
	blocks2b := FaultyBlocks(fix.Topo, fix.Faults, unsafe2b)
	if len(blocks2b) != 2 {
		t.Fatalf("Def2b blocks = %v", blocks2b)
	}
	if err := CheckBlockInvariants(blocks2a, 3); err != nil {
		t.Fatal(err)
	}
	if err := CheckBlockInvariants(blocks2b, 2); err != nil {
		t.Fatal(err)
	}

	regions := DisabledRegions(fix.Topo, fix.Faults, enabled2a, Conn8)
	if len(regions) != 2 {
		t.Fatalf("regions = %v", regions)
	}
	if !regions[0].Nodes.Equal(grid.PointSetOf(grid.Pt(2, 2), grid.Pt(3, 3))) {
		t.Fatalf("region 0 = %v", regions[0].Nodes.Points())
	}
	if !regions[1].Nodes.Equal(grid.PointSetOf(grid.Pt(5, 3))) {
		t.Fatalf("region 1 = %v", regions[1].Nodes.Points())
	}
	if err := CheckDisabledRegionInvariants(regions); err != nil {
		t.Fatal(err)
	}
	if err := CheckRegionsInsideBlocks(regions, blocks2a); err != nil {
		t.Fatal(err)
	}
}

func TestFigure2ARegionIsBlockMinusHole(t *testing.T) {
	fix := fault.Figure2A()
	unsafe, enabled := label(t, fix.Topo, fix.Faults, status.Def2b)
	blocks := FaultyBlocks(fix.Topo, fix.Faults, unsafe)
	if len(blocks) != 1 {
		t.Fatalf("blocks = %v", blocks)
	}
	regions := DisabledRegions(fix.Topo, fix.Faults, enabled, Conn8)
	if len(regions) != 1 {
		t.Fatalf("regions = %v", regions)
	}
	want := grid.PointSetOf(fault.Figure2Block().Points()...).Subtract(fault.Figure2AHole())
	if !regions[0].Nodes.Equal(want) {
		t.Fatalf("region = %v", regions[0].Nodes.Points())
	}
	if err := CheckDisabledRegionInvariants(regions); err != nil {
		t.Fatal(err)
	}
}

func TestAssignToBlocksErrors(t *testing.T) {
	stray := &Region{Nodes: grid.PointSetOf(grid.Pt(9, 9)), Faults: grid.PointSetOf(grid.Pt(9, 9))}
	block := &Region{Nodes: grid.PointSetOf(grid.Pt(0, 0)), Faults: grid.PointSetOf(grid.Pt(0, 0))}
	if _, err := AssignToBlocks([]*Region{stray}, []*Region{block}); err == nil {
		t.Fatal("stray region must be rejected")
	}
	owner, err := AssignToBlocks([]*Region{block}, []*Region{stray, block})
	if err != nil || owner[0] != 1 {
		t.Fatalf("owner = %v, err = %v", owner, err)
	}
}

func TestCheckBlockInvariantsRejects(t *testing.T) {
	l := &Region{
		Nodes:  grid.PointSetOf(grid.Pt(0, 0), grid.Pt(1, 0), grid.Pt(0, 1)),
		Faults: grid.PointSetOf(grid.Pt(0, 0)),
	}
	if err := CheckBlockInvariants([]*Region{l}, 2); err == nil {
		t.Fatal("non-rectangle block must be rejected")
	}
	empty := &Region{Nodes: grid.PointSetOf(grid.Pt(0, 0)), Faults: grid.NewPointSet()}
	if err := CheckBlockInvariants([]*Region{empty}, 2); err == nil {
		t.Fatal("faultless block must be rejected")
	}
	a := &Region{Nodes: grid.PointSetOf(grid.Pt(0, 0)), Faults: grid.PointSetOf(grid.Pt(0, 0))}
	b := &Region{Nodes: grid.PointSetOf(grid.Pt(1, 1)), Faults: grid.PointSetOf(grid.Pt(1, 1))}
	if err := CheckBlockInvariants([]*Region{a, b}, 3); err == nil {
		t.Fatal("too-close blocks must be rejected")
	}
	if err := CheckBlockInvariants([]*Region{a, b}, 2); err != nil {
		t.Fatalf("distance-2 blocks legal under Def2b: %v", err)
	}
}

func TestCheckDisabledRegionInvariantsRejects(t *testing.T) {
	u := &Region{
		Nodes: grid.PointSetOf(
			grid.Pt(0, 0), grid.Pt(1, 0), grid.Pt(2, 0),
			grid.Pt(0, 1), grid.Pt(2, 1),
		),
		Faults: grid.PointSetOf(grid.Pt(0, 0), grid.Pt(1, 0), grid.Pt(2, 0), grid.Pt(0, 1), grid.Pt(2, 1)),
	}
	if err := CheckDisabledRegionInvariants([]*Region{u}); err == nil {
		t.Fatal("U-shaped region must be rejected (not orthogonally convex)")
	}
	// Nonfaulty corner violates Lemma 1.
	sq := &Region{
		Nodes:  grid.PointSetOf(grid.NewRect(0, 0, 1, 1).Points()...),
		Faults: grid.PointSetOf(grid.Pt(0, 0), grid.Pt(1, 1)),
	}
	if err := CheckDisabledRegionInvariants([]*Region{sq}); err == nil {
		t.Fatal("region with nonfaulty corner must be rejected")
	}
}

// End-to-end property test over random fault patterns: the complete set
// of paper invariants holds for every definition, connectivity and
// topology kind.
func TestPipelineInvariantsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	trials := 120
	if testing.Short() {
		trials = 25
	}
	for trial := 0; trial < trials; trial++ {
		topo := simnettest.RandomTopology(rng, 4, 15, 0.25)
		kind := topo.Kind()
		faults := simnettest.RandomFaults(rng, topo, 1.0/3)
		f := faults.Len()
		for _, def := range []status.SafetyDef{status.Def2a, status.Def2b} {
			unsafe, enabled := label(t, topo, faults, def)

			// Faulty nodes must be unsafe and disabled; safe implies enabled.
			for i := range unsafe {
				p := topo.PointAt(i)
				if faults.Has(p) && (!unsafe[i] || enabled[i]) {
					t.Fatalf("trial %d: faulty node %v not unsafe+disabled", trial, p)
				}
				if !unsafe[i] && !enabled[i] {
					t.Fatalf("trial %d: safe node %v disabled", trial, p)
				}
			}

			blocks := FaultyBlocks(topo, faults, unsafe)
			// On a torus a block can wrap around the seam and appear
			// non-rectangular in flat coordinates; restrict the geometric
			// block checks to meshes unless the block avoids the seam.
			if kind == mesh.Mesh2D {
				if err := CheckBlockInvariants(blocks, minDist(def)); err != nil {
					t.Fatalf("trial %d (%v, %v, f=%d): %v", trial, topo, def, f, err)
				}
			}

			regions := DisabledRegions(topo, faults, enabled, Conn8)
			if kind == mesh.Mesh2D {
				if err := CheckDisabledRegionInvariants(regions); err != nil {
					t.Fatalf("trial %d (%v, %v, f=%d): %v\nfaults=%v",
						trial, topo, def, f, err, faults.Points())
				}
				if err := CheckRegionsInsideBlocks(regions, blocks); err != nil {
					t.Fatalf("trial %d (%v, %v, f=%d): %v", trial, topo, def, f, err)
				}
			}

			// Fault coverage and the disabled-subset-of-unsafe containment
			// hold on every topology.
			covered := grid.NewPointSet()
			for _, r := range regions {
				covered.Union(r.Faults)
				for _, p := range r.Nodes.Points() {
					if !unsafe[topo.Index(p)] {
						t.Fatalf("trial %d: disabled node %v is safe", trial, p)
					}
				}
			}
			if !covered.Equal(faults) {
				t.Fatalf("trial %d: regions cover %d faults of %d", trial, covered.Len(), faults.Len())
			}
		}
	}
}

// Theorem 2 / Corollary, strong form: every connected orthogonally convex
// superset of a block's faults contains the union of the block's disabled
// regions.
func TestCorollaryAgainstCandidatePolygons(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		topo := mesh.MustNew(12, 12, mesh.Mesh2D)
		faults := fault.Uniform{Count: 2 + rng.Intn(20)}.Generate(topo, rng)
		unsafe, enabled := label(t, topo, faults, status.Def2b)
		blocks := FaultyBlocks(topo, faults, unsafe)
		regions := DisabledRegions(topo, faults, enabled, Conn8)
		owner, err := AssignToBlocks(regions, blocks)
		if err != nil {
			t.Fatal(err)
		}
		for bi, b := range blocks {
			disabledUnion := grid.NewPointSet()
			for ri, r := range regions {
				if owner[ri] == bi {
					disabledUnion.Union(r.Nodes)
				}
			}
			// Candidate B2: the canonical connected orthogonal convex
			// closure of the block's faults.
			b2 := geometry.ConnectedOrthogonalClosure(b.Faults)
			if !disabledUnion.SubsetOf(b2) {
				t.Fatalf("trial %d: disabled union %v not inside candidate OCP %v (faults %v)",
					trial, disabledUnion.Points(), b2.Points(), b.Faults.Points())
			}
			// Corollary: nonfaulty nodes kept disabled <= nonfaulty nodes
			// of the candidate polygon.
			disabledNonfaulty := disabledUnion.Len() - b.Faults.Len()
			b2Nonfaulty := b2.Len() - b.Faults.Len()
			if disabledNonfaulty > b2Nonfaulty {
				t.Fatalf("trial %d: corollary violated: %d > %d", trial, disabledNonfaulty, b2Nonfaulty)
			}
		}
	}
}

func TestRegionString(t *testing.T) {
	r := &Region{Nodes: grid.PointSetOf(grid.Pt(1, 1)), Faults: grid.PointSetOf(grid.Pt(1, 1))}
	if s := r.String(); s != "region{[1..1]x[1..1], 1 nodes, 1 faulty}" {
		t.Fatalf("String = %q", s)
	}
}

// HV-convexity gives every (4-connected) disabled sub-region a perimeter
// exactly equal to its bounding rectangle's — the geometric fact that
// lets a message hug the region without backtracking.
func TestDisabledRegionPerimeterLaw(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 60; trial++ {
		topo := mesh.MustNew(14, 14, mesh.Mesh2D)
		faults := fault.Clustered{Count: 8 + rng.Intn(12), Clusters: 2, Spread: 2}.Generate(topo, rng)
		_, enabled := label(t, topo, faults, status.Def2b)
		for _, r := range DisabledRegions(topo, faults, enabled, Conn8) {
			for _, sub := range geometry.Components(r.Nodes) {
				b := sub.Bounds()
				if got, want := geometry.Perimeter(sub), 2*(b.Width()+b.Height()); got != want {
					t.Fatalf("trial %d: sub-region perimeter %d != %d (bounds %v): %v",
						trial, got, want, b, sub.Points())
				}
			}
		}
	}
}

// TestUpdateRegionsMatchesExtract perturbs random label fields and
// checks that UpdateRegions, given a touched set covering the changed
// cells and the full former footprint of every affected region, returns
// exactly what a from-scratch extraction returns — same components,
// same canonical order.
func TestUpdateRegionsMatchesExtract(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	for trial := 0; trial < 40; trial++ {
		kind := mesh.Mesh2D
		if trial%2 == 1 {
			kind = mesh.Torus2D
		}
		topo := mesh.MustNew(7+rng.Intn(8), 7+rng.Intn(8), kind)
		conn := Conn8
		if trial%4 >= 2 {
			conn = Conn4
		}
		labels := make([]bool, topo.Size())
		faults := grid.NewPointSet()
		for i := range labels {
			labels[i] = rng.Intn(3) == 0
			if labels[i] && rng.Intn(2) == 0 {
				faults.Add(topo.PointAt(i))
			}
		}
		old := extract(topo, faults, labels, true, conn)

		// Perturb: flip the labels of a random rectangle, and build the
		// touched set as the rectangle plus the full footprint of every
		// old region it intersects (the contract UpdateRegions documents).
		x0, y0 := rng.Intn(topo.Width()), rng.Intn(topo.Height())
		touched := grid.NewPointSet()
		for dx := 0; dx < 1+rng.Intn(4); dx++ {
			for dy := 0; dy < 1+rng.Intn(4); dy++ {
				p := grid.Pt(x0+dx, y0+dy)
				if !topo.Contains(p) {
					continue
				}
				labels[topo.Index(p)] = rng.Intn(2) == 0
				touched.Add(p)
			}
		}
		for _, r := range old {
			hit := false
			r.Nodes.Each(func(p grid.Point) {
				if touched.Has(p) {
					hit = true
				}
			})
			if hit {
				r.Nodes.Each(func(p grid.Point) { touched.Add(p) })
			}
		}

		got := UpdateRegions(topo, faults, labels, true, conn, old, touched)
		want := extract(topo, faults, labels, true, conn)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d regions, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if !got[i].Nodes.Equal(want[i].Nodes) || !got[i].Faults.Equal(want[i].Faults) {
				t.Fatalf("trial %d: region %d = %v, want %v", trial, i, got[i], want[i])
			}
		}
	}
}
