package region

import (
	"ocpmesh/internal/grid"
	"ocpmesh/internal/mesh"
)

// seamShift finds, for a node set on a torus, an empty column and an
// empty row to route the wraparound seam through, returning the
// translation that maps the set into seam-free flat coordinates. ok is
// false when the set occupies every column or every row — it then wraps a
// full ring and has no planar embedding, so the planar geometry checks do
// not apply (a ring-wrapping region has no boundary in that dimension and
// "corner node" loses its meaning).
func seamShift(topo *mesh.Topology, nodes *grid.PointSet) (shift func(grid.Point) grid.Point, ok bool) {
	colUsed := make([]bool, topo.Width())
	rowUsed := make([]bool, topo.Height())
	nodes.Each(func(p grid.Point) {
		colUsed[p.X] = true
		rowUsed[p.Y] = true
	})
	freeCol, freeRow := -1, -1
	for x, used := range colUsed {
		if !used {
			freeCol = x
			break
		}
	}
	for y, used := range rowUsed {
		if !used {
			freeRow = y
			break
		}
	}
	if freeCol == -1 || freeRow == -1 {
		return nil, false
	}
	return func(p grid.Point) grid.Point {
		p.X = mod(p.X-freeCol-1, topo.Width())
		p.Y = mod(p.Y-freeRow-1, topo.Height())
		return p
	}, true
}

func shiftSet(s *grid.PointSet, shift func(grid.Point) grid.Point) *grid.PointSet {
	out := grid.NewPointSet()
	s.Each(func(p grid.Point) { out.Add(shift(p)) })
	return out
}

// Unwrap translates a node set of a torus into flat coordinates so the
// planar geometry checks apply: coordinates are rotated so the
// wraparound seam passes through an empty column and an empty row. It
// reports ok=false when the set wraps a full ring (occupies every column
// or every row), in which case no seam-free translation exists. For a
// bounded mesh the set is returned unchanged.
func Unwrap(topo *mesh.Topology, nodes *grid.PointSet) (*grid.PointSet, bool) {
	if topo.Kind() != mesh.Torus2D || nodes.Len() == 0 {
		return nodes, true
	}
	shift, ok := seamShift(topo, nodes)
	if !ok {
		return nil, false
	}
	return shiftSet(nodes, shift), true
}

// UnwrapRegion returns a copy of r translated by the same seam-avoiding
// shift (nodes and faults moved consistently), with ok=false when the
// region wraps a full ring in either dimension.
func UnwrapRegion(topo *mesh.Topology, r *Region) (*Region, bool) {
	if topo.Kind() != mesh.Torus2D {
		return r, true
	}
	shift, ok := seamShift(topo, r.Nodes)
	if !ok {
		return nil, false
	}
	return &Region{Nodes: shiftSet(r.Nodes, shift), Faults: shiftSet(r.Faults, shift)}, true
}

func mod(v, m int) int {
	v %= m
	if v < 0 {
		v += m
	}
	return v
}
