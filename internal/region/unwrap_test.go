package region

import (
	"math/rand"
	"sort"
	"testing"

	"ocpmesh/internal/fault"
	"ocpmesh/internal/geometry"
	"ocpmesh/internal/grid"
	"ocpmesh/internal/mesh"
	"ocpmesh/internal/status"
)

func TestUnwrapMeshIsIdentity(t *testing.T) {
	topo := mesh.MustNew(5, 5, mesh.Mesh2D)
	s := grid.PointSetOf(grid.Pt(0, 0), grid.Pt(4, 4))
	got, ok := Unwrap(topo, s)
	if !ok || got != s {
		t.Fatal("mesh unwrap must return the set unchanged")
	}
}

func TestUnwrapSeamBlock(t *testing.T) {
	// A 2x2 block wrapped around the torus corner: cells at (0,0), (7,0),
	// (0,7), (7,7). Flattened it must be a 2x2 rectangle.
	topo := mesh.MustNew(8, 8, mesh.Torus2D)
	s := grid.PointSetOf(grid.Pt(0, 0), grid.Pt(7, 0), grid.Pt(0, 7), grid.Pt(7, 7))
	flat, ok := Unwrap(topo, s)
	if !ok {
		t.Fatal("seam block must unwrap")
	}
	if !geometry.IsRectangle(flat) {
		t.Fatalf("unwrapped block is not a rectangle: %v", flat.Points())
	}
	if flat.Len() != 4 || flat.Bounds().Area() != 4 {
		t.Fatalf("unwrapped = %v", flat.Points())
	}
}

func TestUnwrapFullRingFails(t *testing.T) {
	topo := mesh.MustNew(4, 4, mesh.Torus2D)
	// Occupy a full row: the set wraps the X ring, so no planar embedding.
	s := grid.NewPointSet()
	for i := 0; i < 4; i++ {
		s.Add(grid.Pt(i, 1))
	}
	if _, ok := Unwrap(topo, s); ok {
		t.Fatal("a full ring must not unwrap")
	}
}

func TestUnwrapPreservesStructure(t *testing.T) {
	// Unwrapping must preserve cardinality and pairwise wraparound
	// distances.
	rng := rand.New(rand.NewSource(14))
	topo := mesh.MustNew(9, 7, mesh.Torus2D)
	for trial := 0; trial < 60; trial++ {
		s := grid.NewPointSet()
		for i := 0; i < 1+rng.Intn(6); i++ {
			s.Add(grid.Pt(rng.Intn(9), rng.Intn(7)))
		}
		flat, ok := Unwrap(topo, s)
		if !ok {
			continue
		}
		if flat.Len() != s.Len() {
			t.Fatalf("trial %d: cardinality changed", trial)
		}
		// The unwrap is a coordinate translation mod size, so the multiset
		// of pairwise wrap distances is preserved (point order is not).
		dists := func(pts []grid.Point) []int {
			var out []int
			for i := range pts {
				for j := i + 1; j < len(pts); j++ {
					out = append(out, topo.Dist(pts[i], pts[j]))
				}
			}
			sort.Ints(out)
			return out
		}
		do, du := dists(s.Points()), dists(flat.Points())
		for i := range do {
			if do[i] != du[i] {
				t.Fatalf("trial %d: wrap distance multiset changed: %v vs %v", trial, do, du)
			}
		}
	}
}

func TestUnwrapRegionConsistency(t *testing.T) {
	topo := mesh.MustNew(8, 8, mesh.Torus2D)
	r := &Region{
		Nodes:  grid.PointSetOf(grid.Pt(7, 0), grid.Pt(0, 0), grid.Pt(7, 7), grid.Pt(0, 7)),
		Faults: grid.PointSetOf(grid.Pt(0, 0), grid.Pt(7, 7)),
	}
	flat, ok := UnwrapRegion(topo, r)
	if !ok {
		t.Fatal("region must unwrap")
	}
	if flat.Nodes.Len() != 4 || flat.Faults.Len() != 2 {
		t.Fatal("unwrap lost nodes or faults")
	}
	if !flat.Faults.SubsetOf(flat.Nodes) {
		t.Fatal("faults must stay inside the region after unwrap")
	}
	if !flat.IsRectangle() {
		t.Fatalf("unwrapped region not a rectangle: %v", flat.Nodes.Points())
	}
}

// Full pipeline on tori with seam-heavy fault patterns: Validate-level
// invariants hold after unwrapping.
func TestTorusPipelineInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 50; trial++ {
		topo := mesh.MustNew(8, 8, mesh.Torus2D)
		// Bias faults toward the seam to stress wraparound handling.
		faults := grid.NewPointSet()
		n := 2 + rng.Intn(8)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				faults.Add(grid.Pt(rng.Intn(2)*7, rng.Intn(8)))
			} else {
				faults.Add(grid.Pt(rng.Intn(8), rng.Intn(2)*7))
			}
		}
		unsafe, enabled := label(t, topo, faults, status.Def2b)
		blocks := FaultyBlocks(topo, faults, unsafe)
		for _, b := range blocks {
			flat, ok := UnwrapRegion(topo, b)
			if !ok {
				continue
			}
			if !flat.IsRectangle() {
				t.Fatalf("trial %d: torus block not a rectangle after unwrap: %v",
					trial, flat.Nodes.Points())
			}
		}
		regions := DisabledRegions(topo, faults, enabled, Conn8)
		for _, r := range regions {
			flat, ok := UnwrapRegion(topo, r)
			if !ok {
				continue
			}
			if err := CheckDisabledRegionInvariants([]*Region{flat}); err != nil {
				t.Fatalf("trial %d: %v (faults %v)", trial, err, faults.Points())
			}
		}
	}
}

// Quick check that the fault generators also work on tori end to end.
func TestTorusUniformPipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	topo := mesh.MustNew(10, 10, mesh.Torus2D)
	faults := fault.Uniform{Count: 12}.Generate(topo, rng)
	unsafe, enabled := label(t, topo, faults, status.Def2a)
	blocks := FaultyBlocks(topo, faults, unsafe)
	regions := DisabledRegions(topo, faults, enabled, Conn8)
	if err := CheckRegionsInsideBlocks(regions, blocks); err != nil {
		t.Fatal(err)
	}
}
