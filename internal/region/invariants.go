package region

import (
	"fmt"

	"ocpmesh/internal/geometry"
)

// CheckBlockInvariants verifies the paper's faulty-block structure:
// every block is a rectangle containing at least one fault, blocks are
// pairwise disjoint, and every pair sits at L1 distance >= minDist
// (3 under Definition 2a, 2 under Definition 2b).
func CheckBlockInvariants(blocks []*Region, minDist int) error {
	for i, b := range blocks {
		if b.Faults.Len() == 0 {
			return fmt.Errorf("block %d (%v) contains no fault", i, b)
		}
		if !b.IsRectangle() {
			return fmt.Errorf("block %d (%v) is not a rectangle", i, b)
		}
	}
	for i := 0; i < len(blocks); i++ {
		for j := i + 1; j < len(blocks); j++ {
			d := blocks[i].Bounds().Dist(blocks[j].Bounds())
			if d < minDist {
				return fmt.Errorf("blocks %d and %d at distance %d < %d", i, j, d, minDist)
			}
		}
	}
	return nil
}

// CheckDisabledRegionInvariants verifies the paper's theorems on one
// disabled-region decomposition:
//
//   - Theorem 1: every region is orthogonally convex (and connected under
//     the extraction connectivity).
//   - Lemma 1: every corner node (Definition 4) of a region is faulty.
//   - Theorem 2: when the rectilinear convex closure of the region's
//     faults is 4-connected, the region equals that closure (it is the
//     smallest orthogonal convex polygon covering its faults). When the
//     closure is disconnected (possible only with Conn8 grouping of
//     diagonal sub-regions), each 4-connected sub-region must still equal
//     the closure of its own faults.
func CheckDisabledRegionInvariants(regions []*Region) error {
	for i, r := range regions {
		if r.Faults.Len() == 0 {
			return fmt.Errorf("region %d (%v) contains no fault", i, r)
		}
		if !r.IsOrthogonallyConvex() {
			return fmt.Errorf("region %d (%v) is not orthogonally convex", i, r)
		}
		for _, c := range geometry.CornerNodes(r.Nodes) {
			if !r.Faults.Has(c) {
				return fmt.Errorf("region %d (%v): corner node %v is not faulty", i, r, c)
			}
		}
		closure := geometry.OrthogonalClosure(r.Faults)
		if geometry.IsConnected(closure) {
			if !closure.Equal(r.Nodes) {
				return fmt.Errorf("region %d (%v) differs from the closure of its faults (Theorem 2)", i, r)
			}
			continue
		}
		// Diagonal grouping: check each 4-connected piece separately.
		for _, sub := range geometry.Components(r.Nodes) {
			subFaults := sub.Clone().Intersect(r.Faults)
			subClosure := geometry.OrthogonalClosure(subFaults)
			if !subClosure.Equal(sub) {
				return fmt.Errorf("region %d (%v): sub-region %v differs from the closure of its faults",
					i, r, sub.Points())
			}
		}
	}
	return nil
}

// CheckRegionsInsideBlocks verifies that disabled nodes are a subset of
// unsafe nodes: every disabled region lies inside a faulty block, and the
// nonfaulty nodes captured by the regions of a block never exceed those of
// the block itself.
func CheckRegionsInsideBlocks(regions, blocks []*Region) error {
	owner, err := AssignToBlocks(regions, blocks)
	if err != nil {
		return err
	}
	perBlock := make([]int, len(blocks))
	faultsPerBlock := make([]int, len(blocks))
	for ri, r := range regions {
		perBlock[owner[ri]] += r.NonfaultyCount()
		faultsPerBlock[owner[ri]] += r.Faults.Len()
	}
	for bi, b := range blocks {
		if perBlock[bi] > b.NonfaultyCount() {
			return fmt.Errorf("block %d: regions capture %d nonfaulty nodes > block's %d",
				bi, perBlock[bi], b.NonfaultyCount())
		}
		if faultsPerBlock[bi] != b.Faults.Len() {
			return fmt.Errorf("block %d: regions cover %d faults, block has %d",
				bi, faultsPerBlock[bi], b.Faults.Len())
		}
	}
	return nil
}
