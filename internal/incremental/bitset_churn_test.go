package incremental_test

// Differential churn tests for the word-granularity delta path: a
// bitset-configured Field and a node-frontier Field driven through the
// same randomized Add/Remove script must report byte-identical deltas
// (frontier size, per-phase rounds and changed counts) and identical
// label state after every step — the incremental analogue of the
// simnet-level TestBitsetFrontierMatchesNode. Shapes pin the word
// boundary (widths 63/64/65), degenerate 1-wide/1-tall machines, and
// torus seams.

import (
	"math/rand"
	"testing"

	"ocpmesh/internal/grid"
	"ocpmesh/internal/incremental"
	"ocpmesh/internal/mesh"
	"ocpmesh/internal/simnet/simnettest"
	"ocpmesh/internal/status"
)

func TestBitsetChurnMatchesFromScratch(t *testing.T) {
	shapes := []struct {
		w, h int
		kind mesh.Kind
	}{
		{63, 5, mesh.Mesh2D},
		{64, 5, mesh.Mesh2D},
		{65, 5, mesh.Mesh2D},
		{1, 16, mesh.Mesh2D},
		{16, 1, mesh.Mesh2D},
		{63, 5, mesh.Torus2D},
		{64, 5, mesh.Torus2D},
		{65, 5, mesh.Torus2D},
	}
	rng := rand.New(rand.NewSource(1331))
	for si, s := range shapes {
		topo := mesh.MustNew(s.w, s.h, s.kind)
		cfg := incremental.Config{}
		if si%2 == 1 {
			cfg.Safety = status.Def2a
		}
		faults := simnettest.RandomFaultCount(rng, topo, 3+rng.Intn(5))

		nodeCfg := cfg
		bitCfg := cfg
		bitCfg.Bitset = true
		node, err := incremental.New(topo, faults, nodeCfg)
		if err != nil {
			t.Fatal(err)
		}
		bit, err := incremental.New(topo, faults, bitCfg)
		if err != nil {
			t.Fatal(err)
		}
		assertFieldsAgree(t, topo.String()+"/initial", bit, node)

		randPt := func() grid.Point {
			return grid.Pt(rng.Intn(topo.Width()), rng.Intn(topo.Height()))
		}
		var removed []grid.Point
		for step := 0; step < 12; step++ {
			var batch []grid.Point
			remove := false
			switch op := rng.Intn(3); {
			case op == 0: // add a fresh batch
				batch = make([]grid.Point, 1+rng.Intn(3))
				for i := range batch {
					batch[i] = randPt()
				}
			case op == 1 && node.Faults().Len() > 0: // remove existing faults
				pts := node.Faults().Points()
				batch = []grid.Point{pts[rng.Intn(len(pts))]}
				if len(pts) > 1 && rng.Intn(2) == 0 {
					batch = append(batch, pts[rng.Intn(len(pts))])
				}
				removed = append(removed, batch...)
				remove = true
			case op == 2 && len(removed) > 0: // re-add a removed fault
				batch = []grid.Point{removed[rng.Intn(len(removed))]}
			default:
				batch = []grid.Point{randPt()}
			}

			var (
				dn, db incremental.Delta
				en, eb error
			)
			if remove {
				dn, en = node.Remove(batch...)
				db, eb = bit.Remove(batch...)
			} else {
				dn, en = node.Add(batch...)
				db, eb = bit.Add(batch...)
			}
			if en != nil || eb != nil {
				t.Fatalf("%v step %d: node err %v, bitset err %v", topo, step, en, eb)
			}
			ctx := topo.String()
			if db != dn {
				t.Fatalf("%s step %d: deltas diverge:\nnode:   %+v\nbitset: %+v", ctx, step, dn, db)
			}
			assertFieldsAgree(t, ctx, bit, node)
		}
		// The shared reference: both fields must also match a from-scratch
		// formation on the final fault set, so an agreed-upon wrong answer
		// cannot pass.
		assertMatchesFromScratch(t, bit, topo.String()+"/bitset-final")
		assertMatchesFromScratch(t, node, topo.String()+"/node-final")
	}
}

// assertFieldsAgree pins two fields' externally visible state to each
// other: fault sets, both label planes, and region structure counts.
func assertFieldsAgree(t *testing.T, ctx string, got, want *incremental.Field) {
	t.Helper()
	if !got.Faults().Equal(want.Faults()) {
		t.Fatalf("%s: fault sets diverge", ctx)
	}
	for i := range want.Unsafe() {
		if got.Unsafe()[i] != want.Unsafe()[i] {
			t.Fatalf("%s: unsafe[%d] = %t, want %t", ctx, i, got.Unsafe()[i], want.Unsafe()[i])
		}
		if got.Enabled()[i] != want.Enabled()[i] {
			t.Fatalf("%s: enabled[%d] = %t, want %t", ctx, i, got.Enabled()[i], want.Enabled()[i])
		}
	}
	if len(got.Blocks()) != len(want.Blocks()) || len(got.Regions()) != len(want.Regions()) {
		t.Fatalf("%s: region structure diverges: %d/%d blocks, %d/%d regions",
			ctx, len(got.Blocks()), len(want.Blocks()), len(got.Regions()), len(want.Regions()))
	}
}

// TestBitsetChurnWorkers runs a short bitset churn script at a worker
// count exercising the pooled full-formation path plus the worker cap,
// pinned against from-scratch formations.
func TestBitsetChurnWorkers(t *testing.T) {
	topo := mesh.MustNew(65, 6, mesh.Mesh2D)
	f, err := incremental.New(topo, grid.PointSetOf(grid.Pt(10, 2), grid.Pt(40, 3)),
		incremental.Config{Bitset: true, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	assertMatchesFromScratch(t, f, "initial")
	for _, p := range []grid.Point{grid.Pt(11, 2), grid.Pt(64, 0), grid.Pt(0, 5)} {
		if _, err := f.Add(p); err != nil {
			t.Fatal(err)
		}
		assertMatchesFromScratch(t, f, "add")
	}
	if _, err := f.Remove(grid.Pt(11, 2)); err != nil {
		t.Fatal(err)
	}
	assertMatchesFromScratch(t, f, "remove")
}
