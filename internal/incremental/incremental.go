// Package incremental maintains the paper's two-phase formation result
// under fault churn: instead of recomputing both fixpoints over the
// whole mesh on every change, a Field applies fault deltas by seeding a
// dirty frontier from the changed nodes and re-iterating only over the
// frontier's closure (simnet.RunFrontierGeneric), then relabels only the
// touched faulty blocks and disabled regions (region.UpdateRegions).
//
// Correctness rests on two properties the repository's tests pin:
//
//   - Both status rules are monotone, so any chaotic iteration from a
//     state at or below the fixpoint reaches the same least fixpoint the
//     synchronous engines compute — adding faults is pure frontier
//     propagation from the new faults' neighborhoods.
//   - Both fixpoints decompose per faulty block: every unsafe node is
//     derivable from the faults of its own block, and every
//     enabled/disabled label depends only on its block's footprint
//     (blocks sit at pairwise distance >= 2, so no derivation crosses
//     between them). Removing faults therefore only requires resetting
//     the affected blocks' footprints to their initial labels and
//     re-iterating inside them.
//
// The resulting label fields, faulty blocks and disabled regions are
// bit-for-bit identical to a from-scratch formation on the current fault
// set (TestChurnMatchesFromScratch), at a cost proportional to the
// perturbation instead of the mesh (BenchmarkChurn).
package incremental

import (
	"fmt"
	"runtime"

	"ocpmesh/internal/grid"
	"ocpmesh/internal/mesh"
	"ocpmesh/internal/obs"
	"ocpmesh/internal/obs/costs"
	"ocpmesh/internal/region"
	"ocpmesh/internal/simnet"
	"ocpmesh/internal/status"
)

// Config parameterizes a Field. The zero value matches core.Config
// defaults: Definition 2b, 8-connected region grouping.
type Config struct {
	// Safety selects the phase-1 definition.
	Safety status.SafetyDef
	// Connectivity selects the disabled-region grouping.
	Connectivity region.Connectivity
	// MaxRounds bounds each fixpoint (0 = automatic safe bound).
	MaxRounds int
	// Workers, when above one, runs the initial full formation on the
	// tiled parallel engine and fans each frontier wave of a delta out
	// over that many goroutines (simnet.RunParallelFrontierGeneric).
	// Results are bit-for-bit identical at any worker count; 0 or 1 keeps
	// everything sequential.
	Workers int
	// Bitset runs the initial full formation on the bit-packed
	// word-parallel engine (simnet.RunBitsetGeneric) with Workers row
	// bands, and routes every delta through the word-granularity frontier
	// (simnet.RunBitsetFrontier) over persistent packed label planes kept
	// in sync with the []bool fields — the whole churn path advances 64
	// lanes per kernel call. Results are bit-for-bit identical.
	Bitset bool
	// Recorder, when non-nil, traces the field: per-round events during
	// (re)computation and one obs.EDelta event per applied delta, plus
	// incremental_* metrics. Nil disables observability at no cost.
	Recorder *obs.Recorder
	// Costs, when non-nil, accumulates the initial formation's and every
	// delta's distributed costs (rounds, messages, label flips, frontier
	// sizes, deltas) into the convergence observatory's counter fabric
	// and arms the frontier-shrinkage monitor. Independent of Recorder;
	// nil disables it at no cost.
	Costs *costs.Fabric
	// Strict turns a frontier-shrinkage violation (a node flipping twice
	// during a delta, which a monotone rule forbids) into an error from
	// Add/Remove instead of only an invariant_violation event. Requires
	// Costs.
	Strict bool
}

// Delta summarizes one applied fault delta.
type Delta struct {
	// Op is "add" or "remove".
	Op string
	// Points is the number of faults actually added or removed (inputs
	// already in / absent from the fault set are skipped).
	Points int
	// Frontier is the size of the dirty frontier the delta seeded: the
	// nodes whose inputs changed and had to be recomputed first.
	Frontier int
	// ChangedPhase1 and ChangedPhase2 count the nodes whose unsafe and
	// enabled labels settled differently than before the delta.
	ChangedPhase1, ChangedPhase2 int
	// RoundsPhase1 and RoundsPhase2 count the frontier rounds each phase
	// needed to restabilize — the incremental analogue of the paper's
	// Figure 5(a)/(b) cost metric.
	RoundsPhase1, RoundsPhase2 int
}

// Rounds returns the total rounds across both phases.
func (d Delta) Rounds() int { return d.RoundsPhase1 + d.RoundsPhase2 }

// Field holds a formation result kept current under fault churn.
type Field struct {
	cfg    Config
	topo   *mesh.Topology
	faults *grid.PointSet

	unsafe  []bool
	enabled []bool
	blocks  []*region.Region
	regions []*region.Region

	// Packed mirrors of unsafe/enabled plus per-lane liveness, kept in
	// O(delta) sync with the []bool fields when cfg.Bitset is set; deltas
	// then run the word-granularity frontier over them. Nil otherwise.
	ubits, ebits *simnet.BitField

	// pool is the worker pool the full formation runs fan out over; nil
	// when the configuration runs single-tile. Released by Close.
	pool *simnet.WorkerPool

	// rounds of the initial full formation (reported by Session.Result
	// until the first delta).
	rounds1, rounds2 int

	// Per-delta scratch reused across Add/Remove calls (a Field is
	// single-threaded): the affected-area walk and the before-labels it
	// is paired with, plus the frontier seed list.
	areaPts    []grid.Point
	areaBefore []bool
	seed       []int
}

// New computes a full formation on topo for the given fault set and
// returns the field tracking it. faults is cloned, not retained.
func New(topo *mesh.Topology, faults *grid.PointSet, cfg Config) (*Field, error) {
	if faults == nil {
		faults = grid.NewPointSet()
	}
	env, err := simnet.NewEnv(topo, faults.Clone(), nil)
	if err != nil {
		return nil, err
	}
	f := &Field{cfg: cfg, topo: topo, faults: env.Faulty}
	if workers := poolWorkers(cfg, topo.Height()); workers > 1 {
		f.pool = simnet.NewWorkerPool(workers)
	}
	p1, err := f.runFull(env, status.UnsafeRule(cfg.Safety), "phase1")
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("incremental: phase 1: %w", err)
	}
	env2, err := simnet.NewEnv(topo, f.faults, p1.Labels)
	if err != nil {
		f.Close()
		return nil, err
	}
	p2, err := f.runFull(env2, status.EnabledRule(), "phase2")
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("incremental: phase 2: %w", err)
	}
	f.unsafe, f.enabled = p1.Labels, p2.Labels
	f.rounds1, f.rounds2 = p1.Rounds, p2.Rounds
	f.blocks = region.FaultyBlocks(topo, f.faults, f.unsafe)
	f.regions = region.DisabledRegions(topo, f.faults, f.enabled, cfg.Connectivity)
	if cfg.Bitset {
		if f.ubits, err = simnet.NewBitField(env, f.unsafe); err != nil {
			f.Close()
			return nil, err
		}
		if f.ebits, err = simnet.NewBitField(env2, f.enabled); err != nil {
			f.Close()
			return nil, err
		}
	}
	return f, nil
}

// Load returns a Field wrapped around an already-computed fixpoint:
// the label vectors of a finished formation (a Session snapshot, a
// serialized tenant) are adopted as-is instead of re-running both
// fixpoints, so restoring a large session costs one O(n) validation and
// region extraction rather than a full formation. The labels must be
// the fixpoint of a formation on exactly the given fault set; Load
// rejects label vectors that violate the cheap structural invariants
// (faulty nodes must be unsafe and disabled, safe nodes enabled), and
// the serving differential tests pin the rest byte-for-byte. faults and
// both label slices are cloned, not retained. The initial round counts
// are unknown to a restored field and report as zero.
func Load(topo *mesh.Topology, faults *grid.PointSet, cfg Config, unsafe, enabled []bool) (*Field, error) {
	if faults == nil {
		faults = grid.NewPointSet()
	}
	if len(unsafe) != topo.Size() || len(enabled) != topo.Size() {
		return nil, fmt.Errorf("incremental: load: label lengths %d/%d, want %d", len(unsafe), len(enabled), topo.Size())
	}
	env, err := simnet.NewEnv(topo, faults.Clone(), nil)
	if err != nil {
		return nil, err
	}
	for i := 0; i < topo.Size(); i++ {
		p := topo.PointAt(i)
		switch {
		case env.Faulty.Has(p) && (!unsafe[i] || enabled[i]):
			return nil, fmt.Errorf("incremental: load: faulty node %v must be unsafe and disabled", p)
		case !unsafe[i] && !enabled[i]:
			return nil, fmt.Errorf("incremental: load: safe node %v must be enabled", p)
		}
	}
	f := &Field{cfg: cfg, topo: topo, faults: env.Faulty}
	if workers := poolWorkers(cfg, topo.Height()); workers > 1 {
		f.pool = simnet.NewWorkerPool(workers)
	}
	f.unsafe = append([]bool(nil), unsafe...)
	f.enabled = append([]bool(nil), enabled...)
	f.blocks = region.FaultyBlocks(topo, f.faults, f.unsafe)
	f.regions = region.DisabledRegions(topo, f.faults, f.enabled, cfg.Connectivity)
	if cfg.Bitset {
		if f.ubits, err = simnet.NewBitField(env, f.unsafe); err != nil {
			f.Close()
			return nil, err
		}
		env2, err := simnet.NewEnv(topo, f.faults, f.unsafe)
		if err != nil {
			f.Close()
			return nil, err
		}
		if f.ebits, err = simnet.NewBitField(env2, f.enabled); err != nil {
			f.Close()
			return nil, err
		}
	}
	return f, nil
}

// poolWorkers sizes the field's shared worker pool: the configured
// count (0 = GOMAXPROCS) capped at the tile limit (one row band per
// tile). Single-tile configurations and the sequential engine need no
// pool.
func poolWorkers(cfg Config, height int) int {
	if !cfg.Bitset && cfg.Workers <= 1 {
		return 1
	}
	w := cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > height {
		w = height
	}
	return w
}

// Close releases the field's worker pool. Safe on a nil pool and after
// an error from New.
func (f *Field) Close() {
	if f.pool != nil {
		f.pool.Close()
		f.pool = nil
	}
}

func (f *Field) genericOpts(phase string, pc *costs.Phase) simnet.GenericOptions[bool] {
	return simnet.GenericOptions[bool]{MaxRounds: f.cfg.MaxRounds, Recorder: f.cfg.Recorder, Phase: phase, Costs: pc, Pool: f.pool}
}

// newPhase returns the per-phase cost collector (nil without a fabric).
// Delta collectors carry no per-node tracker — the frontier engine does
// its shrinkage check on the sorted change list — so they stay
// allocation-light on the churn hot path.
func (f *Field) newPhase(phase string) *costs.Phase {
	return costs.NewPhase(f.cfg.Costs, phase, 0)
}

// runFull computes one full synchronous fixpoint: on the bitset engine
// when configured, else on the tiled parallel engine when the field has
// more than one worker, else sequentially.
func (f *Field) runFull(env *simnet.Env, rule simnet.Rule, phase string) (*simnet.GenericResult[bool], error) {
	pc := f.newPhase(phase)
	opt := f.genericOpts(phase, pc)
	var (
		res *simnet.GenericResult[bool]
		err error
	)
	switch {
	case f.cfg.Bitset:
		res, err = simnet.RunBitsetGeneric(env, rule, opt, f.cfg.Workers)
	case f.cfg.Workers > 1:
		res, err = simnet.RunParallelGeneric[bool](env, rule, opt, f.cfg.Workers)
	default:
		res, err = simnet.RunSequentialGeneric[bool](env, rule, opt)
	}
	if err != nil {
		return nil, err
	}
	pc.Finish()
	return res, nil
}

// runFrontier restabilizes labels from the given seed: over the packed
// word-granularity engine when bits is non-nil (the []bool mirror is
// re-synced from the changed set afterwards, keeping both views
// identical in O(changed)), else over the node-granularity engine,
// fanning waves out over the configured worker count.
func (f *Field) runFrontier(env *simnet.Env, rule simnet.Rule, labels []bool, bits *simnet.BitField, seed []int, phase string) (*simnet.FrontierResult, error) {
	pc := f.newPhase(phase)
	opt := f.genericOpts(phase, pc)
	var (
		res *simnet.FrontierResult
		err error
	)
	switch {
	case bits != nil:
		res, err = simnet.RunBitsetFrontier(env, rule, bits, seed, opt)
	case f.cfg.Workers > 1:
		res, err = simnet.RunParallelFrontierGeneric[bool](env, rule, labels, seed, opt, f.cfg.Workers)
	default:
		res, err = simnet.RunFrontierGeneric[bool](env, rule, labels, seed, opt)
	}
	if err != nil {
		return nil, err
	}
	if bits != nil {
		for _, i := range res.Changed {
			labels[i] = bits.Label(i)
		}
	}
	pc.Finish()
	if f.cfg.Strict && pc.Violations() > 0 {
		return nil, fmt.Errorf("incremental: %d frontier_shrink invariant violation(s) in %s", pc.Violations(), phase)
	}
	return res, nil
}

// setUnsafe / setEnabled write one label to the []bool field and, when
// the bitset churn path is active, its packed mirror (which also lands
// the word in the mirror's dirty set for the next run's worklist).
func (f *Field) setUnsafe(i int, v bool) {
	f.unsafe[i] = v
	if f.ubits != nil {
		f.ubits.SetLabel(i, v)
	}
}

func (f *Field) setEnabled(i int, v bool) {
	f.enabled[i] = v
	if f.ebits != nil {
		f.ebits.SetLabel(i, v)
	}
}

// setFault flips node i's liveness in both packed mirrors (faulty lanes
// are pinned at their current label). No-op on the node path.
func (f *Field) setFault(i int, faulty bool) {
	if f.ubits != nil {
		f.ubits.SetLive(i, !faulty)
		f.ebits.SetLive(i, !faulty)
	}
}

// Topo returns the machine.
func (f *Field) Topo() *mesh.Topology { return f.topo }

// Config returns the field's configuration.
func (f *Field) Config() Config { return f.cfg }

// Faults returns the current fault set. The caller must not mutate it.
func (f *Field) Faults() *grid.PointSet { return f.faults }

// Unsafe returns the current phase-1 label field. Read-only.
func (f *Field) Unsafe() []bool { return f.unsafe }

// Enabled returns the current phase-2 label field. Read-only.
func (f *Field) Enabled() []bool { return f.enabled }

// Blocks returns the current faulty blocks in canonical order. Read-only.
func (f *Field) Blocks() []*region.Region { return f.blocks }

// Regions returns the current disabled regions in canonical order.
// Read-only.
func (f *Field) Regions() []*region.Region { return f.regions }

// InitialRounds returns the round counts of the initial full formation.
func (f *Field) InitialRounds() (phase1, phase2 int) { return f.rounds1, f.rounds2 }

// Add marks the given nodes faulty and restabilizes both label fields by
// frontier propagation: new faults become unsafe immediately and the
// unsafe closure grows monotonically outward from their neighborhoods,
// after which the affected blocks' enabled labels are recomputed
// locally. Points already faulty are skipped; points outside the machine
// are an error, reported before anything is mutated.
func (f *Field) Add(ps ...grid.Point) (Delta, error) {
	var added []grid.Point
	for _, p := range ps {
		if !f.topo.Contains(p) {
			return Delta{}, fmt.Errorf("incremental: fault %v outside %v", p, f.topo)
		}
		if !f.faults.Has(p) {
			added = append(added, p)
		}
	}
	d := Delta{Op: "add", Points: len(added)}
	if len(added) == 0 {
		return d, nil
	}
	start := f.startDelta()

	for _, p := range added {
		f.faults.Add(p)
	}
	env := &simnet.Env{Topo: f.topo, Faulty: f.faults}

	// Phase 1: pin the new faults unsafe and propagate from their
	// neighborhoods. Existing labels are the old fixpoint, which sits at
	// or below the new one (the rule is monotone in the fault set).
	touched1 := grid.NewPointSet()
	seed := f.seed[:0]
	for _, p := range added {
		touched1.Add(p)
		i := f.topo.Index(p)
		if !f.unsafe[i] {
			f.setUnsafe(i, true)
			d.ChangedPhase1++
		}
		f.setFault(i, true)
		for _, q := range f.topo.Neighbors(p) {
			if !f.faults.Has(q) {
				seed = append(seed, f.topo.Index(q))
			}
		}
	}
	f.seed = seed
	d.Frontier = len(seed)
	fr1, err := f.runFrontier(env, status.UnsafeRule(f.cfg.Safety), f.unsafe, f.ubits, seed, "phase1")
	if err != nil {
		return Delta{}, fmt.Errorf("incremental: phase 1: %w", err)
	}
	d.RoundsPhase1 = fr1.Rounds
	d.ChangedPhase1 += len(fr1.Changed)
	for _, i := range fr1.Changed {
		touched1.Add(f.topo.PointAt(i))
	}

	// Phase 2: every enabled label the delta can affect lies in the
	// footprints of the blocks the touched nodes now belong to. Reset
	// those footprints to their initial labels (all footprint nodes are
	// unsafe, hence initially disabled) and re-derive locally; the
	// surrounding safe nodes are enabled and never change.
	area := f.unsafeArea(touched1)
	d.ChangedPhase2, d.RoundsPhase2, err = f.recomputeEnabled(area)
	if err != nil {
		return Delta{}, err
	}

	f.blocks = region.UpdateRegions(f.topo, f.faults, f.unsafe, true, region.Conn4, f.blocks, touched1)
	f.regions = region.UpdateRegions(f.topo, f.faults, f.enabled, false, f.cfg.Connectivity, f.regions, area)
	f.observe(d, start)
	return d, nil
}

// Remove clears the given faults and restabilizes both label fields by
// resetting the affected blocks' footprints to their initial labels and
// re-iterating inside them (the closure of the remaining faults can
// never escape the old footprint, and unaffected blocks depend only on
// their own faults). Points not currently faulty are skipped; points
// outside the machine are an error, reported before anything is mutated.
func (f *Field) Remove(ps ...grid.Point) (Delta, error) {
	var removed []grid.Point
	for _, p := range ps {
		if !f.topo.Contains(p) {
			return Delta{}, fmt.Errorf("incremental: fault %v outside %v", p, f.topo)
		}
		if f.faults.Has(p) {
			removed = append(removed, p)
		}
	}
	d := Delta{Op: "remove", Points: len(removed)}
	if len(removed) == 0 {
		return d, nil
	}
	start := f.startDelta()

	// The affected area: the full footprints of the blocks the removed
	// faults belong to, computed on the labels before the removal.
	area := f.unsafeArea(grid.PointSetOf(removed...))
	for _, p := range removed {
		f.faults.Remove(p)
		f.setFault(f.topo.Index(p), false)
	}
	env := &simnet.Env{Topo: f.topo, Faulty: f.faults}

	// Phase 1: reset the footprints to their initial labels (remaining
	// faults unsafe, everything else safe) and recompute the closure of
	// the remaining faults inside.
	seed := f.seed[:0]
	area.Each(func(p grid.Point) {
		i := f.topo.Index(p)
		now := f.faults.Has(p)
		if f.unsafe[i] != now {
			f.setUnsafe(i, now)
			d.ChangedPhase1++ // provisional; corrected after the fixpoint below
		}
		if !now {
			seed = append(seed, i)
		}
	})
	f.seed = seed
	d.Frontier = len(seed)
	fr1, err := f.runFrontier(env, status.UnsafeRule(f.cfg.Safety), f.unsafe, f.ubits, seed, "phase1")
	if err != nil {
		return Delta{}, fmt.Errorf("incremental: phase 1: %w", err)
	}
	d.RoundsPhase1 = fr1.Rounds
	// Nodes re-derived unsafe by the fixpoint were reset for nothing:
	// they end where they started, so they are not net changes.
	d.ChangedPhase1 -= len(fr1.Changed)

	d.ChangedPhase2, d.RoundsPhase2, err = f.recomputeEnabled(area)
	if err != nil {
		return Delta{}, err
	}

	f.blocks = region.UpdateRegions(f.topo, f.faults, f.unsafe, true, region.Conn4, f.blocks, area)
	f.regions = region.UpdateRegions(f.topo, f.faults, f.enabled, false, f.cfg.Connectivity, f.regions, area)
	f.observe(d, start)
	return d, nil
}

// unsafeArea returns the union of the footprints of the unsafe
// components (faulty blocks) the touched nodes belong to — every node
// whose phase-2 label the delta could possibly affect, plus the touched
// nodes themselves (some of which may have just turned safe).
func (f *Field) unsafeArea(touched *grid.PointSet) *grid.PointSet {
	area := grid.NewPointSet()
	var queue, nbrs []grid.Point
	for _, p := range touched.Points() {
		if area.Add(p) && f.unsafe[f.topo.Index(p)] {
			queue = append(queue, p)
		}
	}
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		nbrs = f.topo.AppendNeighbors(p, nbrs[:0])
		for _, q := range nbrs {
			if f.unsafe[f.topo.Index(q)] && area.Add(q) {
				queue = append(queue, q)
			}
		}
	}
	return area
}

// recomputeEnabled resets the enabled labels of the given area to their
// initial values (enabled iff safe) and re-derives the phase-2 fixpoint
// inside it. It returns the number of labels that settled differently
// than before the reset and the frontier rounds used.
func (f *Field) recomputeEnabled(area *grid.PointSet) (changed, rounds int, err error) {
	// The frontier engines canonicalize wave order internally, so the
	// unordered area walk is fine; pts and before pair up by position.
	pts := f.areaPts[:0]
	before := f.areaBefore[:0]
	seed := f.seed[:0]
	area.Each(func(p grid.Point) {
		i := f.topo.Index(p)
		pts = append(pts, p)
		before = append(before, f.enabled[i])
		f.setEnabled(i, !f.unsafe[i]) // init: safe => enabled (faulty nodes are unsafe)
		if !f.faults.Has(p) {
			seed = append(seed, i)
		}
	})
	f.areaPts, f.areaBefore, f.seed = pts, before, seed
	env := &simnet.Env{Topo: f.topo, Faulty: f.faults, Aux: f.unsafe}
	fr, err := f.runFrontier(env, status.EnabledRule(), f.enabled, f.ebits, seed, "phase2")
	if err != nil {
		return 0, 0, fmt.Errorf("incremental: phase 2: %w", err)
	}
	for k, p := range pts {
		if f.enabled[f.topo.Index(p)] != before[k] {
			changed++
		}
	}
	return changed, fr.Rounds, nil
}

func (f *Field) startDelta() obs.Span {
	return f.cfg.Recorder.StartSpan("incremental_delta")
}

// observe emits the per-delta trace event and metrics. Nil-safe.
func (f *Field) observe(d Delta, span obs.Span) {
	f.cfg.Costs.Add(0, costs.KindDeltas, 1)
	rec := f.cfg.Recorder
	if rec == nil {
		return
	}
	dur := span.End()
	rec.Emit(obs.Event{
		Type: obs.EDelta, Name: d.Op, N: d.Points, Frontier: d.Frontier,
		Rounds: d.Rounds(), Changed: d.ChangedPhase1 + d.ChangedPhase2,
		DurNS: dur.Nanoseconds(),
	})
	rec.Counter("incremental_deltas").Inc()
	rec.Histogram("incremental_frontier", nil).Observe(float64(d.Frontier))
	rec.Histogram("incremental_delta_rounds", nil).Observe(float64(d.Rounds()))
}
