package incremental_test

import (
	"math/rand"
	"testing"

	"ocpmesh/internal/core"
	"ocpmesh/internal/grid"
	"ocpmesh/internal/incremental"
	"ocpmesh/internal/mesh"
	"ocpmesh/internal/obs"
	"ocpmesh/internal/region"
	"ocpmesh/internal/simnet/simnettest"
	"ocpmesh/internal/status"
)

// assertMatchesFromScratch checks every externally visible piece of the
// field against a from-scratch formation on the same fault set — bit for
// bit, the equivalence guarantee the package documents.
func assertMatchesFromScratch(t *testing.T, f *incremental.Field, ctx string) {
	t.Helper()
	cfg := core.Config{
		Width: f.Topo().Width(), Height: f.Topo().Height(),
		Safety: f.Config().Safety, Connectivity: f.Config().Connectivity,
	}
	want, err := core.FormOn(cfg, f.Topo(), f.Faults().Clone())
	if err != nil {
		t.Fatalf("%s: from-scratch formation: %v", ctx, err)
	}
	if !f.Faults().Equal(want.Faults) {
		t.Fatalf("%s: fault sets differ: %v vs %v", ctx, f.Faults(), want.Faults)
	}
	for i := range want.Unsafe {
		if f.Unsafe()[i] != want.Unsafe[i] {
			t.Fatalf("%s: unsafe[%d] = %t, want %t", ctx, i, f.Unsafe()[i], want.Unsafe[i])
		}
	}
	for i := range want.Enabled {
		if f.Enabled()[i] != want.Enabled[i] {
			t.Fatalf("%s: enabled[%d] = %t, want %t", ctx, i, f.Enabled()[i], want.Enabled[i])
		}
	}
	assertRegionsEqual(t, ctx, "blocks", f.Blocks(), want.Blocks)
	assertRegionsEqual(t, ctx, "regions", f.Regions(), want.Regions)
}

func assertRegionsEqual(t *testing.T, ctx, kind string, got, want []*region.Region) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d %s, want %d", ctx, len(got), kind, len(want))
	}
	for i := range want {
		if !got[i].Nodes.Equal(want[i].Nodes) {
			t.Fatalf("%s: %s[%d] nodes = %v, want %v", ctx, kind, i, got[i], want[i])
		}
		if !got[i].Faults.Equal(want[i].Faults) {
			t.Fatalf("%s: %s[%d] faults differ: %v vs %v", ctx, kind, i, got[i], want[i])
		}
	}
}

// TestChurnMatchesFromScratch drives randomized churn scripts — batches
// of fault additions, removals, and re-additions of previously removed
// faults — through a Field and checks bit-for-bit equality with a
// from-scratch core.FormOn after every single delta.
func TestChurnMatchesFromScratch(t *testing.T) {
	configs := []incremental.Config{
		{},
		{Safety: status.Def2a},
		{Connectivity: region.Conn4},
		{Safety: status.Def2a, Connectivity: region.Conn4},
	}
	rng := rand.New(rand.NewSource(97))
	for trial := 0; trial < 12; trial++ {
		cfg := configs[trial%len(configs)]
		topo := simnettest.RandomTopology(rng, 8, 16, 0.5)
		randPt := func() grid.Point {
			return grid.Pt(rng.Intn(topo.Width()), rng.Intn(topo.Height()))
		}

		faults := simnettest.RandomFaultCount(rng, topo, 4+rng.Intn(8))
		f, err := incremental.New(topo, faults, cfg)
		if err != nil {
			t.Fatal(err)
		}
		assertMatchesFromScratch(t, f, "initial")

		var removed []grid.Point
		for step := 0; step < 14; step++ {
			var (
				d   incremental.Delta
				err error
			)
			switch op := rng.Intn(3); {
			case op == 0: // add a fresh batch
				batch := make([]grid.Point, 1+rng.Intn(3))
				for i := range batch {
					batch[i] = randPt()
				}
				d, err = f.Add(batch...)
			case op == 1 && f.Faults().Len() > 0: // remove existing faults
				pts := f.Faults().Points()
				batch := []grid.Point{pts[rng.Intn(len(pts))]}
				if len(pts) > 1 && rng.Intn(2) == 0 {
					batch = append(batch, pts[rng.Intn(len(pts))])
				}
				removed = append(removed, batch...)
				d, err = f.Remove(batch...)
			case op == 2 && len(removed) > 0: // re-add a removed fault
				d, err = f.Add(removed[rng.Intn(len(removed))])
			default:
				d, err = f.Add(randPt())
			}
			if err != nil {
				t.Fatalf("trial %d step %d: %v", trial, step, err)
			}
			if d.Rounds() < 0 || d.Frontier < 0 {
				t.Fatalf("trial %d step %d: nonsense delta %+v", trial, step, d)
			}
			assertMatchesFromScratch(t, f, "churn")
		}
	}
}

// TestTorusSeamRemoval exercises removal (and re-addition) of faults
// whose blocks straddle the torus wrap-around seams — the corner block
// spanning both seams at once, and edge blocks spanning exactly one.
// Wrap-around is where the dirty-frontier closure is easiest to get
// wrong (the frontier must follow torus neighbors, not flat
// coordinates), so every delta is pinned against a from-scratch
// formation.
func TestTorusSeamRemoval(t *testing.T) {
	topo := mesh.MustNew(9, 9, mesh.Torus2D)
	groups := map[string][]grid.Point{
		// A 2x2 block straddling both seams: the four machine corners are
		// pairwise torus-adjacent.
		"both-seams": {grid.Pt(8, 8), grid.Pt(0, 0), grid.Pt(8, 0), grid.Pt(0, 8)},
		// A 2x2 block straddling only the vertical seam.
		"x-seam": {grid.Pt(8, 4), grid.Pt(0, 4), grid.Pt(8, 5), grid.Pt(0, 5)},
		// A 2x2 block straddling only the horizontal seam.
		"y-seam": {grid.Pt(4, 8), grid.Pt(4, 0), grid.Pt(5, 8), grid.Pt(5, 0)},
	}
	configs := []incremental.Config{
		{},
		{Safety: status.Def2a},
		{Connectivity: region.Conn4},
		{Workers: 3},
	}
	for name, pts := range groups {
		for ci, cfg := range configs {
			f, err := incremental.New(topo, grid.PointSetOf(pts...), cfg)
			if err != nil {
				t.Fatalf("%s cfg%d: %v", name, ci, err)
			}
			assertMatchesFromScratch(t, f, name+": initial")

			// Peel the block off one fault at a time, across the seam.
			for _, p := range pts {
				if _, err := f.Remove(p); err != nil {
					t.Fatalf("%s cfg%d: remove %v: %v", name, ci, p, err)
				}
				assertMatchesFromScratch(t, f, name+": after removal")
			}
			if f.Faults().Len() != 0 {
				t.Fatalf("%s cfg%d: faults remain after full removal", name, ci)
			}

			// Rebuild the straddling block in reverse order, then tear it
			// down in one batch.
			for i := len(pts) - 1; i >= 0; i-- {
				if _, err := f.Add(pts[i]); err != nil {
					t.Fatalf("%s cfg%d: re-add %v: %v", name, ci, pts[i], err)
				}
				assertMatchesFromScratch(t, f, name+": after re-add")
			}
			if _, err := f.Remove(pts...); err != nil {
				t.Fatalf("%s cfg%d: batch remove: %v", name, ci, err)
			}
			assertMatchesFromScratch(t, f, name+": after batch removal")
		}
	}
}

// TestAddRemoveIdempotence checks that adding faults and removing the
// same faults restores the exact previous state, including the region
// lists' canonical order.
func TestAddRemoveIdempotence(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 10; trial++ {
		topo := mesh.MustNew(10, 10, mesh.Mesh2D)
		faults := grid.NewPointSet()
		for i := 0; i < 6; i++ {
			faults.Add(grid.Pt(rng.Intn(10), rng.Intn(10)))
		}
		f, err := incremental.New(topo, faults, incremental.Config{})
		if err != nil {
			t.Fatal(err)
		}
		beforeFaults := f.Faults().Clone()
		beforeUnsafe := append([]bool(nil), f.Unsafe()...)
		beforeEnabled := append([]bool(nil), f.Enabled()...)
		beforeBlocks := append([]*region.Region(nil), f.Blocks()...)
		beforeRegions := append([]*region.Region(nil), f.Regions()...)

		var batch []grid.Point
		for len(batch) < 3 {
			p := grid.Pt(rng.Intn(10), rng.Intn(10))
			if !f.Faults().Has(p) {
				batch = append(batch, p)
			}
		}
		if _, err := f.Add(batch...); err != nil {
			t.Fatal(err)
		}
		if _, err := f.Remove(batch...); err != nil {
			t.Fatal(err)
		}

		if !f.Faults().Equal(beforeFaults) {
			t.Fatalf("trial %d: fault set not restored", trial)
		}
		for i := range beforeUnsafe {
			if f.Unsafe()[i] != beforeUnsafe[i] || f.Enabled()[i] != beforeEnabled[i] {
				t.Fatalf("trial %d: label %d not restored", trial, i)
			}
		}
		assertRegionsEqual(t, "idempotence", "blocks", f.Blocks(), beforeBlocks)
		assertRegionsEqual(t, "idempotence", "regions", f.Regions(), beforeRegions)
	}
}

// TestDeltaEdgeCases covers validation and no-op deltas.
func TestDeltaEdgeCases(t *testing.T) {
	topo := mesh.MustNew(6, 6, mesh.Mesh2D)
	f, err := incremental.New(topo, grid.PointSetOf(grid.Pt(2, 2)), incremental.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Add(grid.Pt(-1, 0)); err == nil {
		t.Fatal("adding an out-of-machine fault must fail")
	}
	if _, err := f.Remove(grid.Pt(9, 9)); err == nil {
		t.Fatal("removing an out-of-machine fault must fail")
	}
	d, err := f.Add(grid.Pt(2, 2)) // already faulty
	if err != nil || d.Points != 0 || d.Rounds() != 0 {
		t.Fatalf("duplicate add: d=%+v err=%v", d, err)
	}
	d, err = f.Remove(grid.Pt(0, 0)) // not faulty
	if err != nil || d.Points != 0 {
		t.Fatalf("vacuous remove: d=%+v err=%v", d, err)
	}
	assertMatchesFromScratch(t, f, "after no-ops")
}

// TestDeltaObservability checks the per-delta trace event and metrics.
func TestDeltaObservability(t *testing.T) {
	sink := &obs.CollectSink{}
	reg := obs.NewRegistry()
	rec := obs.NewRecorder(obs.NewTracer(sink), reg)
	topo := mesh.MustNew(12, 12, mesh.Mesh2D)
	f, err := incremental.New(topo, grid.PointSetOf(grid.Pt(4, 4)), incremental.Config{Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	d, err := f.Add(grid.Pt(5, 4), grid.Pt(4, 5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Remove(grid.Pt(4, 4)); err != nil {
		t.Fatal(err)
	}
	deltas := sink.Filter(obs.EDelta)
	if len(deltas) != 2 {
		t.Fatalf("got %d delta events, want 2", len(deltas))
	}
	add, rem := deltas[0], deltas[1]
	if add.Name != "add" || add.N != 2 || add.Frontier != d.Frontier || add.Rounds != d.Rounds() {
		t.Fatalf("bad add event: %+v (delta %+v)", add, d)
	}
	if rem.Name != "remove" || rem.N != 1 || rem.Frontier == 0 {
		t.Fatalf("bad remove event: %+v", rem)
	}
	if got := reg.Counter("incremental_deltas").Value(); got != 2 {
		t.Fatalf("incremental_deltas = %d, want 2", got)
	}
}
