package safety

import (
	"fmt"

	"ocpmesh/internal/grid"
	"ocpmesh/internal/mesh"
	"ocpmesh/internal/routing"
)

// Router is minimal adaptive routing guided by the safety field, the
// routing style of [9]: every hop is productive (the path is exactly
// minimal), and among the productive directions the router prefers one
// whose safety distance covers the remaining offset in that dimension —
// a guaranteed-clear straight run — falling back to the direction with
// the largest safety distance.
type Router struct {
	Field *Field
}

// Name implements routing.Router.
func (Router) Name() string { return "safety-minimal" }

// Route implements routing.Router.
func (r Router) Route(g *routing.Graph, src, dst grid.Point) (routing.Path, error) {
	if r.Field == nil {
		return nil, fmt.Errorf("safety: router has no field")
	}
	if !g.Allowed(src) || !g.Allowed(dst) {
		return nil, fmt.Errorf("safety: endpoint not allowed")
	}
	topo := r.Field.topo
	path := routing.Path{src}
	cur := src
	for cur != dst {
		type cand struct {
			next      grid.Point
			lookahead bool // next node keeps a productive option open
			clear     bool // safety distance covers the remaining offset
			rem       int  // remaining offset in this dimension
		}
		var cands []cand
		v := r.Field.At(cur)
		for _, pd := range productive(topo, cur, dst) {
			q, ok := topo.NeighborIn(cur, pd.dir)
			if !ok || !g.Allowed(q) {
				continue
			}
			look := q == dst
			if !look {
				for _, pd2 := range productive(topo, q, dst) {
					if q2, ok2 := topo.NeighborIn(q, pd2.dir); ok2 && g.Allowed(q2) {
						look = true
						break
					}
				}
			}
			cands = append(cands, cand{
				next:      q,
				lookahead: look,
				clear:     v.Clear(pd.dir, pd.rem),
				rem:       pd.rem,
			})
		}
		if len(cands) == 0 {
			return nil, fmt.Errorf("safety: no minimal step from %v toward %v", cur, dst)
		}
		// Preference: keep a productive option open (one-step lookahead),
		// then a guaranteed-clear run (the safety information of [9]),
		// then the dimension with more slack.
		best := cands[0]
		better := func(a, b cand) bool {
			if a.lookahead != b.lookahead {
				return a.lookahead
			}
			if a.clear != b.clear {
				return a.clear
			}
			return a.rem > b.rem
		}
		for _, c := range cands[1:] {
			if better(c, best) {
				best = c
			}
		}
		path = append(path, best.next)
		cur = best.next
	}
	return path, nil
}

// productive lists the distance-reducing directions from cur to dst with
// the remaining offset in each dimension (wrap-aware on tori).
type productiveDir struct {
	dir mesh.Direction
	rem int
}

func productive(topo *mesh.Topology, cur, dst grid.Point) []productiveDir {
	var out []productiveDir
	if cur.X != dst.X {
		dir, rem := senseAndRem(topo, cur.X, dst.X, topo.Width(), mesh.West, mesh.East)
		out = append(out, productiveDir{dir: dir, rem: rem})
	}
	if cur.Y != dst.Y {
		dir, rem := senseAndRem(topo, cur.Y, dst.Y, topo.Height(), mesh.South, mesh.North)
		out = append(out, productiveDir{dir: dir, rem: rem})
	}
	return out
}

func senseAndRem(topo *mesh.Topology, cur, dst, span int, neg, pos mesh.Direction) (mesh.Direction, int) {
	if topo.Kind() == mesh.Torus2D {
		fwd := ((dst-cur)%span + span) % span
		if fwd <= span-fwd {
			return pos, fwd
		}
		return neg, span - fwd
	}
	if dst < cur {
		return neg, cur - dst
	}
	return pos, dst - cur
}
