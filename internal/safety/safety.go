// Package safety implements the extended-safety-level substrate of the
// paper's reference [9] (Wu, "Fault-tolerant adaptive and minimal routing
// in mesh-connected multicomputers using extended safety levels", IEEE
// TPDS 11(2), 2000), adapted to the refined fault model: after the
// two-phase formation, every enabled node learns — again through nothing
// but iterative neighbor exchanges — its distance to the nearest disabled
// node in each of the four directions. A productive direction whose
// safety distance exceeds the remaining offset is guaranteed clear, which
// is exactly the information [9] uses to route minimally without global
// fault knowledge.
//
// The label is a 4-vector of capped distances computed as a monotone
// (component-wise decreasing) fixpoint on the same simnet engines as the
// paper's boolean phases, so the distributed cost model is identical:
// the field stabilizes in O(max distance) lock-step rounds.
package safety

import (
	"fmt"

	"ocpmesh/internal/core"
	"ocpmesh/internal/grid"
	"ocpmesh/internal/mesh"
	"ocpmesh/internal/simnet"
)

// Vector holds, per canonical direction (west, east, south, north), the
// hop distance from a node to the nearest disabled node strictly in that
// direction along the grid line, capped at the field's Cap. Disabled
// nodes carry the zero vector.
type Vector [4]int

// Clear reports whether the direction is free of disabled nodes for at
// least dist hops.
func (v Vector) Clear(d mesh.Direction, dist int) bool { return v[d] > dist }

// Field is the computed safety field of one formation result.
type Field struct {
	topo    *mesh.Topology
	vectors []Vector
	// Cap is the value meaning "no disabled node before the cap" —
	// chosen larger than any in-machine distance.
	Cap int
	// Rounds is the number of lock-step rounds the fixpoint needed.
	Rounds int
}

// At returns the vector of node p.
func (f *Field) At(p grid.Point) Vector { return f.vectors[f.topo.Index(p)] }

// rule is the distributed update rule. env.Aux carries the enabled
// labels; disabled nodes (and fail-stop faulty nodes) present the zero
// vector, and an enabled node's distance in direction d is one more than
// its d-neighbor's, clamped to the cap. The all-zero vector doubles as
// the "I am disabled" marker: an enabled node always has all components
// >= 1.
type rule struct {
	cap int
}

func (rule) Name() string { return "safety/extended-levels" }

func (r rule) capVector() Vector {
	return Vector{r.cap, r.cap, r.cap, r.cap}
}

// Init implements simnet.GenericRule.
func (r rule) Init(env *simnet.Env, p grid.Point) Vector {
	if !env.Aux[env.Topo.Index(p)] {
		return Vector{} // disabled
	}
	return r.capVector()
}

// GhostLabel implements simnet.GenericRule: the ghost ring is enabled and
// fault-free all the way out.
func (r rule) GhostLabel() Vector { return r.capVector() }

// FaultyLabel implements simnet.GenericRule.
func (rule) FaultyLabel() Vector { return Vector{} }

// Step implements simnet.GenericRule.
func (r rule) Step(env *simnet.Env, p grid.Point, cur Vector, nbr [4]Vector) Vector {
	if !env.Aux[env.Topo.Index(p)] {
		return Vector{} // disabled nodes stay zero
	}
	var next Vector
	for i, d := range mesh.Directions {
		n := nbr[i]
		if n == (Vector{}) {
			next[i] = 1 // the neighbor itself is disabled
			continue
		}
		v := n[d] + 1
		if v > r.cap {
			v = r.cap
		}
		next[i] = v
	}
	return next
}

// Compute derives the safety field from a formation result on the chosen
// engine (the engines are result-equivalent, as for the boolean phases).
func Compute(res *core.Result, engine core.EngineKind) (*Field, error) {
	env, err := simnet.NewEnv(res.Topo, res.Faults, res.Enabled)
	if err != nil {
		return nil, err
	}
	r := rule{cap: res.Topo.Width() + res.Topo.Height()}
	var out *simnet.GenericResult[Vector]
	if engine == core.EngineChannels {
		out, err = simnet.RunChannelsGeneric[Vector](env, r, simnet.GenericOptions[Vector]{})
	} else {
		out, err = simnet.RunSequentialGeneric[Vector](env, r, simnet.GenericOptions[Vector]{})
	}
	if err != nil {
		return nil, fmt.Errorf("safety: %w", err)
	}
	return &Field{topo: res.Topo, vectors: out.Labels, Cap: r.cap, Rounds: out.Rounds}, nil
}
