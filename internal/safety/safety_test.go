package safety

import (
	"math/rand"
	"testing"

	"ocpmesh/internal/core"
	"ocpmesh/internal/fault"
	"ocpmesh/internal/grid"
	"ocpmesh/internal/mesh"
	"ocpmesh/internal/routing"
	"ocpmesh/internal/status"
)

func formAndField(t *testing.T, w, h int, kind mesh.Kind, faults ...grid.Point) (*core.Result, *Field) {
	t.Helper()
	res, err := core.Form(core.Config{Width: w, Height: h, Kind: kind, Safety: status.Def2b}, faults)
	if err != nil {
		t.Fatal(err)
	}
	f, err := Compute(res, core.EngineSequential)
	if err != nil {
		t.Fatal(err)
	}
	return res, f
}

func TestFieldFaultFree(t *testing.T) {
	_, f := formAndField(t, 6, 6, mesh.Mesh2D)
	if f.Rounds != 0 {
		t.Fatalf("fault-free field must stabilize instantly, took %d rounds", f.Rounds)
	}
	for x := 0; x < 6; x++ {
		for y := 0; y < 6; y++ {
			v := f.At(grid.Pt(x, y))
			for _, d := range mesh.Directions {
				if v[d] != f.Cap {
					t.Fatalf("node (%d,%d) dir %v = %d, want cap %d", x, y, d, v[d], f.Cap)
				}
			}
		}
	}
}

func TestFieldDistancesExact(t *testing.T) {
	// One disabled node at (3,2): distances along its row and column.
	_, f := formAndField(t, 7, 7, mesh.Mesh2D, grid.Pt(3, 2))
	tests := []struct {
		p    grid.Point
		d    mesh.Direction
		want int
	}{
		{grid.Pt(0, 2), mesh.East, 3},
		{grid.Pt(2, 2), mesh.East, 1},
		{grid.Pt(6, 2), mesh.West, 3},
		{grid.Pt(3, 0), mesh.North, 2},
		{grid.Pt(3, 6), mesh.South, 4},
		// Off the fault's lines, everything is clear.
		{grid.Pt(0, 0), mesh.East, f.Cap},
		{grid.Pt(2, 2), mesh.West, f.Cap},
	}
	for _, tt := range tests {
		if got := f.At(tt.p)[tt.d]; got != tt.want {
			t.Errorf("At(%v)[%v] = %d, want %d", tt.p, tt.d, got, tt.want)
		}
	}
	if !f.At(grid.Pt(0, 2)).Clear(mesh.East, 2) {
		t.Error("distance-2 run east of (0,2) is clear")
	}
	if f.At(grid.Pt(0, 2)).Clear(mesh.East, 3) {
		t.Error("distance-3 run east of (0,2) hits the disabled node")
	}
}

// The field must match a brute-force scan on random configurations, on
// both engines.
func TestFieldMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 25; trial++ {
		kind := mesh.Mesh2D
		if trial%3 == 0 {
			kind = mesh.Torus2D
		}
		topo := mesh.MustNew(8, 8, kind)
		faults := fault.Uniform{Count: rng.Intn(10)}.Generate(topo, rng)
		res, err := core.FormOn(core.Config{Width: 8, Height: 8, Kind: kind, Safety: status.Def2b},
			topo, faults)
		if err != nil {
			t.Fatal(err)
		}
		fSeq, err := Compute(res, core.EngineSequential)
		if err != nil {
			t.Fatal(err)
		}
		fChan, err := Compute(res, core.EngineChannels)
		if err != nil {
			t.Fatal(err)
		}
		if fSeq.Rounds != fChan.Rounds {
			t.Fatalf("trial %d: engine rounds differ", trial)
		}
		for _, p := range topo.Points() {
			if fSeq.At(p) != fChan.At(p) {
				t.Fatalf("trial %d: engine vectors differ at %v", trial, p)
			}
			want := bruteVector(res, p, fSeq.Cap)
			if fSeq.At(p) != want {
				t.Fatalf("trial %d: At(%v) = %v, want %v", trial, p, fSeq.At(p), want)
			}
		}
	}
}

// bruteVector walks each direction until a disabled node, the cap, or —
// on a bounded mesh — the ghost ring (clear).
func bruteVector(res *core.Result, p grid.Point, cap int) Vector {
	if !res.IsEnabled(p) {
		return Vector{}
	}
	var v Vector
	for i, d := range mesh.Directions {
		dist := cap
		cur := p
		for steps := 1; steps <= cap; steps++ {
			q, ok := res.Topo.NeighborIn(cur, d)
			if !ok {
				break // ghost ring: clear
			}
			if !res.IsEnabled(q) {
				dist = steps
				break
			}
			cur = q
		}
		v[i] = dist
	}
	return v
}

func TestRoundsScaleWithDistance(t *testing.T) {
	// A single disabled node on a 12x12 mesh: the wave must travel the
	// longest straight line (11 hops), so rounds ~ that distance, far
	// more than the boolean phases but still linear.
	_, f := formAndField(t, 12, 12, mesh.Mesh2D, grid.Pt(0, 0))
	if f.Rounds < 10 || f.Rounds > f.Cap {
		t.Fatalf("rounds = %d, want about the mesh side", f.Rounds)
	}
}

func TestRouterPrefersClearDirection(t *testing.T) {
	// A wall of disabled nodes at x=3, y=0..2. From (0,0) to (6,3) the
	// east run is blocked at distance 3, the north run is clear: the
	// safety router must start north, unlike offset-greedy routing.
	res, f := formAndField(t, 8, 8, mesh.Mesh2D,
		grid.Pt(3, 0), grid.Pt(3, 1), grid.Pt(3, 2))
	g := routing.NewGraph(res, routing.ModelRegions)
	src, dst := grid.Pt(0, 0), grid.Pt(6, 3)

	path, err := (Router{Field: f}).Route(g, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if path.Len() != src.Dist(dst) {
		t.Fatalf("safety route not minimal: %d vs %d", path.Len(), src.Dist(dst))
	}
	if err := path.Validate(res, routing.ModelRegions, src, dst); err != nil {
		t.Fatal(err)
	}
	if path[1] != grid.Pt(0, 1) {
		t.Fatalf("first hop = %v, want the clear north direction", path[1])
	}
}

// Safety-guided paths are always minimal and valid; delivery is at least
// as good as the one-step-lookahead adaptive router on a random ensemble.
func TestRouterEnsemble(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	safetyOK, adaptiveOK, total := 0, 0, 0
	for trial := 0; trial < 30; trial++ {
		topo := mesh.MustNew(14, 14, mesh.Mesh2D)
		faults := fault.Uniform{Count: 12}.Generate(topo, rng)
		res, err := core.FormOn(core.Config{Width: 14, Height: 14, Safety: status.Def2b}, topo, faults)
		if err != nil {
			t.Fatal(err)
		}
		field, err := Compute(res, core.EngineSequential)
		if err != nil {
			t.Fatal(err)
		}
		g := routing.NewGraph(res, routing.ModelRegions)
		router := Router{Field: field}
		for _, pr := range routing.SamplePairs(res, 15, rng) {
			if !g.Allowed(pr[0]) || !g.Allowed(pr[1]) {
				continue
			}
			total++
			if path, err := router.Route(g, pr[0], pr[1]); err == nil {
				safetyOK++
				if path.Len() != topo.Dist(pr[0], pr[1]) {
					t.Fatalf("trial %d: non-minimal safety path", trial)
				}
				if verr := path.Validate(res, routing.ModelRegions, pr[0], pr[1]); verr != nil {
					t.Fatal(verr)
				}
			}
			if _, err := (routing.AdaptiveMinimal{}).Route(g, pr[0], pr[1]); err == nil {
				adaptiveOK++
			}
		}
	}
	if total == 0 {
		t.Fatal("no pairs sampled")
	}
	t.Logf("delivery: safety %d/%d, adaptive %d/%d", safetyOK, total, adaptiveOK, total)
	// On sparse uniform faults both minimal routers are near-optimal and
	// differ only in tie-breaks; what the field adds is *certainty* on
	// clear runs (TestRouterPrefersClearDirection). Require parity within
	// a 2% slack rather than strict dominance.
	if float64(safetyOK) < 0.98*float64(adaptiveOK) {
		t.Fatalf("safety-guided routing (%d) fell behind 1-step lookahead (%d)",
			safetyOK, adaptiveOK)
	}
}

func TestRouterErrors(t *testing.T) {
	res, f := formAndField(t, 5, 5, mesh.Mesh2D, grid.Pt(2, 2))
	g := routing.NewGraph(res, routing.ModelRegions)
	if _, err := (Router{}).Route(g, grid.Pt(0, 0), grid.Pt(1, 1)); err == nil {
		t.Fatal("router without field must fail")
	}
	if _, err := (Router{Field: f}).Route(g, grid.Pt(2, 2), grid.Pt(0, 0)); err == nil {
		t.Fatal("disabled endpoint must fail")
	}
	if (Router{}).Name() != "safety-minimal" {
		t.Fatal("name wrong")
	}
}
