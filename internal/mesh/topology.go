package mesh

import (
	"fmt"

	"ocpmesh/internal/grid"
)

// Kind selects between the bounded mesh and the wraparound torus.
type Kind int

const (
	// Mesh2D is the bounded 2-D mesh with a ghost ring along its border.
	Mesh2D Kind = iota
	// Torus2D is the 2-D torus: every node has exactly four neighbors and
	// there is no boundary, hence no ghost nodes (the paper notes the
	// boundary problem does not exist in 2-D tori).
	Torus2D
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case Mesh2D:
		return "mesh"
	case Torus2D:
		return "torus"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Topology describes a Width x Height 2-D mesh or torus.
type Topology struct {
	width, height int
	kind          Kind
}

// New returns a topology of the given dimensions. Width and height must be
// positive; a torus additionally needs both dimensions >= 3 so that the
// four neighbors of a node are distinct.
func New(width, height int, kind Kind) (*Topology, error) {
	if width < 1 || height < 1 {
		return nil, fmt.Errorf("mesh: dimensions must be positive, got %dx%d", width, height)
	}
	if kind != Mesh2D && kind != Torus2D {
		return nil, fmt.Errorf("mesh: unknown kind %d", int(kind))
	}
	if kind == Torus2D && (width < 3 || height < 3) {
		return nil, fmt.Errorf("mesh: torus needs dimensions >= 3, got %dx%d", width, height)
	}
	return &Topology{width: width, height: height, kind: kind}, nil
}

// MustNew is New that panics on error, for tests and fixtures.
func MustNew(width, height int, kind Kind) *Topology {
	t, err := New(width, height, kind)
	if err != nil {
		panic(err)
	}
	return t
}

// Width returns the number of columns.
func (t *Topology) Width() int { return t.width }

// Height returns the number of rows.
func (t *Topology) Height() int { return t.height }

// Kind returns the topology kind.
func (t *Topology) Kind() Kind { return t.kind }

// Size returns the number of nodes.
func (t *Topology) Size() int { return t.width * t.height }

// Bounds returns the inclusive address rectangle of the machine.
func (t *Topology) Bounds() grid.Rect {
	return grid.NewRect(0, 0, t.width-1, t.height-1)
}

// Contains reports whether p is a machine node (ghosts excluded).
func (t *Topology) Contains(p grid.Point) bool {
	return p.X >= 0 && p.X < t.width && p.Y >= 0 && p.Y < t.height
}

// IsGhost reports whether p lies on the ghost ring: the four lines
// immediately adjacent to the mesh boundary. Ghost nodes are permanently
// safe and enabled but never participate in routing or labeling. A torus
// has no ghosts.
func (t *Topology) IsGhost(p grid.Point) bool {
	if t.kind == Torus2D || t.Contains(p) {
		return false
	}
	return p.X >= -1 && p.X <= t.width && p.Y >= -1 && p.Y <= t.height
}

// Index maps a machine node to a dense index in [0, Size).
func (t *Topology) Index(p grid.Point) int {
	if !t.Contains(p) {
		panic(fmt.Sprintf("mesh: %v outside %dx%d machine", p, t.width, t.height))
	}
	return p.Y*t.width + p.X
}

// PointAt is the inverse of Index.
func (t *Topology) PointAt(i int) grid.Point {
	if i < 0 || i >= t.Size() {
		panic(fmt.Sprintf("mesh: index %d out of range [0,%d)", i, t.Size()))
	}
	return grid.Pt(i%t.width, i/t.width)
}

// Wrap maps an arbitrary address onto the torus surface. For a plain mesh
// it returns p unchanged.
func (t *Topology) Wrap(p grid.Point) grid.Point {
	if t.kind != Torus2D {
		return p
	}
	return grid.Pt(mod(p.X, t.width), mod(p.Y, t.height))
}

// NeighborIn returns the machine node adjacent to p in direction d and
// true, or the zero point and false when the link leaves the machine (mesh
// boundary). On a torus the link wraps and the result is always a machine
// node.
func (t *Topology) NeighborIn(p grid.Point, d Direction) (grid.Point, bool) {
	q := p.Add(d.Delta())
	if t.kind == Torus2D {
		return t.Wrap(q), true
	}
	if t.Contains(q) {
		return q, true
	}
	return grid.Point{}, false
}

// Neighbors returns the machine neighbors of p in canonical direction
// order (west, east, south, north), omitting links that leave a bounded
// mesh.
func (t *Topology) Neighbors(p grid.Point) []grid.Point {
	return t.AppendNeighbors(p, make([]grid.Point, 0, 4))
}

// AppendNeighbors appends the machine neighbors of p to dst in canonical
// direction order and returns the extended slice. Flood fills that visit
// every cell of a region use it with a reused scratch slice, where the
// per-call allocation of Neighbors dominates.
func (t *Topology) AppendNeighbors(p grid.Point, dst []grid.Point) []grid.Point {
	for _, d := range Directions {
		if q, ok := t.NeighborIn(p, d); ok {
			dst = append(dst, q)
		}
	}
	return dst
}

// Degree returns the number of machine neighbors of p: 4 in the interior
// and on the whole torus, 3 on a mesh edge, 2 in a mesh corner.
func (t *Topology) Degree(p grid.Point) int { return len(t.Neighbors(p)) }

// Dist returns the minimal routing distance between two machine nodes:
// Manhattan distance on the mesh, wraparound Manhattan distance on the
// torus.
func (t *Topology) Dist(p, q grid.Point) int {
	if t.kind != Torus2D {
		return p.Dist(q)
	}
	dx := absInt(p.X - q.X)
	if w := t.width - dx; w < dx {
		dx = w
	}
	dy := absInt(p.Y - q.Y)
	if w := t.height - dy; w < dy {
		dy = w
	}
	return dx + dy
}

// Diameter returns the network diameter: 2(n-1) for an n x n mesh, per the
// paper, generalized to Width+Height-2 for rectangular meshes and
// floor(W/2)+floor(H/2) for tori.
func (t *Topology) Diameter() int {
	if t.kind == Torus2D {
		return t.width/2 + t.height/2
	}
	return t.width + t.height - 2
}

// Points returns all machine nodes in canonical row-major order.
func (t *Topology) Points() []grid.Point {
	return t.Bounds().Points()
}

// String describes the topology.
func (t *Topology) String() string {
	return fmt.Sprintf("%dx%d %s", t.width, t.height, t.kind)
}

func mod(v, m int) int {
	v %= m
	if v < 0 {
		v += m
	}
	return v
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
