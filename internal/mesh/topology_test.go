package mesh

import (
	"testing"
	"testing/quick"

	"ocpmesh/internal/grid"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 5, Mesh2D); err == nil {
		t.Fatal("zero width must fail")
	}
	if _, err := New(5, -1, Mesh2D); err == nil {
		t.Fatal("negative height must fail")
	}
	if _, err := New(2, 5, Torus2D); err == nil {
		t.Fatal("torus smaller than 3 must fail")
	}
	if _, err := New(5, 5, Kind(7)); err == nil {
		t.Fatal("unknown kind must fail")
	}
	if _, err := New(1, 1, Mesh2D); err != nil {
		t.Fatalf("1x1 mesh should be legal: %v", err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew must panic on invalid dimensions")
		}
	}()
	MustNew(0, 0, Mesh2D)
}

func TestIndexRoundTrip(t *testing.T) {
	m := MustNew(7, 5, Mesh2D)
	if m.Size() != 35 {
		t.Fatalf("Size = %d", m.Size())
	}
	seen := make(map[int]bool)
	for _, p := range m.Points() {
		i := m.Index(p)
		if i < 0 || i >= m.Size() || seen[i] {
			t.Fatalf("bad or duplicate index %d for %v", i, p)
		}
		seen[i] = true
		if m.PointAt(i) != p {
			t.Fatalf("PointAt(Index(%v)) = %v", p, m.PointAt(i))
		}
	}
}

func TestIndexPanicsOutside(t *testing.T) {
	m := MustNew(3, 3, Mesh2D)
	defer func() {
		if recover() == nil {
			t.Fatal("Index outside machine must panic")
		}
	}()
	m.Index(grid.Pt(3, 0))
}

func TestPointAtPanicsOutside(t *testing.T) {
	m := MustNew(3, 3, Mesh2D)
	defer func() {
		if recover() == nil {
			t.Fatal("PointAt outside range must panic")
		}
	}()
	m.PointAt(9)
}

func TestMeshNeighbors(t *testing.T) {
	m := MustNew(4, 4, Mesh2D)
	tests := []struct {
		p      grid.Point
		degree int
	}{
		{grid.Pt(0, 0), 2},
		{grid.Pt(3, 3), 2},
		{grid.Pt(0, 2), 3},
		{grid.Pt(2, 0), 3},
		{grid.Pt(1, 2), 4},
	}
	for _, tt := range tests {
		if got := m.Degree(tt.p); got != tt.degree {
			t.Errorf("Degree(%v) = %d, want %d", tt.p, got, tt.degree)
		}
		for _, q := range m.Neighbors(tt.p) {
			if !m.Contains(q) {
				t.Errorf("neighbor %v of %v outside machine", q, tt.p)
			}
			if tt.p.Dist(q) != 1 {
				t.Errorf("neighbor %v of %v not adjacent", q, tt.p)
			}
		}
	}
}

func TestTorusNeighborsWrap(t *testing.T) {
	tor := MustNew(5, 4, Torus2D)
	for _, p := range tor.Points() {
		if d := tor.Degree(p); d != 4 {
			t.Fatalf("torus Degree(%v) = %d, want 4", p, d)
		}
	}
	q, ok := tor.NeighborIn(grid.Pt(0, 0), West)
	if !ok || q != grid.Pt(4, 0) {
		t.Fatalf("west of origin on torus = %v, %t", q, ok)
	}
	q, ok = tor.NeighborIn(grid.Pt(2, 3), North)
	if !ok || q != grid.Pt(2, 0) {
		t.Fatalf("north wrap = %v, %t", q, ok)
	}
}

func TestMeshBoundaryLinks(t *testing.T) {
	m := MustNew(4, 4, Mesh2D)
	if _, ok := m.NeighborIn(grid.Pt(0, 0), West); ok {
		t.Fatal("west link off the mesh must not exist")
	}
	if _, ok := m.NeighborIn(grid.Pt(0, 0), East); !ok {
		t.Fatal("east link must exist")
	}
}

func TestGhosts(t *testing.T) {
	m := MustNew(3, 3, Mesh2D)
	for _, p := range []grid.Point{grid.Pt(-1, 0), grid.Pt(3, 2), grid.Pt(1, -1), grid.Pt(1, 3), grid.Pt(-1, -1), grid.Pt(3, 3)} {
		if !m.IsGhost(p) {
			t.Errorf("%v should be a ghost", p)
		}
	}
	for _, p := range []grid.Point{grid.Pt(0, 0), grid.Pt(2, 2), grid.Pt(-2, 0), grid.Pt(4, 1)} {
		if m.IsGhost(p) {
			t.Errorf("%v should not be a ghost", p)
		}
	}
	tor := MustNew(3, 3, Torus2D)
	if tor.IsGhost(grid.Pt(-1, 0)) {
		t.Fatal("torus has no ghosts")
	}
}

func TestMeshDist(t *testing.T) {
	m := MustNew(10, 10, Mesh2D)
	if d := m.Dist(grid.Pt(0, 0), grid.Pt(9, 9)); d != 18 {
		t.Fatalf("mesh Dist = %d", d)
	}
	tor := MustNew(10, 10, Torus2D)
	if d := tor.Dist(grid.Pt(0, 0), grid.Pt(9, 9)); d != 2 {
		t.Fatalf("torus Dist = %d, want 2 (wrap both ways)", d)
	}
	if d := tor.Dist(grid.Pt(0, 0), grid.Pt(5, 0)); d != 5 {
		t.Fatalf("torus Dist = %d, want 5", d)
	}
}

func TestDiameter(t *testing.T) {
	// Paper: 2(n-1) for an n x n mesh.
	if d := MustNew(100, 100, Mesh2D).Diameter(); d != 198 {
		t.Fatalf("100x100 mesh diameter = %d, want 198", d)
	}
	if d := MustNew(10, 4, Torus2D).Diameter(); d != 7 {
		t.Fatalf("torus diameter = %d, want 7", d)
	}
}

// The diameter must equal the maximum pairwise distance.
func TestDiameterMatchesPairwise(t *testing.T) {
	for _, kind := range []Kind{Mesh2D, Torus2D} {
		m := MustNew(5, 4, kind)
		maxD := 0
		pts := m.Points()
		for _, p := range pts {
			for _, q := range pts {
				if d := m.Dist(p, q); d > maxD {
					maxD = d
				}
			}
		}
		if maxD != m.Diameter() {
			t.Errorf("%v: max pairwise %d != Diameter %d", m, maxD, m.Diameter())
		}
	}
}

func TestTorusDistIsMetric(t *testing.T) {
	tor := MustNew(7, 5, Torus2D)
	f := func(a, b, c uint16) bool {
		p := tor.PointAt(int(a) % tor.Size())
		q := tor.PointAt(int(b) % tor.Size())
		r := tor.PointAt(int(c) % tor.Size())
		if tor.Dist(p, q) != tor.Dist(q, p) {
			return false
		}
		if (tor.Dist(p, q) == 0) != (p == q) {
			return false
		}
		return tor.Dist(p, r) <= tor.Dist(p, q)+tor.Dist(q, r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNeighborDistOneOnTorus(t *testing.T) {
	tor := MustNew(6, 3, Torus2D)
	for _, p := range tor.Points() {
		for _, q := range tor.Neighbors(p) {
			if tor.Dist(p, q) != 1 {
				t.Fatalf("torus neighbor %v of %v at distance %d", q, p, tor.Dist(p, q))
			}
		}
	}
}

func TestDirection(t *testing.T) {
	for _, d := range Directions {
		if d.Opposite().Opposite() != d {
			t.Errorf("double Opposite of %v broken", d)
		}
		sum := d.Delta().Add(d.Opposite().Delta())
		if sum != grid.Pt(0, 0) {
			t.Errorf("%v delta and opposite delta must cancel", d)
		}
	}
	if !West.Horizontal() || !East.Horizontal() || North.Horizontal() || South.Horizontal() {
		t.Error("Horizontal wrong")
	}
	names := map[Direction]string{West: "west", East: "east", South: "south", North: "north"}
	for d, want := range names {
		if d.String() != want {
			t.Errorf("String(%d) = %q", int(d), d.String())
		}
	}
}

func TestKindString(t *testing.T) {
	if Mesh2D.String() != "mesh" || Torus2D.String() != "torus" {
		t.Fatal("kind names wrong")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Fatal("unknown kind name wrong")
	}
	if s := MustNew(4, 5, Mesh2D).String(); s != "4x5 mesh" {
		t.Fatalf("topology String = %q", s)
	}
}

func TestWrap(t *testing.T) {
	tor := MustNew(5, 3, Torus2D)
	if got := tor.Wrap(grid.Pt(-1, 3)); got != grid.Pt(4, 0) {
		t.Fatalf("Wrap = %v", got)
	}
	if got := tor.Wrap(grid.Pt(12, -4)); got != grid.Pt(2, 2) {
		t.Fatalf("Wrap = %v", got)
	}
	m := MustNew(5, 3, Mesh2D)
	if got := m.Wrap(grid.Pt(-1, 3)); got != grid.Pt(-1, 3) {
		t.Fatalf("mesh Wrap must be identity, got %v", got)
	}
}
