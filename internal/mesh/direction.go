// Package mesh models the interconnection topology of a 2-D
// mesh-connected multicomputer (and its wraparound variant, the 2-D
// torus).
//
// Node addresses follow the paper: (x, y) with 0 <= x < Width and
// 0 <= y < Height; two nodes are connected when their addresses differ by
// one in exactly one dimension. For the plain mesh, the paper surrounds
// the machine with four "ghost" lines of permanently safe, enabled,
// non-participating nodes so boundary nodes follow the same rules as
// interior nodes; Topology exposes that ring via IsGhost. The torus has no
// boundary and therefore no ghosts.
package mesh

import "ocpmesh/internal/grid"

// Direction identifies one of the four mesh link directions.
type Direction int

// The four link directions in the canonical order used throughout the
// repository (matching grid.Point.Neighbors4).
const (
	West Direction = iota
	East
	South
	North
	numDirections
)

// Directions lists all four directions in canonical order.
var Directions = [4]Direction{West, East, South, North}

// Delta returns the unit address offset of the direction.
func (d Direction) Delta() grid.Point {
	switch d {
	case West:
		return grid.Pt(-1, 0)
	case East:
		return grid.Pt(1, 0)
	case South:
		return grid.Pt(0, -1)
	case North:
		return grid.Pt(0, 1)
	default:
		panic("mesh: invalid direction")
	}
}

// Opposite returns the reverse direction.
func (d Direction) Opposite() Direction {
	switch d {
	case West:
		return East
	case East:
		return West
	case South:
		return North
	case North:
		return South
	default:
		panic("mesh: invalid direction")
	}
}

// Horizontal reports whether the direction moves along the x dimension.
func (d Direction) Horizontal() bool { return d == West || d == East }

// String returns the direction name.
func (d Direction) String() string {
	switch d {
	case West:
		return "west"
	case East:
		return "east"
	case South:
		return "south"
	case North:
		return "north"
	default:
		return "invalid"
	}
}
