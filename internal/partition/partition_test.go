package partition

import (
	"math/rand"
	"testing"

	"ocpmesh/internal/core"
	"ocpmesh/internal/fault"
	"ocpmesh/internal/geometry"
	"ocpmesh/internal/grid"
	"ocpmesh/internal/mesh"
	"ocpmesh/internal/status"
)

func TestEmptyFaults(t *testing.T) {
	if c := Greedy(grid.NewPointSet()); len(c.Polygons) != 0 || c.Size() != 0 {
		t.Fatal("greedy on empty faults must be empty")
	}
	c, err := Exact(grid.NewPointSet())
	if err != nil || len(c.Polygons) != 0 {
		t.Fatal("exact on empty faults must be empty")
	}
}

func TestSingleFault(t *testing.T) {
	faults := grid.PointSetOf(grid.Pt(3, 3))
	for _, c := range []*Cover{Greedy(faults), mustExact(t, faults)} {
		if len(c.Polygons) != 1 || c.Size() != 1 || c.NonfaultyCount(faults) != 0 {
			t.Fatalf("cover = %+v", c)
		}
		if err := c.Validate(faults); err != nil {
			t.Fatal(err)
		}
	}
}

func mustExact(t *testing.T, faults *grid.PointSet) *Cover {
	t.Helper()
	c, err := Exact(faults)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// Two distant faults: the single-polygon cover wastes 3 nonfaulty nodes,
// the optimal cover is two singletons.
func TestTwoDistantFaults(t *testing.T) {
	faults := grid.PointSetOf(grid.Pt(0, 0), grid.Pt(4, 0))
	exact := mustExact(t, faults)
	if len(exact.Polygons) != 2 || exact.NonfaultyCount(faults) != 0 {
		t.Fatalf("exact = %d polygons, %d nonfaulty", len(exact.Polygons), exact.NonfaultyCount(faults))
	}
	greedy := Greedy(faults)
	if greedy.NonfaultyCount(faults) != 0 {
		t.Fatalf("greedy wasted %d nodes", greedy.NonfaultyCount(faults))
	}
	// The merged alternative really is worse.
	merged := geometry.ConnectedOrthogonalClosure(faults)
	if merged.Len()-faults.Len() != 3 {
		t.Fatalf("merged cost = %d, want 3", merged.Len()-faults.Len())
	}
}

// Diagonal faults are one 8-connected cluster; the cover is their
// two-cell staircase... actually their connected closure. Either way no
// separation is violated and all faults are covered.
func TestDiagonalFaults(t *testing.T) {
	faults := grid.PointSetOf(grid.Pt(2, 1), grid.Pt(3, 2))
	exact := mustExact(t, faults)
	if err := exact.Validate(faults); err != nil {
		t.Fatal(err)
	}
	if len(exact.Polygons) != 1 {
		t.Fatalf("diagonal pair is one cluster, got %d polygons", len(exact.Polygons))
	}
}

// Faults at distance 2 in a row: separate singleton polygons would be
// edge-separated by only one node (L1 distance 2) — legal. Check the
// solvers find the zero-cost cover.
func TestDistanceTwoFaults(t *testing.T) {
	faults := grid.PointSetOf(grid.Pt(0, 0), grid.Pt(2, 0))
	exact := mustExact(t, faults)
	if exact.NonfaultyCount(faults) != 0 || len(exact.Polygons) != 2 {
		t.Fatalf("exact = %d polygons, %d nonfaulty", len(exact.Polygons), exact.NonfaultyCount(faults))
	}
}

// Faults at distance 1 apart cannot be split (polygons would be
// edge-adjacent): the cover must merge them.
func TestAdjacentFaultsMerge(t *testing.T) {
	faults := grid.PointSetOf(grid.Pt(0, 0), grid.Pt(1, 0))
	exact := mustExact(t, faults)
	if len(exact.Polygons) != 1 {
		t.Fatalf("adjacent faults must share a polygon, got %d", len(exact.Polygons))
	}
	greedy := Greedy(faults)
	if len(greedy.Polygons) != 1 {
		t.Fatalf("greedy must merge adjacent faults, got %d", len(greedy.Polygons))
	}
}

func TestExactClusterBound(t *testing.T) {
	faults := grid.NewPointSet()
	for i := 0; i <= MaxExactClusters; i++ {
		faults.Add(grid.Pt(3*i, 0))
	}
	if _, err := Exact(faults); err == nil {
		t.Fatal("exceeding the cluster bound must error")
	}
	// Greedy still works at any size.
	if c := Greedy(faults); c.Validate(faults) != nil {
		t.Fatal("greedy must handle many clusters")
	}
}

func TestCoverValidateRejects(t *testing.T) {
	faults := grid.PointSetOf(grid.Pt(0, 0), grid.Pt(5, 5))
	// Missing fault.
	c := &Cover{Polygons: []*grid.PointSet{grid.PointSetOf(grid.Pt(0, 0))}}
	if err := c.Validate(faults); err == nil {
		t.Fatal("uncovered fault must be rejected")
	}
	// Faultless polygon.
	c2 := &Cover{Polygons: []*grid.PointSet{
		grid.PointSetOf(grid.Pt(0, 0)), grid.PointSetOf(grid.Pt(5, 5)), grid.PointSetOf(grid.Pt(9, 9)),
	}}
	if err := c2.Validate(faults); err == nil {
		t.Fatal("faultless polygon must be rejected")
	}
	// Non-convex polygon.
	u := grid.PointSetOf(
		grid.Pt(0, 0), grid.Pt(1, 0), grid.Pt(2, 0),
		grid.Pt(0, 1), grid.Pt(2, 1),
	)
	c3 := &Cover{Polygons: []*grid.PointSet{u, grid.PointSetOf(grid.Pt(5, 5))}}
	if err := c3.Validate(faults); err == nil {
		t.Fatal("U-shaped polygon must be rejected")
	}
	// Edge-adjacent polygons.
	c4 := &Cover{Polygons: []*grid.PointSet{
		grid.PointSetOf(grid.Pt(0, 0)), grid.PointSetOf(grid.Pt(1, 0)),
	}}
	if err := c4.Validate(grid.PointSetOf(grid.Pt(0, 0), grid.Pt(1, 0))); err == nil {
		t.Fatal("edge-adjacent polygons must be rejected")
	}
}

// Exact never does worse than Greedy, and Greedy never worse than the
// single merged polygon.
func TestExactBeatsGreedyBeatsMerged(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 150; trial++ {
		faults := grid.NewPointSet()
		n := 1 + rng.Intn(6)
		for i := 0; i < n; i++ {
			faults.Add(grid.Pt(rng.Intn(10), rng.Intn(10)))
		}
		greedy := Greedy(faults)
		if err := greedy.Validate(faults); err != nil {
			t.Fatalf("trial %d: greedy invalid: %v", trial, err)
		}
		exact := mustExact(t, faults)
		if err := exact.Validate(faults); err != nil {
			t.Fatalf("trial %d: exact invalid: %v", trial, err)
		}
		gc, ec := greedy.NonfaultyCount(faults), exact.NonfaultyCount(faults)
		if ec > gc {
			t.Fatalf("trial %d: exact %d worse than greedy %d on %v", trial, ec, gc, faults.Points())
		}
		merged := geometry.ConnectedOrthogonalClosure(faults)
		if gc > merged.Len()-faults.Len() {
			t.Fatalf("trial %d: greedy %d worse than merged %d on %v",
				trial, gc, merged.Len()-faults.Len(), faults.Points())
		}
	}
}

// Refining the disabled regions of real pipeline output never keeps more
// nonfaulty nodes than the regions themselves — quantifying the paper's
// "a disabled region can be further partitioned" remark.
func TestRefineDisabledRegions(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	improved := 0
	for trial := 0; trial < 40; trial++ {
		topo := mesh.MustNew(16, 16, mesh.Mesh2D)
		faults := fault.Clustered{Count: 10 + rng.Intn(15), Clusters: 2, Spread: 2}.Generate(topo, rng)
		res, err := core.FormOn(core.Config{Width: 16, Height: 16, Safety: status.Def2b}, topo, faults)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range res.Regions {
			cover := Refine(r.Nodes, r.Faults)
			if err := cover.Validate(r.Faults); err != nil {
				t.Fatalf("trial %d: refined cover invalid: %v", trial, err)
			}
			before := r.NonfaultyCount()
			after := cover.NonfaultyCount(r.Faults)
			if after > before {
				t.Fatalf("trial %d: refinement regressed: %d -> %d (region %v)",
					trial, before, after, r.Nodes.Points())
			}
			if after < before {
				improved++
			}
		}
	}
	t.Logf("refinement strictly improved %d regions", improved)
}

// The Figure 2(b) disabled region (the whole block) cannot be improved:
// its faults form one cluster whose closure is the block itself.
func TestRefineFigure2B(t *testing.T) {
	fx := fault.Figure2B()
	res, err := core.FormOn(core.Config{Width: 10, Height: 10, Safety: status.Def2b},
		fx.Topo, fx.Faults)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Regions) != 1 {
		t.Fatalf("regions = %d", len(res.Regions))
	}
	r := res.Regions[0]
	cover := Refine(r.Nodes, r.Faults)
	if got, want := cover.NonfaultyCount(r.Faults), r.NonfaultyCount(); got != want {
		t.Fatalf("figure2b refinement changed cost: %d vs %d", got, want)
	}
}
