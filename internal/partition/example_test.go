package partition_test

import (
	"fmt"

	"ocpmesh/internal/grid"
	"ocpmesh/internal/partition"
)

// Two distant faults merged into one polygon would cost three bridging
// nonfaulty nodes; the exact solver covers them with two singleton
// polygons at zero cost.
func ExampleExact() {
	faults := grid.PointSetOf(grid.Pt(0, 0), grid.Pt(4, 0))
	cover, err := partition.Exact(faults)
	if err != nil {
		panic(err)
	}
	fmt.Println("polygons:", len(cover.Polygons))
	fmt.Println("nonfaulty nodes kept:", cover.NonfaultyCount(faults))
	fmt.Println("valid:", cover.Validate(faults) == nil)
	// Output:
	// polygons: 2
	// nonfaulty nodes kept: 0
	// valid: true
}
