// Package partition attacks the open problem the paper closes with: "for
// a given faulty block, find a set of orthogonal convex polygons that
// covers all the faults in the block and contains a minimum number of
// nonfaulty nodes" — conjectured NP-complete (paper reference [3]).
//
// A valid cover here is a set of orthogonal convex polygons that
//
//   - together contain every fault,
//   - each cover at least one fault, and
//   - are pairwise separated (L1 distance >= 2: disjoint and not
//     edge-adjacent; corner-adjacency is allowed, exactly as the paper's
//     own disabled regions may contain diagonally touching sub-polygons).
//
// Two solvers are provided. Greedy starts from the 8-connected fault
// clusters, takes the canonical connected rectilinear closure of each,
// and merges polygons only when the separation constraint forces it —
// mirroring (and sometimes improving on) how disabled regions form.
// Exact enumerates every set partition of the fault clusters (feasible
// up to ~10 clusters) and returns the cheapest valid cover. Both are
// exact only up to the canonical closure: choosing optimal bridge cells
// for disconnected closures is the conjectured-NP-complete core that
// neither solver claims to settle.
package partition

import (
	"fmt"

	"ocpmesh/internal/geometry"
	"ocpmesh/internal/grid"
)

// Cover is a set of disjoint orthogonal convex polygons covering a fault
// set.
type Cover struct {
	// Polygons in canonical order (by smallest member).
	Polygons []*grid.PointSet
}

// Size returns the total number of nodes across the polygons.
func (c *Cover) Size() int {
	n := 0
	for _, p := range c.Polygons {
		n += p.Len()
	}
	return n
}

// NonfaultyCount returns how many covered nodes are not in faults — the
// objective being minimized.
func (c *Cover) NonfaultyCount(faults *grid.PointSet) int {
	n := 0
	for _, p := range c.Polygons {
		p.Each(func(q grid.Point) {
			if !faults.Has(q) {
				n++
			}
		})
	}
	return n
}

// Validate checks the cover: every polygon is an orthogonal convex
// polygon containing at least one fault, polygons are pairwise separated
// (L1 >= 2), and every fault is covered.
func (c *Cover) Validate(faults *grid.PointSet) error {
	covered := grid.NewPointSet()
	for i, p := range c.Polygons {
		if !geometry.IsOrthogonalConvexPolygon(p) {
			return fmt.Errorf("partition: polygon %d is not an orthogonal convex polygon", i)
		}
		hasFault := false
		p.Each(func(q grid.Point) {
			if faults.Has(q) {
				hasFault = true
			}
		})
		if !hasFault {
			return fmt.Errorf("partition: polygon %d covers no fault", i)
		}
		for j := i + 1; j < len(c.Polygons); j++ {
			if !separated(p, c.Polygons[j]) {
				return fmt.Errorf("partition: polygons %d and %d not separated", i, j)
			}
		}
		covered.Union(p)
	}
	missing := faults.Clone().Subtract(covered)
	if missing.Len() != 0 {
		return fmt.Errorf("partition: faults not covered: %v", missing.Points())
	}
	return nil
}

// separated reports whether the polygons are at L1 distance >= 2:
// disjoint and not edge-adjacent (corner-adjacency allowed).
func separated(a, b *grid.PointSet) bool {
	small, big := a, b
	if small.Len() > big.Len() {
		small, big = big, small
	}
	ok := true
	small.Each(func(p grid.Point) {
		if !ok {
			return
		}
		if big.Has(p) {
			ok = false
			return
		}
		for _, q := range p.Neighbors4() {
			if big.Has(q) {
				ok = false
				return
			}
		}
	})
	return ok
}

// Greedy computes a valid cover by closing each 8-connected fault
// cluster separately and merging polygons only while the separation
// constraint is violated. The result is deterministic.
func Greedy(faults *grid.PointSet) *Cover {
	if faults.Len() == 0 {
		return &Cover{}
	}
	groups := geometry.Components8(faults)
	polys := make([]*grid.PointSet, len(groups))
	for i, g := range groups {
		polys[i] = geometry.ConnectedOrthogonalClosure(g)
	}
	for {
		merged := false
	scan:
		for i := 0; i < len(polys); i++ {
			for j := i + 1; j < len(polys); j++ {
				if separated(polys[i], polys[j]) {
					continue
				}
				groups[i].Union(groups[j])
				polys[i] = geometry.ConnectedOrthogonalClosure(groups[i])
				groups = append(groups[:j], groups[j+1:]...)
				polys = append(polys[:j], polys[j+1:]...)
				merged = true
				break scan
			}
		}
		if !merged {
			return &Cover{Polygons: polys}
		}
	}
}

// MaxExactClusters bounds Exact's search: beyond this many fault
// clusters the set-partition space (Bell numbers) is too large and Exact
// returns an error.
const MaxExactClusters = 10

// Exact enumerates every set partition of the 8-connected fault clusters
// and returns the cheapest valid cover (fewest nonfaulty nodes; ties go
// to more polygons, then to the order of enumeration). It errors when
// the cluster count exceeds MaxExactClusters.
func Exact(faults *grid.PointSet) (*Cover, error) {
	if faults.Len() == 0 {
		return &Cover{}, nil
	}
	clusters := geometry.Components8(faults)
	if len(clusters) > MaxExactClusters {
		return nil, fmt.Errorf("partition: %d fault clusters exceed the exact-search bound %d",
			len(clusters), MaxExactClusters)
	}

	var (
		best     *Cover
		bestCost int
	)
	consider := func(blocks [][]int) {
		polys := make([]*grid.PointSet, len(blocks))
		for i, blk := range blocks {
			part := grid.NewPointSet()
			for _, ci := range blk {
				part.Union(clusters[ci])
			}
			polys[i] = geometry.ConnectedOrthogonalClosure(part)
		}
		cover := &Cover{Polygons: polys}
		if cover.Validate(faults) != nil {
			return
		}
		cost := cover.NonfaultyCount(faults)
		if best == nil || cost < bestCost ||
			(cost == bestCost && len(polys) > len(best.Polygons)) {
			best, bestCost = cover, cost
		}
	}

	// Enumerate set partitions via restricted growth strings.
	n := len(clusters)
	assign := make([]int, n)
	var rec func(i, maxUsed int)
	rec = func(i, maxUsed int) {
		if i == n {
			blocks := make([][]int, maxUsed+1)
			for ci, b := range assign {
				blocks[b] = append(blocks[b], ci)
			}
			consider(blocks)
			return
		}
		for b := 0; b <= maxUsed+1 && b < n; b++ {
			assign[i] = b
			next := maxUsed
			if b > maxUsed {
				next = b
			}
			rec(i+1, next)
		}
	}
	assign[0] = 0
	rec(1, 0)

	if best == nil {
		// The all-in-one partition is always valid (a single connected
		// polygon has no separation constraint), so this cannot happen.
		return nil, fmt.Errorf("partition: no valid cover found (internal error)")
	}
	return best, nil
}

// Refine partitions the faults of one disabled region and reports the
// best cover found: Exact when the cluster count permits, Greedy
// otherwise. The returned cover never keeps more nonfaulty nodes than
// the region itself (the region is itself a candidate cover).
func Refine(regionNodes, regionFaults *grid.PointSet) *Cover {
	var cover *Cover
	if exact, err := Exact(regionFaults); err == nil {
		cover = exact
	} else {
		cover = Greedy(regionFaults)
	}
	if cover.Validate(regionFaults) != nil ||
		cover.NonfaultyCount(regionFaults) > regionNodes.Len()-regionFaults.Len() {
		// Fall back to the region itself, split into its 4-connected
		// pieces (each is an orthogonal convex polygon by Theorem 1).
		return &Cover{Polygons: geometry.Components(regionNodes)}
	}
	return cover
}
