// Package fault provides fault-pattern generators and the paper's worked
// fixtures.
//
// The paper's fault model (Section 2): only node faults, fail-stop
// (faulty nodes simply cease to work), no a-priori global knowledge of the
// fault distribution. The simulation section samples f faults uniformly at
// random among the n x n mesh nodes; this package additionally provides
// clustered and shaped patterns (L, T, +, U, H — the non-rectangular
// regions discussed in the introduction) used by the extension
// experiments.
package fault

import (
	"fmt"
	"math/rand"

	"ocpmesh/internal/grid"
	"ocpmesh/internal/mesh"
)

// Generator produces a fault pattern for a given machine.
type Generator interface {
	// Name identifies the generator in experiment output.
	Name() string
	// Generate returns the set of faulty nodes. Every returned point is a
	// machine node of t. Implementations must be deterministic given rng.
	Generate(t *mesh.Topology, rng *rand.Rand) *grid.PointSet
}

// Uniform samples Count distinct faulty nodes uniformly at random, the
// workload of the paper's simulation study.
type Uniform struct {
	Count int
}

// Name implements Generator.
func (u Uniform) Name() string { return fmt.Sprintf("uniform(f=%d)", u.Count) }

// Generate implements Generator. It panics if Count exceeds the machine
// size or is negative.
func (u Uniform) Generate(t *mesh.Topology, rng *rand.Rand) *grid.PointSet {
	if u.Count < 0 || u.Count > t.Size() {
		panic(fmt.Sprintf("fault: uniform count %d out of range [0,%d]", u.Count, t.Size()))
	}
	// Partial Fisher-Yates over node indices.
	idx := make([]int, t.Size())
	for i := range idx {
		idx[i] = i
	}
	s := grid.NewPointSet()
	for i := 0; i < u.Count; i++ {
		j := i + rng.Intn(len(idx)-i)
		idx[i], idx[j] = idx[j], idx[i]
		s.Add(t.PointAt(idx[i]))
	}
	return s
}

// Bernoulli marks each node faulty independently with probability P.
type Bernoulli struct {
	P float64
}

// Name implements Generator.
func (b Bernoulli) Name() string { return fmt.Sprintf("bernoulli(p=%g)", b.P) }

// Generate implements Generator.
func (b Bernoulli) Generate(t *mesh.Topology, rng *rand.Rand) *grid.PointSet {
	if b.P < 0 || b.P > 1 {
		panic(fmt.Sprintf("fault: bernoulli probability %g out of range", b.P))
	}
	s := grid.NewPointSet()
	for _, p := range t.Points() {
		if rng.Float64() < b.P {
			s.Add(p)
		}
	}
	return s
}

// Clustered samples Count faults grouped around Clusters random centers;
// each fault is a center plus a uniform offset in [-Spread, Spread] per
// dimension (clipped to the machine). Clustered faults model correlated
// failures (a failing board or power domain) and stress the labeling rules
// with large faulty blocks.
type Clustered struct {
	Count    int
	Clusters int
	Spread   int
}

// Name implements Generator.
func (c Clustered) Name() string {
	return fmt.Sprintf("clustered(f=%d,k=%d,s=%d)", c.Count, c.Clusters, c.Spread)
}

// Generate implements Generator.
func (c Clustered) Generate(t *mesh.Topology, rng *rand.Rand) *grid.PointSet {
	if c.Count < 0 || c.Count > t.Size() {
		panic(fmt.Sprintf("fault: clustered count %d out of range [0,%d]", c.Count, t.Size()))
	}
	if c.Clusters < 1 || c.Spread < 0 {
		panic("fault: clustered needs Clusters >= 1 and Spread >= 0")
	}
	centers := make([]grid.Point, c.Clusters)
	for i := range centers {
		centers[i] = t.PointAt(rng.Intn(t.Size()))
	}
	clip := func(v, hi int) int {
		if v < 0 {
			return 0
		}
		if v > hi {
			return hi
		}
		return v
	}
	s := grid.NewPointSet()
	for s.Len() < c.Count {
		ctr := centers[rng.Intn(len(centers))]
		p := grid.Pt(
			clip(ctr.X+rng.Intn(2*c.Spread+1)-c.Spread, t.Width()-1),
			clip(ctr.Y+rng.Intn(2*c.Spread+1)-c.Spread, t.Height()-1),
		)
		s.Add(p)
	}
	return s
}

// Fixed returns a predetermined fault pattern, used by fixtures and tests.
type Fixed struct {
	Label  string
	Points []grid.Point
}

// Name implements Generator.
func (f Fixed) Name() string {
	if f.Label != "" {
		return f.Label
	}
	return fmt.Sprintf("fixed(%d)", len(f.Points))
}

// Generate implements Generator. It panics if a point lies outside the
// machine.
func (f Fixed) Generate(t *mesh.Topology, _ *rand.Rand) *grid.PointSet {
	s := grid.NewPointSet()
	for _, p := range f.Points {
		if !t.Contains(p) {
			panic(fmt.Sprintf("fault: fixed point %v outside %v", p, t))
		}
		s.Add(p)
	}
	return s
}

// Walls places Count straight fault segments of the given Length at
// random positions and orientations — a failed backplane row or column.
// Wall faults force long detours and, under Definition 2a, produce
// elongated faulty blocks, stressing the routing experiments.
type Walls struct {
	Count  int
	Length int
}

// Name implements Generator.
func (w Walls) Name() string { return fmt.Sprintf("walls(n=%d,len=%d)", w.Count, w.Length) }

// Generate implements Generator.
func (w Walls) Generate(t *mesh.Topology, rng *rand.Rand) *grid.PointSet {
	if w.Count < 0 || w.Length < 1 {
		panic("fault: walls need Count >= 0 and Length >= 1")
	}
	if w.Length > t.Width() || w.Length > t.Height() {
		panic(fmt.Sprintf("fault: wall of length %d does not fit in %v", w.Length, t))
	}
	out := grid.NewPointSet()
	for i := 0; i < w.Count; i++ {
		horizontal := rng.Intn(2) == 0
		if horizontal {
			x0 := rng.Intn(t.Width() - w.Length + 1)
			y := rng.Intn(t.Height())
			for x := x0; x < x0+w.Length; x++ {
				out.Add(grid.Pt(x, y))
			}
		} else {
			x := rng.Intn(t.Width())
			y0 := rng.Intn(t.Height() - w.Length + 1)
			for y := y0; y < y0+w.Length; y++ {
				out.Add(grid.Pt(x, y))
			}
		}
	}
	return out
}
