package fault

import (
	"fmt"
	"math/rand"
	"sort"

	"ocpmesh/internal/grid"
	"ocpmesh/internal/mesh"
)

// Link is an undirected link between two adjacent machine nodes, stored
// with A canonically less than B.
type Link struct {
	A, B grid.Point
}

// NewLink returns the canonical form of the link between a and b; it
// panics if the endpoints are not distinct points (adjacency is validated
// by the callers against a concrete topology, since torus wrap links look
// non-adjacent in flat coordinates).
func NewLink(a, b grid.Point) Link {
	if a == b {
		panic(fmt.Sprintf("fault: degenerate link at %v", a))
	}
	if b.Less(a) {
		a, b = b, a
	}
	return Link{A: a, B: b}
}

// UniformLinks samples Count distinct faulty links uniformly at random.
// The paper's model considers node faults only, noting that "link faults
// can be treated as node faults"; ConvertLinks performs that reduction.
type UniformLinks struct {
	Count int
}

// Name identifies the generator.
func (u UniformLinks) Name() string { return fmt.Sprintf("uniform-links(l=%d)", u.Count) }

// GenerateLinks returns Count distinct faulty links of t.
func (u UniformLinks) GenerateLinks(t *mesh.Topology, rng *rand.Rand) []Link {
	all := AllLinks(t)
	if u.Count < 0 || u.Count > len(all) {
		panic(fmt.Sprintf("fault: link count %d out of range [0,%d]", u.Count, len(all)))
	}
	for i := 0; i < u.Count; i++ {
		j := i + rng.Intn(len(all)-i)
		all[i], all[j] = all[j], all[i]
	}
	return all[:u.Count]
}

// Generate implements Generator by reducing the sampled link faults to
// node faults.
func (u UniformLinks) Generate(t *mesh.Topology, rng *rand.Rand) *grid.PointSet {
	return ConvertLinks(u.GenerateLinks(t, rng))
}

// AllLinks enumerates every link of the machine exactly once, in
// canonical order.
func AllLinks(t *mesh.Topology) []Link {
	seen := make(map[Link]bool)
	var out []Link
	for _, p := range t.Points() {
		for _, d := range mesh.Directions {
			if q, ok := t.NeighborIn(p, d); ok {
				l := NewLink(p, q)
				if !seen[l] {
					seen[l] = true
					out = append(out, l)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A.Less(out[j].A)
		}
		return out[i].B.Less(out[j].B)
	})
	return out
}

// ConvertLinks reduces link faults to node faults per the paper's remark:
// a faulty link is modeled by treating one of its endpoints as faulty
// (the node then never uses any of its links). The reduction is a greedy
// vertex cover — repeatedly fault the endpoint incident to the most
// still-uncovered faulty links — so it sacrifices few nodes and is
// deterministic (ties break on canonical point order).
func ConvertLinks(links []Link) *grid.PointSet {
	uncovered := make(map[Link]bool, len(links))
	degree := make(map[grid.Point]int)
	for _, l := range links {
		if !uncovered[l] {
			uncovered[l] = true
			degree[l.A]++
			degree[l.B]++
		}
	}
	out := grid.NewPointSet()
	for len(uncovered) > 0 {
		// Highest degree first; canonical order breaks ties.
		var best grid.Point
		bestDeg := -1
		for p, deg := range degree {
			if deg > bestDeg || (deg == bestDeg && p.Less(best)) {
				best, bestDeg = p, deg
			}
		}
		out.Add(best)
		for l := range uncovered {
			if l.A == best || l.B == best {
				delete(uncovered, l)
				degree[l.A]--
				degree[l.B]--
			}
		}
		delete(degree, best)
	}
	return out
}
