package fault

import (
	"ocpmesh/internal/grid"
	"ocpmesh/internal/mesh"
)

// Fixture is a named fault pattern on a fixed machine, reproducing one of
// the paper's worked examples.
type Fixture struct {
	Name   string
	Topo   *mesh.Topology
	Faults *grid.PointSet
	// Doc summarizes what the paper says this configuration shows.
	Doc string
}

// SectionThreeExample is the worked example at the end of the paper's
// Section 3: a 2-D mesh with three faulty nodes (1,3), (2,1) and (3,2).
// Under the safe/unsafe rule (Definition 2b) one faulty block
// {(i,j) | i,j in {1,2,3}} is constructed; under the enabled/disabled rule
// the block splits into the disabled regions {(1,3)} and {(2,1),(3,2)}
// with every nonfaulty node of the block enabled.
//
// Note the paper groups the diagonally adjacent disabled nodes (2,1) and
// (3,2) into one region — region extraction therefore supports
// 8-connectivity (corner-touching regions merge), consistent with the
// paper's remark that two diagonal faults are contained in a single
// region.
func SectionThreeExample() Fixture {
	return Fixture{
		Name:   "section3",
		Topo:   mesh.MustNew(5, 5, mesh.Mesh2D),
		Faults: grid.PointSetOf(grid.Pt(1, 3), grid.Pt(2, 1), grid.Pt(3, 2)),
		Doc: "three faults -> one 3x3 faulty block (Def 2b) -> disabled regions " +
			"{(1,3)} and {(2,1),(3,2)}, all nonfaulty nodes enabled",
	}
}

// Figure1 reproduces the structure of the paper's Figure 1: a fault
// pattern whose faulty block under Definition 2a is a single rectangle
// containing many nonfaulty (gray) nodes, splits into two smaller blocks
// under Definition 2b, and shrinks to two small disabled regions under the
// enabled/disabled rule of Definition 3.
//
// The exact node pattern of Figure 1 is not recoverable from the paper
// text (the figure is graphical); this fixture is a minimal pattern
// exhibiting all the relationships the figure illustrates, with the
// expected outcomes derivable by hand:
//
//   - Def 2a block: [2..5]x[2..3] (one 4x2 rectangle, 5 nonfaulty unsafe).
//   - Def 2b blocks: [2..3]x[2..3] and {(5,3)} at distance 2.
//   - Disabled regions (either pipeline): {(2,2),(3,3)} and {(5,3)}.
func Figure1() Fixture {
	return Fixture{
		Name:   "figure1",
		Topo:   mesh.MustNew(10, 10, mesh.Mesh2D),
		Faults: grid.PointSetOf(grid.Pt(2, 2), grid.Pt(3, 3), grid.Pt(5, 3)),
		Doc: "Def 2a merges all three faults into one 4x2 block; Def 2b yields " +
			"two blocks; Def 3 keeps only the faults (plus diagonal grouping) disabled",
	}
}

// figure2Block is the faulty block rectangle shared by both Figure 2
// fixtures.
var figure2Block = grid.NewRect(2, 2, 6, 5)

// Figure2Block returns the faulty block rectangle of the Figure 2
// fixtures.
func Figure2Block() grid.Rect { return figure2Block }

// Figure2A reproduces the paper's Figure 2(a): a faulty block whose upper
// RIGHT 2x2 sub-block contains only nonfaulty nodes, all remaining block
// nodes faulty. Starting from the corner (which sees two enabled neighbors
// outside the block) the enabled/disabled rule iteratively enables the
// whole nonfaulty sub-block; the disabled region is the block minus that
// corner — still an orthogonal convex polygon.
func Figure2A() Fixture {
	hole := grid.PointSetOf(grid.Pt(5, 4), grid.Pt(6, 4), grid.Pt(5, 5), grid.Pt(6, 5))
	faults := grid.NewPointSet()
	for _, p := range figure2Block.Points() {
		if !hole.Has(p) {
			faults.Add(p)
		}
	}
	return Fixture{
		Name:   "figure2a",
		Topo:   mesh.MustNew(10, 10, mesh.Mesh2D),
		Faults: faults,
		Doc:    "nonfaulty 2x2 sub-block in the upper right corner gets enabled",
	}
}

// Figure2AHole returns the nonfaulty sub-block of Figure2A.
func Figure2AHole() *grid.PointSet {
	return grid.PointSetOf(grid.Pt(5, 4), grid.Pt(6, 4), grid.Pt(5, 5), grid.Pt(6, 5))
}

// Figure2B reproduces the paper's Figure 2(b): the nonfaulty 2x2 sub-block
// sits at the upper CENTER of the block. Under the monotone Definition 3
// every node of the block stays disabled (each nonfaulty node sees at most
// one enabled neighbor — the one to the north, outside the block). Under
// the naive recursive definition the four nonfaulty nodes admit both an
// all-enabled and an all-disabled consistent assignment: the "double
// status" problem that motivates Definition 3's initialization.
func Figure2B() Fixture {
	hole := Figure2BHole()
	faults := grid.NewPointSet()
	for _, p := range figure2Block.Points() {
		if !hole.Has(p) {
			faults.Add(p)
		}
	}
	return Fixture{
		Name:   "figure2b",
		Topo:   mesh.MustNew(10, 10, mesh.Mesh2D),
		Faults: faults,
		Doc:    "nonfaulty 2x2 sub-block at the upper center has double status under the recursive rule",
	}
}

// Figure2BHole returns the nonfaulty sub-block of Figure2B.
func Figure2BHole() *grid.PointSet {
	return grid.PointSetOf(grid.Pt(3, 4), grid.Pt(4, 4), grid.Pt(3, 5), grid.Pt(4, 5))
}

// Fixtures returns every named fixture.
func Fixtures() []Fixture {
	return []Fixture{SectionThreeExample(), Figure1(), Figure2A(), Figure2B()}
}

// ByName returns the fixture with the given name and true, or a zero
// fixture and false.
func ByName(name string) (Fixture, bool) {
	for _, f := range Fixtures() {
		if f.Name == name {
			return f, true
		}
	}
	return Fixture{}, false
}
