package fault

import (
	"fmt"
	"math/rand"

	"ocpmesh/internal/grid"
	"ocpmesh/internal/mesh"
)

// ShapeKind enumerates the non-rectangular fault-region shapes discussed
// in the paper's introduction ([2], [8]): H-shape, L-shape, T-shape,
// U-shape and +-shape. T, L and + are orthogonal convex polygons; U and H
// are not.
type ShapeKind int

// The shape kinds.
const (
	ShapeL ShapeKind = iota
	ShapeT
	ShapePlus
	ShapeU
	ShapeH
)

// String returns the shape name.
func (k ShapeKind) String() string {
	switch k {
	case ShapeL:
		return "L"
	case ShapeT:
		return "T"
	case ShapePlus:
		return "+"
	case ShapeU:
		return "U"
	case ShapeH:
		return "H"
	default:
		return fmt.Sprintf("ShapeKind(%d)", int(k))
	}
}

// OrthogonallyConvex reports whether the shape kind is an orthogonal
// convex polygon (the paper's classification in Section 2).
func (k ShapeKind) OrthogonallyConvex() bool {
	switch k {
	case ShapeL, ShapeT, ShapePlus:
		return true
	default:
		return false
	}
}

// ShapePoints returns the fault pattern of the given kind with arm length
// arm >= 1, anchored so its bounding box has min corner at origin. Every
// shape fits in a (2*arm+1) square or smaller.
func ShapePoints(kind ShapeKind, origin grid.Point, arm int) []grid.Point {
	if arm < 1 {
		panic("fault: shape arm must be >= 1")
	}
	var pts []grid.Point
	add := func(x, y int) { pts = append(pts, origin.Add(grid.Pt(x, y))) }
	n := 2*arm + 1
	switch kind {
	case ShapeL:
		// Vertical bar on the left column, horizontal bar on the bottom row.
		for y := 0; y < n; y++ {
			add(0, y)
		}
		for x := 1; x < n; x++ {
			add(x, 0)
		}
	case ShapeT:
		// Horizontal bar on the top row, stem down the middle column.
		for x := 0; x < n; x++ {
			add(x, n-1)
		}
		for y := 0; y < n-1; y++ {
			add(arm, y)
		}
	case ShapePlus:
		for x := 0; x < n; x++ {
			add(x, arm)
		}
		for y := 0; y < n; y++ {
			if y != arm {
				add(arm, y)
			}
		}
	case ShapeU:
		// Two vertical bars joined by the bottom row.
		for y := 0; y < n; y++ {
			add(0, y)
			add(n-1, y)
		}
		for x := 1; x < n-1; x++ {
			add(x, 0)
		}
	case ShapeH:
		// Two vertical bars joined by the middle row.
		for y := 0; y < n; y++ {
			add(0, y)
			add(n-1, y)
		}
		for x := 1; x < n-1; x++ {
			add(x, arm)
		}
	default:
		panic(fmt.Sprintf("fault: unknown shape kind %d", int(kind)))
	}
	return pts
}

// Shaped places Count copies of the given shape at random origins (fully
// inside the machine). Overlapping shapes simply merge.
type Shaped struct {
	Kind  ShapeKind
	Arm   int
	Count int
}

// Name implements Generator.
func (s Shaped) Name() string {
	return fmt.Sprintf("shaped(%v,arm=%d,n=%d)", s.Kind, s.Arm, s.Count)
}

// Generate implements Generator.
func (s Shaped) Generate(t *mesh.Topology, rng *rand.Rand) *grid.PointSet {
	if s.Count < 0 {
		panic("fault: shaped count must be >= 0")
	}
	arm := s.Arm
	if arm < 1 {
		arm = 1
	}
	side := 2*arm + 1
	if side > t.Width() || side > t.Height() {
		panic(fmt.Sprintf("fault: shape of side %d does not fit in %v", side, t))
	}
	out := grid.NewPointSet()
	for i := 0; i < s.Count; i++ {
		origin := grid.Pt(rng.Intn(t.Width()-side+1), rng.Intn(t.Height()-side+1))
		out.AddAll(ShapePoints(s.Kind, origin, arm)...)
	}
	return out
}
