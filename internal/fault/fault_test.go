package fault

import (
	"math/rand"
	"testing"

	"ocpmesh/internal/geometry"
	"ocpmesh/internal/grid"
	"ocpmesh/internal/mesh"
)

func TestUniformGenerate(t *testing.T) {
	m := mesh.MustNew(10, 10, mesh.Mesh2D)
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 17, 100} {
		s := Uniform{Count: n}.Generate(m, rng)
		if s.Len() != n {
			t.Fatalf("uniform(%d) produced %d faults", n, s.Len())
		}
		for _, p := range s.Points() {
			if !m.Contains(p) {
				t.Fatalf("fault %v outside machine", p)
			}
		}
	}
}

func TestUniformDeterministic(t *testing.T) {
	m := mesh.MustNew(20, 20, mesh.Mesh2D)
	a := Uniform{Count: 30}.Generate(m, rand.New(rand.NewSource(7)))
	b := Uniform{Count: 30}.Generate(m, rand.New(rand.NewSource(7)))
	if !a.Equal(b) {
		t.Fatal("same seed must give same faults")
	}
	c := Uniform{Count: 30}.Generate(m, rand.New(rand.NewSource(8)))
	if a.Equal(c) {
		t.Fatal("different seeds should (overwhelmingly) differ")
	}
}

func TestUniformPanics(t *testing.T) {
	m := mesh.MustNew(3, 3, mesh.Mesh2D)
	defer func() {
		if recover() == nil {
			t.Fatal("count > size must panic")
		}
	}()
	Uniform{Count: 10}.Generate(m, rand.New(rand.NewSource(1)))
}

func TestUniformCoversUniformly(t *testing.T) {
	// Sanity: with many draws, every node is selected at least once.
	m := mesh.MustNew(5, 5, mesh.Mesh2D)
	rng := rand.New(rand.NewSource(3))
	seen := grid.NewPointSet()
	for i := 0; i < 200; i++ {
		seen.Union(Uniform{Count: 5}.Generate(m, rng))
	}
	if seen.Len() != m.Size() {
		t.Fatalf("after 200 draws only %d/%d nodes seen", seen.Len(), m.Size())
	}
}

func TestBernoulli(t *testing.T) {
	m := mesh.MustNew(30, 30, mesh.Mesh2D)
	rng := rand.New(rand.NewSource(5))
	if got := (Bernoulli{P: 0}).Generate(m, rng); got.Len() != 0 {
		t.Fatal("p=0 must give no faults")
	}
	if got := (Bernoulli{P: 1}).Generate(m, rng); got.Len() != m.Size() {
		t.Fatal("p=1 must fault every node")
	}
	got := (Bernoulli{P: 0.1}).Generate(m, rng)
	if got.Len() == 0 || got.Len() > m.Size()/2 {
		t.Fatalf("p=0.1 gave implausible count %d", got.Len())
	}
}

func TestBernoulliPanics(t *testing.T) {
	m := mesh.MustNew(3, 3, mesh.Mesh2D)
	defer func() {
		if recover() == nil {
			t.Fatal("p out of range must panic")
		}
	}()
	Bernoulli{P: 1.5}.Generate(m, rand.New(rand.NewSource(1)))
}

func TestClustered(t *testing.T) {
	m := mesh.MustNew(40, 40, mesh.Mesh2D)
	rng := rand.New(rand.NewSource(9))
	g := Clustered{Count: 50, Clusters: 2, Spread: 3}
	s := g.Generate(m, rng)
	if s.Len() != 50 {
		t.Fatalf("clustered count = %d", s.Len())
	}
	for _, p := range s.Points() {
		if !m.Contains(p) {
			t.Fatalf("clustered fault %v outside machine", p)
		}
	}
	// Clustered faults should occupy a much smaller bounding area than 50
	// uniform faults on a 40x40 mesh would (expected ~whole mesh).
	if area := s.Bounds().Area(); area > m.Size()/2 {
		t.Logf("warning: clustered bounds unexpectedly large: %d", area)
	}
}

func TestClusteredPanics(t *testing.T) {
	m := mesh.MustNew(5, 5, mesh.Mesh2D)
	defer func() {
		if recover() == nil {
			t.Fatal("zero clusters must panic")
		}
	}()
	Clustered{Count: 3, Clusters: 0, Spread: 1}.Generate(m, rand.New(rand.NewSource(1)))
}

func TestFixed(t *testing.T) {
	m := mesh.MustNew(5, 5, mesh.Mesh2D)
	g := Fixed{Points: []grid.Point{grid.Pt(1, 1), grid.Pt(2, 2)}}
	s := g.Generate(m, nil)
	if s.Len() != 2 || !s.Has(grid.Pt(1, 1)) {
		t.Fatalf("fixed = %v", s.Points())
	}
	if g.Name() != "fixed(2)" {
		t.Fatalf("Name = %q", g.Name())
	}
	if (Fixed{Label: "x", Points: nil}).Name() != "x" {
		t.Fatal("labeled Name wrong")
	}
}

func TestFixedPanicsOutside(t *testing.T) {
	m := mesh.MustNew(3, 3, mesh.Mesh2D)
	defer func() {
		if recover() == nil {
			t.Fatal("outside point must panic")
		}
	}()
	Fixed{Points: []grid.Point{grid.Pt(5, 5)}}.Generate(m, nil)
}

func TestGeneratorNames(t *testing.T) {
	tests := []struct {
		g    Generator
		want string
	}{
		{Uniform{Count: 7}, "uniform(f=7)"},
		{Bernoulli{P: 0.25}, "bernoulli(p=0.25)"},
		{Clustered{Count: 9, Clusters: 2, Spread: 3}, "clustered(f=9,k=2,s=3)"},
		{Shaped{Kind: ShapeU, Arm: 2, Count: 1}, "shaped(U,arm=2,n=1)"},
	}
	for _, tt := range tests {
		if got := tt.g.Name(); got != tt.want {
			t.Errorf("Name = %q, want %q", got, tt.want)
		}
	}
}

func TestShapePointsConvexity(t *testing.T) {
	for _, kind := range []ShapeKind{ShapeL, ShapeT, ShapePlus, ShapeU, ShapeH} {
		for arm := 1; arm <= 3; arm++ {
			s := grid.PointSetOf(ShapePoints(kind, grid.Pt(0, 0), arm)...)
			if !geometry.IsConnected(s) {
				t.Errorf("%v arm=%d not connected", kind, arm)
			}
			if got := geometry.IsOrthogonallyConvex(s); got != kind.OrthogonallyConvex() {
				t.Errorf("%v arm=%d: IsOrthogonallyConvex = %t, want %t (paper classification)",
					kind, arm, got, kind.OrthogonallyConvex())
			}
		}
	}
}

func TestShapePointsNoDuplicates(t *testing.T) {
	for _, kind := range []ShapeKind{ShapeL, ShapeT, ShapePlus, ShapeU, ShapeH} {
		pts := ShapePoints(kind, grid.Pt(3, 3), 2)
		s := grid.PointSetOf(pts...)
		if s.Len() != len(pts) {
			t.Errorf("%v: duplicate points in shape (%d unique of %d)", kind, s.Len(), len(pts))
		}
		b := s.Bounds()
		if b.MinX != 3 || b.MinY != 3 {
			t.Errorf("%v: shape not anchored at origin: %v", kind, b)
		}
	}
}

func TestShapedGenerate(t *testing.T) {
	m := mesh.MustNew(20, 20, mesh.Mesh2D)
	rng := rand.New(rand.NewSource(2))
	s := Shaped{Kind: ShapeH, Arm: 2, Count: 3}.Generate(m, rng)
	if s.Len() == 0 {
		t.Fatal("shaped produced no faults")
	}
	for _, p := range s.Points() {
		if !m.Contains(p) {
			t.Fatalf("shaped fault %v outside machine", p)
		}
	}
}

func TestShapeKindString(t *testing.T) {
	want := map[ShapeKind]string{ShapeL: "L", ShapeT: "T", ShapePlus: "+", ShapeU: "U", ShapeH: "H"}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("String(%d) = %q", int(k), k.String())
		}
	}
	if ShapeKind(99).String() != "ShapeKind(99)" {
		t.Error("unknown kind string wrong")
	}
}

func TestFixtures(t *testing.T) {
	fs := Fixtures()
	if len(fs) != 4 {
		t.Fatalf("Fixtures len = %d", len(fs))
	}
	names := map[string]bool{}
	for _, f := range fs {
		if names[f.Name] {
			t.Fatalf("duplicate fixture name %q", f.Name)
		}
		names[f.Name] = true
		for _, p := range f.Faults.Points() {
			if !f.Topo.Contains(p) {
				t.Fatalf("fixture %q fault %v outside machine", f.Name, p)
			}
		}
		if f.Doc == "" {
			t.Fatalf("fixture %q missing doc", f.Name)
		}
	}
	if _, ok := ByName("figure1"); !ok {
		t.Fatal("ByName(figure1) failed")
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("ByName(nope) should fail")
	}
}

func TestFigure2FixtureGeometry(t *testing.T) {
	// The faults of Figure 2(a)/(b) are the block minus a 2x2 hole; holes
	// must be disjoint from faults and inside the block.
	for _, tt := range []struct {
		fix  Fixture
		hole *grid.PointSet
	}{
		{Figure2A(), Figure2AHole()},
		{Figure2B(), Figure2BHole()},
	} {
		block := Figure2Block()
		if tt.fix.Faults.Len() != block.Area()-4 {
			t.Fatalf("%s: fault count = %d", tt.fix.Name, tt.fix.Faults.Len())
		}
		for _, p := range tt.hole.Points() {
			if !block.Contains(p) {
				t.Fatalf("%s: hole %v outside block", tt.fix.Name, p)
			}
			if tt.fix.Faults.Has(p) {
				t.Fatalf("%s: hole %v marked faulty", tt.fix.Name, p)
			}
		}
	}
}

func TestWallsGenerate(t *testing.T) {
	m := mesh.MustNew(20, 20, mesh.Mesh2D)
	rng := rand.New(rand.NewSource(10))
	s := Walls{Count: 3, Length: 6}.Generate(m, rng)
	if s.Len() == 0 || s.Len() > 18 {
		t.Fatalf("walls produced %d faults", s.Len())
	}
	for _, p := range s.Points() {
		if !m.Contains(p) {
			t.Fatalf("wall fault %v outside machine", p)
		}
	}
	if (Walls{Count: 2, Length: 5}).Name() != "walls(n=2,len=5)" {
		t.Fatal("walls name wrong")
	}
	if got := (Walls{Count: 0, Length: 3}).Generate(m, rng); got.Len() != 0 {
		t.Fatal("zero walls must give no faults")
	}
}

func TestWallsPanics(t *testing.T) {
	m := mesh.MustNew(4, 4, mesh.Mesh2D)
	defer func() {
		if recover() == nil {
			t.Fatal("oversized wall must panic")
		}
	}()
	Walls{Count: 1, Length: 9}.Generate(m, rand.New(rand.NewSource(1)))
}
