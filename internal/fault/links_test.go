package fault

import (
	"math/rand"
	"testing"

	"ocpmesh/internal/grid"
	"ocpmesh/internal/mesh"
)

func TestNewLinkCanonical(t *testing.T) {
	l1 := NewLink(grid.Pt(1, 0), grid.Pt(0, 0))
	l2 := NewLink(grid.Pt(0, 0), grid.Pt(1, 0))
	if l1 != l2 {
		t.Fatal("link canonicalization broken")
	}
	if !l1.A.Less(l1.B) {
		t.Fatal("A must be the smaller endpoint")
	}
}

func TestNewLinkPanicsOnDegenerate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("self link must panic")
		}
	}()
	NewLink(grid.Pt(1, 1), grid.Pt(1, 1))
}

func TestAllLinksCount(t *testing.T) {
	// A w x h mesh has w(h-1) + h(w-1) links; a torus has 2wh.
	m := mesh.MustNew(4, 3, mesh.Mesh2D)
	if got, want := len(AllLinks(m)), 4*2+3*3; got != want {
		t.Fatalf("mesh links = %d, want %d", got, want)
	}
	tor := mesh.MustNew(4, 3, mesh.Torus2D)
	if got, want := len(AllLinks(tor)), 2*4*3; got != want {
		t.Fatalf("torus links = %d, want %d", got, want)
	}
	// No duplicates, canonical order.
	links := AllLinks(m)
	seen := map[Link]bool{}
	for _, l := range links {
		if seen[l] {
			t.Fatalf("duplicate link %v", l)
		}
		seen[l] = true
	}
}

func TestUniformLinksGenerate(t *testing.T) {
	m := mesh.MustNew(6, 6, mesh.Mesh2D)
	rng := rand.New(rand.NewSource(4))
	g := UniformLinks{Count: 10}
	links := g.GenerateLinks(m, rng)
	if len(links) != 10 {
		t.Fatalf("links = %d", len(links))
	}
	seen := map[Link]bool{}
	for _, l := range links {
		if seen[l] {
			t.Fatalf("duplicate sampled link %v", l)
		}
		seen[l] = true
		if l.A.Dist(l.B) != 1 {
			t.Fatalf("non-adjacent mesh link %v", l)
		}
	}
	if g.Name() != "uniform-links(l=10)" {
		t.Fatalf("name = %q", g.Name())
	}
}

func TestConvertLinksCovers(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := mesh.MustNew(8, 8, mesh.Mesh2D)
	for trial := 0; trial < 50; trial++ {
		links := UniformLinks{Count: rng.Intn(20)}.GenerateLinks(m, rng)
		nodes := ConvertLinks(links)
		for _, l := range links {
			if !nodes.Has(l.A) && !nodes.Has(l.B) {
				t.Fatalf("trial %d: link %v uncovered", trial, l)
			}
		}
		if nodes.Len() > len(links) {
			t.Fatalf("trial %d: cover larger than link count", trial)
		}
	}
}

func TestConvertLinksGreedySharesEndpoints(t *testing.T) {
	// A star of three links around one hub must cost exactly one node.
	hub := grid.Pt(3, 3)
	links := []Link{
		NewLink(hub, grid.Pt(2, 3)),
		NewLink(hub, grid.Pt(4, 3)),
		NewLink(hub, grid.Pt(3, 2)),
	}
	nodes := ConvertLinks(links)
	if nodes.Len() != 1 || !nodes.Has(hub) {
		t.Fatalf("greedy cover = %v, want just the hub", nodes.Points())
	}
	// Duplicate links collapse.
	dup := ConvertLinks([]Link{links[0], links[0]})
	if dup.Len() != 1 {
		t.Fatalf("duplicate links cover = %v", dup.Points())
	}
	if got := ConvertLinks(nil); got.Len() != 0 {
		t.Fatal("empty conversion must be empty")
	}
}

func TestUniformLinksAsNodeGenerator(t *testing.T) {
	m := mesh.MustNew(10, 10, mesh.Mesh2D)
	rng := rand.New(rand.NewSource(6))
	s := UniformLinks{Count: 15}.Generate(m, rng)
	if s.Len() == 0 || s.Len() > 15 {
		t.Fatalf("node faults = %d", s.Len())
	}
	for _, p := range s.Points() {
		if !m.Contains(p) {
			t.Fatalf("fault %v outside machine", p)
		}
	}
}

func TestUniformLinksPanics(t *testing.T) {
	m := mesh.MustNew(3, 3, mesh.Mesh2D)
	defer func() {
		if recover() == nil {
			t.Fatal("oversized link count must panic")
		}
	}()
	UniformLinks{Count: 1000}.GenerateLinks(m, rand.New(rand.NewSource(1)))
}
