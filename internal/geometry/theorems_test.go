package geometry

import (
	"math/rand"
	"testing"

	"ocpmesh/internal/grid"
)

// TestTheorem1Cases walks the case analysis of the paper's Theorem 1
// proof (illustrated by Figure 3): a horizontal line [v1,v2] through a
// would-be-concave disabled region partitions the enabled region ER
// containing the gap node u into ER1 and ER2, and the contradiction
// depends on whether those enabled sub-regions have "openings" (nodes
// with a neighbor outside the original faulty block).
func TestTheorem1Cases(t *testing.T) {
	// The original faulty block: a 5x5 rectangle at [0..4]x[0..4].
	block := grid.PointSetOf(grid.NewRect(0, 0, 4, 4).Points()...)

	// Case (a) of Figure 3: an enabled region strictly inside the block —
	// neither ER1 nor ER2 has an opening.
	er := grid.PointSetOf(grid.Pt(2, 1), grid.Pt(2, 2), grid.Pt(2, 3))
	line := grid.PointSetOf(grid.Pt(1, 2), grid.Pt(2, 2), grid.Pt(3, 2)) // [v1,v2] with u=(2,2)
	er1 := er.Clone().Subtract(line)                                     // below/above split
	er1.Intersect(grid.PointSetOf(grid.Pt(2, 1)))
	er2 := grid.PointSetOf(grid.Pt(2, 3))
	if HasOpening(er1, block) || HasOpening(er2, block) {
		t.Fatal("case (a): strictly interior sub-regions must have no opening")
	}
	// Per the enabled/disabled rule such interior enabled regions cannot
	// exist (their nodes would all be disabled) — the contradiction the
	// proof derives. Here we only verify the geometric predicate.

	// Case (b): ER1 interior, ER2 reaching the block boundary.
	er2b := grid.PointSetOf(grid.Pt(2, 3), grid.Pt(2, 4))
	if !HasOpening(er2b, block) {
		t.Fatal("case (b): a sub-region touching the block boundary has an opening")
	}
	if got := OpeningPoints(er2b, block); len(got) != 1 || got[0] != grid.Pt(2, 4) {
		t.Fatalf("case (b): opening points = %v", got)
	}

	// Case (c): both ER1 and ER2 have openings; then an enabled path from
	// opening w1 through u to opening w2 disconnects the disabled region.
	// Build exactly that: a vertical enabled corridor through the block.
	corridor := grid.NewPointSet()
	for y := 0; y <= 4; y++ {
		corridor.Add(grid.Pt(2, y))
	}
	if !HasOpening(corridor, block) {
		t.Fatal("case (c): the corridor reaches the boundary on both ends")
	}
	disabled := block.Clone().Subtract(corridor)
	comps := Components(disabled)
	if len(comps) != 2 {
		t.Fatalf("case (c): corridor must split the region in two, got %d components", len(comps))
	}
	// ... contradicting the assumed connectivity of the disabled region.
}

// TestTheorem2QuadrantArgument encodes the proof of Theorem 2
// (illustrated by Figure 4): if a smaller orthogonal convex polygon B2
// covered all faults, some region node u would lie outside B2; then some
// closed quadrant around u contains no B2 node (Lemma 3) yet does contain
// a corner node of the region (Lemma 2) — and corner nodes are faulty
// (Lemma 1), so B2 misses a fault.
func TestTheorem2QuadrantArgument(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 100; trial++ {
		// Build a random orthogonal convex polygon B.
		seed := grid.NewPointSet()
		for i := 0; i < 1+rng.Intn(7); i++ {
			seed.Add(grid.Pt(rng.Intn(9), rng.Intn(9)))
		}
		b := ConnectedOrthogonalClosure(seed)
		// Candidate B2: drop one node from B (if that keeps it a polygon,
		// it is a genuine smaller competitor).
		pts := b.Points()
		u := pts[rng.Intn(len(pts))]
		b2 := b.Clone()
		b2.Remove(u)
		if !IsOrthogonalConvexPolygon(b2) {
			continue // not a valid competitor; pick another trial
		}
		// Lemma 3: at least one quadrant of u contains no node of B2.
		emptyQuadrant := false
		for _, q := range grid.Quadrants {
			hasNode := false
			for _, p := range b2.Points() {
				if q.Contains(u, p) {
					hasNode = true
					break
				}
			}
			if !hasNode {
				emptyQuadrant = true
				// Lemma 2: that same quadrant contains a corner node of B.
				cornerInQuadrant := false
				for _, c := range CornerNodes(b) {
					if q.Contains(u, c) {
						cornerInQuadrant = true
						break
					}
				}
				if !cornerInQuadrant {
					t.Fatalf("trial %d: empty quadrant %v of %v lacks a corner of B=%v",
						trial, q, u, b.Points())
				}
			}
		}
		if !emptyQuadrant {
			t.Fatalf("trial %d: Lemma 3 violated: u=%v outside B2=%v but every quadrant hits B2",
				trial, u, b2.Points())
		}
	}
}

// Lemma 3 directly: for a node u outside an orthogonal convex polygon B,
// at least one closed quadrant around u contains no node of B.
func TestLemma3(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 200; trial++ {
		seed := grid.NewPointSet()
		for i := 0; i < 1+rng.Intn(6); i++ {
			seed.Add(grid.Pt(rng.Intn(8), rng.Intn(8)))
		}
		b := ConnectedOrthogonalClosure(seed)
		u := grid.Pt(rng.Intn(10)-1, rng.Intn(10)-1)
		if b.Has(u) {
			continue
		}
		empty := 0
		for _, q := range grid.Quadrants {
			hasNode := false
			b.Each(func(p grid.Point) {
				if q.Contains(u, p) {
					hasNode = true
				}
			})
			if !hasNode {
				empty++
			}
		}
		if empty == 0 {
			t.Fatalf("trial %d: u=%v outside B=%v but all quadrants contain B nodes",
				trial, u, b.Points())
		}
	}
}
