package geometry

import "ocpmesh/internal/grid"

// IsOrthogonallyConvex reports whether s satisfies the paper's
// Definition 1: for any horizontal or vertical line, if two nodes on the
// line are inside the region then all nodes between them are inside the
// region. Equivalently, every occupied row and every occupied column of s
// is a single contiguous run.
//
// Note that orthogonal convexity alone does not imply connectivity; the
// paper's regions are additionally 4-connected (see IsOrthogonalConvexPolygon).
func IsOrthogonallyConvex(s *grid.PointSet) bool {
	for _, ivs := range RowIntervals(s) {
		if len(ivs) > 1 {
			return false
		}
	}
	for _, ivs := range ColIntervals(s) {
		if len(ivs) > 1 {
			return false
		}
	}
	return true
}

// IsOrthogonalConvexPolygon reports whether s is an orthogonal convex
// polygon in the paper's sense: nonempty, 4-connected and orthogonally
// convex.
func IsOrthogonalConvexPolygon(s *grid.PointSet) bool {
	return s.Len() > 0 && IsConnected(s) && IsOrthogonallyConvex(s)
}

// IsRectangle reports whether s is exactly the set of lattice points of
// its bounding rectangle. The empty set is not a rectangle.
func IsRectangle(s *grid.PointSet) bool {
	b := s.Bounds()
	if b.IsEmpty() {
		return false
	}
	return s.Len() == b.Area()
}

// OrthogonalClosure returns the smallest orthogonally convex superset of
// s: the fixpoint of filling, in every row and column, the gap between the
// extreme occupied cells. The result is the rectilinear convex hull of s
// restricted to the lattice (connectivity is not enforced; see
// ConnectedOrthogonalClosure).
func OrthogonalClosure(s *grid.PointSet) *grid.PointSet {
	out := s.Clone()
	for {
		changed := false
		for y, ivs := range RowIntervals(out) {
			if len(ivs) <= 1 {
				continue
			}
			lo, hi := ivs[0].Lo, ivs[len(ivs)-1].Hi
			for x := lo; x <= hi; x++ {
				if out.Add(grid.Pt(x, y)) {
					changed = true
				}
			}
		}
		for x, ivs := range ColIntervals(out) {
			if len(ivs) <= 1 {
				continue
			}
			lo, hi := ivs[0].Lo, ivs[len(ivs)-1].Hi
			for y := lo; y <= hi; y++ {
				if out.Add(grid.Pt(x, y)) {
					changed = true
				}
			}
		}
		if !changed {
			return out
		}
	}
}

// ConnectedOrthogonalClosure returns a canonical connected orthogonally
// convex superset of s. It repeatedly applies OrthogonalClosure and, while
// the result is disconnected, joins the two closest components with an
// L-shaped lattice path (x-leg first, between the lexicographically
// smallest closest pair), then closes again.
//
// The result is a valid "orthogonal convex polygon containing s" in the
// sense of Theorem 2's competitor B2. It is canonical and deterministic
// but not guaranteed minimum — the paper notes that finding the minimum
// set of such polygons is conjectured NP-complete [3].
func ConnectedOrthogonalClosure(s *grid.PointSet) *grid.PointSet {
	if s.Len() == 0 {
		return grid.NewPointSet()
	}
	out := OrthogonalClosure(s)
	for {
		comps := Components(out)
		if len(comps) == 1 {
			return out
		}
		a, b := closestPair(comps)
		for _, p := range lPath(a, b) {
			out.Add(p)
		}
		out = OrthogonalClosure(out)
	}
}

// closestPair returns the lexicographically smallest pair of points
// (one from each of two distinct components) realizing the minimum
// inter-component L1 distance.
func closestPair(comps []*grid.PointSet) (grid.Point, grid.Point) {
	best := 1 << 30
	var ba, bb grid.Point
	found := false
	for i := 0; i < len(comps); i++ {
		pi := comps[i].Points()
		for j := i + 1; j < len(comps); j++ {
			pj := comps[j].Points()
			for _, a := range pi {
				for _, b := range pj {
					d := a.Dist(b)
					lexBetter := d < best ||
						(d == best && (a.Less(ba) || (a == ba && b.Less(bb))))
					if !found || lexBetter {
						best, ba, bb, found = d, a, b, true
					}
				}
			}
		}
	}
	return ba, bb
}

// lPath returns the lattice points of the L-shaped path from a to b that
// moves along x first, then along y, inclusive of both endpoints.
func lPath(a, b grid.Point) []grid.Point {
	var out []grid.Point
	step := func(v, to int) int {
		if v < to {
			return v + 1
		}
		return v - 1
	}
	p := a
	out = append(out, p)
	for p.X != b.X {
		p.X = step(p.X, b.X)
		out = append(out, p)
	}
	for p.Y != b.Y {
		p.Y = step(p.Y, b.Y)
		out = append(out, p)
	}
	return out
}
