package geometry_test

import (
	"fmt"

	"ocpmesh/internal/geometry"
	"ocpmesh/internal/grid"
)

// A U-shaped region is not orthogonally convex; its rectilinear convex
// closure fills the cavity.
func ExampleOrthogonalClosure() {
	u := grid.PointSetOf(
		grid.Pt(0, 0), grid.Pt(1, 0), grid.Pt(2, 0),
		grid.Pt(0, 1), grid.Pt(2, 1),
		grid.Pt(0, 2), grid.Pt(2, 2),
	)
	fmt.Println("U convex:", geometry.IsOrthogonallyConvex(u))
	closure := geometry.OrthogonalClosure(u)
	fmt.Println("closure convex:", geometry.IsOrthogonallyConvex(closure))
	fmt.Println("cavity filled:", closure.Has(grid.Pt(1, 1)) && closure.Has(grid.Pt(1, 2)))
	// Output:
	// U convex: false
	// closure convex: true
	// cavity filled: true
}

// Corner nodes (Definition 4) of a rectangle are its four corners; the
// paper's Lemma 1 proves that in a disabled region they are all faulty.
func ExampleCornerNodes() {
	rect := grid.PointSetOf(grid.NewRect(0, 0, 2, 1).Points()...)
	for _, c := range geometry.CornerNodes(rect) {
		fmt.Println(c)
	}
	// Output:
	// (0,0)
	// (2,0)
	// (0,1)
	// (2,1)
}
