package geometry

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"ocpmesh/internal/grid"
)

// smallSet is a testing/quick-generated nonempty point set in a 12x12
// window.
type smallSet struct {
	pts []grid.Point
}

// Generate implements quick.Generator.
func (smallSet) Generate(r *rand.Rand, size int) reflect.Value {
	n := 1 + r.Intn(10)
	pts := make([]grid.Point, n)
	for i := range pts {
		pts[i] = grid.Pt(r.Intn(12), r.Intn(12))
	}
	return reflect.ValueOf(smallSet{pts: pts})
}

func (s smallSet) set() *grid.PointSet { return grid.PointSetOf(s.pts...) }

func TestQuickClosureInvariants(t *testing.T) {
	f := func(s smallSet) bool {
		in := s.set()
		c := OrthogonalClosure(in)
		return in.SubsetOf(c) &&
			IsOrthogonallyConvex(c) &&
			OrthogonalClosure(c).Equal(c) &&
			c.Bounds() == in.Bounds()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickConnectedClosureInvariants(t *testing.T) {
	f := func(s smallSet) bool {
		in := s.set()
		c := ConnectedOrthogonalClosure(in)
		return in.SubsetOf(c) && IsOrthogonalConvexPolygon(c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickComponentsPartition(t *testing.T) {
	f := func(s smallSet) bool {
		in := s.set()
		total := 0
		for _, comp := range Components(in) {
			total += comp.Len()
			if !comp.SubsetOf(in) || !IsConnected(comp) {
				return false
			}
		}
		return total == in.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCornerNodesAreBoundary(t *testing.T) {
	f := func(s smallSet) bool {
		in := s.set()
		boundary := grid.PointSetOf(BoundaryNodes(in)...)
		for _, c := range CornerNodes(in) {
			if !boundary.Has(c) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPerimeterBounds(t *testing.T) {
	// 4 <= perimeter <= 4*|S| for any set, and a connected orthogonally
	// convex polygon has EXACTLY the perimeter of its bounding rectangle —
	// the classic characterization of HV-convex polyominoes, and the
	// reason routing around an OCP never backtracks.
	f := func(s smallSet) bool {
		in := s.set()
		p := Perimeter(in)
		if p < 4 || p > 4*in.Len() {
			return false
		}
		c := ConnectedOrthogonalClosure(in)
		b := c.Bounds()
		return Perimeter(c) == 2*(b.Width()+b.Height())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
