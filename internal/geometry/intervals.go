// Package geometry implements the planar machinery behind the paper's
// results: 4-connectivity, orthogonal convexity (Definition 1), the
// rectilinear convex closure used to characterize minimal orthogonal
// convex polygons (Theorem 2), corner nodes (Definition 4) and opening
// points (Theorem 1's case analysis).
//
// All regions are represented as *grid.PointSet values; a "polygon" in the
// paper is a 4-connected set of lattice nodes, and the two words are used
// interchangeably, as in the paper.
package geometry

import (
	"sort"

	"ocpmesh/internal/grid"
)

// Interval is an inclusive integer interval [Lo, Hi].
type Interval struct {
	Lo, Hi int
}

// Len returns the number of integers in the interval.
func (iv Interval) Len() int { return iv.Hi - iv.Lo + 1 }

// Contains reports whether v lies in the interval.
func (iv Interval) Contains(v int) bool { return v >= iv.Lo && v <= iv.Hi }

// RowIntervals returns, for every row y occupied by s, the maximal runs of
// consecutive x values present in that row, sorted by Lo.
func RowIntervals(s *grid.PointSet) map[int][]Interval {
	byRow := make(map[int][]int)
	s.Each(func(p grid.Point) {
		byRow[p.Y] = append(byRow[p.Y], p.X)
	})
	out := make(map[int][]Interval, len(byRow))
	for y, xs := range byRow {
		out[y] = runs(xs)
	}
	return out
}

// ColIntervals returns, for every column x occupied by s, the maximal runs
// of consecutive y values present in that column, sorted by Lo.
func ColIntervals(s *grid.PointSet) map[int][]Interval {
	byCol := make(map[int][]int)
	s.Each(func(p grid.Point) {
		byCol[p.X] = append(byCol[p.X], p.Y)
	})
	out := make(map[int][]Interval, len(byCol))
	for x, ys := range byCol {
		out[x] = runs(ys)
	}
	return out
}

// runs collapses a list of integers into maximal runs of consecutive
// values.
func runs(vs []int) []Interval {
	sort.Ints(vs)
	var out []Interval
	for i := 0; i < len(vs); {
		j := i
		for j+1 < len(vs) && vs[j+1] == vs[j]+1 {
			j++
		}
		out = append(out, Interval{Lo: vs[i], Hi: vs[j]})
		i = j + 1
	}
	return out
}
