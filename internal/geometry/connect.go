package geometry

import "ocpmesh/internal/grid"

// Components splits s into its 4-connected components. Components are
// returned in canonical order (ordered by their smallest member), and each
// component's points are independent copies.
func Components(s *grid.PointSet) []*grid.PointSet {
	seen := grid.NewPointSet()
	var comps []*grid.PointSet
	for _, start := range s.Points() { // canonical order => deterministic output
		if seen.Has(start) {
			continue
		}
		comp := grid.NewPointSet()
		queue := []grid.Point{start}
		seen.Add(start)
		comp.Add(start)
		for len(queue) > 0 {
			p := queue[0]
			queue = queue[1:]
			for _, q := range p.Neighbors4() {
				if s.Has(q) && !seen.Has(q) {
					seen.Add(q)
					comp.Add(q)
					queue = append(queue, q)
				}
			}
		}
		comps = append(comps, comp)
	}
	return comps
}

// IsConnected reports whether s is 4-connected. The empty set and
// singletons are connected.
func IsConnected(s *grid.PointSet) bool {
	if s.Len() <= 1 {
		return true
	}
	return len(Components(s)) == 1
}

// BoundaryNodes returns the members of s that have at least one of their
// four mesh neighbors outside s, in canonical order.
func BoundaryNodes(s *grid.PointSet) []grid.Point {
	var out []grid.Point
	for _, p := range s.Points() {
		for _, q := range p.Neighbors4() {
			if !s.Has(q) {
				out = append(out, p)
				break
			}
		}
	}
	return out
}

// CornerNodes returns the corner nodes of s per the paper's Definition 4:
// nodes of s that have at least one neighbor outside s along each
// dimension (a missing west or east neighbor, and a missing south or north
// neighbor). Lemma 1 states that in a disabled region every corner node is
// faulty.
func CornerNodes(s *grid.PointSet) []grid.Point {
	var out []grid.Point
	for _, p := range s.Points() {
		missX := !s.Has(grid.Pt(p.X-1, p.Y)) || !s.Has(grid.Pt(p.X+1, p.Y))
		missY := !s.Has(grid.Pt(p.X, p.Y-1)) || !s.Has(grid.Pt(p.X, p.Y+1))
		if missX && missY {
			out = append(out, p)
		}
	}
	return out
}

// OpeningPoints returns the nodes of inner that have at least one neighbor
// outside outer. In Theorem 1's case analysis inner is an enabled region
// inside an original faulty block (outer); inner "has an opening" when
// this list is nonempty.
func OpeningPoints(inner, outer *grid.PointSet) []grid.Point {
	var out []grid.Point
	for _, p := range inner.Points() {
		for _, q := range p.Neighbors4() {
			if !outer.Has(q) {
				out = append(out, p)
				break
			}
		}
	}
	return out
}

// HasOpening reports whether inner contains an opening point with respect
// to outer.
func HasOpening(inner, outer *grid.PointSet) bool {
	opening := false
	inner.Each(func(p grid.Point) {
		if opening {
			return
		}
		for _, q := range p.Neighbors4() {
			if !outer.Has(q) {
				opening = true
				return
			}
		}
	})
	return opening
}
