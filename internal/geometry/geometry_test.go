package geometry

import (
	"math/rand"
	"testing"

	"ocpmesh/internal/grid"
)

// rectSet returns the full point set of a rectangle.
func rectSet(r grid.Rect) *grid.PointSet {
	return grid.PointSetOf(r.Points()...)
}

// lShape: a 3x3 square missing its top-right 2x2 block -> L shape.
//
//	X..
//	X..
//	XXX
func lShape() *grid.PointSet {
	return grid.PointSetOf(
		grid.Pt(0, 0), grid.Pt(1, 0), grid.Pt(2, 0),
		grid.Pt(0, 1),
		grid.Pt(0, 2),
	)
}

// uShape:
//
//	X.X
//	X.X
//	XXX
func uShape() *grid.PointSet {
	return grid.PointSetOf(
		grid.Pt(0, 0), grid.Pt(1, 0), grid.Pt(2, 0),
		grid.Pt(0, 1), grid.Pt(2, 1),
		grid.Pt(0, 2), grid.Pt(2, 2),
	)
}

// plusShape:
//
//	.X.
//	XXX
//	.X.
func plusShape() *grid.PointSet {
	return grid.PointSetOf(
		grid.Pt(1, 0),
		grid.Pt(0, 1), grid.Pt(1, 1), grid.Pt(2, 1),
		grid.Pt(1, 2),
	)
}

// hShape:
//
//	X.X
//	XXX
//	X.X
func hShape() *grid.PointSet {
	return grid.PointSetOf(
		grid.Pt(0, 0), grid.Pt(2, 0),
		grid.Pt(0, 1), grid.Pt(1, 1), grid.Pt(2, 1),
		grid.Pt(0, 2), grid.Pt(2, 2),
	)
}

// tShape:
//
//	XXX
//	.X.
//	.X.
func tShape() *grid.PointSet {
	return grid.PointSetOf(
		grid.Pt(1, 0), grid.Pt(1, 1),
		grid.Pt(0, 2), grid.Pt(1, 2), grid.Pt(2, 2),
	)
}

func TestIntervalBasics(t *testing.T) {
	iv := Interval{2, 5}
	if iv.Len() != 4 {
		t.Fatalf("Len = %d", iv.Len())
	}
	if !iv.Contains(2) || !iv.Contains(5) || iv.Contains(6) || iv.Contains(1) {
		t.Fatal("Contains wrong")
	}
}

func TestRowColIntervals(t *testing.T) {
	s := grid.PointSetOf(
		grid.Pt(0, 0), grid.Pt(1, 0), grid.Pt(3, 0), // row 0: [0,1] and [3,3]
		grid.Pt(3, 1), // col 3: [0,1]
	)
	rows := RowIntervals(s)
	if got := rows[0]; len(got) != 2 || got[0] != (Interval{0, 1}) || got[1] != (Interval{3, 3}) {
		t.Fatalf("row 0 intervals = %v", got)
	}
	if got := rows[1]; len(got) != 1 || got[0] != (Interval{3, 3}) {
		t.Fatalf("row 1 intervals = %v", got)
	}
	cols := ColIntervals(s)
	if got := cols[3]; len(got) != 1 || got[0] != (Interval{0, 1}) {
		t.Fatalf("col 3 intervals = %v", got)
	}
	if got := cols[2]; got != nil {
		t.Fatalf("col 2 should be absent, got %v", got)
	}
}

func TestComponents(t *testing.T) {
	s := grid.PointSetOf(
		grid.Pt(0, 0), grid.Pt(1, 0), // comp A
		grid.Pt(3, 0), // comp B (diagonal gap from A even via (2,0)? (2,0) missing)
		grid.Pt(3, 1),
	)
	comps := Components(s)
	if len(comps) != 2 {
		t.Fatalf("got %d components, want 2", len(comps))
	}
	if comps[0].Len() != 2 || !comps[0].Has(grid.Pt(0, 0)) {
		t.Fatalf("first component = %v", comps[0].Points())
	}
	if comps[1].Len() != 2 || !comps[1].Has(grid.Pt(3, 1)) {
		t.Fatalf("second component = %v", comps[1].Points())
	}
	total := 0
	for _, c := range comps {
		total += c.Len()
	}
	if total != s.Len() {
		t.Fatal("components must partition the set")
	}
}

func TestComponentsDiagonalNotConnected(t *testing.T) {
	s := grid.PointSetOf(grid.Pt(0, 0), grid.Pt(1, 1))
	if len(Components(s)) != 2 {
		t.Fatal("diagonal adjacency must not connect (4-connectivity)")
	}
}

func TestIsConnected(t *testing.T) {
	if !IsConnected(grid.NewPointSet()) {
		t.Fatal("empty set is connected")
	}
	if !IsConnected(grid.PointSetOf(grid.Pt(5, 5))) {
		t.Fatal("singleton is connected")
	}
	if !IsConnected(uShape()) {
		t.Fatal("U shape is connected")
	}
	if IsConnected(grid.PointSetOf(grid.Pt(0, 0), grid.Pt(2, 0))) {
		t.Fatal("gap must disconnect")
	}
}

func TestIsOrthogonallyConvexShapes(t *testing.T) {
	tests := []struct {
		name string
		s    *grid.PointSet
		want bool
	}{
		{"rectangle", rectSet(grid.NewRect(0, 0, 3, 2)), true},
		{"single", grid.PointSetOf(grid.Pt(4, 4)), true},
		{"empty", grid.NewPointSet(), true},
		{"L", lShape(), true},
		{"T", tShape(), true},
		{"plus", plusShape(), true},
		{"U", uShape(), false}, // paper: U-shape is non-orthogonal-convex
		{"H", hShape(), false}, // paper: H-shape is non-orthogonal-convex
	}
	for _, tt := range tests {
		if got := IsOrthogonallyConvex(tt.s); got != tt.want {
			t.Errorf("%s: IsOrthogonallyConvex = %t, want %t", tt.name, got, tt.want)
		}
	}
}

func TestIsOrthogonalConvexPolygon(t *testing.T) {
	if IsOrthogonalConvexPolygon(grid.NewPointSet()) {
		t.Fatal("empty set is not a polygon")
	}
	// Orthogonally convex but disconnected: two distant points in
	// different rows and columns.
	s := grid.PointSetOf(grid.Pt(0, 0), grid.Pt(5, 5))
	if !IsOrthogonallyConvex(s) {
		t.Fatal("two isolated points are vacuously orthogonally convex")
	}
	if IsOrthogonalConvexPolygon(s) {
		t.Fatal("disconnected set is not a polygon")
	}
	if !IsOrthogonalConvexPolygon(plusShape()) {
		t.Fatal("plus shape is an orthogonal convex polygon")
	}
}

func TestIsRectangle(t *testing.T) {
	if IsRectangle(grid.NewPointSet()) {
		t.Fatal("empty set is not a rectangle")
	}
	if !IsRectangle(rectSet(grid.NewRect(2, 2, 5, 3))) {
		t.Fatal("full rectangle must be a rectangle")
	}
	if IsRectangle(lShape()) {
		t.Fatal("L shape is not a rectangle")
	}
	if !IsRectangle(grid.PointSetOf(grid.Pt(9, 9))) {
		t.Fatal("a single point is a 1x1 rectangle")
	}
}

func TestOrthogonalClosureFillsU(t *testing.T) {
	c := OrthogonalClosure(uShape())
	// Filling the U's cavity yields the full 3x3 square.
	if !c.Equal(rectSet(grid.NewRect(0, 0, 2, 2))) {
		t.Fatalf("closure of U = %v", c.Points())
	}
}

func TestOrthogonalClosureIdempotentOnConvex(t *testing.T) {
	for _, s := range []*grid.PointSet{lShape(), tShape(), plusShape(), rectSet(grid.NewRect(0, 0, 4, 4))} {
		if !OrthogonalClosure(s).Equal(s) {
			t.Fatalf("closure changed an already-convex set %v", s.Points())
		}
	}
}

func TestOrthogonalClosureProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		s := grid.NewPointSet()
		n := 1 + rng.Intn(15)
		for i := 0; i < n; i++ {
			s.Add(grid.Pt(rng.Intn(10), rng.Intn(10)))
		}
		c := OrthogonalClosure(s)
		if !s.SubsetOf(c) {
			t.Fatal("closure must contain the input")
		}
		if !IsOrthogonallyConvex(c) {
			t.Fatalf("closure not orthogonally convex: %v", c.Points())
		}
		if !OrthogonalClosure(c).Equal(c) {
			t.Fatal("closure must be idempotent")
		}
		if !c.Bounds().ContainsRect(s.Bounds()) || !s.Bounds().ContainsRect(c.Bounds()) {
			t.Fatal("closure must not grow the bounding rectangle")
		}
		// Minimality: every orthogonally convex superset of s contains c.
		// Check against the bounding rectangle, always such a superset.
		if !c.SubsetOf(rectSet(s.Bounds())) {
			t.Fatal("closure exceeded the bounding rectangle")
		}
	}
}

// The closure is minimal: removing any added point breaks orthogonal
// convexity (otherwise a smaller convex superset would exist).
func TestOrthogonalClosureMinimality(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		s := grid.NewPointSet()
		for i := 0; i < 6; i++ {
			s.Add(grid.Pt(rng.Intn(6), rng.Intn(6)))
		}
		c := OrthogonalClosure(s)
		added := c.Clone().Subtract(s)
		for _, p := range added.Points() {
			smaller := c.Clone()
			smaller.Remove(p)
			if IsOrthogonallyConvex(smaller) {
				t.Fatalf("removing %v keeps convexity; closure of %v not minimal", p, s.Points())
			}
		}
	}
}

func TestConnectedOrthogonalClosure(t *testing.T) {
	if got := ConnectedOrthogonalClosure(grid.NewPointSet()); got.Len() != 0 {
		t.Fatal("closure of empty set must be empty")
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		s := grid.NewPointSet()
		n := 1 + rng.Intn(10)
		for i := 0; i < n; i++ {
			s.Add(grid.Pt(rng.Intn(12), rng.Intn(12)))
		}
		c := ConnectedOrthogonalClosure(s)
		if !s.SubsetOf(c) {
			t.Fatal("connected closure must contain the input")
		}
		if !IsOrthogonalConvexPolygon(c) {
			t.Fatalf("connected closure is not an orthogonal convex polygon: %v", c.Points())
		}
	}
}

func TestConnectedOrthogonalClosureDeterministic(t *testing.T) {
	s := grid.PointSetOf(grid.Pt(0, 0), grid.Pt(5, 3), grid.Pt(9, 0))
	a := ConnectedOrthogonalClosure(s)
	b := ConnectedOrthogonalClosure(s.Clone())
	if !a.Equal(b) {
		t.Fatal("connected closure must be deterministic")
	}
}

func TestCornerNodes(t *testing.T) {
	// For a full rectangle the corner nodes are exactly its 4 corners.
	r := grid.NewRect(1, 1, 4, 3)
	got := CornerNodes(rectSet(r))
	if len(got) != 4 {
		t.Fatalf("rectangle corners = %v", got)
	}
	want := r.Corners()
	for _, w := range want {
		found := false
		for _, g := range got {
			if g == w {
				found = true
			}
		}
		if !found {
			t.Fatalf("missing corner %v in %v", w, got)
		}
	}
	// A 1-point region: the point is a corner.
	if got := CornerNodes(grid.PointSetOf(grid.Pt(7, 7))); len(got) != 1 {
		t.Fatalf("singleton corners = %v", got)
	}
	// The L shape (see lShape's diagram): a corner node is one missing a
	// neighbor in both dimensions. The arm interiors fail the test —
	// (1,0) has both x-neighbors, (0,1) both y-neighbors — while the two
	// arm tips (2,0) and (0,2) and the elbow (0,0) each lack an
	// x-neighbor and a y-neighbor, so exactly those three are corners.
	l := lShape()
	got = CornerNodes(l)
	wantL := map[grid.Point]bool{grid.Pt(0, 0): true, grid.Pt(2, 0): true, grid.Pt(0, 2): true}
	if len(got) != len(wantL) {
		t.Fatalf("L corners = %v", got)
	}
	for _, g := range got {
		if !wantL[g] {
			t.Fatalf("unexpected L corner %v", g)
		}
	}
}

// Lemma 2: for any node u of an orthogonal convex polygon, every closed
// quadrant induced by u contains at least one corner node.
func TestLemma2QuadrantsContainCorners(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 150; trial++ {
		seed := grid.NewPointSet()
		for i := 0; i < 1+rng.Intn(8); i++ {
			seed.Add(grid.Pt(rng.Intn(8), rng.Intn(8)))
		}
		poly := ConnectedOrthogonalClosure(seed)
		corners := CornerNodes(poly)
		for _, u := range poly.Points() {
			for _, q := range grid.Quadrants {
				found := false
				for _, c := range corners {
					if q.Contains(u, c) {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("quadrant %v of %v has no corner; poly=%v corners=%v",
						q, u, poly.Points(), corners)
				}
			}
		}
	}
}

func TestBoundaryNodes(t *testing.T) {
	r := rectSet(grid.NewRect(0, 0, 4, 4))
	b := BoundaryNodes(r)
	if len(b) != 16 { // 5x5 square has 16 boundary cells
		t.Fatalf("boundary count = %d, want 16", len(b))
	}
	for _, p := range b {
		if p.X != 0 && p.X != 4 && p.Y != 0 && p.Y != 4 {
			t.Fatalf("interior point %v reported as boundary", p)
		}
	}
	// In the plus shape only the center has all four neighbors present.
	got := BoundaryNodes(plusShape())
	if len(got) != plusShape().Len()-1 {
		t.Fatalf("plus boundary = %v", got)
	}
	for _, p := range got {
		if p == grid.Pt(1, 1) {
			t.Fatal("center of plus must not be boundary")
		}
	}
}

func TestOpeningPoints(t *testing.T) {
	outer := rectSet(grid.NewRect(0, 0, 4, 4))
	// Inner region strictly inside: no openings.
	inner := rectSet(grid.NewRect(1, 1, 3, 3))
	if HasOpening(inner, outer) {
		t.Fatal("strict interior must have no opening")
	}
	if got := OpeningPoints(inner, outer); len(got) != 0 {
		t.Fatalf("OpeningPoints = %v", got)
	}
	// Inner region touching the outer boundary: opening points are the
	// touching cells.
	inner2 := rectSet(grid.NewRect(0, 1, 2, 2))
	got := OpeningPoints(inner2, outer)
	if len(got) != 2 || got[0] != grid.Pt(0, 1) || got[1] != grid.Pt(0, 2) {
		t.Fatalf("OpeningPoints = %v", got)
	}
	if !HasOpening(inner2, outer) {
		t.Fatal("expected opening")
	}
}

func TestLPath(t *testing.T) {
	p := lPath(grid.Pt(0, 0), grid.Pt(2, -2))
	want := []grid.Point{grid.Pt(0, 0), grid.Pt(1, 0), grid.Pt(2, 0), grid.Pt(2, -1), grid.Pt(2, -2)}
	if len(p) != len(want) {
		t.Fatalf("lPath = %v", p)
	}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("lPath[%d] = %v, want %v", i, p[i], want[i])
		}
	}
	if got := lPath(grid.Pt(3, 3), grid.Pt(3, 3)); len(got) != 1 {
		t.Fatalf("degenerate lPath = %v", got)
	}
}
