package geometry

import (
	"math/rand"
	"testing"

	"ocpmesh/internal/grid"
)

func TestNeighbors8(t *testing.T) {
	n := Neighbors8(grid.Pt(5, 5))
	if len(n) != 8 {
		t.Fatalf("Neighbors8 len = %d", len(n))
	}
	seen := grid.PointSetOf(n[:]...)
	if seen.Len() != 8 || seen.Has(grid.Pt(5, 5)) {
		t.Fatal("Neighbors8 must be 8 distinct points excluding the center")
	}
	for _, q := range n {
		if q.ChebyshevDist(grid.Pt(5, 5)) != 1 {
			t.Fatalf("%v not Chebyshev-adjacent", q)
		}
	}
}

func TestComponents8MergesDiagonals(t *testing.T) {
	// The paper's example: disabled nodes (2,1) and (3,2) form ONE region.
	s := grid.PointSetOf(grid.Pt(2, 1), grid.Pt(3, 2))
	if got := len(Components8(s)); got != 1 {
		t.Fatalf("diagonal pair components = %d, want 1", got)
	}
	if got := len(Components(s)); got != 2 {
		t.Fatalf("under 4-connectivity the pair must split, got %d", got)
	}
	if !IsConnected8(s) {
		t.Fatal("IsConnected8 wrong")
	}
	// Distance-2 points do not merge even under 8-connectivity.
	far := grid.PointSetOf(grid.Pt(0, 0), grid.Pt(2, 0))
	if IsConnected8(far) {
		t.Fatal("distance-2 points must not be 8-connected")
	}
	if !IsConnected8(grid.NewPointSet()) || !IsConnected8(grid.PointSetOf(grid.Pt(1, 1))) {
		t.Fatal("trivial sets are connected")
	}
}

// Components8 must partition, and must be a coarsening of Components.
func TestComponents8Partition(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 100; trial++ {
		s := grid.NewPointSet()
		for i := 0; i < rng.Intn(25); i++ {
			s.Add(grid.Pt(rng.Intn(8), rng.Intn(8)))
		}
		comps8 := Components8(s)
		total := 0
		for _, c := range comps8 {
			total += c.Len()
		}
		if total != s.Len() {
			t.Fatalf("trial %d: 8-components do not partition", trial)
		}
		if len(comps8) > len(Components(s)) {
			t.Fatalf("trial %d: 8-connectivity must merge, never split", trial)
		}
		// Every 4-component lies entirely inside one 8-component.
		for _, c4 := range Components(s) {
			inside := 0
			for _, c8 := range comps8 {
				if c4.SubsetOf(c8) {
					inside++
				}
			}
			if inside != 1 {
				t.Fatalf("trial %d: 4-component split across 8-components", trial)
			}
		}
	}
}

func TestSetDist(t *testing.T) {
	a := grid.PointSetOf(grid.Pt(0, 0), grid.Pt(1, 0))
	b := grid.PointSetOf(grid.Pt(4, 3))
	if d := SetDist(a, b); d != 6 {
		t.Fatalf("SetDist = %d, want 6", d)
	}
	if d := SetDist(b, a); d != 6 {
		t.Fatal("SetDist must be symmetric")
	}
	if d := SetDist(a, a); d != 0 {
		t.Fatalf("self distance = %d", d)
	}
	if d := SetDist(a, grid.NewPointSet()); d != -1 {
		t.Fatalf("empty set distance = %d, want -1", d)
	}
}
