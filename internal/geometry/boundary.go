package geometry

import "ocpmesh/internal/grid"

// BoundaryCycle traces the outer boundary of a 4-connected region in
// clockwise order using Moore-neighbor tracing (Jacob's stopping
// criterion): the returned cycle starts at the region's canonical first
// boundary cell and lists every boundary cell in traversal order;
// consecutive entries are 8-adjacent, and cells may repeat where the
// region is one cell thin (the walk passes a bridge twice, once per
// side), which is exactly how a message hugs an f-ring.
//
// ok is false for an empty or disconnected region.
func BoundaryCycle(s *grid.PointSet) (cycle []grid.Point, ok bool) {
	if s.Len() == 0 || !IsConnected(s) {
		return nil, false
	}
	if s.Len() == 1 {
		return []grid.Point{s.Points()[0]}, true
	}

	// Moore neighborhood in clockwise order starting from west.
	moore := [8]grid.Point{
		{X: -1, Y: 0}, {X: -1, Y: 1}, {X: 0, Y: 1}, {X: 1, Y: 1},
		{X: 1, Y: 0}, {X: 1, Y: -1}, {X: 0, Y: -1}, {X: -1, Y: -1},
	}
	idxOf := func(d grid.Point) int {
		for i, m := range moore {
			if m == d {
				return i
			}
		}
		panic("geometry: not a moore offset")
	}

	// Start at the lowest-then-leftmost cell; its west and south
	// neighbors are outside, so entering "from the west" is valid.
	pts := s.Points() // canonical: lowest y first, then lowest x
	start := pts[0]
	cycle = []grid.Point{start}

	cur := start
	// backtrack is the outside cell we entered cur from.
	backtrack := start.Add(grid.Pt(-1, 0))
	var second grid.Point
	for {
		// Scan the Moore neighborhood clockwise, starting just after the
		// backtrack position.
		startIdx := idxOf(backtrack.Sub(cur))
		var next grid.Point
		found := false
		prevOutside := backtrack
		for k := 1; k <= 8; k++ {
			cand := cur.Add(moore[(startIdx+k)%8])
			if s.Has(cand) {
				next, found = cand, true
				break
			}
			prevOutside = cand
		}
		if !found {
			// Isolated cell cannot happen (Len > 1 and connected).
			return nil, false
		}
		if len(cycle) == 1 {
			second = next
		} else if cur == start && next == second {
			// Termination: about to repeat the initial (start -> second)
			// step; the walk has closed. Drop the duplicated start.
			return cycle[:len(cycle)-1], true
		}
		backtrack = prevOutside
		cur = next
		cycle = append(cycle, cur)
		if len(cycle) > 4*s.Len()+8 {
			// Safety bound; tracing a connected region always terminates
			// well within this.
			return nil, false
		}
	}
}

// Perimeter returns the number of unit edges between s and its
// complement — the length of the region's rectilinear outline. For an
// orthogonally convex polygon it equals the perimeter of the bounding
// rectangle plus twice the staircase indentations.
func Perimeter(s *grid.PointSet) int {
	n := 0
	s.Each(func(p grid.Point) {
		for _, q := range p.Neighbors4() {
			if !s.Has(q) {
				n++
			}
		}
	})
	return n
}
