package geometry

import "ocpmesh/internal/grid"

// Neighbors8 returns the eight surrounding lattice points of p (the four
// mesh neighbors plus the four diagonals), in row-major order.
func Neighbors8(p grid.Point) [8]grid.Point {
	return [8]grid.Point{
		{X: p.X - 1, Y: p.Y - 1}, {X: p.X, Y: p.Y - 1}, {X: p.X + 1, Y: p.Y - 1},
		{X: p.X - 1, Y: p.Y}, {X: p.X + 1, Y: p.Y},
		{X: p.X - 1, Y: p.Y + 1}, {X: p.X, Y: p.Y + 1}, {X: p.X + 1, Y: p.Y + 1},
	}
}

// Components8 splits s into its 8-connected components: corner-touching
// cells belong to one component. The paper groups regions this way — two
// faulty nodes at (x,y) and (x+1,y+1) "are contained in one single
// region", and the Section 3 example reports the diagonally adjacent
// disabled nodes (2,1) and (3,2) as one disabled region.
func Components8(s *grid.PointSet) []*grid.PointSet {
	seen := grid.NewPointSet()
	var comps []*grid.PointSet
	for _, start := range s.Points() {
		if seen.Has(start) {
			continue
		}
		comp := grid.NewPointSet()
		queue := []grid.Point{start}
		seen.Add(start)
		comp.Add(start)
		for len(queue) > 0 {
			p := queue[0]
			queue = queue[1:]
			for _, q := range Neighbors8(p) {
				if s.Has(q) && !seen.Has(q) {
					seen.Add(q)
					comp.Add(q)
					queue = append(queue, q)
				}
			}
		}
		comps = append(comps, comp)
	}
	return comps
}

// IsConnected8 reports whether s is 8-connected.
func IsConnected8(s *grid.PointSet) bool {
	if s.Len() <= 1 {
		return true
	}
	return len(Components8(s)) == 1
}

// SetDist returns the minimum L1 distance between a point of a and a
// point of b, or -1 when either set is empty. The paper's block-distance
// results (>= 3 under Definition 2a, >= 2 under Definition 2b) are stated
// in terms of this distance.
func SetDist(a, b *grid.PointSet) int {
	if a.Len() == 0 || b.Len() == 0 {
		return -1
	}
	best := 1 << 30
	ap, bp := a.Points(), b.Points()
	for _, p := range ap {
		for _, q := range bp {
			if d := p.Dist(q); d < best {
				best = d
			}
		}
	}
	return best
}
