package geometry

import (
	"math/rand"
	"testing"

	"ocpmesh/internal/grid"
)

func TestPerimeter(t *testing.T) {
	tests := []struct {
		name string
		s    *grid.PointSet
		want int
	}{
		{"single", grid.PointSetOf(grid.Pt(0, 0)), 4},
		{"domino", grid.PointSetOf(grid.Pt(0, 0), grid.Pt(1, 0)), 6},
		{"2x2", rectSet(grid.NewRect(0, 0, 1, 1)), 8},
		{"3x2", rectSet(grid.NewRect(0, 0, 2, 1)), 10},
		{"plus", plusShape(), 12},
		{"empty", grid.NewPointSet(), 0},
	}
	for _, tt := range tests {
		if got := Perimeter(tt.s); got != tt.want {
			t.Errorf("%s: Perimeter = %d, want %d", tt.name, got, tt.want)
		}
	}
}

func TestBoundaryCycleRectangle(t *testing.T) {
	s := rectSet(grid.NewRect(0, 0, 3, 2))
	cycle, ok := BoundaryCycle(s)
	if !ok {
		t.Fatal("rectangle must trace")
	}
	// A 4x3 rectangle has 10 boundary cells, each visited once.
	if len(cycle) != 10 {
		t.Fatalf("cycle length = %d, want 10: %v", len(cycle), cycle)
	}
	seen := grid.NewPointSet()
	for i, p := range cycle {
		seen.Add(p)
		if i > 0 && p.ChebyshevDist(cycle[i-1]) != 1 {
			t.Fatalf("non-adjacent cycle step %v -> %v", cycle[i-1], p)
		}
	}
	if cycle[0].ChebyshevDist(cycle[len(cycle)-1]) != 1 {
		t.Fatal("cycle must close")
	}
	want := grid.PointSetOf(BoundaryNodes(s)...)
	if !seen.Equal(want) {
		t.Fatalf("cycle cells %v != boundary %v", seen.Points(), want.Points())
	}
}

func TestBoundaryCycleSingleAndLine(t *testing.T) {
	c, ok := BoundaryCycle(grid.PointSetOf(grid.Pt(5, 5)))
	if !ok || len(c) != 1 {
		t.Fatalf("singleton cycle = %v", c)
	}
	// A 1-wide line is traced down and back: cells repeat (bridge).
	line := grid.PointSetOf(grid.Pt(0, 0), grid.Pt(1, 0), grid.Pt(2, 0))
	c, ok = BoundaryCycle(line)
	if !ok {
		t.Fatal("line must trace")
	}
	if len(c) != 4 { // 0,1,2,1 — the middle cell passed twice
		t.Fatalf("line cycle = %v", c)
	}
}

func TestBoundaryCycleRejects(t *testing.T) {
	if _, ok := BoundaryCycle(grid.NewPointSet()); ok {
		t.Fatal("empty region must not trace")
	}
	if _, ok := BoundaryCycle(grid.PointSetOf(grid.Pt(0, 0), grid.Pt(5, 5))); ok {
		t.Fatal("disconnected region must not trace")
	}
}

// On random connected orthogonal convex polygons the cycle visits
// exactly the boundary cells with 8-adjacent consecutive steps.
func TestBoundaryCycleOnRandomPolygons(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 150; trial++ {
		seed := grid.NewPointSet()
		for i := 0; i < 1+rng.Intn(7); i++ {
			seed.Add(grid.Pt(rng.Intn(9), rng.Intn(9)))
		}
		poly := ConnectedOrthogonalClosure(seed)
		cycle, ok := BoundaryCycle(poly)
		if !ok {
			t.Fatalf("trial %d: polygon must trace: %v", trial, poly.Points())
		}
		seen := grid.NewPointSet()
		for i, p := range cycle {
			if !poly.Has(p) {
				t.Fatalf("trial %d: cycle leaves the region at %v", trial, p)
			}
			seen.Add(p)
			if i > 0 && p.ChebyshevDist(cycle[i-1]) != 1 {
				t.Fatalf("trial %d: non-adjacent step", trial)
			}
		}
		boundary := grid.PointSetOf(BoundaryNodes(poly)...)
		if !seen.Equal(boundary) {
			t.Fatalf("trial %d: cycle %v misses boundary cells %v",
				trial, seen.Points(), boundary.Clone().Subtract(seen).Points())
		}
	}
}
