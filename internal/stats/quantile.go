package stats

import (
	"fmt"
	"math"
	"sort"
)

// P2Quantile estimates a single quantile of a stream in O(1) memory with
// the P² algorithm (Jain & Chlamtac, CACM 1985): five markers track the
// minimum, the target quantile, the quantile's half-neighbors and the
// maximum; marker heights are adjusted with a piecewise-parabolic fit as
// observations arrive. Sample deliberately keeps only sum/sumSq and so
// cannot answer percentile queries; P2Quantile is the bounded-memory
// complement used by the observability layer's latency and occupancy
// histograms.
//
// The zero value is not usable; construct with NewP2Quantile.
type P2Quantile struct {
	p     float64    // target quantile in (0, 1)
	n     int        // observations seen
	q     [5]float64 // marker heights
	pos   [5]float64 // marker positions (1-based)
	want  [5]float64 // desired marker positions
	dwant [5]float64 // desired-position increments
}

// NewP2Quantile returns an estimator for the p-quantile, 0 < p < 1
// (e.g. 0.5 for the median, 0.99 for the 99th percentile).
func NewP2Quantile(p float64) (*P2Quantile, error) {
	if math.IsNaN(p) || p <= 0 || p >= 1 {
		return nil, fmt.Errorf("stats: quantile %v outside (0, 1)", p)
	}
	e := &P2Quantile{p: p}
	e.want = [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5}
	e.dwant = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
	return e, nil
}

// MustP2Quantile is NewP2Quantile for a compile-time-constant p; it
// panics on an invalid argument.
func MustP2Quantile(p float64) *P2Quantile {
	e, err := NewP2Quantile(p)
	if err != nil {
		panic(err)
	}
	return e
}

// P returns the target quantile.
func (e *P2Quantile) P() float64 { return e.p }

// N returns the number of observations.
func (e *P2Quantile) N() int { return e.n }

// Add records one observation.
func (e *P2Quantile) Add(x float64) {
	if e.n < 5 {
		e.q[e.n] = x
		e.n++
		if e.n == 5 {
			sort.Float64s(e.q[:])
			for i := range e.pos {
				e.pos[i] = float64(i + 1)
			}
		}
		return
	}

	// Locate the cell of x, stretching the extreme markers if needed.
	var k int
	switch {
	case x < e.q[0]:
		e.q[0] = x
		k = 0
	case x >= e.q[4]:
		e.q[4] = x
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if x < e.q[k+1] {
				break
			}
		}
	}

	e.n++
	for i := k + 1; i < 5; i++ {
		e.pos[i]++
	}
	for i := range e.want {
		e.want[i] += e.dwant[i]
	}

	// Nudge the three interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := e.want[i] - e.pos[i]
		if (d >= 1 && e.pos[i+1]-e.pos[i] > 1) || (d <= -1 && e.pos[i-1]-e.pos[i] < -1) {
			s := math.Copysign(1, d)
			if h := e.parabolic(i, s); e.q[i-1] < h && h < e.q[i+1] {
				e.q[i] = h
			} else {
				e.q[i] = e.linear(i, s)
			}
			e.pos[i] += s
		}
	}
}

// parabolic is the P² piecewise-parabolic height prediction for moving
// marker i by d (±1).
func (e *P2Quantile) parabolic(i int, d float64) float64 {
	return e.q[i] + d/(e.pos[i+1]-e.pos[i-1])*
		((e.pos[i]-e.pos[i-1]+d)*(e.q[i+1]-e.q[i])/(e.pos[i+1]-e.pos[i])+
			(e.pos[i+1]-e.pos[i]-d)*(e.q[i]-e.q[i-1])/(e.pos[i]-e.pos[i-1]))
}

// linear is the fallback height prediction along the segment in the
// direction of travel.
func (e *P2Quantile) linear(i int, d float64) float64 {
	j := i + int(d)
	return e.q[i] + d*(e.q[j]-e.q[i])/(e.pos[j]-e.pos[i])
}

// Value returns the current quantile estimate. With fewer than five
// observations it interpolates the sorted sample directly; with none it
// returns 0.
func (e *P2Quantile) Value() float64 {
	if e.n == 0 {
		return 0
	}
	if e.n < 5 {
		buf := make([]float64, e.n)
		copy(buf, e.q[:e.n])
		sort.Float64s(buf)
		rank := e.p * float64(e.n-1)
		lo := int(rank)
		if lo >= e.n-1 {
			return buf[e.n-1]
		}
		frac := rank - float64(lo)
		return buf[lo]*(1-frac) + buf[lo+1]*frac
	}
	return e.q[2]
}
