package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestP2QuantileValidation(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 1.5, math.NaN()} {
		if _, err := NewP2Quantile(p); err == nil {
			t.Errorf("p=%v must be rejected", p)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("MustP2Quantile(2) must panic")
		}
	}()
	MustP2Quantile(2)
}

func TestP2QuantileEmptyAndTiny(t *testing.T) {
	e := MustP2Quantile(0.5)
	if e.Value() != 0 {
		t.Fatal("empty estimator must return 0")
	}
	e.Add(10)
	if e.Value() != 10 {
		t.Fatalf("single observation: %g, want 10", e.Value())
	}
	e.Add(20)
	if v := e.Value(); v != 15 {
		t.Fatalf("median of {10,20} = %g, want 15", v)
	}
	if e.N() != 2 || e.P() != 0.5 {
		t.Fatalf("accessors wrong: n=%d p=%g", e.N(), e.P())
	}
}

// exactQuantile is the sorted-sample interpolated quantile.
func exactQuantile(xs []float64, p float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	rank := p * float64(len(s)-1)
	lo := int(rank)
	if lo >= len(s)-1 {
		return s[len(s)-1]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[lo+1]*frac
}

func TestP2QuantileTracksDistributions(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	dists := []struct {
		name string
		draw func() float64
	}{
		{"uniform", func() float64 { return rng.Float64() * 100 }},
		{"normal", func() float64 { return 50 + 10*rng.NormFloat64() }},
		{"exponential", func() float64 { return rng.ExpFloat64() * 20 }},
	}
	for _, d := range dists {
		for _, p := range []float64{0.5, 0.9, 0.99} {
			e := MustP2Quantile(p)
			xs := make([]float64, 0, 20000)
			for i := 0; i < 20000; i++ {
				x := d.draw()
				xs = append(xs, x)
				e.Add(x)
			}
			exact := exactQuantile(xs, p)
			got := e.Value()
			// P² is an estimate; accept a few percent of the spread.
			spread := exactQuantile(xs, 0.999) - exactQuantile(xs, 0.001)
			if math.Abs(got-exact) > 0.05*spread {
				t.Errorf("%s p%.0f: estimate %.3f, exact %.3f (spread %.3f)",
					d.name, p*100, got, exact, spread)
			}
		}
	}
}

func TestP2QuantileMonotoneInput(t *testing.T) {
	// Sorted input is the classic hard case for streaming estimators.
	e := MustP2Quantile(0.5)
	for i := 1; i <= 1001; i++ {
		e.Add(float64(i))
	}
	if v := e.Value(); math.Abs(v-501) > 50 {
		t.Fatalf("median of 1..1001 = %g, want ~501", v)
	}
}
