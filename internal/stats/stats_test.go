package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestSampleEmpty(t *testing.T) {
	var s Sample
	if s.N() != 0 || s.Mean() != 0 || s.Var() != 0 || s.Std() != 0 || s.CI95() != 0 {
		t.Fatal("empty sample must report zeros")
	}
}

func TestSampleKnownValues(t *testing.T) {
	var s Sample
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if got := s.Mean(); got != 5 {
		t.Fatalf("Mean = %g", got)
	}
	// Population variance of this classic example is 4; sample variance
	// is 32/7.
	if got := s.Var(); math.Abs(got-32.0/7) > 1e-12 {
		t.Fatalf("Var = %g", got)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("Min/Max = %g/%g", s.Min(), s.Max())
	}
	if s.CI95() <= 0 {
		t.Fatal("CI95 must be positive for n >= 2")
	}
}

func TestSampleSingle(t *testing.T) {
	var s Sample
	s.Add(3.5)
	if s.Mean() != 3.5 || s.Var() != 0 || s.CI95() != 0 {
		t.Fatal("single observation stats wrong")
	}
	if s.Min() != 3.5 || s.Max() != 3.5 {
		t.Fatal("single observation min/max wrong")
	}
}

func TestSampleProperties(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		var s Sample
		for _, v := range raw {
			s.Add(float64(v))
		}
		if s.N() != len(raw) {
			return false
		}
		if s.Mean() < s.Min()-1e-9 || s.Mean() > s.Max()+1e-9 {
			return false
		}
		return s.Var() >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVarNeverNegative(t *testing.T) {
	// Large equal values stress the catastrophic-cancellation guard.
	var s Sample
	for i := 0; i < 1000; i++ {
		s.Add(1e9)
	}
	if s.Var() < 0 {
		t.Fatal("variance went negative")
	}
}

func TestCI95Shrinks(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var small, large Sample
	for i := 0; i < 10; i++ {
		small.Add(rng.NormFloat64())
	}
	for i := 0; i < 1000; i++ {
		large.Add(rng.NormFloat64())
	}
	if large.CI95() >= small.CI95() {
		t.Fatalf("CI must shrink with n: %g vs %g", large.CI95(), small.CI95())
	}
}

func TestSeriesAddAndSorted(t *testing.T) {
	var s Series
	var a, b Sample
	a.Add(1)
	a.Add(3)
	b.Add(10)
	s.Add(5, &a)
	s.Add(2, &b)
	pts := s.Sorted()
	if len(pts) != 2 || pts[0].X != 2 || pts[1].X != 5 {
		t.Fatalf("Sorted = %v", pts)
	}
	if pts[1].Y != 2 || pts[1].N != 2 {
		t.Fatalf("point = %v", pts[1])
	}
	// Original order untouched.
	if s.Points[0].X != 5 {
		t.Fatal("Sorted must not mutate the series")
	}
}

func TestSeriesCSV(t *testing.T) {
	s := Series{Label: "demo", XLabel: "f", YLabel: "rounds"}
	var a Sample
	a.Add(2)
	s.Add(1, &a)
	csv := s.CSV()
	if !strings.HasPrefix(csv, "f,rounds,ci95,n\n") {
		t.Fatalf("CSV header: %q", csv)
	}
	if !strings.Contains(csv, "1,2,0,1\n") {
		t.Fatalf("CSV body: %q", csv)
	}
}

func TestSeriesASCII(t *testing.T) {
	s := Series{Label: "demo"}
	var a, b Sample
	a.Add(1)
	b.Add(4)
	s.Add(0, &a)
	s.Add(1, &b)
	out := s.ASCII(40)
	if !strings.Contains(out, "# demo") {
		t.Fatalf("ASCII missing label: %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // label, header, two points
		t.Fatalf("ASCII lines = %d: %q", len(lines), out)
	}
	if !strings.HasSuffix(lines[3], strings.Repeat("*", 40)) {
		t.Fatalf("max point must fill the bar: %q", lines[3])
	}
	if got := (&Series{Label: "empty"}).ASCII(0); !strings.Contains(got, "(empty series)") {
		t.Fatalf("empty ASCII = %q", got)
	}
}
