// Package stats provides the small statistical toolkit used by the
// experiment harness: sample accumulators with mean, standard deviation
// and normal-approximation confidence intervals, and labeled series for
// figure output.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Sample accumulates observations.
type Sample struct {
	n              int
	sum, sumSq     float64
	minVal, maxVal float64
}

// Add records one observation.
func (s *Sample) Add(v float64) {
	if s.n == 0 || v < s.minVal {
		s.minVal = v
	}
	if s.n == 0 || v > s.maxVal {
		s.maxVal = v
	}
	s.n++
	s.sum += v
	s.sumSq += v * v
}

// N returns the number of observations.
func (s *Sample) N() int { return s.n }

// Mean returns the sample mean (0 for an empty sample).
func (s *Sample) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Var returns the unbiased sample variance (0 for fewer than two
// observations).
func (s *Sample) Var() float64 {
	if s.n < 2 {
		return 0
	}
	m := s.Mean()
	v := (s.sumSq - float64(s.n)*m*m) / float64(s.n-1)
	if v < 0 {
		return 0 // guard against negative rounding residue
	}
	return v
}

// Std returns the sample standard deviation.
func (s *Sample) Std() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest observation (0 for an empty sample).
func (s *Sample) Min() float64 { return s.minVal }

// Max returns the largest observation (0 for an empty sample).
func (s *Sample) Max() float64 { return s.maxVal }

// CI95 returns the half-width of the normal-approximation 95% confidence
// interval of the mean.
func (s *Sample) CI95() float64 {
	if s.n < 2 {
		return 0
	}
	return 1.96 * s.Std() / math.Sqrt(float64(s.n))
}

// Point is one (x, y) observation of a series, with uncertainty.
type Point struct {
	X    float64
	Y    float64
	Err  float64 // 95% CI half-width of Y
	N    int     // observations behind Y
	Note string  // optional annotation
}

// Series is a labeled sequence of points, one experimental curve.
type Series struct {
	Label  string
	XLabel string
	YLabel string
	Points []Point
}

// Add appends a point built from a sample.
func (s *Series) Add(x float64, sample *Sample) {
	s.Points = append(s.Points, Point{X: x, Y: sample.Mean(), Err: sample.CI95(), N: sample.N()})
}

// Sorted returns the points ordered by X.
func (s *Series) Sorted() []Point {
	out := make([]Point, len(s.Points))
	copy(out, s.Points)
	sort.Slice(out, func(i, j int) bool { return out[i].X < out[j].X })
	return out
}

// CSV renders the series as CSV with a header row.
func (s *Series) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s,%s,ci95,n\n", orDefault(s.XLabel, "x"), orDefault(s.YLabel, "y"))
	for _, p := range s.Sorted() {
		fmt.Fprintf(&b, "%g,%g,%g,%d\n", p.X, p.Y, p.Err, p.N)
	}
	return b.String()
}

// ASCII renders the series as a fixed-width table followed by a crude
// terminal plot, good enough to eyeball the shape of a figure.
func (s *Series) ASCII(width int) string {
	if width < 20 {
		width = 60
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", s.Label)
	pts := s.Sorted()
	if len(pts) == 0 {
		b.WriteString("(empty series)\n")
		return b.String()
	}
	maxY := pts[0].Y
	for _, p := range pts {
		if p.Y > maxY {
			maxY = p.Y
		}
	}
	fmt.Fprintf(&b, "%12s  %12s  %10s\n",
		orDefault(s.XLabel, "x"), orDefault(s.YLabel, "y"), "ci95")
	for _, p := range pts {
		bar := 0
		if maxY > 0 {
			bar = int(p.Y / maxY * float64(width))
		}
		fmt.Fprintf(&b, "%12g  %12.4f  %10.4f  |%s\n", p.X, p.Y, p.Err, strings.Repeat("*", bar))
	}
	return b.String()
}

func orDefault(s, d string) string {
	if s == "" {
		return d
	}
	return s
}
