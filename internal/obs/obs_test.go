package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// testClock returns a deterministic clock stepping 1ms per call.
func testClock() func() time.Time {
	var mu sync.Mutex
	t := time.Unix(0, 0)
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		t = t.Add(time.Millisecond)
		return t
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Emit(Event{Type: ERound})
	r.Counter("c").Inc()
	r.Gauge("g").Set(1)
	r.Histogram("h", nil).Observe(1)
	r.BeginRun(Run{})
	r.EndRun(time.Now())
	if d := r.StartSpan("s").End(); d != 0 {
		t.Fatalf("nil span duration = %v, want 0", d)
	}
	if r.Tracing() {
		t.Fatal("nil recorder must not report tracing")
	}
	if NewRecorder(nil, nil) != nil {
		t.Fatal("NewRecorder(nil, nil) must be nil")
	}
	var tr *Tracer
	tr.Emit(Event{})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var reg *Registry
	if got := reg.Snapshot(); len(got.Counters) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
}

func TestTracerSequencesAndStamps(t *testing.T) {
	sink := &CollectSink{}
	tr := NewTracer(sink, WithClock(testClock()))
	tr.Emit(Event{Type: ERound, Round: 1})
	tr.Emit(Event{Type: ERound, Round: 2})
	evs := sink.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	if evs[0].Seq != 1 || evs[1].Seq != 2 {
		t.Fatalf("bad sequence numbers: %+v", evs)
	}
	if evs[0].TNS != int64(time.Millisecond) || evs[1].TNS != int64(2*time.Millisecond) {
		t.Fatalf("bad timestamps: %d, %d", evs[0].TNS, evs[1].TNS)
	}
}

func TestNDJSONSinkRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(NewNDJSONSink(&buf), WithClock(testClock()))
	tr.Emit(Event{Type: ERound, Phase: "phase1", Round: 3, Changed: 7, Msgs: 100})
	tr.Emit(Event{Type: ESpan, Name: "sweep", DurNS: 42})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var lines []Event
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		lines = append(lines, e)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	if lines[0].Type != ERound || lines[0].Changed != 7 || lines[0].Msgs != 100 {
		t.Fatalf("round event mangled: %+v", lines[0])
	}
	if lines[1].Type != ESpan || lines[1].Name != "sweep" || lines[1].DurNS != 42 {
		t.Fatalf("span event mangled: %+v", lines[1])
	}
}

func TestOmitEmptyKeepsLinesLean(t *testing.T) {
	b, err := json.Marshal(Event{Seq: 1, TNS: 2, Type: ERound, Round: 1, Changed: 2, Msgs: 3})
	if err != nil {
		t.Fatal(err)
	}
	s := string(b)
	for _, unwanted := range []string{"router", "hops", "run", "x", "name", "err"} {
		if strings.Contains(s, `"`+unwanted+`"`) {
			t.Errorf("round event JSON leaks %q: %s", unwanted, s)
		}
	}
}

func TestRegistryMetrics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("runs").Inc()
	reg.Counter("runs").Add(4)
	reg.Gauge("last").Set(2.5)
	h := reg.Histogram("lat", LinearBuckets(10, 10, 9))
	for v := 1.0; v <= 100; v++ {
		h.Observe(v)
	}
	s := reg.Snapshot()
	if s.Counters["runs"] != 5 {
		t.Fatalf("counter = %d, want 5", s.Counters["runs"])
	}
	if s.Gauges["last"] != 2.5 {
		t.Fatalf("gauge = %g, want 2.5", s.Gauges["last"])
	}
	hs := s.Histograms["lat"]
	if hs.Count != 100 || hs.Min != 1 || hs.Max != 100 {
		t.Fatalf("histogram summary wrong: %+v", hs)
	}
	if hs.Mean != 50.5 {
		t.Fatalf("mean = %g, want 50.5", hs.Mean)
	}
	if hs.P50 < 45 || hs.P50 > 56 {
		t.Fatalf("p50 = %g, want ~50", hs.P50)
	}
	if hs.P99 < 95 || hs.P99 > 100 {
		t.Fatalf("p99 = %g, want ~99", hs.P99)
	}
	if got := len(hs.Counts); got != len(hs.Bounds)+1 {
		t.Fatalf("counts/bounds mismatch: %d vs %d", got, len(hs.Bounds))
	}
	// Same-name lookups return the same histogram.
	if reg.Histogram("lat", nil).Count() != 100 {
		t.Fatal("histogram lookup must not create a new histogram")
	}
	if q := h.Quantile(0.5); q < 40 || q > 60 {
		t.Fatalf("bucket quantile = %g, want ~50", q)
	}
	ascii := s.ASCII()
	for _, want := range []string{"counter", "runs", "gauge", "histogram", "lat", "p99"} {
		if !strings.Contains(ascii, want) {
			t.Errorf("ASCII summary missing %q:\n%s", want, ascii)
		}
	}
}

func TestRegistryConcurrency(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 1000; i++ {
				reg.Counter("n").Inc()
				reg.Histogram("h", nil).Observe(rng.Float64() * 100)
			}
		}(w)
	}
	wg.Wait()
	s := reg.Snapshot()
	if s.Counters["n"] != 8000 || s.Histograms["h"].Count != 8000 {
		t.Fatalf("lost updates: %+v", s.Counters)
	}
}

func TestSpanRecordsDuration(t *testing.T) {
	sink := &CollectSink{}
	rec := NewRecorder(NewTracer(sink, WithClock(testClock())), NewRegistry())
	sp := rec.StartSpan("work")
	d := sp.End()
	if d != time.Millisecond {
		t.Fatalf("span duration = %v, want 1ms under the test clock", d)
	}
	spans := sink.Filter(ESpan)
	if len(spans) != 1 || spans[0].Name != "work" || spans[0].DurNS != int64(time.Millisecond) {
		t.Fatalf("span event wrong: %+v", spans)
	}
	if rec.Metrics().Snapshot().Histograms["span_ns:work"].Count != 1 {
		t.Fatal("span duration not recorded in histogram")
	}
}

func TestSetupWritesTraceAndMetrics(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "t.ndjson")
	metricsPath := filepath.Join(dir, "m.json")
	run := NewRun("testtool", 42, map[string]any{"n": 10})
	rec, finish, err := Setup(run, tracePath, metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	rec.Counter("things").Inc()
	rec.Emit(Event{Type: ERound, Round: 1})
	if err := finish(); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) != 3 { // run_start, round, run_end
		t.Fatalf("got %d trace lines, want 3:\n%s", len(lines), raw)
	}
	var first Event
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if first.Type != ERunStart || first.Run == nil || first.Run.Tool != "testtool" ||
		first.Run.Seed != 42 || first.Run.Version == "" {
		t.Fatalf("run_start manifest wrong: %+v", first)
	}
	var last Event
	if err := json.Unmarshal([]byte(lines[2]), &last); err != nil {
		t.Fatal(err)
	}
	if last.Type != ERunEnd {
		t.Fatalf("trace must end with run_end, got %+v", last)
	}

	mraw, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(mraw, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["things"] != 1 || snap.Run == nil || snap.Run.Tool != "testtool" {
		t.Fatalf("metrics snapshot wrong: %+v", snap)
	}
}

func TestSetupNothingRequested(t *testing.T) {
	rec, finish, err := Setup(Run{}, "", "")
	if err != nil || rec != nil {
		t.Fatalf("empty setup: rec=%v err=%v", rec, err)
	}
	if err := finish(); err != nil {
		t.Fatal(err)
	}
}

func TestVersionNonEmpty(t *testing.T) {
	if Version() == "" {
		t.Fatal("Version must never be empty")
	}
}

func TestMultiSinkFansOut(t *testing.T) {
	a, b := &CollectSink{}, &CollectSink{}
	tr := NewTracer(MultiSink(a, b))
	tr.Emit(Event{Type: ERound})
	if len(a.Events()) != 1 || len(b.Events()) != 1 {
		t.Fatal("multi-sink must deliver to every sink")
	}
}
