package obs

import (
	"runtime"
	"runtime/debug"
	"time"
)

// Run is the per-run manifest emitted at the head of every trace and
// embedded in the metrics snapshot: enough provenance (tool, version,
// seed, full config) to re-derive the run from the saved artifacts.
type Run struct {
	// Tool is the producing command ("ocpsim", "meshview", ...).
	Tool string `json:"tool"`
	// Version is a git-describe-style build identifier from Go build
	// info: the module version, or the VCS revision with a "-dirty"
	// suffix for modified trees, or "devel" when neither is stamped.
	Version string `json:"version"`
	// GoVersion is the compiling toolchain.
	GoVersion string `json:"go_version"`
	// Seed is the run's base random seed.
	Seed int64 `json:"seed"`
	// Config is the flattened run configuration (flag values).
	Config map[string]any `json:"config,omitempty"`
	// Start is the wall-clock start in RFC 3339 format.
	Start string `json:"start,omitempty"`
}

// NewRun builds a manifest for tool with the given seed and config,
// stamped with the current build version and start time.
func NewRun(tool string, seed int64, config map[string]any) Run {
	return Run{
		Tool:      tool,
		Version:   Version(),
		GoVersion: runtime.Version(),
		Seed:      seed,
		Config:    config,
		Start:     time.Now().UTC().Format(time.RFC3339),
	}
}

// Version returns a git-describe-style identifier of the running build,
// assembled from debug.ReadBuildInfo (module version, else VCS revision
// plus dirty marker, else "devel").
func Version() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "devel"
	}
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		return v
	}
	var rev string
	dirty := false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev == "" {
		return "devel"
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if dirty {
		rev += "-dirty"
	}
	return rev
}
