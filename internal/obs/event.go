// Package obs is the repository's observability layer: a structured
// event tracer (typed events over pluggable sinks, NDJSON on disk), a
// metrics registry (counters, gauges, fixed-bucket histograms with P²
// percentile estimates), and lightweight timing spans.
//
// Everything hangs off a *Recorder, which is threaded through the
// constructors and option structs of simnet, core, routing, wormhole and
// sweep. A nil *Recorder is fully valid and means "observability off":
// every method is nil-safe and the instrumented hot paths reduce to a
// single pointer comparison, so the disabled cost is not measurable
// (BenchmarkObsOverhead pins this).
//
// The trace is a stream of flat Event records. One event type occupies
// one NDJSON line; unset fields are omitted, so each event type has a
// stable, self-describing schema (see the README's Observability
// section for the field tables and example jq queries).
package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
)

// Event types emitted by the instrumented stack. The Type field of every
// Event holds one of these.
const (
	// ERunStart opens a trace: it carries the Run manifest (tool,
	// version, seed, config) that makes the trace reproducible.
	ERunStart = "run_start"
	// ERunEnd closes a trace; DurNS is the total wall-clock time.
	ERunEnd = "run_end"
	// EPhaseStart marks the start of one fixpoint phase (core): Phase,
	// Engine and Rule identify what is about to run.
	EPhaseStart = "phase_start"
	// ERound is one changing round of the synchronous exchange (simnet):
	// Round is the 1-based round index, Changed the number of labels
	// that flipped, Msgs the status messages exchanged this round.
	ERound = "round"
	// EPhaseEnd closes a phase: Rounds is the changing-round count,
	// DurNS the phase wall-clock time.
	EPhaseEnd = "phase_end"
	// ESpan is a completed timing span: Name plus DurNS.
	ESpan = "span"
	// EFigureStart and EFigureEnd bracket one named experiment
	// (sweep.Runner.Figure); Name is the figure id.
	EFigureStart = "figure_start"
	EFigureEnd   = "figure_end"
	// ESweepStart opens one sweep over fault counts: N is the total
	// number of (f, replication) cells, Points the number of sweep
	// points.
	ESweepStart = "sweep_start"
	// ESweepCell is one evaluated (f, replication) cell: X is the fault
	// count, Rep the replication index, Value/OK the observed metric,
	// DurNS the cell wall-clock time.
	ESweepCell = "sweep_cell"
	// ESweepPoint is one aggregated sweep point: X, the number N of
	// observations behind it and their mean Value.
	ESweepPoint = "sweep_point"
	// ERoute is one routing attempt (routing.Instrument): Router, Model,
	// Src, Dst, and on success Hops plus the fault-free distance Minimal.
	ERoute = "route"
	// EWormhole summarizes one wormhole simulation: Name is the model
	// level ("worm" or "flit"), N the delivered packets, Cycles the
	// simulated cycles, Value the mean packet latency.
	EWormhole = "wormhole"
	// EDelta summarizes one incremental formation delta
	// (incremental.Field): Name is the operation ("add" or "remove"),
	// N the number of faults in the delta, Frontier the dirty-frontier
	// seed size, Rounds the total frontier rounds across both phases,
	// Changed the number of labels that settled differently, DurNS the
	// delta wall-clock time.
	EDelta = "delta"
	// ECosts is one phase's flushed cost accounting (core, incremental;
	// emitted only when a costs.Fabric is attached): Phase and Engine
	// identify the run, Rounds/Msgs/Changed (= label flips) /Words
	// /Frontier carry the totals, N is the fault count and Diameter the
	// max d(B) over the faulty blocks — the paper's round-bound
	// parameter, so rounds-vs-d(B) is one jq expression away.
	ECosts = "costs"
	// EBlockConverge is one faulty block's convergence record (core,
	// with a costs.Fabric attached): Block is the 1-based block index
	// within the result, Phase the fixpoint phase, Rounds the last round
	// any of the block's nodes changed, Diameter the block's d(B), N its
	// node count.
	EBlockConverge = "block_converge"
	// EServeDelta is one fault delta applied by the formation service
	// (internal/serve): Tenant is the tenant id, Name the operation
	// ("add" or "remove"), N the number of points, Frontier the dirty-
	// frontier seed size, Rounds the total frontier rounds, Changed the
	// labels that settled differently, DurNS the wall-clock time of the
	// whole batch the delta rode in. Err is set when the engine pass
	// failed.
	EServeDelta = "serve_delta"
	// EServeBatch summarizes one applied tenant batch (internal/serve):
	// Tenant is the tenant id, N the number of coalesced delta requests
	// (1 = no coalescing), Rounds the tenant's delta sequence after the
	// batch, Shard the 1-based shard index, Depth the shard queue backlog
	// left after the drain, DurNS the batch wall-clock time.
	EServeBatch = "serve_batch"
	// EServeRequest is one delta request's end-to-end latency attribution
	// (internal/serve): Req is the request id, Tenant the tenant id,
	// Shard the 1-based shard index, Name the operation, N the number of
	// points, and the four stage fields decompose DurNS exactly —
	// QueueNS (enqueue to shard-loop dequeue), BatchNS (dequeue to the
	// request's engine pass starting, including any batch window),
	// ComputeNS (the AddFaults/RemoveFaults frontier pass the request
	// coalesced into), PublishNS (pass end to snapshot publish + event
	// emission). QueueNS+BatchNS+ComputeNS+PublishNS == DurNS for every
	// serve_request event; octrace latency pins this. Err is set when the
	// engine pass failed.
	EServeRequest = "serve_request"
	// ERouteIndex is one routing-index (re)build (internal/routeidx):
	// Tenant is set when the build serves a tenant snapshot, N is the
	// obstacle-region count, Changed the regions compiled this build,
	// Frontier the regions reused pointer-identical from the previous
	// index, DurNS the build wall-clock time. Changed + Frontier == N,
	// and steady-state deltas keep Changed proportional to the
	// perturbation — the incremental invalidation contract.
	ERouteIndex = "route_index"
	// EInvariantViolation reports a failed paper-invariant monitor
	// (core/monitor.go, simnet frontier): Name is the monitor
	// ("rounds_bound", "phase_monotone", "frontier_shrink"), Phase the
	// phase it fired in, Err the human-readable detail. Violations are
	// events, not panics; core.Config.StrictInvariants turns them into
	// errors for CI.
	EInvariantViolation = "invariant_violation"
)

// Event is one flat trace record. Only the fields relevant to the event
// Type are set; the rest are omitted from the JSON encoding, so every
// NDJSON line is compact and self-describing. Seq and TNS are assigned
// by the Tracer.
type Event struct {
	// Seq is the 1-based emission sequence number within the trace.
	Seq int64 `json:"seq"`
	// TNS is nanoseconds since the tracer started.
	TNS int64 `json:"t_ns"`
	// Type is one of the E* constants.
	Type string `json:"type"`

	// Name identifies spans, figures, and wormhole model levels.
	Name string `json:"name,omitempty"`
	// Phase labels fixpoint phases ("phase1", "phase2") on phase and
	// round events.
	Phase string `json:"phase,omitempty"`
	// Engine is the fixpoint engine name on phase_start events.
	Engine string `json:"engine,omitempty"`
	// Rule is the status rule name on phase_start events.
	Rule string `json:"rule,omitempty"`

	Round    int `json:"round,omitempty"`
	Rounds   int `json:"rounds,omitempty"`
	Changed  int `json:"changed,omitempty"`
	Msgs     int `json:"msgs,omitempty"`
	Frontier int `json:"frontier,omitempty"`

	// Words is the bitset engine's words-touched total (costs events).
	Words int64 `json:"words,omitempty"`
	// Diameter is max d(B) on costs events, the block's own d(B) on
	// block_converge events.
	Diameter int `json:"diameter,omitempty"`
	// Block is the 1-based faulty-block index on block_converge events
	// (1-based so the zero value can be omitted like every other field).
	Block int `json:"block,omitempty"`

	X      float64 `json:"x,omitempty"`
	Rep    int     `json:"rep,omitempty"`
	N      int     `json:"n,omitempty"`
	Points int     `json:"points,omitempty"`
	Value  float64 `json:"value,omitempty"`
	OK     bool    `json:"ok,omitempty"`

	// Tenant is the serving tenant id on serve_* events.
	Tenant string `json:"tenant,omitempty"`
	// Req is the serving request id on serve_request events.
	Req int64 `json:"req,omitempty"`
	// Shard is the 1-based serving shard index on serve_request and
	// serve_batch events (1-based so the zero value is omitted, like
	// Block).
	Shard int `json:"shard,omitempty"`
	// Depth is the shard queue backlog left after a batch drain on
	// serve_batch events.
	Depth int `json:"depth,omitempty"`
	// QueueNS, BatchNS, ComputeNS and PublishNS are the per-stage
	// latency attribution on serve_request events; they sum to DurNS.
	QueueNS   int64 `json:"queue_ns,omitempty"`
	BatchNS   int64 `json:"batch_ns,omitempty"`
	ComputeNS int64 `json:"compute_ns,omitempty"`
	PublishNS int64 `json:"publish_ns,omitempty"`

	Router  string `json:"router,omitempty"`
	Model   string `json:"model,omitempty"`
	Src     string `json:"src,omitempty"`
	Dst     string `json:"dst,omitempty"`
	Hops    int    `json:"hops,omitempty"`
	Minimal int    `json:"minimal,omitempty"`
	Cycles  int    `json:"cycles,omitempty"`

	DurNS int64  `json:"dur_ns,omitempty"`
	Err   string `json:"err,omitempty"`

	// Run is the manifest, present on run_start events only.
	Run *Run `json:"run,omitempty"`
}

// Sink consumes emitted events. Sinks are called under the tracer's
// lock, so implementations need no synchronization of their own against
// concurrent Emit calls (Close may still race with nothing: the tracer
// closes sinks exactly once, after the last Emit).
type Sink interface {
	Emit(e Event)
	Close() error
}

// Flusher is the optional Sink extension for buffered sinks: Flush
// pushes buffered events downstream without closing the sink. The
// engine error paths in core flush the trace so that a run dying
// mid-phase still leaves valid NDJSON on disk.
type Flusher interface {
	Flush() error
}

// NDJSONSink writes one JSON object per line to w, buffered. If w is an
// io.Closer it is closed by Close.
type NDJSONSink struct {
	bw  *bufio.Writer
	w   io.Writer
	enc *json.Encoder
}

// NewNDJSONSink returns a sink writing NDJSON to w.
func NewNDJSONSink(w io.Writer) *NDJSONSink {
	bw := bufio.NewWriter(w)
	return &NDJSONSink{bw: bw, w: w, enc: json.NewEncoder(bw)}
}

// Emit implements Sink. Encoding errors are deliberately dropped: a
// failing trace disk must not take down the experiment.
func (s *NDJSONSink) Emit(e Event) { _ = s.enc.Encode(e) }

// Flush implements Flusher: it pushes buffered lines to the underlying
// writer without closing it, so a trace interrupted later (crash, kill)
// still ends on a complete NDJSON line as of the flush.
func (s *NDJSONSink) Flush() error { return s.bw.Flush() }

// Close flushes the buffer and closes the underlying writer when it is
// an io.Closer.
func (s *NDJSONSink) Close() error {
	err := s.bw.Flush()
	if c, ok := s.w.(io.Closer); ok {
		if cerr := c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// CollectSink buffers events in memory; tests use it to assert on exact
// event streams. It is safe for concurrent use on its own (unlike most
// sinks it may also be read while a run is in flight).
type CollectSink struct {
	mu     sync.Mutex
	events []Event
}

// Emit implements Sink.
func (s *CollectSink) Emit(e Event) {
	s.mu.Lock()
	s.events = append(s.events, e)
	s.mu.Unlock()
}

// Close implements Sink.
func (s *CollectSink) Close() error { return nil }

// Events returns a copy of the collected events.
func (s *CollectSink) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Event, len(s.events))
	copy(out, s.events)
	return out
}

// Filter returns the collected events of one type.
func (s *CollectSink) Filter(typ string) []Event {
	var out []Event
	for _, e := range s.Events() {
		if e.Type == typ {
			out = append(out, e)
		}
	}
	return out
}

// MultiSink fans every event out to several sinks.
func MultiSink(sinks ...Sink) Sink {
	if len(sinks) == 1 {
		return sinks[0]
	}
	return multiSink(sinks)
}

type multiSink []Sink

// Emit implements Sink.
func (m multiSink) Emit(e Event) {
	for _, s := range m {
		s.Emit(e)
	}
}

// Close implements Sink, returning the first error.
func (m multiSink) Close() error {
	var first error
	for _, s := range m {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Flush implements Flusher, flushing every constituent sink that
// buffers and returning the first error.
func (m multiSink) Flush() error {
	var first error
	for _, s := range m {
		if f, ok := s.(Flusher); ok {
			if err := f.Flush(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}
