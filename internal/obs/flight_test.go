package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestParseStageSLO(t *testing.T) {
	slo, err := ParseStageSLO("queue=5ms,compute=50ms,total=1s")
	if err != nil {
		t.Fatal(err)
	}
	want := StageSLO{QueueNS: 5e6, ComputeNS: 50e6, TotalNS: 1e9}
	if slo != want {
		t.Fatalf("parsed %+v, want %+v", slo, want)
	}
	if slo, err := ParseStageSLO(""); err != nil || slo != (StageSLO{}) {
		t.Fatalf("empty SLO: %+v, %v", slo, err)
	}
	for _, bad := range []string{"queue", "queue=", "queue=5xs", "queue=-1ms", "queue=0s", "frobnicate=5ms"} {
		if _, err := ParseStageSLO(bad); err == nil {
			t.Errorf("ParseStageSLO(%q) accepted", bad)
		}
	}
}

func TestStageSLOBreached(t *testing.T) {
	slo := StageSLO{ComputeNS: 100, TotalNS: 1000}
	cases := []struct {
		e    Event
		want string
	}{
		{Event{Type: EServeRequest, ComputeNS: 50, DurNS: 500}, ""},
		{Event{Type: EServeRequest, ComputeNS: 101, DurNS: 500}, "compute"},
		{Event{Type: EServeRequest, ComputeNS: 50, DurNS: 1001}, "total"},
		// Only serve_request events are judged, however large.
		{Event{Type: ESpan, ComputeNS: 9999, DurNS: 9999}, ""},
	}
	for i, c := range cases {
		if got := slo.Breached(c.e); got != c.want {
			t.Errorf("case %d: Breached = %q, want %q", i, got, c.want)
		}
	}
}

// readDump parses one flight dump file back into events, failing on any
// malformed line — the dump must be valid NDJSON down to the last byte.
func readDump(t *testing.T, path string) []Event {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var events []Event
	for i, line := range strings.Split(strings.TrimRight(string(data), "\n"), "\n") {
		var e Event
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("%s line %d: %v (%q)", path, i+1, err, line)
		}
		events = append(events, e)
	}
	return events
}

func dumpFiles(t *testing.T, dir string) []string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "flight-*.ndjson"))
	if err != nil {
		t.Fatal(err)
	}
	return files
}

func TestFlightDumpOnInvariantViolation(t *testing.T) {
	dir := t.TempDir()
	now := time.Unix(0, 0)
	f := NewFlightRecorder(FlightConfig{
		Size: 8, Dir: dir, Window: 10 * time.Second,
		Clock: func() time.Time { return now },
	})
	// Overfill the ring so the dump exercises the wrap path.
	for i := 0; i < 12; i++ {
		f.Emit(Event{Type: ESpan, Name: "warm", N: i})
	}
	f.Emit(Event{Type: EInvariantViolation, Name: "rounds_bound", Err: "boom"})

	files := dumpFiles(t, dir)
	if len(files) != 1 {
		t.Fatalf("dumps = %v, want exactly one", files)
	}
	if !strings.Contains(files[0], "invariant_violation") {
		t.Fatalf("dump file %s does not name its trigger", files[0])
	}
	events := readDump(t, files[0])
	if len(events) != 8 {
		t.Fatalf("dump holds %d events, want the full ring of 8", len(events))
	}
	last := events[len(events)-1]
	if last.Type != EInvariantViolation || last.Err != "boom" {
		t.Fatalf("dump's last event is %+v, want the trigger", last)
	}
	// The preceding entries are the newest pre-trigger ring contents,
	// oldest first.
	for i, e := range events[:len(events)-1] {
		if e.Type != ESpan || e.N != 5+i {
			t.Fatalf("dump[%d] = %+v, want warm span n=%d", i, e, 5+i)
		}
	}

	// A second trigger inside the window is suppressed, not dumped.
	now = now.Add(5 * time.Second)
	f.Emit(Event{Type: EInvariantViolation, Name: "again"})
	if got := dumpFiles(t, dir); len(got) != 1 {
		t.Fatalf("trigger inside window dumped: %v", got)
	}
	st := f.Status()
	if st.Dumps != 1 || st.Suppressed != 1 {
		t.Fatalf("status = %+v, want 1 dump, 1 suppressed", st)
	}
	if st.LastDump != dumpFiles(t, dir)[0] {
		t.Fatalf("status names %q, want %q", st.LastDump, files[0])
	}

	// Past the window the next trigger dumps again.
	now = now.Add(6 * time.Second)
	f.Emit(Event{Type: EInvariantViolation, Name: "later"})
	if got := dumpFiles(t, dir); len(got) != 2 {
		t.Fatalf("post-window trigger did not dump: %v", got)
	}
}

func TestFlightSLOTriggers(t *testing.T) {
	dir := t.TempDir()
	f := NewFlightRecorder(FlightConfig{
		Size: 16, Dir: dir, Window: time.Hour,
		SLO: StageSLO{ComputeNS: 1000},
	})
	f.Emit(Event{Type: EServeRequest, ComputeNS: 999, DurNS: 999})
	if got := dumpFiles(t, dir); len(got) != 0 {
		t.Fatalf("within-budget request dumped: %v", got)
	}
	f.Emit(Event{Type: EServeRequest, Tenant: "hot", ComputeNS: 5000, DurNS: 5000})
	files := dumpFiles(t, dir)
	if len(files) != 1 || !strings.Contains(files[0], "slo_compute") {
		t.Fatalf("dumps = %v, want one slo_compute dump", files)
	}
	events := readDump(t, files[0])
	if last := events[len(events)-1]; last.Tenant != "hot" {
		t.Fatalf("dump's last event %+v is not the breaching request", last)
	}
}

func TestFlightNoDirStillArmsWindow(t *testing.T) {
	f := NewFlightRecorder(FlightConfig{Size: 4, Window: time.Hour})
	f.Emit(Event{Type: EInvariantViolation})
	f.Emit(Event{Type: EInvariantViolation})
	st := f.Status()
	if st.Dumps != 0 || st.Suppressed != 1 {
		t.Fatalf("status = %+v, want 0 dumps and 1 suppressed without a dir", st)
	}
	if got := f.Recent(0); len(got) != 2 {
		t.Fatalf("ring holds %d events, want 2", len(got))
	}
}

func TestFlightRecent(t *testing.T) {
	f := NewFlightRecorder(FlightConfig{Size: 4})
	for i := 1; i <= 6; i++ {
		f.Emit(Event{Type: ESpan, N: i})
	}
	got := f.Recent(2)
	if len(got) != 2 || got[0].N != 5 || got[1].N != 6 {
		t.Fatalf("Recent(2) = %+v, want spans 5,6", got)
	}
	if got := f.Recent(0); len(got) != 4 || got[0].N != 3 {
		t.Fatalf("Recent(0) = %+v, want spans 3..6", got)
	}
}

// TestFlightConcurrentTriggerStorm is the race-mode contract: many
// writers hammering Emit (trigger events included) while readers poll
// Recent and Status must not deadlock or race, every dump file must be
// valid NDJSON, and a whole storm inside one window must cost at most
// one dump.
func TestFlightConcurrentTriggerStorm(t *testing.T) {
	dir := t.TempDir()
	f := NewFlightRecorder(FlightConfig{Size: 128, Dir: dir, Window: time.Hour})
	const writers, perWriter = 8, 500
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					f.Recent(16)
					f.Status()
				}
			}
		}()
	}
	var storm sync.WaitGroup
	for w := 0; w < writers; w++ {
		storm.Add(1)
		go func(w int) {
			defer storm.Done()
			for i := 0; i < perWriter; i++ {
				if i%25 == 0 {
					f.Emit(Event{Type: EInvariantViolation, Name: "storm", N: w})
				} else {
					f.Emit(Event{Type: EServeRequest, Shard: w + 1, QueueNS: 1, DurNS: 1})
				}
			}
		}(w)
	}
	storm.Wait()
	close(stop)
	wg.Wait()

	files := dumpFiles(t, dir)
	if len(files) != 1 {
		t.Fatalf("storm produced %d dumps (%v), window allows exactly 1", len(files), files)
	}
	if events := readDump(t, files[0]); len(events) == 0 {
		t.Fatal("dump is empty")
	}
	st := f.Status()
	triggers := int64(writers * perWriter / 25)
	if st.Dumps+st.Suppressed != triggers {
		t.Fatalf("dumps %d + suppressed %d != %d triggers fired", st.Dumps, st.Suppressed, triggers)
	}
	if st.Buffered != 128 {
		t.Fatalf("ring buffered %d, want full 128", st.Buffered)
	}
}
