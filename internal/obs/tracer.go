package obs

import (
	"sync"
	"time"
)

// Tracer assigns sequence numbers and timestamps to events and hands
// them to its sink. It is safe for concurrent use; a nil *Tracer drops
// every event.
type Tracer struct {
	mu    sync.Mutex
	sink  Sink
	seq   int64
	start time.Time
	now   func() time.Time
}

// TracerOption configures a Tracer.
type TracerOption func(*Tracer)

// WithClock substitutes the wall clock — tests use a deterministic
// clock so traces can be compared byte for byte.
func WithClock(now func() time.Time) TracerOption {
	return func(t *Tracer) { t.now = now }
}

// NewTracer returns a tracer emitting to sink.
func NewTracer(sink Sink, opts ...TracerOption) *Tracer {
	t := &Tracer{sink: sink, now: time.Now}
	for _, o := range opts {
		o(t)
	}
	t.start = t.now()
	return t
}

// Emit stamps e with the next sequence number and the time since the
// tracer started, then forwards it to the sink. Nil-safe.
func (t *Tracer) Emit(e Event) {
	if t == nil || t.sink == nil {
		return
	}
	t.mu.Lock()
	t.seq++
	e.Seq = t.seq
	e.TNS = t.now().Sub(t.start).Nanoseconds()
	t.sink.Emit(e)
	t.mu.Unlock()
}

// Now returns the tracer's notion of the current time (the injected
// clock, if any). Nil-safe: a nil tracer uses the wall clock.
func (t *Tracer) Now() time.Time {
	if t == nil || t.now == nil {
		return time.Now()
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.now()
}

// Flush pushes buffered events through to the sink's backing writer
// when the sink buffers (implements Flusher); otherwise it is a no-op.
// Nil-safe.
func (t *Tracer) Flush() error {
	if t == nil || t.sink == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if f, ok := t.sink.(Flusher); ok {
		return f.Flush()
	}
	return nil
}

// Close flushes and closes the sink. Nil-safe.
func (t *Tracer) Close() error {
	if t == nil || t.sink == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sink.Close()
}
