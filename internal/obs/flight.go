package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// StageSLO is the flight recorder's per-stage latency budget for
// serve_request events, in nanoseconds per stage. A zero field disables
// that stage's trigger; the zero value disables SLO triggering
// entirely (invariant violations still trigger).
type StageSLO struct {
	QueueNS   int64 `json:"queue_ns,omitempty"`
	BatchNS   int64 `json:"batch_ns,omitempty"`
	ComputeNS int64 `json:"compute_ns,omitempty"`
	PublishNS int64 `json:"publish_ns,omitempty"`
	TotalNS   int64 `json:"total_ns,omitempty"`
}

// Breached returns the name of the first stage of e that exceeds its
// budget ("" when none). Only serve_request events are judged.
func (s StageSLO) Breached(e Event) string {
	if e.Type != EServeRequest {
		return ""
	}
	switch {
	case s.QueueNS > 0 && e.QueueNS > s.QueueNS:
		return "queue"
	case s.BatchNS > 0 && e.BatchNS > s.BatchNS:
		return "batch"
	case s.ComputeNS > 0 && e.ComputeNS > s.ComputeNS:
		return "compute"
	case s.PublishNS > 0 && e.PublishNS > s.PublishNS:
		return "publish"
	case s.TotalNS > 0 && e.DurNS > s.TotalNS:
		return "total"
	}
	return ""
}

// ParseStageSLO parses the CLI form of a StageSLO: a comma-separated
// list of stage=duration pairs, e.g. "queue=5ms,compute=50ms,total=1s".
// Stages are queue, batch, compute, publish and total; an empty string
// is the zero SLO (no SLO triggers).
func ParseStageSLO(s string) (StageSLO, error) {
	var slo StageSLO
	if s == "" {
		return slo, nil
	}
	for _, part := range strings.Split(s, ",") {
		stage, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return slo, fmt.Errorf("obs: slo %q: want stage=duration", part)
		}
		d, err := time.ParseDuration(val)
		if err != nil {
			return slo, fmt.Errorf("obs: slo %q: %w", part, err)
		}
		if d <= 0 {
			return slo, fmt.Errorf("obs: slo %q: duration must be positive", part)
		}
		switch stage {
		case "queue":
			slo.QueueNS = d.Nanoseconds()
		case "batch":
			slo.BatchNS = d.Nanoseconds()
		case "compute":
			slo.ComputeNS = d.Nanoseconds()
		case "publish":
			slo.PublishNS = d.Nanoseconds()
		case "total":
			slo.TotalNS = d.Nanoseconds()
		default:
			return slo, fmt.Errorf("obs: slo %q: unknown stage (want queue, batch, compute, publish, or total)", part)
		}
	}
	return slo, nil
}

// FlightConfig parameterizes a FlightRecorder.
type FlightConfig struct {
	// Size is the event ring capacity (0 = 4096).
	Size int
	// Dir receives the auto-dump NDJSON files (flight-<n>-<reason>.ndjson).
	// Empty disables disk dumps; the ring still serves /debugz fetches.
	Dir string
	// Window is the minimum spacing between dumps: triggers firing
	// within Window of the previous dump are counted as suppressed
	// rather than dumped again, so a trigger storm costs one file
	// (0 = 10s).
	Window time.Duration
	// SLO, when any field is set, triggers a dump on a serve_request
	// event breaching a stage budget.
	SLO StageSLO
	// Clock substitutes the wall clock for tests (nil = time.Now).
	Clock func() time.Time
}

func (c FlightConfig) size() int {
	if c.Size > 0 {
		return c.Size
	}
	return 4096
}

func (c FlightConfig) window() time.Duration {
	if c.Window > 0 {
		return c.Window
	}
	return 10 * time.Second
}

// FlightRecorder is an always-on crash recorder for the event stream: a
// fixed-size ring of recent events that snapshots itself to an NDJSON
// file when a trigger event arrives — an invariant_violation, or a
// serve_request breaching the configured per-stage latency SLO. The
// point is post-hoc analysis of a bad second that nobody was tracing:
// the ring always holds the events leading up to the trigger, so the
// dump captures the context without tracing ever having been enabled.
//
// It implements Sink; wire it as an Extra sink next to the trace file
// and LiveSink. Emit appends to the ring under a mutex — cheap, and in
// practice uncontended because the Tracer already serializes sink
// emits. The dump file itself is written outside the ring lock, so
// concurrent emitters are never blocked on disk I/O; at most one dump
// is in flight at a time and triggers within the dump window are
// suppressed (counted, never lost silently).
type FlightRecorder struct {
	cfg FlightConfig
	now func() time.Time

	mu     sync.Mutex
	ring   []Event
	next   int
	filled bool
	// lastDump is the trigger time of the most recent dump; the zero
	// time means no dump yet.
	lastDump time.Time

	dumps      atomic.Int64 // dump files written
	suppressed atomic.Int64 // triggers inside the dump window
	dumpErrs   atomic.Int64 // dump attempts that failed to write
	lastFile   atomic.Pointer[string]
}

// NewFlightRecorder returns a flight recorder with the given config.
func NewFlightRecorder(cfg FlightConfig) *FlightRecorder {
	now := cfg.Clock
	if now == nil {
		now = time.Now
	}
	return &FlightRecorder{
		cfg:  cfg,
		now:  now,
		ring: make([]Event, cfg.size()),
	}
}

// Emit implements Sink: the event is appended to the ring, and when it
// is a trigger (invariant_violation, or a serve_request breaching the
// SLO) the ring — triggering event included, as its last line — is
// dumped to disk unless a dump happened within the window.
func (f *FlightRecorder) Emit(e Event) {
	reason := ""
	switch {
	case e.Type == EInvariantViolation:
		reason = "invariant_violation"
	default:
		if stage := f.cfg.SLO.Breached(e); stage != "" {
			reason = "slo_" + stage
		}
	}

	f.mu.Lock()
	f.ring[f.next] = e
	f.next++
	if f.next == len(f.ring) {
		f.next, f.filled = 0, true
	}
	if reason == "" {
		f.mu.Unlock()
		return
	}
	now := f.now()
	if !f.lastDump.IsZero() && now.Sub(f.lastDump) < f.cfg.window() {
		f.mu.Unlock()
		f.suppressed.Add(1)
		return
	}
	f.lastDump = now
	events := f.snapshotLocked()
	f.mu.Unlock()

	if f.cfg.Dir == "" {
		// No dump directory: the trigger still arms the window (so a
		// storm is counted sanely) but the snapshot only lives in the
		// ring, fetchable via /debugz.
		return
	}
	n := f.dumps.Add(1)
	path := filepath.Join(f.cfg.Dir, fmt.Sprintf("flight-%06d-%s.ndjson", n, reason))
	if err := writeDump(path, events); err != nil {
		f.dumps.Add(-1)
		f.dumpErrs.Add(1)
		return
	}
	f.lastFile.Store(&path)
}

// snapshotLocked copies the ring oldest-first. Caller holds mu.
func (f *FlightRecorder) snapshotLocked() []Event {
	have := f.next
	if f.filled {
		have = len(f.ring)
	}
	out := make([]Event, 0, have)
	for i := f.next - have; i < f.next; i++ {
		out = append(out, f.ring[(i+len(f.ring))%len(f.ring)])
	}
	return out
}

// writeDump writes one NDJSON dump file. A dump that cannot be written
// is dropped — the recorder must never take down the run it observes.
func writeDump(path string, events []Event) error {
	file, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(file)
	enc := json.NewEncoder(bw)
	for _, e := range events {
		if err := enc.Encode(e); err != nil {
			_ = file.Close()
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		_ = file.Close()
		return err
	}
	return file.Close()
}

// Close implements Sink; the ring needs no teardown.
func (f *FlightRecorder) Close() error { return nil }

// Recent returns up to n of the most recent ring events, oldest first
// (n <= 0 means the whole ring) — the /debugz fetch path.
func (f *FlightRecorder) Recent(n int) []Event {
	f.mu.Lock()
	defer f.mu.Unlock()
	events := f.snapshotLocked()
	if n > 0 && n < len(events) {
		events = events[len(events)-n:]
	}
	return events
}

// WriteTo writes the current ring contents as NDJSON — the same format
// the auto-dump files use.
func (f *FlightRecorder) WriteTo(w *bufio.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range f.Recent(0) {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return w.Flush()
}

// FlightStatus is the recorder's rolling self-accounting.
type FlightStatus struct {
	// Ring is the ring capacity, Buffered how many events it holds.
	Ring     int `json:"ring"`
	Buffered int `json:"buffered"`
	// Dumps counts dump files written, Suppressed the triggers that
	// fired inside the dump window, DumpErrors the dumps that failed to
	// write. LastDump names the most recent dump file.
	Dumps      int64  `json:"dumps"`
	Suppressed int64  `json:"suppressed,omitempty"`
	DumpErrors int64  `json:"dump_errors,omitempty"`
	LastDump   string `json:"last_dump,omitempty"`
}

// Status returns the recorder's self-accounting.
func (f *FlightRecorder) Status() FlightStatus {
	f.mu.Lock()
	buffered := f.next
	if f.filled {
		buffered = len(f.ring)
	}
	ring := len(f.ring)
	f.mu.Unlock()
	st := FlightStatus{
		Ring: ring, Buffered: buffered,
		Dumps:      f.dumps.Load(),
		Suppressed: f.suppressed.Load(),
		DumpErrors: f.dumpErrs.Load(),
	}
	if p := f.lastFile.Load(); p != nil {
		st.LastDump = *p
	}
	return st
}
