package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"ocpmesh/internal/stats"
)

// Registry holds named metrics. Metric lookups create on first use, so
// instrumented code never registers anything up front. All methods are
// safe for concurrent use; counters and gauges update with atomics,
// histograms under a per-histogram mutex.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	run        *Run
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. The name
// is canonicalized with SanitizeMetricName so every registered metric is
// valid in the Prometheus exposition format (see prom.go); names that
// sanitize identically share one counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	name = SanitizeMetricName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Names are
// canonicalized like Counter's.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	name = SanitizeMetricName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds on first use (nil bounds = DefBuckets). Bounds
// passed on later lookups of an existing histogram are ignored. Names
// are canonicalized like Counter's.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	name = SanitizeMetricName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// Counter is a monotonically increasing integer metric.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n. Nil-safe.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one. Nil-safe.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count. Nil-safe.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable float metric.
type Gauge struct{ bits atomic.Uint64 }

// Set records the current value. Nil-safe.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the last set value. Nil-safe.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// DefBuckets is the default histogram bucket layout: 20 exponential
// upper bounds from 1 to ~5e5, wide enough for hop counts, rounds,
// cycles, and nanosecond timings alike once paired with the overflow
// bucket.
var DefBuckets = ExpBuckets(1, 2, 20)

// NSBuckets is the bucket layout for nanosecond durations: exponential
// upper bounds from 256 ns to roughly 75 minutes.
var NSBuckets = ExpBuckets(256, 4, 18)

// ExpBuckets returns n exponentially growing bucket upper bounds
// start, start*factor, start*factor², ...
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LinearBuckets returns n linear bucket upper bounds start, start+width,
// start+2*width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// Histogram is a fixed-bucket histogram with count/sum/min/max and
// bounded-memory P² estimates of the 50th, 90th and 99th percentiles.
type Histogram struct {
	mu       sync.Mutex
	bounds   []float64 // sorted upper bounds; counts has one extra overflow cell
	counts   []uint64
	count    uint64
	sum      float64
	min, max float64
	p50      *stats.P2Quantile
	p90      *stats.P2Quantile
	p99      *stats.P2Quantile
}

// NewHistogram returns a histogram with the given bucket upper bounds
// (nil = DefBuckets). Bounds must be sorted ascending.
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	return &Histogram{
		bounds: bounds,
		counts: make([]uint64, len(bounds)+1),
		p50:    stats.MustP2Quantile(0.5),
		p90:    stats.MustP2Quantile(0.9),
		p99:    stats.MustP2Quantile(0.99),
	}
}

// Observe records one value. Nil-safe.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.p50.Add(v)
	h.p90.Add(v)
	h.p99.Add(v)
	h.mu.Unlock()
}

// Count returns the number of observations. Nil-safe.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Quantile returns the q-quantile estimated by linear interpolation
// inside the fixed buckets (0 with no observations). The P² estimates in
// the snapshot are usually tighter; Quantile answers arbitrary q.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	rank := q * float64(h.count)
	cum := 0.0
	for i, c := range h.counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		lo := h.min
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.max
		if i < len(h.bounds) && h.bounds[i] < hi {
			hi = h.bounds[i]
		}
		if lo > hi {
			lo = hi
		}
		return lo + (hi-lo)*(rank-prev)/float64(c)
	}
	return h.max
}

// HistogramSnapshot is the exported state of a histogram.
type HistogramSnapshot struct {
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
	Min    float64   `json:"min"`
	Max    float64   `json:"max"`
	Mean   float64   `json:"mean"`
	P50    float64   `json:"p50"`
	P90    float64   `json:"p90"`
	P99    float64   `json:"p99"`
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
}

func (h *Histogram) snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{
		Count: h.count, Sum: h.sum, Min: h.min, Max: h.max,
		P50: h.p50.Value(), P90: h.p90.Value(), P99: h.p99.Value(),
		Bounds: append([]float64(nil), h.bounds...),
		Counts: append([]uint64(nil), h.counts...),
	}
	if h.count > 0 {
		s.Mean = h.sum / float64(h.count)
	}
	return s
}

// Snapshot is a point-in-time export of a registry.
type Snapshot struct {
	Run        *Run                         `json:"run,omitempty"`
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot exports every metric. Nil-safe: a nil registry exports an
// empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s.Run = r.run
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// ASCII renders a sorted, human-readable summary of the snapshot.
func (s Snapshot) ASCII() string {
	var b strings.Builder
	for _, name := range sortedKeys(s.Counters) {
		fmt.Fprintf(&b, "counter    %-32s %12d\n", name, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		fmt.Fprintf(&b, "gauge      %-32s %12g\n", name, s.Gauges[name])
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		fmt.Fprintf(&b, "histogram  %-32s n=%d mean=%.4g min=%g max=%g p50=%.4g p90=%.4g p99=%.4g\n",
			name, h.Count, h.Mean, h.Min, h.Max, h.P50, h.P90, h.P99)
	}
	return b.String()
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
