package obs

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// PromContentType is the Content-Type of the Prometheus text exposition
// format version this package emits.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// ValidMetricName reports whether name matches the Prometheus metric
// name grammar [a-zA-Z_:][a-zA-Z0-9_:]*.
func ValidMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		if !validMetricByte(name[i], i == 0) {
			return false
		}
	}
	return true
}

func validMetricByte(c byte, first bool) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		return true
	case c >= '0' && c <= '9':
		return !first
	default:
		return false
	}
}

// SanitizeMetricName maps an arbitrary name onto the Prometheus metric
// name grammar by replacing every invalid byte with '_' (an empty name
// becomes a single '_'). Valid names pass through unchanged, so the
// common case allocates nothing. Registry canonicalizes every metric
// name through this function, which is what guarantees the exposition
// endpoint can never emit an unscrapable page; distinct raw names that
// sanitize to the same string share one metric.
func SanitizeMetricName(name string) string {
	if name == "" {
		return "_"
	}
	if ValidMetricName(name) {
		return name
	}
	b := []byte(name)
	for i := range b {
		if !validMetricByte(b[i], i == 0) {
			b[i] = '_'
		}
	}
	return string(b)
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4): counters and gauges under their own names,
// histograms as summaries carrying the P² p50/p90/p99 quantiles plus
// _sum/_count/_min/_max series. When the snapshot carries a Run
// manifest, an ocpmesh_run_info gauge exports its provenance as labels.
// Output is sorted by metric name, so scrapes are diff-stable.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	if s.Run != nil {
		b.WriteString("# HELP ocpmesh_run_info Run manifest of the producing process.\n")
		b.WriteString("# TYPE ocpmesh_run_info gauge\n")
		fmt.Fprintf(&b, "ocpmesh_run_info{tool=\"%s\",version=\"%s\",go_version=\"%s\",seed=\"%d\"} 1\n",
			escapeLabel(s.Run.Tool), escapeLabel(s.Run.Version),
			escapeLabel(s.Run.GoVersion), s.Run.Seed)
	}
	for _, name := range sortedKeys(s.Counters) {
		n := SanitizeMetricName(name)
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %s\n", n, n, promFloat(float64(s.Counters[name])))
	}
	for _, name := range sortedKeys(s.Gauges) {
		n := SanitizeMetricName(name)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %s\n", n, n, promFloat(s.Gauges[name]))
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		n := SanitizeMetricName(name)
		fmt.Fprintf(&b, "# TYPE %s summary\n", n)
		fmt.Fprintf(&b, "%s{quantile=\"0.5\"} %s\n", n, promFloat(h.P50))
		fmt.Fprintf(&b, "%s{quantile=\"0.9\"} %s\n", n, promFloat(h.P90))
		fmt.Fprintf(&b, "%s{quantile=\"0.99\"} %s\n", n, promFloat(h.P99))
		fmt.Fprintf(&b, "%s_sum %s\n", n, promFloat(h.Sum))
		fmt.Fprintf(&b, "%s_count %s\n", n, promFloat(float64(h.Count)))
		fmt.Fprintf(&b, "# TYPE %s_min gauge\n%s_min %s\n", n, n, promFloat(h.Min))
		fmt.Fprintf(&b, "# TYPE %s_max gauge\n%s_max %s\n", n, n, promFloat(h.Max))
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// promFloat formats a sample value for the text format, which spells the
// specials NaN, +Inf and -Inf.
func promFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the text format: backslash,
// double quote and newline.
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	return r.Replace(v)
}
