package obs

import (
	"math"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestSanitizeMetricName(t *testing.T) {
	cases := []struct{ in, want string }{
		{"core_forms", "core_forms"},
		{"span_ns:sweep", "span_ns:sweep"},
		{"UpperCase_09", "UpperCase_09"},
		{"", "_"},
		{"9leading_digit", "_leading_digit"},
		{"dots.and-dashes", "dots_and_dashes"},
		{"spaces and &!", "spaces_and___"},
		{"héllo", "h__llo"}, // é is two UTF-8 bytes
	}
	for _, c := range cases {
		if got := SanitizeMetricName(c.in); got != c.want {
			t.Errorf("SanitizeMetricName(%q) = %q, want %q", c.in, got, c.want)
		}
		if !ValidMetricName(SanitizeMetricName(c.in)) {
			t.Errorf("sanitized %q is still invalid", c.in)
		}
	}
}

// TestRegistryCanonicalizesNames checks that metrics registered under
// exposition-invalid names land in the snapshot under their sanitized
// form, and that the raw and sanitized spellings alias one metric.
func TestRegistryCanonicalizesNames(t *testing.T) {
	r := NewRegistry()
	r.Counter("bad name!").Add(2)
	r.Counter("bad_name_").Add(3) // same after sanitization
	r.Gauge("1st").Set(4)
	r.Histogram("héllo", nil).Observe(1)

	s := r.Snapshot()
	if got := s.Counters["bad_name_"]; got != 5 {
		t.Fatalf("counter alias: got %d, want 5 (snapshot %+v)", got, s.Counters)
	}
	if _, ok := s.Counters["bad name!"]; ok {
		t.Fatal("raw invalid name leaked into the snapshot")
	}
	if got := s.Gauges["_st"]; got != 4 {
		t.Fatalf("gauge: got %v, want 4", got)
	}
	if _, ok := s.Histograms["h__llo"]; !ok {
		t.Fatalf("histogram not under sanitized name: %v", s.Histograms)
	}
}

// promLine matches one sample line of the text exposition format:
// a valid metric name, optional label set, and a float value.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (NaN|[+-]?Inf|[-+0-9.eE]+)$`)

// checkPromPage asserts page is scrapable: every line is either a
// well-formed comment or a sample line whose value parses.
func checkPromPage(t *testing.T, page string) {
	t.Helper()
	lines := strings.Split(strings.TrimRight(page, "\n"), "\n")
	if len(lines) == 0 {
		t.Fatal("empty exposition page")
	}
	for i, line := range lines {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		m := promLine.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line %d not valid exposition format: %q", i+1, line)
		}
		val := line[strings.LastIndexByte(line, ' ')+1:]
		if val != "NaN" && val != "+Inf" && val != "-Inf" {
			if _, err := strconv.ParseFloat(val, 64); err != nil {
				t.Fatalf("line %d: bad sample value %q: %v", i+1, val, err)
			}
		}
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("requests total").Add(7) // invalid raw name
	r.Gauge("temp").Set(-2.5)
	h := r.Histogram("lat_ns", NSBuckets)
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	run := NewRun("ocpsim", 42, nil)
	run.Version = `wei"rd\ver` + "\nsion" // must be escaped, not break the page
	r.mu.Lock()
	r.run = &run
	r.mu.Unlock()

	var b strings.Builder
	if err := r.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	page := b.String()
	checkPromPage(t, page)

	for _, want := range []string{
		"requests_total 7",
		"temp -2.5",
		"lat_ns_count 100",
		`lat_ns{quantile="0.5"}`,
		`lat_ns{quantile="0.99"}`,
		"lat_ns_min 1",
		"lat_ns_max 100",
		`tool="ocpsim"`,
	} {
		if !strings.Contains(page, want) {
			t.Errorf("page missing %q:\n%s", want, page)
		}
	}
}

func TestWritePrometheusEmpty(t *testing.T) {
	var b strings.Builder
	if err := NewRegistry().Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		checkPromPage(t, b.String())
	}
}

// TestHistogramFewObservations pins the P² estimators' direct
// interpolation path: with fewer than five observations the snapshot
// quantiles come from the sorted sample itself.
func TestHistogramFewObservations(t *testing.T) {
	h := NewHistogram(nil)
	s := h.snapshot()
	if s.Count != 0 || s.P50 != 0 || s.P99 != 0 {
		t.Fatalf("empty histogram snapshot = %+v, want zeros", s)
	}

	h.Observe(10)
	s = h.snapshot()
	if s.P50 != 10 || s.P90 != 10 || s.P99 != 10 {
		t.Fatalf("single observation: p50=%g p90=%g p99=%g, want all 10", s.P50, s.P90, s.P99)
	}

	h2 := NewHistogram(nil)
	h2.Observe(10)
	h2.Observe(20)
	s = h2.snapshot()
	if s.P50 != 15 { // linear interpolation between the two points
		t.Fatalf("two observations: p50=%g, want 15", s.P50)
	}
	if s.Min != 10 || s.Max != 20 || s.Mean != 15 {
		t.Fatalf("two observations: min=%g max=%g mean=%g", s.Min, s.Max, s.Mean)
	}
	if s.P99 < s.P50 || s.P99 > 20 {
		t.Fatalf("two observations: p99=%g outside [p50, max]", s.P99)
	}

	h4 := NewHistogram(nil)
	for _, v := range []float64{4, 1, 3, 2} {
		h4.Observe(v)
	}
	s = h4.snapshot()
	if s.P50 != 2.5 {
		t.Fatalf("four observations: p50=%g, want 2.5", s.P50)
	}
}

// TestHistogramAllEqual checks the degenerate stream where every
// observation is identical: all quantile markers must collapse onto the
// value (the P² parabolic fit divides by marker-position differences,
// so this exercises its guard paths).
func TestHistogramAllEqual(t *testing.T) {
	for _, n := range []int{3, 5, 1000} {
		h := NewHistogram(nil)
		for i := 0; i < n; i++ {
			h.Observe(7)
		}
		s := h.snapshot()
		if s.P50 != 7 || s.P90 != 7 || s.P99 != 7 {
			t.Fatalf("n=%d all-equal: p50=%g p90=%g p99=%g, want all 7", n, s.P50, s.P90, s.P99)
		}
		if s.Min != 7 || s.Max != 7 || s.Mean != 7 {
			t.Fatalf("n=%d all-equal: min=%g max=%g mean=%g, want all 7", n, s.Min, s.Max, s.Mean)
		}
		if math.IsNaN(h.Quantile(0.5)) {
			t.Fatalf("n=%d all-equal: bucket quantile is NaN", n)
		}
	}
}

// TestHistogramConcurrentObserveSnapshot races observers against
// snapshot readers; run under -race this pins the lock discipline, and
// the final snapshot must account for every observation.
func TestHistogramConcurrentObserveSnapshot(t *testing.T) {
	r := NewRegistry()
	const goroutines, per = 8, 500
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent reader
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := r.Snapshot()
			if h, ok := s.Histograms["conc"]; ok {
				if h.Min > h.Max {
					t.Error("snapshot min > max")
					return
				}
				if h.Count > 0 && (h.P50 < h.Min || h.P50 > h.Max) {
					t.Errorf("snapshot p50=%g outside [%g, %g]", h.P50, h.Min, h.Max)
					return
				}
			}
		}
	}()
	var writers sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			h := r.Histogram("conc", nil)
			for i := 0; i < per; i++ {
				h.Observe(float64(g*per + i))
			}
		}(g)
	}
	writers.Wait()
	close(stop)
	wg.Wait()
	s := r.Snapshot().Histograms["conc"]
	if s.Count != goroutines*per {
		t.Fatalf("count = %d, want %d", s.Count, goroutines*per)
	}
	if s.Min != 0 || s.Max != goroutines*per-1 {
		t.Fatalf("min=%g max=%g, want 0 and %d", s.Min, s.Max, goroutines*per-1)
	}
}
