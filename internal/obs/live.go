package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// LiveStatus is the point-in-time view of a run that /runz serves: the
// manifest, where the run currently is (figure, phase, round), how much
// of the current sweep is done, and per-event-type counts. It is
// assembled from the event stream alone, so it needs no cooperation
// from the instrumented code beyond what the trace already carries.
//
// Under a parallel sweep several cells run formations concurrently and
// their phase/round events interleave in one serialized stream; the
// phase/round fields then show the most recent event, which is the
// right "is it still moving?" signal even if it hops between cells.
type LiveStatus struct {
	// Run is the manifest from the run_start event.
	Run *Run `json:"run,omitempty"`
	// Seq is the sequence number of the last event seen; Events is the
	// total number of events, TNS the stream-relative time of the last.
	Seq    int64 `json:"seq"`
	Events int64 `json:"events"`
	TNS    int64 `json:"t_ns"`
	// Figure is the experiment currently running (figure_start .. _end).
	Figure string `json:"figure,omitempty"`
	// Phase, Engine, Rule describe the innermost running fixpoint phase;
	// Round and Changed track its latest round event.
	Phase   string `json:"phase,omitempty"`
	Engine  string `json:"engine,omitempty"`
	Rule    string `json:"rule,omitempty"`
	Round   int    `json:"round,omitempty"`
	Changed int    `json:"changed,omitempty"`
	// LastRounds is the round count of the most recently completed phase.
	LastRounds int `json:"last_rounds,omitempty"`
	// SweepDone/SweepTotal count evaluated cells against the sweep_start
	// announcement; SweepPoints counts aggregated points so far.
	SweepDone   int `json:"sweep_done,omitempty"`
	SweepTotal  int `json:"sweep_total,omitempty"`
	SweepPoints int `json:"sweep_points,omitempty"`
	// Errors counts events that carried an error; LastErr is the latest.
	Errors  int64  `json:"errors,omitempty"`
	LastErr string `json:"last_err,omitempty"`
	// Done reports that run_end has been seen.
	Done bool `json:"done,omitempty"`
	// Counts is the number of events seen per event type.
	Counts map[string]int64 `json:"counts"`
	// Dropped counts events a slow /eventz subscriber missed.
	Dropped int64 `json:"dropped,omitempty"`
	// SubscriberDropped breaks Dropped down per live subscriber id, so a
	// single slow tail is identifiable from /runz (the same counts back
	// the ocpmesh_live_subscriber_dropped Prometheus family).
	SubscriberDropped map[string]int64 `json:"subscriber_dropped,omitempty"`
	// Serve is the serving layer's attribution view, folded from
	// serve_batch and serve_request events (nil when none were seen).
	Serve *ServeLive `json:"serve,omitempty"`
}

// ServeLive is the /runz view of the formation service, assembled from
// the serve_* event stream alone: per-shard and per-tenant request
// counts, busy time and queue depth, so shard imbalance and hot tenants
// are visible without scraping Prometheus.
type ServeLive struct {
	// Requests counts serve_request events; Shards and Tenants key
	// their stats by 1-based shard index and tenant id respectively.
	Requests int64                 `json:"requests"`
	Shards   map[string]*ShardLive `json:"shards,omitempty"`
	Tenants  map[string]*ShardLive `json:"tenants,omitempty"`
}

// ShardLive is one shard's (or tenant's) rolling serving stats.
type ShardLive struct {
	// Requests counts applied delta requests, Batches applied batches.
	Requests int64 `json:"requests"`
	Batches  int64 `json:"batches,omitempty"`
	// BusyNS is the cumulative engine-pass wall-clock attributed here;
	// Busy is BusyNS over the stream's elapsed time (the busy fraction).
	BusyNS int64   `json:"busy_ns"`
	Busy   float64 `json:"busy,omitempty"`
	// Depth is the latest observed queue backlog (shards only).
	Depth int `json:"depth,omitempty"`
	// Seq is the latest snapshot sequence (tenants only).
	Seq int `json:"seq,omitempty"`
}

// LiveSink is an in-process Sink that keeps a ring buffer of recent
// events, a rolling LiveStatus, and a set of subscribers for live
// tailing — the in-memory backend of the serve package's /runz and
// /eventz endpoints. Emit never blocks: a subscriber whose channel is
// full loses events (counted in LiveStatus.Dropped) rather than
// stalling the instrumented run.
//
// Unlike most sinks it is internally locked, because HTTP handlers read
// it while the tracer is still emitting.
type LiveSink struct {
	mu      sync.Mutex
	ring    []Event
	next    int // ring write cursor
	filled  bool
	status  LiveStatus
	subs    map[int]*liveSub
	subSeq  int
	dropped int64
}

// liveSub is one subscriber: its channel and how many events it has
// missed because the channel was full when they were emitted.
type liveSub struct {
	ch      chan Event
	dropped int64
}

// MaxSubscriberBuffer bounds the channel buffer one Subscribe call can
// request. A serving process may hold many concurrent SSE tails; an
// unbounded per-subscriber buffer would let one slow consumer pin an
// arbitrary amount of the emitter's memory — backpressure is handled by
// dropping (and counting) instead, never by buffering without bound or
// blocking Emit.
const MaxSubscriberBuffer = 4096

// NewLiveSink returns a live sink retaining the last size events
// (minimum 1; a typical CLI uses a few hundred).
func NewLiveSink(size int) *LiveSink {
	if size < 1 {
		size = 1
	}
	return &LiveSink{
		ring: make([]Event, size),
		subs: make(map[int]*liveSub),
	}
}

// Emit implements Sink.
func (s *LiveSink) Emit(e Event) {
	s.mu.Lock()
	s.ring[s.next] = e
	s.next++
	if s.next == len(s.ring) {
		s.next, s.filled = 0, true
	}
	s.update(e)
	for _, sub := range s.subs {
		select {
		case sub.ch <- e:
		default:
			sub.dropped++
			s.dropped++
		}
	}
	s.mu.Unlock()
}

// update folds one event into the rolling status. Called with mu held.
func (s *LiveSink) update(e Event) {
	st := &s.status
	st.Seq = e.Seq
	st.TNS = e.TNS
	st.Events++
	if st.Counts == nil {
		st.Counts = make(map[string]int64)
	}
	st.Counts[e.Type]++
	if e.Err != "" {
		st.Errors++
		st.LastErr = e.Err
	}
	switch e.Type {
	case ERunStart:
		st.Run = e.Run
	case ERunEnd:
		st.Done = true
	case EFigureStart:
		st.Figure = e.Name
	case EFigureEnd:
		st.Figure = ""
	case EPhaseStart:
		st.Phase, st.Engine, st.Rule = e.Phase, e.Engine, e.Rule
		st.Round, st.Changed = 0, 0
	case ERound:
		st.Phase = e.Phase
		st.Round, st.Changed = e.Round, e.Changed
	case EPhaseEnd:
		st.Phase, st.Engine, st.Rule = "", "", ""
		st.LastRounds = e.Rounds
	case ESweepStart:
		st.SweepDone, st.SweepTotal, st.SweepPoints = 0, e.N, 0
	case ESweepCell:
		st.SweepDone++
	case ESweepPoint:
		st.SweepPoints++
	case EServeRequest:
		sv := st.serve()
		sv.Requests++
		if e.Tenant != "" {
			tn := liveSlot(&sv.Tenants, e.Tenant)
			tn.Requests++
			// Per-request busy attribution: the compute+publish time the
			// request's engine pass cost. Coalesced requests share a pass,
			// so the per-tenant sum over-counts shared passes in exchange
			// for ranking hot tenants by the work they demanded — which is
			// the signal hot-tenant detection needs.
			tn.BusyNS += e.ComputeNS + e.PublishNS
		}
	case EServeBatch:
		sv := st.serve()
		if e.Shard > 0 {
			sh := liveSlot(&sv.Shards, fmt.Sprintf("%d", e.Shard))
			sh.Batches++
			sh.Requests += int64(e.N)
			sh.BusyNS += e.DurNS
			sh.Depth = e.Depth
		}
		if e.Tenant != "" {
			tn := liveSlot(&sv.Tenants, e.Tenant)
			tn.Batches++
			tn.Seq = e.Rounds
		}
	}
}

// serve returns the lazily allocated serving view. Called with mu held.
func (st *LiveStatus) serve() *ServeLive {
	if st.Serve == nil {
		st.Serve = &ServeLive{}
	}
	return st.Serve
}

// liveSlot returns m[key], allocating the map and slot on first use.
func liveSlot(m *map[string]*ShardLive, key string) *ShardLive {
	if *m == nil {
		*m = make(map[string]*ShardLive)
	}
	s, ok := (*m)[key]
	if !ok {
		s = &ShardLive{}
		(*m)[key] = s
	}
	return s
}

// liveFlushWait bounds how long Flush waits for subscribers to drain.
// It is a variable so tests can shrink it.
var liveFlushWait = 100 * time.Millisecond

// Flush implements Flusher: it waits — bounded by liveFlushWait — for
// every subscriber's channel buffer to drain, so events already emitted
// (in particular the error event a failing engine run just wrote, which
// core flushes through the recorder before returning) reach /eventz
// tails before the caller moves on. The ring buffer itself needs no
// flushing: Emit writes it synchronously. Flush never errors and never
// blocks on a stuck consumer; after the deadline it simply returns, as
// the live sink must not be able to wedge the run it observes.
func (s *LiveSink) Flush() error {
	deadline := time.Now().Add(liveFlushWait)
	for {
		s.mu.Lock()
		pending := 0
		for _, sub := range s.subs {
			pending += len(sub.ch)
		}
		s.mu.Unlock()
		if pending == 0 || time.Now().After(deadline) {
			return nil
		}
		time.Sleep(time.Millisecond)
	}
}

// Close implements Sink: it closes every subscriber channel so /eventz
// streams terminate when the run finishes.
func (s *LiveSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for id, sub := range s.subs {
		close(sub.ch)
		delete(s.subs, id)
	}
	return nil
}

// Status returns a copy of the rolling status, with the per-subscriber
// drop counts and the serving busy fractions filled in.
func (s *LiveSink) Status() LiveStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.status
	st.Dropped = s.dropped
	counts := make(map[string]int64, len(s.status.Counts))
	for k, v := range s.status.Counts {
		counts[k] = v
	}
	st.Counts = counts
	if len(s.subs) > 0 {
		st.SubscriberDropped = make(map[string]int64, len(s.subs))
		for id, sub := range s.subs {
			st.SubscriberDropped[fmt.Sprintf("%d", id)] = sub.dropped
		}
	}
	if s.status.Serve != nil {
		sv := &ServeLive{Requests: s.status.Serve.Requests}
		sv.Shards = copyLiveSlots(s.status.Serve.Shards, st.TNS)
		sv.Tenants = copyLiveSlots(s.status.Serve.Tenants, st.TNS)
		st.Serve = sv
	}
	return st
}

// copyLiveSlots deep-copies one attribution map, deriving each slot's
// busy fraction from the stream-relative elapsed time.
func copyLiveSlots(m map[string]*ShardLive, elapsedNS int64) map[string]*ShardLive {
	if m == nil {
		return nil
	}
	out := make(map[string]*ShardLive, len(m))
	for k, v := range m {
		c := *v
		if elapsedNS > 0 {
			c.Busy = float64(c.BusyNS) / float64(elapsedNS)
		}
		out[k] = &c
	}
	return out
}

// SubscriberDrops returns the per-subscriber drop counts of the current
// subscribers, keyed by subscriber id.
func (s *LiveSink) SubscriberDrops() map[int]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[int]int64, len(s.subs))
	for id, sub := range s.subs {
		out[id] = sub.dropped
	}
	return out
}

// WriteDropsPrometheus renders the sink's drop accounting as a
// Prometheus counter family: the aggregate ocpmesh_live_dropped plus
// one ocpmesh_live_subscriber_dropped{subscriber="N"} series per live
// subscriber — the /metrics face of the SSE ": dropped N" gap comments,
// so a slow tail is visible to scrapes, not only to itself.
func (s *LiveSink) WriteDropsPrometheus(w io.Writer) error {
	s.mu.Lock()
	total := s.dropped
	type sub struct {
		id      int
		dropped int64
	}
	subs := make([]sub, 0, len(s.subs))
	for id, ls := range s.subs {
		subs = append(subs, sub{id, ls.dropped})
	}
	s.mu.Unlock()
	for i := 1; i < len(subs); i++ { // stable output: ascending id
		for j := i; j > 0 && subs[j].id < subs[j-1].id; j-- {
			subs[j], subs[j-1] = subs[j-1], subs[j]
		}
	}
	var b []byte
	b = append(b, "# TYPE ocpmesh_live_dropped counter\nocpmesh_live_dropped "...)
	b = append(b, fmt.Sprintf("%d\n", total)...)
	b = append(b, "# TYPE ocpmesh_live_subscriber_dropped counter\n"...)
	for _, su := range subs {
		b = append(b, fmt.Sprintf("ocpmesh_live_subscriber_dropped{subscriber=\"%d\"} %d\n", su.id, su.dropped)...)
	}
	_, err := w.Write(b)
	return err
}

// Recent returns up to n of the most recent events, oldest first.
func (s *LiveSink) Recent(n int) []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	have := s.next
	if s.filled {
		have = len(s.ring)
	}
	if n > have {
		n = have
	}
	if n <= 0 {
		return nil
	}
	out := make([]Event, 0, n)
	for i := s.next - n; i < s.next; i++ {
		out = append(out, s.ring[(i+len(s.ring))%len(s.ring)])
	}
	return out
}

// Subscribe registers a live tail with the given channel buffer —
// clamped to [1, MaxSubscriberBuffer] — and returns its id and receive
// channel. The channel is closed by Close; events emitted while the
// buffer is full are dropped for this subscriber only (counted, see
// SubscriberDropped) rather than blocking the emitter.
func (s *LiveSink) Subscribe(buf int) (int, <-chan Event) {
	if buf < 1 {
		buf = 1
	}
	if buf > MaxSubscriberBuffer {
		buf = MaxSubscriberBuffer
	}
	ch := make(chan Event, buf)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.subSeq++
	id := s.subSeq
	s.subs[id] = &liveSub{ch: ch}
	return id, ch
}

// SubscriberDropped returns how many events the given subscriber has
// missed so far because its buffer was full. Unknown (or already
// unsubscribed) ids report 0.
func (s *LiveSink) SubscriberDropped(id int) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sub, ok := s.subs[id]; ok {
		return sub.dropped
	}
	return 0
}

// Unsubscribe removes a subscriber; its channel is closed. Unknown ids
// are ignored (the subscriber may have been removed by Close already).
func (s *LiveSink) Unsubscribe(id int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sub, ok := s.subs[id]; ok {
		close(sub.ch)
		delete(s.subs, id)
	}
}
