package obs

import "time"

// Recorder bundles a tracer and a metrics registry; it is the single
// handle instrumented code receives. Either half may be nil, and a nil
// *Recorder disables observability entirely — every method is nil-safe,
// so call sites need no guards beyond an optional "skip the whole block"
// pointer check on hot paths.
type Recorder struct {
	tracer  *Tracer
	metrics *Registry
}

// NewRecorder combines a tracer and a registry. It returns nil when both
// are nil, so downstream nil checks see "observability off" as a single
// nil pointer.
func NewRecorder(t *Tracer, m *Registry) *Recorder {
	if t == nil && m == nil {
		return nil
	}
	return &Recorder{tracer: t, metrics: m}
}

// Tracer returns the tracer half (possibly nil). Nil-safe.
func (r *Recorder) Tracer() *Tracer {
	if r == nil {
		return nil
	}
	return r.tracer
}

// Metrics returns the registry half (possibly nil). Nil-safe.
func (r *Recorder) Metrics() *Registry {
	if r == nil {
		return nil
	}
	return r.metrics
}

// Tracing reports whether emitted events go anywhere. Nil-safe.
func (r *Recorder) Tracing() bool { return r != nil && r.tracer != nil }

// Emit forwards an event to the tracer. Nil-safe.
func (r *Recorder) Emit(e Event) {
	if r != nil {
		r.tracer.Emit(e)
	}
}

// Counter returns the named counter (nil when metrics are off; the nil
// counter's methods are no-ops). Nil-safe.
func (r *Recorder) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	return r.metrics.Counter(name)
}

// Gauge returns the named gauge. Nil-safe.
func (r *Recorder) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	return r.metrics.Gauge(name)
}

// Histogram returns the named histogram, creating it with bounds (nil =
// DefBuckets) on first use. Nil-safe.
func (r *Recorder) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	return r.metrics.Histogram(name, bounds)
}

// Flush pushes buffered trace events to their backing writer (see
// Tracer.Flush). The formation engines call it on error paths so a run
// that dies mid-phase still leaves a valid NDJSON trace behind.
// Nil-safe.
func (r *Recorder) Flush() error {
	if r == nil {
		return nil
	}
	return r.tracer.Flush()
}

// Now returns the current time from the tracer's clock (so spans stay
// deterministic under an injected test clock). Nil-safe.
func (r *Recorder) Now() time.Time {
	if r == nil {
		return time.Now()
	}
	return r.tracer.Now()
}

// BeginRun emits the run_start manifest event and attaches the manifest
// to the metrics snapshot. Nil-safe.
func (r *Recorder) BeginRun(run Run) {
	if r == nil {
		return
	}
	if r.metrics != nil {
		r.metrics.mu.Lock()
		r.metrics.run = &run
		r.metrics.mu.Unlock()
	}
	r.Emit(Event{Type: ERunStart, Name: run.Tool, Run: &run})
}

// EndRun emits the closing run_end event with the total duration since
// start. Nil-safe.
func (r *Recorder) EndRun(start time.Time) {
	if r == nil {
		return
	}
	r.Emit(Event{Type: ERunEnd, DurNS: r.Now().Sub(start).Nanoseconds()})
}

// Span is an in-flight timing measurement. The zero Span (from a nil
// recorder) is valid and End is a no-op.
type Span struct {
	rec   *Recorder
	name  string
	start time.Time
}

// StartSpan opens a named span. Nil-safe: a nil recorder returns a
// no-op span without reading the clock.
func (r *Recorder) StartSpan(name string) Span {
	if r == nil {
		return Span{}
	}
	return Span{rec: r, name: name, start: r.Now()}
}

// End closes the span, emitting a span event and recording the duration
// in the "span_ns:<name>" histogram. It returns the duration (0 for the
// no-op span).
func (s Span) End() time.Duration {
	if s.rec == nil {
		return 0
	}
	d := s.rec.Now().Sub(s.start)
	s.rec.Emit(Event{Type: ESpan, Name: s.name, DurNS: d.Nanoseconds()})
	s.rec.Histogram("span_ns:"+s.name, NSBuckets).Observe(float64(d.Nanoseconds()))
	return d
}
