// Package costs is the convergence observatory's counter fabric: a
// sharded, atomic, allocation-free accounting layer for the paper's
// distributed-cost quantities — rounds, status messages, label flips,
// words touched (bitset engine), frontier sizes, incremental deltas, and
// invariant-monitor violations.
//
// The fabric is cheap enough to stay enabled in the bitset and parallel
// engines (see BENCH_overhead.json and BenchmarkOverhead): writers pick a
// shard, shards are cache-line padded so concurrent workers never false-
// share, and every add is a single atomic.Int64.Add with no allocation.
// Readers aggregate across shards on demand (Total, Snapshot), so reads
// are O(shards) and never block writers.
//
// On top of the raw fabric, the Phase collector (phase.go) accumulates
// one engine phase worth of costs locally — one shard add per round, not
// per node — and optionally tracks the last round each node's label
// changed, which is what the per-block convergence attribution and the
// monotonicity monitors in internal/core consume.
package costs

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
)

// Kind enumerates the accounted quantities. All are monotone totals.
type Kind int

const (
	// KindRounds counts completed changing rounds across all phases.
	KindRounds Kind = iota
	// KindMessages counts status messages exchanged (one per directed
	// live link per round in the synchronous engines; per frontier-node
	// live link per wave in the frontier engine).
	KindMessages
	// KindLabelFlips counts label changes (node-label granularity; the
	// bitset engine counts flipped bits, which is the same quantity).
	KindLabelFlips
	// KindWordsTouched counts 64-lane words evaluated by the bitset
	// engine's changed-word frontier; it is the engine's true work metric.
	KindWordsTouched
	// KindFrontierNodes sums the frontier sizes over all waves of the
	// incremental/frontier engine.
	KindFrontierNodes
	// KindPhases counts finished engine phases (full fixpoints).
	KindPhases
	// KindDeltas counts incremental fault deltas (Session Add/Remove).
	KindDeltas
	// KindViolations counts invariant-monitor violations (see
	// core/monitor.go and the invariant_violation trace event).
	KindViolations

	// NumKinds is the number of accounted kinds.
	NumKinds = int(KindViolations) + 1
)

// String returns the snake_case kind name used in metrics and JSON.
func (k Kind) String() string {
	switch k {
	case KindRounds:
		return "rounds"
	case KindMessages:
		return "messages"
	case KindLabelFlips:
		return "label_flips"
	case KindWordsTouched:
		return "words_touched"
	case KindFrontierNodes:
		return "frontier_nodes"
	case KindPhases:
		return "phases"
	case KindDeltas:
		return "deltas"
	case KindViolations:
		return "violations"
	}
	return fmt.Sprintf("kind_%d", int(k))
}

// shard is one cache-line-padded block of counters. 64-bit slots for
// NumKinds kinds plus padding keep two shards from ever sharing a line.
type shard struct {
	slots [NumKinds]atomic.Int64
	_     [64 - (NumKinds*8)%64]byte
}

// Fabric is the sharded counter fabric. The zero value is not usable;
// construct with NewFabric. All methods are safe for concurrent use and
// nil-safe: a nil *Fabric accepts adds and reports zero totals, so call
// sites need no guards.
type Fabric struct {
	shards []shard

	// trackers is a small free list of released per-node last-changed
	// trackers (see Phase.Release). Reusing them keeps repeated
	// formations on one fabric — a sweep, a benchmark loop, a serving
	// process — from allocating machine-sized slices per run, which is
	// part of the 5%-overhead budget (BenchmarkOverhead).
	mu       sync.Mutex
	trackers []freeTracker
}

// freeTracker is one entry of the tracker free list. dirty records
// whether the slice may hold nonzero entries: a clean tracker (the
// releaser sparse-zeroed every flipped entry) is reused without the
// machine-sized memclr.
type freeTracker struct {
	tr    []int32
	dirty bool
}

// NewFabric returns a fabric with the given shard count; shards <= 0
// means runtime.GOMAXPROCS(0). More shards than concurrent writers buys
// nothing; fewer makes writers contend on the same cache line.
func NewFabric(shards int) *Fabric {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	return &Fabric{shards: make([]shard, shards)}
}

// Shards returns the shard count (0 for a nil fabric).
func (f *Fabric) Shards() int {
	if f == nil {
		return 0
	}
	return len(f.shards)
}

// Add adds v to kind k on shard `shard` (wrapped into range). Nil-safe.
func (f *Fabric) Add(shard int, k Kind, v int64) {
	if f == nil || v == 0 {
		return
	}
	f.shards[shard%len(f.shards)].slots[k].Add(v)
}

// Total sums kind k across all shards. Nil-safe (returns 0).
func (f *Fabric) Total(k Kind) int64 {
	if f == nil {
		return 0
	}
	var t int64
	for i := range f.shards {
		t += f.shards[i].slots[k].Load()
	}
	return t
}

// Reset zeroes every counter. Nil-safe.
func (f *Fabric) Reset() {
	if f == nil {
		return
	}
	for i := range f.shards {
		for k := 0; k < NumKinds; k++ {
			f.shards[i].slots[k].Store(0)
		}
	}
}

// takeTracker returns a zeroed per-node tracker of length n, reusing a
// released one when it is large enough. A clean entry whose zeroed
// prefix covers n is handed out as-is; anything else is cleared first.
func (f *Fabric) takeTracker(n int) []int32 {
	f.mu.Lock()
	for i := len(f.trackers) - 1; i >= 0; i-- {
		ft := f.trackers[i]
		if cap(ft.tr) < n {
			continue
		}
		f.trackers = append(f.trackers[:i], f.trackers[i+1:]...)
		f.mu.Unlock()
		mustClear := ft.dirty || len(ft.tr) < n
		tr := ft.tr[:n]
		if mustClear {
			clear(tr)
		}
		return tr
	}
	f.mu.Unlock()
	return make([]int32, n)
}

// putTracker returns a tracker to the free list. The list is capped so a
// burst of concurrent formations cannot pin unbounded memory.
func (f *Fabric) putTracker(tr []int32, dirty bool) {
	if tr == nil {
		return
	}
	f.mu.Lock()
	if len(f.trackers) < 4 {
		f.trackers = append(f.trackers, freeTracker{tr: tr, dirty: dirty})
	}
	f.mu.Unlock()
}

// Snapshot is a point-in-time aggregate of the fabric, the payload of
// the /convergz endpoint and the source of the ocpmesh_cost_* Prometheus
// families.
type Snapshot struct {
	Rounds        int64 `json:"rounds"`
	Messages      int64 `json:"messages"`
	LabelFlips    int64 `json:"label_flips"`
	WordsTouched  int64 `json:"words_touched"`
	FrontierNodes int64 `json:"frontier_nodes"`
	Phases        int64 `json:"phases"`
	Deltas        int64 `json:"deltas"`
	Violations    int64 `json:"violations"`
	Shards        int   `json:"shards"`
}

// Snapshot aggregates all counters. Nil-safe (zero snapshot).
func (f *Fabric) Snapshot() Snapshot {
	return Snapshot{
		Rounds:        f.Total(KindRounds),
		Messages:      f.Total(KindMessages),
		LabelFlips:    f.Total(KindLabelFlips),
		WordsTouched:  f.Total(KindWordsTouched),
		FrontierNodes: f.Total(KindFrontierNodes),
		Phases:        f.Total(KindPhases),
		Deltas:        f.Total(KindDeltas),
		Violations:    f.Total(KindViolations),
		Shards:        f.Shards(),
	}
}

// WriteJSON writes the snapshot as indented JSON (the /convergz body).
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WritePrometheus writes one ocpmesh_cost_<kind>_total counter family
// per kind in the Prometheus text exposition format.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	rows := []struct {
		kind Kind
		v    int64
		help string
	}{
		{KindRounds, s.Rounds, "Completed changing fixpoint rounds."},
		{KindMessages, s.Messages, "Status messages exchanged between live nodes."},
		{KindLabelFlips, s.LabelFlips, "Node label changes across all rounds."},
		{KindWordsTouched, s.WordsTouched, "64-lane words evaluated by the bitset engine."},
		{KindFrontierNodes, s.FrontierNodes, "Frontier sizes summed over incremental waves."},
		{KindPhases, s.Phases, "Finished engine phases (full fixpoints)."},
		{KindDeltas, s.Deltas, "Incremental fault deltas applied."},
		{KindViolations, s.Violations, "Paper-invariant monitor violations."},
	}
	for _, r := range rows {
		name := "ocpmesh_cost_" + r.kind.String() + "_total"
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n",
			name, r.help, name, name, r.v); err != nil {
			return err
		}
	}
	return nil
}
