package costs

import (
	"strings"
	"sync"
	"testing"
)

func TestNilFabricIsNoOp(t *testing.T) {
	var f *Fabric
	f.Add(3, KindRounds, 7) // must not panic
	f.Reset()
	if got := f.Total(KindRounds); got != 0 {
		t.Fatalf("nil fabric Total = %d, want 0", got)
	}
	if got := f.Shards(); got != 0 {
		t.Fatalf("nil fabric Shards = %d, want 0", got)
	}
	snap := f.Snapshot()
	if snap != (Snapshot{}) {
		t.Fatalf("nil fabric Snapshot = %+v, want zero", snap)
	}
}

func TestFabricShardedTotals(t *testing.T) {
	f := NewFabric(4)
	if f.Shards() != 4 {
		t.Fatalf("Shards = %d, want 4", f.Shards())
	}
	for s := 0; s < 8; s++ { // shard indices wrap
		f.Add(s, KindMessages, 10)
	}
	if got := f.Total(KindMessages); got != 80 {
		t.Fatalf("Total(messages) = %d, want 80", got)
	}
	f.Add(1, KindRounds, 3)
	snap := f.Snapshot()
	if snap.Messages != 80 || snap.Rounds != 3 || snap.Shards != 4 {
		t.Fatalf("Snapshot = %+v", snap)
	}
	f.Reset()
	if got := f.Total(KindMessages); got != 0 {
		t.Fatalf("Total after Reset = %d, want 0", got)
	}
}

func TestFabricConcurrentAdds(t *testing.T) {
	f := NewFabric(8)
	const workers, per = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				f.Add(w, KindLabelFlips, 1)
			}
		}(w)
	}
	wg.Wait()
	if got := f.Total(KindLabelFlips); got != workers*per {
		t.Fatalf("Total(label_flips) = %d, want %d", got, workers*per)
	}
}

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		KindRounds:        "rounds",
		KindMessages:      "messages",
		KindLabelFlips:    "label_flips",
		KindWordsTouched:  "words_touched",
		KindFrontierNodes: "frontier_nodes",
		KindPhases:        "phases",
		KindDeltas:        "deltas",
		KindViolations:    "violations",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), k.String(), s)
		}
	}
	if got := Kind(99).String(); got != "kind_99" {
		t.Errorf("unknown kind = %q", got)
	}
}

func TestSnapshotPrometheus(t *testing.T) {
	f := NewFabric(2)
	f.Add(0, KindRounds, 5)
	f.Add(1, KindViolations, 1)
	var b strings.Builder
	if err := f.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE ocpmesh_cost_rounds_total counter",
		"ocpmesh_cost_rounds_total 5",
		"ocpmesh_cost_violations_total 1",
		"ocpmesh_cost_words_touched_total 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestSnapshotJSON(t *testing.T) {
	f := NewFabric(1)
	f.Add(0, KindDeltas, 2)
	var b strings.Builder
	if err := f.Snapshot().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"deltas": 2`) {
		t.Errorf("json output missing deltas:\n%s", b.String())
	}
}

func TestNilPhaseIsNoOp(t *testing.T) {
	var p *Phase
	p.Round(1, 2, 3)
	p.AddWords(4)
	p.Frontier(5)
	p.Violation()
	if p.Tracker() != nil {
		t.Fatal("nil phase Tracker != nil")
	}
	if p.Violations() != 0 || p.PhaseName() != "" {
		t.Fatal("nil phase not zero")
	}
	if got := p.Finish(); got != (Totals{}) {
		t.Fatalf("nil phase Finish = %+v", got)
	}
	if NewPhase(nil, "phase1", 10) != nil {
		t.Fatal("NewPhase(nil fabric) != nil")
	}
}

func TestPhaseCollectAndFinish(t *testing.T) {
	f := NewFabric(2)
	p := NewPhase(f, "phase1", 16)
	tr := p.Tracker()
	if len(tr) != 16 {
		t.Fatalf("tracker len = %d, want 16", len(tr))
	}
	tr[3] = 1
	tr[3] = 2 // later flip overwrites
	tr[7] = 1
	p.Round(1, 2, 40)
	p.Round(2, 1, 40)
	p.AddWords(6)
	p.Frontier(4)
	p.Frontier(2)
	p.Violation()

	tot := p.Finish()
	want := Totals{
		Phase: "phase1", Rounds: 2, Msgs: 80, Flips: 3, Words: 6,
		FrontierSum: 6, FrontierPeak: 4, Waves: 2, Violations: 1,
	}
	if tot != want {
		t.Fatalf("Finish = %+v, want %+v", tot, want)
	}
	// Finish is idempotent: fabric flushed once, same totals returned.
	if again := p.Finish(); again != want {
		t.Fatalf("second Finish = %+v, want %+v", again, want)
	}
	snap := f.Snapshot()
	if snap.Rounds != 2 || snap.Messages != 80 || snap.LabelFlips != 3 ||
		snap.WordsTouched != 6 || snap.FrontierNodes != 6 ||
		snap.Violations != 1 || snap.Phases != 1 {
		t.Fatalf("fabric snapshot = %+v", snap)
	}
}

// TestTrackerFreeList pins the tracker reuse contract: a released
// tracker is recycled by the next collector on the same fabric, dirty
// releases are cleared on reuse, clean releases are trusted as-is, and
// a clean tracker too short for the next request is cleared anyway.
func TestTrackerFreeList(t *testing.T) {
	f := NewFabric(1)

	// Dirty release: the recycled tracker must come back zeroed.
	p := NewPhase(f, "phase1", 8)
	first := p.Tracker()
	first[2], first[5] = 3, 9
	p.Release(false)
	if p.Tracker() != nil {
		t.Fatal("tracker not detached on Release")
	}
	p.Release(false) // idempotent

	q := NewPhase(f, "phase2", 8)
	reused := q.Tracker()
	if &reused[0] != &first[0] {
		t.Fatal("released tracker not recycled")
	}
	for i, v := range reused {
		if v != 0 {
			t.Fatalf("dirty tracker not cleared on reuse: tr[%d] = %d", i, v)
		}
	}

	// Clean release: the caller zeroed the flipped entries, so reuse
	// skips the clear — an all-zero tracker must stay all-zero.
	reused[4] = 7
	reused[4] = 0
	q.Release(true)
	r := NewPhase(f, "phase1", 8)
	for i, v := range r.Tracker() {
		if v != 0 {
			t.Fatalf("clean tracker dirty on reuse: tr[%d] = %d", i, v)
		}
	}

	// A clean tracker shorter than the request cannot vouch for the
	// storage beyond its old length: growing back to the full capacity
	// must clear. Plant garbage at index 6, shrink to a clean length-4
	// view (only 0..3 are zeroed on that reuse), then request 8 again.
	tr := r.Tracker()
	tr[6] = 9
	r.Release(false)
	small := NewPhase(f, "phase1", 4)
	small.Release(true)
	grown := NewPhase(f, "phase1", 8)
	if got := grown.Tracker()[6]; got != 0 {
		t.Fatalf("stale entry survived a clean shrink + grow: tr[6] = %d", got)
	}

	// A fabric with no free tracker allocates fresh zeroed storage.
	other := NewPhase(NewFabric(1), "phase1", 3)
	for i, v := range other.Tracker() {
		if v != 0 {
			t.Fatalf("fresh tracker nonzero at %d: %d", i, v)
		}
	}
}

func TestPhaseWithoutTracker(t *testing.T) {
	f := NewFabric(1)
	p := NewPhase(f, "delta", 0)
	if p.Tracker() != nil {
		t.Fatal("nodes=0 phase should have nil tracker")
	}
	p.Round(1, 3, 12)
	if got := p.Finish(); got.Flips != 3 || got.Msgs != 12 {
		t.Fatalf("Finish = %+v", got)
	}
}
