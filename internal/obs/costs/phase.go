package costs

import "sync/atomic"

// Phase accumulates one engine phase (one full fixpoint or one
// incremental delta phase) worth of costs before flushing them into the
// fabric in a single Finish call. Round-granular quantities are added by
// the engine coordinator (one call per round, no atomics); quantities
// produced concurrently by workers (words touched, and the per-node
// last-changed tracker) use an atomic or disjoint writes respectively,
// so collectors are safe under the parallel and bitset engines.
//
// A nil *Phase is a valid no-op collector: every method returns
// immediately, which is how the uninstrumented hot path stays free.
type Phase struct {
	fab   *Fabric
	phase string

	rounds       int
	msgs         int64
	flips        int64
	words        atomic.Int64
	frontierSum  int64
	frontierPeak int
	waves        int
	violations   int

	// last[i] is the last round node i's label changed (0 = never).
	// Workers write disjoint indices, so no synchronization is needed;
	// the slice is read only after the run's final barrier.
	last []int32

	finished bool
}

// NewPhase returns a collector flushing into f under the given phase
// name. nodes > 0 allocates the per-node last-changed tracker (used by
// core's per-block attribution and monotonicity monitors); nodes == 0
// skips it, which is what the incremental delta path does to stay
// allocation-light. A nil fabric yields a nil collector.
func NewPhase(f *Fabric, phase string, nodes int) *Phase {
	if f == nil {
		return nil
	}
	p := &Phase{fab: f, phase: phase}
	if nodes > 0 {
		p.last = f.takeTracker(nodes)
	}
	return p
}

// Release returns the per-node tracker to the fabric's free list for
// reuse by a later collector on the same fabric. clean promises every
// entry is zero again — the caller sparse-zeroed the flipped entries —
// letting the next take skip the machine-sized memclr; pass false when
// in doubt (the only cost is a clear on reuse). Call Release only once
// the tracker's readers (the monotonicity monitors and per-block
// attribution) are done with it; the collector's scalar totals remain
// valid afterwards. Nil-safe, idempotent.
func (p *Phase) Release(clean bool) {
	if p == nil || p.last == nil {
		return
	}
	p.fab.putTracker(p.last, !clean)
	p.last = nil
}

// PhaseName returns the phase label ("" for a nil collector).
func (p *Phase) PhaseName() string {
	if p == nil {
		return ""
	}
	return p.phase
}

// Tracker returns the per-node last-changed-round slice, or nil when
// tracking is off (nil collector or nodes == 0 at construction).
// Engines write tr[i] = round when node i's label flips; indices are
// disjoint across workers, so the writes need no synchronization.
func (p *Phase) Tracker() []int32 {
	if p == nil {
		return nil
	}
	return p.last
}

// Round records one completed changing round: flips labels changed and
// msgs status messages exchanged. Called by the engine coordinator only.
func (p *Phase) Round(round, flips, msgs int) {
	if p == nil {
		return
	}
	if round > p.rounds {
		p.rounds = round
	}
	p.flips += int64(flips)
	p.msgs += int64(msgs)
}

// AddWords records n words evaluated by the bitset engine. Safe for
// concurrent use (worker goroutines call it once per round per tile).
func (p *Phase) AddWords(n int64) {
	if p == nil || n == 0 {
		return
	}
	p.words.Add(n)
}

// Frontier records one wave's frontier size (incremental engine).
func (p *Phase) Frontier(size int) {
	if p == nil {
		return
	}
	p.waves++
	p.frontierSum += int64(size)
	if size > p.frontierPeak {
		p.frontierPeak = size
	}
}

// Violation records one invariant-monitor violation detected during the
// phase (the frontier-shrinkage monitor reports through here).
func (p *Phase) Violation() {
	if p == nil {
		return
	}
	p.violations++
}

// Violations returns the violation count recorded so far.
func (p *Phase) Violations() int {
	if p == nil {
		return 0
	}
	return p.violations
}

// Totals is one phase's flushed accounting, the payload of the "costs"
// trace event.
type Totals struct {
	Phase        string
	Rounds       int
	Msgs         int64
	Flips        int64
	Words        int64
	FrontierSum  int64
	FrontierPeak int
	Waves        int
	Violations   int
}

// Finish flushes the collected totals into the fabric (shard 0; the
// per-phase flush is far off any hot path) and returns them. Repeated
// calls flush once and return the same totals. Nil-safe (zero totals).
func (p *Phase) Finish() Totals {
	if p == nil {
		return Totals{}
	}
	t := Totals{
		Phase:        p.phase,
		Rounds:       p.rounds,
		Msgs:         p.msgs,
		Flips:        p.flips,
		Words:        p.words.Load(),
		FrontierSum:  p.frontierSum,
		FrontierPeak: p.frontierPeak,
		Waves:        p.waves,
		Violations:   p.violations,
	}
	if !p.finished {
		p.finished = true
		p.fab.Add(0, KindRounds, int64(t.Rounds))
		p.fab.Add(0, KindMessages, t.Msgs)
		p.fab.Add(0, KindLabelFlips, t.Flips)
		p.fab.Add(0, KindWordsTouched, t.Words)
		p.fab.Add(0, KindFrontierNodes, t.FrontierSum)
		p.fab.Add(0, KindViolations, int64(t.Violations))
		p.fab.Add(0, KindPhases, 1)
	}
	return t
}
