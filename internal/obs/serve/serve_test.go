package serve

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"ocpmesh/internal/obs"
	"ocpmesh/internal/obs/costs"
	"ocpmesh/internal/status"
	"ocpmesh/internal/sweep"
)

// promLine matches one sample line of the Prometheus text exposition
// format.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (NaN|[+-]?Inf|[-+0-9.eE]+)$`)

func checkPromPage(t *testing.T, page string) {
	t.Helper()
	for i, line := range strings.Split(strings.TrimRight(page, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		m := promLine.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line %d not valid exposition format: %q", i+1, line)
		}
		val := line[strings.LastIndexByte(line, ' ')+1:]
		if val != "NaN" && val != "+Inf" && val != "-Inf" {
			if _, err := strconv.ParseFloat(val, 64); err != nil {
				t.Fatalf("line %d: bad sample value %q: %v", i+1, val, err)
			}
		}
	}
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestMetricsOnLiveSweep runs a real sweep through a recorder wired the
// way the CLIs wire -serve and checks the acceptance criterion: the
// /metrics page is valid Prometheus text format and carries the sweep's
// metrics, and /runz reflects the finished run.
func TestMetricsOnLiveSweep(t *testing.T) {
	live := obs.NewLiveSink(256)
	rec := obs.NewRecorder(obs.NewTracer(live), obs.NewRegistry())
	rec.BeginRun(obs.NewRun("serve-test", 1, nil))
	fabric := costs.NewFabric(2)

	ts := httptest.NewServer(New(rec, live, fabric).Handler())
	defer ts.Close()

	runner, err := sweep.NewRunner(sweep.Config{
		Width: 16, Height: 16, MaxFaults: 8, Step: 4, Replications: 2,
		Seed: 1, Workers: 2, Recorder: rec, Costs: fabric,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runner.Sweep(status.Def2b, sweep.Uniform, sweep.RoundsPhase1); err != nil {
		t.Fatal(err)
	}

	code, page := get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	checkPromPage(t, page)
	for _, want := range []string{
		"sweep_cells ", "core_phase1_rounds", "simnet_rounds ", "ocpmesh_run_info",
		"ocpmesh_cost_rounds_total", "ocpmesh_cost_messages_total",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	code, body := get(t, ts.URL+"/convergz")
	if code != http.StatusOK {
		t.Fatalf("/convergz status %d", code)
	}
	var snap costs.Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/convergz not JSON: %v\n%s", err, body)
	}
	if snap != fabric.Snapshot() {
		t.Fatalf("/convergz = %+v, want %+v", snap, fabric.Snapshot())
	}
	if snap.Phases == 0 || snap.Messages == 0 {
		t.Fatalf("/convergz shows no accumulated costs: %+v", snap)
	}
	if snap.Violations != 0 {
		t.Fatalf("sweep produced %d invariant violations", snap.Violations)
	}

	code, body = get(t, ts.URL+"/runz")
	if code != http.StatusOK {
		t.Fatalf("/runz status %d", code)
	}
	var st obs.LiveStatus
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("/runz not JSON: %v\n%s", err, body)
	}
	if st.Run == nil || st.Run.Tool != "serve-test" {
		t.Fatalf("/runz run manifest wrong: %+v", st.Run)
	}
	if st.SweepTotal != 6 || st.SweepDone != 6 {
		t.Fatalf("/runz sweep progress = %d/%d, want 6/6", st.SweepDone, st.SweepTotal)
	}

	if code, body := get(t, ts.URL+"/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q", code, body)
	}
}

// TestRunzMidFlight feeds the live sink a partial event stream — a run
// that is inside phase1, round 4 — and checks /runz reports exactly
// that in-flight position.
func TestRunzMidFlight(t *testing.T) {
	live := obs.NewLiveSink(16)
	rec := obs.NewRecorder(obs.NewTracer(live), obs.NewRegistry())
	ts := httptest.NewServer(New(rec, live, nil).Handler())
	defer ts.Close()

	rec.BeginRun(obs.Run{Tool: "midflight"})
	rec.Emit(obs.Event{Type: obs.EPhaseStart, Phase: "phase1", Engine: "sequential", Rule: "def2b"})
	rec.Emit(obs.Event{Type: obs.ERound, Phase: "phase1", Round: 4, Changed: 17, Msgs: 100})

	var st obs.LiveStatus
	_, body := get(t, ts.URL+"/runz")
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if st.Phase != "phase1" || st.Round != 4 || st.Changed != 17 {
		t.Fatalf("mid-flight /runz = phase=%q round=%d changed=%d, want phase1/4/17", st.Phase, st.Round, st.Changed)
	}
	if st.Done {
		t.Fatal("run reported done while in flight")
	}
	if st.Engine != "sequential" {
		t.Fatalf("engine = %q", st.Engine)
	}
}

// TestEventzStreams checks the SSE tail: replayed history plus a live
// event arrive as data: lines.
func TestEventzStreams(t *testing.T) {
	live := obs.NewLiveSink(16)
	rec := obs.NewRecorder(obs.NewTracer(live), obs.NewRegistry())
	ts := httptest.NewServer(New(rec, live, nil).Handler())
	defer ts.Close()

	rec.Emit(obs.Event{Type: obs.EPhaseStart, Phase: "phase1"})

	resp, err := http.Get(ts.URL + "/eventz?replay=8")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	lines := make(chan string, 16)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			if strings.HasPrefix(sc.Text(), "data: ") {
				lines <- strings.TrimPrefix(sc.Text(), "data: ")
			}
		}
		close(lines)
	}()

	readEvent := func() obs.Event {
		t.Helper()
		select {
		case data, ok := <-lines:
			if !ok {
				t.Fatal("stream closed early")
			}
			var e obs.Event
			if err := json.Unmarshal([]byte(data), &e); err != nil {
				t.Fatalf("bad SSE payload %q: %v", data, err)
			}
			return e
		case <-time.After(5 * time.Second):
			t.Fatal("timed out waiting for SSE event")
		}
		panic("unreachable")
	}

	if e := readEvent(); e.Type != obs.EPhaseStart {
		t.Fatalf("replayed event = %+v, want phase_start", e)
	}
	rec.Emit(obs.Event{Type: obs.ERound, Phase: "phase1", Round: 1, Changed: 3})
	if e := readEvent(); e.Type != obs.ERound || e.Round != 1 {
		t.Fatalf("live event = %+v, want round 1", e)
	}
}

// TestEventzReplayUnderConcurrentWriters opens /eventz?replay=N while
// writer goroutines keep emitting through the shared tracer — the
// race-detector workout for the ring buffer + SSE path. Because the
// handler subscribes before replaying, the replayed tail can overlap
// the live stream (consumers dedupe on Seq), so the assertions are the
// ones that survive interleaving: every payload parses, the sequence
// dips backward at most once (the replay/live seam), and the stream
// reaches the sentinel event emitted after the writers finish.
func TestEventzReplayUnderConcurrentWriters(t *testing.T) {
	live := obs.NewLiveSink(64)
	rec := obs.NewRecorder(obs.NewTracer(live), obs.NewRegistry())
	ts := httptest.NewServer(New(rec, live, nil).Handler())
	defer ts.Close()

	// Seed some history so replay has something to serve.
	for i := 0; i < 16; i++ {
		rec.Emit(obs.Event{Type: obs.ERound, Phase: "phase1", Round: i})
	}

	resp, err := http.Get(ts.URL + "/eventz?replay=8")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// Keep total in-flight events under the handler's 256-slot
	// subscriber buffer so the sentinel can never be dropped.
	const writers, perWriter = 4, 60
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				rec.Emit(obs.Event{Type: obs.ERound, Phase: "phase2", Round: w*perWriter + i})
			}
		}(w)
	}
	go func() {
		wg.Wait()
		rec.Emit(obs.Event{Type: obs.ERunEnd})
	}()

	deadline := time.After(10 * time.Second)
	lines := make(chan string, 1024)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			if strings.HasPrefix(sc.Text(), "data: ") {
				lines <- strings.TrimPrefix(sc.Text(), "data: ")
			}
		}
		close(lines)
	}()

	var (
		prev     int64
		dips     int
		received int
	)
	for {
		var data string
		var ok bool
		select {
		case data, ok = <-lines:
			if !ok {
				t.Fatalf("stream closed after %d events without run_end", received)
			}
		case <-deadline:
			t.Fatalf("no run_end after %d events", received)
		}
		var e obs.Event
		if err := json.Unmarshal([]byte(data), &e); err != nil {
			t.Fatalf("bad SSE payload %q: %v", data, err)
		}
		received++
		if e.Seq < prev {
			dips++
		}
		prev = e.Seq
		if e.Type == obs.ERunEnd {
			break
		}
	}
	if dips > 1 {
		t.Fatalf("sequence dipped backward %d times, want at most the one replay/live seam", dips)
	}
	if received < 8 {
		t.Fatalf("received %d events, want at least the replayed 8", received)
	}
}

// TestEndpointsWithoutLiveSink pins the degraded mode: /metrics still
// serves, /runz and /eventz answer 404.
func TestEndpointsWithoutLiveSink(t *testing.T) {
	rec := obs.NewRecorder(nil, obs.NewRegistry())
	rec.Counter("lonely").Inc()
	ts := httptest.NewServer(New(rec, nil, nil).Handler())
	defer ts.Close()

	code, page := get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	checkPromPage(t, page)
	if !strings.Contains(page, "lonely 1") {
		t.Fatalf("counter missing:\n%s", page)
	}
	if code, _ := get(t, ts.URL+"/runz"); code != http.StatusNotFound {
		t.Fatalf("/runz without live sink = %d, want 404", code)
	}
	if code, _ := get(t, ts.URL+"/eventz"); code != http.StatusNotFound {
		t.Fatalf("/eventz without live sink = %d, want 404", code)
	}
	if code, _ := get(t, ts.URL+"/convergz"); code != http.StatusNotFound {
		t.Fatalf("/convergz without fabric = %d, want 404", code)
	}
}

// TestDebugzFlight pins the flight-recorder fetch path: /debugz serves
// the ring as NDJSON (bounded by ?n=), ?status=1 serves the recorder's
// self-accounting, and a side-car without a flight recorder answers
// 404.
func TestDebugzFlight(t *testing.T) {
	flight := obs.NewFlightRecorder(obs.FlightConfig{Size: 8})
	rec := obs.NewRecorder(obs.NewTracer(flight), obs.NewRegistry())
	ts := httptest.NewServer(New(rec, nil, nil).WithFlight(flight).Handler())
	defer ts.Close()

	for i := 0; i < 5; i++ {
		rec.Emit(obs.Event{Type: obs.ERound, Round: i})
	}

	code, body := get(t, ts.URL+"/debugz")
	if code != http.StatusOK {
		t.Fatalf("/debugz status %d", code)
	}
	lines := strings.Split(strings.TrimRight(body, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("/debugz served %d lines, want the full ring of 5", len(lines))
	}
	for i, line := range lines {
		var e obs.Event
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("/debugz line %d not a valid event: %v (%q)", i+1, err, line)
		}
		if e.Round != i {
			t.Fatalf("/debugz line %d is round %d, want oldest-first order", i+1, e.Round)
		}
	}

	_, body = get(t, ts.URL+"/debugz?n=2")
	if lines := strings.Split(strings.TrimRight(body, "\n"), "\n"); len(lines) != 2 {
		t.Fatalf("/debugz?n=2 served %d lines", len(lines))
	}

	code, body = get(t, ts.URL+"/debugz?status=1")
	if code != http.StatusOK {
		t.Fatalf("/debugz?status=1 status %d", code)
	}
	var st obs.FlightStatus
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("/debugz?status=1 not JSON: %v\n%s", err, body)
	}
	if st.Ring != 8 || st.Buffered != 5 {
		t.Fatalf("/debugz?status=1 = %+v, want ring 8 buffered 5", st)
	}

	bare := httptest.NewServer(New(rec, nil, nil).Handler())
	defer bare.Close()
	if code, _ := get(t, bare.URL+"/debugz"); code != http.StatusNotFound {
		t.Fatalf("/debugz without flight recorder = %d, want 404", code)
	}
}

// TestMetricsSubscriberDrops pins the per-subscriber drop accounting on
// /metrics: a slow subscriber's losses surface as the
// ocpmesh_live_subscriber_dropped counter family next to the total.
func TestMetricsSubscriberDrops(t *testing.T) {
	live := obs.NewLiveSink(16)
	rec := obs.NewRecorder(obs.NewTracer(live), obs.NewRegistry())
	ts := httptest.NewServer(New(rec, live, nil).Handler())
	defer ts.Close()

	id, ch := live.Subscribe(2)
	defer live.Unsubscribe(id)
	for i := 0; i < 6; i++ {
		rec.Emit(obs.Event{Type: obs.ERound, Round: i})
	}
	if got := live.SubscriberDropped(id); got != 4 {
		t.Fatalf("subscriber dropped %d events, want 4 (buffer 2, 6 emitted)", got)
	}
	<-ch

	code, page := get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	checkPromPage(t, page)
	want := `ocpmesh_live_subscriber_dropped{subscriber="` + strconv.Itoa(id) + `"} 4`
	if !strings.Contains(page, want) {
		t.Fatalf("/metrics missing %q:\n%s", want, page)
	}
	if !strings.Contains(page, "ocpmesh_live_dropped 4") {
		t.Fatalf("/metrics missing aggregate ocpmesh_live_dropped:\n%s", page)
	}
}

// TestStartAndClose binds a real listener on :0 and scrapes it over TCP.
func TestStartAndClose(t *testing.T) {
	rec := obs.NewRecorder(nil, obs.NewRegistry())
	srv := New(rec, nil, nil)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	code, _ := get(t, "http://"+addr.String()+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz over TCP = %d", code)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}
