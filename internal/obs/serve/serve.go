// Package serve is the live telemetry endpoint over the observability
// layer: an opt-in HTTP server that exposes the metrics registry in the
// Prometheus text exposition format, a JSON view of the in-flight run,
// a server-sent-events tail of the live trace, and net/http/pprof — so
// a multi-hour sweep or churn session can be watched and profiled while
// it runs.
//
// Endpoints:
//
//	/metrics       Prometheus text format (counters, gauges, summaries,
//	               plus the ocpmesh_cost_* counter fabric when attached)
//	/healthz       liveness probe, always "ok"
//	/runz          JSON snapshot of the current run (manifest, figure,
//	               phase, round, sweep progress, error counts)
//	/convergz      JSON snapshot of the convergence observatory's counter
//	               fabric (rounds, messages, label flips, words touched,
//	               frontier sizes, deltas, invariant violations)
//	/eventz        SSE stream tailing live trace events
//	               (?replay=N prepends the last N buffered events)
//	/debugz        NDJSON fetch of the flight recorder's event ring
//	               (?n=N limits to the most recent N; ?status=1 returns
//	               the recorder's JSON self-accounting instead)
//	/debug/pprof/  the standard pprof handlers
//
// The CLIs wire it up behind a -serve addr flag; see obs.LiveSink for
// the event plumbing behind /runz and /eventz.
package serve

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"ocpmesh/internal/obs"
	"ocpmesh/internal/obs/costs"
)

// Server serves live telemetry for one process. Every half is optional:
// without a metrics registry /metrics renders an empty (but valid) page,
// without a live sink /runz and /eventz answer 404, without a counter
// fabric /convergz answers 404, without a flight recorder /debugz
// answers 404.
type Server struct {
	rec    *obs.Recorder
	live   *obs.LiveSink
	fabric *costs.Fabric
	flight *obs.FlightRecorder
	http   *http.Server
	ln     net.Listener
}

// New returns a telemetry server reading rec's metrics registry, live's
// event stream, and fabric's cost counters (any of which may be nil).
func New(rec *obs.Recorder, live *obs.LiveSink, fabric *costs.Fabric) *Server {
	return &Server{rec: rec, live: live, fabric: fabric}
}

// WithFlight attaches a flight recorder, enabling /debugz. Returns s.
func (s *Server) WithFlight(f *obs.FlightRecorder) *Server {
	s.flight = f
	return s
}

// Handler returns the telemetry mux (also used directly by tests via
// httptest).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.index)
	mux.HandleFunc("/metrics", s.metrics)
	mux.HandleFunc("/healthz", s.healthz)
	mux.HandleFunc("/runz", s.runz)
	mux.HandleFunc("/convergz", s.convergz)
	mux.HandleFunc("/eventz", s.eventz)
	mux.HandleFunc("/debugz", s.debugz)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Start listens on addr and serves in the background, returning the
// bound address (useful with ":0"). Serve errors after a successful
// listen are ignored: the telemetry side-car must never take down the
// experiment it watches.
func (s *Server) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("serve: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.http = &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = s.http.Serve(ln) }()
	return ln.Addr(), nil
}

// Close stops the listener and any in-flight handlers.
func (s *Server) Close() error {
	if s.http == nil {
		return nil
	}
	return s.http.Close()
}

func (s *Server) index(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, "ocpmesh telemetry\n\n"+
		"/metrics        Prometheus text exposition\n"+
		"/healthz        liveness probe\n"+
		"/runz           JSON snapshot of the in-flight run\n"+
		"/convergz       JSON snapshot of the convergence cost counters\n"+
		"/eventz         SSE tail of live trace events (?replay=N)\n"+
		"/debugz         flight-recorder ring as NDJSON (?n=N, ?status=1)\n"+
		"/debug/pprof/   profiling\n")
}

func (s *Server) metrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", obs.PromContentType)
	_ = s.rec.Metrics().Snapshot().WritePrometheus(w)
	if s.fabric != nil {
		_ = s.fabric.Snapshot().WritePrometheus(w)
	}
	if s.live != nil {
		_ = s.live.WriteDropsPrometheus(w)
	}
}

// debugz serves the flight recorder: by default the current event ring
// as NDJSON (the exact format of the auto-dump files, so the same jq
// and octrace tooling applies), with ?status=1 the recorder's JSON
// self-accounting (ring fill, dumps written, suppressed triggers).
func (s *Server) debugz(w http.ResponseWriter, r *http.Request) {
	if s.flight == nil {
		http.Error(w, "no flight recorder attached", http.StatusNotFound)
		return
	}
	if r.URL.Query().Get("status") == "1" {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(s.flight.Status())
		return
	}
	n := 0
	if v, err := strconv.Atoi(r.URL.Query().Get("n")); err == nil && v > 0 {
		n = v
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	for _, e := range s.flight.Recent(n) {
		if err := enc.Encode(e); err != nil {
			return
		}
	}
}

func (s *Server) healthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) runz(w http.ResponseWriter, _ *http.Request) {
	if s.live == nil {
		http.Error(w, "no live event sink attached", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(s.live.Status())
}

// convergz serves the counter fabric's aggregate snapshot as JSON: the
// machine-readable view of the convergence observatory (rounds,
// messages, label flips, words touched, frontier sizes, deltas, and
// invariant-monitor violations since process start).
func (s *Server) convergz(w http.ResponseWriter, _ *http.Request) {
	if s.fabric == nil {
		http.Error(w, "no cost counter fabric attached", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	_ = s.fabric.Snapshot().WriteJSON(w)
}

// eventz streams trace events as server-sent events: one "data:" line
// holding the event's JSON per message. ?replay=N prepends up to N
// buffered events before going live. The stream ends when the client
// disconnects or the run's tracer closes the sink.
func (s *Server) eventz(w http.ResponseWriter, r *http.Request) {
	if s.live == nil {
		http.Error(w, "no live event sink attached", http.StatusNotFound)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	write := func(e obs.Event) bool {
		data, err := json.Marshal(e)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "data: %s\n\n", data); err != nil {
			return false
		}
		fl.Flush()
		return true
	}

	// Subscribe before replaying so no event can fall in the gap; the
	// replayed tail may then overlap the live stream by a few events,
	// which SSE consumers dedupe on seq. The buffer is bounded (the sink
	// clamps it further): a consumer slower than the emitter misses
	// events rather than stalling the run, and learns about each gap via
	// an SSE comment carrying the running drop count.
	id, ch := s.live.Subscribe(256)
	defer s.live.Unsubscribe(id)
	if n, err := strconv.Atoi(r.URL.Query().Get("replay")); err == nil && n > 0 {
		for _, e := range s.live.Recent(n) {
			if !write(e) {
				return
			}
		}
	}
	var reported int64
	for {
		select {
		case e, ok := <-ch:
			if !ok {
				return
			}
			if !write(e) {
				return
			}
			if d := s.live.SubscriberDropped(id); d > reported {
				reported = d
				if _, err := fmt.Fprintf(w, ": dropped %d\n\n", d); err != nil {
					return
				}
				fl.Flush()
			}
		case <-r.Context().Done():
			return
		}
	}
}
