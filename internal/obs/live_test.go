package obs

import (
	"testing"
)

func TestLiveSinkStatusTracksRun(t *testing.T) {
	s := NewLiveSink(16)
	run := Run{Tool: "test", Seed: 7}
	s.Emit(Event{Seq: 1, Type: ERunStart, Run: &run})
	s.Emit(Event{Seq: 2, Type: EFigureStart, Name: "5a"})
	s.Emit(Event{Seq: 3, Type: ESweepStart, N: 40, Points: 4})
	s.Emit(Event{Seq: 4, Type: EPhaseStart, Phase: "phase1", Engine: "parallel", Rule: "def2b"})
	s.Emit(Event{Seq: 5, Type: ERound, Phase: "phase1", Round: 3, Changed: 12})

	st := s.Status()
	if st.Run == nil || st.Run.Tool != "test" {
		t.Fatalf("run manifest not captured: %+v", st.Run)
	}
	if st.Figure != "5a" || st.Phase != "phase1" || st.Engine != "parallel" || st.Rule != "def2b" {
		t.Fatalf("in-flight position wrong: %+v", st)
	}
	if st.Round != 3 || st.Changed != 12 {
		t.Fatalf("round tracking wrong: round=%d changed=%d", st.Round, st.Changed)
	}
	if st.SweepTotal != 40 || st.SweepDone != 0 {
		t.Fatalf("sweep progress wrong: %d/%d", st.SweepDone, st.SweepTotal)
	}
	if st.Seq != 5 || st.Events != 5 {
		t.Fatalf("seq=%d events=%d, want 5 and 5", st.Seq, st.Events)
	}

	s.Emit(Event{Seq: 6, Type: EPhaseEnd, Phase: "phase1", Rounds: 9})
	s.Emit(Event{Seq: 7, Type: ESweepCell, X: 5, Rep: 0})
	s.Emit(Event{Seq: 8, Type: ESweepCell, X: 5, Rep: 1, Err: "boom"})
	s.Emit(Event{Seq: 9, Type: ESweepPoint, X: 5, N: 2})
	s.Emit(Event{Seq: 10, Type: ERunEnd})

	st = s.Status()
	if st.Phase != "" || st.LastRounds != 9 {
		t.Fatalf("phase close not tracked: %+v", st)
	}
	if st.SweepDone != 2 || st.SweepPoints != 1 {
		t.Fatalf("sweep counts wrong: done=%d points=%d", st.SweepDone, st.SweepPoints)
	}
	if st.Errors != 1 || st.LastErr != "boom" {
		t.Fatalf("error tracking wrong: %d %q", st.Errors, st.LastErr)
	}
	if !st.Done {
		t.Fatal("run_end not reflected")
	}
	if st.Counts[ESweepCell] != 2 || st.Counts[ERound] != 1 {
		t.Fatalf("type counts wrong: %v", st.Counts)
	}
}

func TestLiveSinkRingWraps(t *testing.T) {
	s := NewLiveSink(4)
	for i := 1; i <= 10; i++ {
		s.Emit(Event{Seq: int64(i), Type: ESpan})
	}
	recent := s.Recent(100)
	if len(recent) != 4 {
		t.Fatalf("recent length = %d, want ring size 4", len(recent))
	}
	for i, e := range recent {
		if want := int64(7 + i); e.Seq != want {
			t.Fatalf("recent[%d].Seq = %d, want %d (oldest first)", i, e.Seq, want)
		}
	}
	if got := s.Recent(2); len(got) != 2 || got[1].Seq != 10 {
		t.Fatalf("Recent(2) = %+v, want the last two", got)
	}
	if s.Recent(0) != nil {
		t.Fatal("Recent(0) should be nil")
	}
}

func TestLiveSinkSubscribe(t *testing.T) {
	s := NewLiveSink(4)
	id, ch := s.Subscribe(2)
	s.Emit(Event{Seq: 1, Type: ERound})
	if e := <-ch; e.Seq != 1 {
		t.Fatalf("subscriber got %+v", e)
	}

	// Overflow the buffer: emits must not block, drops are counted.
	for i := 2; i <= 6; i++ {
		s.Emit(Event{Seq: int64(i), Type: ERound})
	}
	if st := s.Status(); st.Dropped == 0 {
		t.Fatal("expected dropped events with a full subscriber buffer")
	}
	s.Unsubscribe(id)
	if _, ok := <-ch; ok {
		// Drain buffered events until the close is visible.
		for range ch {
		}
	}

	// Close terminates remaining subscribers.
	_, ch2 := s.Subscribe(1)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := <-ch2; ok {
		t.Fatal("channel should be closed after Close")
	}
}
