package obs

import (
	"sync"
	"testing"
	"time"
)

func TestLiveSinkStatusTracksRun(t *testing.T) {
	s := NewLiveSink(16)
	run := Run{Tool: "test", Seed: 7}
	s.Emit(Event{Seq: 1, Type: ERunStart, Run: &run})
	s.Emit(Event{Seq: 2, Type: EFigureStart, Name: "5a"})
	s.Emit(Event{Seq: 3, Type: ESweepStart, N: 40, Points: 4})
	s.Emit(Event{Seq: 4, Type: EPhaseStart, Phase: "phase1", Engine: "parallel", Rule: "def2b"})
	s.Emit(Event{Seq: 5, Type: ERound, Phase: "phase1", Round: 3, Changed: 12})

	st := s.Status()
	if st.Run == nil || st.Run.Tool != "test" {
		t.Fatalf("run manifest not captured: %+v", st.Run)
	}
	if st.Figure != "5a" || st.Phase != "phase1" || st.Engine != "parallel" || st.Rule != "def2b" {
		t.Fatalf("in-flight position wrong: %+v", st)
	}
	if st.Round != 3 || st.Changed != 12 {
		t.Fatalf("round tracking wrong: round=%d changed=%d", st.Round, st.Changed)
	}
	if st.SweepTotal != 40 || st.SweepDone != 0 {
		t.Fatalf("sweep progress wrong: %d/%d", st.SweepDone, st.SweepTotal)
	}
	if st.Seq != 5 || st.Events != 5 {
		t.Fatalf("seq=%d events=%d, want 5 and 5", st.Seq, st.Events)
	}

	s.Emit(Event{Seq: 6, Type: EPhaseEnd, Phase: "phase1", Rounds: 9})
	s.Emit(Event{Seq: 7, Type: ESweepCell, X: 5, Rep: 0})
	s.Emit(Event{Seq: 8, Type: ESweepCell, X: 5, Rep: 1, Err: "boom"})
	s.Emit(Event{Seq: 9, Type: ESweepPoint, X: 5, N: 2})
	s.Emit(Event{Seq: 10, Type: ERunEnd})

	st = s.Status()
	if st.Phase != "" || st.LastRounds != 9 {
		t.Fatalf("phase close not tracked: %+v", st)
	}
	if st.SweepDone != 2 || st.SweepPoints != 1 {
		t.Fatalf("sweep counts wrong: done=%d points=%d", st.SweepDone, st.SweepPoints)
	}
	if st.Errors != 1 || st.LastErr != "boom" {
		t.Fatalf("error tracking wrong: %d %q", st.Errors, st.LastErr)
	}
	if !st.Done {
		t.Fatal("run_end not reflected")
	}
	if st.Counts[ESweepCell] != 2 || st.Counts[ERound] != 1 {
		t.Fatalf("type counts wrong: %v", st.Counts)
	}
}

func TestLiveSinkRingWraps(t *testing.T) {
	s := NewLiveSink(4)
	for i := 1; i <= 10; i++ {
		s.Emit(Event{Seq: int64(i), Type: ESpan})
	}
	recent := s.Recent(100)
	if len(recent) != 4 {
		t.Fatalf("recent length = %d, want ring size 4", len(recent))
	}
	for i, e := range recent {
		if want := int64(7 + i); e.Seq != want {
			t.Fatalf("recent[%d].Seq = %d, want %d (oldest first)", i, e.Seq, want)
		}
	}
	if got := s.Recent(2); len(got) != 2 || got[1].Seq != 10 {
		t.Fatalf("Recent(2) = %+v, want the last two", got)
	}
	if s.Recent(0) != nil {
		t.Fatal("Recent(0) should be nil")
	}
}

// TestLiveSinkRingWrapsUnderConcurrentWriters hammers the ring from
// several writers while readers poll Recent and Status. Run with -race;
// the assertions only pin what survives interleaving: the ring stays
// full once wrapped, every slot holds a real event, and no reader ever
// observes a torn slot (zero Seq).
func TestLiveSinkRingWrapsUnderConcurrentWriters(t *testing.T) {
	const (
		ringSize  = 8
		writers   = 4
		perWriter = 500
	)
	s := NewLiveSink(ringSize)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, e := range s.Recent(ringSize) {
					if e.Seq == 0 {
						t.Error("reader observed a torn ring slot")
						return
					}
				}
				_ = s.Status()
			}
		}()
	}
	var writersWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(w int) {
			defer writersWG.Done()
			for i := 0; i < perWriter; i++ {
				s.Emit(Event{Seq: int64(w*perWriter + i + 1), Type: ERound, Round: i})
			}
		}(w)
	}
	writersWG.Wait()
	close(stop)
	wg.Wait()

	recent := s.Recent(100)
	if len(recent) != ringSize {
		t.Fatalf("ring holds %d events after wrap, want %d", len(recent), ringSize)
	}
	for i, e := range recent {
		if e.Seq == 0 || e.Type != ERound {
			t.Fatalf("recent[%d] = %+v, want a written round event", i, e)
		}
	}
	if st := s.Status(); st.Events != int64(writers*perWriter) {
		t.Fatalf("status counted %d events, want %d", st.Events, writers*perWriter)
	}
}

// TestLiveSinkFlushDrainsSubscribers checks the Flusher contract: Flush
// returns once subscriber buffers empty, and gives up after the bounded
// wait when a consumer is stuck rather than wedging the caller.
func TestLiveSinkFlushDrainsSubscribers(t *testing.T) {
	s := NewLiveSink(8)
	id, ch := s.Subscribe(8)
	defer s.Unsubscribe(id)
	for i := 1; i <= 5; i++ {
		s.Emit(Event{Seq: int64(i), Type: ERound})
	}

	// A slow consumer drains while Flush waits.
	go func() {
		for i := 0; i < 5; i++ {
			time.Sleep(2 * time.Millisecond)
			<-ch
		}
	}()
	start := time.Now()
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(ch) != 0 {
		t.Fatalf("Flush returned with %d events still buffered", len(ch))
	}
	if time.Since(start) > liveFlushWait {
		t.Fatalf("Flush took %v, longer than the bound %v", time.Since(start), liveFlushWait)
	}

	// A stuck consumer: Flush must return after the bounded wait, not hang.
	old := liveFlushWait
	liveFlushWait = 20 * time.Millisecond
	defer func() { liveFlushWait = old }()
	for i := 6; i <= 10; i++ {
		s.Emit(Event{Seq: int64(i), Type: ERound})
	}
	start = time.Now()
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond || elapsed > 5*time.Second {
		t.Fatalf("Flush with stuck consumer returned after %v, want ~the %v bound", elapsed, liveFlushWait)
	}
	if len(ch) == 0 {
		t.Fatal("stuck consumer should still have buffered events")
	}
}

func TestLiveSinkSubscribe(t *testing.T) {
	s := NewLiveSink(4)
	id, ch := s.Subscribe(2)
	s.Emit(Event{Seq: 1, Type: ERound})
	if e := <-ch; e.Seq != 1 {
		t.Fatalf("subscriber got %+v", e)
	}

	// Overflow the buffer: emits must not block, drops are counted.
	for i := 2; i <= 6; i++ {
		s.Emit(Event{Seq: int64(i), Type: ERound})
	}
	if st := s.Status(); st.Dropped == 0 {
		t.Fatal("expected dropped events with a full subscriber buffer")
	}
	s.Unsubscribe(id)
	if _, ok := <-ch; ok {
		// Drain buffered events until the close is visible.
		for range ch {
		}
	}

	// Close terminates remaining subscribers.
	_, ch2 := s.Subscribe(1)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := <-ch2; ok {
		t.Fatal("channel should be closed after Close")
	}
}

// TestLiveSinkSlowConsumerBackpressure pins the serving-rate contract
// of the live sink: a consumer slower than the emitter never blocks or
// slows Emit, its misses are counted per subscriber, and a fast
// consumer sharing the sink sees every event.
func TestLiveSinkSlowConsumerBackpressure(t *testing.T) {
	s := NewLiveSink(64)
	slowID, slow := s.Subscribe(4)
	fastID, fast := s.Subscribe(MaxSubscriberBuffer)

	const n = 2000
	done := make(chan time.Duration)
	go func() {
		start := time.Now()
		for i := 1; i <= n; i++ {
			s.Emit(Event{Seq: int64(i), Type: ERound})
		}
		done <- time.Since(start)
	}()

	// The slow consumer drains a trickle while the emitter floods. It
	// stops asking for more once the emitter is done — the stream only
	// closes on Close, so an unconditional read could wait forever.
	var slowGot []int64
	var elapsed time.Duration
	emitting := true
	for emitting && len(slowGot) < 8 {
		select {
		case e := <-slow:
			slowGot = append(slowGot, e.Seq)
			time.Sleep(100 * time.Microsecond)
		case elapsed = <-done:
			emitting = false
		}
	}
	if emitting {
		elapsed = <-done
	}
	if elapsed > 5*time.Second {
		t.Fatalf("emitting %d events with a slow subscriber took %v; Emit must never block", n, elapsed)
	}

	// The fast consumer saw everything, in order.
	var fastGot int
	for len(fast) > 0 {
		e := <-fast
		fastGot++
		if e.Seq != int64(fastGot) {
			t.Fatalf("fast subscriber event %d has seq %d; events must not reorder", fastGot, e.Seq)
		}
	}
	if fastGot != n {
		t.Fatalf("fast subscriber got %d/%d events", fastGot, n)
	}
	if d := s.SubscriberDropped(fastID); d != 0 {
		t.Fatalf("fast subscriber dropped %d events", d)
	}

	// The slow consumer's misses are accounted: everything it did see
	// plus its drops plus what is still buffered covers the emission.
	dropped := s.SubscriberDropped(slowID)
	if dropped == 0 {
		t.Fatal("slow subscriber should have dropped events")
	}
	for len(slow) > 0 {
		e := <-slow
		slowGot = append(slowGot, e.Seq)
	}
	if got := int64(len(slowGot)) + dropped; got != n {
		t.Fatalf("slow subscriber: seen %d + dropped %d = %d, want %d", len(slowGot), dropped, got, n)
	}
	for i := 1; i < len(slowGot); i++ {
		if slowGot[i] <= slowGot[i-1] {
			t.Fatalf("slow subscriber saw seq %d after %d; drops must not reorder", slowGot[i], slowGot[i-1])
		}
	}
	if st := s.Status(); st.Dropped != dropped {
		t.Fatalf("Status().Dropped = %d, want %d", st.Dropped, dropped)
	}
	_ = s.Close()
}

// TestLiveSinkSubscribeBufferClamp pins the MaxSubscriberBuffer bound:
// a subscriber cannot make the emitter hold more than the cap.
func TestLiveSinkSubscribeBufferClamp(t *testing.T) {
	s := NewLiveSink(1)
	id, ch := s.Subscribe(1 << 30)
	if got := cap(ch); got != MaxSubscriberBuffer {
		t.Fatalf("Subscribe(1<<30) buffer cap = %d, want clamp to %d", got, MaxSubscriberBuffer)
	}
	s.Unsubscribe(id)
	if d := s.SubscriberDropped(id); d != 0 {
		t.Fatalf("unknown subscriber dropped = %d, want 0", d)
	}
	_ = s.Close()
}
