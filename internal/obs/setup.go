package obs

import (
	"fmt"
	"os"
	"time"
)

// Setup assembles a Recorder for a CLI from file paths: tracePath gets
// the NDJSON event stream, metricsPath the JSON metrics snapshot written
// at finish, and extra sinks (e.g. a progress printer) tee off the same
// event stream. Either path may be empty. The returned finish function
// emits run_end, flushes and closes the trace, and writes the metrics
// file; it is safe to call when the recorder is nil.
//
// When nothing is requested (both paths empty, no extra sinks), Setup
// returns a nil Recorder — observability fully off.
func Setup(run Run, tracePath, metricsPath string, extra ...Sink) (*Recorder, func() error, error) {
	var sinks []Sink
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return nil, nil, fmt.Errorf("obs: trace file: %w", err)
		}
		sinks = append(sinks, NewNDJSONSink(f))
	}
	sinks = append(sinks, extra...)

	var tracer *Tracer
	if len(sinks) > 0 {
		tracer = NewTracer(MultiSink(sinks...))
	}
	var registry *Registry
	if metricsPath != "" {
		registry = NewRegistry()
	}
	rec := NewRecorder(tracer, registry)
	if rec == nil {
		return nil, func() error { return nil }, nil
	}

	start := time.Now()
	rec.BeginRun(run)
	finish := func() error {
		rec.EndRun(start)
		err := rec.Tracer().Close()
		if metricsPath != "" {
			f, ferr := os.Create(metricsPath)
			if ferr != nil {
				if err == nil {
					err = fmt.Errorf("obs: metrics file: %w", ferr)
				}
				return err
			}
			if werr := registry.WriteJSON(f); werr != nil && err == nil {
				err = werr
			}
			if cerr := f.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
		return err
	}
	return rec, finish, nil
}
