package obs

import (
	"fmt"
	"os"
	"time"
)

// SetupConfig parameterizes SetupWith.
type SetupConfig struct {
	// Run is the manifest emitted at the head of the trace.
	Run Run
	// TracePath, when non-empty, receives the NDJSON event stream.
	TracePath string
	// MetricsPath, when non-empty, receives the JSON metrics snapshot
	// written by the finish function.
	MetricsPath string
	// Metrics forces an in-memory metrics registry even when MetricsPath
	// is empty — the live telemetry server scrapes it via /metrics.
	Metrics bool
	// Extra sinks tee off the same event stream as the trace file (e.g.
	// a progress printer or a LiveSink).
	Extra []Sink
}

// SetupWith assembles a Recorder for a CLI: the trace file, any extra
// sinks, and the metrics registry. The returned finish function emits
// run_end, flushes and closes the trace, and writes the metrics file; it
// is safe to call when the recorder is nil.
//
// When nothing is requested (no paths, no extra sinks, Metrics false),
// SetupWith returns a nil Recorder — observability fully off.
func SetupWith(cfg SetupConfig) (*Recorder, func() error, error) {
	var sinks []Sink
	if cfg.TracePath != "" {
		f, err := os.Create(cfg.TracePath)
		if err != nil {
			return nil, nil, fmt.Errorf("obs: trace file: %w", err)
		}
		sinks = append(sinks, NewNDJSONSink(f))
	}
	sinks = append(sinks, cfg.Extra...)

	var tracer *Tracer
	if len(sinks) > 0 {
		tracer = NewTracer(MultiSink(sinks...))
	}
	var registry *Registry
	if cfg.MetricsPath != "" || cfg.Metrics {
		registry = NewRegistry()
	}
	rec := NewRecorder(tracer, registry)
	if rec == nil {
		return nil, func() error { return nil }, nil
	}

	start := time.Now()
	rec.BeginRun(cfg.Run)
	finish := func() error {
		rec.EndRun(start)
		err := rec.Tracer().Close()
		if cfg.MetricsPath != "" {
			f, ferr := os.Create(cfg.MetricsPath)
			if ferr != nil {
				if err == nil {
					err = fmt.Errorf("obs: metrics file: %w", ferr)
				}
				return err
			}
			if werr := registry.WriteJSON(f); werr != nil && err == nil {
				err = werr
			}
			if cerr := f.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
		return err
	}
	return rec, finish, nil
}

// Setup is SetupWith for the common path-only case: tracePath gets the
// NDJSON event stream, metricsPath the JSON metrics snapshot written at
// finish, and extra sinks tee off the same event stream.
func Setup(run Run, tracePath, metricsPath string, extra ...Sink) (*Recorder, func() error, error) {
	return SetupWith(SetupConfig{
		Run: run, TracePath: tracePath, MetricsPath: metricsPath, Extra: extra,
	})
}
