package analyze

import (
	"fmt"
	"sort"

	"ocpmesh/internal/obs"
)

// Comparable reduces a trace to its engine-invariant skeleton: the
// events that must be identical between two runs of the same
// configuration on different fixpoint engines (the PR 3 invariance
// property), with everything machine- or engine-dependent zeroed —
// sequence numbers, timestamps, durations, and the engine name itself.
// Kept are phase_start (phase, rule), round (phase, round, changed,
// msgs), phase_end (phase, rounds), figure brackets, sweep_start,
// sweep_cell (x, rep, value, ok), sweep_point (x, n, value), route
// outcomes, wormhole summaries and deltas.
func Comparable(events []obs.Event) []obs.Event {
	var out []obs.Event
	for _, e := range events {
		switch e.Type {
		case obs.EPhaseStart, obs.ERound, obs.EPhaseEnd,
			obs.EFigureStart, obs.EFigureEnd, obs.ESweepStart,
			obs.ESweepCell, obs.ESweepPoint, obs.ERoute,
			obs.EWormhole, obs.EDelta:
			e.Seq, e.TNS, e.DurNS = 0, 0, 0
			e.Engine = ""
			out = append(out, e)
		}
	}
	return out
}

// DiffOptions tunes Diff.
type DiffOptions struct {
	// Unordered compares the comparable skeletons as multisets instead
	// of ordered streams. Needed for sweep traces recorded with more
	// than one worker, where cell scheduling interleaves events
	// nondeterministically; single-formation traces diff ordered.
	Unordered bool
	// MaxDiffs caps the reported divergences (0 = 10).
	MaxDiffs int
}

// Diff compares the engine-invariant skeletons of two traces and
// returns human-readable divergences, empty when the traces are
// equivalent. It is the offline check of the engine-invariance
// property: a sequential and a parallel run of the same configuration
// must produce identical skeletons.
func Diff(a, b []obs.Event, opt DiffOptions) []string {
	max := opt.MaxDiffs
	if max <= 0 {
		max = 10
	}
	ca, cb := Comparable(a), Comparable(b)
	if opt.Unordered {
		sortEvents(ca)
		sortEvents(cb)
	}
	var diffs []string
	if len(ca) != len(cb) {
		diffs = append(diffs, fmt.Sprintf("comparable event count: %d vs %d", len(ca), len(cb)))
	}
	n := len(ca)
	if len(cb) < n {
		n = len(cb)
	}
	for i := 0; i < n && len(diffs) < max; i++ {
		if ca[i] != cb[i] {
			diffs = append(diffs, fmt.Sprintf("event %d: %s vs %s", i, eventKey(ca[i]), eventKey(cb[i])))
		}
	}
	return diffs
}

// eventKey renders the discriminating fields of a comparable event.
func eventKey(e obs.Event) string {
	return fmt.Sprintf("{%s phase=%s rule=%s name=%s round=%d rounds=%d changed=%d msgs=%d x=%g rep=%d n=%d value=%g ok=%t hops=%d err=%s}",
		e.Type, e.Phase, e.Rule, e.Name, e.Round, e.Rounds, e.Changed, e.Msgs,
		e.X, e.Rep, e.N, e.Value, e.OK, e.Hops, e.Err)
}

// sortEvents orders comparable events by their full key, giving a
// canonical multiset order.
func sortEvents(events []obs.Event) {
	sort.Slice(events, func(i, j int) bool {
		return eventKey(events[i]) < eventKey(events[j])
	})
}
