package analyze

import (
	"strings"
	"testing"

	"ocpmesh/internal/obs"
)

const sampleTrace = `{"seq":1,"t_ns":0,"type":"run_start","name":"ocpsim","run":{"tool":"ocpsim","version":"v1","go_version":"go1.22","seed":7}}
{"seq":2,"t_ns":10,"type":"phase_start","phase":"phase1","engine":"sequential","rule":"def2b"}
{"seq":3,"t_ns":20,"type":"round","phase":"phase1","round":1,"changed":5,"msgs":40}
{"seq":4,"t_ns":30,"type":"round","phase":"phase1","round":2,"changed":2,"msgs":40}
{"seq":5,"t_ns":40,"type":"phase_end","phase":"phase1","rounds":2,"dur_ns":30}
{"seq":6,"t_ns":50,"type":"span","name":"sweep","dur_ns":1000}
{"seq":7,"t_ns":60,"type":"sweep_cell","x":5,"value":2,"ok":true,"dur_ns":100}
{"seq":8,"t_ns":70,"type":"sweep_point","x":5,"n":1,"value":2}
{"seq":9,"t_ns":80,"type":"run_end","dur_ns":80}
`

func TestReadEventsAndSummarize(t *testing.T) {
	events, err := ReadEvents(strings.NewReader(sampleTrace))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 9 {
		t.Fatalf("read %d events, want 9", len(events))
	}
	rep := Summarize(events)
	if rep.Run == nil || rep.Run.Tool != "ocpsim" || rep.Run.Seed != 7 {
		t.Fatalf("run manifest: %+v", rep.Run)
	}
	if len(rep.Phases) != 1 {
		t.Fatalf("phases: %+v", rep.Phases)
	}
	ps := rep.Phases[0]
	if ps.Phase != "phase1" || ps.Engine != "sequential" || ps.Runs != 1 ||
		ps.RoundsTotal != 2 || ps.Changed != 7 || ps.Msgs != 80 || ps.DurNS != 30 {
		t.Fatalf("phase stat: %+v", ps)
	}
	if len(rep.Spans) != 1 || rep.Spans[0].Name != "sweep" || rep.Spans[0].TotalNS != 1000 {
		t.Fatalf("span stat: %+v", rep.Spans)
	}
	if rep.Sweep.Cells != 1 || rep.Sweep.Points != 1 {
		t.Fatalf("sweep stat: %+v", rep.Sweep)
	}
	if rep.WallNS != 80 {
		t.Fatalf("wall = %d, want 80", rep.WallNS)
	}

	var text strings.Builder
	rep.WriteText(&text)
	for _, want := range []string{"phase1", "sequential", "span", "sweep"} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("text report missing %q:\n%s", want, text.String())
		}
	}
}

func TestReadEventsBadLine(t *testing.T) {
	_, err := ReadEvents(strings.NewReader("{\"type\":\"span\"}\nnot json\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v, want line-2 parse error", err)
	}
}

func TestDiffEquivalentAcrossEngines(t *testing.T) {
	// The same logical run recorded on two engines: timings, sequence
	// numbers and engine names differ, the skeleton does not.
	a := []obs.Event{
		{Seq: 1, TNS: 5, Type: obs.ERunStart},
		{Seq: 2, TNS: 10, Type: obs.EPhaseStart, Phase: "phase1", Engine: "sequential", Rule: "def2b"},
		{Seq: 3, TNS: 20, Type: obs.ERound, Phase: "phase1", Round: 1, Changed: 5, Msgs: 40},
		{Seq: 4, TNS: 30, Type: obs.EPhaseEnd, Phase: "phase1", Rounds: 1, DurNS: 25},
	}
	b := []obs.Event{
		{Seq: 1, TNS: 50, Type: obs.ERunStart},
		{Seq: 2, TNS: 100, Type: obs.EPhaseStart, Phase: "phase1", Engine: "parallel", Rule: "def2b"},
		{Seq: 3, TNS: 200, Type: obs.ERound, Phase: "phase1", Round: 1, Changed: 5, Msgs: 40},
		{Seq: 4, TNS: 300, Type: obs.EPhaseEnd, Phase: "phase1", Rounds: 1, DurNS: 990},
	}
	if diffs := Diff(a, b, DiffOptions{}); len(diffs) != 0 {
		t.Fatalf("equivalent traces diverge: %v", diffs)
	}

	// A single changed label count must surface.
	b[2].Changed = 6
	diffs := Diff(a, b, DiffOptions{})
	if len(diffs) != 1 || !strings.Contains(diffs[0], "changed=5") {
		t.Fatalf("diffs = %v, want one changed-count divergence", diffs)
	}
}

func TestDiffUnordered(t *testing.T) {
	a := []obs.Event{
		{Type: obs.ESweepCell, X: 5, Rep: 0, Value: 1, OK: true},
		{Type: obs.ESweepCell, X: 5, Rep: 1, Value: 2, OK: true},
	}
	b := []obs.Event{a[1], a[0]} // scheduling swapped the cells
	if diffs := Diff(a, b, DiffOptions{}); len(diffs) == 0 {
		t.Fatal("ordered diff should notice the swap")
	}
	if diffs := Diff(a, b, DiffOptions{Unordered: true}); len(diffs) != 0 {
		t.Fatalf("unordered diff should accept the swap: %v", diffs)
	}
}

func TestCompareBench(t *testing.T) {
	base := &BenchReport{Results: []BenchResult{
		{Name: "BenchmarkA/x-8", NsPerOp: 100},
		{Name: "BenchmarkB", NsPerOp: 200},
		{Name: "BenchmarkC", NsPerOp: 50},
	}}
	fresh := &BenchReport{Results: []BenchResult{
		{Name: "BenchmarkA/x-16", NsPerOp: 110}, // different GOMAXPROCS suffix
		{Name: "BenchmarkB", NsPerOp: 210},
		{Name: "BenchmarkC", NsPerOp: 55},
		{Name: "BenchmarkNew", NsPerOp: 1},
	}}
	check := CompareBench(base, fresh)
	if len(check.Deltas) != 3 || len(check.Missing) != 0 {
		t.Fatalf("check = %+v", check)
	}
	if check.Added[0] != "BenchmarkNew" {
		t.Fatalf("added = %v", check.Added)
	}
	if check.MedianRatio < 1.04 || check.MedianRatio > 1.11 {
		t.Fatalf("median ratio = %g, want ~1.05-1.10", check.MedianRatio)
	}
	if check.Regressed(0.25) {
		t.Fatal("10% slowdown flagged at 25% tolerance")
	}
	if !check.Regressed(0.04) {
		t.Fatal("10% median slowdown not flagged at 4% tolerance")
	}

	// A 2x regression on every benchmark trips the default gate.
	slow := &BenchReport{Results: []BenchResult{
		{Name: "BenchmarkA/x-8", NsPerOp: 200},
		{Name: "BenchmarkB", NsPerOp: 400},
		{Name: "BenchmarkC", NsPerOp: 100},
	}}
	if !CompareBench(base, slow).Regressed(0.25) {
		t.Fatal("2x regression passed the 25% gate")
	}

	// One outlier: median survives, -each does not.
	outlier := &BenchReport{Results: []BenchResult{
		{Name: "BenchmarkA/x-8", NsPerOp: 100},
		{Name: "BenchmarkB", NsPerOp: 1000},
		{Name: "BenchmarkC", NsPerOp: 50},
	}}
	c := CompareBench(base, outlier)
	if c.Regressed(0.25) {
		t.Fatal("single outlier tripped the median gate")
	}
	if !c.AnyRegressed(0.25) {
		t.Fatal("single outlier escaped the -each gate")
	}

	// A vanished benchmark must fail the gate outright.
	shrunk := &BenchReport{Results: []BenchResult{{Name: "BenchmarkA/x-8", NsPerOp: 100}}}
	c = CompareBench(base, shrunk)
	if len(c.Missing) != 2 || !c.Regressed(10) {
		t.Fatalf("shrunk suite passed: %+v", c)
	}
}

func TestOverheadPairs(t *testing.T) {
	rep := &BenchReport{Results: []BenchResult{
		{Name: "BenchmarkOverhead/bitset/n=512/fabric=off-8", NsPerOp: 100},
		{Name: "BenchmarkOverhead/bitset/n=512/fabric=on-8", NsPerOp: 104},
		{Name: "BenchmarkOverhead/parallel/n=512/fabric=off-8", NsPerOp: 1000},
		{Name: "BenchmarkOverhead/parallel/n=512/fabric=on-8", NsPerOp: 1030},
		{Name: "BenchmarkOverhead/channels/n=512/fabric=off-8", NsPerOp: 500}, // no on twin
		{Name: "BenchmarkUnrelated-8", NsPerOp: 7},
	}}
	pairs := OverheadPairs(rep)
	if len(pairs) != 2 {
		t.Fatalf("pairs = %+v, want bitset and parallel", pairs)
	}
	p := pairs[0]
	if p.Name != "BenchmarkOverhead/bitset/n=512" || p.OffNS != 100 || p.OnNS != 104 || p.Ratio != 1.04 {
		t.Fatalf("bitset pair = %+v", p)
	}
	if pairs[1].Ratio != 1.03 {
		t.Fatalf("parallel pair = %+v", pairs[1])
	}
	if got := OverheadPairs(&BenchReport{Results: []BenchResult{{Name: "BenchmarkX", NsPerOp: 1}}}); got != nil {
		t.Fatalf("pairs from unrelated document = %+v", got)
	}
}

func TestTrimProcs(t *testing.T) {
	cases := []struct{ in, want string }{
		{"BenchmarkX-8", "BenchmarkX"},
		{"BenchmarkX", "BenchmarkX"},
		{"BenchmarkChurn/incremental/f=10", "BenchmarkChurn/incremental/f=10"},
		{"BenchmarkParallel/parallel/n=512/w=8-16", "BenchmarkParallel/parallel/n=512/w=8"},
		{"BenchmarkX-", "BenchmarkX-"},
	}
	for _, c := range cases {
		if got := trimProcs(c.in); got != c.want {
			t.Errorf("trimProcs(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestWorkerScalings(t *testing.T) {
	rep := &BenchReport{Results: []BenchResult{
		{Name: "BenchmarkBitset/bitset/n=512/w=4-8", NsPerOp: 140},
		{Name: "BenchmarkBitset/bitset/n=512/w=1-8", NsPerOp: 100},
		{Name: "BenchmarkBitset/bitset/n=2048/w=1-8", NsPerOp: 1000},
		{Name: "BenchmarkBitset/bitset/n=2048/w=8-8", NsPerOp: 900},
		{Name: "BenchmarkChurn/incremental/f=10-8", NsPerOp: 50}, // no /w=N: skipped
	}}
	fams := WorkerScalings(rep)
	if len(fams) != 2 {
		t.Fatalf("families = %d, want 2", len(fams))
	}
	if fams[0].Name != "BenchmarkBitset/bitset/n=512" || fams[0].N != 512 {
		t.Fatalf("family 0 = %+v", fams[0])
	}
	// Points ascend by worker count regardless of document order.
	if fams[0].Points[0].Workers != 1 || fams[0].Points[1].Workers != 4 {
		t.Fatalf("family 0 points unsorted: %+v", fams[0].Points)
	}
	if fams[1].N != 2048 || fams[1].Points[1].NsPerOp != 900 {
		t.Fatalf("family 1 = %+v", fams[1])
	}
}

func TestScalingViolations(t *testing.T) {
	fams := []WorkerScaling{
		{Name: "small/n=512", N: 512, Points: []WorkerPoint{{1, 100}, {8, 300}}},    // below floor: exempt
		{Name: "big/n=2048", N: 2048, Points: []WorkerPoint{{1, 1000}, {8, 950}}},   // faster: ok
		{Name: "flat/n=4096", N: 4096, Points: []WorkerPoint{{1, 1000}, {8, 1050}}}, // +5%: within tol
		{Name: "bad/n=2048", N: 2048, Points: []WorkerPoint{{1, 1000}, {4, 1000}, {8, 1300}}},
		{Name: "single/n=2048", N: 2048, Points: []WorkerPoint{{1, 1000}}}, // one point: skipped
	}
	got := ScalingViolations(fams, 2048, 0.10)
	if len(got) != 1 || !strings.Contains(got[0], "bad/n=2048") || !strings.Contains(got[0], "w=8") {
		t.Fatalf("violations = %v, want exactly bad/n=2048 w=8", got)
	}
	if v := ScalingViolations(fams, 0, 0.10); len(v) != 2 {
		t.Fatalf("with no size floor, violations = %v, want small + bad", v)
	}
}
