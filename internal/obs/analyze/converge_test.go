package analyze

import (
	"strings"
	"testing"

	"ocpmesh/internal/obs"
)

func TestConvergeAggregates(t *testing.T) {
	events := []obs.Event{
		// Two phase1 runs on the bitset engine, one within bound, one not.
		{Type: obs.ECosts, Phase: "phase1", Engine: "bitset", Rounds: 3, Diameter: 6, Changed: 10, Msgs: 100, Words: 40, N: 5},
		{Type: obs.ECosts, Phase: "phase1", Engine: "bitset", Rounds: 8, Diameter: 6, Changed: 12, Msgs: 150, Words: 50, N: 10},
		// One phase2 run, exactly at the bound.
		{Type: obs.ECosts, Phase: "phase2", Engine: "bitset", Rounds: 6, Diameter: 6, Changed: 4, Msgs: 80, N: 5},
		// Per-block records.
		{Type: obs.EBlockConverge, Phase: "phase1", Block: 1, Rounds: 2, Diameter: 4, N: 6},
		{Type: obs.EBlockConverge, Phase: "phase1", Block: 2, Rounds: 5, Diameter: 3, N: 2},
		{Type: obs.EBlockConverge, Phase: "phase2", Block: 1, Rounds: 1, Diameter: 4, N: 6},
		// One violation.
		{Type: obs.EInvariantViolation, Name: "rounds_bound", Phase: "phase1", Err: "8 rounds exceed max d(B) = 6"},
		// Noise the analyzer must ignore.
		{Type: obs.ERound, Phase: "phase1", Round: 1, Changed: 3},
	}
	rep := Converge(events)

	if rep.CostsEvents != 3 {
		t.Fatalf("costs events = %d, want 3", rep.CostsEvents)
	}
	if len(rep.Phases) != 2 {
		t.Fatalf("phases = %+v, want phase1 and phase2", rep.Phases)
	}
	p1 := rep.Phases[0]
	if p1.Phase != "phase1" || p1.Runs != 2 || p1.WithinBound != 1 || p1.Exceeds != 1 {
		t.Fatalf("phase1 stat = %+v", p1)
	}
	if want := 8.0 / 6.0; p1.MaxRatio != want {
		t.Fatalf("phase1 max ratio = %v, want %v", p1.MaxRatio, want)
	}
	if p1.Rounds != 11 || p1.Flips != 22 || p1.Msgs != 250 || p1.Words != 90 {
		t.Fatalf("phase1 totals = %+v", p1)
	}
	if len(p1.Scatter) != 2 || p1.Scatter[0] != (ConvergePoint{Diameter: 6, Rounds: 3, Count: 1}) {
		t.Fatalf("phase1 scatter = %+v", p1.Scatter)
	}
	p2 := rep.Phases[1]
	if p2.WithinBound != 1 || p2.Exceeds != 0 || p2.MaxRatio != 1.0 {
		t.Fatalf("phase2 stat = %+v (rounds == d(B) must count as within bound)", p2)
	}

	if len(rep.Msgs) != 2 {
		t.Fatalf("msgs buckets = %+v, want f=5 and f=10", rep.Msgs)
	}
	if m := rep.Msgs[0]; m.Faults != 5 || m.Runs != 2 || m.MeanMsgs != 90 {
		t.Fatalf("f=5 bucket = %+v, want mean of 100 and 80", m)
	}

	if len(rep.Blocks) != 2 {
		t.Fatalf("block tails = %+v", rep.Blocks)
	}
	b1 := rep.Blocks[0]
	if b1.Phase != "phase1" || b1.Blocks != 2 || b1.WithinBound != 1 || b1.Max != 5 || b1.P50 != 2 {
		t.Fatalf("phase1 block tail = %+v", b1)
	}

	if rep.ViolationCount() != 1 {
		t.Fatalf("violations = %d, want 1", rep.ViolationCount())
	}
	if v := rep.Violations[0]; v.Monitor != "rounds_bound" || v.Count != 1 || v.Example == "" {
		t.Fatalf("violation = %+v", v)
	}

	var sb strings.Builder
	rep.WriteText(&sb)
	text := sb.String()
	for _, want := range []string{"phase1", "within-bound=1/2", "VIOLATION rounds_bound", "blocks", "messages vs faults"} {
		if !strings.Contains(text, want) {
			t.Errorf("text report missing %q:\n%s", want, text)
		}
	}
	// The exceedance cell is marked in the scatter.
	if !strings.Contains(text, "!") {
		t.Errorf("scatter does not mark the bound exceedance:\n%s", text)
	}
}

func TestConvergeEmptyTrace(t *testing.T) {
	rep := Converge([]obs.Event{{Type: obs.ERound}})
	if rep.CostsEvents != 0 || rep.ViolationCount() != 0 {
		t.Fatalf("empty report = %+v", rep)
	}
	var sb strings.Builder
	rep.WriteText(&sb)
	if !strings.Contains(sb.String(), "no costs events") {
		t.Fatalf("empty report text = %q", sb.String())
	}
}

func TestPercentileInt(t *testing.T) {
	sorted := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	for _, tc := range []struct{ p, want int }{
		{50, 5}, {90, 9}, {99, 10}, {100, 10}, {1, 1},
	} {
		if got := percentileInt(sorted, tc.p); got != tc.want {
			t.Errorf("p%d = %d, want %d", tc.p, got, tc.want)
		}
	}
	if got := percentileInt(nil, 50); got != 0 {
		t.Errorf("p50 of empty = %d", got)
	}
	if got := percentileInt([]int{7}, 50); got != 7 {
		t.Errorf("p50 of singleton = %d", got)
	}
}
