package analyze

import (
	"strings"
	"testing"

	"ocpmesh/internal/obs"
)

// req builds a consistent serve_request event: the four stages sum to
// the end-to-end duration by construction, like served traffic.
func req(tenant string, shard int, id int64, q, b, c, p int64) obs.Event {
	return obs.Event{
		Type: obs.EServeRequest, Tenant: tenant, Shard: shard, Req: id,
		Name: "add", N: 1,
		QueueNS: q, BatchNS: b, ComputeNS: c, PublishNS: p,
		DurNS: q + b + c + p,
	}
}

func TestLatencyReport(t *testing.T) {
	events := []obs.Event{
		{Type: obs.EServeDelta, Tenant: "a"}, // ignored: not a serve_request
		req("a", 1, 1, 100, 10, 1000, 50),
		req("a", 1, 2, 200, 20, 2000, 60),
		req("b", 2, 3, 300, 30, 9000, 70),
	}
	events[3].Err = "engine sulked"

	rep := Latency(events, 2)
	if rep.Requests != 3 || rep.Errors != 1 || rep.Inconsistent != 0 {
		t.Fatalf("requests/errors/inconsistent = %d/%d/%d, want 3/1/0",
			rep.Requests, rep.Errors, rep.Inconsistent)
	}
	if len(rep.Stages) != 4 || rep.Stages[0].Stage != "queue" || rep.Stages[2].Stage != "compute" {
		t.Fatalf("stage rows %+v, want queue/batch/compute/publish", rep.Stages)
	}
	q := rep.Stages[0]
	if q.Count != 3 || q.SumNS != 600 || q.P50NS != 200 || q.MaxNS != 300 {
		t.Fatalf("queue dist = %+v, want count 3 sum 600 p50 200 max 300", q)
	}
	if rep.Total == nil || rep.Total.SumNS != 1160+2280+9400 {
		t.Fatalf("total dist = %+v", rep.Total)
	}

	// Tenants rank hottest-first; shards sort numerically.
	if len(rep.Tenants) != 2 || rep.Tenants[0].Key != "b" || rep.Tenants[1].Key != "a" {
		t.Fatalf("tenant order %+v, want b (hottest) then a", rep.Tenants)
	}
	if len(rep.Shards) != 2 || rep.Shards[0].Key != "1" || rep.Shards[1].Key != "2" {
		t.Fatalf("shard order %+v, want 1 then 2", rep.Shards)
	}
	a := rep.Tenants[1]
	if a.Requests != 2 || a.QueueNS != 300 || a.ComputeNS != 3000 || a.TotalNS != 3440 || a.MaxNS != 2280 {
		t.Fatalf("tenant a group = %+v", a)
	}

	// Worst requests come back slowest-first, bounded by top.
	if len(rep.Worst) != 2 || rep.Worst[0].Req != 3 || rep.Worst[1].Req != 2 {
		t.Fatalf("worst = %+v, want reqs 3 then 2", rep.Worst)
	}

	var sb strings.Builder
	rep.WriteText(&sb)
	out := sb.String()
	for _, want := range []string{"requests 3", "errors 1", "compute", "tenant", "shard", "worst requests:", "req=3"} {
		if !strings.Contains(out, want) {
			t.Errorf("text report missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "INCONSISTENT") {
		t.Errorf("consistent trace flagged INCONSISTENT:\n%s", out)
	}
}

func TestLatencyInconsistentFlagged(t *testing.T) {
	broken := req("a", 1, 1, 100, 10, 1000, 50)
	broken.DurNS++ // stage sums no longer telescope
	rep := Latency([]obs.Event{broken}, 0)
	if rep.Inconsistent != 1 {
		t.Fatalf("inconsistent = %d, want 1", rep.Inconsistent)
	}
	var sb strings.Builder
	rep.WriteText(&sb)
	if !strings.Contains(sb.String(), "INCONSISTENT 1") {
		t.Fatalf("text report hides the inconsistency:\n%s", sb.String())
	}
}

func TestLatencyEmpty(t *testing.T) {
	rep := Latency([]obs.Event{{Type: obs.EServeDelta}}, 5)
	if rep.Requests != 0 || rep.Stages != nil || rep.Total != nil {
		t.Fatalf("empty report = %+v", rep)
	}
	var sb strings.Builder
	rep.WriteText(&sb)
	if !strings.Contains(sb.String(), "no serve_request events") {
		t.Fatalf("empty report text = %q", sb.String())
	}
}
