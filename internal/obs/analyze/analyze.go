// Package analyze is the offline half of the observability layer: it
// ingests the NDJSON traces and BENCH_*.json artifacts the instrumented
// tools write and turns them into per-phase/per-engine breakdowns, span
// roll-ups, cross-trace equivalence diffs, and benchmark regression
// checks. Command octrace is its CLI.
package analyze

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"ocpmesh/internal/obs"
)

// ReadEvents parses one NDJSON trace. Blank lines are skipped; a
// malformed line fails with its 1-based line number, so a truncated or
// corrupted trace is reported precisely.
func ReadEvents(r io.Reader) ([]obs.Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var events []obs.Event
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var e obs.Event
		if err := json.Unmarshal([]byte(text), &e); err != nil {
			return nil, fmt.Errorf("analyze: line %d: %w", line, err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("analyze: read: %w", err)
	}
	return events, nil
}

// PhaseStat aggregates every execution of one (phase, engine) pair.
type PhaseStat struct {
	Phase  string `json:"phase"`
	Engine string `json:"engine,omitempty"`
	// Runs counts phase executions, Errors those that ended in an error.
	Runs   int `json:"runs"`
	Errors int `json:"errors,omitempty"`
	// Rounds aggregates the changing-round counts of completed runs.
	RoundsTotal int `json:"rounds_total"`
	RoundsMin   int `json:"rounds_min"`
	RoundsMax   int `json:"rounds_max"`
	// DurNS is the total wall-clock time across runs.
	DurNS int64 `json:"dur_ns"`
	// Changed is the total number of label flips across round events.
	Changed int `json:"changed"`
	// Msgs is the total number of status messages across round events.
	Msgs int `json:"msgs"`
}

// SpanStat rolls up every completion of one named span.
type SpanStat struct {
	Name    string `json:"name"`
	Count   int    `json:"count"`
	TotalNS int64  `json:"total_ns"`
	MinNS   int64  `json:"min_ns"`
	MaxNS   int64  `json:"max_ns"`
}

// FigureStat is one bracketed experiment.
type FigureStat struct {
	Name  string `json:"name"`
	DurNS int64  `json:"dur_ns"`
	Err   string `json:"err,omitempty"`
}

// SweepStat aggregates the sweep events of a trace.
type SweepStat struct {
	Sweeps  int   `json:"sweeps"`
	Cells   int   `json:"cells"`
	Failed  int   `json:"failed"`
	Skipped int   `json:"skipped"` // sweep points with N=0 (metric undefined)
	Points  int   `json:"points"`
	CellNS  int64 `json:"cell_ns"`
}

// RouteStat aggregates routing attempts.
type RouteStat struct {
	Attempts  int `json:"attempts"`
	Delivered int `json:"delivered"`
	Hops      int `json:"hops"`
}

// DeltaStat aggregates incremental churn deltas.
type DeltaStat struct {
	Deltas  int   `json:"deltas"`
	Rounds  int   `json:"rounds"`
	Changed int   `json:"changed"`
	DurNS   int64 `json:"dur_ns"`
}

// Report is the offline summary of one trace.
type Report struct {
	Run    *obs.Run         `json:"run,omitempty"`
	Events int              `json:"events"`
	WallNS int64            `json:"wall_ns"`
	Types  map[string]int   `json:"types"`
	Phases []PhaseStat      `json:"phases,omitempty"`
	Spans  []SpanStat       `json:"spans,omitempty"`
	Figures []FigureStat    `json:"figures,omitempty"`
	Sweep  SweepStat        `json:"sweep"`
	Routes RouteStat        `json:"routes"`
	Deltas DeltaStat        `json:"deltas"`
	Errors int              `json:"errors"`
}

// Summarize folds a trace into its Report. phase_end events are matched
// to the engine announced by the latest phase_start with the same phase
// name, which is exact for serial traces and a close approximation for
// traces of concurrent sweeps (engines do not vary within one run).
func Summarize(events []obs.Event) *Report {
	rep := &Report{Types: map[string]int{}}
	phases := map[string]*PhaseStat{}
	spans := map[string]*SpanStat{}
	engineOf := map[string]string{}
	for _, e := range events {
		rep.Events++
		rep.Types[e.Type]++
		if e.Err != "" {
			rep.Errors++
		}
		if e.TNS > rep.WallNS {
			rep.WallNS = e.TNS
		}
		switch e.Type {
		case obs.ERunStart:
			if rep.Run == nil {
				rep.Run = e.Run
			}
		case obs.EPhaseStart:
			engineOf[e.Phase] = e.Engine
		case obs.ERound:
			ps := phaseStat(phases, e.Phase, engineOf[e.Phase])
			ps.Changed += e.Changed
			ps.Msgs += e.Msgs
		case obs.EPhaseEnd:
			ps := phaseStat(phases, e.Phase, engineOf[e.Phase])
			ps.Runs++
			if e.Err != "" {
				ps.Errors++
				break
			}
			if ps.Runs-ps.Errors == 1 || e.Rounds < ps.RoundsMin {
				ps.RoundsMin = e.Rounds
			}
			if e.Rounds > ps.RoundsMax {
				ps.RoundsMax = e.Rounds
			}
			ps.RoundsTotal += e.Rounds
			ps.DurNS += e.DurNS
		case obs.ESpan:
			ss, ok := spans[e.Name]
			if !ok {
				ss = &SpanStat{Name: e.Name, MinNS: e.DurNS}
				spans[e.Name] = ss
			}
			ss.Count++
			ss.TotalNS += e.DurNS
			if e.DurNS < ss.MinNS {
				ss.MinNS = e.DurNS
			}
			if e.DurNS > ss.MaxNS {
				ss.MaxNS = e.DurNS
			}
		case obs.EFigureEnd:
			rep.Figures = append(rep.Figures, FigureStat{Name: e.Name, DurNS: e.DurNS, Err: e.Err})
		case obs.ESweepStart:
			rep.Sweep.Sweeps++
		case obs.ESweepCell:
			rep.Sweep.Cells++
			rep.Sweep.CellNS += e.DurNS
			if e.Err != "" {
				rep.Sweep.Failed++
			}
		case obs.ESweepPoint:
			if e.N == 0 {
				rep.Sweep.Skipped++
			} else {
				rep.Sweep.Points++
			}
		case obs.ERoute:
			rep.Routes.Attempts++
			if e.Err == "" {
				rep.Routes.Delivered++
				rep.Routes.Hops += e.Hops
			}
		case obs.EDelta:
			rep.Deltas.Deltas++
			rep.Deltas.Rounds += e.Rounds
			rep.Deltas.Changed += e.Changed
			rep.Deltas.DurNS += e.DurNS
		case obs.ERunEnd:
			if e.DurNS > rep.WallNS {
				rep.WallNS = e.DurNS
			}
		}
	}
	for _, k := range sortedPhaseKeys(phases) {
		rep.Phases = append(rep.Phases, *phases[k])
	}
	for _, k := range sortedSpanKeys(spans) {
		rep.Spans = append(rep.Spans, *spans[k])
	}
	return rep
}

func phaseStat(m map[string]*PhaseStat, phase, engine string) *PhaseStat {
	key := phase + "\x00" + engine
	ps, ok := m[key]
	if !ok {
		ps = &PhaseStat{Phase: phase, Engine: engine}
		m[key] = ps
	}
	return ps
}

func sortedPhaseKeys(m map[string]*PhaseStat) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedSpanKeys(m map[string]*SpanStat) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WriteText renders the report for humans.
func (rep *Report) WriteText(w io.Writer) {
	if rep.Run != nil {
		fmt.Fprintf(w, "run     %s %s (go %s, seed %d)\n",
			rep.Run.Tool, rep.Run.Version, rep.Run.GoVersion, rep.Run.Seed)
	}
	fmt.Fprintf(w, "events  %d in %.3fs", rep.Events, float64(rep.WallNS)/1e9)
	if rep.Errors > 0 {
		fmt.Fprintf(w, "  (%d errors)", rep.Errors)
	}
	fmt.Fprintln(w)
	types := make([]string, 0, len(rep.Types))
	for t := range rep.Types {
		types = append(types, t)
	}
	sort.Strings(types)
	for _, t := range types {
		fmt.Fprintf(w, "  %-14s %d\n", t, rep.Types[t])
	}
	for _, ps := range rep.Phases {
		engine := ps.Engine
		if engine == "" {
			engine = "?"
		}
		ok := ps.Runs - ps.Errors
		mean := 0.0
		if ok > 0 {
			mean = float64(ps.RoundsTotal) / float64(ok)
		}
		fmt.Fprintf(w, "phase   %-8s engine=%-10s runs=%d rounds(mean=%.2f min=%d max=%d) changed=%d msgs=%d dur=%.3fs",
			ps.Phase, engine, ps.Runs, mean, ps.RoundsMin, ps.RoundsMax, ps.Changed, ps.Msgs, float64(ps.DurNS)/1e9)
		if ps.Errors > 0 {
			fmt.Fprintf(w, " errors=%d", ps.Errors)
		}
		fmt.Fprintln(w)
	}
	for _, ss := range rep.Spans {
		fmt.Fprintf(w, "span    %-24s n=%d total=%.3fs mean=%.3fms max=%.3fms\n",
			ss.Name, ss.Count, float64(ss.TotalNS)/1e9,
			float64(ss.TotalNS)/float64(ss.Count)/1e6, float64(ss.MaxNS)/1e6)
	}
	for _, f := range rep.Figures {
		fmt.Fprintf(w, "figure  %-4s %.3fs", f.Name, float64(f.DurNS)/1e9)
		if f.Err != "" {
			fmt.Fprintf(w, " err=%s", f.Err)
		}
		fmt.Fprintln(w)
	}
	if rep.Sweep.Cells > 0 {
		fmt.Fprintf(w, "sweep   cells=%d failed=%d points=%d skipped=%d cell-time=%.3fs\n",
			rep.Sweep.Cells, rep.Sweep.Failed, rep.Sweep.Points, rep.Sweep.Skipped,
			float64(rep.Sweep.CellNS)/1e9)
	}
	if rep.Routes.Attempts > 0 {
		fmt.Fprintf(w, "routes  attempts=%d delivered=%d hops=%d\n",
			rep.Routes.Attempts, rep.Routes.Delivered, rep.Routes.Hops)
	}
	if rep.Deltas.Deltas > 0 {
		fmt.Fprintf(w, "deltas  n=%d rounds=%d changed=%d dur=%.3fs\n",
			rep.Deltas.Deltas, rep.Deltas.Rounds, rep.Deltas.Changed,
			float64(rep.Deltas.DurNS)/1e9)
	}
}
