package analyze

import (
	"fmt"
	"io"
	"sort"
	"strconv"

	"ocpmesh/internal/obs"
)

// stageNames orders the serving pipeline's stages everywhere the
// latency report prints or aggregates them.
var stageNames = [4]string{"queue", "batch", "compute", "publish"}

// stagesOf decomposes one serve_request event into its four stages in
// stageNames order.
func stagesOf(e obs.Event) [4]int64 {
	return [4]int64{e.QueueNS, e.BatchNS, e.ComputeNS, e.PublishNS}
}

// StageDist is the exact distribution of one stage across a trace's
// serve_request events (exact sample percentiles, not the P² stream
// estimates of the live /metrics endpoint).
type StageDist struct {
	Stage string `json:"stage"`
	Count int    `json:"count"`
	SumNS int64  `json:"sum_ns"`
	P50NS int64  `json:"p50_ns"`
	P90NS int64  `json:"p90_ns"`
	P99NS int64  `json:"p99_ns"`
	MaxNS int64  `json:"max_ns"`
}

// LatencyGroup is one attribution row — a tenant or a shard — with its
// request count and the per-stage split of the time its requests spent.
type LatencyGroup struct {
	Key      string `json:"key"`
	Requests int    `json:"requests"`
	Errors   int    `json:"errors,omitempty"`
	// QueueNS..PublishNS are stage sums across the group's requests;
	// TotalNS is their end-to-end sum and MaxNS the slowest single
	// request.
	QueueNS   int64 `json:"queue_ns"`
	BatchNS   int64 `json:"batch_ns"`
	ComputeNS int64 `json:"compute_ns"`
	PublishNS int64 `json:"publish_ns"`
	TotalNS   int64 `json:"total_ns"`
	MaxNS     int64 `json:"max_ns"`
}

func (g *LatencyGroup) fold(e obs.Event) {
	g.Requests++
	if e.Err != "" {
		g.Errors++
	}
	g.QueueNS += e.QueueNS
	g.BatchNS += e.BatchNS
	g.ComputeNS += e.ComputeNS
	g.PublishNS += e.PublishNS
	g.TotalNS += e.DurNS
	if e.DurNS > g.MaxNS {
		g.MaxNS = e.DurNS
	}
}

// LatencyReport is the offline latency-attribution summary of a trace's
// serve_request events: per-stage exact percentiles, per-tenant and
// per-shard attribution, and the worst requests for drill-down.
type LatencyReport struct {
	Requests int `json:"requests"`
	Errors   int `json:"errors,omitempty"`
	// Inconsistent counts serve_request events whose four stages do not
	// sum to their end-to-end DurNS. The serving layer derives all five
	// numbers from one chain of monotonic stamps, so anything nonzero
	// means a corrupted or foreign trace; TestLatencyStagesConsistent
	// pins it to zero for served traffic.
	Inconsistent int         `json:"inconsistent"`
	Stages       []StageDist `json:"stages,omitempty"`
	// Total is the end-to-end distribution next to the Stages rows.
	Total   *StageDist     `json:"total,omitempty"`
	Tenants []LatencyGroup `json:"tenants,omitempty"`
	Shards  []LatencyGroup `json:"shards,omitempty"`
	// Worst holds the top requests by end-to-end latency, slowest first.
	Worst []obs.Event `json:"worst,omitempty"`
}

// Latency folds a trace's serve_request events into a LatencyReport.
// top bounds the worst-request drill-down list (<= 0 keeps none).
func Latency(events []obs.Event, top int) *LatencyReport {
	rep := &LatencyReport{}
	var samples [4][]int64
	var totals []int64
	tenants := map[string]*LatencyGroup{}
	shards := map[string]*LatencyGroup{}
	var reqs []obs.Event
	for _, e := range events {
		if e.Type != obs.EServeRequest {
			continue
		}
		rep.Requests++
		if e.Err != "" {
			rep.Errors++
		}
		if e.QueueNS+e.BatchNS+e.ComputeNS+e.PublishNS != e.DurNS {
			rep.Inconsistent++
		}
		for i, v := range stagesOf(e) {
			samples[i] = append(samples[i], v)
		}
		totals = append(totals, e.DurNS)
		latencyGroup(tenants, e.Tenant).fold(e)
		latencyGroup(shards, strconv.Itoa(e.Shard)).fold(e)
		reqs = append(reqs, e)
	}
	if rep.Requests == 0 {
		return rep
	}
	for i, name := range stageNames {
		rep.Stages = append(rep.Stages, stageDist(name, samples[i]))
	}
	total := stageDist("total", totals)
	rep.Total = &total
	rep.Tenants = sortedGroups(tenants, false)
	rep.Shards = sortedGroups(shards, true)
	if top > 0 {
		sort.SliceStable(reqs, func(a, b int) bool { return reqs[a].DurNS > reqs[b].DurNS })
		if top < len(reqs) {
			reqs = reqs[:top]
		}
		rep.Worst = reqs
	}
	return rep
}

func latencyGroup(m map[string]*LatencyGroup, key string) *LatencyGroup {
	g, ok := m[key]
	if !ok {
		g = &LatencyGroup{Key: key}
		m[key] = g
	}
	return g
}

// sortedGroups orders attribution rows: shards numerically by key,
// tenants by total attributed time descending (hottest first) with the
// key as tiebreak.
func sortedGroups(m map[string]*LatencyGroup, numeric bool) []LatencyGroup {
	out := make([]LatencyGroup, 0, len(m))
	for _, g := range m {
		out = append(out, *g)
	}
	sort.Slice(out, func(a, b int) bool {
		if numeric {
			ai, aerr := strconv.Atoi(out[a].Key)
			bi, berr := strconv.Atoi(out[b].Key)
			if aerr == nil && berr == nil && ai != bi {
				return ai < bi
			}
			return out[a].Key < out[b].Key
		}
		if out[a].TotalNS != out[b].TotalNS {
			return out[a].TotalNS > out[b].TotalNS
		}
		return out[a].Key < out[b].Key
	})
	return out
}

// stageDist computes exact nearest-rank percentiles over one stage's
// samples. The slice is sorted in place.
func stageDist(name string, vs []int64) StageDist {
	d := StageDist{Stage: name, Count: len(vs)}
	if len(vs) == 0 {
		return d
	}
	sort.Slice(vs, func(a, b int) bool { return vs[a] < vs[b] })
	for _, v := range vs {
		d.SumNS += v
	}
	d.P50NS = rank(vs, 0.50)
	d.P90NS = rank(vs, 0.90)
	d.P99NS = rank(vs, 0.99)
	d.MaxNS = vs[len(vs)-1]
	return d
}

// rank is the nearest-rank percentile of sorted samples.
func rank(sorted []int64, q float64) int64 {
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// ms renders nanoseconds as milliseconds for the text tables.
func ms(ns int64) float64 { return float64(ns) / 1e6 }

// pct renders part/whole as a percentage (0 when whole is 0).
func pct(part, whole int64) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}

// WriteText renders the latency report for humans: the stage
// percentile table, the per-shard and per-tenant attribution tables,
// and the worst-request drill-down.
func (rep *LatencyReport) WriteText(w io.Writer) {
	if rep.Requests == 0 {
		fmt.Fprintln(w, "no serve_request events in trace (server run with stages disabled, or trace predates latency attribution)")
		return
	}
	fmt.Fprintf(w, "requests %d", rep.Requests)
	if rep.Errors > 0 {
		fmt.Fprintf(w, "  errors %d", rep.Errors)
	}
	if rep.Inconsistent > 0 {
		fmt.Fprintf(w, "  INCONSISTENT %d (stage sums != end-to-end)", rep.Inconsistent)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-8s %10s %10s %10s %10s %7s\n", "stage", "p50 ms", "p90 ms", "p99 ms", "max ms", "share")
	for _, d := range rep.Stages {
		fmt.Fprintf(w, "%-8s %10.3f %10.3f %10.3f %10.3f %6.1f%%\n",
			d.Stage, ms(d.P50NS), ms(d.P90NS), ms(d.P99NS), ms(d.MaxNS), pct(d.SumNS, rep.Total.SumNS))
	}
	d := *rep.Total
	fmt.Fprintf(w, "%-8s %10.3f %10.3f %10.3f %10.3f %6.1f%%\n",
		d.Stage, ms(d.P50NS), ms(d.P90NS), ms(d.P99NS), ms(d.MaxNS), 100.0)

	writeGroups := func(label string, groups []LatencyGroup) {
		if len(groups) == 0 {
			return
		}
		fmt.Fprintf(w, "\n%-16s %8s %7s %7s %7s %7s %10s %10s\n",
			label, "reqs", "queue", "batch", "compute", "publish", "mean ms", "max ms")
		for _, g := range groups {
			mean := int64(0)
			if g.Requests > 0 {
				mean = g.TotalNS / int64(g.Requests)
			}
			fmt.Fprintf(w, "%-16s %8d %6.1f%% %6.1f%% %6.1f%% %6.1f%% %10.3f %10.3f",
				g.Key, g.Requests,
				pct(g.QueueNS, g.TotalNS), pct(g.BatchNS, g.TotalNS),
				pct(g.ComputeNS, g.TotalNS), pct(g.PublishNS, g.TotalNS),
				ms(mean), ms(g.MaxNS))
			if g.Errors > 0 {
				fmt.Fprintf(w, "  errors=%d", g.Errors)
			}
			fmt.Fprintln(w)
		}
	}
	writeGroups("shard", rep.Shards)
	writeGroups("tenant", rep.Tenants)

	if len(rep.Worst) > 0 {
		fmt.Fprintf(w, "\nworst requests:\n")
		for _, e := range rep.Worst {
			fmt.Fprintf(w, "  req=%-6d tenant=%-12s shard=%-2d op=%-6s n=%-5d total=%.3fms  queue=%.3f batch=%.3f compute=%.3f publish=%.3f",
				e.Req, e.Tenant, e.Shard, e.Name, e.N, ms(e.DurNS),
				ms(e.QueueNS), ms(e.BatchNS), ms(e.ComputeNS), ms(e.PublishNS))
			if e.Err != "" {
				fmt.Fprintf(w, "  err=%s", e.Err)
			}
			fmt.Fprintln(w)
		}
	}
}
