package analyze

import (
	"encoding/json"
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// BenchResult mirrors one record of the BENCH_*.json documents that
// scripts/benchjson emits.
type BenchResult struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// BenchReport mirrors a whole BENCH_*.json document.
type BenchReport struct {
	GOOS    string        `json:"goos,omitempty"`
	GOARCH  string        `json:"goarch,omitempty"`
	Package string        `json:"pkg,omitempty"`
	CPU     string        `json:"cpu,omitempty"`
	Results []BenchResult `json:"results"`
}

// ReadBench parses a BENCH_*.json document.
func ReadBench(r io.Reader) (*BenchReport, error) {
	var rep BenchReport
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return nil, fmt.Errorf("analyze: bench json: %w", err)
	}
	if len(rep.Results) == 0 {
		return nil, fmt.Errorf("analyze: bench json: no results")
	}
	return &rep, nil
}

// BenchDelta compares one benchmark across a baseline and a fresh run.
// Names are matched after stripping the trailing -N GOMAXPROCS suffix
// go test appends, so baselines recorded at different core counts still
// line up.
type BenchDelta struct {
	Name    string  `json:"name"`
	BaseNS  float64 `json:"base_ns"`
	FreshNS float64 `json:"fresh_ns"`
	// Ratio is FreshNS / BaseNS: 1.0 is unchanged, above 1 slower.
	Ratio float64 `json:"ratio"`
}

// BenchCheck is the outcome of comparing a fresh bench report against a
// committed baseline.
type BenchCheck struct {
	Deltas []BenchDelta `json:"deltas"`
	// Missing lists baseline benchmarks absent from the fresh run;
	// Added lists fresh benchmarks with no baseline.
	Missing []string `json:"missing,omitempty"`
	Added   []string `json:"added,omitempty"`
	// MedianRatio is the median of the per-benchmark ratios — the CI
	// regression gate's statistic, robust to one noisy benchmark.
	MedianRatio float64 `json:"median_ratio"`
}

// CompareBench matches benchmarks by name and computes per-benchmark
// and median slowdown ratios.
func CompareBench(base, fresh *BenchReport) *BenchCheck {
	freshBy := map[string]BenchResult{}
	for _, r := range fresh.Results {
		freshBy[trimProcs(r.Name)] = r
	}
	seen := map[string]bool{}
	check := &BenchCheck{}
	for _, b := range base.Results {
		name := trimProcs(b.Name)
		f, ok := freshBy[name]
		if !ok {
			check.Missing = append(check.Missing, name)
			continue
		}
		seen[name] = true
		d := BenchDelta{Name: name, BaseNS: b.NsPerOp, FreshNS: f.NsPerOp}
		if b.NsPerOp > 0 {
			d.Ratio = f.NsPerOp / b.NsPerOp
		}
		check.Deltas = append(check.Deltas, d)
	}
	for _, r := range fresh.Results {
		if name := trimProcs(r.Name); !seen[name] {
			check.Added = append(check.Added, name)
		}
	}
	sort.Strings(check.Added)
	ratios := make([]float64, 0, len(check.Deltas))
	for _, d := range check.Deltas {
		if d.Ratio > 0 {
			ratios = append(ratios, d.Ratio)
		}
	}
	check.MedianRatio = median(ratios)
	return check
}

// Regressed reports whether the fresh run's median slowdown exceeds the
// tolerance (e.g. 0.25 fails on a >25% median regression), or whether
// benchmarks disappeared — a silently shrunk suite must not pass the
// gate.
func (c *BenchCheck) Regressed(tolerance float64) bool {
	if len(c.Missing) > 0 || len(c.Deltas) == 0 {
		return true
	}
	return c.MedianRatio > 1+tolerance
}

// AnyRegressed reports whether any single benchmark exceeds the
// tolerance — a stricter gate for low-noise suites.
func (c *BenchCheck) AnyRegressed(tolerance float64) bool {
	if c.Regressed(tolerance) {
		return true
	}
	for _, d := range c.Deltas {
		if d.Ratio > 1+tolerance {
			return true
		}
	}
	return false
}

// WriteText renders the comparison for humans.
func (c *BenchCheck) WriteText(w io.Writer, tolerance float64) {
	for _, d := range c.Deltas {
		marker := "  "
		if d.Ratio > 1+tolerance {
			marker = "!!"
		}
		fmt.Fprintf(w, "%s %-48s %12.0f -> %12.0f ns/op  (x%.3f)\n",
			marker, d.Name, d.BaseNS, d.FreshNS, d.Ratio)
	}
	for _, name := range c.Missing {
		fmt.Fprintf(w, "!! %-48s missing from fresh run\n", name)
	}
	for _, name := range c.Added {
		fmt.Fprintf(w, "+  %-48s new (no baseline)\n", name)
	}
	fmt.Fprintf(w, "median ratio x%.3f (tolerance x%.3f)\n", c.MedianRatio, 1+tolerance)
}

// OverheadPair couples a <key>=off benchmark with its <key>=on
// counterpart from one BENCH_overhead.json document (fabric=off/on for
// the cost counter fabric, stages=off/on for request-latency
// attribution). Ratio is on/off: 1.0 means the instrumented leg is
// free, 1.05 is the acceptance budget.
type OverheadPair struct {
	Name  string  `json:"name"` // pair name with the <key>=... leg stripped
	OffNS float64 `json:"off_ns"`
	OnNS  float64 `json:"on_ns"`
	Ratio float64 `json:"ratio"`
}

// offLeg matches the first <key>=off component of a benchmark name —
// the sub-benchmark naming convention every overhead pair follows
// (BenchmarkOverhead's fabric=off/on, BenchmarkServeStages'
// stages=off/on).
var offLeg = regexp.MustCompile(`([A-Za-z_][A-Za-z0-9_]*)=off`)

// OverheadPairs extracts the <key>=off / <key>=on benchmark pairs from
// an overhead document. Results without a counterpart are skipped;
// pairs are returned in the document's off-leg order.
func OverheadPairs(rep *BenchReport) []OverheadPair {
	byName := map[string]BenchResult{}
	for _, r := range rep.Results {
		byName[trimProcs(r.Name)] = r
	}
	var pairs []OverheadPair
	for _, off := range rep.Results {
		name := trimProcs(off.Name)
		m := offLeg.FindStringSubmatch(name)
		if m == nil {
			continue
		}
		on, ok := byName[strings.Replace(name, m[0], m[1]+"=on", 1)]
		if !ok || off.NsPerOp <= 0 {
			continue
		}
		stripped := strings.Replace(name, "/"+m[0], "", 1)
		if stripped == name {
			stripped = strings.Replace(name, m[0], "", 1)
		}
		pairs = append(pairs, OverheadPair{
			Name:  stripped,
			OffNS: off.NsPerOp,
			OnNS:  on.NsPerOp,
			Ratio: on.NsPerOp / off.NsPerOp,
		})
	}
	return pairs
}

// WorkerPoint is one worker count's measurement within a scaling
// family.
type WorkerPoint struct {
	Workers int     `json:"workers"`
	NsPerOp float64 `json:"ns_per_op"`
}

// WorkerScaling groups the /w=N legs of one benchmark family — the
// name with the /w=N component removed — ascending by worker count.
// N is the problem size parsed from the family's /n=N component
// (0 when the name carries none).
type WorkerScaling struct {
	Name   string        `json:"name"`
	N      int           `json:"n"`
	Points []WorkerPoint `json:"points"`
}

var (
	workerLeg = regexp.MustCompile(`/w=(\d+)(/|$)`)
	sizeLeg   = regexp.MustCompile(`/n=(\d+)(/|$)`)
)

// WorkerScalings extracts the worker-scaling families of a bench
// document: results whose names carry a /w=N sub-benchmark leg
// (BenchmarkParallel / BenchmarkBitset naming), grouped by the rest of
// the name. Families are returned in first-appearance order, their
// points ascending by worker count.
func WorkerScalings(rep *BenchReport) []WorkerScaling {
	byName := map[string]int{}
	var fams []WorkerScaling
	for _, r := range rep.Results {
		name := trimProcs(r.Name)
		m := workerLeg.FindStringSubmatch(name)
		if m == nil {
			continue
		}
		w, _ := strconv.Atoi(m[1])
		fam := strings.Replace(name, "/w="+m[1], "", 1)
		i, ok := byName[fam]
		if !ok {
			n := 0
			if sm := sizeLeg.FindStringSubmatch(fam); sm != nil {
				n, _ = strconv.Atoi(sm[1])
			}
			i = len(fams)
			byName[fam] = i
			fams = append(fams, WorkerScaling{Name: fam, N: n})
		}
		fams[i].Points = append(fams[i].Points, WorkerPoint{Workers: w, NsPerOp: r.NsPerOp})
	}
	for i := range fams {
		sort.Slice(fams[i].Points, func(a, b int) bool {
			return fams[i].Points[a].Workers < fams[i].Points[b].Workers
		})
	}
	return fams
}

// ScalingViolations enforces the worker-scaling contract on the
// families WorkerScalings extracted: at problem sizes n >= minN, the
// highest worker count's ns/op must not exceed the lowest's by more
// than the tolerance fraction. A tiled engine whose extra workers make
// it slower at scale is the regression this gate exists to catch (the
// historical failure mode was per-run goroutine spawning drowning the
// kernel). Families below minN or with fewer than two worker counts
// are skipped. Returns one human-readable diagnostic per violation.
func ScalingViolations(fams []WorkerScaling, minN int, tol float64) []string {
	var out []string
	for _, f := range fams {
		if f.N < minN || len(f.Points) < 2 {
			continue
		}
		lo, hi := f.Points[0], f.Points[len(f.Points)-1]
		if lo.NsPerOp <= 0 {
			continue
		}
		if ratio := hi.NsPerOp / lo.NsPerOp; ratio > 1+tol {
			out = append(out, fmt.Sprintf(
				"%s: w=%d is x%.3f of w=%d (%.0f -> %.0f ns/op), beyond +%.0f%% — workers must not cost at n>=%d",
				f.Name, hi.Workers, ratio, lo.Workers, lo.NsPerOp, hi.NsPerOp, tol*100, minN))
		}
	}
	return out
}

// trimProcs strips the "-N" GOMAXPROCS suffix from a benchmark name.
func trimProcs(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	for _, c := range name[i+1:] {
		if c < '0' || c > '9' {
			return name
		}
	}
	if i+1 == len(name) {
		return name
	}
	return name[:i]
}

// median returns the median of vs (0 when empty).
func median(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	s := append([]float64(nil), vs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}
