package analyze

import (
	"fmt"
	"io"
	"sort"

	"ocpmesh/internal/obs"
)

// ConvergePoint is one cell of the rounds-vs-d(B) scatter: Count runs
// of a phase converged in Rounds rounds on a configuration whose
// largest faulty block had diameter Diameter.
type ConvergePoint struct {
	Diameter int `json:"diameter"`
	Rounds   int `json:"rounds"`
	Count    int `json:"count"`
}

// ConvergePhaseStat aggregates the costs events of one (phase, engine)
// pair: how often the paper's rounds <= max d(B) bound held, the worst
// ratio, and the cost totals.
type ConvergePhaseStat struct {
	Phase  string `json:"phase"`
	Engine string `json:"engine,omitempty"`
	// Runs counts costs events; WithinBound those with
	// rounds <= max d(B), Exceeds the rest.
	Runs        int `json:"runs"`
	WithinBound int `json:"within_bound"`
	Exceeds     int `json:"exceeds,omitempty"`
	// MaxRatio is the worst rounds / max d(B) over runs with d(B) > 0;
	// at the paper's fault densities it stays at or below 1.
	MaxRatio float64 `json:"max_ratio"`
	// Totals across runs.
	Rounds int64 `json:"rounds"`
	Flips  int64 `json:"flips"`
	Msgs   int64 `json:"msgs"`
	Words  int64 `json:"words,omitempty"`
	// Scatter is the deduplicated (d(B), rounds) point cloud.
	Scatter []ConvergePoint `json:"scatter,omitempty"`
}

// ConvergeMsgPoint is one fault-count bucket of the messages-vs-fault-
// density curve, averaged over the runs that hit the bucket.
type ConvergeMsgPoint struct {
	Faults   int     `json:"faults"`
	Runs     int     `json:"runs"`
	MeanMsgs float64 `json:"mean_msgs"`
}

// ConvergeBlockTail is the per-block convergence-round distribution of
// one phase, from block_converge events: each observation is the last
// round any node of one faulty block changed.
type ConvergeBlockTail struct {
	Phase  string `json:"phase"`
	Blocks int    `json:"blocks"`
	// WithinBound counts blocks converging within their own d(B).
	WithinBound int `json:"within_bound"`
	P50         int `json:"p50"`
	P90         int `json:"p90"`
	P99         int `json:"p99"`
	Max         int `json:"max"`
}

// ConvergeViolation aggregates invariant_violation events per
// (monitor, phase) pair.
type ConvergeViolation struct {
	Monitor string `json:"monitor"`
	Phase   string `json:"phase,omitempty"`
	Count   int    `json:"count"`
	// Example is the detail of the first occurrence.
	Example string `json:"example,omitempty"`
}

// ConvergeReport is the offline view of the convergence observatory: it
// is assembled purely from the costs / block_converge /
// invariant_violation events a run with an attached costs.Fabric wrote.
type ConvergeReport struct {
	// CostsEvents is the number of costs events consumed; zero means the
	// trace was recorded without a counter fabric.
	CostsEvents int                 `json:"costs_events"`
	Phases      []ConvergePhaseStat `json:"phases,omitempty"`
	Msgs        []ConvergeMsgPoint  `json:"msgs_by_faults,omitempty"`
	Blocks      []ConvergeBlockTail `json:"blocks,omitempty"`
	Violations  []ConvergeViolation `json:"violations,omitempty"`
}

// ViolationCount is the total number of invariant violations in the
// trace — the converge gate's exit statistic.
func (r *ConvergeReport) ViolationCount() int {
	n := 0
	for _, v := range r.Violations {
		n += v.Count
	}
	return n
}

// Converge folds a trace's observatory events into a ConvergeReport.
func Converge(events []obs.Event) *ConvergeReport {
	rep := &ConvergeReport{}
	phases := map[string]*ConvergePhaseStat{}
	scatter := map[string]map[[2]int]int{}
	msgsByFaults := map[int]*ConvergeMsgPoint{}
	blockRounds := map[string][]int{}
	blockWithin := map[string]int{}
	violations := map[string]*ConvergeViolation{}

	for _, e := range events {
		switch e.Type {
		case obs.ECosts:
			rep.CostsEvents++
			key := e.Phase + "\x00" + e.Engine
			ps, ok := phases[key]
			if !ok {
				ps = &ConvergePhaseStat{Phase: e.Phase, Engine: e.Engine}
				phases[key] = ps
				scatter[key] = map[[2]int]int{}
			}
			ps.Runs++
			if e.Rounds <= e.Diameter {
				ps.WithinBound++
			} else {
				ps.Exceeds++
			}
			if e.Diameter > 0 {
				if ratio := float64(e.Rounds) / float64(e.Diameter); ratio > ps.MaxRatio {
					ps.MaxRatio = ratio
				}
			}
			ps.Rounds += int64(e.Rounds)
			ps.Flips += int64(e.Changed)
			ps.Msgs += int64(e.Msgs)
			ps.Words += e.Words
			scatter[key][[2]int{e.Diameter, e.Rounds}]++

			mp, ok := msgsByFaults[e.N]
			if !ok {
				mp = &ConvergeMsgPoint{Faults: e.N}
				msgsByFaults[e.N] = mp
			}
			// Running mean, numerically fine at trace scale.
			mp.MeanMsgs = (mp.MeanMsgs*float64(mp.Runs) + float64(e.Msgs)) / float64(mp.Runs+1)
			mp.Runs++
		case obs.EBlockConverge:
			blockRounds[e.Phase] = append(blockRounds[e.Phase], e.Rounds)
			if e.Rounds <= e.Diameter {
				blockWithin[e.Phase]++
			}
		case obs.EInvariantViolation:
			key := e.Name + "\x00" + e.Phase
			v, ok := violations[key]
			if !ok {
				v = &ConvergeViolation{Monitor: e.Name, Phase: e.Phase, Example: e.Err}
				violations[key] = v
			}
			v.Count++
		}
	}

	for _, key := range sortedKeys(phases) {
		ps := phases[key]
		for pt, count := range scatter[key] {
			ps.Scatter = append(ps.Scatter, ConvergePoint{Diameter: pt[0], Rounds: pt[1], Count: count})
		}
		sort.Slice(ps.Scatter, func(i, j int) bool {
			a, b := ps.Scatter[i], ps.Scatter[j]
			if a.Diameter != b.Diameter {
				return a.Diameter < b.Diameter
			}
			return a.Rounds < b.Rounds
		})
		rep.Phases = append(rep.Phases, *ps)
	}
	for _, f := range sortedKeys(msgsByFaults) {
		rep.Msgs = append(rep.Msgs, *msgsByFaults[f])
	}
	for _, phase := range sortedKeys(blockRounds) {
		rounds := blockRounds[phase]
		sort.Ints(rounds)
		rep.Blocks = append(rep.Blocks, ConvergeBlockTail{
			Phase: phase, Blocks: len(rounds), WithinBound: blockWithin[phase],
			P50: percentileInt(rounds, 50), P90: percentileInt(rounds, 90),
			P99: percentileInt(rounds, 99), Max: rounds[len(rounds)-1],
		})
	}
	for _, key := range sortedKeys(violations) {
		rep.Violations = append(rep.Violations, *violations[key])
	}
	return rep
}

// sortedKeys returns m's keys in sorted order for any ordered key type.
func sortedKeys[K interface {
	~int | ~string
}, V any](m map[K]V) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// percentileInt is the nearest-rank percentile of a sorted slice.
func percentileInt(sorted []int, p int) int {
	if len(sorted) == 0 {
		return 0
	}
	idx := (len(sorted)*p + 99) / 100
	if idx < 1 {
		idx = 1
	}
	if idx > len(sorted) {
		idx = len(sorted)
	}
	return sorted[idx-1]
}

// WriteText renders the report for humans: per-phase bound statistics
// with an ASCII rounds-vs-d(B) scatter, the messages-vs-fault-density
// curve, per-block convergence tails, and any invariant violations.
func (r *ConvergeReport) WriteText(w io.Writer) {
	if r.CostsEvents == 0 {
		fmt.Fprintln(w, "no costs events: trace was recorded without a counter fabric (see TRACE.md)")
		return
	}
	for _, ps := range r.Phases {
		engine := ps.Engine
		if engine == "" {
			engine = "?"
		}
		fmt.Fprintf(w, "phase   %-8s engine=%-10s runs=%d within-bound=%d/%d max-ratio=%.2f flips=%d msgs=%d",
			ps.Phase, engine, ps.Runs, ps.WithinBound, ps.Runs, ps.MaxRatio, ps.Flips, ps.Msgs)
		if ps.Words > 0 {
			fmt.Fprintf(w, " words=%d", ps.Words)
		}
		fmt.Fprintln(w)
		writeScatter(w, ps.Scatter)
	}
	if len(r.Msgs) > 1 {
		fmt.Fprintln(w, "messages vs faults:")
		for _, mp := range r.Msgs {
			fmt.Fprintf(w, "  f=%-5d runs=%-4d mean msgs=%.0f\n", mp.Faults, mp.Runs, mp.MeanMsgs)
		}
	}
	for _, bt := range r.Blocks {
		fmt.Fprintf(w, "blocks  %-8s n=%d within-own-d(B)=%d p50=%d p90=%d p99=%d max=%d\n",
			bt.Phase, bt.Blocks, bt.WithinBound, bt.P50, bt.P90, bt.P99, bt.Max)
	}
	if len(r.Violations) == 0 {
		fmt.Fprintln(w, "invariants ok: no violations")
		return
	}
	for _, v := range r.Violations {
		fmt.Fprintf(w, "VIOLATION %s[%s] x%d: %s\n", v.Monitor, v.Phase, v.Count, v.Example)
	}
}

// writeScatter draws a small rounds-vs-d(B) character grid: columns are
// d(B), rows rounds (top = most), cells the run count (digit, '+' past
// nine). Cells above the rounds = d(B) diagonal — bound exceedances —
// are marked '!'.
func writeScatter(w io.Writer, pts []ConvergePoint) {
	if len(pts) == 0 {
		return
	}
	maxD, maxR := 0, 0
	for _, p := range pts {
		if p.Diameter > maxD {
			maxD = p.Diameter
		}
		if p.Rounds > maxR {
			maxR = p.Rounds
		}
	}
	const gridW, gridH = 40, 10
	// Bin sizes of at least 1 keep small traces unbinned.
	binD, binR := maxD/gridW+1, maxR/gridH+1
	cols, rows := maxD/binD+1, maxR/binR+1
	counts := make([][]int, rows)
	exceeds := make([][]bool, rows)
	for i := range counts {
		counts[i] = make([]int, cols)
		exceeds[i] = make([]bool, cols)
	}
	for _, p := range pts {
		r, c := p.Rounds/binR, p.Diameter/binD
		counts[r][c] += p.Count
		if p.Rounds > p.Diameter {
			exceeds[r][c] = true
		}
	}
	for r := rows - 1; r >= 0; r-- {
		fmt.Fprintf(w, "  %4d |", r*binR)
		for c := 0; c < cols; c++ {
			switch n := counts[r][c]; {
			case n == 0:
				fmt.Fprint(w, " ")
			case exceeds[r][c]:
				fmt.Fprint(w, "!")
			case n > 9:
				fmt.Fprint(w, "+")
			default:
				fmt.Fprintf(w, "%d", n)
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "  rnds +%s\n", repeat('-', cols))
	fmt.Fprintf(w, "        0%*s\n", cols-1, fmt.Sprintf("d(B)=%d", maxD))
}

func repeat(ch byte, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = ch
	}
	return string(b)
}
