// Race and batching tests: many goroutines hammering one tenant with
// deltas, snapshot reads, and an event subscriber, under -race in CI.
// The properties pinned here are exactly the serving concurrency
// contract: batching/coalescing never drops or reorders a delta's
// effect, replies never claim a sequence the published snapshot has not
// reached, and readers always observe internally consistent snapshots.
package serve_test

import (
	"errors"
	"sync"
	"testing"
	"time"

	"ocpmesh/internal/core"
	"ocpmesh/internal/grid"
	"ocpmesh/internal/serve"
)

// TestServeConcurrentHammer runs writer goroutines on disjoint point
// sets against one tenant (so every interleaving has the same final
// fault set), concurrent snapshot readers, and an event-stream
// subscriber, then pins the final served state against a fresh
// formation.
func TestServeConcurrentHammer(t *testing.T) {
	const (
		writers = 6
		rounds  = 15 // odd: every writer's point ends up faulty
		side    = 32
	)
	svc := serve.New(serve.Options{Shards: 2})
	defer svc.Close()

	if _, _, err := svc.Create("hot", serve.TenantConfig{Width: side, Height: side, Engine: "bitset"}, nil); err != nil {
		t.Fatal(err)
	}
	// A second tenant shares the service (and possibly the shard) so the
	// hammer also exercises cross-tenant batching.
	if _, _, err := svc.Create("cold", serve.TenantConfig{Width: 8, Height: 8}, []grid.Point{grid.Pt(1, 1)}); err != nil {
		t.Fatal(err)
	}
	hot, err := svc.Tenant("hot")
	if err != nil {
		t.Fatal(err)
	}

	// Subscriber: drains the event stream for the duration. Drops are
	// legal under load; receiving on a closed channel after Close is the
	// termination signal.
	subID, events := hot.Subscribe()
	var subWG sync.WaitGroup
	var received int
	subWG.Add(1)
	go func() {
		defer subWG.Done()
		for e := range events {
			received++
			if e.Tenant != "hot" || e.Seq == 0 {
				t.Errorf("bad event %+v", e)
				return
			}
		}
	}()

	// Readers: snapshots must always be internally consistent — every
	// fault unsafe and not enabled, sequence never moving backwards.
	stopReaders := make(chan struct{})
	var readerWG sync.WaitGroup
	for r := 0; r < 2; r++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			var lastSeq uint64
			for {
				select {
				case <-stopReaders:
					return
				default:
				}
				snap := hot.Snapshot()
				if snap.Seq < lastSeq {
					t.Errorf("snapshot seq went backwards: %d after %d", snap.Seq, lastSeq)
					return
				}
				lastSeq = snap.Seq
				ok := true
				snap.Res.Faults.Each(func(p grid.Point) {
					i := snap.Res.Topo.Index(p)
					if !snap.Res.Unsafe[i] || snap.Res.Enabled[i] {
						ok = false
					}
				})
				if !ok {
					t.Error("torn snapshot: a faulty node is not unsafe/disabled")
					return
				}
			}
		}()
	}

	// Writers: each owns one point and toggles it add/remove an odd
	// number of times. Apply's reply sequence must be monotone per
	// writer, the published snapshot must have caught up to it, and —
	// since nobody else touches this point — the snapshot at or after
	// the reply must show the writer's latest effect. That is the
	// no-drop/no-reorder property batching has to preserve.
	var writerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			p := grid.Pt(2+3*w, 7)
			var lastSeq uint64
			for i := 0; i < rounds; i++ {
				op := "add"
				if i%2 == 1 {
					op = "remove"
				}
				resp, err := svc.Apply("hot", op, []grid.Point{p})
				if err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
				if resp.Seq <= lastSeq {
					t.Errorf("writer %d: reply seq %d after %d; replies must advance", w, resp.Seq, lastSeq)
					return
				}
				lastSeq = resp.Seq
				snap := hot.Snapshot()
				if snap.Seq < resp.Seq {
					t.Errorf("writer %d: snapshot seq %d behind reply seq %d", w, snap.Seq, resp.Seq)
					return
				}
				// Nobody else touches p and this writer has nothing in
				// flight, so any snapshot at or past the reply must show
				// the delta's effect — coalescing may not drop it.
				if snap.Res.Faults.Has(p) != (op == "add") {
					t.Errorf("writer %d: delta %d (%s %v) dropped at seq %d", w, i, op, p, snap.Seq)
					return
				}
			}
		}(w)
	}
	writerWG.Wait()
	close(stopReaders)
	readerWG.Wait()

	// All writer effects landed: the sequence counts every request, the
	// fault set is exactly the writers' final points, and the whole
	// state matches a fresh formation.
	snap := hot.Snapshot()
	if want := uint64(writers * rounds); snap.Seq != want {
		t.Fatalf("final seq %d, want %d (every request counted exactly once)", snap.Seq, want)
	}
	wantFaults := grid.NewPointSet()
	for w := 0; w < writers; w++ {
		wantFaults.Add(grid.Pt(2+3*w, 7))
	}
	if !snap.Res.Faults.Equal(wantFaults) {
		t.Fatalf("final fault set %v, want %v", snap.Res.Faults.Points(), wantFaults.Points())
	}
	assertServedMatchesFresh(t, "hot after hammer", hot)

	// The cold tenant was untouched throughout.
	cold, err := svc.Tenant("cold")
	if err != nil {
		t.Fatal(err)
	}
	if cold.Snapshot().Seq != 0 || cold.Snapshot().Res.Faults.Len() != 1 {
		t.Fatal("cold tenant state changed under the hammer")
	}

	// Tear down: Close closes the event stream; everything the
	// subscriber saw plus its drops accounts for every applied delta.
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	subWG.Wait()
	if got := int64(received) + hot.Dropped(); got != int64(writers*rounds) {
		t.Fatalf("subscriber saw %d + dropped %d = %d events, want %d", received, hot.Dropped(), got, writers*rounds)
	}
	_ = subID
}

// TestServeBatchCoalescing pins that concurrent same-op deltas coalesce
// into shared engine passes without losing any request's effect: a
// burst enqueued against a stalled shard must come back with
// Batched > 1 for most requests, one reply per request, and a final
// state equal to applying every delta.
func TestServeBatchCoalescing(t *testing.T) {
	svc := serve.New(serve.Options{Shards: 1, BatchWindow: 2 * time.Millisecond})
	defer svc.Close()
	if _, _, err := svc.Create("b", serve.TenantConfig{Width: 32, Height: 32, Engine: "bitset"}, nil); err != nil {
		t.Fatal(err)
	}

	const burst = 24
	var wg sync.WaitGroup
	responses := make([]serve.Response, burst)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := svc.Apply("b", "add", []grid.Point{grid.Pt(i, i)})
			if err != nil {
				t.Errorf("burst %d: %v", i, err)
				return
			}
			responses[i] = resp
		}(i)
	}
	wg.Wait()

	coalesced := 0
	for i, resp := range responses {
		if resp.Batched > 1 {
			coalesced++
		}
		if resp.Seq == 0 {
			t.Fatalf("burst %d: zero reply seq", i)
		}
	}
	// With a single shard and a 2ms window, at least some of the burst
	// must have shared a batch. (All 24 in one batch is likely but not
	// guaranteed; zero coalescing means batching is broken.)
	if coalesced == 0 {
		t.Fatal("no request of a concurrent same-tenant burst was coalesced")
	}

	tn, err := svc.Tenant("b")
	if err != nil {
		t.Fatal(err)
	}
	snap := tn.Snapshot()
	if snap.Seq != burst {
		t.Fatalf("final seq %d, want %d", snap.Seq, burst)
	}
	for i := 0; i < burst; i++ {
		if !snap.Res.Faults.Has(grid.Pt(i, i)) {
			t.Fatalf("delta %d lost in coalescing", i)
		}
	}
	assertServedMatchesFresh(t, "after burst", tn)
	t.Logf("coalesced %d/%d requests (max batch %d)", coalesced, burst, maxBatched(responses))
}

func maxBatched(rs []serve.Response) int {
	max := 0
	for _, r := range rs {
		if r.Batched > max {
			max = r.Batched
		}
	}
	return max
}

// TestServeDeleteUnderLoad pins teardown ordering: deltas racing a
// Delete either complete with their effect published or fail with
// ErrTenantNotFound — never a hang, never a half-applied state.
func TestServeDeleteUnderLoad(t *testing.T) {
	for trial := 0; trial < 5; trial++ {
		svc := serve.New(serve.Options{Shards: 1})
		if _, _, err := svc.Create("d", serve.TenantConfig{Width: 16, Height: 16}, nil); err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < 10; i++ {
					_, err := svc.Apply("d", "add", []grid.Point{grid.Pt(w, i)})
					if err != nil {
						// The only acceptable failure is the tenant
						// being gone (or the service closing later).
						if !errors.Is(err, serve.ErrTenantNotFound) && !errors.Is(err, serve.ErrClosed) {
							t.Errorf("unexpected apply error: %v", err)
						}
						return
					}
				}
			}(w)
		}
		if err := svc.Delete("d"); err != nil {
			t.Fatal(err)
		}
		wg.Wait()
		if _, err := svc.Tenant("d"); err == nil {
			t.Fatal("tenant still resolvable after delete")
		}
		if err := svc.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestServeCloseDrains pins graceful shutdown: every request enqueued
// before Close answers, and the engines' replies stay correct.
func TestServeCloseDrains(t *testing.T) {
	svc := serve.New(serve.Options{Shards: 1, BatchWindow: 1_000_000})
	if _, _, err := svc.Create("drain", serve.TenantConfig{Width: 16, Height: 16}, nil); err != nil {
		t.Fatal(err)
	}
	const n = 16
	var wg sync.WaitGroup
	errFmt := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := svc.Apply("drain", "add", []grid.Point{grid.Pt(i, 0)})
			errFmt[i] = err
		}(i)
	}
	// Close while the burst is in flight: requests that made it into a
	// queue must be applied and answered; stragglers get ErrClosed.
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for i, err := range errFmt {
		if err != nil && !errors.Is(err, serve.ErrClosed) {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	// Post-close requests are refused outright.
	if _, err := svc.Apply("drain", "add", []grid.Point{grid.Pt(0, 0)}); err == nil {
		t.Fatal("apply after Close succeeded")
	}
	if _, _, err := svc.Create("late", serve.TenantConfig{Width: 4, Height: 4}, nil); err == nil {
		t.Fatal("create after Close succeeded")
	}
}

// TestServeResponseSeqCoversEffect pins the reply contract under
// coalescing precisely: for every response, the snapshot current at
// reply time includes the request's effect (its point in target state)
// unless a later own-request changed it — exercised here with distinct
// points per request so "later" never happens.
func TestServeResponseSeqCoversEffect(t *testing.T) {
	svc := serve.New(serve.Options{Shards: 1})
	defer svc.Close()
	if _, _, err := svc.Create("seq", serve.TenantConfig{Width: 64, Height: 4}, nil); err != nil {
		t.Fatal(err)
	}
	tn, err := svc.Tenant("seq")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p := grid.Pt(i*2, 1)
			resp, err := svc.Apply("seq", "add", []grid.Point{p})
			if err != nil {
				t.Errorf("apply %v: %v", p, err)
				return
			}
			snap := tn.Snapshot()
			if snap.Seq < resp.Seq {
				t.Errorf("snapshot %d behind reply %d", snap.Seq, resp.Seq)
			}
			if !snap.Res.Faults.Has(p) {
				t.Errorf("effect of %v missing from snapshot at seq %d", p, snap.Seq)
			}
		}(i)
	}
	wg.Wait()
	// Cross-check against core: the service's final answer is the
	// library's answer.
	snap := tn.Snapshot()
	cfg, _ := tn.Config().CoreConfig()
	fresh, err := core.FormOn(cfg, snap.Res.Topo, snap.Res.Faults)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Res.Faults.Len() != fresh.Faults.Len() || len(snap.Res.Regions) != len(fresh.Regions) {
		t.Fatal("served state diverged from library formation")
	}
}
