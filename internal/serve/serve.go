// Package serve is the formation-as-a-service layer: a long-running
// multi-tenant service owning a pool of core.Sessions (one per
// tenant/mesh), built to take the repository from "library" to
// continuously served traffic. It exposes create/delete of tenant
// meshes, fault add/remove deltas, region/label queries, route requests
// and a per-tenant event stream, layered on the observability side-car
// (internal/obs/serve) for metrics, liveness and trace tailing.
//
// Concurrency model — three rules carry all of it:
//
//   - Single writer per shard. Tenants are sharded across a fixed ring
//     of worker goroutines (FNV of the tenant id); all mutations of a
//     tenant's session — deltas, restore bookkeeping, teardown — run on
//     its shard's loop, so the session itself needs no locking.
//   - Batched deltas. A shard drains every queued request before
//     applying: concurrent deltas to the same mesh coalesce, and
//     consecutive same-op runs collapse into ONE bitset frontier pass
//     (one AddFaults/RemoveFaults call) while strictly preserving each
//     delta's order and effect. An optional batch window widens the
//     coalescing under open-loop load.
//   - Immutable snapshots. After each batch the shard publishes a fresh
//     core.Result behind an atomic pointer; queries and routes read the
//     snapshot and never touch the session, so readers always observe a
//     consistent formation (no torn labels mid-pass) at a known
//     sequence number.
//
// Tenant state serializes to a TenantSnapshot — the fault set plus both
// label planes packed 64 labels per word (grid.BitGrid) — and restores
// through core.RestoreSession without re-running the fixpoints. The
// serving differential tests pin served state byte-identical to a fresh
// core.Form on the same fault set, including across snapshot/restore
// round-trips.
package serve

import (
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ocpmesh/internal/core"
	"ocpmesh/internal/grid"
	"ocpmesh/internal/obs"
	"ocpmesh/internal/routeidx"
	"ocpmesh/internal/routing"
)

// Errors the service reports; the HTTP layer maps them onto status
// codes.
var (
	ErrClosed         = errors.New("serve: service closed")
	ErrTenantNotFound = errors.New("serve: tenant not found")
	ErrTenantExists   = errors.New("serve: tenant exists with different state")
	ErrTooLarge       = errors.New("serve: mesh exceeds the configured node limit")
	ErrBadDelta       = errors.New("serve: bad delta")
)

// Options parameterizes a Service. The zero value serves: GOMAXPROCS
// shards, no batch window (drain-only coalescing), a 4M-node mesh cap.
type Options struct {
	// Shards is the worker-pool ring size — the number of single-writer
	// loops tenants are hashed across (0 = GOMAXPROCS).
	Shards int
	// BatchWindow, when positive, is how long a shard keeps collecting
	// after the first delta of a batch before applying, widening
	// coalescing under open-loop load. Zero applies as soon as the queue
	// is drained (lowest latency, still coalesces bursts).
	BatchWindow time.Duration
	// QueueDepth is the per-shard request buffer (0 = 256).
	QueueDepth int
	// MaxMeshNodes caps Width*Height of a tenant mesh (0 = 1<<22).
	MaxMeshNodes int
	// SubscriberBuffer is the per-subscriber event buffer of tenant
	// event streams (0 = 64). A subscriber that falls behind loses
	// events — counted, never buffered unboundedly — rather than
	// stalling the shard loop.
	SubscriberBuffer int
	// Recorder, when non-nil, receives serve_* trace events and the
	// serve_* latency/batch metrics (P² quantiles via the registry).
	Recorder *obs.Recorder
	// DisableStages turns off per-request latency attribution: no stage
	// stamps are taken, no serve_request events or serve_stage_* metrics
	// are emitted, and delta responses omit the stage breakdown (clients
	// see the "stages" feature missing from the tenant status). It exists
	// as the baseline leg of the latency-overhead benchmark and for
	// callers that want the absolute minimum hot path.
	DisableStages bool
}

func (o Options) shards() int {
	if o.Shards > 0 {
		return o.Shards
	}
	return runtime.GOMAXPROCS(0)
}

func (o Options) queueDepth() int {
	if o.QueueDepth > 0 {
		return o.QueueDepth
	}
	return 256
}

func (o Options) maxNodes() int {
	if o.MaxMeshNodes > 0 {
		return o.MaxMeshNodes
	}
	return 1 << 22
}

func (o Options) subBuffer() int {
	if o.SubscriberBuffer > 0 {
		return o.SubscriberBuffer
	}
	return 64
}

// Event is one per-tenant formation event: exactly one is published to
// the tenant's subscribers per applied delta request (requests that
// coalesced into a shared engine pass carry the same delta statistics),
// mirrored as a serve_delta trace event per engine pass.
type Event struct {
	// Tenant is the tenant id, Seq the snapshot sequence the delta
	// produced (queries at or after Seq observe its effect).
	Tenant string `json:"tenant"`
	Seq    uint64 `json:"seq"`
	// Op, Points, Frontier, Rounds, Changed summarize the applied delta
	// (see incremental.Delta).
	Op       string `json:"op"`
	Points   int    `json:"points"`
	Frontier int    `json:"frontier,omitempty"`
	Rounds   int    `json:"rounds,omitempty"`
	Changed  int    `json:"changed,omitempty"`
	// Batched is how many queued requests the delta's batch coalesced
	// (1 = no coalescing happened).
	Batched int `json:"batched,omitempty"`
	// DurNS is the wall-clock time of the whole batch apply.
	DurNS int64 `json:"dur_ns,omitempty"`
}

// Snapshot is one published formation state: an immutable core.Result
// plus the delta sequence number it reflects. Readers share it; nothing
// reachable from it is ever mutated after publication.
type Snapshot struct {
	// Seq counts applied delta requests: 0 is the initial formation,
	// and the snapshot published after the batch containing request k
	// has Seq >= k.
	Seq uint64
	// Res is the formation result, interchangeable with a from-scratch
	// core.Form on the tenant's current fault set.
	Res *core.Result
	// Routes is the precompiled routing index over Res under the
	// regions fault model (internal/routeidx). Immutable like Res, and
	// rebuilt incrementally at publication: only regions whose label
	// sets changed across the batch are recompiled.
	Routes *routeidx.Index
}

// Tenant is one served mesh: a core.Session owned by a shard loop, the
// atomically published snapshot readers use, and the tenant's event
// subscribers.
type Tenant struct {
	id    string
	cfg   core.Config
	tcfg  TenantConfig
	svc   *Service
	shard *shard

	// session is owned by the shard loop after the tenant is published;
	// only Create/Restore touch it before that.
	session *core.Session

	snap atomic.Pointer[Snapshot]
	// seq is the count of applied delta requests; only the shard loop
	// writes it.
	seq uint64
	// deleted flips once the shard loop has torn the session down; ops
	// that raced past the registry lookup observe it and fail.
	deleted atomic.Bool

	subMu   sync.Mutex
	subs    map[int]chan Event
	subSeq  int
	dropped atomic.Int64
}

// ID returns the tenant id.
func (t *Tenant) ID() string { return t.id }

// Config returns the tenant's serving config (the JSON form it was
// created with).
func (t *Tenant) Config() TenantConfig { return t.tcfg }

// Snapshot returns the tenant's current published formation snapshot.
// It is immutable and stays valid across later deltas.
func (t *Tenant) Snapshot() *Snapshot { return t.snap.Load() }

// Dropped returns how many events slow subscribers of this tenant have
// missed.
func (t *Tenant) Dropped() int64 { return t.dropped.Load() }

// Subscribe registers an event-stream subscriber with the service's
// per-subscriber buffer. Events published while the buffer is full are
// dropped for this subscriber only (counted in Dropped), never
// buffered without bound. The channel closes on Unsubscribe and on
// tenant deletion.
func (t *Tenant) Subscribe() (int, <-chan Event) {
	ch := make(chan Event, t.svc.opts.subBuffer())
	t.subMu.Lock()
	defer t.subMu.Unlock()
	t.subSeq++
	id := t.subSeq
	if t.subs == nil {
		t.subs = make(map[int]chan Event)
	}
	t.subs[id] = ch
	return id, ch
}

// Unsubscribe removes a subscriber and closes its channel. Unknown ids
// are ignored.
func (t *Tenant) Unsubscribe(id int) {
	t.subMu.Lock()
	defer t.subMu.Unlock()
	if ch, ok := t.subs[id]; ok {
		close(ch)
		delete(t.subs, id)
	}
}

// publish fans one event out to the subscribers, dropping per-
// subscriber on full buffers rather than blocking the shard loop or
// buffering without bound. Called from the shard loop only.
func (t *Tenant) publish(e Event) {
	var dropped int64
	t.subMu.Lock()
	for _, ch := range t.subs {
		select {
		case ch <- e:
		default:
			dropped++
		}
	}
	t.subMu.Unlock()
	if dropped > 0 {
		t.dropped.Add(dropped)
		if rec := t.svc.opts.Recorder; rec != nil {
			rec.Counter("serve_sse_dropped").Add(dropped)
		}
	}
}

func (t *Tenant) closeSubs() {
	t.subMu.Lock()
	defer t.subMu.Unlock()
	for id, ch := range t.subs {
		close(ch)
		delete(t.subs, id)
	}
}

// request is one unit of shard-loop work.
type request struct {
	t *Tenant
	// op is opAdd/opRemove for deltas, opClose for teardown.
	op     string
	points []grid.Point
	reply  chan Response
	// id numbers delta requests service-wide; enq and deq are the
	// monotonic stage stamps taken at enqueue (Apply) and shard-loop
	// dequeue (collect). All three stay zero under DisableStages and on
	// close requests.
	id  int64
	enq time.Time
	deq time.Time
}

const (
	opAdd    = "add"
	opRemove = "remove"
	opClose  = "close"
)

// Response answers one applied delta request.
type Response struct {
	// Seq is the snapshot sequence that includes the request's effect.
	Seq uint64
	// Delta is the engine pass the request was part of; coalesced
	// requests of one run share it.
	Delta core.Delta
	// Batched is how many requests the tenant's batch carried.
	Batched int
	// Stages is the request's per-stage latency attribution (nil when
	// the service runs with DisableStages).
	Stages *StageBreakdown
	Err    error
}

// StageBreakdown decomposes one request's end-to-end latency into the
// serving pipeline's stages. The stages are derived from one chain of
// monotonic stamps (enqueue → dequeue → pass start → pass end → reply
// build), so they telescope: QueueNS+BatchNS+ComputeNS+PublishNS ==
// TotalNS exactly, for every request.
type StageBreakdown struct {
	// QueueNS is time spent in the shard queue (enqueue to dequeue).
	QueueNS int64 `json:"queue_ns"`
	// BatchNS is time from dequeue until the request's engine pass
	// started: batch-window sitting time plus earlier runs of the batch.
	BatchNS int64 `json:"batch_ns"`
	// ComputeNS is the AddFaults/RemoveFaults frontier pass the request
	// coalesced into (shared verbatim by every request of the run).
	ComputeNS int64 `json:"compute_ns"`
	// PublishNS is pass end to reply build: snapshot publish, event
	// fan-out, and any later runs of the same batch.
	PublishNS int64 `json:"publish_ns"`
	// TotalNS is the end-to-end latency as seen from the shard loop
	// (enqueue to reply build; client wire time comes on top).
	TotalNS int64 `json:"total_ns"`
}

// shard is one single-writer loop plus its queue.
type shard struct {
	// idx is the shard's 1-based ring position (1-based so it can ride
	// the omitempty Shard event field).
	idx  int
	ch   chan request
	stop chan struct{}
}

// stageMetrics caches the attribution metric handles at construction,
// so the per-request hot path observes through direct pointers and
// never takes the registry's name-lookup lock.
type stageMetrics struct {
	requests                            *obs.Counter
	queue, batch, compute, publish, tot *obs.Histogram
	shardDepth                          []*obs.Gauge   // queue backlog after each batch, per shard
	shardBusy                           []*obs.Counter // cumulative busy ns, per shard
}

func newStageMetrics(rec *obs.Recorder, shards int) *stageMetrics {
	m := &stageMetrics{
		requests: rec.Counter("serve_requests"),
		queue:    rec.Histogram("serve_stage_queue_ns", obs.NSBuckets),
		batch:    rec.Histogram("serve_stage_batch_ns", obs.NSBuckets),
		compute:  rec.Histogram("serve_stage_compute_ns", obs.NSBuckets),
		publish:  rec.Histogram("serve_stage_publish_ns", obs.NSBuckets),
		tot:      rec.Histogram("serve_stage_total_ns", obs.NSBuckets),
	}
	for i := 1; i <= shards; i++ {
		m.shardDepth = append(m.shardDepth, rec.Gauge(fmt.Sprintf("serve_shard_depth:%d", i)))
		m.shardBusy = append(m.shardBusy, rec.Counter(fmt.Sprintf("serve_shard_busy_ns:%d", i)))
	}
	return m
}

// Service is the multi-tenant formation service.
type Service struct {
	opts   Options
	shards []*shard
	// reqSeq numbers delta requests for serve_request attribution.
	reqSeq atomic.Int64
	// stages holds the cached attribution metric handles; nil when the
	// recorder is absent or DisableStages is set.
	stages *stageMetrics

	mu      sync.RWMutex
	tenants map[string]*Tenant
	closed  bool
	// inflight counts enqueues that hold a guarantee the shard loops
	// are still consuming; Close waits for them before stopping loops.
	inflight sync.WaitGroup
	loops    sync.WaitGroup
}

// New starts a service: its shard loops run until Close.
func New(opts Options) *Service {
	s := &Service{opts: opts, tenants: make(map[string]*Tenant)}
	n := opts.shards()
	if opts.Recorder != nil && !opts.DisableStages {
		s.stages = newStageMetrics(opts.Recorder, n)
	}
	s.shards = make([]*shard, n)
	for i := range s.shards {
		sh := &shard{idx: i + 1, ch: make(chan request, opts.queueDepth()), stop: make(chan struct{})}
		s.shards[i] = sh
		s.loops.Add(1)
		go func() {
			defer s.loops.Done()
			s.run(sh)
		}()
	}
	return s
}

// Close drains and stops the service: new work is refused, every
// queued request is applied and answered, every session is closed.
// Safe to call once.
func (s *Service) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	tenants := make([]*Tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		tenants = append(tenants, t)
	}
	s.tenants = make(map[string]*Tenant)
	s.mu.Unlock()

	// Wait out enqueues that won the race against the closed flag, then
	// stop the loops; each loop drains its queue before exiting, so
	// every in-flight delta still applies and answers.
	s.inflight.Wait()
	for _, t := range tenants {
		t.shard.ch <- request{t: t, op: opClose, reply: make(chan Response, 1)}
	}
	for _, sh := range s.shards {
		close(sh.stop)
	}
	s.loops.Wait()
	return nil
}

// shardFor hashes a tenant id onto the ring.
func (s *Service) shardFor(id string) *shard {
	h := fnv.New32a()
	_, _ = h.Write([]byte(id))
	return s.shards[int(h.Sum32())%len(s.shards)]
}

// Create registers a tenant and computes its initial formation
// synchronously (outside the registry lock, so serving of other
// tenants never stalls behind a large create). Creation is idempotent:
// re-creating an existing tenant with an identical config and current
// fault set returns the existing tenant (created=false); any
// difference is ErrTenantExists.
func (s *Service) Create(id string, tcfg TenantConfig, faults []grid.Point) (t *Tenant, created bool, err error) {
	if id == "" {
		return nil, false, fmt.Errorf("%w: empty tenant id", ErrBadDelta)
	}
	cfg, err := tcfg.CoreConfig()
	if err != nil {
		return nil, false, err
	}
	if cfg.Width*cfg.Height > s.opts.maxNodes() {
		return nil, false, fmt.Errorf("%w: %dx%d > %d nodes", ErrTooLarge, cfg.Width, cfg.Height, s.opts.maxNodes())
	}
	fs := grid.PointSetOf(faults...)
	for _, p := range faults {
		if p.X < 0 || p.X >= cfg.Width || p.Y < 0 || p.Y >= cfg.Height {
			return nil, false, fmt.Errorf("%w: fault %v outside %dx%d", ErrBadDelta, p, cfg.Width, cfg.Height)
		}
	}
	// sameAs reports whether an existing tenant makes this create a
	// no-op retry (identical config and fault set).
	sameAs := func(old *Tenant) (t *Tenant, created bool, err error) {
		if old.tcfg == tcfg && old.Snapshot().Res.Faults.Equal(fs) {
			return old, false, nil
		}
		return nil, false, fmt.Errorf("%w: %q", ErrTenantExists, id)
	}

	s.mu.RLock()
	closed := s.closed
	old := s.tenants[id]
	s.mu.RUnlock()
	if closed {
		return nil, false, ErrClosed
	}
	if old != nil {
		return sameAs(old)
	}

	session, err := core.NewSession(cfg, faults)
	if err != nil {
		return nil, false, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		session.Close()
		return nil, false, ErrClosed
	}
	if old := s.tenants[id]; old != nil {
		s.mu.Unlock()
		session.Close()
		return sameAs(old)
	}
	t = s.adopt(id, tcfg, cfg, session)
	s.mu.Unlock()
	return t, true, nil
}

// Restore registers a tenant from a serialized snapshot, adopting the
// packed label planes without re-running the formation. The tenant must
// not already exist.
func (s *Service) Restore(id string, snap *TenantSnapshot) (*Tenant, error) {
	if id == "" {
		id = snap.ID
	}
	if id == "" {
		return nil, fmt.Errorf("%w: empty tenant id", ErrBadDelta)
	}
	session, cfg, err := snap.RestoreSession(s.opts.maxNodes())
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		session.Close()
		return nil, ErrClosed
	}
	if _, ok := s.tenants[id]; ok {
		session.Close()
		return nil, fmt.Errorf("%w: %q", ErrTenantExists, id)
	}
	t := s.adopt(id, snap.Config, cfg, session)
	t.seq = snap.Seq
	res := session.Result()
	t.snap.Store(&Snapshot{Seq: snap.Seq, Res: res, Routes: s.buildRoutes(t.snap.Load(), res, id)})
	return t, nil
}

// buildRoutes compiles the routing index published with a snapshot,
// rebuilding incrementally from the previous snapshot's index when one
// exists (unchanged regions keep their compiled form).
func (s *Service) buildRoutes(prev *Snapshot, res *core.Result, tenant string) *routeidx.Index {
	if prev != nil && prev.Routes != nil {
		return prev.Routes.Rebuild(res)
	}
	return routeidx.Compile(res, routing.ModelRegions, routeidx.Options{Recorder: s.opts.Recorder, Tenant: tenant})
}

// adopt wires a freshly built session into the registry. Caller holds
// s.mu.
func (s *Service) adopt(id string, tcfg TenantConfig, cfg core.Config, session *core.Session) *Tenant {
	t := &Tenant{id: id, cfg: cfg, tcfg: tcfg, svc: s, shard: s.shardFor(id), session: session}
	res := session.Result()
	t.snap.Store(&Snapshot{Seq: 0, Res: res, Routes: s.buildRoutes(nil, res, id)})
	s.tenants[id] = t
	if rec := s.opts.Recorder; rec != nil {
		rec.Counter("serve_tenants_created").Inc()
		rec.Gauge("serve_tenants").Set(float64(len(s.tenants)))
	}
	return t
}

// Delete removes a tenant: it leaves the registry immediately (no new
// work can target it) and its session teardown is serialized behind
// any still-queued deltas on the shard loop.
func (s *Service) Delete(id string) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	t, ok := s.tenants[id]
	if ok {
		delete(s.tenants, id)
		if rec := s.opts.Recorder; rec != nil {
			rec.Gauge("serve_tenants").Set(float64(len(s.tenants)))
		}
	}
	if ok {
		s.inflight.Add(1)
	}
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrTenantNotFound, id)
	}
	defer s.inflight.Done()
	reply := make(chan Response, 1)
	t.shard.ch <- request{t: t, op: opClose, reply: reply}
	<-reply
	return nil
}

// Tenant looks a tenant up.
func (s *Service) Tenant(id string) (*Tenant, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tenants[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrTenantNotFound, id)
	}
	return t, nil
}

// Tenants returns the live tenant ids (unordered).
func (s *Service) Tenants() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.tenants))
	for id := range s.tenants {
		out = append(out, id)
	}
	return out
}

// Apply submits one fault delta (op "add" or "remove") and blocks until
// the batch containing it has been applied and its snapshot published.
// The returned response carries the snapshot sequence that includes the
// delta's effect. Points are validated against the tenant's mesh before
// anything is enqueued.
func (s *Service) Apply(id, op string, points []grid.Point) (Response, error) {
	if op != opAdd && op != opRemove {
		return Response{}, fmt.Errorf("%w: op %q (want add or remove)", ErrBadDelta, op)
	}
	if len(points) == 0 {
		return Response{}, fmt.Errorf("%w: no points", ErrBadDelta)
	}
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return Response{}, ErrClosed
	}
	t, ok := s.tenants[id]
	if !ok {
		s.mu.RUnlock()
		return Response{}, fmt.Errorf("%w: %q", ErrTenantNotFound, id)
	}
	topo := t.Snapshot().Res.Topo
	for _, p := range points {
		if !topo.Contains(p) {
			s.mu.RUnlock()
			return Response{}, fmt.Errorf("%w: point %v outside %v", ErrBadDelta, p, topo)
		}
	}
	// Count the enqueue under the read lock: Close waits for it before
	// stopping the loops, so the send below can never strand.
	s.inflight.Add(1)
	s.mu.RUnlock()
	defer s.inflight.Done()

	reply := make(chan Response, 1)
	r := request{t: t, op: op, points: points, reply: reply}
	if !s.opts.DisableStages {
		r.id = s.reqSeq.Add(1)
		r.enq = time.Now()
	}
	t.shard.ch <- r
	resp := <-reply
	return resp, resp.Err
}

// Features lists the serving capabilities clients can negotiate on (in
// the tenant status of the create response): "stages" means delta
// responses carry the per-stage latency breakdown.
func (s *Service) Features() []string {
	if s.opts.DisableStages {
		return nil
	}
	return []string{"stages"}
}

// Route answers one route query off the tenant's current snapshot.
// router is "indexed" (the precompiled boundary index), "xy", "detour"
// or "bfs" (the shortest-path oracle); model is a routing fault model
// name ("blocks", "regions", "faults-only"). Forbidden endpoints fail
// with routing.ErrUnroutable for every router.
func (t *Tenant) Route(src, dst grid.Point, modelName, routerName string) (routing.Path, *Snapshot, error) {
	snap := t.Snapshot()
	model, err := ParseModel(modelName)
	if err != nil {
		return nil, snap, err
	}
	g := routing.NewGraph(snap.Res, model)
	if err := g.CheckEndpoints(src, dst); err != nil {
		return nil, snap, err
	}
	var (
		path routing.Path
		ok   bool
	)
	switch routerName {
	case "", "detour":
		path, err = routing.Detour{}.Route(g, src, dst)
	case "indexed":
		if model != routing.ModelRegions {
			return nil, snap, fmt.Errorf("%w: the indexed router serves the regions model only (got %q)", ErrBadDelta, modelName)
		}
		path, err = snap.Routes.Route(src, dst)
	case "xy":
		path, err = routing.XY{}.Route(g, src, dst)
	case "bfs":
		if path, ok = g.ShortestPath(src, dst); !ok {
			err = fmt.Errorf("routing: bfs: no path %v -> %v", src, dst)
		}
	default:
		return nil, snap, fmt.Errorf("%w: unknown router %q (want xy, detour, indexed, or bfs)", ErrBadDelta, routerName)
	}
	if err != nil {
		return nil, snap, err
	}
	return path, snap, nil
}

// RouteMany answers a batch of route queries off one consistent
// snapshot. router is "indexed" (default: binary searches over the
// precompiled boundary index) or "detour" (the walk-based reference,
// sharing one scratch buffer across the batch); the indexed router
// serves the regions model only. Per-query failures land in each
// Answer's Err, so a batch never fails halfway.
func (t *Tenant) RouteMany(qs []routeidx.Query, modelName, routerName string, paths bool) ([]routeidx.Answer, *Snapshot, error) {
	snap := t.Snapshot()
	model, err := ParseModel(modelName)
	if err != nil {
		return nil, snap, err
	}
	switch routerName {
	case "", "indexed":
		if model != routing.ModelRegions {
			return nil, snap, fmt.Errorf("%w: the indexed router serves the regions model only (got %q)", ErrBadDelta, modelName)
		}
		return snap.Routes.RouteMany(qs, routeidx.BatchOptions{Paths: paths}), snap, nil
	case "detour":
		g := routing.NewGraph(snap.Res, model)
		answers := make([]routeidx.Answer, len(qs))
		var buf routing.Path
		for i, q := range qs {
			p, rerr := routing.Detour{}.RouteAppend(g, q.Src, q.Dst, buf)
			buf = p
			if rerr != nil {
				answers[i] = routeidx.Answer{Err: rerr}
				continue
			}
			answers[i] = routeidx.Answer{Hops: p.Len()}
			if paths {
				answers[i].Path = append(routing.Path(nil), p...)
			}
		}
		return answers, snap, nil
	default:
		return nil, snap, fmt.Errorf("%w: unknown batch router %q (want indexed or detour)", ErrBadDelta, routerName)
	}
}

// DisjointPaths answers a k-node-disjoint path query off the tenant's
// current snapshot. k is capped at 8 to bound the flow computation; a
// fault-free mesh interior supports at most 4 anyway.
func (t *Tenant) DisjointPaths(src, dst grid.Point, k int, modelName string) (routing.DisjointResult, *Snapshot, error) {
	snap := t.Snapshot()
	model, err := ParseModel(modelName)
	if err != nil {
		return routing.DisjointResult{}, snap, err
	}
	if k < 1 || k > 8 {
		return routing.DisjointResult{}, snap, fmt.Errorf("%w: k must be in [1, 8], got %d", ErrBadDelta, k)
	}
	out, err := routing.KDisjointPaths(routing.NewGraph(snap.Res, model), src, dst, k)
	return out, snap, err
}

// ParseModel maps a fault-model name onto routing.Model; empty selects
// the paper's refined region model.
func ParseModel(name string) (routing.Model, error) {
	switch name {
	case "", "regions":
		return routing.ModelRegions, nil
	case "blocks":
		return routing.ModelBlocks, nil
	case "faults-only", "faults":
		return routing.ModelFaultsOnly, nil
	default:
		return 0, fmt.Errorf("%w: unknown model %q (want blocks, regions, or faults-only)", ErrBadDelta, name)
	}
}

// run is one shard's single-writer loop: collect a batch, apply it,
// repeat until stopped and drained.
func (s *Service) run(sh *shard) {
	for {
		batch := s.collect(sh)
		if batch == nil {
			return
		}
		s.apply(sh, batch)
	}
}

// collect blocks for the batch's first request, optionally keeps
// collecting for the batch window, then drains whatever else is queued.
// Every dequeued request gets its deq stage stamp here (unless stages
// are off). It returns nil when the shard is stopped and its queue
// empty.
func (s *Service) collect(sh *shard) []request {
	stamp := !s.opts.DisableStages
	var first request
	select {
	case first = <-sh.ch:
	case <-sh.stop:
		select {
		case first = <-sh.ch:
		default:
			return nil
		}
	}
	if stamp {
		first.deq = time.Now()
	}
	batch := []request{first}
	if w := s.opts.BatchWindow; w > 0 {
		timer := time.NewTimer(w)
	window:
		for {
			select {
			case r := <-sh.ch:
				if stamp {
					r.deq = time.Now()
				}
				batch = append(batch, r)
			case <-timer.C:
				break window
			case <-sh.stop:
				break window
			}
		}
		timer.Stop()
	}
	for {
		select {
		case r := <-sh.ch:
			if stamp {
				r.deq = time.Now()
			}
			batch = append(batch, r)
		default:
			return batch
		}
	}
}

// apply executes one batch: requests are grouped by tenant in arrival
// order, consecutive same-op delta runs per tenant collapse into one
// engine pass, and each tenant publishes exactly one new snapshot per
// batch. Every request is answered.
func (s *Service) apply(sh *shard, batch []request) {
	byTenant := make(map[*Tenant][]request, 1)
	order := make([]*Tenant, 0, 1)
	for _, r := range batch {
		if _, ok := byTenant[r.t]; !ok {
			order = append(order, r.t)
		}
		byTenant[r.t] = append(byTenant[r.t], r)
	}
	for _, t := range order {
		s.applyTenant(sh, t, byTenant[t])
	}
	if rec := s.opts.Recorder; rec != nil {
		rec.Histogram("serve_batch_requests", nil).Observe(float64(len(batch)))
	}
	if s.stages != nil {
		s.stages.shardDepth[sh.idx-1].Set(float64(len(sh.ch)))
	}
}

// applyTenant runs one tenant's slice of a batch on its session.
func (s *Service) applyTenant(sh *shard, t *Tenant, reqs []request) {
	if t.deleted.Load() {
		for _, r := range reqs {
			r.reply <- Response{Err: fmt.Errorf("%w: %q", ErrTenantNotFound, t.id)}
		}
		return
	}
	rec := s.opts.Recorder
	stages := !s.opts.DisableStages
	start := time.Now()
	mutated := false
	type done struct {
		reqs  []request
		delta core.Delta
		err   error
		// start and end bracket the run's engine pass; every request of
		// the run derives its compute stage from them.
		start, end time.Time
	}
	var dones []done

	// Coalesce consecutive same-op runs into one engine pass each —
	// order between add and remove runs is preserved exactly, so every
	// delta's effect lands as if applied alone. A close op ends the
	// tenant's service; anything queued behind it in the same batch was
	// enqueued after the tenant left the registry and fails like any
	// other post-delete request.
	for i := 0; i < len(reqs); {
		r := reqs[i]
		if r.op == opClose {
			t.deleted.Store(true)
			t.session.Close()
			t.closeSubs()
			r.reply <- Response{Seq: t.seq}
			for _, late := range reqs[i+1:] {
				late.reply <- Response{Err: fmt.Errorf("%w: %q", ErrTenantNotFound, t.id)}
			}
			break
		}
		j := i + 1
		for j < len(reqs) && reqs[j].op == r.op {
			j++
		}
		points := r.points
		if j > i+1 {
			points = make([]grid.Point, 0, len(points)*(j-i))
			for _, rr := range reqs[i:j] {
				points = append(points, rr.points...)
			}
		}
		dn := done{reqs: reqs[i:j]}
		if stages {
			dn.start = time.Now()
		}
		if r.op == opAdd {
			dn.delta, dn.err = t.session.AddFaults(points...)
		} else {
			dn.delta, dn.err = t.session.RemoveFaults(points...)
		}
		if stages {
			dn.end = time.Now()
		}
		if dn.err == nil {
			mutated = true
			t.seq += uint64(j - i)
		}
		dones = append(dones, dn)
		i = j
	}
	// One snapshot per batch: all of the batch's effects become visible
	// atomically at the new sequence number.
	seq := t.seq
	if mutated {
		res := t.session.Result()
		t.snap.Store(&Snapshot{Seq: seq, Res: res, Routes: s.buildRoutes(t.snap.Load(), res, t.id)})
	}
	dur := time.Since(start)
	for _, dn := range dones {
		ev := Event{
			Tenant: t.id, Seq: seq, Op: dn.delta.Op, Points: dn.delta.Points,
			Frontier: dn.delta.Frontier, Rounds: dn.delta.Rounds(),
			Changed: dn.delta.ChangedPhase1 + dn.delta.ChangedPhase2,
			Batched: len(reqs), DurNS: dur.Nanoseconds(),
		}
		// One stream event per applied request — coalesced requests share
		// their run's delta stats — so a subscriber (plus its drop count)
		// can account for every request exactly once.
		if dn.err == nil {
			for range dn.reqs {
				t.publish(ev)
			}
		}
		if rec != nil {
			e := obs.Event{
				Type: obs.EServeDelta, Tenant: t.id, Name: dn.delta.Op,
				N: dn.delta.Points, Frontier: dn.delta.Frontier,
				Rounds: dn.delta.Rounds(), Changed: ev.Changed,
				DurNS: dur.Nanoseconds(),
			}
			if dn.err != nil {
				e.Err = dn.err.Error()
			}
			rec.Emit(e)
		}
		// The publish stage closes here: one reply-build stamp per run,
		// shared by its requests, keeps the four stages telescoping to
		// exactly each request's end-to-end latency.
		var pubEnd time.Time
		if stages {
			pubEnd = time.Now()
		}
		for _, r := range dn.reqs {
			resp := Response{Seq: seq, Delta: dn.delta, Batched: len(reqs), Err: dn.err}
			if stages {
				b := &StageBreakdown{
					QueueNS:   r.deq.Sub(r.enq).Nanoseconds(),
					BatchNS:   dn.start.Sub(r.deq).Nanoseconds(),
					ComputeNS: dn.end.Sub(dn.start).Nanoseconds(),
					PublishNS: pubEnd.Sub(dn.end).Nanoseconds(),
					TotalNS:   pubEnd.Sub(r.enq).Nanoseconds(),
				}
				resp.Stages = b
				if m := s.stages; m != nil {
					m.requests.Inc()
					m.queue.Observe(float64(b.QueueNS))
					m.batch.Observe(float64(b.BatchNS))
					m.compute.Observe(float64(b.ComputeNS))
					m.publish.Observe(float64(b.PublishNS))
					m.tot.Observe(float64(b.TotalNS))
				}
				if rec != nil {
					e := obs.Event{
						Type: obs.EServeRequest, Tenant: t.id, Req: r.id,
						Shard: sh.idx, Name: r.op, N: len(r.points),
						QueueNS: b.QueueNS, BatchNS: b.BatchNS,
						ComputeNS: b.ComputeNS, PublishNS: b.PublishNS,
						DurNS: b.TotalNS,
					}
					if dn.err != nil {
						e.Err = dn.err.Error()
					}
					rec.Emit(e)
				}
			}
			r.reply <- resp
		}
	}
	if rec != nil && mutated {
		rec.Counter("serve_deltas").Add(int64(len(reqs)))
		rec.Counter("serve_batches").Inc()
		rec.Counter("serve_tenant_requests:" + t.id).Add(int64(len(reqs)))
		rec.Counter("serve_tenant_busy_ns:" + t.id).Add(dur.Nanoseconds())
		rec.Histogram("serve_batch_size", nil).Observe(float64(len(reqs)))
		rec.Histogram("serve_delta_ns", obs.NSBuckets).Observe(float64(dur.Nanoseconds()))
		rec.Emit(obs.Event{
			Type: obs.EServeBatch, Tenant: t.id, N: len(reqs), Rounds: int(seq),
			Shard: sh.idx, Depth: len(sh.ch), DurNS: dur.Nanoseconds(),
		})
	}
	if s.stages != nil && mutated {
		s.stages.shardBusy[sh.idx-1].Add(dur.Nanoseconds())
	}
}
