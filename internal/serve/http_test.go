// HTTP contract tests for the serving API: status-code mapping on every
// error path, idempotent tenant creation, snapshot/restore over the
// wire, SSE event delivery, and graceful shutdown draining in-flight
// batches. FuzzServeDelta hammers the strict JSON delta decoder.
package serve_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ocpmesh/internal/grid"
	"ocpmesh/internal/serve"
)

// newTestServer returns an httptest server over a fresh service plus a
// cleanup-registered Close.
func newTestServer(t *testing.T, opts serve.Options) (*httptest.Server, *serve.Service) {
	t.Helper()
	svc := serve.New(opts)
	srv := serve.NewServer(svc, nil)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		_ = svc.Close()
	})
	return ts, svc
}

func doJSON(t *testing.T, method, url string, body any) (*http.Response, []byte) {
	t.Helper()
	var rd *bytes.Reader
	if raw, ok := body.([]byte); ok {
		rd = bytes.NewReader(raw)
	} else if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestHTTPTenantLifecycle(t *testing.T) {
	ts, _ := newTestServer(t, serve.Options{Shards: 1})

	// Create.
	resp, body := doJSON(t, "POST", ts.URL+"/api/tenants", serve.CreateRequest{
		ID:     "t1",
		Config: serve.TenantConfig{Width: 16, Height: 16},
		Faults: [][2]int{{3, 3}, {4, 3}},
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d %s", resp.StatusCode, body)
	}
	var st serve.TenantStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.ID != "t1" || st.Faults != 2 || st.Blocks != 1 {
		t.Fatalf("create status %+v", st)
	}

	// Idempotent re-create: same config and faults → 200, not 409.
	resp, body = doJSON(t, "POST", ts.URL+"/api/tenants", serve.CreateRequest{
		ID:     "t1",
		Config: serve.TenantConfig{Width: 16, Height: 16},
		Faults: [][2]int{{4, 3}, {3, 3}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("idempotent create: %d %s", resp.StatusCode, body)
	}
	// Conflicting re-create → 409.
	resp, _ = doJSON(t, "POST", ts.URL+"/api/tenants", serve.CreateRequest{
		ID:     "t1",
		Config: serve.TenantConfig{Width: 20, Height: 16},
	})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("conflicting create: %d, want 409", resp.StatusCode)
	}

	// Delta, then the labels and regions views reflect it at the same
	// sequence.
	resp, body = doJSON(t, "POST", ts.URL+"/api/tenants/t1/deltas",
		serve.DeltaRequest{Op: "add", Points: [][2]int{{5, 3}}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delta: %d %s", resp.StatusCode, body)
	}
	var dr serve.DeltaResponse
	if err := json.Unmarshal(body, &dr); err != nil {
		t.Fatal(err)
	}
	if dr.Seq != 1 || dr.Applied != 1 {
		t.Fatalf("delta response %+v", dr)
	}
	resp, body = doJSON(t, "GET", ts.URL+"/api/tenants/t1/labels", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("labels: %d", resp.StatusCode)
	}
	var lr serve.LabelsResponse
	if err := json.Unmarshal(body, &lr); err != nil {
		t.Fatal(err)
	}
	if lr.Seq != 1 || lr.Width != 16 || lr.Unsafe == "" {
		t.Fatalf("labels response %+v", lr)
	}
	resp, body = doJSON(t, "GET", ts.URL+"/api/tenants/t1/regions?nodes=1", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("regions: %d", resp.StatusCode)
	}
	var rr serve.RegionsResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Seq != 1 || len(rr.Blocks) == 0 || len(rr.Blocks[0].Nodes) == 0 {
		t.Fatalf("regions response %+v", rr)
	}

	// Route.
	resp, body = doJSON(t, "GET", ts.URL+"/api/tenants/t1/route?src=0,0&dst=15,15", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("route: %d", resp.StatusCode)
	}
	var route serve.RouteResponse
	if err := json.Unmarshal(body, &route); err != nil {
		t.Fatal(err)
	}
	if !route.OK || route.Hops != 30 {
		t.Fatalf("route response %+v", route)
	}

	// List, delete, 404 afterwards.
	resp, body = doJSON(t, "GET", ts.URL+"/api/tenants", nil)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "t1") {
		t.Fatalf("list: %d %s", resp.StatusCode, body)
	}
	if resp, _ = doJSON(t, "DELETE", ts.URL+"/api/tenants/t1", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: %d", resp.StatusCode)
	}
	if resp, _ = doJSON(t, "GET", ts.URL+"/api/tenants/t1", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status after delete: %d, want 404", resp.StatusCode)
	}
}

func TestHTTPErrorPaths(t *testing.T) {
	ts, _ := newTestServer(t, serve.Options{Shards: 1, MaxMeshNodes: 1024})
	if resp, _ := doJSON(t, "POST", ts.URL+"/api/tenants", serve.CreateRequest{
		ID: "ok", Config: serve.TenantConfig{Width: 8, Height: 8},
	}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("setup create failed: %d", resp.StatusCode)
	}

	cases := []struct {
		name   string
		method string
		path   string
		body   any
		want   int
	}{
		{"unknown tenant status", "GET", "/api/tenants/nope", nil, 404},
		{"unknown tenant delta", "POST", "/api/tenants/nope/deltas",
			serve.DeltaRequest{Op: "add", Points: [][2]int{{1, 1}}}, 404},
		{"unknown tenant delete", "DELETE", "/api/tenants/nope", nil, 404},
		{"unknown tenant labels", "GET", "/api/tenants/nope/labels", nil, 404},
		{"unknown tenant route", "GET", "/api/tenants/nope/route?src=0,0&dst=1,1", nil, 404},
		{"malformed delta json", "POST", "/api/tenants/ok/deltas", []byte(`{"op":`), 400},
		{"unknown delta field", "POST", "/api/tenants/ok/deltas",
			[]byte(`{"op":"add","points":[[1,1]],"bogus":1}`), 400},
		{"trailing garbage", "POST", "/api/tenants/ok/deltas",
			[]byte(`{"op":"add","points":[[1,1]]} extra`), 400},
		{"bad delta op", "POST", "/api/tenants/ok/deltas",
			serve.DeltaRequest{Op: "frobnicate", Points: [][2]int{{1, 1}}}, 400},
		{"empty delta points", "POST", "/api/tenants/ok/deltas",
			serve.DeltaRequest{Op: "add"}, 400},
		{"out-of-bounds point", "POST", "/api/tenants/ok/deltas",
			serve.DeltaRequest{Op: "add", Points: [][2]int{{100, 100}}}, 400},
		{"oversized mesh", "POST", "/api/tenants",
			serve.CreateRequest{ID: "big", Config: serve.TenantConfig{Width: 64, Height: 64}}, 413},
		{"zero-dim mesh", "POST", "/api/tenants",
			serve.CreateRequest{ID: "flat", Config: serve.TenantConfig{Width: 0, Height: 4}}, 400},
		{"bad engine", "POST", "/api/tenants",
			serve.CreateRequest{ID: "eng", Config: serve.TenantConfig{Width: 4, Height: 4, Engine: "quantum"}}, 400},
		{"fault outside mesh", "POST", "/api/tenants",
			serve.CreateRequest{ID: "out", Config: serve.TenantConfig{Width: 4, Height: 4},
				Faults: [][2]int{{9, 9}}}, 400},
		{"bad route point", "GET", "/api/tenants/ok/route?src=zap&dst=1,1", nil, 400},
		{"bad route router", "GET", "/api/tenants/ok/route?src=0,0&dst=1,1&router=warp", nil, 400},
		{"bad route model", "GET", "/api/tenants/ok/route?src=0,0&dst=1,1&model=psychic", nil, 400},
		{"restore bad body", "POST", "/api/tenants/r1/restore", []byte(`{"version":`), 400},
	}
	for _, tc := range cases {
		resp, body := doJSON(t, tc.method, ts.URL+tc.path, tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: got %d, want %d (body %s)", tc.name, resp.StatusCode, tc.want, body)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
			t.Errorf("%s: error content type %q, want JSON", tc.name, ct)
		}
	}
}

func TestHTTPSnapshotRestoreRoundTrip(t *testing.T) {
	ts, _ := newTestServer(t, serve.Options{Shards: 1})
	if resp, _ := doJSON(t, "POST", ts.URL+"/api/tenants", serve.CreateRequest{
		ID: "s", Config: serve.TenantConfig{Width: 12, Height: 12},
		Faults: [][2]int{{2, 2}, {3, 2}, {7, 8}},
	}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d", resp.StatusCode)
	}
	if resp, _ := doJSON(t, "POST", ts.URL+"/api/tenants/s/deltas",
		serve.DeltaRequest{Op: "add", Points: [][2]int{{4, 2}}}); resp.StatusCode != 200 {
		t.Fatalf("delta: %d", resp.StatusCode)
	}

	resp, snapBody := doJSON(t, "GET", ts.URL+"/api/tenants/s/snapshot", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot: %d", resp.StatusCode)
	}
	// Restore under a new id; served labels must be byte-identical.
	if resp, body := doJSON(t, "POST", ts.URL+"/api/tenants/s2/restore", snapBody); resp.StatusCode != http.StatusCreated {
		t.Fatalf("restore: %d %s", resp.StatusCode, body)
	}
	_, l1 := doJSON(t, "GET", ts.URL+"/api/tenants/s/labels", nil)
	_, l2 := doJSON(t, "GET", ts.URL+"/api/tenants/s2/labels", nil)
	var a, b serve.LabelsResponse
	if err := json.Unmarshal(l1, &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(l2, &b); err != nil {
		t.Fatal(err)
	}
	if a.Unsafe != b.Unsafe || a.Enabled != b.Enabled || a.Seq != b.Seq {
		t.Fatal("restored tenant serves different label planes")
	}
	// Restoring over a live tenant conflicts.
	if resp, _ := doJSON(t, "POST", ts.URL+"/api/tenants/s/restore", snapBody); resp.StatusCode != http.StatusConflict {
		t.Fatalf("restore over live tenant: %d, want 409", resp.StatusCode)
	}
	// A tampered snapshot is refused.
	tampered := bytes.Replace(snapBody, []byte(`"seq": 1`), []byte(`"seq": 7`), 1)
	if bytes.Equal(tampered, snapBody) {
		t.Fatal("tamper target not found in snapshot body")
	}
	if resp, _ := doJSON(t, "POST", ts.URL+"/api/tenants/s3/restore", tampered); resp.StatusCode != http.StatusCreated {
		// Seq is not checksummed (it is bookkeeping, not state) — but a
		// flipped fault must be.
		t.Fatalf("seq-only edit should restore, got %d", resp.StatusCode)
	}
	tampered = bytes.Replace(snapBody, []byte("[\n      2,\n      2\n    ]"), []byte("[\n      5,\n      5\n    ]"), 1)
	if bytes.Equal(tampered, snapBody) {
		t.Fatal("fault tamper target not found in snapshot body")
	}
	if resp, _ := doJSON(t, "POST", ts.URL+"/api/tenants/s4/restore", tampered); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("tampered fault list restored: %d, want 400", resp.StatusCode)
	}
}

// TestHTTPEventsSSE subscribes to a tenant's event stream over HTTP and
// checks events arrive for applied deltas.
func TestHTTPEventsSSE(t *testing.T) {
	ts, _ := newTestServer(t, serve.Options{Shards: 1})
	if resp, _ := doJSON(t, "POST", ts.URL+"/api/tenants", serve.CreateRequest{
		ID: "sse", Config: serve.TenantConfig{Width: 8, Height: 8},
	}); resp.StatusCode != http.StatusCreated {
		t.Fatal("create failed")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", ts.URL+"/api/tenants/sse/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	lines := make(chan string, 16)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			if line := sc.Text(); strings.HasPrefix(line, "data: ") {
				lines <- strings.TrimPrefix(line, "data: ")
			}
		}
		close(lines)
	}()

	for i := 1; i <= 3; i++ {
		if resp, _ := doJSON(t, "POST", ts.URL+"/api/tenants/sse/deltas",
			serve.DeltaRequest{Op: "add", Points: [][2]int{{i, i}}}); resp.StatusCode != 200 {
			t.Fatalf("delta %d failed", i)
		}
		select {
		case data := <-lines:
			var e serve.Event
			if err := json.Unmarshal([]byte(data), &e); err != nil {
				t.Fatalf("event %d: %v (%s)", i, err, data)
			}
			if e.Tenant != "sse" || e.Seq != uint64(i) || e.Op != "add" {
				t.Fatalf("event %d: %+v", i, e)
			}
		case <-ctx.Done():
			t.Fatalf("no event for delta %d", i)
		}
	}
	// Deleting the tenant ends the stream.
	if resp, _ := doJSON(t, "DELETE", ts.URL+"/api/tenants/sse", nil); resp.StatusCode != 200 {
		t.Fatal("delete failed")
	}
	select {
	case _, ok := <-lines:
		if ok {
			// A late event is fine; the close must still follow.
			for range lines {
			}
		}
	case <-ctx.Done():
		t.Fatal("stream did not end after tenant delete")
	}
}

// TestHTTPGracefulShutdown pins the drain contract over the wire:
// requests in flight when Shutdown starts complete with their effect
// applied; the service refuses work afterwards.
func TestHTTPGracefulShutdown(t *testing.T) {
	svc := serve.New(serve.Options{Shards: 1, BatchWindow: time.Millisecond})
	srv := serve.NewServer(svc, nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if resp, _ := doJSON(t, "POST", ts.URL+"/api/tenants", serve.CreateRequest{
		ID: "g", Config: serve.TenantConfig{Width: 16, Height: 16},
	}); resp.StatusCode != http.StatusCreated {
		t.Fatal("create failed")
	}

	const n = 8
	codes := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, _ := doJSON(t, "POST", ts.URL+"/api/tenants/g/deltas",
				serve.DeltaRequest{Op: "add", Points: [][2]int{{i, 0}}})
			codes[i] = resp.StatusCode
		}(i)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	wg.Wait()
	applied := 0
	for i, code := range codes {
		switch code {
		case http.StatusOK:
			applied++
		case http.StatusServiceUnavailable:
			// Lost the race with the drain — refused, not stranded.
		default:
			t.Fatalf("request %d: status %d", i, code)
		}
	}
	t.Logf("drain: %d/%d applied, %d refused", applied, n, n-applied)
	// Post-shutdown requests answer 503, and the handler still responds
	// (no hang).
	if resp, _ := doJSON(t, "POST", ts.URL+"/api/tenants/g/deltas",
		serve.DeltaRequest{Op: "add", Points: [][2]int{{1, 1}}}); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown delta: %d, want 503", resp.StatusCode)
	}
}

// FuzzServeDelta fuzzes the strict JSON delta decoder: it must never
// panic, and on success must return a well-formed op and point list
// consistent with what a re-encode of the parsed request produces.
func FuzzServeDelta(f *testing.F) {
	f.Add([]byte(`{"op":"add","points":[[1,2],[3,4]]}`))
	f.Add([]byte(`{"op":"remove","points":[[0,0]]}`))
	f.Add([]byte(`{"op":"frob","points":[[1,1]]}`))
	f.Add([]byte(`{"op":"add","points":[]}`))
	f.Add([]byte(`{"op":"add"}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{"op":"add","points":[[1,2]],"extra":true}`))
	f.Add([]byte(`{"op":"add","points":[[1,2]]} trailing`))
	f.Add([]byte(`{"op":"add","points":[[9223372036854775807,-9223372036854775808]]}`))
	f.Add([]byte(``))
	f.Add([]byte(`null`))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, pts, err := serve.ParseDeltaRequest(data)
		if err != nil {
			return
		}
		if req.Op != "add" && req.Op != "remove" {
			t.Fatalf("accepted op %q", req.Op)
		}
		if len(pts) == 0 {
			t.Fatal("accepted empty point list")
		}
		if len(pts) != len(req.Points) {
			t.Fatalf("%d points decoded from %d pairs", len(pts), len(req.Points))
		}
		for i, p := range pts {
			if p != grid.Pt(req.Points[i][0], req.Points[i][1]) {
				t.Fatalf("point %d mismatch: %v vs %v", i, p, req.Points[i])
			}
		}
		// Accepted inputs survive a re-encode/re-parse round trip.
		re, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		req2, _, err := serve.ParseDeltaRequest(re)
		if err != nil {
			t.Fatalf("re-parse of %s: %v", re, err)
		}
		if req2.Op != req.Op || len(req2.Points) != len(req.Points) {
			t.Fatal("round trip changed the request")
		}
	})
}
