package serve

import (
	"encoding/base64"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"

	"ocpmesh/internal/core"
	"ocpmesh/internal/grid"
	"ocpmesh/internal/mesh"
	"ocpmesh/internal/region"
	"ocpmesh/internal/status"
)

// TenantConfig is the JSON form of one tenant's mesh and engine
// configuration. The zero value of every field but Width/Height is the
// core.Config default: bounded mesh, Definition 2b, 8-connected
// grouping, sequential engine.
type TenantConfig struct {
	Width  int  `json:"width"`
	Height int  `json:"height"`
	Torus  bool `json:"torus,omitempty"`
	// Safety is "2a" or "2b" (default "2b").
	Safety string `json:"safety,omitempty"`
	// Connectivity is 4 or 8 (default 8).
	Connectivity int `json:"connectivity,omitempty"`
	// Engine is "sequential", "channels", "parallel" or "bitset"
	// (default "bitset": the serving layer exists for batched word-
	// parallel deltas).
	Engine string `json:"engine,omitempty"`
	// Workers is the tile/worker count of the parallel and bitset
	// engines (0 = GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
}

// CoreConfig maps the JSON form onto a core.Config, validating every
// enum.
func (c TenantConfig) CoreConfig() (core.Config, error) {
	cfg := core.Config{Width: c.Width, Height: c.Height, Workers: c.Workers}
	if c.Width < 1 || c.Height < 1 {
		return cfg, fmt.Errorf("%w: mesh %dx%d (want positive dimensions)", ErrBadDelta, c.Width, c.Height)
	}
	if c.Torus {
		cfg.Kind = mesh.Torus2D
	}
	switch c.Safety {
	case "", "2b", "def2b":
		cfg.Safety = status.Def2b
	case "2a", "def2a":
		cfg.Safety = status.Def2a
	default:
		return cfg, fmt.Errorf("%w: safety %q (want 2a or 2b)", ErrBadDelta, c.Safety)
	}
	switch c.Connectivity {
	case 0, 8:
		cfg.Connectivity = region.Conn8
	case 4:
		cfg.Connectivity = region.Conn4
	default:
		return cfg, fmt.Errorf("%w: connectivity %d (want 4 or 8)", ErrBadDelta, c.Connectivity)
	}
	switch c.Engine {
	case "", "bitset":
		cfg.Engine = core.EngineBitset
	case "sequential":
		cfg.Engine = core.EngineSequential
	case "channels":
		cfg.Engine = core.EngineChannels
	case "parallel":
		cfg.Engine = core.EngineParallel
	default:
		return cfg, fmt.Errorf("%w: engine %q (want sequential, channels, parallel, or bitset)", ErrBadDelta, c.Engine)
	}
	if cfg.Workers > 1 && cfg.Engine != core.EngineParallel && cfg.Engine != core.EngineBitset {
		return cfg, fmt.Errorf("%w: workers=%d needs the parallel or bitset engine", ErrBadDelta, cfg.Workers)
	}
	return cfg, nil
}

// TenantSnapshot is the serialized state of one tenant: the config, the
// fault set, and both fixpoint label planes packed 64 labels per uint64
// word (the BitGrid layout), base64 over little-endian words. Restoring
// adopts the planes without re-running the formation; a checksum over
// the packed planes and fault list catches corrupted or hand-edited
// snapshots before they can serve wrong labels.
type TenantSnapshot struct {
	Version int          `json:"version"`
	ID      string       `json:"id"`
	Config  TenantConfig `json:"config"`
	// Seq is the tenant's delta sequence at snapshot time; a restored
	// tenant resumes from it.
	Seq uint64 `json:"seq"`
	// Faults is the fault set as [x, y] pairs, row-major sorted so the
	// encoding is deterministic.
	Faults [][2]int `json:"faults"`
	// Unsafe and Enabled are the packed label planes.
	Unsafe  string `json:"unsafe_words"`
	Enabled string `json:"enabled_words"`
	// Checksum is FNV-64a over the packed planes and sorted faults.
	Checksum string `json:"checksum"`
}

// snapshotVersion is the serialization format version.
const snapshotVersion = 1

// TakeSnapshot serializes the tenant's current published state.
func (t *Tenant) TakeSnapshot() *TenantSnapshot {
	snap := t.Snapshot()
	res := snap.Res
	pts := res.Faults.Points()
	grid.SortPoints(pts)
	faults := make([][2]int, len(pts))
	for i, p := range pts {
		faults[i] = [2]int{p.X, p.Y}
	}
	ts := &TenantSnapshot{
		Version: snapshotVersion,
		ID:      t.id,
		Config:  t.tcfg,
		Seq:     snap.Seq,
		Faults:  faults,
		Unsafe:  packPlane(res.Topo, res.Unsafe),
		Enabled: packPlane(res.Topo, res.Enabled),
	}
	ts.Checksum = ts.checksum()
	return ts
}

// RestoreSession rebuilds the snapshot's session without re-running the
// formation (core.RestoreSession adopts the label planes directly).
func (ts *TenantSnapshot) RestoreSession(maxNodes int) (*core.Session, core.Config, error) {
	cfg, err := ts.Config.CoreConfig()
	if err != nil {
		return nil, cfg, err
	}
	if ts.Version != snapshotVersion {
		return nil, cfg, fmt.Errorf("%w: snapshot version %d (want %d)", ErrBadDelta, ts.Version, snapshotVersion)
	}
	if cfg.Width*cfg.Height > maxNodes {
		return nil, cfg, fmt.Errorf("%w: %dx%d > %d nodes", ErrTooLarge, cfg.Width, cfg.Height, maxNodes)
	}
	if got, want := ts.checksum(), ts.Checksum; got != want {
		return nil, cfg, fmt.Errorf("%w: snapshot checksum %s, computed %s", ErrBadDelta, want, got)
	}
	topo, err := mesh.New(cfg.Width, cfg.Height, cfg.Kind)
	if err != nil {
		return nil, cfg, err
	}
	faults := grid.NewPointSetCap(len(ts.Faults))
	for _, f := range ts.Faults {
		p := grid.Pt(f[0], f[1])
		if !topo.Contains(p) {
			return nil, cfg, fmt.Errorf("%w: fault %v outside %v", ErrBadDelta, p, topo)
		}
		faults.Add(p)
	}
	unsafe, err := unpackPlane(topo, ts.Unsafe)
	if err != nil {
		return nil, cfg, fmt.Errorf("%w: unsafe plane: %v", ErrBadDelta, err)
	}
	enabled, err := unpackPlane(topo, ts.Enabled)
	if err != nil {
		return nil, cfg, fmt.Errorf("%w: enabled plane: %v", ErrBadDelta, err)
	}
	session, err := core.RestoreSession(cfg, topo, faults, unsafe, enabled)
	if err != nil {
		return nil, cfg, err
	}
	return session, cfg, nil
}

// checksum hashes the packed planes and the sorted fault list. The
// faults are re-sorted defensively: the checksum must not depend on the
// order a hand-assembled snapshot happened to list them in.
func (ts *TenantSnapshot) checksum() string {
	faults := append([][2]int(nil), ts.Faults...)
	sort.Slice(faults, func(i, j int) bool {
		if faults[i][1] != faults[j][1] {
			return faults[i][1] < faults[j][1]
		}
		return faults[i][0] < faults[j][0]
	})
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(len(faults)))
	_, _ = h.Write(buf[:])
	for _, f := range faults {
		binary.LittleEndian.PutUint64(buf[:], uint64(int64(f[0])))
		_, _ = h.Write(buf[:])
		binary.LittleEndian.PutUint64(buf[:], uint64(int64(f[1])))
		_, _ = h.Write(buf[:])
	}
	_, _ = h.Write([]byte(ts.Unsafe))
	_, _ = h.Write([]byte(ts.Enabled))
	return fmt.Sprintf("fnv64a:%016x", h.Sum64())
}

// packPlane packs a row-major label vector into the BitGrid word layout
// and encodes the words little-endian base64.
func packPlane(topo *mesh.Topology, labels []bool) string {
	bg := grid.NewBitGrid(topo.Width(), topo.Height())
	bg.SetBools(labels)
	words := bg.Words()
	raw := make([]byte, 8*len(words))
	for i, w := range words {
		binary.LittleEndian.PutUint64(raw[8*i:], w)
	}
	return base64.StdEncoding.EncodeToString(raw)
}

// unpackPlane is the inverse of packPlane, validating the exact word
// count and the padding-bits-zero invariant.
func unpackPlane(topo *mesh.Topology, s string) ([]bool, error) {
	raw, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		return nil, err
	}
	bg := grid.NewBitGrid(topo.Width(), topo.Height())
	words := bg.Words()
	if len(raw) != 8*len(words) {
		return nil, fmt.Errorf("plane is %d bytes, want %d", len(raw), 8*len(words))
	}
	for i := range words {
		w := binary.LittleEndian.Uint64(raw[8*i:])
		if w&^bg.WordMask(i%bg.WordsPerRow()) != 0 {
			return nil, fmt.Errorf("word %d has padding bits set", i)
		}
		words[i] = w
	}
	return bg.Bools(nil), nil
}
