package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"ocpmesh/internal/grid"
	"ocpmesh/internal/obs"
	"ocpmesh/internal/region"
	"ocpmesh/internal/routeidx"
	"ocpmesh/internal/routing"
)

// maxBodyBytes bounds every request body the API decodes.
const maxBodyBytes = 8 << 20

// maxDeltaPoints bounds one delta request; larger fault storms should
// arrive as several requests (the shard loop coalesces them anyway).
const maxDeltaPoints = 1 << 16

// maxRouteQueries bounds one batch route request.
const maxRouteQueries = 1 << 14

// Server is the formation service's HTTP front: the JSON/SSE tenant API
// under /api/, /healthz, and — when a side-car handler is attached —
// the observability endpoints (/metrics, /runz, /eventz, pprof) on the
// remaining paths.
type Server struct {
	svc  *Service
	side http.Handler
	http *http.Server
	ln   net.Listener
}

// NewServer returns the HTTP front of svc. side, when non-nil, serves
// every path the tenant API does not claim (the obs side-car mux).
func NewServer(svc *Service, side http.Handler) *Server {
	return &Server{svc: svc, side: side}
}

// Handler returns the API mux (used directly by httptest in the
// contract tests).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.healthz)
	mux.HandleFunc("GET /api/tenants", s.listTenants)
	mux.HandleFunc("POST /api/tenants", s.createTenant)
	mux.HandleFunc("GET /api/tenants/{id}", s.tenantStatus)
	mux.HandleFunc("DELETE /api/tenants/{id}", s.deleteTenant)
	mux.HandleFunc("POST /api/tenants/{id}/deltas", s.postDelta)
	mux.HandleFunc("GET /api/tenants/{id}/labels", s.labels)
	mux.HandleFunc("GET /api/tenants/{id}/regions", s.regions)
	mux.HandleFunc("GET /api/tenants/{id}/route", s.route)
	mux.HandleFunc("POST /api/tenants/{id}/routes", s.routes)
	mux.HandleFunc("GET /api/tenants/{id}/disjoint", s.disjoint)
	mux.HandleFunc("GET /api/tenants/{id}/snapshot", s.snapshot)
	mux.HandleFunc("POST /api/tenants/{id}/restore", s.restore)
	mux.HandleFunc("GET /api/tenants/{id}/events", s.events)
	if s.side != nil {
		mux.Handle("/", s.side)
	} else {
		mux.HandleFunc("/", s.index)
	}
	return mux
}

// Start listens on addr and serves in the background, returning the
// bound address (useful with ":0").
func (s *Server) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("serve: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.http = &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = s.http.Serve(ln) }()
	return ln.Addr(), nil
}

// Shutdown drains gracefully: the service stops accepting work and
// applies every queued delta (each in-flight request gets its answer),
// event streams are closed, and the HTTP server waits for handlers to
// finish within ctx.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.svc.Close()
	if s.http != nil {
		if herr := s.http.Shutdown(ctx); herr != nil && err == nil {
			err = herr
		}
	}
	return err
}

// Close is Shutdown with a short drain deadline, then a hard stop.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	err := s.Shutdown(ctx)
	if s.http != nil {
		_ = s.http.Close()
	}
	return err
}

func (s *Server) index(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, "ocpserve formation service\n\n"+
		"GET    /api/tenants                      list tenants\n"+
		"POST   /api/tenants                      create tenant {id, config, faults}\n"+
		"GET    /api/tenants/{id}                 tenant status\n"+
		"DELETE /api/tenants/{id}                 delete tenant\n"+
		"POST   /api/tenants/{id}/deltas          apply fault delta {op, points}\n"+
		"GET    /api/tenants/{id}/labels          packed label planes at a sequence\n"+
		"GET    /api/tenants/{id}/regions         faulty blocks and disabled regions\n"+
		"GET    /api/tenants/{id}/route           ?src=x,y&dst=x,y&model=&router=\n"+
		"POST   /api/tenants/{id}/routes          batch route queries {queries, model, router, paths}\n"+
		"GET    /api/tenants/{id}/disjoint        ?src=x,y&dst=x,y&k=&model=\n"+
		"GET    /api/tenants/{id}/snapshot        serialized tenant state\n"+
		"POST   /api/tenants/{id}/restore         recreate tenant from a snapshot\n"+
		"GET    /api/tenants/{id}/events          SSE stream of formation events\n"+
		"GET    /healthz                          liveness probe\n")
}

func (s *Server) healthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// writeJSON writes one JSON response.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeErr maps a service error onto an HTTP status and a JSON body.
func writeErr(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrTenantNotFound):
		code = http.StatusNotFound
	case errors.Is(err, ErrTenantExists):
		code = http.StatusConflict
	case errors.Is(err, ErrTooLarge):
		code = http.StatusRequestEntityTooLarge
	case errors.Is(err, routing.ErrUnroutable):
		// The query itself is malformed for this formation: an endpoint
		// sits inside faulty/disabled territory, so no router could ever
		// deliver. Distinct from OK=false (routable endpoints the router
		// failed to connect).
		code = http.StatusUnprocessableEntity
	case errors.Is(err, ErrBadDelta):
		code = http.StatusBadRequest
	case errors.Is(err, ErrClosed):
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// decodeBody strictly decodes one JSON body into v: unknown fields and
// trailing garbage are errors, and the size cap applies.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	data, err := io.ReadAll(body)
	if err != nil {
		return fmt.Errorf("%w: body: %v", ErrBadDelta, err)
	}
	return decodeStrict(data, v)
}

// decodeStrict is the JSON decoding policy of the API (and the fuzz
// surface): unknown fields rejected, exactly one value.
func decodeStrict(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("%w: %v", ErrBadDelta, err)
	}
	if dec.More() {
		return fmt.Errorf("%w: trailing data after JSON value", ErrBadDelta)
	}
	return nil
}

// CreateRequest is the body of POST /api/tenants.
type CreateRequest struct {
	ID     string       `json:"id"`
	Config TenantConfig `json:"config"`
	// Faults is the initial fault set as [x, y] pairs.
	Faults [][2]int `json:"faults,omitempty"`
}

// DeltaRequest is the body of POST /api/tenants/{id}/deltas.
type DeltaRequest struct {
	// Op is "add" or "remove".
	Op string `json:"op"`
	// Points are the fault coordinates as [x, y] pairs.
	Points [][2]int `json:"points"`
}

// ParseDeltaRequest decodes and validates one delta body — the exact
// decoder FuzzServeDelta hammers. It never panics; every malformed
// input reports ErrBadDelta.
func ParseDeltaRequest(data []byte) (DeltaRequest, []grid.Point, error) {
	var req DeltaRequest
	if err := decodeStrict(data, &req); err != nil {
		return req, nil, err
	}
	if req.Op != opAdd && req.Op != opRemove {
		return req, nil, fmt.Errorf("%w: op %q (want add or remove)", ErrBadDelta, req.Op)
	}
	if len(req.Points) == 0 {
		return req, nil, fmt.Errorf("%w: no points", ErrBadDelta)
	}
	if len(req.Points) > maxDeltaPoints {
		return req, nil, fmt.Errorf("%w: %d points > %d per request", ErrBadDelta, len(req.Points), maxDeltaPoints)
	}
	pts := make([]grid.Point, len(req.Points))
	for i, xy := range req.Points {
		pts[i] = grid.Pt(xy[0], xy[1])
	}
	return req, pts, nil
}

// TenantStatus is the body of GET /api/tenants/{id}.
type TenantStatus struct {
	ID     string       `json:"id"`
	Config TenantConfig `json:"config"`
	Seq    uint64       `json:"seq"`
	Faults int          `json:"faults"`
	Blocks int          `json:"blocks"`
	// Regions is the disabled-region count, Disabled the number of
	// nonfaulty nodes left disabled.
	Regions       int   `json:"regions"`
	Disabled      int   `json:"disabled_nonfaulty"`
	DroppedEvents int64 `json:"dropped_events,omitempty"`
	// Features lists the serving capabilities clients negotiate on:
	// "stages" means delta responses carry the per-stage latency
	// breakdown (ocpload refuses to benchmark stage columns against a
	// server that does not advertise it).
	Features []string `json:"features,omitempty"`
}

func (s *Server) listTenants(w http.ResponseWriter, _ *http.Request) {
	ids := s.svc.Tenants()
	sortStrings(ids)
	writeJSON(w, http.StatusOK, map[string][]string{"tenants": ids})
}

func (s *Server) createTenant(w http.ResponseWriter, r *http.Request) {
	var req CreateRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeErr(w, err)
		return
	}
	faults := make([]grid.Point, len(req.Faults))
	for i, xy := range req.Faults {
		faults[i] = grid.Pt(xy[0], xy[1])
	}
	t, created, err := s.svc.Create(req.ID, req.Config, faults)
	if err != nil {
		writeErr(w, err)
		return
	}
	code := http.StatusOK
	if created {
		code = http.StatusCreated
	}
	writeJSON(w, code, statusOf(t))
}

func statusOf(t *Tenant) TenantStatus {
	snap := t.Snapshot()
	return TenantStatus{
		ID:            t.ID(),
		Config:        t.Config(),
		Seq:           snap.Seq,
		Faults:        snap.Res.Faults.Len(),
		Blocks:        len(snap.Res.Blocks),
		Regions:       len(snap.Res.Regions),
		Disabled:      snap.Res.DisabledNonfaultyCount(),
		DroppedEvents: t.Dropped(),
		Features:      t.svc.Features(),
	}
}

func (s *Server) tenant(w http.ResponseWriter, r *http.Request) (*Tenant, bool) {
	t, err := s.svc.Tenant(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return nil, false
	}
	return t, true
}

func (s *Server) tenantStatus(w http.ResponseWriter, r *http.Request) {
	if t, ok := s.tenant(w, r); ok {
		writeJSON(w, http.StatusOK, statusOf(t))
	}
}

func (s *Server) deleteTenant(w http.ResponseWriter, r *http.Request) {
	if err := s.svc.Delete(r.PathValue("id")); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"deleted": true})
}

// DeltaResponse is the body of POST /api/tenants/{id}/deltas.
type DeltaResponse struct {
	Seq uint64 `json:"seq"`
	// Applied is how many points actually changed fault state (inputs
	// already in the target state are skipped).
	Applied  int `json:"applied"`
	Frontier int `json:"frontier,omitempty"`
	Rounds   int `json:"rounds,omitempty"`
	Changed  int `json:"changed,omitempty"`
	// Batched is how many concurrent requests the delta's batch
	// coalesced into shared engine passes.
	Batched int `json:"batched,omitempty"`
	// Stages is the server-side per-stage latency attribution of this
	// request (absent when the server runs with stages disabled).
	Stages *StageBreakdown `json:"stages,omitempty"`
}

func (s *Server) postDelta(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	data, err := io.ReadAll(body)
	if err != nil {
		writeErr(w, fmt.Errorf("%w: body: %v", ErrBadDelta, err))
		return
	}
	_, pts, err := ParseDeltaRequest(data)
	if err != nil {
		writeErr(w, err)
		return
	}
	var req DeltaRequest
	_ = json.Unmarshal(data, &req) // already validated by ParseDeltaRequest
	resp, err := s.svc.Apply(r.PathValue("id"), req.Op, pts)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, DeltaResponse{
		Seq:      resp.Seq,
		Applied:  resp.Delta.Points,
		Frontier: resp.Delta.Frontier,
		Rounds:   resp.Delta.Rounds(),
		Changed:  resp.Delta.ChangedPhase1 + resp.Delta.ChangedPhase2,
		Batched:  resp.Batched,
		Stages:   resp.Stages,
	})
}

// LabelsResponse is the body of GET /api/tenants/{id}/labels: both
// label planes in the packed snapshot encoding, pinned to one sequence
// number (readers see no torn state across the two planes).
type LabelsResponse struct {
	Seq     uint64 `json:"seq"`
	Width   int    `json:"width"`
	Height  int    `json:"height"`
	Unsafe  string `json:"unsafe_words"`
	Enabled string `json:"enabled_words"`
}

func (s *Server) labels(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tenant(w, r)
	if !ok {
		return
	}
	snap := t.Snapshot()
	s.observeQuery("labels", func() {
		writeJSON(w, http.StatusOK, LabelsResponse{
			Seq:     snap.Seq,
			Width:   snap.Res.Topo.Width(),
			Height:  snap.Res.Topo.Height(),
			Unsafe:  packPlane(snap.Res.Topo, snap.Res.Unsafe),
			Enabled: packPlane(snap.Res.Topo, snap.Res.Enabled),
		})
	})
}

// RegionJSON is one region in a RegionsResponse.
type RegionJSON struct {
	// Min and Max are the bounding rectangle corners.
	Min    [2]int `json:"min"`
	Max    [2]int `json:"max"`
	Size   int    `json:"size"`
	Faults int    `json:"faults"`
	// Nodes is the sorted node list, present with ?nodes=1 only.
	Nodes [][2]int `json:"nodes,omitempty"`
}

// RegionsResponse is the body of GET /api/tenants/{id}/regions.
type RegionsResponse struct {
	Seq     uint64       `json:"seq"`
	Blocks  []RegionJSON `json:"blocks"`
	Regions []RegionJSON `json:"regions"`
}

func regionJSON(rs []*region.Region, withNodes bool) []RegionJSON {
	out := make([]RegionJSON, len(rs))
	for i, reg := range rs {
		b := reg.Bounds()
		out[i] = RegionJSON{
			Min:    [2]int{b.MinX, b.MinY},
			Max:    [2]int{b.MaxX, b.MaxY},
			Size:   reg.Size(),
			Faults: reg.Faults.Len(),
		}
		if withNodes {
			pts := reg.Nodes.Points()
			grid.SortPoints(pts)
			nodes := make([][2]int, len(pts))
			for k, p := range pts {
				nodes[k] = [2]int{p.X, p.Y}
			}
			out[i].Nodes = nodes
		}
	}
	return out
}

func (s *Server) regions(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tenant(w, r)
	if !ok {
		return
	}
	snap := t.Snapshot()
	withNodes := r.URL.Query().Get("nodes") == "1"
	s.observeQuery("regions", func() {
		writeJSON(w, http.StatusOK, RegionsResponse{
			Seq:     snap.Seq,
			Blocks:  regionJSON(snap.Res.Blocks, withNodes),
			Regions: regionJSON(snap.Res.Regions, withNodes),
		})
	})
}

// RouteResponse is the body of GET /api/tenants/{id}/route. OK=false
// with a Reason is a legitimate serving answer (the router could not
// deliver), not an HTTP error.
type RouteResponse struct {
	Seq    uint64   `json:"seq"`
	OK     bool     `json:"ok"`
	Hops   int      `json:"hops,omitempty"`
	Path   [][2]int `json:"path,omitempty"`
	Reason string   `json:"reason,omitempty"`
}

// parsePoint parses "x,y".
func parsePoint(s string) (grid.Point, error) {
	x, y, ok := strings.Cut(s, ",")
	if !ok {
		return grid.Point{}, fmt.Errorf("%w: point %q (want x,y)", ErrBadDelta, s)
	}
	xi, err := strconv.Atoi(strings.TrimSpace(x))
	if err != nil {
		return grid.Point{}, fmt.Errorf("%w: point %q: %v", ErrBadDelta, s, err)
	}
	yi, err := strconv.Atoi(strings.TrimSpace(y))
	if err != nil {
		return grid.Point{}, fmt.Errorf("%w: point %q: %v", ErrBadDelta, s, err)
	}
	return grid.Pt(xi, yi), nil
}

func (s *Server) route(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tenant(w, r)
	if !ok {
		return
	}
	q := r.URL.Query()
	src, err := parsePoint(q.Get("src"))
	if err != nil {
		writeErr(w, err)
		return
	}
	dst, err := parsePoint(q.Get("dst"))
	if err != nil {
		writeErr(w, err)
		return
	}
	s.observeQuery("route", func() {
		path, snap, rerr := t.Route(src, dst, q.Get("model"), q.Get("router"))
		if rerr != nil {
			if errors.Is(rerr, ErrBadDelta) || errors.Is(rerr, routing.ErrUnroutable) {
				writeErr(w, rerr)
				return
			}
			writeJSON(w, http.StatusOK, RouteResponse{Seq: snap.Seq, OK: false, Reason: rerr.Error()})
			return
		}
		hops := make([][2]int, len(path))
		for i, p := range path {
			hops[i] = [2]int{p.X, p.Y}
		}
		writeJSON(w, http.StatusOK, RouteResponse{Seq: snap.Seq, OK: true, Hops: path.Len(), Path: hops})
	})
}

// RoutesRequest is the body of POST /api/tenants/{id}/routes: a batch
// of route queries answered off one consistent snapshot. Queries are
// [sx, sy, dx, dy] quadruples; Router is "indexed" (default) or
// "detour"; Paths asks for full hop lists instead of hop counts only.
type RoutesRequest struct {
	Queries [][4]int `json:"queries"`
	Model   string   `json:"model,omitempty"`
	Router  string   `json:"router,omitempty"`
	Paths   bool     `json:"paths,omitempty"`
}

// RouteAnswer is one element of RoutesResponse.Answers, in query order.
// Unroutable marks per-query endpoint rejections (the batch analogue of
// the single-route 422).
type RouteAnswer struct {
	OK         bool     `json:"ok"`
	Hops       int      `json:"hops,omitempty"`
	Path       [][2]int `json:"path,omitempty"`
	Reason     string   `json:"reason,omitempty"`
	Unroutable bool     `json:"unroutable,omitempty"`
}

// RoutesResponse is the body of POST /api/tenants/{id}/routes.
type RoutesResponse struct {
	Seq     uint64        `json:"seq"`
	Answers []RouteAnswer `json:"answers"`
}

func (s *Server) routes(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tenant(w, r)
	if !ok {
		return
	}
	var req RoutesRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeErr(w, err)
		return
	}
	if len(req.Queries) > maxRouteQueries {
		writeErr(w, fmt.Errorf("%w: %d queries exceeds the limit of %d", ErrBadDelta, len(req.Queries), maxRouteQueries))
		return
	}
	qs := make([]routeidx.Query, len(req.Queries))
	for i, q := range req.Queries {
		qs[i] = routeidx.Query{Src: grid.Pt(q[0], q[1]), Dst: grid.Pt(q[2], q[3])}
	}
	s.observeQuery("routes", func() {
		answers, snap, err := t.RouteMany(qs, req.Model, req.Router, req.Paths)
		if err != nil {
			writeErr(w, err)
			return
		}
		resp := RoutesResponse{Seq: snap.Seq, Answers: make([]RouteAnswer, len(answers))}
		for i, a := range answers {
			if a.Err != nil {
				resp.Answers[i] = RouteAnswer{Reason: a.Err.Error(), Unroutable: errors.Is(a.Err, routing.ErrUnroutable)}
				continue
			}
			ra := RouteAnswer{OK: true, Hops: a.Hops}
			if req.Paths {
				ra.Path = make([][2]int, len(a.Path))
				for j, p := range a.Path {
					ra.Path[j] = [2]int{p.X, p.Y}
				}
			}
			resp.Answers[i] = ra
		}
		writeJSON(w, http.StatusOK, resp)
	})
}

// DisjointResponse is the body of GET /api/tenants/{id}/disjoint.
// Found may be less than Requested when the formation's vertex cuts
// between the endpoints are smaller than k.
type DisjointResponse struct {
	Seq       uint64     `json:"seq"`
	Requested int        `json:"requested"`
	Found     int        `json:"found"`
	Paths     [][][2]int `json:"paths"`
}

func (s *Server) disjoint(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tenant(w, r)
	if !ok {
		return
	}
	q := r.URL.Query()
	src, err := parsePoint(q.Get("src"))
	if err != nil {
		writeErr(w, err)
		return
	}
	dst, err := parsePoint(q.Get("dst"))
	if err != nil {
		writeErr(w, err)
		return
	}
	k := 2
	if kq := q.Get("k"); kq != "" {
		if k, err = strconv.Atoi(kq); err != nil {
			writeErr(w, fmt.Errorf("%w: k %q: %v", ErrBadDelta, kq, err))
			return
		}
	}
	s.observeQuery("disjoint", func() {
		out, snap, derr := t.DisjointPaths(src, dst, k, q.Get("model"))
		if derr != nil {
			writeErr(w, derr)
			return
		}
		resp := DisjointResponse{Seq: snap.Seq, Requested: out.Requested, Found: out.Found, Paths: make([][][2]int, len(out.Paths))}
		for i, p := range out.Paths {
			hops := make([][2]int, len(p))
			for j, pt := range p {
				hops[j] = [2]int{pt.X, pt.Y}
			}
			resp.Paths[i] = hops
		}
		writeJSON(w, http.StatusOK, resp)
	})
}

func (s *Server) snapshot(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tenant(w, r)
	if !ok {
		return
	}
	s.observeQuery("snapshot", func() {
		writeJSON(w, http.StatusOK, t.TakeSnapshot())
	})
}

func (s *Server) restore(w http.ResponseWriter, r *http.Request) {
	var snap TenantSnapshot
	if err := decodeBody(w, r, &snap); err != nil {
		writeErr(w, err)
		return
	}
	t, err := s.svc.Restore(r.PathValue("id"), &snap)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, statusOf(t))
}

// events streams the tenant's formation events as server-sent events:
// one "data:" line per applied delta. The stream ends when the client
// disconnects, the tenant is deleted, or the service shuts down. A
// client that cannot keep up misses events (the per-subscriber buffer
// is bounded); the tenant status reports the drop count.
func (s *Server) events(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tenant(w, r)
	if !ok {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	id, ch := t.Subscribe()
	defer t.Unsubscribe(id)
	for {
		select {
		case e, ok := <-ch:
			if !ok {
				return
			}
			data, err := json.Marshal(e)
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "data: %s\n\n", data); err != nil {
				return
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// observeQuery wraps one read-path handler with the serve_query
// latency metric.
func (s *Server) observeQuery(kind string, fn func()) {
	rec := s.svc.opts.Recorder
	if rec == nil {
		fn()
		return
	}
	start := time.Now()
	fn()
	rec.Counter("serve_queries").Inc()
	rec.Counter("serve_query_" + kind).Inc()
	rec.Histogram("serve_query_ns", obs.NSBuckets).Observe(float64(time.Since(start).Nanoseconds()))
}

// sortStrings is sort.Strings without dragging sort into every file.
func sortStrings(ss []string) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j] < ss[j-1]; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}
