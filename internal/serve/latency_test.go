// Latency-attribution tests: the serve_request stage breakdown must
// telescope exactly — queue + batch + compute + publish equals the
// end-to-end latency for every request, always, because all five
// numbers derive from one chain of monotonic stamps. These tests pin
// that contract, the stages feature negotiation, and the flight
// recorder's dump-on-invariant-violation behavior under live load.
package serve_test

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"ocpmesh/internal/grid"
	"ocpmesh/internal/obs"
	"ocpmesh/internal/serve"
)

func stageTestService(t *testing.T, opts serve.Options, tenants int) (*serve.Service, *obs.CollectSink) {
	t.Helper()
	sink := &obs.CollectSink{}
	if opts.Recorder == nil {
		opts.Recorder = obs.NewRecorder(obs.NewTracer(sink), obs.NewRegistry())
	}
	svc := serve.New(opts)
	t.Cleanup(func() { svc.Close() })
	for i := 0; i < tenants; i++ {
		cfg := serve.TenantConfig{Width: 16, Height: 16, Engine: "bitset"}
		if _, _, err := svc.Create(fmt.Sprintf("t%d", i), cfg, nil); err != nil {
			t.Fatalf("create t%d: %v", i, err)
		}
	}
	return svc, sink
}

// TestServeStageSumsExact is the acceptance pin for latency
// attribution: under concurrent load across tenants and shards, every
// serve_request event's stage fields sum to exactly its end-to-end
// duration, request ids are unique, and shard ids are 1-based.
func TestServeStageSumsExact(t *testing.T) {
	const shards, tenants, workers, perWorker = 3, 4, 8, 25
	svc, sink := stageTestService(t, serve.Options{Shards: shards}, tenants)

	if got := svc.Features(); len(got) != 1 || got[0] != "stages" {
		t.Fatalf("Features() = %v, want [stages]", got)
	}

	var mu sync.Mutex
	var responses []serve.Response
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				op := "add"
				if i%2 == 1 {
					op = "remove"
				}
				id := fmt.Sprintf("t%d", (w+i)%tenants)
				resp, err := svc.Apply(id, op, []grid.Point{grid.Pt((w*3+i)%16, i%16)})
				if err != nil {
					t.Errorf("apply %s: %v", id, err)
					return
				}
				mu.Lock()
				responses = append(responses, resp)
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	for i, resp := range responses {
		b := resp.Stages
		if b == nil {
			t.Fatalf("response %d has no stage breakdown", i)
		}
		if sum := b.QueueNS + b.BatchNS + b.ComputeNS + b.PublishNS; sum != b.TotalNS {
			t.Fatalf("response %d stages sum to %d, total is %d: %+v", i, sum, b.TotalNS, b)
		}
	}

	events := sink.Filter(obs.EServeRequest)
	if len(events) != workers*perWorker {
		t.Fatalf("%d serve_request events, want one per request (%d)", len(events), workers*perWorker)
	}
	seen := make(map[int64]bool, len(events))
	for _, e := range events {
		if sum := e.QueueNS + e.BatchNS + e.ComputeNS + e.PublishNS; sum != e.DurNS {
			t.Fatalf("serve_request req=%d: stages sum to %d, dur_ns is %d: %+v", e.Req, sum, e.DurNS, e)
		}
		if e.QueueNS < 0 || e.BatchNS < 0 || e.ComputeNS < 0 || e.PublishNS < 0 {
			t.Fatalf("serve_request req=%d has a negative stage: %+v", e.Req, e)
		}
		if e.Req <= 0 || seen[e.Req] {
			t.Fatalf("serve_request id %d missing or duplicated", e.Req)
		}
		seen[e.Req] = true
		if e.Shard < 1 || e.Shard > shards {
			t.Fatalf("serve_request req=%d shard %d out of 1..%d", e.Req, e.Shard, shards)
		}
		if e.Tenant == "" || e.Name == "" {
			t.Fatalf("serve_request req=%d missing tenant or op: %+v", e.Req, e)
		}
	}
}

// TestServeStageMetrics checks the cached serve_stage_* histogram
// family and per-tenant attribution counters observe every request.
func TestServeStageMetrics(t *testing.T) {
	sink := &obs.CollectSink{}
	rec := obs.NewRecorder(obs.NewTracer(sink), obs.NewRegistry())
	svc, _ := stageTestService(t, serve.Options{Shards: 2, Recorder: rec}, 1)

	const n = 20
	for i := 0; i < n; i++ {
		if _, err := svc.Apply("t0", "add", []grid.Point{grid.Pt(i%16, i/16)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := rec.Counter("serve_requests").Value(); got != n {
		t.Fatalf("serve_requests = %d, want %d", got, n)
	}
	for _, stage := range []string{"queue", "batch", "compute", "publish", "total"} {
		h := rec.Histogram("serve_stage_"+stage+"_ns", obs.NSBuckets)
		if got := h.Count(); got != n {
			t.Fatalf("serve_stage_%s_ns count = %d, want %d", stage, got, n)
		}
	}
	if got := rec.Counter("serve_tenant_requests:t0").Value(); got != n {
		t.Fatalf("serve_tenant_requests:t0 = %d, want %d", got, n)
	}
	if rec.Counter("serve_tenant_busy_ns:t0").Value() <= 0 {
		t.Fatal("serve_tenant_busy_ns:t0 never accumulated")
	}
}

// TestServeStagesDisabled: the -stages=false baseline leg carries no
// stamps, no serve_request events, no response breakdowns, and
// advertises no stages feature — this is what the overhead gate
// compares against.
func TestServeStagesDisabled(t *testing.T) {
	svc, sink := stageTestService(t, serve.Options{Shards: 1, DisableStages: true}, 1)
	if got := svc.Features(); got != nil {
		t.Fatalf("Features() = %v, want nil with stages disabled", got)
	}
	resp, err := svc.Apply("t0", "add", []grid.Point{grid.Pt(1, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Stages != nil {
		t.Fatalf("response carries stages %+v with stages disabled", resp.Stages)
	}
	if got := sink.Filter(obs.EServeRequest); len(got) != 0 {
		t.Fatalf("%d serve_request events with stages disabled", len(got))
	}
	// The delta stream itself is unaffected.
	if got := sink.Filter(obs.EServeDelta); len(got) == 0 {
		t.Fatal("no serve_delta events: disabling stages must not mute the delta stream")
	}
}

// TestServeStagesWithoutRecorder: stage breakdowns ride the response
// even with no recorder wired, so feature negotiation holds for
// in-process services too.
func TestServeStagesWithoutRecorder(t *testing.T) {
	svc := serve.New(serve.Options{Shards: 1})
	defer svc.Close()
	if _, _, err := svc.Create("t0", serve.TenantConfig{Width: 8, Height: 8}, nil); err != nil {
		t.Fatal(err)
	}
	if got := svc.Features(); len(got) != 1 || got[0] != "stages" {
		t.Fatalf("Features() = %v, want [stages]", got)
	}
	resp, err := svc.Apply("t0", "add", []grid.Point{grid.Pt(2, 3)})
	if err != nil {
		t.Fatal(err)
	}
	b := resp.Stages
	if b == nil {
		t.Fatal("no stage breakdown without a recorder")
	}
	if sum := b.QueueNS + b.BatchNS + b.ComputeNS + b.PublishNS; sum != b.TotalNS {
		t.Fatalf("stages sum to %d, total is %d: %+v", sum, b.TotalNS, b)
	}
}

// TestServeFlightDumpUnderLoad is the flight-recorder integration pin:
// an invariant_violation injected while the service is under live load
// produces exactly one dump whose last line is the trigger and whose
// preceding lines are the ring of events leading up to it; a second
// violation inside the window is suppressed, not dumped again.
func TestServeFlightDumpUnderLoad(t *testing.T) {
	dir := t.TempDir()
	flight := obs.NewFlightRecorder(obs.FlightConfig{Size: 4096, Dir: dir, Window: time.Hour})
	sink := &obs.CollectSink{}
	rec := obs.NewRecorder(obs.NewTracer(obs.MultiSink(sink, flight)), obs.NewRegistry())
	svc, _ := stageTestService(t, serve.Options{Shards: 2, Recorder: rec}, 2)

	// Warm synchronously so the ring provably holds serve_request
	// context before the trigger fires.
	for i := 0; i < 20; i++ {
		if _, err := svc.Apply(fmt.Sprintf("t%d", i%2), "add", []grid.Point{grid.Pt(i%16, i%16)}); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				op := "add"
				if i%2 == 1 {
					op = "remove"
				}
				if _, err := svc.Apply(fmt.Sprintf("t%d", w%2), op, []grid.Point{grid.Pt((w+i)%16, i%16)}); err != nil {
					t.Errorf("apply under load: %v", err)
					return
				}
			}
		}(w)
	}

	rec.Emit(obs.Event{Type: obs.EInvariantViolation, Name: "injected", Err: "flight test trigger"})
	rec.Emit(obs.Event{Type: obs.EInvariantViolation, Name: "injected_again", Err: "should be suppressed"})
	close(stop)
	wg.Wait()

	files, err := filepath.Glob(filepath.Join(dir, "flight-*.ndjson"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 {
		t.Fatalf("flight dumps = %v, want exactly one", files)
	}
	st := flight.Status()
	if st.Dumps != 1 || st.Suppressed != 1 {
		t.Fatalf("flight status %+v, want 1 dump and 1 suppressed", st)
	}

	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	var events []obs.Event
	for i, line := range splitLines(data) {
		var e obs.Event
		if err := json.Unmarshal(line, &e); err != nil {
			t.Fatalf("dump line %d is not a valid event: %v", i+1, err)
		}
		events = append(events, e)
	}
	if len(events) < 21 {
		t.Fatalf("dump holds %d events, want the warm ring plus trigger", len(events))
	}
	last := events[len(events)-1]
	if last.Type != obs.EInvariantViolation || last.Name != "injected" {
		t.Fatalf("dump's last event is %+v, want the injected trigger", last)
	}
	reqs := 0
	for _, e := range events[:len(events)-1] {
		if e.Type == obs.EServeRequest {
			reqs++
		}
	}
	if reqs < 20 {
		t.Fatalf("dump holds %d serve_request events before the trigger, want the warm load (>= 20)", reqs)
	}
}

func splitLines(data []byte) [][]byte {
	var lines [][]byte
	start := 0
	for i, b := range data {
		if b == '\n' {
			if i > start {
				lines = append(lines, data[start:i])
			}
			start = i + 1
		}
	}
	if start < len(data) {
		lines = append(lines, data[start:])
	}
	return lines
}
