package serve_test

import (
	"testing"

	"ocpmesh/internal/grid"
	"ocpmesh/internal/obs"
	"ocpmesh/internal/serve"
)

// BenchmarkServeStages pins the latency-attribution overhead budget:
// the served delta path with per-request stage stamping, stage
// histograms, serve_request emission and the flight-recorder ring
// (stages=on) must stay within 5% of the same path with attribution
// disabled (stages=off, the -stages=false baseline). Both legs carry
// an identical recorder + flight sink so only the tentpole's additions
// differ. `make latency-overhead` samples the pair interleaved and
// gates it with `octrace bench overhead -max 0.05`; see
// BenchmarkOverhead in the repo root for why interleaving matters.
func BenchmarkServeStages(b *testing.B) {
	const n = 96
	pool := make([]grid.Point, 8)
	for i := range pool {
		pool[i] = grid.Pt(7+11*i, 5+9*i)
	}
	// The warmup leg absorbs the process ramp (CPU frequency, heap
	// growth, scheduler warm-up): without it the first timed leg reads
	// 30-100% slow, and since leg order inside the binary is fixed the
	// error lands entirely on stages=off and biases the gate. The pair
	// matcher ignores it — no "=off" in the name.
	for _, leg := range []struct {
		name    string
		disable bool
	}{
		{"warmup", true},
		{"delta/stages=off", true},
		{"delta/stages=on", false},
	} {
		b.Run(leg.name, func(b *testing.B) {
			flight := obs.NewFlightRecorder(obs.FlightConfig{Size: 1024})
			rec := obs.NewRecorder(obs.NewTracer(flight), obs.NewRegistry())
			svc := serve.New(serve.Options{Shards: 1, Recorder: rec, DisableStages: leg.disable})
			defer svc.Close()
			cfg := serve.TenantConfig{Width: n, Height: n, Engine: "bitset"}
			if _, _, err := svc.Create("bench", cfg, nil); err != nil {
				b.Fatal(err)
			}
			// Untimed warmup: two full pool passes heat the shard loop,
			// the engine's frontier structures and the heap, so the leg
			// that happens to run first in the process doesn't carry the
			// one-time costs into its timed iterations.
			for i := 0; i < 2*len(pool); i++ {
				op := "add"
				if i >= len(pool) {
					op = "remove"
				}
				if _, err := svc.Apply("bench", op, []grid.Point{pool[i%len(pool)]}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Cycle the pool, flipping each point's fault state on
				// alternate passes, so every delta does a real frontier
				// pass rather than a no-op.
				op := "add"
				if (i/len(pool))%2 == 1 {
					op = "remove"
				}
				if _, err := svc.Apply("bench", op, []grid.Point{pool[i%len(pool)]}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
