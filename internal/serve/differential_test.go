// Serving differential tests: whatever sequence of tenant creates,
// fault deltas, queries, and snapshot/restore round-trips the service
// has been through, the state it serves must be byte-identical to a
// fresh core.Form on the tenant's current fault set. This is the
// serving layer's instance of the repository-wide differential
// invariant (all engines, incremental vs from-scratch, served vs
// computed: one answer).
package serve_test

import (
	"fmt"
	"math/rand"
	"slices"
	"testing"

	"ocpmesh/internal/core"
	"ocpmesh/internal/grid"
	"ocpmesh/internal/mesh"
	"ocpmesh/internal/region"
	"ocpmesh/internal/serve"
	"ocpmesh/internal/simnet/simnettest"
)

var engineNames = []string{"sequential", "channels", "parallel", "bitset"}

// assertServedMatchesFresh pins the served snapshot of tn against a
// from-scratch formation on the same fault set: identical fault set,
// byte-identical label planes, identical blocks and regions.
func assertServedMatchesFresh(t *testing.T, tag string, tn *serve.Tenant) {
	t.Helper()
	snap := tn.Snapshot()
	cfg, err := tn.Config().CoreConfig()
	if err != nil {
		t.Fatalf("%s: config: %v", tag, err)
	}
	fresh, err := core.FormOn(cfg, snap.Res.Topo, snap.Res.Faults)
	if err != nil {
		t.Fatalf("%s: fresh form: %v", tag, err)
	}
	if !snap.Res.Faults.Equal(fresh.Faults) {
		t.Fatalf("%s: served fault set differs from fresh", tag)
	}
	if !slices.Equal(snap.Res.Unsafe, fresh.Unsafe) {
		t.Fatalf("%s: served unsafe plane differs from fresh form (faults=%d)", tag, snap.Res.Faults.Len())
	}
	if !slices.Equal(snap.Res.Enabled, fresh.Enabled) {
		t.Fatalf("%s: served enabled plane differs from fresh form (faults=%d)", tag, snap.Res.Faults.Len())
	}
	if err := sameRegions(snap.Res.Blocks, fresh.Blocks); err != nil {
		t.Fatalf("%s: served faulty blocks differ: %v", tag, err)
	}
	if err := sameRegions(snap.Res.Regions, fresh.Regions); err != nil {
		t.Fatalf("%s: served disabled regions differ: %v", tag, err)
	}
}

// sameRegions compares two region lists structurally: same length, and
// pairwise identical node sets and bounds. Both sides come out of the
// same extraction code on identical labels, so order must match too.
func sameRegions(got, want []*region.Region) error {
	if len(got) != len(want) {
		return fmt.Errorf("%d regions, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Bounds() != want[i].Bounds() {
			return fmt.Errorf("region %d bounds %v, want %v", i, got[i].Bounds(), want[i].Bounds())
		}
		if !got[i].Nodes.Equal(want[i].Nodes) {
			return fmt.Errorf("region %d node set differs", i)
		}
		if !got[i].Faults.Equal(want[i].Faults) {
			return fmt.Errorf("region %d fault set differs", i)
		}
	}
	return nil
}

// tenantMirror tracks what the fault set of a served tenant must be.
type tenantMirror struct {
	id     string
	topo   *mesh.Topology
	faults *grid.PointSet
}

func randomPoints(rng *rand.Rand, topo *mesh.Topology, n int) []grid.Point {
	pts := make([]grid.Point, n)
	for i := range pts {
		pts[i] = grid.Pt(rng.Intn(topo.Width()), rng.Intn(topo.Height()))
	}
	return pts
}

// TestServeDifferentialRandom drives randomized delta/query
// interleavings across several tenants (mixed engines, meshes and tori
// from the simnettest space) and pins the served state against a fresh
// formation after every burst — including across snapshot/restore
// round-trips through a second service.
func TestServeDifferentialRandom(t *testing.T) {
	trials := 10
	if testing.Short() {
		trials = 3
	}
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial=%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(7000 + int64(trial)))
			svc := serve.New(serve.Options{Shards: 1 + rng.Intn(3)})
			defer svc.Close()

			nTenants := 2 + rng.Intn(2)
			mirrors := make([]*tenantMirror, nTenants)
			for i := range mirrors {
				topo := simnettest.RandomTopology(rng, 3, 12, 1.0/3)
				faults := simnettest.RandomFaults(rng, topo, 0.3)
				cfg := serve.TenantConfig{
					Width:  topo.Width(),
					Height: topo.Height(),
					Torus:  topo.Kind() == mesh.Torus2D,
					Engine: engineNames[rng.Intn(len(engineNames))],
				}
				id := fmt.Sprintf("tenant-%d", i)
				_, created, err := svc.Create(id, cfg, faults.Points())
				if err != nil {
					t.Fatalf("create %s: %v", id, err)
				}
				if !created {
					t.Fatalf("create %s: expected a fresh tenant", id)
				}
				mirrors[i] = &tenantMirror{id: id, topo: topo, faults: faults.Clone()}
			}

			ops := 30 + rng.Intn(30)
			for op := 0; op < ops; op++ {
				m := mirrors[rng.Intn(len(mirrors))]
				tn, err := svc.Tenant(m.id)
				if err != nil {
					t.Fatalf("tenant %s: %v", m.id, err)
				}
				switch r := rng.Float64(); {
				case r < 0.55: // fault delta (duplicates and no-ops included)
					kind := "add"
					if rng.Intn(2) == 0 {
						kind = "remove"
					}
					pts := randomPoints(rng, m.topo, 1+rng.Intn(4))
					resp, err := svc.Apply(m.id, kind, pts)
					if err != nil {
						t.Fatalf("apply %s %s: %v", m.id, kind, err)
					}
					for _, p := range pts {
						if kind == "add" {
							m.faults.Add(p)
						} else {
							m.faults.Remove(p)
						}
					}
					if snap := tn.Snapshot(); snap.Seq < resp.Seq {
						t.Fatalf("snapshot seq %d < reply seq %d", snap.Seq, resp.Seq)
					}
				case r < 0.8: // query: the published snapshot matches the mirror
					snap := tn.Snapshot()
					if !snap.Res.Faults.Equal(m.faults) {
						t.Fatalf("%s: served fault set diverged from the applied deltas", m.id)
					}
				default: // route query off the snapshot
					src := grid.Pt(rng.Intn(m.topo.Width()), rng.Intn(m.topo.Height()))
					dst := grid.Pt(rng.Intn(m.topo.Width()), rng.Intn(m.topo.Height()))
					path, snap, err := tn.Route(src, dst, "", "")
					if err == nil && len(path) > 0 {
						if path[0] != src || path[len(path)-1] != dst {
							t.Fatalf("%s: route endpoints %v..%v, want %v..%v at seq %d",
								m.id, path[0], path[len(path)-1], src, dst, snap.Seq)
						}
					}
				}
				if op%10 == 9 {
					assertServedMatchesFresh(t, fmt.Sprintf("%s after op %d", m.id, op), tn)
				}
			}

			// Final differential: every tenant, plus a snapshot/restore
			// round-trip into a second service that must reproduce the
			// serialized planes byte-for-byte and keep serving correctly.
			svc2 := serve.New(serve.Options{Shards: 1})
			defer svc2.Close()
			for _, m := range mirrors {
				tn, err := svc.Tenant(m.id)
				if err != nil {
					t.Fatalf("tenant %s: %v", m.id, err)
				}
				if !tn.Snapshot().Res.Faults.Equal(m.faults) {
					t.Fatalf("%s: final fault set diverged", m.id)
				}
				assertServedMatchesFresh(t, m.id+" final", tn)

				ts := tn.TakeSnapshot()
				restored, err := svc2.Restore("", ts)
				if err != nil {
					t.Fatalf("restore %s: %v", m.id, err)
				}
				ts2 := restored.TakeSnapshot()
				if ts.Unsafe != ts2.Unsafe || ts.Enabled != ts2.Enabled || ts.Checksum != ts2.Checksum {
					t.Fatalf("%s: snapshot round-trip is not byte-identical", m.id)
				}
				if ts.Seq != ts2.Seq {
					t.Fatalf("%s: restored seq %d, want %d", m.id, ts2.Seq, ts.Seq)
				}
				assertServedMatchesFresh(t, m.id+" restored", restored)

				// The restored tenant keeps serving: more churn, still
				// differential against fresh.
				pts := randomPoints(rng, m.topo, 2)
				if _, err := svc2.Apply(m.id, "add", pts); err != nil {
					t.Fatalf("apply after restore %s: %v", m.id, err)
				}
				assertServedMatchesFresh(t, m.id+" restored+delta", restored)
			}
		})
	}
}

// TestServeSnapshotRestoreSameService pins the delete → restore cycle
// within one service: serialized state survives its tenant's teardown.
func TestServeSnapshotRestoreSameService(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	svc := serve.New(serve.Options{Shards: 2})
	defer svc.Close()

	topo := mesh.MustNew(24, 16, mesh.Mesh2D)
	faults := simnettest.RandomFaultCount(rng, topo, 30)
	cfg := serve.TenantConfig{Width: 24, Height: 16, Engine: "bitset"}
	if _, _, err := svc.Create("cycle", cfg, faults.Points()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := svc.Apply("cycle", "add", randomPoints(rng, topo, 3)); err != nil {
			t.Fatal(err)
		}
	}
	tn, err := svc.Tenant("cycle")
	if err != nil {
		t.Fatal(err)
	}
	ts := tn.TakeSnapshot()

	// Restore over a live tenant must refuse; after delete it must work.
	if _, err := svc.Restore("cycle", ts); err == nil {
		t.Fatal("restore over a live tenant should fail")
	}
	if err := svc.Delete("cycle"); err != nil {
		t.Fatal(err)
	}
	restored, err := svc.Restore("cycle", ts)
	if err != nil {
		t.Fatal(err)
	}
	if got := restored.TakeSnapshot(); got.Checksum != ts.Checksum {
		t.Fatalf("restored checksum %s, want %s", got.Checksum, ts.Checksum)
	}
	assertServedMatchesFresh(t, "cycle restored", restored)
	if _, err := svc.Apply("cycle", "remove", faults.Points()[:5]); err != nil {
		t.Fatal(err)
	}
	assertServedMatchesFresh(t, "cycle restored+delta", restored)
}

// TestServeSnapshotRejectsCorruption pins the restore validation: a
// tampered fault list, label plane, or checksum must be refused, never
// served.
func TestServeSnapshotRejectsCorruption(t *testing.T) {
	svc := serve.New(serve.Options{Shards: 1})
	defer svc.Close()
	if _, _, err := svc.Create("src", serve.TenantConfig{Width: 8, Height: 8},
		[]grid.Point{grid.Pt(2, 2), grid.Pt(3, 2)}); err != nil {
		t.Fatal(err)
	}
	tn, err := svc.Tenant("src")
	if err != nil {
		t.Fatal(err)
	}
	base := tn.TakeSnapshot()

	cases := map[string]func(*serve.TenantSnapshot){
		"checksum":      func(ts *serve.TenantSnapshot) { ts.Checksum = "fnv64a:0000000000000000" },
		"fault-added":   func(ts *serve.TenantSnapshot) { ts.Faults = append(ts.Faults, [2]int{5, 5}) },
		"fault-outside": func(ts *serve.TenantSnapshot) { ts.Faults[0] = [2]int{99, 99} },
		"plane-galled":  func(ts *serve.TenantSnapshot) { ts.Unsafe = "not base64!" },
		"plane-swapped": func(ts *serve.TenantSnapshot) { ts.Unsafe, ts.Enabled = ts.Enabled, ts.Unsafe },
		"version":       func(ts *serve.TenantSnapshot) { ts.Version = 99 },
	}
	for name, corrupt := range cases {
		ts := *base
		ts.Faults = append([][2]int(nil), base.Faults...)
		corrupt(&ts)
		if _, err := svc.Restore("dst-"+name, &ts); err == nil {
			t.Errorf("%s: corrupted snapshot restored without error", name)
		}
	}
	// The pristine snapshot still restores (the table above did not
	// mutate it).
	if _, err := svc.Restore("dst-ok", base); err != nil {
		t.Fatalf("pristine snapshot refused: %v", err)
	}
}
