// Serving tests for the routing query layer: the 422 unroutable
// contract, the batch routes endpoint, service-level equality between
// the indexed and walk-based routers, and incremental maintenance of
// the snapshot's precompiled index across delta batches and restore.
package serve_test

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"testing"

	"ocpmesh/internal/grid"
	"ocpmesh/internal/routeidx"
	"ocpmesh/internal/routing"
	"ocpmesh/internal/serve"
)

func TestHTTPRouteUnroutable(t *testing.T) {
	ts, _ := newTestServer(t, serve.Options{Shards: 1})
	if resp, body := doJSON(t, "POST", ts.URL+"/api/tenants", serve.CreateRequest{
		ID:     "u",
		Config: serve.TenantConfig{Width: 12, Height: 12},
		Faults: [][2]int{{5, 5}, {6, 6}},
	}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d %s", resp.StatusCode, body)
	}

	// A faulty source is a malformed query, not a routing failure: 422
	// for every router.
	for _, router := range []string{"", "detour", "indexed", "xy", "bfs"} {
		resp, body := doJSON(t, "GET", ts.URL+"/api/tenants/u/route?src=5,5&dst=0,0&router="+router, nil)
		if resp.StatusCode != http.StatusUnprocessableEntity {
			t.Fatalf("router %q faulty src: %d %s, want 422", router, resp.StatusCode, body)
		}
	}
	// Faulty destination too.
	if resp, _ := doJSON(t, "GET", ts.URL+"/api/tenants/u/route?src=0,0&dst=6,6", nil); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("faulty dst: %d, want 422", resp.StatusCode)
	}
	// Routable endpoints still answer 200.
	resp, body := doJSON(t, "GET", ts.URL+"/api/tenants/u/route?src=0,0&dst=11,11&router=indexed", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("routable pair: %d %s", resp.StatusCode, body)
	}
	var rr serve.RouteResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if !rr.OK || rr.Hops == 0 {
		t.Fatalf("routable pair response %+v", rr)
	}
	// In a batch, unroutable queries fail individually instead of
	// failing the request.
	resp, body = doJSON(t, "POST", ts.URL+"/api/tenants/u/routes", serve.RoutesRequest{
		Queries: [][4]int{{0, 0, 11, 11}, {5, 5, 0, 0}, {1, 1, 10, 2}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: %d %s", resp.StatusCode, body)
	}
	var br serve.RoutesResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Answers) != 3 {
		t.Fatalf("batch answers %d, want 3", len(br.Answers))
	}
	if !br.Answers[0].OK || !br.Answers[2].OK {
		t.Fatalf("routable batch queries failed: %+v", br.Answers)
	}
	if br.Answers[1].OK || !br.Answers[1].Unroutable {
		t.Fatalf("unroutable batch query %+v", br.Answers[1])
	}
}

func TestHTTPRoutesBatch(t *testing.T) {
	ts, _ := newTestServer(t, serve.Options{Shards: 1})
	if resp, body := doJSON(t, "POST", ts.URL+"/api/tenants", serve.CreateRequest{
		ID:     "b",
		Config: serve.TenantConfig{Width: 16, Height: 16},
		Faults: [][2]int{{4, 4}, {5, 5}, {4, 5}, {10, 10}},
	}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d %s", resp.StatusCode, body)
	}
	queries := [][4]int{{0, 0, 15, 15}, {1, 8, 14, 8}, {8, 0, 8, 15}, {2, 2, 2, 2}}
	resp, body := doJSON(t, "POST", ts.URL+"/api/tenants/b/routes", serve.RoutesRequest{
		Queries: queries, Paths: true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: %d %s", resp.StatusCode, body)
	}
	var br serve.RoutesResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	// Each batch answer agrees with the single-route endpoint on the
	// same snapshot.
	for i, q := range queries {
		a := br.Answers[i]
		if !a.OK {
			t.Fatalf("query %d failed: %+v", i, a)
		}
		url := fmt.Sprintf("%s/api/tenants/b/route?router=indexed&src=%d,%d&dst=%d,%d",
			ts.URL, q[0], q[1], q[2], q[3])
		sresp, sbody := doJSON(t, "GET", url, nil)
		if sresp.StatusCode != http.StatusOK {
			t.Fatalf("single %d: %d %s", i, sresp.StatusCode, sbody)
		}
		var rr serve.RouteResponse
		if err := json.Unmarshal(sbody, &rr); err != nil {
			t.Fatal(err)
		}
		if rr.Hops != a.Hops || len(rr.Path) != len(a.Path) {
			t.Fatalf("query %d: batch %d hops/%d path, single %d/%d", i, a.Hops, len(a.Path), rr.Hops, len(rr.Path))
		}
		for j := range rr.Path {
			if rr.Path[j] != a.Path[j] {
				t.Fatalf("query %d: paths diverge at %d", i, j)
			}
		}
	}
	// The detour batch router answers identically.
	resp, body = doJSON(t, "POST", ts.URL+"/api/tenants/b/routes", serve.RoutesRequest{
		Queries: queries, Router: "detour", Paths: true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("detour batch: %d %s", resp.StatusCode, body)
	}
	var dr serve.RoutesResponse
	if err := json.Unmarshal(body, &dr); err != nil {
		t.Fatal(err)
	}
	for i := range br.Answers {
		if br.Answers[i].Hops != dr.Answers[i].Hops {
			t.Fatalf("query %d: indexed %d hops, detour %d", i, br.Answers[i].Hops, dr.Answers[i].Hops)
		}
	}
	// Contract errors: unknown batch router and the indexed router on a
	// non-regions model are 400s.
	if resp, _ := doJSON(t, "POST", ts.URL+"/api/tenants/b/routes", serve.RoutesRequest{
		Queries: queries, Router: "bogus",
	}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown router: %d, want 400", resp.StatusCode)
	}
	if resp, _ := doJSON(t, "POST", ts.URL+"/api/tenants/b/routes", serve.RoutesRequest{
		Queries: queries, Model: "blocks",
	}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("indexed on blocks: %d, want 400", resp.StatusCode)
	}
}

func TestHTTPDisjoint(t *testing.T) {
	ts, _ := newTestServer(t, serve.Options{Shards: 1})
	if resp, body := doJSON(t, "POST", ts.URL+"/api/tenants", serve.CreateRequest{
		ID:     "d",
		Config: serve.TenantConfig{Width: 12, Height: 12},
		Faults: [][2]int{{5, 5}, {6, 6}, {5, 6}},
	}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d %s", resp.StatusCode, body)
	}
	resp, body := doJSON(t, "GET", ts.URL+"/api/tenants/d/disjoint?src=1,5&dst=10,6&k=3", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("disjoint: %d %s", resp.StatusCode, body)
	}
	var dr serve.DisjointResponse
	if err := json.Unmarshal(body, &dr); err != nil {
		t.Fatal(err)
	}
	if dr.Requested != 3 || dr.Found < 2 || len(dr.Paths) != dr.Found {
		t.Fatalf("disjoint response %+v", dr)
	}
	// Interior nodes other than the endpoints must not repeat across
	// paths (the wire-level half of the disjointness contract).
	used := map[[2]int]bool{}
	for _, p := range dr.Paths {
		for _, q := range p[1 : len(p)-1] {
			if used[q] {
				t.Fatalf("interior node %v on two paths", q)
			}
			used[q] = true
		}
	}
	if resp, _ := doJSON(t, "GET", ts.URL+"/api/tenants/d/disjoint?src=1,5&dst=10,6&k=99", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("k out of range: %d, want 400", resp.StatusCode)
	}
	if resp, _ := doJSON(t, "GET", ts.URL+"/api/tenants/d/disjoint?src=5,5&dst=10,6&k=2", nil); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("faulty src: %d, want 422", resp.StatusCode)
	}
}

// TestServeIndexedMatchesDetour pins the service-level routers against
// each other across delta batches: every sampled pair answers with the
// exact same path through "indexed" and "detour".
func TestServeIndexedMatchesDetour(t *testing.T) {
	svc := serve.New(serve.Options{Shards: 1})
	defer svc.Close()
	tn, _, err := svc.Create("m", serve.TenantConfig{Width: 24, Height: 24, Torus: true},
		[]grid.Point{grid.Pt(4, 4), grid.Pt(5, 5), grid.Pt(4, 5), grid.Pt(16, 17)})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	deltas := [][]grid.Point{
		{grid.Pt(12, 3), grid.Pt(12, 4)},
		{grid.Pt(20, 20), grid.Pt(21, 20), grid.Pt(20, 21)},
		{grid.Pt(0, 12)},
	}
	for step, pts := range deltas {
		if _, err := svc.Apply("m", "add", pts); err != nil {
			t.Fatal(err)
		}
		snap := tn.Snapshot()
		pairs := routing.SamplePairs(snap.Res, 40, rng)
		qs := make([]routeidx.Query, len(pairs))
		for i, pr := range pairs {
			qs[i] = routeidx.Query{Src: pr[0], Dst: pr[1]}
			want, _, werr := tn.Route(pr[0], pr[1], "", "detour")
			got, _, gerr := tn.Route(pr[0], pr[1], "", "indexed")
			if (werr == nil) != (gerr == nil) {
				t.Fatalf("step %d %v->%v: detour err=%v, indexed err=%v", step, pr[0], pr[1], werr, gerr)
			}
			if werr != nil {
				continue
			}
			if len(want) != len(got) {
				t.Fatalf("step %d %v->%v: detour %d nodes, indexed %d", step, pr[0], pr[1], len(want), len(got))
			}
			for j := range want {
				if want[j] != got[j] {
					t.Fatalf("step %d %v->%v: paths diverge at %d", step, pr[0], pr[1], j)
				}
			}
		}
		// The batch API agrees with the loop above query by query.
		idx, _, err := tn.RouteMany(qs, "", "indexed", false)
		if err != nil {
			t.Fatal(err)
		}
		det, _, err := tn.RouteMany(qs, "", "detour", false)
		if err != nil {
			t.Fatal(err)
		}
		for i := range qs {
			if (idx[i].Err == nil) != (det[i].Err == nil) || idx[i].Hops != det[i].Hops {
				t.Fatalf("step %d batch query %d: indexed %+v, detour %+v", step, i, idx[i], det[i])
			}
		}
	}
}

// TestServeSnapshotRoutesIncremental pins the incrementally rebuilt
// index published with each snapshot byte-identical to a from-scratch
// compile over the same result — including after restore.
func TestServeSnapshotRoutesIncremental(t *testing.T) {
	svc := serve.New(serve.Options{Shards: 1})
	defer svc.Close()
	tn, _, err := svc.Create("inc", serve.TenantConfig{Width: 32, Height: 32},
		[]grid.Point{grid.Pt(3, 3), grid.Pt(4, 4)})
	if err != nil {
		t.Fatal(err)
	}
	check := func(stage string) *serve.Snapshot {
		t.Helper()
		snap := tn.Snapshot()
		if snap.Routes == nil {
			t.Fatalf("%s: snapshot has no routing index", stage)
		}
		fresh := routeidx.Compile(snap.Res, routing.ModelRegions, routeidx.Options{})
		if snap.Routes.Fingerprint() != fresh.Fingerprint() {
			t.Fatalf("%s: published index differs from a from-scratch compile", stage)
		}
		return snap
	}
	check("create")
	steps := []struct {
		op  string
		pts []grid.Point
	}{
		{"add", []grid.Point{grid.Pt(20, 20), grid.Pt(21, 21)}},
		{"add", []grid.Point{grid.Pt(4, 3)}},
		{"remove", []grid.Point{grid.Pt(20, 20)}},
		{"add", []grid.Point{grid.Pt(28, 5), grid.Pt(28, 6), grid.Pt(29, 5)}},
		{"remove", []grid.Point{grid.Pt(3, 3), grid.Pt(4, 4), grid.Pt(4, 3)}},
	}
	for _, st := range steps {
		if _, err := svc.Apply("inc", st.op, st.pts); err != nil {
			t.Fatal(err)
		}
		check(st.op)
	}
	// Restore republishes a fresh index over the restored result.
	snap := tn.TakeSnapshot()
	tn2, err := svc.Restore("inc2", snap)
	if err != nil {
		t.Fatal(err)
	}
	snap2 := tn2.Snapshot()
	if snap2.Routes == nil {
		t.Fatal("restored snapshot has no routing index")
	}
	if snap2.Routes.Fingerprint() != check("pre-restore").Routes.Fingerprint() {
		t.Fatal("restored index differs from the source tenant's")
	}
	// The typed unroutable error surfaces through the service API.
	if _, err := svc.Apply("inc", "add", []grid.Point{grid.Pt(10, 10)}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := tn.Route(grid.Pt(10, 10), grid.Pt(0, 0), "", "indexed"); !errors.Is(err, routing.ErrUnroutable) {
		t.Fatalf("faulty src: got %v, want ErrUnroutable", err)
	}
	var ue *routing.UnroutableError
	if _, _, err := tn.Route(grid.Pt(0, 0), grid.Pt(10, 10), "", "detour"); !errors.As(err, &ue) || ue.Role != "destination" {
		t.Fatalf("faulty dst: got %v, want destination UnroutableError", err)
	}
}
