package routing

import (
	"ocpmesh/internal/grid"
	"ocpmesh/internal/obs"
)

// Instrumented decorates a Router with observability: every Route call
// emits one obs.ERoute event and feeds the route_* counters and the
// hop/stretch/detour histograms. Wrap with Instrument.
type Instrumented struct {
	router Router
	rec    *obs.Recorder
}

// Instrument wraps r so every routing attempt is traced and measured
// through rec. With a nil recorder it returns r unchanged, so the
// uninstrumented path costs nothing.
func Instrument(r Router, rec *obs.Recorder) Router {
	if rec == nil {
		return r
	}
	return Instrumented{router: r, rec: rec}
}

// Name implements Router.
func (ir Instrumented) Name() string { return ir.router.Name() }

// Route implements Router. Delivered routes record hop count, stretch
// (hops over the fault-free distance) and detour hops (the misrouting
// the fault model forces); failures record the error.
func (ir Instrumented) Route(g *Graph, src, dst grid.Point) (Path, error) {
	start := ir.rec.Now()
	path, err := ir.router.Route(g, src, dst)
	dur := ir.rec.Now().Sub(start)

	ev := obs.Event{
		Type: obs.ERoute, Router: ir.router.Name(), Model: g.model.String(),
		Src: src.String(), Dst: dst.String(), DurNS: dur.Nanoseconds(),
	}
	ir.rec.Counter("route_requests").Inc()
	ir.rec.Histogram("route_ns", obs.NSBuckets).Observe(float64(dur.Nanoseconds()))
	if err != nil {
		ev.Err = err.Error()
		ir.rec.Counter("route_failed").Inc()
		ir.rec.Emit(ev)
		return path, err
	}

	minimal := g.res.Topo.Dist(src, dst)
	detour := path.Len() - minimal
	ev.OK = true
	ev.Hops = path.Len()
	ev.Minimal = minimal
	ir.rec.Counter("route_delivered").Inc()
	ir.rec.Histogram("route_hops", nil).Observe(float64(path.Len()))
	ir.rec.Histogram("route_detour_hops", nil).Observe(float64(detour))
	if minimal > 0 {
		ir.rec.Histogram("route_stretch", LinStretchBuckets).Observe(float64(path.Len()) / float64(minimal))
	}
	if detour > 0 {
		ir.rec.Counter("route_misrouted").Inc()
	}
	ir.rec.Emit(ev)
	return path, nil
}

// LinStretchBuckets buckets path stretch (1.0 = minimal) in steps of
// 0.25 up to 6x, a resolution matched to the detours orthogonal convex
// regions produce.
var LinStretchBuckets = obs.LinearBuckets(1, 0.25, 21)
