// Package routing implements the consumer the paper builds its fault
// model for: fault-tolerant routing in a 2-D mesh whose fault regions
// have been shaped by the formation algorithm.
//
// Two fault models are compared, exactly the comparison that motivates
// the paper:
//
//   - ModelBlocks: the classical rectangular faulty-block model. Every
//     unsafe node (faulty or not) is off limits; messages route around
//     whole rectangles.
//   - ModelRegions: the refined model after the enabled/disabled phase.
//     Only disabled nodes are off limits; the nonfaulty nodes reactivated
//     by Definition 3 carry traffic, so detours are shorter and more
//     sources/destinations are reachable.
//
// The package provides a breadth-first oracle (exact shortest paths under
// either model), two online routers (dimension-order XY and a
// wall-following detour router that needs only local obstacle knowledge),
// and a channel-dependency-graph tool for deadlock analysis of a routing
// function on a concrete fault configuration.
package routing

import (
	"fmt"

	"ocpmesh/internal/core"
	"ocpmesh/internal/grid"
	"ocpmesh/internal/mesh"
)

// Model selects which nodes a message may traverse.
type Model int

const (
	// ModelBlocks forbids all unsafe nodes (the rectangular faulty-block
	// fault model).
	ModelBlocks Model = iota
	// ModelRegions forbids only disabled nodes (the paper's refined
	// orthogonal-convex-polygon fault model).
	ModelRegions
	// ModelFaultsOnly forbids only the faulty nodes themselves — the
	// unconstrained optimum, used as a yardstick in experiments.
	ModelFaultsOnly
)

// String returns the model name.
func (m Model) String() string {
	switch m {
	case ModelBlocks:
		return "blocks"
	case ModelRegions:
		return "regions"
	case ModelFaultsOnly:
		return "faults-only"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// Allowed reports whether p may carry messages under the model.
func (m Model) Allowed(res *core.Result, p grid.Point) bool {
	if !res.Topo.Contains(p) {
		return false
	}
	switch m {
	case ModelBlocks:
		return !res.IsUnsafe(p)
	case ModelRegions:
		return res.IsEnabled(p)
	case ModelFaultsOnly:
		return !res.IsFaulty(p)
	default:
		return false
	}
}

// Path is a sequence of adjacent machine nodes from source to
// destination, inclusive.
type Path []grid.Point

// Len returns the hop count of the path (len-1, 0 for empty or
// single-node paths).
func (p Path) Len() int {
	if len(p) < 2 {
		return 0
	}
	return len(p) - 1
}

// Validate checks that the path starts at src, ends at dst, takes only
// topology-adjacent steps and visits only allowed nodes.
func (p Path) Validate(res *core.Result, m Model, src, dst grid.Point) error {
	if len(p) == 0 {
		return fmt.Errorf("routing: empty path")
	}
	if p[0] != src || p[len(p)-1] != dst {
		return fmt.Errorf("routing: path endpoints %v..%v, want %v..%v", p[0], p[len(p)-1], src, dst)
	}
	for i, q := range p {
		if !m.Allowed(res, q) {
			return fmt.Errorf("routing: path visits forbidden node %v", q)
		}
		if i > 0 && res.Topo.Dist(p[i-1], q) != 1 {
			return fmt.Errorf("routing: non-adjacent step %v -> %v", p[i-1], q)
		}
	}
	return nil
}

// Graph is a routing view of a formation result under one fault model.
type Graph struct {
	res   *core.Result
	model Model
}

// NewGraph returns the routing view of res under model m.
func NewGraph(res *core.Result, m Model) *Graph { return &Graph{res: res, model: m} }

// Allowed reports whether p may carry messages.
func (g *Graph) Allowed(p grid.Point) bool { return g.model.Allowed(g.res, p) }

// Topo returns the underlying machine topology.
func (g *Graph) Topo() *mesh.Topology { return g.res.Topo }

// Result returns the formation result the graph views. Index-backed
// routers use it to check that graph and index describe the same
// snapshot.
func (g *Graph) Result() *core.Result { return g.res }

// Model returns the fault model the graph routes under.
func (g *Graph) Model() Model { return g.model }

// Neighbors returns the allowed machine neighbors of p.
func (g *Graph) Neighbors(p grid.Point) []grid.Point {
	var out []grid.Point
	for _, q := range g.res.Topo.Neighbors(p) {
		if g.Allowed(q) {
			out = append(out, q)
		}
	}
	return out
}

// ShortestPath returns an exact shortest path from src to dst under the
// model, or ok=false when dst is unreachable. It is the oracle the online
// routers are measured against.
func (g *Graph) ShortestPath(src, dst grid.Point) (Path, bool) {
	if !g.Allowed(src) || !g.Allowed(dst) {
		return nil, false
	}
	if src == dst {
		return Path{src}, true
	}
	topo := g.res.Topo
	prev := make(map[grid.Point]grid.Point, topo.Size())
	prev[src] = src
	queue := []grid.Point{src}
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		for _, q := range g.Neighbors(p) {
			if _, seen := prev[q]; seen {
				continue
			}
			prev[q] = p
			if q == dst {
				var rev Path
				for at := dst; at != src; at = prev[at] {
					rev = append(rev, at)
				}
				rev = append(rev, src)
				for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
					rev[i], rev[j] = rev[j], rev[i]
				}
				return rev, true
			}
			queue = append(queue, q)
		}
	}
	return nil, false
}

// Distances returns the hop distance from src to every reachable allowed
// node.
func (g *Graph) Distances(src grid.Point) map[grid.Point]int {
	out := make(map[grid.Point]int)
	if !g.Allowed(src) {
		return out
	}
	out[src] = 0
	queue := []grid.Point{src}
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		for _, q := range g.Neighbors(p) {
			if _, seen := out[q]; !seen {
				out[q] = out[p] + 1
				queue = append(queue, q)
			}
		}
	}
	return out
}

// ReachableFrom returns how many allowed nodes src can reach (including
// itself), a capacity metric of the fault model.
func (g *Graph) ReachableFrom(src grid.Point) int { return len(g.Distances(src)) }
