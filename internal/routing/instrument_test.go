package routing

import (
	"testing"

	"ocpmesh/internal/core"
	"ocpmesh/internal/fault"
	"ocpmesh/internal/grid"
	"ocpmesh/internal/obs"
	"ocpmesh/internal/status"
)

func TestInstrumentNilRecorderIsIdentity(t *testing.T) {
	r := XY{}
	if got := Instrument(r, nil); got != Router(r) {
		t.Fatalf("nil recorder must return the router unchanged, got %T", got)
	}
}

func TestInstrumentedRouteRecords(t *testing.T) {
	fx := fault.Figure1()
	res, err := core.FormOn(core.Config{
		Width: fx.Topo.Width(), Height: fx.Topo.Height(), Safety: status.Def2a,
	}, fx.Topo, fx.Faults)
	if err != nil {
		t.Fatal(err)
	}
	g := NewGraph(res, ModelRegions)
	sink := &obs.CollectSink{}
	rec := obs.NewRecorder(obs.NewTracer(sink), obs.NewRegistry())
	r := Instrument(Oracle{}, rec)
	if r.Name() != (Oracle{}).Name() {
		t.Fatal("instrumentation must not change the router name")
	}

	src, dst := grid.Pt(0, 3), grid.Pt(9, 3)
	path, err := r.Route(g, src, dst)
	if err != nil {
		t.Fatal(err)
	}

	events := sink.Filter(obs.ERoute)
	if len(events) != 1 {
		t.Fatalf("got %d route events, want 1", len(events))
	}
	e := events[0]
	if !e.OK || e.Hops != path.Len() || e.Router != "oracle" || e.Model != "regions" {
		t.Fatalf("route event wrong: %+v", e)
	}
	if e.Src != src.String() || e.Dst != dst.String() {
		t.Fatalf("route endpoints wrong: %+v", e)
	}
	if e.Minimal != res.Topo.Dist(src, dst) {
		t.Fatalf("minimal = %d, want %d", e.Minimal, res.Topo.Dist(src, dst))
	}

	snap := rec.Metrics().Snapshot()
	if snap.Counters["route_requests"] != 1 || snap.Counters["route_delivered"] != 1 {
		t.Fatalf("counters wrong: %v", snap.Counters)
	}
	if snap.Histograms["route_hops"].Count != 1 {
		t.Fatal("route_hops not recorded")
	}
	// Misroute accounting: detour hops beyond the fault-free distance.
	wantMisrouted := int64(0)
	if path.Len() > res.Topo.Dist(src, dst) {
		wantMisrouted = 1
	}
	if snap.Counters["route_misrouted"] != wantMisrouted {
		t.Fatalf("route_misrouted = %d, want %d", snap.Counters["route_misrouted"], wantMisrouted)
	}
}

func TestInstrumentedRouteFailure(t *testing.T) {
	fx := fault.Figure1()
	res, err := core.FormOn(core.Config{
		Width: fx.Topo.Width(), Height: fx.Topo.Height(), Safety: status.Def2a,
	}, fx.Topo, fx.Faults)
	if err != nil {
		t.Fatal(err)
	}
	g := NewGraph(res, ModelRegions)
	sink := &obs.CollectSink{}
	rec := obs.NewRecorder(obs.NewTracer(sink), obs.NewRegistry())
	r := Instrument(XY{}, rec)

	// Route into a disabled node: endpoints not allowed, guaranteed error.
	var disabled grid.Point
	found := false
	for _, p := range res.Topo.Points() {
		if !res.IsEnabled(p) {
			disabled, found = p, true
			break
		}
	}
	if !found {
		t.Skip("fixture produced no disabled node")
	}
	if _, err := r.Route(g, grid.Pt(0, 0), disabled); err == nil {
		t.Fatal("expected routing failure")
	}
	events := sink.Filter(obs.ERoute)
	if len(events) != 1 || events[0].OK || events[0].Err == "" {
		t.Fatalf("failure event wrong: %+v", events)
	}
	if rec.Metrics().Snapshot().Counters["route_failed"] != 1 {
		t.Fatal("route_failed not counted")
	}
}
