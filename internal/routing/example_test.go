package routing_test

import (
	"fmt"

	"ocpmesh/internal/core"
	"ocpmesh/internal/grid"
	"ocpmesh/internal/routing"
)

// With one fault on the dimension-order path, XY fails while adaptive
// minimal routing sidesteps the fault without losing minimality.
func ExampleAdaptiveMinimal() {
	res, err := core.Form(core.Config{Width: 7, Height: 7}, []grid.Point{grid.Pt(3, 2)})
	if err != nil {
		panic(err)
	}
	g := routing.NewGraph(res, routing.ModelRegions)
	src, dst := grid.Pt(0, 2), grid.Pt(6, 4)

	if _, err := (routing.XY{}).Route(g, src, dst); err != nil {
		fmt.Println("xy: blocked")
	}
	path, err := (routing.AdaptiveMinimal{}).Route(g, src, dst)
	if err != nil {
		panic(err)
	}
	fmt.Printf("adaptive: %d hops (manhattan %d)\n", path.Len(), src.Dist(dst))
	// Output:
	// xy: blocked
	// adaptive: 8 hops (manhattan 8)
}

// Dimension-order routing has an acyclic channel dependency graph on a
// mesh — the Dally-Seitz condition for deadlock freedom.
func ExampleCDG_FindCycle() {
	res, err := core.Form(core.Config{Width: 4, Height: 4}, nil)
	if err != nil {
		panic(err)
	}
	g := routing.NewGraph(res, routing.ModelRegions)
	cdg, _, err := routing.AnalyzeDeadlock(g, routing.XY{}, routing.SingleVC, routing.AllPairs(g))
	if err != nil {
		panic(err)
	}
	_, cyclic := cdg.FindCycle()
	fmt.Println("deadlock-free:", !cyclic)
	// Output:
	// deadlock-free: true
}
