package routing

import (
	"math/rand"
	"testing"

	"ocpmesh/internal/core"
	"ocpmesh/internal/fault"
	"ocpmesh/internal/grid"
	"ocpmesh/internal/mesh"
	"ocpmesh/internal/status"
)

func TestAdaptiveMinimalFaultFree(t *testing.T) {
	res := form(t, 8, 8, mesh.Mesh2D)
	g := NewGraph(res, ModelRegions)
	src, dst := grid.Pt(0, 7), grid.Pt(6, 1)
	path, err := AdaptiveMinimal{}.Route(g, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if path.Len() != src.Dist(dst) {
		t.Fatalf("adaptive path not minimal: %d vs %d", path.Len(), src.Dist(dst))
	}
	if err := path.Validate(res, ModelRegions, src, dst); err != nil {
		t.Fatal(err)
	}
}

func TestAdaptiveMinimalAvoidsRegionXYHits(t *testing.T) {
	// A single fault on the XY path: XY fails, adaptive sidesteps and
	// stays minimal.
	res := form(t, 7, 7, mesh.Mesh2D, grid.Pt(3, 2))
	g := NewGraph(res, ModelRegions)
	src, dst := grid.Pt(0, 2), grid.Pt(6, 4)
	if _, err := (XY{}).Route(g, src, dst); err == nil {
		t.Fatal("XY should be blocked by the fault on its row")
	}
	path, err := AdaptiveMinimal{}.Route(g, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if path.Len() != src.Dist(dst) {
		t.Fatalf("adaptive must stay minimal: %d vs %d", path.Len(), src.Dist(dst))
	}
	if err := path.Validate(res, ModelRegions, src, dst); err != nil {
		t.Fatal(err)
	}
}

func TestAdaptiveMinimalPathsAreAlwaysMinimal(t *testing.T) {
	// Whenever the adaptive router delivers, the path length equals the
	// topology distance — it never misroutes.
	rng := rand.New(rand.NewSource(19))
	delivered := 0
	for trial := 0; trial < 40; trial++ {
		kind := mesh.Mesh2D
		if trial%3 == 0 {
			kind = mesh.Torus2D
		}
		topo := mesh.MustNew(10, 10, kind)
		faults := fault.Uniform{Count: 8}.Generate(topo, rng)
		res, err := core.FormOn(core.Config{Width: 10, Height: 10, Kind: kind, Safety: status.Def2b},
			topo, faults)
		if err != nil {
			t.Fatal(err)
		}
		g := NewGraph(res, ModelRegions)
		for _, pr := range SamplePairs(res, 10, rng) {
			if !g.Allowed(pr[0]) || !g.Allowed(pr[1]) {
				continue
			}
			path, err := (AdaptiveMinimal{}).Route(g, pr[0], pr[1])
			if err != nil {
				continue
			}
			delivered++
			if path.Len() != topo.Dist(pr[0], pr[1]) {
				t.Fatalf("trial %d: non-minimal adaptive path %d vs %d",
					trial, path.Len(), topo.Dist(pr[0], pr[1]))
			}
			if verr := path.Validate(res, ModelRegions, pr[0], pr[1]); verr != nil {
				t.Fatal(verr)
			}
		}
	}
	if delivered == 0 {
		t.Fatal("adaptive router never delivered")
	}
}

func TestAdaptiveBeatsXYOnDelivery(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	xyOK, adOK, total := 0, 0, 0
	for trial := 0; trial < 25; trial++ {
		topo := mesh.MustNew(14, 14, mesh.Mesh2D)
		faults := fault.Uniform{Count: 14}.Generate(topo, rng)
		res, err := core.FormOn(core.Config{Width: 14, Height: 14, Safety: status.Def2b}, topo, faults)
		if err != nil {
			t.Fatal(err)
		}
		g := NewGraph(res, ModelRegions)
		for _, pr := range SamplePairs(res, 20, rng) {
			if !g.Allowed(pr[0]) || !g.Allowed(pr[1]) {
				continue
			}
			total++
			if _, err := (XY{}).Route(g, pr[0], pr[1]); err == nil {
				xyOK++
			}
			if _, err := (AdaptiveMinimal{}).Route(g, pr[0], pr[1]); err == nil {
				adOK++
			}
		}
	}
	if total == 0 {
		t.Fatal("no pairs")
	}
	if adOK < xyOK {
		t.Fatalf("adaptive minimal (%d/%d) must deliver at least as often as XY (%d/%d)",
			adOK, total, xyOK, total)
	}
	if adOK == xyOK {
		t.Logf("note: adaptive equalled XY on this sample (%d/%d)", adOK, total)
	}
}

func TestAdaptiveRejectsForbiddenEndpoints(t *testing.T) {
	res := form(t, 6, 6, mesh.Mesh2D, grid.Pt(2, 2))
	g := NewGraph(res, ModelRegions)
	if _, err := (AdaptiveMinimal{}).Route(g, grid.Pt(2, 2), grid.Pt(0, 0)); err == nil {
		t.Fatal("faulty source must be rejected")
	}
	if (AdaptiveMinimal{}).Name() != "adaptive-minimal" {
		t.Fatal("name wrong")
	}
}
