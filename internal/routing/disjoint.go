package routing

import (
	"fmt"

	"ocpmesh/internal/grid"
)

// DisjointResult is the outcome of a k-node-disjoint path query.
type DisjointResult struct {
	// Paths are the node-disjoint routes found, each a valid path from
	// src to dst sharing no intermediate node with any other;
	// len(Paths) == Found.
	Paths []Path
	// Requested is the k asked for; Found is the maximum number of
	// node-disjoint paths that exist, capped at Requested. Found <
	// Requested is graceful degradation, not an error: by Menger's
	// theorem Found then equals the size of a minimum vertex cut
	// separating src from dst.
	Requested, Found int
}

// KDisjointPaths returns up to k pairwise node-disjoint paths from src
// to dst under g's fault model. Disjoint paths are the fault-independence
// currency of mesh routing: k node-disjoint routes survive any k-1
// additional node failures.
//
// The construction is max-flow with node splitting: every node except
// the endpoints becomes an in/out pair joined by a capacity-1 arc, mesh
// links become capacity-1 arcs between allowed neighbors, and augmenting
// paths are found by breadth-first search (Edmonds-Karp). Unit node
// capacities make the extracted flow paths vertex-disjoint, and k
// augmentation rounds cost O(k·E). In a 2-D mesh the answer never
// exceeds 4 (the degree bound), but k is not restricted.
func KDisjointPaths(g *Graph, src, dst grid.Point, k int) (DisjointResult, error) {
	if k < 1 {
		return DisjointResult{}, fmt.Errorf("routing: disjoint: k must be >= 1, got %d", k)
	}
	if err := g.CheckEndpoints(src, dst); err != nil {
		return DisjointResult{}, err
	}
	if src == dst {
		return DisjointResult{Paths: []Path{{src}}, Requested: k, Found: 1}, nil
	}

	topo := g.res.Topo
	n := topo.Size()
	// Flow-network node ids: 2*idx is the in-copy, 2*idx+1 the out-copy.
	in := func(p grid.Point) int32 { return int32(2 * topo.Index(p)) }
	out := func(p grid.Point) int32 { return int32(2*topo.Index(p) + 1) }

	type arc struct {
		to  int32
		cap int32
		rev int32 // index of the reverse arc in adj[to]
	}
	adj := make([][]arc, 2*n)
	addArc := func(u, v, c int32) {
		adj[u] = append(adj[u], arc{to: v, cap: c, rev: int32(len(adj[v]))})
		adj[v] = append(adj[v], arc{to: u, cap: 0, rev: int32(len(adj[u]) - 1)})
	}
	for _, p := range topo.Points() {
		if !g.Allowed(p) {
			continue
		}
		nodeCap := int32(1)
		if p == src || p == dst {
			nodeCap = int32(k)
		}
		addArc(in(p), out(p), nodeCap)
		for _, q := range topo.Neighbors(p) {
			if g.Allowed(q) {
				addArc(out(p), in(q), 1)
			}
		}
	}

	source, sink := out(src), in(dst)
	// prev[v] identifies the arc the BFS used to reach v.
	type hop struct {
		node int32
		arc  int32
	}
	prev := make([]hop, 2*n)
	visited := make([]bool, 2*n)
	queue := make([]int32, 0, 2*n)

	flow := 0
	for flow < k {
		for i := range visited {
			visited[i] = false
		}
		queue = append(queue[:0], source)
		visited[source] = true
		reached := false
		for qi := 0; qi < len(queue) && !reached; qi++ {
			u := queue[qi]
			for ai, a := range adj[u] {
				if a.cap == 0 || visited[a.to] {
					continue
				}
				visited[a.to] = true
				prev[a.to] = hop{node: u, arc: int32(ai)}
				if a.to == sink {
					reached = true
					break
				}
				queue = append(queue, a.to)
			}
		}
		if !reached {
			break
		}
		// Unit capacities on every interior arc: each augmenting path
		// carries exactly one unit.
		for v := sink; v != source; v = prev[v].node {
			h := prev[v]
			adj[h.node][h.arc].cap--
			adj[adj[h.node][h.arc].to][adj[h.node][h.arc].rev].cap++
		}
		flow++
	}

	// Decompose the flow into node paths: from src, repeatedly follow an
	// outgoing arc that carries flow (its reverse arc gained capacity),
	// consuming each unit as it is walked. Unit node capacities guarantee
	// the walk never revisits an interior node, and flow conservation
	// guarantees it terminates at dst.
	res := DisjointResult{Requested: k, Found: flow}
	for range flow {
		path := Path{src}
		cur := src
		for cur != dst {
			advanced := false
			u := out(cur)
			for ai := range adj[u] {
				a := &adj[u][ai]
				rev := &adj[a.to][a.rev]
				if rev.cap == 0 || a.to%2 != 0 || a.to == in(cur) {
					continue
				}
				rev.cap--
				cur = topo.PointAt(int(a.to / 2))
				path = append(path, cur)
				advanced = true
				break
			}
			if !advanced {
				// Unreachable by flow conservation; guard against a bug
				// rather than looping forever.
				return res, fmt.Errorf("routing: disjoint: flow decomposition stalled at %v", cur)
			}
		}
		res.Paths = append(res.Paths, path)
	}
	return res, nil
}
