package routing

import (
	"math/rand"
	"testing"

	"ocpmesh/internal/core"
	"ocpmesh/internal/fault"
	"ocpmesh/internal/grid"
	"ocpmesh/internal/mesh"
	"ocpmesh/internal/status"
)

func form(t *testing.T, w, h int, kind mesh.Kind, faults ...grid.Point) *core.Result {
	t.Helper()
	res, err := core.Form(core.Config{Width: w, Height: h, Kind: kind, Safety: status.Def2b}, faults)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestModelString(t *testing.T) {
	if ModelBlocks.String() != "blocks" || ModelRegions.String() != "regions" ||
		ModelFaultsOnly.String() != "faults-only" {
		t.Fatal("model names wrong")
	}
	if Model(9).String() != "Model(9)" {
		t.Fatal("unknown model name wrong")
	}
}

func TestModelAllowed(t *testing.T) {
	// One faulty block with a reactivated nonfaulty node.
	res := form(t, 6, 6, mesh.Mesh2D, grid.Pt(2, 2), grid.Pt(3, 3))
	reactivated := grid.Pt(3, 2) // unsafe (inside 2x2 block) but enabled
	if !res.IsUnsafe(reactivated) || !res.IsEnabled(reactivated) {
		t.Fatalf("fixture expectation broken: unsafe=%t enabled=%t",
			res.IsUnsafe(reactivated), res.IsEnabled(reactivated))
	}
	if ModelBlocks.Allowed(res, reactivated) {
		t.Fatal("block model must forbid unsafe nodes")
	}
	if !ModelRegions.Allowed(res, reactivated) {
		t.Fatal("region model must allow reactivated nodes")
	}
	if !ModelFaultsOnly.Allowed(res, reactivated) {
		t.Fatal("faults-only model must allow nonfaulty nodes")
	}
	if ModelRegions.Allowed(res, grid.Pt(2, 2)) {
		t.Fatal("no model allows faulty nodes")
	}
	if ModelRegions.Allowed(res, grid.Pt(-1, 0)) {
		t.Fatal("ghosts are not routable")
	}
	if Model(9).Allowed(res, grid.Pt(0, 0)) {
		t.Fatal("unknown model must allow nothing")
	}
}

func TestShortestPathFaultFree(t *testing.T) {
	res := form(t, 8, 8, mesh.Mesh2D)
	g := NewGraph(res, ModelRegions)
	src, dst := grid.Pt(0, 0), grid.Pt(7, 5)
	path, ok := g.ShortestPath(src, dst)
	if !ok {
		t.Fatal("path must exist on fault-free mesh")
	}
	if path.Len() != src.Dist(dst) {
		t.Fatalf("hops = %d, want %d", path.Len(), src.Dist(dst))
	}
	if err := path.Validate(res, ModelRegions, src, dst); err != nil {
		t.Fatal(err)
	}
	if p, ok := g.ShortestPath(src, src); !ok || p.Len() != 0 {
		t.Fatal("trivial path wrong")
	}
}

func TestShortestPathAroundRegion(t *testing.T) {
	// A vertical wall of faults forces a detour.
	res := form(t, 7, 7, mesh.Mesh2D,
		grid.Pt(3, 1), grid.Pt(3, 2), grid.Pt(3, 3), grid.Pt(3, 4), grid.Pt(3, 5))
	g := NewGraph(res, ModelRegions)
	src, dst := grid.Pt(0, 3), grid.Pt(6, 3)
	path, ok := g.ShortestPath(src, dst)
	if !ok {
		t.Fatal("detour around the wall must exist")
	}
	if path.Len() <= src.Dist(dst) {
		t.Fatalf("wall must force a detour: hops=%d manhattan=%d", path.Len(), src.Dist(dst))
	}
	if err := path.Validate(res, ModelRegions, src, dst); err != nil {
		t.Fatal(err)
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	// Full-width wall cuts the mesh in two.
	var wall []grid.Point
	for x := 0; x < 5; x++ {
		wall = append(wall, grid.Pt(x, 2))
	}
	res := form(t, 5, 5, mesh.Mesh2D, wall...)
	g := NewGraph(res, ModelRegions)
	if _, ok := g.ShortestPath(grid.Pt(0, 0), grid.Pt(0, 4)); ok {
		t.Fatal("wall must disconnect the halves")
	}
	if n := g.ReachableFrom(grid.Pt(0, 0)); n >= res.Topo.Size()-5 {
		t.Fatalf("reachable = %d, must exclude the far half", n)
	}
	// On a torus the wall does not disconnect (wraparound).
	resT := form(t, 5, 5, mesh.Torus2D, wall...)
	gT := NewGraph(resT, ModelRegions)
	if _, ok := gT.ShortestPath(grid.Pt(0, 0), grid.Pt(0, 4)); !ok {
		t.Fatal("torus wraparound must route around the wall")
	}
}

func TestXYFaultFree(t *testing.T) {
	res := form(t, 8, 8, mesh.Mesh2D)
	g := NewGraph(res, ModelRegions)
	src, dst := grid.Pt(1, 6), grid.Pt(5, 2)
	path, err := XY{}.Route(g, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if path.Len() != src.Dist(dst) {
		t.Fatalf("XY must be minimal: %d vs %d", path.Len(), src.Dist(dst))
	}
	// Dimension order: all x movement precedes all y movement.
	turned := false
	for i := 1; i < len(path); i++ {
		if path[i].Y != path[i-1].Y {
			turned = true
		} else if turned {
			t.Fatal("XY moved in x after turning to y")
		}
	}
	if err := path.Validate(res, ModelRegions, src, dst); err != nil {
		t.Fatal(err)
	}
}

func TestXYBlockedByRegion(t *testing.T) {
	res := form(t, 7, 7, mesh.Mesh2D, grid.Pt(3, 3))
	g := NewGraph(res, ModelRegions)
	if _, err := (XY{}).Route(g, grid.Pt(0, 3), grid.Pt(6, 3)); err == nil {
		t.Fatal("XY must fail when the fixed path is blocked")
	}
	if _, err := (XY{}).Route(g, grid.Pt(3, 3), grid.Pt(0, 0)); err == nil {
		t.Fatal("XY must reject forbidden endpoints")
	}
}

func TestXYOnTorusWrap(t *testing.T) {
	res := form(t, 8, 8, mesh.Torus2D)
	g := NewGraph(res, ModelRegions)
	src, dst := grid.Pt(0, 0), grid.Pt(7, 7)
	path, err := XY{}.Route(g, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if path.Len() != res.Topo.Dist(src, dst) {
		t.Fatalf("torus XY must take the wrap: %d hops, want %d", path.Len(), res.Topo.Dist(src, dst))
	}
}

func TestDetourAroundBlock(t *testing.T) {
	res := form(t, 9, 9, mesh.Mesh2D, grid.Pt(4, 3), grid.Pt(4, 4), grid.Pt(4, 5), grid.Pt(3, 4))
	for _, model := range []Model{ModelBlocks, ModelRegions} {
		g := NewGraph(res, model)
		src, dst := grid.Pt(0, 4), grid.Pt(8, 4)
		path, err := Detour{}.Route(g, src, dst)
		if err != nil {
			t.Fatalf("%v: %v", model, err)
		}
		if err := path.Validate(res, model, src, dst); err != nil {
			t.Fatalf("%v: %v", model, err)
		}
		oracle, ok := g.ShortestPath(src, dst)
		if !ok {
			t.Fatalf("%v: oracle says unreachable", model)
		}
		if path.Len() < oracle.Len() {
			t.Fatalf("%v: detour shorter than shortest path?!", model)
		}
	}
}

func TestDetourPrefersRefinedModel(t *testing.T) {
	// A large block with most nodes reactivated: the region model should
	// admit a path no longer than the block model's.
	fix := fault.Figure1()
	res, err := core.FormOn(core.Config{Width: 10, Height: 10, Safety: status.Def2a},
		fix.Topo, fix.Faults)
	if err != nil {
		t.Fatal(err)
	}
	src, dst := grid.Pt(0, 2), grid.Pt(9, 3)
	blockPath, ok := NewGraph(res, ModelBlocks).ShortestPath(src, dst)
	if !ok {
		t.Fatal("block-model path must exist")
	}
	regionPath, ok := NewGraph(res, ModelRegions).ShortestPath(src, dst)
	if !ok {
		t.Fatal("region-model path must exist")
	}
	if regionPath.Len() > blockPath.Len() {
		t.Fatalf("refined model must not be worse: %d vs %d", regionPath.Len(), blockPath.Len())
	}
}

func TestDetourRandomDeliveryMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	delivered, reachable := 0, 0
	for trial := 0; trial < 30; trial++ {
		topo := mesh.MustNew(12, 12, mesh.Mesh2D)
		faults := fault.Uniform{Count: 6 + rng.Intn(10)}.Generate(topo, rng)
		res, err := core.FormOn(core.Config{Width: 12, Height: 12, Safety: status.Def2b}, topo, faults)
		if err != nil {
			t.Fatal(err)
		}
		g := NewGraph(res, ModelRegions)
		for _, pr := range SamplePairs(res, 10, rng) {
			src, dst := pr[0], pr[1]
			if !g.Allowed(src) || !g.Allowed(dst) {
				continue
			}
			_, ork := g.ShortestPath(src, dst)
			path, err := Detour{}.Route(g, src, dst)
			if err == nil {
				if verr := path.Validate(res, ModelRegions, src, dst); verr != nil {
					t.Fatalf("trial %d: %v", trial, verr)
				}
				if !ork {
					t.Fatalf("trial %d: detour delivered an oracle-unreachable pair", trial)
				}
				delivered++
			}
			if ork {
				reachable++
			}
		}
	}
	if reachable == 0 {
		t.Fatal("no reachable pairs sampled")
	}
	if rate := float64(delivered) / float64(reachable); rate < 0.9 {
		t.Fatalf("detour delivery rate %.2f too low (convex regions should rarely trap it)", rate)
	}
}

func TestXYDeadlockFree(t *testing.T) {
	// Classic result: dimension-order routing on a fault-free mesh has an
	// acyclic channel dependency graph with a single virtual channel.
	res := form(t, 4, 4, mesh.Mesh2D)
	g := NewGraph(res, ModelRegions)
	cdg, undeliverable, err := AnalyzeDeadlock(g, XY{}, SingleVC, AllPairs(g))
	if err != nil {
		t.Fatal(err)
	}
	if undeliverable != 0 {
		t.Fatalf("fault-free XY must deliver everything, %d failed", undeliverable)
	}
	if cdg.Size() == 0 {
		t.Fatal("CDG must have edges")
	}
	if cyc, found := cdg.FindCycle(); found {
		t.Fatalf("XY CDG must be acyclic, found %v", cyc)
	}
}

func TestXYOnTorusSingleVCDeadlocks(t *testing.T) {
	// Equally classic: wraparound rings with one virtual channel produce
	// cyclic channel dependencies.
	res := form(t, 4, 4, mesh.Torus2D)
	g := NewGraph(res, ModelRegions)
	cdg, _, err := AnalyzeDeadlock(g, XY{}, SingleVC, AllPairs(g))
	if err != nil {
		t.Fatal(err)
	}
	if _, found := cdg.FindCycle(); !found {
		t.Fatal("torus XY with one VC must have a CDG cycle")
	}
}

func TestCDGManualCycle(t *testing.T) {
	cdg := NewCDG()
	a := Channel{From: grid.Pt(0, 0), To: grid.Pt(1, 0)}
	b := Channel{From: grid.Pt(1, 0), To: grid.Pt(1, 1)}
	c := Channel{From: grid.Pt(1, 1), To: grid.Pt(0, 1)}
	d := Channel{From: grid.Pt(0, 1), To: grid.Pt(0, 0)}
	cdg.AddPath(Path{grid.Pt(0, 0), grid.Pt(1, 0), grid.Pt(1, 1)}, SingleVC)
	cdg.AddPath(Path{grid.Pt(1, 0), grid.Pt(1, 1), grid.Pt(0, 1)}, SingleVC)
	cdg.AddPath(Path{grid.Pt(1, 1), grid.Pt(0, 1), grid.Pt(0, 0)}, SingleVC)
	if _, found := cdg.FindCycle(); found {
		t.Fatal("three quarter-turns are not yet a cycle")
	}
	cdg.AddPath(Path{grid.Pt(0, 1), grid.Pt(0, 0), grid.Pt(1, 0)}, SingleVC)
	cyc, found := cdg.FindCycle()
	if !found {
		t.Fatal("closing the turn loop must create a cycle")
	}
	if len(cyc) != 4 {
		t.Fatalf("cycle = %v, want the 4 ring channels", cyc)
	}
	seen := map[Channel]bool{}
	for _, ch := range cyc {
		seen[ch] = true
	}
	for _, want := range []Channel{a, b, c, d} {
		if !seen[want] {
			t.Fatalf("cycle %v missing channel %v", cyc, want)
		}
	}
}

func TestVCPolicyBreaksCycle(t *testing.T) {
	// The same ring traffic becomes acyclic under a dateline policy: a
	// message switches to VC 1 once it has passed the dateline node
	// (0,0), so no VC-0 dependency closes the ring.
	datelineNode := grid.Pt(0, 0)
	dateline := func(p Path, hop int) int {
		for i := 1; i <= hop; i++ {
			if p[i] == datelineNode {
				return 1
			}
		}
		return 0
	}
	cdg := NewCDG()
	ring := []grid.Point{grid.Pt(0, 0), grid.Pt(1, 0), grid.Pt(1, 1), grid.Pt(0, 1)}
	for i := range ring {
		p := Path{ring[i], ring[(i+1)%4], ring[(i+2)%4], ring[(i+3)%4]}
		cdg.AddPath(p, dateline)
	}
	if cyc, found := cdg.FindCycle(); found {
		t.Fatalf("dateline policy must break the ring cycle, found %v", cyc)
	}
}

func TestCompareModels(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	topo := mesh.MustNew(16, 16, mesh.Mesh2D)
	faults := fault.Clustered{Count: 12, Clusters: 2, Spread: 2}.Generate(topo, rng)
	res, err := core.FormOn(core.Config{Width: 16, Height: 16, Safety: status.Def2a}, topo, faults)
	if err != nil {
		t.Fatal(err)
	}
	pairs := SamplePairs(res, 200, rng)
	statsByModel := CompareModels(res, pairs)

	blocks, regions, optimum := statsByModel[ModelBlocks], statsByModel[ModelRegions], statsByModel[ModelFaultsOnly]
	if regions.Usable < blocks.Usable {
		t.Fatalf("refined model must not lose usable pairs: %d < %d", regions.Usable, blocks.Usable)
	}
	if regions.Delivered < blocks.Delivered {
		t.Fatalf("refined model must not deliver less: %d < %d", regions.Delivered, blocks.Delivered)
	}
	if optimum.Delivered < regions.Delivered {
		t.Fatalf("faults-only is an upper bound: %d < %d", optimum.Delivered, regions.Delivered)
	}
	if blocks.Delivered > 0 && regions.AvgStretch() > blocks.AvgStretch()+0.25 {
		t.Fatalf("refined model stretch %.3f should not be much worse than block stretch %.3f",
			regions.AvgStretch(), blocks.AvgStretch())
	}
	if regions.DeliveryRate() <= 0 || regions.DeliveryRate() > 1 {
		t.Fatalf("delivery rate out of range: %g", regions.DeliveryRate())
	}
}

func TestSamplePairs(t *testing.T) {
	res := form(t, 5, 5, mesh.Mesh2D, grid.Pt(2, 2))
	rng := rand.New(rand.NewSource(1))
	pairs := SamplePairs(res, 50, rng)
	if len(pairs) != 50 {
		t.Fatalf("pairs = %d", len(pairs))
	}
	for _, pr := range pairs {
		if pr[0] == pr[1] {
			t.Fatal("pair endpoints must differ")
		}
		if res.IsFaulty(pr[0]) || res.IsFaulty(pr[1]) {
			t.Fatal("pairs must be nonfaulty")
		}
	}
	// Degenerate machine: too few nonfaulty nodes.
	tiny := form(t, 1, 1, mesh.Mesh2D, grid.Pt(0, 0))
	if got := SamplePairs(tiny, 5, rng); got != nil {
		t.Fatalf("degenerate SamplePairs = %v", got)
	}
}

func TestPathValidateRejects(t *testing.T) {
	res := form(t, 5, 5, mesh.Mesh2D, grid.Pt(2, 2))
	if err := (Path{}).Validate(res, ModelRegions, grid.Pt(0, 0), grid.Pt(1, 1)); err == nil {
		t.Fatal("empty path must be invalid")
	}
	p := Path{grid.Pt(0, 0), grid.Pt(2, 0)}
	if err := p.Validate(res, ModelRegions, grid.Pt(0, 0), grid.Pt(2, 0)); err == nil {
		t.Fatal("non-adjacent step must be invalid")
	}
	q := Path{grid.Pt(1, 2), grid.Pt(2, 2), grid.Pt(3, 2)}
	if err := q.Validate(res, ModelRegions, grid.Pt(1, 2), grid.Pt(3, 2)); err == nil {
		t.Fatal("path through a faulty node must be invalid")
	}
	r := Path{grid.Pt(0, 0), grid.Pt(1, 0)}
	if err := r.Validate(res, ModelRegions, grid.Pt(0, 0), grid.Pt(2, 0)); err == nil {
		t.Fatal("wrong endpoints must be invalid")
	}
}

func TestRouterNames(t *testing.T) {
	if (XY{}).Name() != "xy" || (Detour{}).Name() != "detour" {
		t.Fatal("router names wrong")
	}
	if (Channel{From: grid.Pt(0, 0), To: grid.Pt(1, 0), VC: 1}).String() != "(0,0)->(1,0)@1" {
		t.Fatal("channel string wrong")
	}
}
