package routing

import (
	"errors"
	"math/rand"
	"testing"

	"ocpmesh/internal/fault"
	"ocpmesh/internal/grid"
	"ocpmesh/internal/mesh"
)

// checkDisjoint is the construction-independent disjointness check: it
// looks only at the returned paths, validating each one and asserting
// that no machine node other than the endpoints appears in more than
// one path (and no node twice within one path).
func checkDisjoint(t *testing.T, g *Graph, res DisjointResult, src, dst grid.Point) {
	t.Helper()
	if len(res.Paths) != res.Found {
		t.Fatalf("Found=%d but %d paths", res.Found, len(res.Paths))
	}
	used := make(map[grid.Point]int)
	for i, p := range res.Paths {
		if err := p.Validate(g.Result(), g.Model(), src, dst); err != nil {
			t.Fatalf("path %d invalid: %v", i, err)
		}
		within := make(map[grid.Point]bool)
		for _, q := range p {
			if within[q] {
				t.Fatalf("path %d visits %v twice", i, q)
			}
			within[q] = true
			if q == src || q == dst {
				continue
			}
			if owner, ok := used[q]; ok {
				t.Fatalf("paths %d and %d share interior node %v", owner, i, q)
			}
			used[q] = i
		}
	}
}

func TestKDisjointPathsFaultFree(t *testing.T) {
	res := form(t, 10, 10, mesh.Mesh2D)
	g := NewGraph(res, ModelRegions)
	src, dst := grid.Pt(2, 2), grid.Pt(7, 6)
	// Interior nodes of a fault-free mesh have degree 4, so by Menger's
	// theorem exactly 4 node-disjoint paths exist.
	out, err := KDisjointPaths(g, src, dst, 4)
	if err != nil {
		t.Fatal(err)
	}
	if out.Found != 4 || out.Requested != 4 {
		t.Fatalf("found %d of requested %d, want 4 of 4", out.Found, out.Requested)
	}
	checkDisjoint(t, g, out, src, dst)
	// Asking for more than the degree bound degrades gracefully.
	out, err = KDisjointPaths(g, src, dst, 9)
	if err != nil {
		t.Fatal(err)
	}
	if out.Found != 4 || out.Requested != 9 {
		t.Fatalf("found %d of requested %d, want 4 of 9", out.Found, out.Requested)
	}
	checkDisjoint(t, g, out, src, dst)
}

func TestKDisjointPathsCornerDegrades(t *testing.T) {
	res := form(t, 8, 8, mesh.Mesh2D)
	g := NewGraph(res, ModelRegions)
	src, dst := grid.Pt(0, 0), grid.Pt(7, 7)
	// A mesh corner has degree 2: the minimum vertex cut is its two
	// neighbors, so at most 2 disjoint paths exist no matter the k.
	out, err := KDisjointPaths(g, src, dst, 4)
	if err != nil {
		t.Fatal(err)
	}
	if out.Found != 2 {
		t.Fatalf("corner source: found %d, want 2", out.Found)
	}
	checkDisjoint(t, g, out, src, dst)
}

func TestKDisjointPathsAroundRegion(t *testing.T) {
	// A fault region between src and dst: disjoint paths must split
	// around it and stay disjoint.
	res := form(t, 12, 12, mesh.Mesh2D, grid.Pt(5, 5), grid.Pt(6, 6), grid.Pt(5, 6))
	g := NewGraph(res, ModelRegions)
	src, dst := grid.Pt(1, 5), grid.Pt(10, 6)
	out, err := KDisjointPaths(g, src, dst, 4)
	if err != nil {
		t.Fatal(err)
	}
	if out.Found < 2 {
		t.Fatalf("found %d paths around the region, want >= 2", out.Found)
	}
	checkDisjoint(t, g, out, src, dst)
}

func TestKDisjointPathsCutOfOne(t *testing.T) {
	// A wall of faults with a single gap: the gap node is a vertex cut
	// of size 1, so exactly one path exists.
	var faults []grid.Point
	for y := 0; y < 9; y++ {
		if y != 4 {
			faults = append(faults, grid.Pt(4, y))
		}
	}
	res := form(t, 9, 9, mesh.Mesh2D, faults...)
	g := NewGraph(res, ModelFaultsOnly)
	src, dst := grid.Pt(1, 4), grid.Pt(7, 4)
	if !g.Allowed(grid.Pt(4, 4)) {
		t.Fatal("fixture expectation broken: gap node forbidden")
	}
	out, err := KDisjointPaths(g, src, dst, 3)
	if err != nil {
		t.Fatal(err)
	}
	if out.Found != 1 {
		t.Fatalf("single-gap wall: found %d, want 1", out.Found)
	}
	checkDisjoint(t, g, out, src, dst)
}

func TestKDisjointPathsEdgeCases(t *testing.T) {
	res := form(t, 8, 8, mesh.Mesh2D, grid.Pt(3, 3))
	g := NewGraph(res, ModelRegions)
	if _, err := KDisjointPaths(g, grid.Pt(0, 0), grid.Pt(7, 7), 0); err == nil {
		t.Fatal("k=0 not rejected")
	}
	if _, err := KDisjointPaths(g, grid.Pt(3, 3), grid.Pt(0, 0), 2); !errors.Is(err, ErrUnroutable) {
		t.Fatalf("faulty source: got %v, want ErrUnroutable", err)
	}
	out, err := KDisjointPaths(g, grid.Pt(2, 2), grid.Pt(2, 2), 3)
	if err != nil || out.Found != 1 || len(out.Paths) != 1 {
		t.Fatalf("src==dst: %+v, %v", out, err)
	}
}

func TestKDisjointPathsRandom(t *testing.T) {
	// Randomized sweep on both topology kinds: whatever is found must
	// pass the construction-independent check, and Found must never
	// exceed the trivial degree bound of the endpoints.
	for _, kind := range []mesh.Kind{mesh.Mesh2D, mesh.Torus2D} {
		topo, err := mesh.New(14, 14, kind)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(5))
		faults := fault.Uniform{Count: 15}.Generate(topo, rng)
		var fpts []grid.Point
		faults.Each(func(p grid.Point) { fpts = append(fpts, p) })
		res := form(t, 14, 14, kind, fpts...)
		g := NewGraph(res, ModelRegions)
		pairs := SamplePairs(res, 25, rng)
		for _, pr := range pairs {
			src, dst := pr[0], pr[1]
			out, err := KDisjointPaths(g, src, dst, 4)
			if errors.Is(err, ErrUnroutable) {
				continue
			}
			if err != nil {
				t.Fatalf("%v->%v: %v", src, dst, err)
			}
			checkDisjoint(t, g, out, src, dst)
			degS, degD := len(g.Neighbors(src)), len(g.Neighbors(dst))
			if out.Found > degS || out.Found > degD {
				t.Fatalf("%v->%v: found %d exceeds degree bound %d/%d", src, dst, out.Found, degS, degD)
			}
			// Cross-check against the BFS oracle: at least one path must
			// exist iff dst is reachable at all.
			_, reachable := g.ShortestPath(src, dst)
			if reachable != (out.Found >= 1) {
				t.Fatalf("%v->%v: reachable=%t but found %d", src, dst, reachable, out.Found)
			}
		}
	}
}

func TestDetourRouteAppendReusesBuffer(t *testing.T) {
	res := form(t, 12, 12, mesh.Mesh2D, grid.Pt(5, 5), grid.Pt(6, 6))
	g := NewGraph(res, ModelRegions)
	d := Detour{}
	want, err := d.Route(g, grid.Pt(0, 0), grid.Pt(11, 11))
	if err != nil {
		t.Fatal(err)
	}
	buf := make(Path, 0, 64)
	got, err := d.RouteAppend(g, grid.Pt(0, 0), grid.Pt(11, 11), buf)
	if err != nil {
		t.Fatal(err)
	}
	if &got[0] != &buf[:1][0] {
		t.Fatal("RouteAppend did not reuse the caller's buffer")
	}
	if len(got) != len(want) {
		t.Fatalf("buffered path %d nodes, fresh %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("paths diverge at %d", i)
		}
	}
	// Reuse across queries: the second answer overwrites the first.
	second, err := d.RouteAppend(g, grid.Pt(11, 0), grid.Pt(0, 11), got)
	if err != nil {
		t.Fatal(err)
	}
	if second[0] != grid.Pt(11, 0) {
		t.Fatalf("second query starts at %v", second[0])
	}
}
