package routing

import (
	"fmt"

	"ocpmesh/internal/grid"
	"ocpmesh/internal/mesh"
)

// Router computes a path online, the way a message header would be routed
// hop by hop.
type Router interface {
	Name() string
	// Route returns a valid path from src to dst on g, or an error when
	// the router cannot deliver (which for non-adaptive routers can
	// happen even if a path exists).
	Route(g *Graph, src, dst grid.Point) (Path, error)
}

// XY is deterministic dimension-order routing: first resolve the x
// offset, then the y offset. On a fault-free machine it is minimal and
// deadlock-free; any forbidden node on the fixed path is a routing
// failure (the weakness that motivates fault-model work).
type XY struct{}

// Name implements Router.
func (XY) Name() string { return "xy" }

// Route implements Router.
func (XY) Route(g *Graph, src, dst grid.Point) (Path, error) {
	if err := g.CheckEndpoints(src, dst); err != nil {
		return nil, err
	}
	topo := g.res.Topo
	path := Path{src}
	cur := src
	for cur != dst {
		d, ok := xyNextDir(topo, cur, dst)
		if !ok {
			return nil, fmt.Errorf("routing: xy: no progress direction from %v to %v", cur, dst)
		}
		next, ok := topo.NeighborIn(cur, d)
		if !ok {
			return nil, fmt.Errorf("routing: xy: fell off the mesh at %v", cur)
		}
		if !g.Allowed(next) {
			return nil, fmt.Errorf("routing: xy: blocked at %v by forbidden node %v", cur, next)
		}
		path = append(path, next)
		cur = next
	}
	return path, nil
}

// DirToward returns the dimension-order direction of travel from cur
// toward dst — the greedy decision Detour and XY take each hop —
// exported so the precompiled index router (internal/routeidx) can
// reproduce it exactly. ok is false when cur == dst.
func DirToward(topo *mesh.Topology, cur, dst grid.Point) (mesh.Direction, bool) {
	return xyNextDir(topo, cur, dst)
}

// xyNextDir returns the dimension-order direction of travel from cur
// toward dst: x first, then y, with wraparound awareness on tori.
func xyNextDir(topo *mesh.Topology, cur, dst grid.Point) (mesh.Direction, bool) {
	if cur.X != dst.X {
		return stepDir(topo, cur.X, dst.X, topo.Width(), mesh.West, mesh.East), true
	}
	if cur.Y != dst.Y {
		return stepDir(topo, cur.Y, dst.Y, topo.Height(), mesh.South, mesh.North), true
	}
	return 0, false
}

// stepDir picks the shorter of the two travel senses along one dimension
// (wrap-aware on tori; ties go to the positive sense).
func stepDir(topo *mesh.Topology, cur, dst, span int, neg, pos mesh.Direction) mesh.Direction {
	if topo.Kind() == mesh.Torus2D {
		fwd := ((dst-cur)%span + span) % span
		if fwd <= span-fwd {
			return pos
		}
		return neg
	}
	if dst < cur {
		return neg
	}
	return pos
}
