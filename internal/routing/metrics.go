package routing

import (
	"math/rand"

	"ocpmesh/internal/core"
	"ocpmesh/internal/grid"
)

// ModelStats aggregates routing quality under one fault model over a set
// of source/destination pairs — the numbers behind extension experiment
// X2 (the routing payoff of the refined fault model).
type ModelStats struct {
	// Pairs is the number of sampled nonfaulty pairs.
	Pairs int
	// Usable counts pairs whose endpoints are both allowed under the
	// model (the block model forbids unsafe-but-nonfaulty endpoints; the
	// refined model usually does not).
	Usable int
	// Delivered counts usable pairs with a path.
	Delivered int
	// TotalHops and TotalManhattan accumulate delivered-path hop counts
	// and the corresponding fault-free distances.
	TotalHops, TotalManhattan int
}

// DeliveryRate returns Delivered / Pairs.
func (s ModelStats) DeliveryRate() float64 {
	if s.Pairs == 0 {
		return 0
	}
	return float64(s.Delivered) / float64(s.Pairs)
}

// AvgStretch returns the mean ratio of delivered hop count to the
// fault-free Manhattan distance (1.0 = always minimal).
func (s ModelStats) AvgStretch() float64 {
	if s.TotalManhattan == 0 {
		return 0
	}
	return float64(s.TotalHops) / float64(s.TotalManhattan)
}

// SamplePairs draws n source/destination pairs uniformly among distinct
// nonfaulty nodes.
func SamplePairs(res *core.Result, n int, rng *rand.Rand) [][2]grid.Point {
	var nonfaulty []grid.Point
	for _, p := range res.Topo.Points() {
		if !res.IsFaulty(p) {
			nonfaulty = append(nonfaulty, p)
		}
	}
	if len(nonfaulty) < 2 {
		return nil
	}
	out := make([][2]grid.Point, 0, n)
	for len(out) < n {
		s := nonfaulty[rng.Intn(len(nonfaulty))]
		d := nonfaulty[rng.Intn(len(nonfaulty))]
		if s != d {
			out = append(out, [2]grid.Point{s, d})
		}
	}
	return out
}

// CompareModels measures exact (BFS-oracle) routing quality of each fault
// model on the same pair sample. The expected shape — the paper's
// motivation — is ModelRegions delivering at least as many pairs with at
// most the stretch of ModelBlocks, both bounded below by ModelFaultsOnly.
func CompareModels(res *core.Result, pairs [][2]grid.Point) map[Model]ModelStats {
	out := make(map[Model]ModelStats, 3)
	for _, m := range []Model{ModelBlocks, ModelRegions, ModelFaultsOnly} {
		g := NewGraph(res, m)
		st := ModelStats{Pairs: len(pairs)}
		for _, pr := range pairs {
			src, dst := pr[0], pr[1]
			if !g.Allowed(src) || !g.Allowed(dst) {
				continue
			}
			st.Usable++
			if path, ok := g.ShortestPath(src, dst); ok {
				st.Delivered++
				st.TotalHops += path.Len()
				st.TotalManhattan += res.Topo.Dist(src, dst)
			}
		}
		out[m] = st
	}
	return out
}
