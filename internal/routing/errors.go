package routing

import (
	"errors"
	"fmt"

	"ocpmesh/internal/grid"
)

// ErrUnroutable marks route queries whose endpoints cannot carry
// messages under the active fault model — the source or destination is
// faulty, unsafe, or inside a disabled region. It is a client error, not
// a router failure: callers (the serve HTTP layer maps it to 422, the
// CLIs to a hint) should distinguish it from "the router could not
// deliver between two valid endpoints".
var ErrUnroutable = errors.New("unroutable endpoint")

// UnroutableError reports which endpoint of a route query is forbidden
// and under which model. It unwraps to ErrUnroutable so callers can
// classify with errors.Is without depending on the concrete type.
type UnroutableError struct {
	// Role is "source" or "destination".
	Role  string
	Point grid.Point
	Model Model
}

// Error implements error.
func (e *UnroutableError) Error() string {
	return fmt.Sprintf("routing: %s %v is forbidden under the %s fault model: %v", e.Role, e.Point, e.Model, ErrUnroutable)
}

// Unwrap makes errors.Is(err, ErrUnroutable) true.
func (e *UnroutableError) Unwrap() error { return ErrUnroutable }

// CheckEndpoints returns a typed *UnroutableError when src or dst is
// forbidden under g's model, nil otherwise. The online routers front-load
// this check so every router reports endpoint problems uniformly.
func (g *Graph) CheckEndpoints(src, dst grid.Point) error {
	if !g.Allowed(src) {
		return &UnroutableError{Role: "source", Point: src, Model: g.model}
	}
	if !g.Allowed(dst) {
		return &UnroutableError{Role: "destination", Point: dst, Model: g.model}
	}
	return nil
}
