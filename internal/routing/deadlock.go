package routing

import (
	"fmt"
	"sort"

	"ocpmesh/internal/grid"
)

// Channel identifies one virtual channel of one unidirectional physical
// link.
type Channel struct {
	From, To grid.Point
	VC       int
}

// String renders the channel.
func (c Channel) String() string { return fmt.Sprintf("%v->%v@%d", c.From, c.To, c.VC) }

// VCPolicy assigns a virtual channel class to each hop of a path
// (hop i is path[i] -> path[i+1]). The classic single-channel policy is
// SingleVC; deadlock-free schemes split traffic into classes so the
// channel dependency graph stays acyclic.
type VCPolicy func(path Path, hop int) int

// SingleVC puts every hop on virtual channel 0.
func SingleVC(Path, int) int { return 0 }

// CDG is a channel dependency graph: an edge a -> b records that some
// message holds channel a while requesting channel b. Wormhole routing is
// deadlock-free iff the CDG of its routing function is acyclic (Dally &
// Seitz); the convexity of fault regions is what lets the paper's routing
// consumers keep the CDG acyclic with few virtual channels.
type CDG struct {
	edges map[Channel]map[Channel]struct{}
}

// NewCDG returns an empty dependency graph.
func NewCDG() *CDG { return &CDG{edges: make(map[Channel]map[Channel]struct{})} }

// AddPath records the channel dependencies of one routed path under the
// VC policy.
func (c *CDG) AddPath(p Path, policy VCPolicy) {
	for i := 0; i+2 < len(p); i++ {
		a := Channel{From: p[i], To: p[i+1], VC: policy(p, i)}
		b := Channel{From: p[i+1], To: p[i+2], VC: policy(p, i+1)}
		c.addEdge(a, b)
	}
}

func (c *CDG) addEdge(a, b Channel) {
	m, ok := c.edges[a]
	if !ok {
		m = make(map[Channel]struct{})
		c.edges[a] = m
	}
	m[b] = struct{}{}
}

// Size returns the number of dependency edges.
func (c *CDG) Size() int {
	n := 0
	for _, m := range c.edges {
		n += len(m)
	}
	return n
}

// FindCycle returns a dependency cycle (as a channel sequence whose last
// element depends on the first) and true, or nil and false when the graph
// is acyclic and the routing function is deadlock-free on the analyzed
// traffic.
func (c *CDG) FindCycle() ([]Channel, bool) {
	const (
		unvisited = 0
		inStack   = 1
		done      = 2
	)
	state := make(map[Channel]int, len(c.edges))
	var stack []Channel

	// Deterministic iteration for reproducible counterexamples.
	starts := make([]Channel, 0, len(c.edges))
	for ch := range c.edges {
		starts = append(starts, ch)
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i].String() < starts[j].String() })

	var visit func(ch Channel) ([]Channel, bool)
	visit = func(ch Channel) ([]Channel, bool) {
		state[ch] = inStack
		stack = append(stack, ch)
		next := make([]Channel, 0, len(c.edges[ch]))
		for n := range c.edges[ch] {
			next = append(next, n)
		}
		sort.Slice(next, func(i, j int) bool { return next[i].String() < next[j].String() })
		for _, n := range next {
			switch state[n] {
			case inStack:
				// Extract the cycle from the stack.
				for i, s := range stack {
					if s == n {
						out := make([]Channel, len(stack)-i)
						copy(out, stack[i:])
						return out, true
					}
				}
			case unvisited:
				if cyc, found := visit(n); found {
					return cyc, true
				}
			}
		}
		stack = stack[:len(stack)-1]
		state[ch] = done
		return nil, false
	}

	for _, ch := range starts {
		if state[ch] == unvisited {
			if cyc, found := visit(ch); found {
				return cyc, true
			}
			stack = stack[:0]
		}
	}
	return nil, false
}

// AnalyzeDeadlock routes every given (src, dst) pair with the router,
// accumulates the channel dependency graph under the VC policy, and
// reports whether the analyzed traffic admits a deadlock cycle.
// Undeliverable pairs are skipped and counted.
func AnalyzeDeadlock(g *Graph, r Router, policy VCPolicy, pairs [][2]grid.Point) (cdg *CDG, undeliverable int, err error) {
	cdg = NewCDG()
	for _, pr := range pairs {
		path, rerr := r.Route(g, pr[0], pr[1])
		if rerr != nil {
			undeliverable++
			continue
		}
		if verr := path.Validate(g.res, g.model, pr[0], pr[1]); verr != nil {
			return nil, 0, fmt.Errorf("routing: %s produced invalid path: %w", r.Name(), verr)
		}
		cdg.AddPath(path, policy)
	}
	return cdg, undeliverable, nil
}

// AllPairs enumerates every ordered pair of distinct allowed nodes of g —
// the complete traffic pattern for exhaustive deadlock analysis on small
// machines.
func AllPairs(g *Graph) [][2]grid.Point {
	var nodes []grid.Point
	for _, p := range g.res.Topo.Points() {
		if g.Allowed(p) {
			nodes = append(nodes, p)
		}
	}
	var out [][2]grid.Point
	for _, s := range nodes {
		for _, d := range nodes {
			if s != d {
				out = append(out, [2]grid.Point{s, d})
			}
		}
	}
	return out
}
