package routing

import (
	"fmt"

	"ocpmesh/internal/grid"
	"ocpmesh/internal/mesh"
)

// Detour is a wall-following fault-tolerant router in the spirit of the
// f-ring/extended-e-cube family the paper cites: it routes greedily
// toward the destination (x offset first) and, when the greedy hop is
// blocked by a forbidden region, follows the region's boundary — needing
// only the local knowledge a real node has: which of its neighbors are
// usable — until it can make fresh progress toward the destination.
//
// Convex fault regions are exactly what makes this strategy effective:
// following the boundary of an orthogonal convex polygon never
// backtracks past the obstacle, whereas concave regions (U/H shapes) can
// trap a boundary-follower. Detour is not guaranteed to deliver on
// arbitrary multi-obstacle configurations; it returns an error when its
// hop budget is exhausted, and the experiments measure its delivery rate
// and stretch against the BFS oracle.
type Detour struct {
	// MaxHops bounds the walk; 0 means 4 x machine size.
	MaxHops int
}

// Name implements Router.
func (Detour) Name() string { return "detour" }

// Route implements Router. It allocates a fresh path per query; batch
// callers should use RouteAppend with a reused buffer.
func (d Detour) Route(g *Graph, src, dst grid.Point) (Path, error) {
	path, err := d.RouteAppend(g, src, dst, nil)
	if err != nil {
		return nil, err
	}
	return path, nil
}

// RouteAppend routes src to dst appending into buf[:0], so a caller
// issuing many queries reuses one allocation. On error the returned
// slice still owns the (partially written) buffer — pass it back in on
// the next call to keep the capacity.
func (d Detour) RouteAppend(g *Graph, src, dst grid.Point, buf Path) (Path, error) {
	if err := g.CheckEndpoints(src, dst); err != nil {
		return buf, err
	}
	topo := g.res.Topo
	maxHops := d.MaxHops
	if maxHops == 0 {
		maxHops = 4 * topo.Size()
	}

	path := append(buf[:0], src)
	cur := src
	// Wall-following state: in wall mode we keep the obstacle on our
	// right hand and remember how close to dst we were when we hit it;
	// we leave wall mode at any node strictly closer than that.
	wall := false
	var heading mesh.Direction
	hitDist := 0

	for cur != dst && path.Len() < maxHops {
		if !wall {
			dir, _ := xyNextDir(topo, cur, dst)
			if next, ok := topo.NeighborIn(cur, dir); ok && g.Allowed(next) {
				path = append(path, next)
				cur = next
				continue
			}
			// Blocked: enter wall mode heading "left" of the blocked
			// direction so the obstacle starts on our right.
			wall = true
			heading = TurnLeft(dir)
			hitDist = topo.Dist(cur, dst)
		}

		// Leave wall mode when strictly closer than the hit point and a
		// greedy step is available.
		if topo.Dist(cur, dst) < hitDist {
			if dir, ok := xyNextDir(topo, cur, dst); ok {
				if next, ok := topo.NeighborIn(cur, dir); ok && g.Allowed(next) {
					wall = false
					path = append(path, next)
					cur = next
					continue
				}
			}
		}

		// Right-hand rule: prefer turning right, then straight, then
		// left, then back.
		moved := false
		for _, dir := range [4]mesh.Direction{TurnRight(heading), heading, TurnLeft(heading), heading.Opposite()} {
			if next, ok := topo.NeighborIn(cur, dir); ok && g.Allowed(next) {
				heading = dir
				path = append(path, next)
				cur = next
				moved = true
				break
			}
		}
		if !moved {
			return path, fmt.Errorf("routing: detour: stuck at %v (isolated node)", cur)
		}
	}
	if cur != dst {
		return path, fmt.Errorf("routing: detour: hop budget %d exhausted between %v and %v", maxHops, src, dst)
	}
	return path, nil
}

// TurnRight returns the direction 90 degrees clockwise of d (in the
// paper's coordinates: north -> east -> south -> west). Exported so the
// precompiled index router (internal/routeidx) can replay the exact
// wall-following automaton.
func TurnRight(d mesh.Direction) mesh.Direction {
	switch d {
	case mesh.North:
		return mesh.East
	case mesh.East:
		return mesh.South
	case mesh.South:
		return mesh.West
	default:
		return mesh.North
	}
}

// TurnLeft returns the direction 90 degrees counterclockwise of d.
func TurnLeft(d mesh.Direction) mesh.Direction {
	switch d {
	case mesh.North:
		return mesh.West
	case mesh.West:
		return mesh.South
	case mesh.South:
		return mesh.East
	default:
		return mesh.North
	}
}
