package routing

import (
	"fmt"

	"ocpmesh/internal/grid"
)

// Oracle is the BFS shortest-path oracle wrapped as a Router, used as the
// ideal baseline in simulations: it always delivers when a path exists
// and its paths are exactly minimal under the active fault model.
type Oracle struct{}

// Name implements Router.
func (Oracle) Name() string { return "oracle" }

// Route implements Router.
func (Oracle) Route(g *Graph, src, dst grid.Point) (Path, error) {
	path, ok := g.ShortestPath(src, dst)
	if !ok {
		return nil, fmt.Errorf("routing: oracle: %v unreachable from %v", dst, src)
	}
	return path, nil
}
