package routing

import (
	"fmt"

	"ocpmesh/internal/grid"
	"ocpmesh/internal/mesh"
)

// AdaptiveMinimal is fully adaptive minimal routing in the spirit of the
// paper's reference [9] (Wu, "Fault-tolerant adaptive and minimal routing
// in mesh-connected multicomputers using extended safety levels"): every
// hop moves strictly closer to the destination, but unlike XY the router
// may pick either productive dimension, sidestepping fault regions while
// keeping the path minimal. Convex fault regions are what make such
// progressive (never-backtracking) routing work: a minimal path around an
// orthogonal convex polygon exists whenever one of the two productive
// "staircases" is clear.
//
// The router uses one step of lookahead (it avoids a productive neighbor
// from which no productive move would remain except into the region),
// mirroring the safety information nodes exchange in [9]. It fails rather
// than misroute: a failure means no minimal path was found, not that the
// destination is unreachable.
type AdaptiveMinimal struct{}

// Name implements Router.
func (AdaptiveMinimal) Name() string { return "adaptive-minimal" }

// Route implements Router.
func (AdaptiveMinimal) Route(g *Graph, src, dst grid.Point) (Path, error) {
	if err := g.CheckEndpoints(src, dst); err != nil {
		return nil, err
	}
	topo := g.res.Topo
	path := Path{src}
	cur := src
	for cur != dst {
		candidates := productiveDirs(topo, cur, dst)
		next := grid.Point{}
		found := false
		// Prefer a productive neighbor that keeps another productive
		// option open (one-step lookahead), falling back to any
		// productive neighbor.
		var fallback grid.Point
		haveFallback := false
		for _, d := range candidates {
			q, ok := topo.NeighborIn(cur, d)
			if !ok || !g.Allowed(q) {
				continue
			}
			if !haveFallback {
				fallback, haveFallback = q, true
			}
			if q == dst || len(allowedProductive(g, q, dst)) > 0 {
				next, found = q, true
				break
			}
		}
		if !found && haveFallback {
			next, found = fallback, true
		}
		if !found {
			return nil, fmt.Errorf("routing: adaptive: no minimal step from %v toward %v", cur, dst)
		}
		path = append(path, next)
		cur = next
	}
	return path, nil
}

// productiveDirs lists the directions that reduce the distance to dst,
// larger remaining offset first (a common adaptivity heuristic: keep the
// dimension with more slack for later).
func productiveDirs(topo *mesh.Topology, cur, dst grid.Point) []mesh.Direction {
	var out []mesh.Direction
	dx, dy := 0, 0
	var xDir, yDir mesh.Direction
	if cur.X != dst.X {
		xDir = stepDir(topo, cur.X, dst.X, topo.Width(), mesh.West, mesh.East)
		dx = wrapAbs(topo, cur.X-dst.X, topo.Width())
	}
	if cur.Y != dst.Y {
		yDir = stepDir(topo, cur.Y, dst.Y, topo.Height(), mesh.South, mesh.North)
		dy = wrapAbs(topo, cur.Y-dst.Y, topo.Height())
	}
	switch {
	case dx == 0 && dy == 0:
	case dx == 0:
		out = append(out, yDir)
	case dy == 0:
		out = append(out, xDir)
	case dx >= dy:
		out = append(out, xDir, yDir)
	default:
		out = append(out, yDir, xDir)
	}
	return out
}

// allowedProductive returns the allowed productive neighbors of cur.
func allowedProductive(g *Graph, cur, dst grid.Point) []grid.Point {
	var out []grid.Point
	for _, d := range productiveDirs(g.res.Topo, cur, dst) {
		if q, ok := g.res.Topo.NeighborIn(cur, d); ok && g.Allowed(q) {
			out = append(out, q)
		}
	}
	return out
}

func wrapAbs(topo *mesh.Topology, delta, span int) int {
	if delta < 0 {
		delta = -delta
	}
	if topo.Kind() == mesh.Torus2D && span-delta < delta {
		return span - delta
	}
	return delta
}
