package routing

import (
	"math/rand"
	"testing"

	"ocpmesh/internal/core"
	"ocpmesh/internal/fault"
	"ocpmesh/internal/mesh"
	"ocpmesh/internal/status"
)

// XY turns are always x-to-y, so its channel dependency graph is acyclic
// on any faulty mesh under any fault model — failures just remove paths,
// never add turns. This is the classic argument for why the block model
// needs few virtual channels, exercised here over random configurations.
func TestXYCDGAcyclicOnFaultyMeshes(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 15; trial++ {
		topo := mesh.MustNew(5+rng.Intn(3), 5+rng.Intn(3), mesh.Mesh2D)
		faults := fault.Uniform{Count: rng.Intn(6)}.Generate(topo, rng)
		res, err := core.FormOn(core.Config{
			Width: topo.Width(), Height: topo.Height(), Safety: status.Def2b,
		}, topo, faults)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range []Model{ModelBlocks, ModelRegions} {
			g := NewGraph(res, m)
			cdg, _, err := AnalyzeDeadlock(g, XY{}, SingleVC, AllPairs(g))
			if err != nil {
				t.Fatal(err)
			}
			if cyc, found := cdg.FindCycle(); found {
				t.Fatalf("trial %d (%v): XY CDG cycle %v", trial, m, cyc)
			}
		}
	}
}

// Adaptive minimal routing makes only productive turns, and on a MESH a
// productive path never reverses direction within a dimension; the
// detour router, by contrast, can introduce arbitrary turns, so its CDG
// may be cyclic — the cost of its generality, and exactly why the
// wall-following routers in the literature need extra virtual channels.
func TestAdaptiveProductivePathsNeverReverse(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for trial := 0; trial < 20; trial++ {
		topo := mesh.MustNew(10, 10, mesh.Mesh2D)
		faults := fault.Uniform{Count: 8}.Generate(topo, rng)
		res, err := core.FormOn(core.Config{Width: 10, Height: 10, Safety: status.Def2b}, topo, faults)
		if err != nil {
			t.Fatal(err)
		}
		g := NewGraph(res, ModelRegions)
		for _, pr := range SamplePairs(res, 12, rng) {
			path, err := (AdaptiveMinimal{}).Route(g, pr[0], pr[1])
			if err != nil {
				continue
			}
			sawX, sawY := 0, 0 // -1, 0, +1 senses
			for i := 1; i < len(path); i++ {
				dx, dy := path[i].X-path[i-1].X, path[i].Y-path[i-1].Y
				if dx != 0 {
					if sawX != 0 && sawX != sign(dx) {
						t.Fatalf("trial %d: path reverses in x: %v", trial, path)
					}
					sawX = sign(dx)
				}
				if dy != 0 {
					if sawY != 0 && sawY != sign(dy) {
						t.Fatalf("trial %d: path reverses in y: %v", trial, path)
					}
					sawY = sign(dy)
				}
			}
		}
	}
}

func sign(v int) int {
	if v < 0 {
		return -1
	}
	if v > 0 {
		return 1
	}
	return 0
}

// The BFS oracle dominates every online router: whenever a router
// delivers, the oracle delivers with a path at most as long.
func TestOracleDominatesOnlineRouters(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	routers := []Router{XY{}, AdaptiveMinimal{}, Detour{}}
	for trial := 0; trial < 15; trial++ {
		topo := mesh.MustNew(12, 12, mesh.Mesh2D)
		faults := fault.Clustered{Count: 10, Clusters: 2, Spread: 2}.Generate(topo, rng)
		res, err := core.FormOn(core.Config{Width: 12, Height: 12, Safety: status.Def2b}, topo, faults)
		if err != nil {
			t.Fatal(err)
		}
		g := NewGraph(res, ModelRegions)
		for _, pr := range SamplePairs(res, 10, rng) {
			for _, r := range routers {
				path, err := r.Route(g, pr[0], pr[1])
				if err != nil {
					continue
				}
				oracle, ok := g.ShortestPath(pr[0], pr[1])
				if !ok {
					t.Fatalf("trial %d: %s delivered an unreachable pair", trial, r.Name())
				}
				if oracle.Len() > path.Len() {
					t.Fatalf("trial %d: oracle longer than %s: %d vs %d",
						trial, r.Name(), oracle.Len(), path.Len())
				}
			}
		}
	}
}
