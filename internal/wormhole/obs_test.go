package wormhole

import (
	"testing"

	"ocpmesh/internal/core"
	"ocpmesh/internal/fault"
	"ocpmesh/internal/grid"
	"ocpmesh/internal/obs"
	"ocpmesh/internal/routing"
	"ocpmesh/internal/status"
)

func obsGraph(t *testing.T) *routing.Graph {
	t.Helper()
	fx := fault.Figure1()
	res, err := core.FormOn(core.Config{
		Width: fx.Topo.Width(), Height: fx.Topo.Height(), Safety: status.Def2a,
	}, fx.Topo, fx.Faults)
	if err != nil {
		t.Fatal(err)
	}
	return routing.NewGraph(res, routing.ModelRegions)
}

func TestSimulateRecords(t *testing.T) {
	g := obsGraph(t)
	sink := &obs.CollectSink{}
	rec := obs.NewRecorder(obs.NewTracer(sink), obs.NewRegistry())

	flows := []Flow{
		{Src: grid.Pt(0, 0), Dst: grid.Pt(9, 0)},
		{Src: grid.Pt(0, 1), Dst: grid.Pt(9, 1), InjectCycle: 2},
	}
	stats, err := Simulate(g, routing.Oracle{}, flows, Config{PacketLen: 4, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Delivered != 2 {
		t.Fatalf("delivered = %d, want 2", stats.Delivered)
	}

	events := sink.Filter(obs.EWormhole)
	if len(events) != 1 {
		t.Fatalf("got %d wormhole events, want 1", len(events))
	}
	e := events[0]
	if e.Name != "worm" || e.N != 2 || e.Cycles != stats.Cycles || e.Value != stats.AvgLatency() {
		t.Fatalf("summary event wrong: %+v", e)
	}

	snap := rec.Metrics().Snapshot()
	if snap.Counters["wormhole_injected"] != 2 || snap.Counters["wormhole_delivered"] != 2 {
		t.Fatalf("counters wrong: %v", snap.Counters)
	}
	lat := snap.Histograms["wormhole_latency_cycles"]
	if lat.Count != 2 {
		t.Fatalf("latency histogram count = %d, want 2", lat.Count)
	}
	if lat.Max != float64(stats.MaxLatency) {
		t.Fatalf("latency histogram max = %v, want %d", lat.Max, stats.MaxLatency)
	}
	if snap.Histograms["wormhole_block_cycles"].Count != 2 {
		t.Fatal("block_cycles histogram missing observations")
	}
	occ := snap.Histograms["wormhole_channel_occupancy"]
	if occ.Count != uint64(stats.Cycles) {
		t.Fatalf("occupancy observed %d times, want one per cycle (%d)", occ.Count, stats.Cycles)
	}
}

func TestSimulateFlitsRecords(t *testing.T) {
	g := obsGraph(t)
	sink := &obs.CollectSink{}
	rec := obs.NewRecorder(obs.NewTracer(sink), obs.NewRegistry())

	// Two flows contending for the same row force flit-level blocking.
	flows := []Flow{
		{Src: grid.Pt(0, 0), Dst: grid.Pt(9, 0)},
		{Src: grid.Pt(1, 0), Dst: grid.Pt(9, 0)},
	}
	stats, err := SimulateFlits(g, routing.Oracle{}, flows, FlitConfig{
		PacketLen: 4, BufDepth: 2, Recorder: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Delivered != 2 {
		t.Fatalf("delivered = %d, want 2", stats.Delivered)
	}

	events := sink.Filter(obs.EWormhole)
	if len(events) != 1 || events[0].Name != "flit" || events[0].N != 2 {
		t.Fatalf("summary event wrong: %+v", events)
	}

	snap := rec.Metrics().Snapshot()
	if snap.Histograms["wormhole_latency_cycles"].Count != 2 {
		t.Fatal("latency histogram missing observations")
	}
	blk := snap.Histograms["wormhole_block_cycles"]
	if blk.Count != 2 {
		t.Fatal("block_cycles histogram missing observations")
	}
	if blk.Max == 0 {
		t.Fatal("contending flows should block the loser for at least one cycle")
	}
	buf := snap.Histograms["wormhole_flit_buffered"]
	if buf.Count != uint64(stats.Cycles) {
		t.Fatalf("buffered observed %d times, want one per cycle (%d)", buf.Count, stats.Cycles)
	}
	if buf.Max != float64(stats.PeakBufferedFlits) {
		t.Fatalf("buffered max = %v, want peak %d", buf.Max, stats.PeakBufferedFlits)
	}
	if snap.Histograms["wormhole_channel_occupancy"].Count != uint64(stats.Cycles) {
		t.Fatal("channel occupancy not observed each cycle")
	}
}

// TestSimulateNilRecorderMatches pins the zero-overhead contract: the same
// workload with and without a recorder must produce identical statistics.
func TestSimulateNilRecorderMatches(t *testing.T) {
	g := obsGraph(t)
	flows := []Flow{
		{Src: grid.Pt(0, 0), Dst: grid.Pt(9, 5)},
		{Src: grid.Pt(9, 0), Dst: grid.Pt(0, 5), InjectCycle: 1},
		{Src: grid.Pt(0, 5), Dst: grid.Pt(9, 0), InjectCycle: 3},
	}
	rec := obs.NewRecorder(nil, obs.NewRegistry())

	plain, err := Simulate(g, routing.Oracle{}, flows, Config{PacketLen: 3})
	if err != nil {
		t.Fatal(err)
	}
	traced, err := Simulate(g, routing.Oracle{}, flows, Config{PacketLen: 3, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	if *plain != *traced {
		t.Fatalf("stats diverge with recorder: %+v vs %+v", plain, traced)
	}

	fplain, err := SimulateFlits(g, routing.Oracle{}, flows, FlitConfig{PacketLen: 3, BufDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	ftraced, err := SimulateFlits(g, routing.Oracle{}, flows, FlitConfig{PacketLen: 3, BufDepth: 2, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	if *fplain != *ftraced {
		t.Fatalf("flit stats diverge with recorder: %+v vs %+v", fplain, ftraced)
	}
}
