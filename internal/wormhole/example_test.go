package wormhole_test

import (
	"fmt"

	"ocpmesh/internal/core"
	"ocpmesh/internal/grid"
	"ocpmesh/internal/mesh"
	"ocpmesh/internal/routing"
	"ocpmesh/internal/wormhole"
)

// Four worms chasing each other around a torus ring deadlock with one
// virtual channel; a dateline policy (switch to VC 1 after passing the
// x=0 column) breaks the cycle.
func ExampleSimulate() {
	res, err := core.Form(core.Config{Width: 4, Height: 4, Kind: mesh.Torus2D}, nil)
	if err != nil {
		panic(err)
	}
	g := routing.NewGraph(res, routing.ModelRegions)
	flows := []wormhole.Flow{
		{Src: grid.Pt(0, 0), Dst: grid.Pt(2, 0)},
		{Src: grid.Pt(1, 0), Dst: grid.Pt(3, 0)},
		{Src: grid.Pt(2, 0), Dst: grid.Pt(0, 0)},
		{Src: grid.Pt(3, 0), Dst: grid.Pt(1, 0)},
	}

	st, err := wormhole.Simulate(g, routing.XY{}, flows, wormhole.Config{PacketLen: 2})
	if err != nil {
		panic(err)
	}
	fmt.Println("single VC deadlocked:", st.Deadlocked)

	dateline := func(p routing.Path, hop int) int {
		for i := 1; i <= hop; i++ {
			if p[i].X == 0 {
				return 1
			}
		}
		return 0
	}
	st2, err := wormhole.Simulate(g, routing.XY{}, flows,
		wormhole.Config{PacketLen: 2, Policy: dateline})
	if err != nil {
		panic(err)
	}
	fmt.Println("dateline VC delivered:", st2.Delivered)
	// Output:
	// single VC deadlocked: true
	// dateline VC delivered: 4
}
