package wormhole

import (
	"math/rand"
	"testing"

	"ocpmesh/internal/core"
	"ocpmesh/internal/fault"
	"ocpmesh/internal/grid"
	"ocpmesh/internal/mesh"
	"ocpmesh/internal/routing"
	"ocpmesh/internal/status"
)

func graph(t *testing.T, w, h int, kind mesh.Kind, faults ...grid.Point) *routing.Graph {
	t.Helper()
	res, err := core.Form(core.Config{Width: w, Height: h, Kind: kind, Safety: status.Def2b}, faults)
	if err != nil {
		t.Fatal(err)
	}
	return routing.NewGraph(res, routing.ModelRegions)
}

func TestSinglePacketLatency(t *testing.T) {
	g := graph(t, 8, 8, mesh.Mesh2D)
	flows := []Flow{{Src: grid.Pt(0, 0), Dst: grid.Pt(5, 0)}}
	st, err := Simulate(g, routing.XY{}, flows, Config{PacketLen: 3})
	if err != nil {
		t.Fatal(err)
	}
	if st.Injected != 1 || st.Delivered != 1 || st.Deadlocked {
		t.Fatalf("stats = %+v", st)
	}
	// 5 hops: head acquires one channel per cycle (5 cycles), then the
	// worm spans min(3,5)=3 channels which drain one per cycle.
	if st.AvgLatency() != 8 {
		t.Fatalf("latency = %g, want 8", st.AvgLatency())
	}
	if st.MaxLatency != 8 {
		t.Fatalf("max latency = %d", st.MaxLatency)
	}
}

func TestZeroHopPacket(t *testing.T) {
	g := graph(t, 4, 4, mesh.Mesh2D)
	st, err := Simulate(g, routing.XY{}, []Flow{{Src: grid.Pt(1, 1), Dst: grid.Pt(1, 1)}},
		Config{PacketLen: 2})
	if err != nil {
		t.Fatal(err)
	}
	if st.Delivered != 1 || st.AvgLatency() != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestUnroutableFlowSkipped(t *testing.T) {
	g := graph(t, 6, 6, mesh.Mesh2D, grid.Pt(3, 3))
	flows := []Flow{
		{Src: grid.Pt(0, 3), Dst: grid.Pt(5, 3)}, // XY blocked by the fault
		{Src: grid.Pt(0, 0), Dst: grid.Pt(5, 0)}, // clear
	}
	st, err := Simulate(g, routing.XY{}, flows, Config{PacketLen: 2})
	if err != nil {
		t.Fatal(err)
	}
	if st.Unroutable != 1 || st.Injected != 1 || st.Delivered != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestContentionSerializes(t *testing.T) {
	// Two packets over the same row: the second waits for the first's
	// tail to free the shared channels.
	g := graph(t, 10, 10, mesh.Mesh2D)
	flows := []Flow{
		{Src: grid.Pt(0, 0), Dst: grid.Pt(6, 0)},
		{Src: grid.Pt(0, 0), Dst: grid.Pt(6, 0), InjectCycle: 1},
	}
	solo, err := Simulate(g, routing.XY{}, flows[:1], Config{PacketLen: 4})
	if err != nil {
		t.Fatal(err)
	}
	both, err := Simulate(g, routing.XY{}, flows, Config{PacketLen: 4})
	if err != nil {
		t.Fatal(err)
	}
	if both.Delivered != 2 || both.Deadlocked {
		t.Fatalf("stats = %+v", both)
	}
	if both.MaxLatency <= solo.MaxLatency {
		t.Fatalf("contention must delay the second packet: %d vs %d", both.MaxLatency, solo.MaxLatency)
	}
}

func TestDisjointTrafficParallel(t *testing.T) {
	// Packets on distinct rows do not interact: same latency as alone.
	g := graph(t, 10, 10, mesh.Mesh2D)
	var flows []Flow
	for y := 0; y < 5; y++ {
		flows = append(flows, Flow{Src: grid.Pt(0, y), Dst: grid.Pt(7, y)})
	}
	st, err := Simulate(g, routing.XY{}, flows, Config{PacketLen: 3})
	if err != nil {
		t.Fatal(err)
	}
	if st.Delivered != 5 {
		t.Fatalf("stats = %+v", st)
	}
	if st.AvgLatency() != 10 { // 7 hops + 3 drain
		t.Fatalf("latency = %g, want 10", st.AvgLatency())
	}
}

// The classic wormhole deadlock: four worms chasing each other around a
// torus ring with one virtual channel.
func TestRingDeadlockSingleVC(t *testing.T) {
	g := graph(t, 4, 4, mesh.Torus2D)
	flows := []Flow{
		{Src: grid.Pt(0, 0), Dst: grid.Pt(2, 0)},
		{Src: grid.Pt(1, 0), Dst: grid.Pt(3, 0)},
		{Src: grid.Pt(2, 0), Dst: grid.Pt(0, 0)},
		{Src: grid.Pt(3, 0), Dst: grid.Pt(1, 0)},
	}
	st, err := Simulate(g, routing.XY{}, flows, Config{PacketLen: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Deadlocked {
		t.Fatalf("expected wormhole deadlock, got %+v", st)
	}
	if st.Delivered != 0 {
		t.Fatalf("no worm can finish in the ring deadlock: %+v", st)
	}
}

// A dateline virtual-channel policy breaks the same ring deadlock —
// the dynamic counterpart of the static CDG result in package routing.
func TestDatelinePolicyBreaksRingDeadlock(t *testing.T) {
	g := graph(t, 4, 4, mesh.Torus2D)
	flows := []Flow{
		{Src: grid.Pt(0, 0), Dst: grid.Pt(2, 0)},
		{Src: grid.Pt(1, 0), Dst: grid.Pt(3, 0)},
		{Src: grid.Pt(2, 0), Dst: grid.Pt(0, 0)},
		{Src: grid.Pt(3, 0), Dst: grid.Pt(1, 0)},
	}
	dateline := func(p routing.Path, hop int) int {
		for i := 1; i <= hop; i++ {
			if p[i].X == 0 {
				return 1 // crossed the x=0 dateline column
			}
		}
		return 0
	}
	st, err := Simulate(g, routing.XY{}, flows, Config{PacketLen: 2, Policy: dateline})
	if err != nil {
		t.Fatal(err)
	}
	if st.Deadlocked {
		t.Fatal("dateline policy must break the ring deadlock")
	}
	if st.Delivered != 4 {
		t.Fatalf("stats = %+v", st)
	}
}

// XY on a fault-free mesh never deadlocks, matching its acyclic CDG.
func TestXYMeshNeverDeadlocks(t *testing.T) {
	g := graph(t, 8, 8, mesh.Mesh2D)
	rng := rand.New(rand.NewSource(2))
	var flows []Flow
	for i := 0; i < 120; i++ {
		src := grid.Pt(rng.Intn(8), rng.Intn(8))
		dst := grid.Pt(rng.Intn(8), rng.Intn(8))
		flows = append(flows, Flow{Src: src, Dst: dst, InjectCycle: rng.Intn(20)})
	}
	st, err := Simulate(g, routing.XY{}, flows, Config{PacketLen: 4})
	if err != nil {
		t.Fatal(err)
	}
	if st.Deadlocked {
		t.Fatalf("XY on a mesh must not deadlock: %+v", st)
	}
	if st.Delivered != st.Injected {
		t.Fatalf("all injected packets must deliver: %+v", st)
	}
}

// Routing under the refined fault model delivers more traffic than under
// the block model on the same faulty machine.
func TestFaultModelsUnderWormhole(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	topo := mesh.MustNew(16, 16, mesh.Mesh2D)
	faults := fault.Clustered{Count: 14, Clusters: 2, Spread: 2}.Generate(topo, rng)
	res, err := core.FormOn(core.Config{Width: 16, Height: 16, Safety: status.Def2a}, topo, faults)
	if err != nil {
		t.Fatal(err)
	}
	var flows []Flow
	for _, pr := range routing.SamplePairs(res, 150, rng) {
		flows = append(flows, Flow{Src: pr[0], Dst: pr[1], InjectCycle: rng.Intn(30)})
	}
	var delivered [2]int
	for i, model := range []routing.Model{routing.ModelBlocks, routing.ModelRegions} {
		g := routing.NewGraph(res, model)
		st, err := Simulate(g, routing.Oracle{}, flows, Config{PacketLen: 3})
		if err != nil {
			t.Fatal(err)
		}
		if st.Deadlocked {
			t.Fatalf("%v: oracle traffic deadlocked: %+v", model, st)
		}
		delivered[i] = st.Delivered
	}
	if delivered[1] < delivered[0] {
		t.Fatalf("refined model delivered less: %d vs %d", delivered[1], delivered[0])
	}
}

func TestConfigValidation(t *testing.T) {
	g := graph(t, 4, 4, mesh.Mesh2D)
	if _, err := Simulate(g, routing.XY{}, nil, Config{PacketLen: 0}); err == nil {
		t.Fatal("PacketLen 0 must be rejected")
	}
	if _, err := Simulate(g, routing.XY{},
		[]Flow{{Src: grid.Pt(0, 0), Dst: grid.Pt(1, 0), InjectCycle: -1}},
		Config{PacketLen: 1}); err == nil {
		t.Fatal("negative inject cycle must be rejected")
	}
	// MaxCycles guard.
	st, err := Simulate(g, routing.XY{}, nil, Config{PacketLen: 1})
	if err != nil || st.Injected != 0 || st.Cycles != 0 {
		t.Fatalf("empty simulation: %+v, %v", st, err)
	}
}

func TestOracleRouterName(t *testing.T) {
	if (routing.Oracle{}).Name() != "oracle" {
		t.Fatal("oracle name wrong")
	}
	g := graph(t, 4, 4, mesh.Mesh2D, grid.Pt(1, 0), grid.Pt(0, 1))
	// Corner (0,0) cut off from the rest: hmm, (0,0) is disabled itself
	// then (corner of the block). Use a plainly unreachable pair instead.
	if _, err := (routing.Oracle{}).Route(g, grid.Pt(0, 0), grid.Pt(3, 3)); err == nil {
		t.Log("corner not isolated in this configuration; skip")
	}
}
