package wormhole

import (
	"fmt"
	"sort"

	"ocpmesh/internal/grid"
	"ocpmesh/internal/mesh"
	"ocpmesh/internal/obs"
	"ocpmesh/internal/routing"
)

// FlitConfig tunes the flit-level simulator.
type FlitConfig struct {
	// PacketLen is the number of flits per packet (head..tail, >= 1).
	PacketLen int
	// BufDepth is the capacity, in flits, of each virtual-channel input
	// buffer (>= 1).
	BufDepth int
	// Policy assigns virtual channels to hops (default SingleVC).
	Policy routing.VCPolicy
	// MaxCycles aborts runaway simulations (default 200_000).
	MaxCycles int
	// Recorder, when non-nil, records per-cycle channel and buffer
	// occupancy, per-packet blocking-time and latency histograms, and a
	// summary trace event. Nil disables observability at no cost.
	Recorder *obs.Recorder
}

// FlitStats extends Stats with flit-level measurements.
type FlitStats struct {
	Stats
	// FlitsMoved counts link traversals, the basis of throughput.
	FlitsMoved int
	// PeakBufferedFlits is the maximum number of flits resident in input
	// buffers at any cycle.
	PeakBufferedFlits int
}

// Throughput returns link traversals (flits moved) per cycle.
func (s *FlitStats) Throughput() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.FlitsMoved) / float64(s.Cycles)
}

// flit is one flit in flight. Flits live in per-(node, input-vc) FIFO
// buffers; hop is the index of the buffer's node along the packet path.
type flit struct {
	pkt    *fpacket
	isTail bool
}

// fpacket is the runtime state of a flit-level packet.
type fpacket struct {
	id       int
	inject   int
	path     routing.Path
	vcs      []int    // virtual channel per hop
	bufs     []bufKey // buffer at each path node (len(path) entries)
	injected int      // flits injected so far
	moved    int      // last cycle any flit of this packet advanced (for blocking accounting)
	blocked  int      // active cycles with no flit movement
	done     bool
}

// bufKey identifies one input FIFO: one buffer per (node, input port,
// virtual channel), with input port 4 standing for the local injection
// port. Buffers are ATOMIC: a buffer holds flits of one packet at a time
// (a flit may enter only an empty buffer or one whose newest flit belongs
// to the same packet). Atomic per-port VC allocation is a standard router
// discipline; it preserves wormhole blocking semantics and keeps
// dimension-order routing deadlock-free.
type bufKey struct {
	node grid.Point
	in   int // mesh.Direction of the upstream node, or localPort
	vc   int
}

// localPort is the injection port index.
const localPort = 4

// SimulateFlits runs the flit-level simulation: credit-based virtual
// channel flow control, one flit per physical link per cycle, per-packet
// output-channel allocation from head grant to tail passage. Compared to
// Simulate (the worm-level model) it additionally models finite buffer
// depth and flit pipelining, so latency includes the serialization of
// the packet body.
func SimulateFlits(g *routing.Graph, r routing.Router, flows []Flow, cfg FlitConfig) (*FlitStats, error) {
	if cfg.PacketLen < 1 {
		return nil, fmt.Errorf("wormhole: PacketLen must be >= 1, got %d", cfg.PacketLen)
	}
	if cfg.BufDepth < 1 {
		return nil, fmt.Errorf("wormhole: BufDepth must be >= 1, got %d", cfg.BufDepth)
	}
	policy := cfg.Policy
	if policy == nil {
		policy = routing.SingleVC
	}
	maxCycles := cfg.MaxCycles
	if maxCycles == 0 {
		maxCycles = 200_000
	}

	stats := &FlitStats{}
	var packets []*fpacket
	maxInject := 0
	for i, f := range flows {
		if f.InjectCycle < 0 {
			return nil, fmt.Errorf("wormhole: flow %d has negative inject cycle", i)
		}
		path, err := r.Route(g, f.Src, f.Dst)
		if err != nil {
			stats.Unroutable++
			continue
		}
		// The flit model identifies a buffer by its node, so a
		// self-crossing path (possible for the wall-following Detour
		// router) is ambiguous; count it as unroutable.
		visited := make(map[grid.Point]bool, len(path))
		loops := false
		for _, q := range path {
			if visited[q] {
				loops = true
				break
			}
			visited[q] = true
		}
		if loops {
			stats.Unroutable++
			continue
		}
		p := &fpacket{id: i, inject: f.InjectCycle, path: path, moved: -1}
		for h := 0; h+1 < len(path); h++ {
			p.vcs = append(p.vcs, policy(path, h))
		}
		p.bufs = make([]bufKey, len(path))
		for h := range path {
			vc := 0
			if len(p.vcs) > 0 {
				if h < len(p.vcs) {
					vc = p.vcs[h]
				} else {
					vc = p.vcs[len(p.vcs)-1]
				}
			}
			in := localPort
			if h > 0 {
				in = int(dirBetween(g.Topo(), path[h], path[h-1]))
			}
			p.bufs[h] = bufKey{node: path[h], in: in, vc: vc}
		}
		packets = append(packets, p)
		stats.Injected++
		if f.InjectCycle > maxInject {
			maxInject = f.InjectCycle
		}
	}
	sort.SliceStable(packets, func(i, j int) bool { return packets[i].inject < packets[j].inject })

	buffers := make(map[bufKey][]flit)

	// channelOwner maps an output virtual channel to the packet holding
	// it (from head grant until the tail crosses the link).
	channelOwner := make(map[routing.Channel]int)

	remaining := len(packets)
	buffered := 0
	for cycle := 0; remaining > 0; cycle++ {
		if cycle > maxCycles {
			return nil, fmt.Errorf("wormhole: exceeded %d cycles with %d packets in flight", maxCycles, remaining)
		}
		progress := false

		// Phase 1 — ejection: the destination consumes arriving flits
		// (ideal ejection bandwidth).
		for _, p := range packets {
			if p.done || len(p.path) == 0 {
				continue
			}
			key := p.bufs[len(p.path)-1]
			q := buffers[key]
			if len(q) > 0 && q[0].pkt == p {
				isTail := q[0].isTail
				buffers[key] = q[1:]
				buffered--
				progress = true
				p.moved = cycle
				if isTail {
					p.done = true
					remaining--
					stats.Delivered++
					latency := cycle - p.inject + 1
					stats.TotalLatency += latency
					if latency > stats.MaxLatency {
						stats.MaxLatency = latency
					}
					if cfg.Recorder != nil {
						cfg.Recorder.Histogram("wormhole_latency_cycles", nil).Observe(float64(latency))
						cfg.Recorder.Histogram("wormhole_block_cycles", nil).Observe(float64(p.blocked))
					}
				}
			}
		}

		// Phase 2 — switch traversal: one flit per physical link per
		// cycle, deterministic packet-id order, downstream hops first so a
		// flit moves at most one hop per cycle. Heads allocate their
		// output channel on the fly.
		linkUsed := make(map[link]bool)
		for _, p := range packets {
			if p.done || cycle < p.inject || len(p.vcs) == 0 {
				continue
			}
			for h := len(p.vcs) - 1; h >= 0; h-- {
				key := p.bufs[h]
				q := buffers[key]
				if len(q) == 0 || q[0].pkt != p {
					continue
				}
				out := routing.Channel{From: p.path[h], To: p.path[h+1], VC: p.vcs[h]}
				l := link{from: p.path[h], to: p.path[h+1]}
				// Channel allocation (head) or ownership check (body).
				owner, held := channelOwner[out]
				if !held {
					channelOwner[out] = p.id
					owner = p.id
				}
				if owner != p.id || linkUsed[l] {
					continue
				}
				// Credit check: space in the downstream buffer, which must
				// also be atomic to this packet.
				downKey := p.bufs[h+1]
				dq := buffers[downKey]
				if len(dq) >= cfg.BufDepth {
					continue
				}
				if len(dq) > 0 && dq[len(dq)-1].pkt != p {
					continue
				}
				mv := q[0]
				buffers[key] = q[1:]
				buffers[downKey] = append(buffers[downKey], mv)
				linkUsed[l] = true
				stats.FlitsMoved++
				progress = true
				p.moved = cycle
				if mv.isTail {
					delete(channelOwner, out) // tail passed: free the channel
				}
			}
		}

		// Phase 3 — injection: one flit per packet per cycle into the
		// source buffer of hop 0.
		for _, p := range packets {
			if p.done || cycle < p.inject || p.injected >= cfg.PacketLen {
				continue
			}
			if len(p.path) == 1 {
				// Zero-hop packet: flits bypass the network.
				p.injected = cfg.PacketLen
				p.done = true
				remaining--
				stats.Delivered++
				latency := cfg.PacketLen // serialization only
				stats.TotalLatency += latency
				if latency > stats.MaxLatency {
					stats.MaxLatency = latency
				}
				if cfg.Recorder != nil {
					cfg.Recorder.Histogram("wormhole_latency_cycles", nil).Observe(float64(latency))
					cfg.Recorder.Histogram("wormhole_block_cycles", nil).Observe(float64(p.blocked))
				}
				progress = true
				continue
			}
			key := p.bufs[0]
			if len(buffers[key]) >= cfg.BufDepth {
				continue
			}
			// Keep FIFO integrity: only inject when the buffer tail is
			// ours or the buffer is empty of other packets' flits.
			q := buffers[key]
			if len(q) > 0 && q[len(q)-1].pkt != p {
				continue
			}
			p.injected++
			buffers[key] = append(q, flit{pkt: p, isTail: p.injected == cfg.PacketLen})
			buffered++
			progress = true
			p.moved = cycle
		}

		// Blocking accounting: an active packet that moved no flit this
		// cycle is stalled on flow control (busy channel, full buffer, or
		// atomic-buffer conflict) — the flit-level face of wormhole
		// blocking.
		for _, p := range packets {
			if !p.done && cycle >= p.inject && p.moved != cycle {
				p.blocked++
			}
		}

		if buffered > stats.PeakBufferedFlits {
			stats.PeakBufferedFlits = buffered
		}
		if cfg.Recorder != nil {
			cfg.Recorder.Histogram("wormhole_channel_occupancy", nil).Observe(float64(len(channelOwner)))
			cfg.Recorder.Histogram("wormhole_flit_buffered", nil).Observe(float64(buffered))
		}
		stats.Cycles = cycle + 1
		if !progress && cycle >= maxInject {
			stats.Deadlocked = remaining > 0
			break
		}
	}
	recordSummary(cfg.Recorder, "flit", &stats.Stats)
	return stats, nil
}

// dirBetween returns the direction from a to its topology neighbor b.
func dirBetween(topo *mesh.Topology, a, b grid.Point) mesh.Direction {
	for _, d := range mesh.Directions {
		if q, ok := topo.NeighborIn(a, d); ok && q == b {
			return d
		}
	}
	panic(fmt.Sprintf("wormhole: %v and %v are not adjacent", a, b))
}
