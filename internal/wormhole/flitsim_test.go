package wormhole

import (
	"math/rand"
	"testing"

	"ocpmesh/internal/core"
	"ocpmesh/internal/fault"
	"ocpmesh/internal/grid"
	"ocpmesh/internal/mesh"
	"ocpmesh/internal/routing"
	"ocpmesh/internal/status"
)

func TestFlitSinglePacketLatency(t *testing.T) {
	g := graph(t, 10, 10, mesh.Mesh2D)
	flows := []Flow{{Src: grid.Pt(0, 0), Dst: grid.Pt(5, 0)}}
	st, err := SimulateFlits(g, routing.XY{}, flows, FlitConfig{PacketLen: 4, BufDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	if st.Delivered != 1 || st.Deadlocked {
		t.Fatalf("stats = %+v", st)
	}
	// Pipelined wormhole: the head needs ~1 cycle per hop after
	// injection, the tail follows PacketLen-1 flits behind; with ideal
	// ejection the tail ejects around hops + PacketLen + 1 cycles.
	want := 5 + 4 + 1
	if st.MaxLatency != want {
		t.Fatalf("latency = %d, want %d", st.MaxLatency, want)
	}
	// Every flit crossed every hop exactly once.
	if st.FlitsMoved != 5*4 {
		t.Fatalf("FlitsMoved = %d, want 20", st.FlitsMoved)
	}
}

func TestFlitZeroHop(t *testing.T) {
	g := graph(t, 4, 4, mesh.Mesh2D)
	st, err := SimulateFlits(g, routing.XY{},
		[]Flow{{Src: grid.Pt(2, 2), Dst: grid.Pt(2, 2)}}, FlitConfig{PacketLen: 3, BufDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.Delivered != 1 || st.MaxLatency != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFlitBufferDepthLimitsPipelining(t *testing.T) {
	// With BufDepth 1 the body flits advance in lock step behind the
	// head; deeper buffers cannot make a solo packet slower.
	g := graph(t, 12, 12, mesh.Mesh2D)
	flows := []Flow{{Src: grid.Pt(0, 0), Dst: grid.Pt(8, 0)}}
	shallow, err := SimulateFlits(g, routing.XY{}, flows, FlitConfig{PacketLen: 6, BufDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	deep, err := SimulateFlits(g, routing.XY{}, flows, FlitConfig{PacketLen: 6, BufDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	if deep.MaxLatency > shallow.MaxLatency {
		t.Fatalf("deeper buffers slower: %d vs %d", deep.MaxLatency, shallow.MaxLatency)
	}
	if shallow.Delivered != 1 || deep.Delivered != 1 {
		t.Fatal("both must deliver")
	}
}

func TestFlitContentionDelays(t *testing.T) {
	g := graph(t, 12, 12, mesh.Mesh2D)
	flows := []Flow{
		{Src: grid.Pt(0, 0), Dst: grid.Pt(9, 0)},
		{Src: grid.Pt(0, 0), Dst: grid.Pt(9, 0), InjectCycle: 1},
	}
	solo, err := SimulateFlits(g, routing.XY{}, flows[:1], FlitConfig{PacketLen: 5, BufDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	both, err := SimulateFlits(g, routing.XY{}, flows, FlitConfig{PacketLen: 5, BufDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	if both.Delivered != 2 || both.Deadlocked {
		t.Fatalf("stats = %+v", both)
	}
	if both.MaxLatency <= solo.MaxLatency {
		t.Fatalf("second packet must queue: %d vs %d", both.MaxLatency, solo.MaxLatency)
	}
}

func TestFlitRingDeadlockAndDateline(t *testing.T) {
	g := graph(t, 4, 4, mesh.Torus2D)
	flows := []Flow{
		{Src: grid.Pt(0, 0), Dst: grid.Pt(2, 0)},
		{Src: grid.Pt(1, 0), Dst: grid.Pt(3, 0)},
		{Src: grid.Pt(2, 0), Dst: grid.Pt(0, 0)},
		{Src: grid.Pt(3, 0), Dst: grid.Pt(1, 0)},
	}
	st, err := SimulateFlits(g, routing.XY{}, flows, FlitConfig{PacketLen: 3, BufDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Deadlocked {
		t.Fatalf("single-VC torus ring must deadlock at flit level: %+v", st)
	}

	dateline := func(p routing.Path, hop int) int {
		for i := 1; i <= hop; i++ {
			if p[i].X == 0 {
				return 1
			}
		}
		return 0
	}
	st2, err := SimulateFlits(g, routing.XY{}, flows, FlitConfig{PacketLen: 3, BufDepth: 1, Policy: dateline})
	if err != nil {
		t.Fatal(err)
	}
	if st2.Deadlocked || st2.Delivered != 4 {
		t.Fatalf("dateline policy must break the flit-level deadlock: %+v", st2)
	}
}

func TestFlitXYMeshNeverDeadlocks(t *testing.T) {
	g := graph(t, 8, 8, mesh.Mesh2D)
	rng := rand.New(rand.NewSource(7))
	var flows []Flow
	for i := 0; i < 80; i++ {
		flows = append(flows, Flow{
			Src:         grid.Pt(rng.Intn(8), rng.Intn(8)),
			Dst:         grid.Pt(rng.Intn(8), rng.Intn(8)),
			InjectCycle: rng.Intn(15),
		})
	}
	st, err := SimulateFlits(g, routing.XY{}, flows, FlitConfig{PacketLen: 4, BufDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	if st.Deadlocked || st.Delivered != st.Injected {
		t.Fatalf("stats = %+v", st)
	}
	if st.Throughput() <= 0 || st.PeakBufferedFlits <= 0 {
		t.Fatalf("throughput/buffer metrics missing: %+v", st)
	}
}

// The flit model and the worm model agree on delivery and deadlock for
// the same traffic, with the flit model's latency higher by the body
// serialization.
func TestFlitVsWormConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	topo := mesh.MustNew(12, 12, mesh.Mesh2D)
	faults := fault.Uniform{Count: 8}.Generate(topo, rng)
	res, err := core.FormOn(core.Config{Width: 12, Height: 12, Safety: status.Def2b}, topo, faults)
	if err != nil {
		t.Fatal(err)
	}
	g := routing.NewGraph(res, routing.ModelRegions)
	var flows []Flow
	for _, pr := range routing.SamplePairs(res, 40, rng) {
		flows = append(flows, Flow{Src: pr[0], Dst: pr[1], InjectCycle: rng.Intn(20)})
	}
	worm, err := Simulate(g, routing.Oracle{}, flows, Config{PacketLen: 4})
	if err != nil {
		t.Fatal(err)
	}
	flit, err := SimulateFlits(g, routing.Oracle{}, flows, FlitConfig{PacketLen: 4, BufDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	if worm.Deadlocked != flit.Deadlocked {
		t.Fatalf("deadlock disagreement: worm=%t flit=%t", worm.Deadlocked, flit.Deadlocked)
	}
	if !worm.Deadlocked {
		if worm.Delivered != flit.Delivered {
			t.Fatalf("delivery disagreement: %d vs %d", worm.Delivered, flit.Delivered)
		}
		if flit.AvgLatency() < worm.AvgLatency() {
			t.Fatalf("flit latency %g below worm latency %g", flit.AvgLatency(), worm.AvgLatency())
		}
	}
}

func TestFlitConfigValidation(t *testing.T) {
	g := graph(t, 4, 4, mesh.Mesh2D)
	if _, err := SimulateFlits(g, routing.XY{}, nil, FlitConfig{PacketLen: 0, BufDepth: 1}); err == nil {
		t.Fatal("PacketLen 0 must be rejected")
	}
	if _, err := SimulateFlits(g, routing.XY{}, nil, FlitConfig{PacketLen: 1, BufDepth: 0}); err == nil {
		t.Fatal("BufDepth 0 must be rejected")
	}
	if _, err := SimulateFlits(g, routing.XY{},
		[]Flow{{Src: grid.Pt(0, 0), Dst: grid.Pt(1, 0), InjectCycle: -2}},
		FlitConfig{PacketLen: 1, BufDepth: 1}); err == nil {
		t.Fatal("negative inject cycle must be rejected")
	}
}

func TestFlitUnroutableAndLoops(t *testing.T) {
	g := graph(t, 6, 6, mesh.Mesh2D, grid.Pt(3, 0))
	flows := []Flow{{Src: grid.Pt(0, 0), Dst: grid.Pt(5, 0)}} // XY blocked
	st, err := SimulateFlits(g, routing.XY{}, flows, FlitConfig{PacketLen: 2, BufDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.Unroutable != 1 || st.Injected != 0 {
		t.Fatalf("stats = %+v", st)
	}
}
