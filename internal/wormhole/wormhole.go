// Package wormhole is a cycle-accurate simulator of wormhole switching
// with virtual channels — the transmission mode of the multicomputers the
// paper targets ("the convexity of each faulty block facilitates a simple
// fault-tolerant and deadlock-free routing using relatively few virtual
// channels").
//
// The model is the classic "worm" abstraction: a packet of L flits
// occupies up to L consecutive virtual channels along its path. Each
// cycle the head tries to acquire the next channel of its (precomputed)
// path; a channel belongs to at most one worm, a physical link moves at
// most one head per cycle, and the tail releases channels as the worm
// advances or drains at the destination. Blocking is exactly wormhole
// blocking: a stalled worm keeps every channel it holds, which is what
// makes cyclic channel dependencies deadlock — the simulator detects the
// resulting global silence and reports it, complementing the static CDG
// analysis in package routing.
package wormhole

import (
	"fmt"
	"sort"

	"ocpmesh/internal/grid"
	"ocpmesh/internal/obs"
	"ocpmesh/internal/routing"
)

// Flow describes one packet to inject.
type Flow struct {
	Src, Dst grid.Point
	// InjectCycle is the earliest cycle the header may enter the network.
	InjectCycle int
}

// Config tunes a simulation.
type Config struct {
	// PacketLen is the worm length in flits (>= 1); a worm holds at most
	// this many channels.
	PacketLen int
	// Policy assigns virtual channels to hops (default SingleVC).
	Policy routing.VCPolicy
	// MaxCycles aborts runaway simulations (default 100_000).
	MaxCycles int
	// Recorder, when non-nil, records per-cycle channel occupancy, the
	// per-packet blocking-time and latency histograms, and a summary
	// trace event. Nil disables observability at no cost.
	Recorder *obs.Recorder
}

// Stats summarizes a simulation.
type Stats struct {
	// Injected counts packets that entered the network (routable flows).
	Injected int
	// Unroutable counts flows the router could not produce a path for.
	Unroutable int
	// Delivered counts packets whose tail reached the destination.
	Delivered int
	// Cycles is the cycle count at which the simulation ended.
	Cycles int
	// Deadlocked reports that undelivered worms stopped making progress
	// permanently (wormhole deadlock).
	Deadlocked bool
	// TotalLatency sums (delivery cycle - inject cycle) over delivered
	// packets; AvgLatency() derives the mean.
	TotalLatency int
	// MaxLatency is the largest single-packet latency.
	MaxLatency int
}

// AvgLatency returns the mean packet latency in cycles.
func (s *Stats) AvgLatency() float64 {
	if s.Delivered == 0 {
		return 0
	}
	return float64(s.TotalLatency) / float64(s.Delivered)
}

// packet is the runtime state of one worm.
type packet struct {
	id       int
	inject   int
	channels []routing.Channel // one per hop
	links    []link            // physical links, parallel to channels
	head     int               // channels acquired so far
	tail     int               // channels released so far
	blocked  int               // cycles spent stalled on channel acquisition
	done     bool
}

type link struct{ from, to grid.Point }

// Simulate routes every flow with r on g, then runs the cycle simulation
// under cfg. Flows the router cannot route are counted as Unroutable and
// skipped (a real system would discard or misroute them).
func Simulate(g *routing.Graph, r routing.Router, flows []Flow, cfg Config) (*Stats, error) {
	if cfg.PacketLen < 1 {
		return nil, fmt.Errorf("wormhole: PacketLen must be >= 1, got %d", cfg.PacketLen)
	}
	policy := cfg.Policy
	if policy == nil {
		policy = routing.SingleVC
	}
	maxCycles := cfg.MaxCycles
	if maxCycles == 0 {
		maxCycles = 100_000
	}

	stats := &Stats{}
	var packets []*packet
	maxInject := 0
	for i, f := range flows {
		if f.InjectCycle < 0 {
			return nil, fmt.Errorf("wormhole: flow %d has negative inject cycle", i)
		}
		path, err := r.Route(g, f.Src, f.Dst)
		if err != nil {
			stats.Unroutable++
			continue
		}
		p := &packet{id: i, inject: f.InjectCycle}
		for h := 0; h+1 < len(path); h++ {
			p.channels = append(p.channels, routing.Channel{From: path[h], To: path[h+1], VC: policy(path, h)})
			p.links = append(p.links, link{from: path[h], to: path[h+1]})
		}
		packets = append(packets, p)
		stats.Injected++
		if f.InjectCycle > maxInject {
			maxInject = f.InjectCycle
		}
	}
	// Oldest-first arbitration, ties by flow order.
	sort.SliceStable(packets, func(i, j int) bool { return packets[i].inject < packets[j].inject })

	reserved := make(map[routing.Channel]int)
	remaining := len(packets)

	for cycle := 0; remaining > 0; cycle++ {
		if cycle > maxCycles {
			return nil, fmt.Errorf("wormhole: exceeded %d cycles with %d packets in flight", maxCycles, remaining)
		}
		progress := false
		linkUsed := make(map[link]bool)

		for _, p := range packets {
			if p.done || cycle < p.inject {
				continue
			}
			switch {
			case p.head < len(p.channels):
				// Header tries to claim the next channel.
				c := p.channels[p.head]
				l := p.links[p.head]
				if _, busy := reserved[c]; busy || linkUsed[l] {
					p.blocked++ // wormhole blocking: stalled, holding its channels
					continue
				}
				reserved[c] = p.id
				linkUsed[l] = true
				p.head++
				progress = true
				if p.head-p.tail > cfg.PacketLen {
					delete(reserved, p.channels[p.tail])
					p.tail++
				}
			case p.tail < p.head:
				// Head ejected at the destination: drain one channel per
				// cycle (the destination consumes one flit per cycle).
				delete(reserved, p.channels[p.tail])
				p.tail++
				progress = true
			}
			// Delivery: every channel acquired and released (zero-hop
			// packets, src == dst, deliver on their inject cycle).
			if !p.done && p.head == len(p.channels) && p.tail == p.head {
				p.done = true
				remaining--
				stats.Delivered++
				latency := cycle - p.inject + 1
				stats.TotalLatency += latency
				if latency > stats.MaxLatency {
					stats.MaxLatency = latency
				}
				if cfg.Recorder != nil {
					cfg.Recorder.Histogram("wormhole_latency_cycles", nil).Observe(float64(latency))
					cfg.Recorder.Histogram("wormhole_block_cycles", nil).Observe(float64(p.blocked))
				}
			}
		}

		if cfg.Recorder != nil {
			cfg.Recorder.Histogram("wormhole_channel_occupancy", nil).Observe(float64(len(reserved)))
		}
		stats.Cycles = cycle + 1
		if !progress && cycle >= maxInject {
			// Deterministic system with no event this cycle and none
			// pending: the remaining worms are deadlocked.
			stats.Deadlocked = remaining > 0
			break
		}
	}
	recordSummary(cfg.Recorder, "worm", stats)
	return stats, nil
}

// recordSummary emits the end-of-simulation trace event and counters
// shared by both simulator levels. Nil-safe.
func recordSummary(rec *obs.Recorder, level string, s *Stats) {
	if rec == nil {
		return
	}
	rec.Counter("wormhole_injected").Add(int64(s.Injected))
	rec.Counter("wormhole_delivered").Add(int64(s.Delivered))
	rec.Counter("wormhole_unroutable").Add(int64(s.Unroutable))
	if s.Deadlocked {
		rec.Counter("wormhole_deadlocks").Inc()
	}
	rec.Emit(obs.Event{
		Type: obs.EWormhole, Name: level,
		N: s.Delivered, Cycles: s.Cycles, Value: s.AvgLatency(),
	})
}
