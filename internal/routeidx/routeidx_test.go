package routeidx

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"ocpmesh/internal/core"
	"ocpmesh/internal/fault"
	"ocpmesh/internal/grid"
	"ocpmesh/internal/mesh"
	"ocpmesh/internal/routing"
	"ocpmesh/internal/status"
)

func formOn(t testing.TB, topo *mesh.Topology, safety status.SafetyDef, faults *grid.PointSet) *core.Result {
	t.Helper()
	res, err := core.FormOn(core.Config{Width: topo.Width(), Height: topo.Height(), Kind: topo.Kind(), Safety: safety}, topo, faults)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// checkCoverage pins the index's interval tables to the model's
// forbidden set: every machine node is forbidden iff some row span
// covers it, and the column table agrees. Everything else in the index
// builds on this equivalence.
func checkCoverage(t *testing.T, ix *Index) {
	t.Helper()
	inSpans := func(spans []span, c int) bool {
		for _, s := range spans {
			if int(s.lo) <= c && c <= int(s.hi) {
				return true
			}
		}
		return false
	}
	for _, p := range ix.topo.Points() {
		forbidden := !ix.allow(p)
		if got := inSpans(ix.rows[p.Y], p.X); got != forbidden {
			t.Fatalf("row table at %v: forbidden=%t, span=%t", p, forbidden, got)
		}
		if got := inSpans(ix.cols[p.X], p.Y); got != forbidden {
			t.Fatalf("col table at %v: forbidden=%t, span=%t", p, forbidden, got)
		}
	}
}

// comparePair routes src->dst with Detour and with the index and
// requires identical outcomes: both fail, or both succeed with the
// exact same path.
func comparePair(t *testing.T, g *routing.Graph, ix *Index, src, dst grid.Point) {
	t.Helper()
	want, werr := routing.Detour{}.Route(g, src, dst)
	got, gerr := ix.Route(src, dst)
	if (werr == nil) != (gerr == nil) {
		t.Fatalf("%v->%v: detour err=%v, indexed err=%v", src, dst, werr, gerr)
	}
	if werr != nil {
		if errors.Is(werr, routing.ErrUnroutable) != errors.Is(gerr, routing.ErrUnroutable) {
			t.Fatalf("%v->%v: unroutable classification differs: detour %v, indexed %v", src, dst, werr, gerr)
		}
		return
	}
	if len(want) != len(got) {
		t.Fatalf("%v->%v: detour %d hops, indexed %d hops", src, dst, want.Len(), got.Len())
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%v->%v: paths diverge at step %d: detour %v, indexed %v", src, dst, i, want[i], got[i])
		}
	}
	hops, err := ix.Hops(src, dst)
	if err != nil || hops != got.Len() {
		t.Fatalf("%v->%v: Hops()=%d,%v, want %d", src, dst, hops, err, got.Len())
	}
}

// TestRouteIndexMatchesDetourMatrix is the differential matrix: both
// topology kinds, both safety definitions, all three fault models,
// several random fault configurations — the indexed router must be
// path-identical to the walk-based Detour on every sampled pair.
func TestRouteIndexMatchesDetourMatrix(t *testing.T) {
	models := []routing.Model{routing.ModelRegions, routing.ModelBlocks, routing.ModelFaultsOnly}
	for _, kind := range []mesh.Kind{mesh.Mesh2D, mesh.Torus2D} {
		for _, safety := range []status.SafetyDef{status.Def2a, status.Def2b} {
			for _, cfg := range []struct{ n, f, seed int }{
				{12, 6, 1}, {16, 12, 2}, {20, 24, 3}, {20, 40, 4},
			} {
				name := fmt.Sprintf("%v/%v/n=%d/f=%d", kind, safety, cfg.n, cfg.f)
				t.Run(name, func(t *testing.T) {
					topo, err := mesh.New(cfg.n, cfg.n, kind)
					if err != nil {
						t.Fatal(err)
					}
					rng := rand.New(rand.NewSource(int64(cfg.seed)))
					faults := fault.Uniform{Count: cfg.f}.Generate(topo, rng)
					res := formOn(t, topo, safety, faults)
					for _, model := range models {
						g := routing.NewGraph(res, model)
						ix := Compile(res, model, Options{})
						checkCoverage(t, ix)
						pairs := routing.SamplePairs(res, 60, rand.New(rand.NewSource(int64(cfg.seed)+100)))
						for _, pr := range pairs {
							comparePair(t, g, ix, pr[0], pr[1])
						}
					}
				})
			}
		}
	}
}

// TestRouteIndexEdgeCaseCorners routes to destinations sitting exactly
// on a region's boundary ring corners — the cells where the
// wall-following contour turns.
func TestRouteIndexEdgeCaseCorners(t *testing.T) {
	topo, err := mesh.New(14, 14, mesh.Mesh2D)
	if err != nil {
		t.Fatal(err)
	}
	faults := grid.PointSetOf(grid.Pt(5, 5), grid.Pt(6, 6), grid.Pt(7, 5), grid.Pt(5, 7))
	res := formOn(t, topo, status.Def2b, faults)
	g := routing.NewGraph(res, routing.ModelRegions)
	ix := Compile(res, routing.ModelRegions, Options{})
	if len(res.Regions) == 0 {
		t.Fatal("fixture produced no regions")
	}
	corners := ix.Corners(grid.Pt(5, 5))
	if len(corners) == 0 {
		t.Fatal("region has no ring corners")
	}
	srcs := []grid.Point{grid.Pt(0, 0), grid.Pt(13, 13), grid.Pt(0, 13), grid.Pt(13, 0), grid.Pt(6, 0)}
	for _, dst := range corners {
		if !g.Allowed(dst) {
			continue
		}
		for _, src := range srcs {
			comparePair(t, g, ix, src, dst)
		}
	}
}

// TestRouteIndexEdgeCaseSharedRow puts two separate OCP regions on the
// same rows, so one row's interval table carries spans of both and a
// greedy run can be blocked by either.
func TestRouteIndexEdgeCaseSharedRow(t *testing.T) {
	topo, err := mesh.New(20, 10, mesh.Mesh2D)
	if err != nil {
		t.Fatal(err)
	}
	faults := grid.PointSetOf(grid.Pt(4, 4), grid.Pt(5, 5), grid.Pt(14, 4), grid.Pt(15, 5))
	res := formOn(t, topo, status.Def2b, faults)
	if len(res.Regions) < 2 {
		t.Fatalf("fixture expectation broken: %d regions, want 2 separate ones", len(res.Regions))
	}
	g := routing.NewGraph(res, routing.ModelRegions)
	ix := Compile(res, routing.ModelRegions, Options{})
	sharedRow := false
	for _, spans := range ix.rows {
		owners := map[*regionIdx]bool{}
		for _, s := range spans {
			owners[s.reg] = true
		}
		if len(owners) >= 2 {
			sharedRow = true
		}
	}
	if !sharedRow {
		t.Fatal("fixture expectation broken: no row shared by two regions")
	}
	for y := 0; y < 10; y += 2 {
		comparePair(t, g, ix, grid.Pt(0, y), grid.Pt(19, 9-y))
		comparePair(t, g, ix, grid.Pt(19, y), grid.Pt(0, 9-y))
		comparePair(t, g, ix, grid.Pt(9, y), grid.Pt(10, 9-y))
	}
}

// TestRouteIndexEdgeCaseTorusWrap detours around a region that spans
// the torus seam, with routes whose greedy segments wrap in both axes.
func TestRouteIndexEdgeCaseTorusWrap(t *testing.T) {
	topo, err := mesh.New(12, 12, mesh.Torus2D)
	if err != nil {
		t.Fatal(err)
	}
	// Fault cluster across the x seam and another across the y seam.
	faults := grid.PointSetOf(
		grid.Pt(0, 5), grid.Pt(11, 5), grid.Pt(0, 6),
		grid.Pt(5, 0), grid.Pt(5, 11),
	)
	res := formOn(t, topo, status.Def2b, faults)
	g := routing.NewGraph(res, routing.ModelRegions)
	ix := Compile(res, routing.ModelRegions, Options{})
	checkCoverage(t, ix)
	for _, pr := range [][2]grid.Point{
		{grid.Pt(10, 5), grid.Pt(2, 5)},  // shortest sense crosses the seam region
		{grid.Pt(2, 5), grid.Pt(10, 5)},  // and back
		{grid.Pt(5, 10), grid.Pt(5, 2)},  // vertical wrap through the y-seam cluster
		{grid.Pt(11, 11), grid.Pt(1, 1)}, // diagonal corner wrap
		{grid.Pt(9, 4), grid.Pt(1, 7)},
	} {
		comparePair(t, g, ix, pr[0], pr[1])
	}
	// And a random sweep for good measure.
	pairs := routing.SamplePairs(res, 80, rand.New(rand.NewSource(9)))
	for _, pr := range pairs {
		comparePair(t, g, ix, pr[0], pr[1])
	}
}

// TestRouteIndexUnroutableEndpoints pins the typed error contract: an
// endpoint inside a disabled region yields an UnroutableError that
// errors.Is-matches routing.ErrUnroutable, for single and batch queries.
func TestRouteIndexUnroutableEndpoints(t *testing.T) {
	topo, err := mesh.New(10, 10, mesh.Mesh2D)
	if err != nil {
		t.Fatal(err)
	}
	faults := grid.PointSetOf(grid.Pt(4, 4), grid.Pt(5, 5))
	res := formOn(t, topo, status.Def2b, faults)
	ix := Compile(res, routing.ModelRegions, Options{})
	bad := grid.Pt(4, 4)
	if ix.allow(bad) {
		t.Fatal("fixture expectation broken: fault point allowed")
	}
	_, err = ix.Route(bad, grid.Pt(0, 0))
	if !errors.Is(err, routing.ErrUnroutable) {
		t.Fatalf("source in region: got %v, want ErrUnroutable", err)
	}
	var ue *routing.UnroutableError
	if !errors.As(err, &ue) || ue.Role != "source" {
		t.Fatalf("want typed source error, got %#v", err)
	}
	_, err = ix.Route(grid.Pt(0, 0), bad)
	var ud *routing.UnroutableError
	if !errors.As(err, &ud) || ud.Role != "destination" {
		t.Fatalf("want typed destination error, got %#v", err)
	}
	answers := ix.RouteMany([]Query{{Src: bad, Dst: grid.Pt(0, 0)}, {Src: grid.Pt(0, 0), Dst: grid.Pt(9, 9)}}, BatchOptions{})
	if !errors.Is(answers[0].Err, routing.ErrUnroutable) {
		t.Fatalf("batch query 0: got %v, want ErrUnroutable", answers[0].Err)
	}
	if answers[1].Err != nil {
		t.Fatalf("batch query 1: %v", answers[1].Err)
	}
}

// TestRouteIndexRouteMany pins batch answers against individual queries,
// with and without materialized paths, serial and parallel.
func TestRouteIndexRouteMany(t *testing.T) {
	topo, err := mesh.New(24, 24, mesh.Mesh2D)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	faults := fault.Uniform{Count: 20}.Generate(topo, rng)
	res := formOn(t, topo, status.Def2b, faults)
	ix := Compile(res, routing.ModelRegions, Options{})
	pairs := routing.SamplePairs(res, 200, rng)
	qs := make([]Query, len(pairs))
	for i, pr := range pairs {
		qs[i] = Query{Src: pr[0], Dst: pr[1]}
	}
	for _, opt := range []BatchOptions{
		{Workers: 1, Paths: true},
		{Workers: 4, Paths: true},
		{Workers: 4, Paths: false},
		{Paths: false},
	} {
		answers := ix.RouteMany(qs, opt)
		if len(answers) != len(qs) {
			t.Fatalf("got %d answers for %d queries", len(answers), len(qs))
		}
		for i, a := range answers {
			want, werr := ix.Route(qs[i].Src, qs[i].Dst)
			if (werr == nil) != (a.Err == nil) {
				t.Fatalf("query %d (%+v): batch err=%v, single err=%v", i, opt, a.Err, werr)
			}
			if werr != nil {
				continue
			}
			if a.Hops != want.Len() {
				t.Fatalf("query %d (%+v): batch hops %d, single %d", i, opt, a.Hops, want.Len())
			}
			if opt.Paths {
				if len(a.Path) != len(want) {
					t.Fatalf("query %d: batch path len %d, single %d", i, len(a.Path), len(want))
				}
				for j := range want {
					if a.Path[j] != want[j] {
						t.Fatalf("query %d: batch path diverges at %d", i, j)
					}
				}
			} else if a.Path != nil {
				t.Fatalf("query %d: hops-only answer carries a path", i)
			}
		}
	}
}

// TestRouteIndexAsRouter pins the Router adapter, including its
// snapshot-mismatch guard.
func TestRouteIndexAsRouter(t *testing.T) {
	topo, err := mesh.New(10, 10, mesh.Mesh2D)
	if err != nil {
		t.Fatal(err)
	}
	faults := grid.PointSetOf(grid.Pt(5, 5))
	res := formOn(t, topo, status.Def2b, faults)
	ix := Compile(res, routing.ModelRegions, Options{})
	r := ix.AsRouter()
	if r.Name() != "indexed" {
		t.Fatalf("router name %q", r.Name())
	}
	g := routing.NewGraph(res, routing.ModelRegions)
	path, err := r.Route(g, grid.Pt(0, 0), grid.Pt(9, 9))
	if err != nil {
		t.Fatal(err)
	}
	if err := path.Validate(res, routing.ModelRegions, grid.Pt(0, 0), grid.Pt(9, 9)); err != nil {
		t.Fatal(err)
	}
	other := routing.NewGraph(res, routing.ModelBlocks)
	if _, err := r.Route(other, grid.Pt(0, 0), grid.Pt(9, 9)); err == nil {
		t.Fatal("model mismatch not rejected")
	}
}

// regionPtrSet returns the identity set of a result's region pointers.
func regionPtrSet(res *core.Result) map[interface{}]bool {
	out := make(map[interface{}]bool, len(res.Regions))
	for _, r := range res.Regions {
		out[r] = true
	}
	return out
}

// TestRouteIndexIncremental drives a session through fault churn and
// pins the incremental contract: after every delta the rebuilt index is
// byte-identical (Fingerprint) to a from-scratch compilation, and the
// number of regions compiled equals the number whose pointer changed —
// O(changed regions), verified exactly rather than asymptotically.
func TestRouteIndexIncremental(t *testing.T) {
	topo, err := mesh.New(40, 40, mesh.Mesh2D)
	if err != nil {
		t.Fatal(err)
	}
	// Two well-separated clusters: deltas near one must reuse the other.
	initial := grid.PointSetOf(grid.Pt(5, 5), grid.Pt(6, 6), grid.Pt(30, 30), grid.Pt(31, 31))
	s, err := core.NewSessionOn(core.Config{Width: 40, Height: 40, Safety: status.Def2b}, topo, initial)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ix := Compile(s.Result(), routing.ModelRegions, Options{})
	if ix.Stats().Compiled != len(s.Result().Regions) || ix.Stats().Reused != 0 {
		t.Fatalf("initial stats %+v", ix.Stats())
	}

	steps := []struct {
		add bool
		p   grid.Point
	}{
		{true, grid.Pt(7, 5)},   // grow the first cluster
		{true, grid.Pt(20, 20)}, // new isolated fault
		{false, grid.Pt(20, 20)},
		{true, grid.Pt(5, 7)},
		{false, grid.Pt(7, 5)},
		{true, grid.Pt(32, 30)}, // grow the second cluster
	}
	prevRes := s.Result()
	sawReuse := false
	for i, st := range steps {
		if st.add {
			_, err = s.AddFaults(st.p)
		} else {
			_, err = s.RemoveFaults(st.p)
		}
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		res := s.Result()
		ix = ix.Rebuild(res)

		fresh := Compile(res, routing.ModelRegions, Options{})
		if got, want := ix.Fingerprint(), fresh.Fingerprint(); got != want {
			t.Fatalf("step %d: rebuilt index differs from from-scratch compile:\n--- rebuilt\n%s\n--- fresh\n%s", i, got, want)
		}

		prevPtrs := regionPtrSet(prevRes)
		changed := 0
		for _, r := range res.Regions {
			if !prevPtrs[r] {
				changed++
			}
		}
		if ix.Stats().Compiled != changed {
			t.Fatalf("step %d: compiled %d regions, %d changed pointers", i, ix.Stats().Compiled, changed)
		}
		if ix.Stats().Reused != len(res.Regions)-changed {
			t.Fatalf("step %d: reused %d, want %d", i, ix.Stats().Reused, len(res.Regions)-changed)
		}
		if ix.Stats().Reused > 0 {
			sawReuse = true
		}
		prevRes = res
	}
	if !sawReuse {
		t.Fatal("churn sequence never reused a region compilation; the incremental path went untested")
	}
}

// TestRouteIndexPublished exercises the atomic publication discipline:
// concurrent readers route off whatever index is current while the
// session owner applies deltas; afterwards the published index matches
// a from-scratch compile of the final state.
func TestRouteIndexPublished(t *testing.T) {
	topo, err := mesh.New(24, 24, mesh.Mesh2D)
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.NewSessionOn(core.Config{Width: 24, Height: 24, Safety: status.Def2b}, topo, grid.PointSetOf(grid.Pt(12, 12)))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	pub := Publish(s, routing.ModelRegions, Options{})
	if g := s.Generation(); g != 0 {
		t.Fatalf("fresh session generation %d", g)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				ix := pub.Load()
				src := grid.Pt(rng.Intn(24), rng.Intn(24))
				dst := grid.Pt(rng.Intn(24), rng.Intn(24))
				if path, err := ix.Route(src, dst); err == nil {
					if verr := path.Validate(ix.Result(), routing.ModelRegions, src, dst); verr != nil {
						t.Error(verr)
						return
					}
				}
			}
		}(int64(r))
	}
	rng := rand.New(rand.NewSource(77))
	var live []grid.Point
	for i := 0; i < 30; i++ {
		if len(live) > 0 && rng.Intn(3) == 0 {
			j := rng.Intn(len(live))
			if _, err := s.RemoveFaults(live[j]); err != nil {
				t.Fatal(err)
			}
			live = append(live[:j], live[j+1:]...)
			continue
		}
		p := grid.Pt(rng.Intn(24), rng.Intn(24))
		if _, err := s.AddFaults(p); err != nil {
			t.Fatal(err)
		}
		live = append(live, p)
	}
	close(stop)
	wg.Wait()

	if g := s.Generation(); g != 30 {
		t.Fatalf("generation %d after 30 deltas", g)
	}
	fresh := Compile(s.Result(), routing.ModelRegions, Options{})
	if pub.Load().Fingerprint() != fresh.Fingerprint() {
		t.Fatal("published index differs from from-scratch compile of the final state")
	}
}

// TestRouteIndexDetourCosts sanity-checks the CW/CCW arc cost tables on
// a compiled ring: costs are complementary modulo the ring length and
// zero for the identity arc.
func TestRouteIndexDetourCosts(t *testing.T) {
	topo, err := mesh.New(12, 12, mesh.Mesh2D)
	if err != nil {
		t.Fatal(err)
	}
	faults := grid.PointSetOf(grid.Pt(5, 5), grid.Pt(6, 6))
	res := formOn(t, topo, status.Def2b, faults)
	ix := Compile(res, routing.ModelRegions, Options{})
	var rp *regionIdx
	for _, s := range ix.rows[5] {
		if int(s.lo) <= 5 && 5 <= int(s.hi) {
			rp = s.reg
		}
	}
	if rp == nil || len(rp.rings) == 0 {
		t.Fatal("no ring compiled for the region owning (5,5)")
	}
	ring := rp.rings[0]
	n := len(ring)
	for _, pair := range [][2]int{{0, 0}, {0, 1}, {1, 0}, {0, n / 2}, {n - 1, 0}} {
		i, j := pair[0], pair[1]
		cw, ccw := detourCosts(n, i, j)
		if i == j && (cw != 0 || ccw != 0) {
			t.Fatalf("identity arc costs %d/%d", cw, ccw)
		}
		if i != j && cw+ccw != n {
			t.Fatalf("arc %d->%d: cw %d + ccw %d != ring %d", i, j, cw, ccw, n)
		}
		a, b := ring[i], ring[j]
		gcw, gccw, ok := ix.DetourCosts(grid.Pt(5, 5), a.p, b.p, a.h, b.h)
		if !ok || gcw != cw || gccw != ccw {
			t.Fatalf("DetourCosts(%v->%v) = %d,%d,%t want %d,%d", a, b, gcw, gccw, ok, cw, ccw)
		}
	}
}
