package routeidx

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"ocpmesh/internal/grid"
	"ocpmesh/internal/routing"
)

// Query is one batched route request.
type Query struct {
	Src, Dst grid.Point
}

// Answer is one batched route result. Err is a per-query verdict, so
// one unroutable endpoint never fails the batch.
type Answer struct {
	Hops int
	Path routing.Path // set only when BatchOptions.Paths
	Err  error
}

// BatchOptions parameterizes RouteMany.
type BatchOptions struct {
	// Workers caps the fan-out; 0 means GOMAXPROCS. The effective count
	// never exceeds the query count.
	Workers int
	// Paths materializes each answer's path. Hops-only batches are much
	// cheaper: greedy segments are jumped over without emitting cells.
	Paths bool
}

// RouteMany answers a batch of queries concurrently. The index is
// immutable, so workers share it without locks: each goroutine claims
// queries off an atomic cursor and reuses one scratch path across all
// the queries it answers, copying out only when the caller asked for
// paths. Answers are positionally aligned with qs.
func (ix *Index) RouteMany(qs []Query, opt BatchOptions) []Answer {
	out := make([]Answer, len(qs))
	if len(qs) == 0 {
		return out
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(qs) {
		workers = len(qs)
	}
	if workers == 1 {
		i := 0
		ix.routeRange(qs, out, opt.Paths, func() int { i++; return i - 1 })
		return out
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			ix.routeRange(qs, out, opt.Paths, func() int {
				return int(cursor.Add(1)) - 1
			})
		}()
	}
	wg.Wait()
	return out
}

// routeRange answers the queries handed out by next (a work-claiming
// cursor) with one scratch path reused across all of them.
func (ix *Index) routeRange(qs []Query, out []Answer, paths bool, next func() int) {
	var scratch routing.Path
	for {
		i := next()
		if i >= len(qs) {
			return
		}
		q := qs[i]
		if !paths {
			hops, err := ix.Hops(q.Src, q.Dst)
			out[i] = Answer{Hops: hops, Err: err}
			continue
		}
		p, err := ix.RouteAppend(q.Src, q.Dst, scratch)
		scratch = p // keep the (possibly grown) buffer either way
		if err != nil {
			out[i] = Answer{Err: err}
			continue
		}
		out[i] = Answer{Hops: p.Len(), Path: append(routing.Path(nil), p...)}
	}
}

// idxRouter adapts the index to the routing.Router interface.
type idxRouter struct {
	ix *Index
}

// AsRouter returns the index as a routing.Router named "indexed", for
// the simulation and CLI harnesses that select routers by interface.
// The graph passed to Route must view the same formation result and
// fault model the index was compiled for.
func (ix *Index) AsRouter() routing.Router {
	return idxRouter{ix: ix}
}

// Name implements routing.Router.
func (idxRouter) Name() string { return "indexed" }

// Route implements routing.Router.
func (r idxRouter) Route(g *routing.Graph, src, dst grid.Point) (routing.Path, error) {
	if g.Result() != r.ix.res || g.Model() != r.ix.model {
		return nil, fmt.Errorf("routeidx: router compiled for a different snapshot or model than the graph")
	}
	return r.ix.Route(src, dst)
}
