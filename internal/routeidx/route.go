package routeidx

import (
	"fmt"
	"sort"

	"ocpmesh/internal/grid"
	"ocpmesh/internal/mesh"
	"ocpmesh/internal/routing"
)

// Route returns a path from src to dst, hop-identical to what
// routing.Detour would produce on the same formation result and model.
// It allocates a fresh path per query; batch callers should use
// RouteAppend or RouteMany.
func (ix *Index) Route(src, dst grid.Point) (routing.Path, error) {
	path, _, err := ix.run(src, dst, nil, true)
	if err != nil {
		return nil, err
	}
	return path, nil
}

// RouteAppend is Route appending into buf[:0], so a caller issuing many
// queries reuses one allocation. On error the returned slice still owns
// the buffer — pass it back in on the next call to keep the capacity.
func (ix *Index) RouteAppend(src, dst grid.Point, buf routing.Path) (routing.Path, error) {
	path, _, err := ix.run(src, dst, buf, true)
	return path, err
}

// Hops returns the hop count of the route without materializing the
// path — the cheapest form of the query, since greedy runs are jumped
// over without emitting their cells.
func (ix *Index) Hops(src, dst grid.Point) (int, error) {
	_, hops, err := ix.run(src, dst, nil, false)
	return hops, err
}

// run simulates Detour's walk exactly, in bulk: greedy dimension-order
// runs collapse into binary-searched segment jumps against the row and
// column interval tables, and wall-following episodes replay the blocked
// region's precomputed boundary ring with an O(1) validity check per
// step. Any situation the precomputed contour cannot cover — a wall
// state outside every ring, or a ring cell forbidden in the real map by
// a second region — falls back to running the right-hand automaton
// inline, which is Detour's own wall step. Decisions, hop counts and
// failure modes therefore match Detour on every query.
func (ix *Index) run(src, dst grid.Point, buf routing.Path, wantPath bool) (routing.Path, int, error) {
	topo := ix.topo
	if !ix.allow(src) {
		return buf, 0, &routing.UnroutableError{Role: "source", Point: src, Model: ix.model}
	}
	if !ix.allow(dst) {
		return buf, 0, &routing.UnroutableError{Role: "destination", Point: dst, Model: ix.model}
	}
	path := buf[:0]
	if wantPath {
		path = append(path, src)
	}
	cur := src
	hops := 0
	maxHops := ix.maxHops

	// Wall-following state, mirroring Detour's: heading and the distance
	// at which the wall was hit, plus the precomputed ring being
	// replayed (ringAt < 0 = inline automaton).
	wall := false
	var heading mesh.Direction
	hitDist := 0
	var ring []ringStep
	ringAt := -1
	var wallReg *regionIdx

	for cur != dst && hops < maxHops {
		if !wall {
			dir, _ := routing.DirToward(topo, cur, dst)
			segLen := ix.distAlong(cur, dst, dir)
			bt, breg := ix.firstBlocked(cur, dir, segLen)
			free := segLen
			if bt > 0 {
				free = bt - 1
			}
			if rem := maxHops - hops; free > rem {
				free = rem
			}
			if free > 0 {
				cur, path = ix.emit(path, cur, dir, free, wantPath)
				hops += free
			}
			if bt == 0 || free < bt-1 || hops >= maxHops {
				// Ran the greedy segment to its end (coordinate
				// resolved) or out of budget; loop re-evaluates.
				continue
			}
			// The greedy hop out of cur is blocked: enter wall mode with
			// the obstacle on the right, exactly as Detour does, and try
			// to pick up the blocking region's precomputed ring at the
			// entry state.
			wall = true
			heading = routing.TurnLeft(dir)
			hitDist = topo.Dist(cur, dst)
			wallReg = breg
			ring, ringAt = nil, -1
			if breg != nil {
				if rp, ok := breg.pos[ringStep{p: cur, h: heading}]; ok {
					ring = breg.rings[rp.ring]
					ringAt = int(rp.idx)
				}
			}
			continue
		}

		// Leave wall mode when strictly closer than the hit point and a
		// greedy step is available — checked before each wall step, as
		// in Detour.
		if topo.Dist(cur, dst) < hitDist {
			if dir, ok := routing.DirToward(topo, cur, dst); ok {
				if next, ok := topo.NeighborIn(cur, dir); ok && ix.allow(next) {
					wall = false
					if wantPath {
						path = append(path, next)
					}
					cur = next
					hops++
					continue
				}
			}
		}

		if ringAt >= 0 {
			ni := ringAt + 1
			if ni == len(ring) {
				ni = 0
			}
			st := ring[ni]
			// The idealized automaton rejected every direction Detour
			// probes before st.h for reasons (mesh border, this region's
			// cells) that hold in the real map too, so st is Detour's
			// choice whenever st.p is really allowed.
			if ix.allow(st.p) {
				ringAt = ni
				heading = st.h
				if wantPath {
					path = append(path, st.p)
				}
				cur = st.p
				hops++
				continue
			}
			ringAt = -1 // the real map deviates here; go inline
		}

		// Inline right-hand rule — Detour's wall step verbatim.
		moved := false
		for _, d := range [4]mesh.Direction{routing.TurnRight(heading), heading, routing.TurnLeft(heading), heading.Opposite()} {
			next, ok := topo.NeighborIn(cur, d)
			if !ok {
				continue
			}
			if !ix.allow(next) {
				// Remember whose wall rejected the probe — the contour
				// re-acquisition below follows that region's ring.
				wallReg = ix.regionAt(next)
				continue
			}
			heading = d
			if wantPath {
				path = append(path, next)
			}
			cur = next
			hops++
			moved = true
			break
		}
		if !moved {
			return path, hops, fmt.Errorf("routeidx: stuck at %v (isolated node)", cur)
		}
		// Back onto a precomputed contour as soon as the automaton's
		// state reappears in the wall region's ring: entry states on a
		// rho tail, and deviations forced by a second region, converge
		// onto a registered cycle within a few steps.
		if wallReg != nil {
			if rp, ok := wallReg.pos[ringStep{p: cur, h: heading}]; ok {
				ring = wallReg.rings[rp.ring]
				ringAt = int(rp.idx)
			}
		}
	}
	if cur != dst {
		return path, hops, fmt.Errorf("routeidx: hop budget %d exhausted between %v and %v", maxHops, src, dst)
	}
	return path, hops, nil
}

// distAlong returns how many steps in direction d resolve cur's
// coordinate to dst's along that axis (wrap-aware on tori). d must be
// the direction DirToward picked, so the count is positive.
func (ix *Index) distAlong(cur, dst grid.Point, d mesh.Direction) int {
	switch d {
	case mesh.East:
		return ix.axisDist(dst.X-cur.X, ix.w)
	case mesh.West:
		return ix.axisDist(cur.X-dst.X, ix.w)
	case mesh.North:
		return ix.axisDist(dst.Y-cur.Y, ix.h)
	default: // South
		return ix.axisDist(cur.Y-dst.Y, ix.h)
	}
}

func (ix *Index) axisDist(d, size int) int {
	if ix.torus {
		return ((d % size) + size) % size
	}
	return d
}

// emit advances cur by count cells in direction d, appending the cells
// to path when wantPath is set; hops-only queries jump straight to the
// segment end.
func (ix *Index) emit(path routing.Path, cur grid.Point, d mesh.Direction, count int, wantPath bool) (grid.Point, routing.Path) {
	dl := d.Delta()
	x, y := cur.X, cur.Y
	if !wantPath {
		x += dl.X * count
		y += dl.Y * count
		if ix.torus {
			x = ((x % ix.w) + ix.w) % ix.w
			y = ((y % ix.h) + ix.h) % ix.h
		}
		return grid.Pt(x, y), path
	}
	for i := 0; i < count; i++ {
		x += dl.X
		y += dl.Y
		if ix.torus {
			if x < 0 {
				x += ix.w
			} else if x >= ix.w {
				x -= ix.w
			}
			if y < 0 {
				y += ix.h
			} else if y >= ix.h {
				y -= ix.h
			}
		}
		path = append(path, grid.Pt(x, y))
	}
	return grid.Pt(x, y), path
}

// regionAt returns the compiled region owning obstacle cell p, nil for
// allowed cells — one binary search on p's row table.
func (ix *Index) regionAt(p grid.Point) *regionIdx {
	spans := ix.rows[p.Y]
	i := sort.Search(len(spans), func(i int) bool { return int(spans[i].hi) >= p.X })
	if i < len(spans) && int(spans[i].lo) <= p.X {
		return spans[i].reg
	}
	return nil
}

// firstBlocked returns the 1-based offset along d of the first forbidden
// cell within segLen steps of cur (0 = the whole segment is clear) and
// the compiled region owning that cell. One or two binary searches on
// the global interval tables; torus segments that cross the seam split
// into two linear pieces.
func (ix *Index) firstBlocked(cur grid.Point, d mesh.Direction, segLen int) (int, *regionIdx) {
	if segLen == 0 {
		return 0, nil
	}
	var spans []span
	var from, size int
	switch d {
	case mesh.East, mesh.West:
		spans = ix.rows[cur.Y]
		from, size = cur.X, ix.w
	default:
		spans = ix.cols[cur.X]
		from, size = cur.Y, ix.h
	}
	if len(spans) == 0 {
		return 0, nil
	}
	if d == mesh.East || d == mesh.North { // ascending coordinate
		a, b := from+1, from+segLen
		if b < size {
			return firstAsc(spans, a, b, from, 0)
		}
		if t, rp := firstAsc(spans, a, size-1, from, 0); t > 0 {
			return t, rp
		}
		return firstAsc(spans, 0, b-size, from, size)
	}
	a, b := from-segLen, from-1 // descending coordinate
	if a >= 0 {
		return firstDesc(spans, a, b, from, 0)
	}
	if t, rp := firstDesc(spans, 0, b, from, 0); t > 0 {
		return t, rp
	}
	return firstDesc(spans, size+a, size-1, from, size)
}

// firstAsc finds the smallest blocked coordinate in [lo, hi] and returns
// its offset from origin (+add for the wrapped piece of a torus
// segment). Spans are disjoint and sorted, so both lo and hi orders
// agree and one binary search suffices.
func firstAsc(spans []span, lo, hi, origin, add int) (int, *regionIdx) {
	if lo > hi {
		return 0, nil
	}
	i := sort.Search(len(spans), func(i int) bool { return int(spans[i].hi) >= lo })
	if i == len(spans) || int(spans[i].lo) > hi {
		return 0, nil
	}
	x := lo
	if int(spans[i].lo) > x {
		x = int(spans[i].lo)
	}
	return x - origin + add, spans[i].reg
}

// firstDesc finds the largest blocked coordinate in [lo, hi] — the first
// one met traveling in the descending sense — and returns its offset
// from origin (+sub for the wrapped piece).
func firstDesc(spans []span, lo, hi, origin, sub int) (int, *regionIdx) {
	if lo > hi {
		return 0, nil
	}
	i := sort.Search(len(spans), func(i int) bool { return int(spans[i].lo) > hi }) - 1
	if i < 0 || int(spans[i].hi) < lo {
		return 0, nil
	}
	x := hi
	if int(spans[i].hi) < x {
		x = int(spans[i].hi)
	}
	return origin - x + sub, spans[i].reg
}
