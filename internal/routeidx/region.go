package routeidx

import (
	"sort"

	"ocpmesh/internal/grid"
	"ocpmesh/internal/mesh"
	"ocpmesh/internal/routing"
)

// xrun is one maximal interval of region cells within a single row or
// column of the region's bounding box.
type xrun struct{ lo, hi int32 }

// ringStep is one state of the wall-following automaton: the cell the
// walker stands on and the heading it arrived with. It doubles as the
// key of the ring position map.
type ringStep struct {
	p grid.Point
	h mesh.Direction
}

// ringPos locates a wall state on one of a region's boundary rings.
type ringPos struct {
	ring, idx int32
}

// regionIdx is the compiled form of one obstacle. It is a pure function
// of (topology, cell set): nothing here depends on other regions, which
// is exactly why an incremental rebuild may carry a regionIdx over
// unchanged whenever the region's own cells did not change — the result
// is byte-identical to recompiling, by construction.
type regionIdx struct {
	cells  *grid.PointSet
	bounds grid.Rect
	size   int
	// rowRuns[y-bounds.MinY] and colRuns[x-bounds.MinX] hold the sorted
	// maximal cell intervals of each row/column — the region's
	// contribution to the global interval tables.
	rowRuns [][]xrun
	colRuns [][]xrun
	// corners are the cells of the boundary rings where the heading
	// changes, sorted canonically — the compressed corner array of the
	// contour.
	corners []grid.Point
	// rings are the wall-following contour cycles of the region in
	// (cell, heading) state space, traced by Detour's right-hand
	// automaton on the idealized map containing only this region's cells
	// and the mesh borders. pos maps each on-cycle state to its ring and
	// offset; states whose trajectory never closed (rare rho-shaped
	// tails) are absent and route via the inline automaton instead.
	rings [][]ringStep
	pos   map[ringStep]ringPos
}

// compileRegion builds the compiled form of one obstacle.
func compileRegion(topo *mesh.Topology, cells *grid.PointSet) *regionIdx {
	r := &regionIdx{
		cells:  cells,
		bounds: cells.Bounds(),
		size:   cells.Len(),
		pos:    make(map[ringStep]ringPos),
	}
	pts := cells.Points()
	grid.SortPoints(pts) // row-major: y, then x

	r.rowRuns = make([][]xrun, r.bounds.MaxY-r.bounds.MinY+1)
	for i := 0; i < len(pts); {
		j := i + 1
		for j < len(pts) && pts[j].Y == pts[i].Y && pts[j].X == pts[j-1].X+1 {
			j++
		}
		y := pts[i].Y - r.bounds.MinY
		r.rowRuns[y] = append(r.rowRuns[y], xrun{lo: int32(pts[i].X), hi: int32(pts[j-1].X)})
		i = j
	}

	colPts := append([]grid.Point(nil), pts...)
	sort.Slice(colPts, func(i, j int) bool {
		if colPts[i].X != colPts[j].X {
			return colPts[i].X < colPts[j].X
		}
		return colPts[i].Y < colPts[j].Y
	})
	r.colRuns = make([][]xrun, r.bounds.MaxX-r.bounds.MinX+1)
	for i := 0; i < len(colPts); {
		j := i + 1
		for j < len(colPts) && colPts[j].X == colPts[i].X && colPts[j].Y == colPts[j-1].Y+1 {
			j++
		}
		x := colPts[i].X - r.bounds.MinX
		r.colRuns[x] = append(r.colRuns[x], xrun{lo: int32(colPts[i].Y), hi: int32(colPts[j-1].Y)})
		i = j
	}

	// Trace the wall-following contour from every possible wall-entry
	// state: a greedy walker blocked stepping from c into region cell b
	// enters wall mode at c heading TurnLeft(direction of the blocked
	// step). A trajectory that touches the mesh border may lawfully
	// follow it (Detour does the same), so the budget covers the border
	// circumference as well as the region shell.
	budget := 8*r.size + 8*(topo.Width()+topo.Height()) + 64
	for _, b := range pts {
		for _, d := range mesh.Directions {
			c, ok := topo.NeighborIn(b, d)
			if !ok || cells.Has(c) {
				continue
			}
			blocked := d.Opposite() // the greedy step c -> b that got blocked
			r.trace(topo, ringStep{p: c, h: routing.TurnLeft(blocked)}, budget)
		}
	}

	cornerSet := grid.NewPointSet()
	for _, ring := range r.rings {
		for i, s := range ring {
			next := ring[(i+1)%len(ring)]
			if next.h != s.h {
				cornerSet.Add(s.p)
			}
		}
	}
	r.corners = cornerSet.Points()
	grid.SortPoints(r.corners)
	return r
}

// trace follows the idealized wall-following automaton from start until
// the trajectory closes into a cycle, merges into an already-registered
// cycle, or exhausts the budget. Only the cyclic part is registered:
// ring following relies on modular successor arithmetic, which is
// meaningless for tail states.
func (r *regionIdx) trace(topo *mesh.Topology, start ringStep, budget int) {
	if _, ok := r.pos[start]; ok {
		return
	}
	seen := make(map[ringStep]int32)
	var traj []ringStep
	st := start
	for len(traj) <= budget {
		if j, ok := seen[st]; ok {
			ring := append([]ringStep(nil), traj[j:]...)
			ri := int32(len(r.rings))
			for i, s := range ring {
				r.pos[s] = ringPos{ring: ri, idx: int32(i)}
			}
			r.rings = append(r.rings, ring)
			return
		}
		if _, ok := r.pos[st]; ok {
			return // tail into a previously registered cycle
		}
		seen[st] = int32(len(traj))
		traj = append(traj, st)
		nst, ok := r.wallStep(topo, st)
		if !ok {
			return // isolated pocket of the idealized map
		}
		st = nst
	}
}

// wallStep is one step of Detour's right-hand rule on the idealized map:
// prefer turning right, then straight, then left, then back, taking the
// first direction whose neighbor exists and is not a region cell.
func (r *regionIdx) wallStep(topo *mesh.Topology, st ringStep) (ringStep, bool) {
	for _, d := range [4]mesh.Direction{routing.TurnRight(st.h), st.h, routing.TurnLeft(st.h), st.h.Opposite()} {
		if next, ok := topo.NeighborIn(st.p, d); ok && !r.cells.Has(next) {
			return ringStep{p: next, h: d}, true
		}
	}
	return ringStep{}, false
}

// detourCosts returns the hop cost of traveling from ring offset i to
// offset j along the precomputed (clockwise, obstacle-on-the-right)
// sense and against it. Rings are cyclic, so both are O(1) modular
// arithmetic — the precomputed detour-cost table of the contour.
func detourCosts(ringLen, i, j int) (cw, ccw int) {
	cw = ((j-i)%ringLen + ringLen) % ringLen
	ccw = (ringLen - cw) % ringLen
	return cw, ccw
}

// DetourCosts reports the clockwise and counterclockwise hop costs
// between two wall states (cell + arrival heading) on the boundary ring
// of the region owning forbidden cell b. ok is false when b is not a
// forbidden cell of the index or either state is not on a precomputed
// ring. It exposes the ring cost tables for planning and tests; the
// router itself replays rings step by step because leave-checks can cut
// an episode short at any offset.
func (ix *Index) DetourCosts(b grid.Point, from, to grid.Point, fromHeading, toHeading mesh.Direction) (cw, ccw int, ok bool) {
	if b.Y < 0 || b.Y >= ix.h {
		return 0, 0, false
	}
	var rp *regionIdx
	for _, s := range ix.rows[b.Y] {
		if int(s.lo) <= b.X && b.X <= int(s.hi) {
			rp = s.reg
			break
		}
	}
	if rp == nil {
		return 0, 0, false
	}
	pf, okf := rp.pos[ringStep{p: from, h: fromHeading}]
	pt, okt := rp.pos[ringStep{p: to, h: toHeading}]
	if !okf || !okt || pf.ring != pt.ring {
		return 0, 0, false
	}
	cw, ccw = detourCosts(len(rp.rings[pf.ring]), int(pf.idx), int(pt.idx))
	return cw, ccw, true
}

// Corners returns the sorted corner array of the region owning forbidden
// cell b (nil when b is not forbidden). The caller must not mutate it.
func (ix *Index) Corners(b grid.Point) []grid.Point {
	if b.Y < 0 || b.Y >= ix.h {
		return nil
	}
	for _, s := range ix.rows[b.Y] {
		if int(s.lo) <= b.X && b.X <= int(s.hi) {
			return s.reg.corners
		}
	}
	return nil
}
