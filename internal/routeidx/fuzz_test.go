package routeidx

import (
	"math/rand"
	"testing"

	"ocpmesh/internal/core"
	"ocpmesh/internal/fault"
	"ocpmesh/internal/grid"
	"ocpmesh/internal/mesh"
	"ocpmesh/internal/routing"
	"ocpmesh/internal/status"
)

// FuzzRouteQuery fuzzes the indexed router against the walk-based
// Detour on random machines, fault sets and endpoint pairs: on success
// the indexed path must validate (allowed nodes only, adjacent steps,
// right endpoints) and must not exceed the walk-based router's hops —
// in fact the differential below requires the stronger property the
// index is built to: the exact same path. Any reported input is a real
// divergence between the compiled index and the algorithm it simulates.
func FuzzRouteQuery(f *testing.F) {
	f.Add(uint8(12), uint8(12), false, int64(1), uint8(8), uint8(0), uint8(0), uint8(11), uint8(11))
	f.Add(uint8(10), uint8(14), true, int64(2), uint8(12), uint8(9), uint8(0), uint8(1), uint8(13))
	f.Add(uint8(16), uint8(8), false, int64(3), uint8(20), uint8(15), uint8(7), uint8(0), uint8(3))
	f.Add(uint8(9), uint8(9), true, int64(4), uint8(30), uint8(4), uint8(4), uint8(5), uint8(5))
	f.Fuzz(func(t *testing.T, w, h uint8, torus bool, seed int64, nf, sx, sy, dx, dy uint8) {
		width := 3 + int(w)%22  // 3..24
		height := 3 + int(h)%22 // 3..24
		kind := mesh.Mesh2D
		if torus {
			kind = mesh.Torus2D
		}
		topo, err := mesh.New(width, height, kind)
		if err != nil {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed))
		faults := fault.Uniform{Count: int(nf) % (width * height / 2)}.Generate(topo, rng)
		res, err := core.FormOn(core.Config{Width: width, Height: height, Kind: kind, Safety: status.Def2b}, topo, faults)
		if err != nil {
			t.Fatal(err)
		}
		src := grid.Pt(int(sx)%width, int(sy)%height)
		dst := grid.Pt(int(dx)%width, int(dy)%height)

		for _, model := range []routing.Model{routing.ModelRegions, routing.ModelBlocks, routing.ModelFaultsOnly} {
			g := routing.NewGraph(res, model)
			ix := Compile(res, model, Options{})
			want, werr := routing.Detour{}.Route(g, src, dst)
			got, gerr := ix.Route(src, dst)
			if (werr == nil) != (gerr == nil) {
				t.Fatalf("%s %v->%v: detour err=%v, indexed err=%v", model, src, dst, werr, gerr)
			}
			if gerr != nil {
				continue
			}
			if err := got.Validate(res, model, src, dst); err != nil {
				t.Fatalf("%s %v->%v: indexed path invalid: %v", model, src, dst, err)
			}
			if got.Len() > want.Len() {
				t.Fatalf("%s %v->%v: indexed %d hops > detour %d hops", model, src, dst, got.Len(), want.Len())
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s %v->%v: paths diverge at step %d", model, src, dst, i)
				}
			}
		}
	})
}
