// Package routeidx compiles a formation result into an immutable,
// lock-free routing index so that a source→destination route query
// becomes a few binary searches plus segment stitching instead of the
// step-by-step walk internal/routing.Detour performs.
//
// The index has three layers, all derived from the OCP fault regions the
// formation produces:
//
//   - Per-row and per-column interval tables over the whole machine: for
//     every row (column) the sorted, disjoint spans of forbidden cells,
//     each span pointing back at the region that owns it. A greedy
//     dimension-order run of any length costs one binary search to find
//     the first blocking cell.
//   - Per-region boundary rings: every fault region's wall-following
//     contour, precomputed as cycles in (cell, heading) state space by
//     running Detour's exact right-hand automaton on an idealized map
//     that contains only this region's cells and the mesh borders. The
//     turning cells of each ring are kept as a sorted corner array, and
//     because rings are cyclic arrays, the clockwise vs counterclockwise
//     detour cost between any two wall states is plain modular index
//     arithmetic (DetourCosts).
//   - A position map from wall-entry state to ring offset, so a blocked
//     greedy run continues by replaying the precomputed contour instead
//     of probing four neighbors per hop.
//
// The indexed router is hop-identical to Detour by construction, not by
// tuning: the real map's forbidden set is a superset of each idealized
// map's, so every direction the idealized automaton rejected is rejected
// for real too, and each precomputed step needs only an O(1) "is the
// next ring cell still allowed" check. Whenever that check fails (a
// second region crowds the contour, or a wall-entry state fell outside
// every precomputed cycle), the router falls back to running the
// automaton inline for that episode — still exact, just not accelerated.
//
// Indexes are immutable once built and are published with snapshots
// (atomic.Pointer, same discipline as internal/serve). Rebuild reuses
// the per-region compilation of every region whose *region.Region
// pointer survived the delta — region.UpdateRegions keeps survivor
// pointers, and a region's compilation depends only on its own cells —
// so steady-state delta cost is O(changed regions) plus reassembling the
// interval tables of the rows and columns those regions touch.
package routeidx

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"ocpmesh/internal/core"
	"ocpmesh/internal/grid"
	"ocpmesh/internal/mesh"
	"ocpmesh/internal/obs"
	"ocpmesh/internal/region"
	"ocpmesh/internal/routing"
)

// Options parameterizes index compilation.
type Options struct {
	// MaxHops bounds each simulated walk; 0 means 4 x machine size,
	// matching routing.Detour's default.
	MaxHops int
	// Recorder receives route_index build events and metrics. Nil means
	// observability off.
	Recorder *obs.Recorder
	// Tenant labels build events when the index serves a tenant.
	Tenant string
}

// Stats describes the last (re)build of an index.
type Stats struct {
	// Regions is the obstacle count, Compiled how many were compiled
	// from scratch by the last build, Reused how many were carried over
	// pointer-identical from the previous index.
	Regions, Compiled, Reused int
}

// span is one maximal run of forbidden cells in a row (x interval) or
// column (y interval), pointing at the owning region's compilation.
// Row/column tables reference regions by pointer, not list index, so an
// unchanged row's span slice survives region-list renumbering across
// incremental rebuilds.
type span struct {
	lo, hi int32
	reg    *regionIdx
}

// Index is an immutable routing index over one formation result. All
// methods are safe for concurrent use; queries take no locks.
type Index struct {
	res     *core.Result
	topo    *mesh.Topology
	model   routing.Model
	opt     Options
	maxHops int
	w, h    int
	torus   bool
	allow   func(grid.Point) bool
	regs    []*regionIdx
	srcs    []*region.Region // parallel to regs; nil for synthetic fault components
	rows    [][]span         // rows[y]: forbidden x spans, sorted by lo
	cols    [][]span         // cols[x]: forbidden y spans, sorted by lo
	stats   Stats
}

// Compile builds the index for res under the given fault model.
func Compile(res *core.Result, model routing.Model, opt Options) *Index {
	return build(nil, res, model, opt)
}

// Rebuild compiles an index for a new result incrementally: regions
// whose *region.Region pointer is shared with the previous result —
// i.e. whose label sets did not change across the delta — keep their
// compiled form. res must come from the same session (same topology) as
// the previous index's result. Under ModelFaultsOnly obstacles are
// synthesized fault components with no stable pointers, so Rebuild
// degrades to a full recompile.
func (ix *Index) Rebuild(res *core.Result) *Index {
	return build(ix, res, ix.model, ix.opt)
}

// Result returns the formation result the index was compiled for.
func (ix *Index) Result() *core.Result { return ix.res }

// Model returns the fault model the index routes under.
func (ix *Index) Model() routing.Model { return ix.model }

// Stats returns the compile/reuse accounting of the last build.
func (ix *Index) Stats() Stats { return ix.stats }

func build(prev *Index, res *core.Result, model routing.Model, opt Options) *Index {
	start := time.Now()
	topo := res.Topo
	maxHops := opt.MaxHops
	if maxHops == 0 {
		maxHops = 4 * topo.Size()
	}
	ix := &Index{
		res: res, topo: topo, model: model, opt: opt, maxHops: maxHops,
		w: topo.Width(), h: topo.Height(), torus: topo.Kind() == mesh.Torus2D,
	}
	ix.allow = allowFunc(res, model)

	obstacles, srcs := obstaclesOf(res, model)
	var prevByRegion map[*region.Region]*regionIdx
	if prev != nil && len(prev.srcs) > 0 {
		prevByRegion = make(map[*region.Region]*regionIdx, len(prev.srcs))
		for i, src := range prev.srcs {
			if src != nil {
				prevByRegion[src] = prev.regs[i]
			}
		}
	}
	carried := make(map[*regionIdx]bool, len(obstacles))
	ix.stats.Regions = len(obstacles)
	for i, cells := range obstacles {
		var rp *regionIdx
		if src := srcs[i]; src != nil && prevByRegion[src] != nil {
			rp = prevByRegion[src]
			carried[rp] = true
			ix.stats.Reused++
		} else {
			rp = compileRegion(topo, cells)
			ix.stats.Compiled++
		}
		ix.regs = append(ix.regs, rp)
		ix.srcs = append(ix.srcs, srcs[i])
	}
	ix.buildTables(prev, carried)

	if rec := opt.Recorder; rec != nil {
		dur := time.Since(start).Nanoseconds()
		rec.Emit(obs.Event{
			Type: obs.ERouteIndex, Tenant: opt.Tenant, N: ix.stats.Regions,
			Changed: ix.stats.Compiled, Frontier: ix.stats.Reused, DurNS: dur,
		})
		rec.Counter("route_index_builds").Inc()
		rec.Counter("route_index_regions_compiled").Add(int64(ix.stats.Compiled))
		rec.Counter("route_index_regions_reused").Add(int64(ix.stats.Reused))
		rec.Histogram("route_index_build_ns", obs.NSBuckets).Observe(float64(dur))
	}
	return ix
}

// buildTables assembles the global row/column interval tables. On an
// incremental build only the rows and columns touched by a changed
// region — compiled this round, or present before and gone now — are
// reassembled; every other row's span slice is shared with the previous
// index, which is what keeps steady-state delta cost O(changed regions).
func (ix *Index) buildTables(prev *Index, carried map[*regionIdx]bool) {
	dirtyRows := make([]bool, ix.h)
	dirtyCols := make([]bool, ix.w)
	ix.rows = make([][]span, ix.h)
	ix.cols = make([][]span, ix.w)
	if prev == nil || prev.w != ix.w || prev.h != ix.h {
		for y := range dirtyRows {
			dirtyRows[y] = true
		}
		for x := range dirtyCols {
			dirtyCols[x] = true
		}
	} else {
		copy(ix.rows, prev.rows)
		copy(ix.cols, prev.cols)
		mark := func(rp *regionIdx) {
			for y := rp.bounds.MinY; y <= rp.bounds.MaxY; y++ {
				dirtyRows[y] = true
			}
			for x := rp.bounds.MinX; x <= rp.bounds.MaxX; x++ {
				dirtyCols[x] = true
			}
		}
		for _, rp := range ix.regs {
			if !carried[rp] {
				mark(rp)
			}
		}
		for _, rp := range prev.regs {
			if !carried[rp] {
				mark(rp)
			}
		}
		for y, dirty := range dirtyRows {
			if dirty {
				ix.rows[y] = nil
			}
		}
		for x, dirty := range dirtyCols {
			if dirty {
				ix.cols[x] = nil
			}
		}
	}
	for _, rp := range ix.regs {
		for i, runs := range rp.rowRuns {
			y := rp.bounds.MinY + i
			if !dirtyRows[y] {
				continue
			}
			for _, r := range runs {
				ix.rows[y] = append(ix.rows[y], span{lo: r.lo, hi: r.hi, reg: rp})
			}
		}
		for i, runs := range rp.colRuns {
			x := rp.bounds.MinX + i
			if !dirtyCols[x] {
				continue
			}
			for _, r := range runs {
				ix.cols[x] = append(ix.cols[x], span{lo: r.lo, hi: r.hi, reg: rp})
			}
		}
	}
	for y, dirty := range dirtyRows {
		if dirty {
			sortSpans(ix.rows[y])
		}
	}
	for x, dirty := range dirtyCols {
		if dirty {
			sortSpans(ix.cols[x])
		}
	}
}

func sortSpans(s []span) {
	sort.Slice(s, func(i, j int) bool { return s[i].lo < s[j].lo })
}

// obstaclesOf partitions the forbidden cells of res under model into the
// connected obstacles the index compiles. For ModelRegions and
// ModelBlocks these are the formation's own region structures, whose
// pointers are stable across deltas for unchanged components; for
// ModelFaultsOnly the obstacles are 8-connected fault components
// synthesized here, with no stable source pointers.
func obstaclesOf(res *core.Result, model routing.Model) ([]*grid.PointSet, []*region.Region) {
	var regs []*region.Region
	switch model {
	case routing.ModelRegions:
		regs = res.Regions
	case routing.ModelBlocks:
		regs = res.Blocks
	default:
		comps := conn8Components(res.Topo, res.Faults)
		return comps, make([]*region.Region, len(comps))
	}
	sets := make([]*grid.PointSet, len(regs))
	srcs := make([]*region.Region, len(regs))
	for i, r := range regs {
		sets[i] = r.Nodes
		srcs[i] = r
	}
	return sets, srcs
}

// conn8Components splits the fault set into 8-connected components
// (wrap-aware on tori), in deterministic order.
func conn8Components(topo *mesh.Topology, faults *grid.PointSet) []*grid.PointSet {
	pts := faults.Points()
	grid.SortPoints(pts)
	seen := make(map[grid.Point]bool, len(pts))
	var comps []*grid.PointSet
	for _, p := range pts {
		if seen[p] {
			continue
		}
		comp := grid.NewPointSet()
		queue := []grid.Point{p}
		seen[p] = true
		for len(queue) > 0 {
			q := queue[0]
			queue = queue[1:]
			comp.Add(q)
			for dx := -1; dx <= 1; dx++ {
				for dy := -1; dy <= 1; dy++ {
					if dx == 0 && dy == 0 {
						continue
					}
					n := topo.Wrap(grid.Pt(q.X+dx, q.Y+dy))
					if topo.Contains(n) && faults.Has(n) && !seen[n] {
						seen[n] = true
						queue = append(queue, n)
					}
				}
			}
		}
		comps = append(comps, comp)
	}
	return comps
}

// allowFunc returns the model's allowed-predicate with the plane lookup
// inlined for the hot models; semantics are identical to
// routing.Model.Allowed.
func allowFunc(res *core.Result, model routing.Model) func(grid.Point) bool {
	w, h := res.Topo.Width(), res.Topo.Height()
	switch model {
	case routing.ModelRegions:
		plane := res.Enabled
		return func(p grid.Point) bool {
			return p.X >= 0 && p.X < w && p.Y >= 0 && p.Y < h && plane[p.Y*w+p.X]
		}
	case routing.ModelBlocks:
		plane := res.Unsafe
		return func(p grid.Point) bool {
			return p.X >= 0 && p.X < w && p.Y >= 0 && p.Y < h && !plane[p.Y*w+p.X]
		}
	default:
		return func(p grid.Point) bool { return model.Allowed(res, p) }
	}
}

// Fingerprint serializes the index's complete content deterministically:
// regions in obstacle order with their interval runs, corner arrays and
// boundary rings, then the global row/column tables with spans naming
// regions by obstacle position. The incremental differential tests pin
// Rebuild output against a from-scratch Compile with string equality, so
// pointer sharing can never hide content drift.
func (ix *Index) Fingerprint() string {
	regNo := make(map[*regionIdx]int, len(ix.regs))
	for i, rp := range ix.regs {
		regNo[rp] = i
	}
	var b strings.Builder
	fmt.Fprintf(&b, "model=%s maxHops=%d w=%d h=%d torus=%v regions=%d\n",
		ix.model, ix.maxHops, ix.w, ix.h, ix.torus, len(ix.regs))
	for i, rp := range ix.regs {
		fmt.Fprintf(&b, "region %d bounds=(%d,%d)-(%d,%d) size=%d\n",
			i, rp.bounds.MinX, rp.bounds.MinY, rp.bounds.MaxX, rp.bounds.MaxY, rp.size)
		for y, runs := range rp.rowRuns {
			for _, r := range runs {
				fmt.Fprintf(&b, " row %d: [%d,%d]\n", rp.bounds.MinY+y, r.lo, r.hi)
			}
		}
		for x, runs := range rp.colRuns {
			for _, r := range runs {
				fmt.Fprintf(&b, " col %d: [%d,%d]\n", rp.bounds.MinX+x, r.lo, r.hi)
			}
		}
		fmt.Fprintf(&b, " corners %v\n", rp.corners)
		for ri, ring := range rp.rings {
			fmt.Fprintf(&b, " ring %d:", ri)
			for _, s := range ring {
				fmt.Fprintf(&b, " %v%s", s.p, s.h)
			}
			fmt.Fprintln(&b)
		}
	}
	dumpTable := func(name string, tab [][]span) {
		for i, spans := range tab {
			for _, s := range spans {
				fmt.Fprintf(&b, "%s %d: [%d,%d] reg=%d\n", name, i, s.lo, s.hi, regNo[s.reg])
			}
		}
	}
	dumpTable("rows", ix.rows)
	dumpTable("cols", ix.cols)
	return b.String()
}
