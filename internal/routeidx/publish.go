package routeidx

import (
	"sync/atomic"

	"ocpmesh/internal/core"
	"ocpmesh/internal/routing"
)

// Published maintains a current Index over a live core.Session with the
// same lock-free discipline internal/serve uses for snapshots: readers
// Load an immutable index through an atomic pointer, the session's
// mutating goroutine replaces it after every delta.
type Published struct {
	ptr atomic.Pointer[Index]
}

// Publish compiles an index for the session's current state and
// registers a Session.OnDelta hook that rebuilds it incrementally after
// every successful delta. Like OnDelta itself, Publish must run before
// the session is shared across goroutines; afterwards Load is safe from
// anywhere.
func Publish(s *core.Session, model routing.Model, opt Options) *Published {
	p := &Published{}
	p.ptr.Store(Compile(s.Result(), model, opt))
	s.OnDelta(func(core.Delta) {
		p.ptr.Store(p.ptr.Load().Rebuild(s.Result()))
	})
	return p
}

// Load returns the current immutable index. The result stays valid (and
// queryable) forever; later deltas publish replacements instead of
// mutating it.
func (p *Published) Load() *Index { return p.ptr.Load() }
