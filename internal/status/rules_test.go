package status

import (
	"testing"

	"ocpmesh/internal/fault"
	"ocpmesh/internal/grid"
	"ocpmesh/internal/mesh"
	"ocpmesh/internal/simnet"
)

// runPhase1 computes the unsafe labels for a fixture.
func runPhase1(t *testing.T, fix fault.Fixture, def SafetyDef) *simnet.Result {
	t.Helper()
	env, err := simnet.NewEnv(fix.Topo, fix.Faults, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := simnet.Sequential().Run(env, UnsafeRule(def), simnet.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// runPhase2 computes the enabled labels given unsafe labels.
func runPhase2(t *testing.T, fix fault.Fixture, unsafe []bool) *simnet.Result {
	t.Helper()
	env, err := simnet.NewEnv(fix.Topo, fix.Faults, unsafe)
	if err != nil {
		t.Fatal(err)
	}
	res, err := simnet.Sequential().Run(env, EnabledRule(), simnet.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// labelSet gathers the points whose label equals want.
func labelSet(topo *mesh.Topology, labels []bool, want bool) *grid.PointSet {
	s := grid.NewPointSet()
	for i, l := range labels {
		if l == want {
			s.Add(topo.PointAt(i))
		}
	}
	return s
}

func TestSafetyDefString(t *testing.T) {
	if Def2a.String() != "def2a" || Def2b.String() != "def2b" || SafetyDef(9).String() != "def?" {
		t.Fatal("SafetyDef names wrong")
	}
}

func TestRuleNames(t *testing.T) {
	if UnsafeRule(Def2a).Name() != "unsafe/def2a" {
		t.Fatalf("name = %q", UnsafeRule(Def2a).Name())
	}
	if UnsafeRule(Def2b).Name() != "unsafe/def2b" {
		t.Fatalf("name = %q", UnsafeRule(Def2b).Name())
	}
	if EnabledRule().Name() != "enabled/def3" {
		t.Fatalf("name = %q", EnabledRule().Name())
	}
}

func TestRuleLabels(t *testing.T) {
	u := UnsafeRule(Def2b)
	if u.GhostLabel() || !u.FaultyLabel() {
		t.Fatal("unsafe rule: ghosts are safe, faulty nodes unsafe")
	}
	e := EnabledRule()
	if !e.GhostLabel() || e.FaultyLabel() {
		t.Fatal("enabled rule: ghosts are enabled, faulty nodes disabled")
	}
}

// The paper's Section 3 example: faults (1,3), (2,1), (3,2) produce the
// single faulty block {1..3}x{1..3} under Definition 2b, and every
// nonfaulty node of the block becomes enabled.
func TestSectionThreeExample(t *testing.T) {
	fix := fault.SectionThreeExample()
	p1 := runPhase1(t, fix, Def2b)
	unsafe := labelSet(fix.Topo, p1.Labels, true)
	wantBlock := grid.PointSetOf(grid.NewRect(1, 1, 3, 3).Points()...)
	if !unsafe.Equal(wantBlock) {
		t.Fatalf("unsafe set = %v, want the 3x3 block", unsafe.Points())
	}

	p2 := runPhase2(t, fix, p1.Labels)
	disabled := labelSet(fix.Topo, p2.Labels, false)
	if !disabled.Equal(fix.Faults) {
		t.Fatalf("disabled set = %v, want exactly the faults (paper: all nonfaulty nodes enabled)",
			disabled.Points())
	}
}

// Figure 1 fixture: Def 2a merges everything into one 4x2 block, Def 2b
// splits it in two, and Definition 3 keeps only the faults disabled.
func TestFigure1Blocks(t *testing.T) {
	fix := fault.Figure1()

	p2a := runPhase1(t, fix, Def2a)
	unsafe2a := labelSet(fix.Topo, p2a.Labels, true)
	want2a := grid.PointSetOf(grid.NewRect(2, 2, 5, 3).Points()...)
	if !unsafe2a.Equal(want2a) {
		t.Fatalf("Def2a unsafe = %v, want [2..5]x[2..3]", unsafe2a.Points())
	}

	p2b := runPhase1(t, fix, Def2b)
	unsafe2b := labelSet(fix.Topo, p2b.Labels, true)
	want2b := grid.PointSetOf(append(grid.NewRect(2, 2, 3, 3).Points(), grid.Pt(5, 3))...)
	if !unsafe2b.Equal(want2b) {
		t.Fatalf("Def2b unsafe = %v, want [2..3]x[2..3] + (5,3)", unsafe2b.Points())
	}

	// Definition 2b captures no more nonfaulty nodes than Definition 2a
	// (the paper's motivation for the enhanced definition).
	if unsafe2b.Len() > unsafe2a.Len() {
		t.Fatal("Def2b must not capture more nodes than Def2a")
	}

	for _, p1 := range []*simnet.Result{p2a, p2b} {
		p2 := runPhase2(t, fix, p1.Labels)
		disabled := labelSet(fix.Topo, p2.Labels, false)
		if !disabled.Equal(fix.Faults) {
			t.Fatalf("disabled = %v, want exactly the faults", disabled.Points())
		}
	}
}

// Figure 2(a): the nonfaulty upper-right 2x2 sub-block is enabled by the
// monotone Definition 3, starting from the corner.
func TestFigure2AEnablesCorner(t *testing.T) {
	fix := fault.Figure2A()
	p1 := runPhase1(t, fix, Def2b)
	unsafeSet := labelSet(fix.Topo, p1.Labels, true)
	wantBlock := grid.PointSetOf(fault.Figure2Block().Points()...)
	if !unsafeSet.Equal(wantBlock) {
		t.Fatalf("unsafe set = %v, want the full Figure 2 block", unsafeSet.Points())
	}

	p2 := runPhase2(t, fix, p1.Labels)
	enabled := labelSet(fix.Topo, p2.Labels, true)
	for _, p := range fault.Figure2AHole().Points() {
		if !enabled.Has(p) {
			t.Fatalf("hole node %v should be enabled", p)
		}
	}
	disabled := labelSet(fix.Topo, p2.Labels, false)
	if !disabled.Equal(fix.Faults) {
		t.Fatalf("disabled = %v, want exactly the faults", disabled.Points())
	}
}

// Figure 2(b): with the nonfaulty sub-block at the upper center,
// Definition 3 keeps the whole block disabled.
func TestFigure2BAllDisabled(t *testing.T) {
	fix := fault.Figure2B()
	p1 := runPhase1(t, fix, Def2b)
	p2 := runPhase2(t, fix, p1.Labels)
	disabled := labelSet(fix.Topo, p2.Labels, false)
	wantBlock := grid.PointSetOf(fault.Figure2Block().Points()...)
	if !disabled.Equal(wantBlock) {
		t.Fatalf("disabled = %v, want the whole block (paper: all nodes have the disabled status)",
			disabled.Points())
	}
}

// Figure 2(b) is the paper's double-status counterexample: under the
// naive recursive definition both "hole disabled" and "hole enabled" are
// consistent assignments, so the recursive definition is not well defined.
func TestFigure2BDoubleStatus(t *testing.T) {
	fix := fault.Figure2B()
	p1 := runPhase1(t, fix, Def2b)
	env, err := simnet.NewEnv(fix.Topo, fix.Faults, p1.Labels)
	if err != nil {
		t.Fatal(err)
	}

	// Assignment 1: Definition 3's fixpoint (everything in the block
	// disabled) is consistent with the recursive definition.
	p2 := runPhase2(t, fix, p1.Labels)
	allDisabled := p2.Labels
	if !IsRecursiveEnabledFixpoint(env, allDisabled) {
		t.Fatal("Definition 3 fixpoint must satisfy the recursive definition")
	}

	// Assignment 2: additionally enabling the nonfaulty hole is ALSO
	// consistent — the double status.
	alt := make([]bool, len(allDisabled))
	copy(alt, allDisabled)
	for _, p := range fault.Figure2BHole().Points() {
		alt[fix.Topo.Index(p)] = true
	}
	if !IsRecursiveEnabledFixpoint(env, alt) {
		t.Fatal("hole-enabled assignment must also satisfy the recursive definition (double status)")
	}

	// Sanity: the checker rejects inconsistent assignments.
	bad := make([]bool, len(allDisabled))
	copy(bad, allDisabled)
	hole := fault.Figure2BHole().Points()
	bad[fix.Topo.Index(hole[0])] = true // only one hole node enabled: inconsistent
	if IsRecursiveEnabledFixpoint(env, bad) {
		t.Fatal("checker accepted an inconsistent assignment")
	}
	// Enabled faulty node: inconsistent.
	bad2 := make([]bool, len(allDisabled))
	copy(bad2, allDisabled)
	bad2[fix.Topo.Index(fix.Faults.Points()[0])] = true
	if IsRecursiveEnabledFixpoint(env, bad2) {
		t.Fatal("checker accepted an enabled faulty node")
	}
	// Disabled safe node: inconsistent.
	bad3 := make([]bool, len(allDisabled))
	copy(bad3, allDisabled)
	bad3[fix.Topo.Index(grid.Pt(0, 0))] = false
	if IsRecursiveEnabledFixpoint(env, bad3) {
		t.Fatal("checker accepted a disabled safe node")
	}
}

// Figure 2(a) has a unique recursive fixpoint reachable by Definition 3:
// the hole must be enabled; all-disabled is NOT a recursive fixpoint
// because the corner node sees two enabled neighbors outside the block.
func TestFigure2ANoDoubleStatus(t *testing.T) {
	fix := fault.Figure2A()
	p1 := runPhase1(t, fix, Def2b)
	env, err := simnet.NewEnv(fix.Topo, fix.Faults, p1.Labels)
	if err != nil {
		t.Fatal(err)
	}
	p2 := runPhase2(t, fix, p1.Labels)
	if !IsRecursiveEnabledFixpoint(env, p2.Labels) {
		t.Fatal("Definition 3 fixpoint must satisfy the recursive definition")
	}
	// Forcing the hole disabled violates the recursive definition.
	alt := make([]bool, len(p2.Labels))
	copy(alt, p2.Labels)
	for _, p := range fault.Figure2AHole().Points() {
		alt[fix.Topo.Index(p)] = false
	}
	if IsRecursiveEnabledFixpoint(env, alt) {
		t.Fatal("corner-opening hole cannot be consistently disabled")
	}
}

// Definition 2a vs 2b on the single-column gap pattern: two faults in one
// column separated by one node merge under 2a and stay separate under 2b.
func TestDefinitionsDifferOnColumnGap(t *testing.T) {
	topo := mesh.MustNew(7, 7, mesh.Mesh2D)
	faults := grid.PointSetOf(grid.Pt(3, 2), grid.Pt(3, 4))
	fix := fault.Fixture{Name: "gap", Topo: topo, Faults: faults}

	p2a := runPhase1(t, fix, Def2a)
	unsafe2a := labelSet(topo, p2a.Labels, true)
	if !unsafe2a.Has(grid.Pt(3, 3)) {
		t.Fatal("Def2a: the in-between node has two unsafe neighbors and must be unsafe")
	}
	p2b := runPhase1(t, fix, Def2b)
	unsafe2b := labelSet(topo, p2b.Labels, true)
	if unsafe2b.Has(grid.Pt(3, 3)) {
		t.Fatal("Def2b: both unsafe neighbors are in the same dimension; node must stay safe")
	}
	if unsafe2b.Len() != 2 {
		t.Fatalf("Def2b unsafe = %v, want just the faults", unsafe2b.Points())
	}
}

// Unsafe labels are monotone over rounds and disabled labels shrink over
// rounds; also phase rounds on these small examples stay below the block
// diameter bound from the paper.
func TestRoundBounds(t *testing.T) {
	for _, fix := range fault.Fixtures() {
		for _, def := range []SafetyDef{Def2a, Def2b} {
			p1 := runPhase1(t, fix, def)
			unsafeSet := labelSet(fix.Topo, p1.Labels, true)
			if unsafeSet.Len() == 0 {
				continue
			}
			bound := unsafeSet.Diameter() + 1
			if p1.Rounds > bound {
				t.Errorf("%s/%v: phase-1 rounds %d exceed diameter bound %d",
					fix.Name, def, p1.Rounds, bound)
			}
			p2 := runPhase2(t, fix, p1.Labels)
			if p2.Rounds > bound {
				t.Errorf("%s/%v: phase-2 rounds %d exceed diameter bound %d",
					fix.Name, def, p2.Rounds, bound)
			}
		}
	}
}

// The channel engine agrees with the sequential engine on the real rules
// (the equivalence test in simnet uses a synthetic rule).
func TestEnginesAgreeOnStatusRules(t *testing.T) {
	for _, fix := range fault.Fixtures() {
		env, err := simnet.NewEnv(fix.Topo, fix.Faults, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, def := range []SafetyDef{Def2a, Def2b} {
			seq, err := simnet.Sequential().Run(env, UnsafeRule(def), simnet.Options{})
			if err != nil {
				t.Fatal(err)
			}
			chn, err := simnet.Channels().Run(env, UnsafeRule(def), simnet.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if seq.Rounds != chn.Rounds {
				t.Fatalf("%s/%v: rounds differ", fix.Name, def)
			}
			for i := range seq.Labels {
				if seq.Labels[i] != chn.Labels[i] {
					t.Fatalf("%s/%v: label mismatch at %v", fix.Name, def, fix.Topo.PointAt(i))
				}
			}

			env2, err := simnet.NewEnv(fix.Topo, fix.Faults, seq.Labels)
			if err != nil {
				t.Fatal(err)
			}
			seq2, err := simnet.Sequential().Run(env2, EnabledRule(), simnet.Options{})
			if err != nil {
				t.Fatal(err)
			}
			chn2, err := simnet.Channels().Run(env2, EnabledRule(), simnet.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if seq2.Rounds != chn2.Rounds {
				t.Fatalf("%s/%v: phase-2 rounds differ", fix.Name, def)
			}
			for i := range seq2.Labels {
				if seq2.Labels[i] != chn2.Labels[i] {
					t.Fatalf("%s/%v: phase-2 label mismatch at %v", fix.Name, def, fix.Topo.PointAt(i))
				}
			}
		}
	}
}

// TestWordRulesMatchStep pins each StepWord kernel to its scalar Step
// over every input combination: for all 32 (cur, w, e, s, n) patterns,
// a lane of the word kernel must equal Step on the corresponding
// scalars. Lanes are packed with the combination index so all 32 cases
// are verified in a single word evaluation per rule.
func TestWordRulesMatchStep(t *testing.T) {
	// env/point are unused by both rules' Step bodies; enabledRule.Init
	// needs Aux but Step does not.
	rules := []simnet.Rule{UnsafeRule(Def2a), UnsafeRule(Def2b), EnabledRule()}
	for _, rule := range rules {
		wr, ok := rule.(simnet.WordRule)
		if !ok {
			t.Fatalf("%s does not implement WordRule", rule.Name())
		}
		// Bit i of each operand word encodes combination i's value of
		// that operand: cur = bit 0 of i, west = bit 1, ... north = bit 4.
		var cur, w, e, s, n uint64
		for i := 0; i < 32; i++ {
			cur |= uint64(i>>0&1) << i
			w |= uint64(i>>1&1) << i
			e |= uint64(i>>2&1) << i
			s |= uint64(i>>3&1) << i
			n |= uint64(i>>4&1) << i
		}
		got := wr.StepWord(cur, w, e, s, n)
		for i := 0; i < 32; i++ {
			var nbr [4]bool
			nbr[mesh.West] = i>>1&1 != 0
			nbr[mesh.East] = i>>2&1 != 0
			nbr[mesh.South] = i>>3&1 != 0
			nbr[mesh.North] = i>>4&1 != 0
			want := rule.Step(nil, grid.Pt(0, 0), i&1 != 0, nbr)
			if got>>i&1 != 0 != want {
				t.Errorf("%s: combination %05b: StepWord lane = %t, Step = %t",
					rule.Name(), i, got>>i&1 != 0, want)
			}
		}
	}
}
