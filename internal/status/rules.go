// Package status implements the paper's node-status rules as local
// simnet.Rule values, plus the fixpoint checker for the naive recursive
// enabled/disabled definition whose "double status" problem (Figure 2)
// motivates the paper's Definition 3.
//
// Node classifications (paper Section 3):
//
//   - faulty vs nonfaulty: fixed input (the fault pattern).
//   - safe vs unsafe: phase 1. All faulty nodes are unsafe. Definition 2a
//     makes a nonfaulty node unsafe when it has two or more unsafe
//     neighbors; Definition 2b when it has an unsafe neighbor in both
//     dimensions. Connected unsafe nodes form the rectangular faulty
//     blocks.
//   - enabled vs disabled: phase 2 (Definition 3). Unsafe nodes start
//     disabled, safe nodes enabled; a nonfaulty unsafe node becomes
//     enabled when it has two or more enabled neighbors. Connected
//     disabled nodes form the disabled regions — the orthogonal convex
//     polygons of the title.
//
// Ghost nodes (outside a bounded mesh) are safe and enabled; fail-stop
// faulty nodes present unsafe/disabled to their neighbors.
package status

import (
	"ocpmesh/internal/grid"
	"ocpmesh/internal/mesh"
	"ocpmesh/internal/simnet"
)

// SafetyDef selects the phase-1 safe/unsafe definition.
type SafetyDef int

const (
	// Def2a: a nonfaulty node is unsafe if it has two or more unsafe
	// neighbors. Faulty blocks are disjoint rectangles at pairwise
	// distance >= 3.
	Def2a SafetyDef = iota
	// Def2b: a nonfaulty node is unsafe if it has an unsafe neighbor in
	// both dimensions. Blocks capture fewer nonfaulty nodes and sit at
	// pairwise distance >= 2.
	Def2b
)

// String returns the definition name.
func (d SafetyDef) String() string {
	switch d {
	case Def2a:
		return "def2a"
	case Def2b:
		return "def2b"
	default:
		return "def?"
	}
}

// UnsafeRule returns the phase-1 rule for the given definition. The label
// is "unsafe": faulty nodes are permanently unsafe, ghosts are safe, and
// the rule is monotone (safe -> unsafe only).
func UnsafeRule(def SafetyDef) simnet.Rule { return unsafeRule{def: def} }

type unsafeRule struct {
	def SafetyDef
}

func (r unsafeRule) Name() string { return "unsafe/" + r.def.String() }

// Init implements simnet.Rule: every nonfaulty node starts safe. (The
// paper stresses that each nonfaulty node must initially be assigned the
// safe status for the iterative definition to be well defined.)
func (unsafeRule) Init(*simnet.Env, grid.Point) bool { return false }

// GhostLabel implements simnet.Rule: ghosts are safe.
func (unsafeRule) GhostLabel() bool { return false }

// FaultyLabel implements simnet.Rule: faulty nodes are unsafe.
func (unsafeRule) FaultyLabel() bool { return true }

// Step implements simnet.Rule.
func (r unsafeRule) Step(_ *simnet.Env, _ grid.Point, cur bool, nbr [4]bool) bool {
	if cur {
		return true // monotone: once unsafe, always unsafe
	}
	w, e, s, n := nbr[mesh.West], nbr[mesh.East], nbr[mesh.South], nbr[mesh.North]
	switch r.def {
	case Def2a:
		count := 0
		for _, u := range nbr {
			if u {
				count++
			}
		}
		return count >= 2
	default: // Def2b
		return (w || e) && (s || n)
	}
}

// StepWord implements simnet.WordRule: Step over 64 lanes at once. Both
// definitions reduce to a few word-wide boolean operations; Def 2a's
// "two or more of four" threshold is the carry-save atLeastTwo counter.
func (r unsafeRule) StepWord(cur, west, east, south, north uint64) uint64 {
	if r.def == Def2a {
		return cur | atLeastTwo(west, east, south, north)
	}
	return cur | (west|east)&(south|north) // Def2b: an unsafe neighbor in both dimensions
}

// atLeastTwo returns, per lane, whether at least two of a, b, c, d are
// set: a carry-save add of the four one-bit inputs. The pairwise sums
// are s1 = a XOR b and s2 = c XOR d with carries c1 = a AND b and
// c2 = c AND d; the total is >= 2 exactly when a pair carried or both
// pairs contributed a single one.
func atLeastTwo(a, b, c, d uint64) uint64 {
	return a&b | c&d | (a^b)&(c^d)
}

// EnabledRule returns the phase-2 rule (Definition 3). The label is
// "enabled": safe nodes and ghosts are enabled, faulty nodes permanently
// disabled, and a nonfaulty unsafe node becomes enabled once it sees two
// or more enabled neighbors. env.Aux must carry the phase-1 unsafe labels.
func EnabledRule() simnet.Rule { return enabledRule{} }

type enabledRule struct{}

func (enabledRule) Name() string { return "enabled/def3" }

// Init implements simnet.Rule: safe nodes start enabled, unsafe nodes
// disabled. This explicit initialization (rather than a recursive
// definition) is what makes the enabled/disabled status well defined.
func (enabledRule) Init(env *simnet.Env, p grid.Point) bool {
	return !env.Aux[env.Topo.Index(p)] // enabled iff safe
}

// GhostLabel implements simnet.Rule: ghosts are enabled.
func (enabledRule) GhostLabel() bool { return true }

// FaultyLabel implements simnet.Rule: faulty nodes are disabled.
func (enabledRule) FaultyLabel() bool { return false }

// Step implements simnet.Rule.
func (enabledRule) Step(_ *simnet.Env, _ grid.Point, cur bool, nbr [4]bool) bool {
	if cur {
		return true // monotone: once enabled, always enabled
	}
	count := 0
	for _, e := range nbr {
		if e {
			count++
		}
	}
	return count >= 2
}

// StepWord implements simnet.WordRule: a disabled lane becomes enabled
// when at least two of its four neighbor lanes are enabled.
func (enabledRule) StepWord(cur, west, east, south, north uint64) uint64 {
	return cur | atLeastTwo(west, east, south, north)
}

// IsRecursiveEnabledFixpoint checks a complete enabled/disabled assignment
// against the naive RECURSIVE definition the paper rejects: "an unsafe
// node is enabled if it has two or more enabled neighbors; otherwise it is
// disabled". It reports whether the assignment is consistent with that
// definition. Figure 2(b) exhibits a configuration with two distinct
// consistent assignments (double status); TestFigure2DoubleStatus uses
// this checker to demonstrate the problem.
//
// enabled is indexed by env.Topo.Index; env.Aux must carry the unsafe
// labels.
func IsRecursiveEnabledFixpoint(env *simnet.Env, enabled []bool) bool {
	for _, p := range env.Topo.Points() {
		i := env.Topo.Index(p)
		if env.Faulty.Has(p) {
			if enabled[i] {
				return false // faulty nodes must be disabled
			}
			continue
		}
		if !env.Aux[i] {
			if !enabled[i] {
				return false // safe nodes must be enabled
			}
			continue
		}
		count := 0
		for _, d := range mesh.Directions {
			q, ok := env.Topo.NeighborIn(p, d)
			switch {
			case !ok:
				count++ // ghost: enabled
			case env.Faulty.Has(q):
				// disabled
			case enabled[env.Topo.Index(q)]:
				count++
			}
		}
		if enabled[i] != (count >= 2) {
			return false
		}
	}
	return true
}
