package status

import (
	"math/rand"
	"testing"

	"ocpmesh/internal/fault"
	"ocpmesh/internal/grid"
	"ocpmesh/internal/mesh"
	"ocpmesh/internal/simnet"
)

// Definition 2b's condition (an unsafe neighbor in BOTH dimensions)
// implies Definition 2a's (two or more unsafe neighbors), so by induction
// over rounds the 2b unsafe set is contained in the 2a unsafe set. This
// is the formal content of "the total number of nonfaulty nodes included
// in faulty blocks is less than the one under Definition 2a".
func TestDef2bSubsetOfDef2a(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 60; trial++ {
		kind := mesh.Mesh2D
		if trial%4 == 0 {
			kind = mesh.Torus2D
		}
		topo := mesh.MustNew(6+rng.Intn(10), 6+rng.Intn(10), kind)
		faults := fault.Uniform{Count: rng.Intn(topo.Size() / 4)}.Generate(topo, rng)
		env, err := simnet.NewEnv(topo, faults, nil)
		if err != nil {
			t.Fatal(err)
		}
		a, err := simnet.Sequential().Run(env, UnsafeRule(Def2a), simnet.Options{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := simnet.Sequential().Run(env, UnsafeRule(Def2b), simnet.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for i := range a.Labels {
			if b.Labels[i] && !a.Labels[i] {
				t.Fatalf("trial %d: node %v unsafe under 2b but safe under 2a",
					trial, topo.PointAt(i))
			}
		}
	}
}

// The fixpoints are idempotent: feeding a fixpoint back as the initial
// state (via a rule whose Init replays it) changes nothing. Equivalently,
// re-running the phase on its own output stabilizes in zero rounds.
func TestFixpointIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	topo := mesh.MustNew(12, 12, mesh.Mesh2D)
	faults := fault.Uniform{Count: 20}.Generate(topo, rng)
	env, err := simnet.NewEnv(topo, faults, nil)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := simnet.Sequential().Run(env, UnsafeRule(Def2b), simnet.Options{})
	if err != nil {
		t.Fatal(err)
	}
	replay := replayRule{labels: p1.Labels, inner: UnsafeRule(Def2b), topo: topo}
	again, err := simnet.Sequential().Run(env, replay, simnet.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if again.Rounds != 0 {
		t.Fatalf("re-running on the fixpoint took %d rounds", again.Rounds)
	}
}

// replayRule initializes from a precomputed label vector and then applies
// the inner rule's step.
type replayRule struct {
	labels []bool
	inner  simnet.Rule
	topo   *mesh.Topology
}

func (r replayRule) Name() string { return "replay/" + r.inner.Name() }
func (r replayRule) Init(env *simnet.Env, p grid.Point) bool {
	return r.labels[r.topo.Index(p)]
}
func (r replayRule) GhostLabel() bool  { return r.inner.GhostLabel() }
func (r replayRule) FaultyLabel() bool { return r.inner.FaultyLabel() }
func (r replayRule) Step(env *simnet.Env, p grid.Point, cur bool, nbr [4]bool) bool {
	return r.inner.Step(env, p, cur, nbr)
}

// The paper assumes synchronous rounds only to simplify analysis: both
// phases are monotone, so a fully asynchronous schedule reaches the same
// blocks and regions.
func TestPipelineScheduleIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	for trial := 0; trial < 15; trial++ {
		topo := mesh.MustNew(10, 10, mesh.Mesh2D)
		faults := fault.Uniform{Count: rng.Intn(20)}.Generate(topo, rng)
		env, err := simnet.NewEnv(topo, faults, nil)
		if err != nil {
			t.Fatal(err)
		}
		sync1, err := simnet.Sequential().Run(env, UnsafeRule(Def2b), simnet.Options{})
		if err != nil {
			t.Fatal(err)
		}
		async1, _, err := simnet.RunAsyncGeneric[bool](env, UnsafeRule(Def2b), rng, 0)
		if err != nil {
			t.Fatal(err)
		}
		for i := range async1 {
			if async1[i] != sync1.Labels[i] {
				t.Fatalf("trial %d: phase-1 fixpoint differs at %v", trial, topo.PointAt(i))
			}
		}
		env2, err := simnet.NewEnv(topo, faults, sync1.Labels)
		if err != nil {
			t.Fatal(err)
		}
		sync2, err := simnet.Sequential().Run(env2, EnabledRule(), simnet.Options{})
		if err != nil {
			t.Fatal(err)
		}
		async2, _, err := simnet.RunAsyncGeneric[bool](env2, EnabledRule(), rng, 0)
		if err != nil {
			t.Fatal(err)
		}
		for i := range async2 {
			if async2[i] != sync2.Labels[i] {
				t.Fatalf("trial %d: phase-2 fixpoint differs at %v", trial, topo.PointAt(i))
			}
		}
	}
}
