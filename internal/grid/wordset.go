package grid

import "sort"

// WordSet is a set of word indexes with O(1) insert and membership and
// iteration proportional to the member count: a bitmap for membership
// plus an insertion-order list, the standard sparse-set pair. It is the
// dirty-word tracker behind BitGrid.Track — mutations between two
// word-parallel frontier runs land here, so the next run can seed its
// worklist from exactly the words that moved instead of rescanning the
// plane.
type WordSet struct {
	bits []uint64
	idx  []int
}

// NewWordSet returns an empty set over word indexes [0, n).
func NewWordSet(n int) *WordSet {
	return &WordSet{bits: make([]uint64, (n+63)/64)}
}

// Add inserts wi and reports whether it was newly added.
func (s *WordSet) Add(wi int) bool {
	w, b := wi/64, uint64(1)<<(uint(wi)%64)
	if s.bits[w]&b != 0 {
		return false
	}
	s.bits[w] |= b
	s.idx = append(s.idx, wi)
	return true
}

// Has reports membership.
func (s *WordSet) Has(wi int) bool {
	return s.bits[wi/64]&(1<<(uint(wi)%64)) != 0
}

// Len returns the member count.
func (s *WordSet) Len() int { return len(s.idx) }

// Sorted returns the members in ascending order. The returned slice is
// the set's own storage, valid until the next mutation.
func (s *WordSet) Sorted() []int {
	sort.Ints(s.idx)
	return s.idx
}

// Clear empties the set in O(members).
func (s *WordSet) Clear() {
	for _, wi := range s.idx {
		s.bits[wi/64] &^= 1 << (uint(wi) % 64)
	}
	s.idx = s.idx[:0]
}
