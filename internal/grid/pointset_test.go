package grid

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointSetBasics(t *testing.T) {
	s := NewPointSet()
	if s.Len() != 0 || s.Has(Pt(0, 0)) {
		t.Fatal("new set must be empty")
	}
	if !s.Add(Pt(1, 2)) {
		t.Fatal("first Add must report true")
	}
	if s.Add(Pt(1, 2)) {
		t.Fatal("duplicate Add must report false")
	}
	if !s.Has(Pt(1, 2)) || s.Len() != 1 {
		t.Fatal("membership broken")
	}
	if !s.Remove(Pt(1, 2)) || s.Remove(Pt(1, 2)) {
		t.Fatal("Remove semantics broken")
	}
	if s.Len() != 0 {
		t.Fatal("set should be empty after Remove")
	}
}

func TestPointSetOfAndPoints(t *testing.T) {
	s := PointSetOf(Pt(2, 1), Pt(0, 0), Pt(1, 1), Pt(2, 1))
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3 (duplicates collapse)", s.Len())
	}
	ps := s.Points()
	want := []Point{{0, 0}, {1, 1}, {2, 1}}
	if len(ps) != len(want) {
		t.Fatalf("Points = %v", ps)
	}
	for i := range want {
		if ps[i] != want[i] {
			t.Fatalf("Points[%d] = %v, want %v", i, ps[i], want[i])
		}
	}
}

func TestPointSetSetOps(t *testing.T) {
	a := PointSetOf(Pt(0, 0), Pt(1, 0), Pt(2, 0))
	b := PointSetOf(Pt(1, 0), Pt(3, 0))

	u := a.Clone().Union(b)
	if u.Len() != 4 {
		t.Fatalf("Union len = %d", u.Len())
	}
	i := a.Clone().Intersect(b)
	if i.Len() != 1 || !i.Has(Pt(1, 0)) {
		t.Fatalf("Intersect = %v", i.Points())
	}
	d := a.Clone().Subtract(b)
	if d.Len() != 2 || d.Has(Pt(1, 0)) {
		t.Fatalf("Subtract = %v", d.Points())
	}
	// Originals untouched by Clone-based ops.
	if a.Len() != 3 || b.Len() != 2 {
		t.Fatal("set ops mutated operands through Clone")
	}
}

func TestPointSetEqualSubset(t *testing.T) {
	a := PointSetOf(Pt(0, 0), Pt(1, 1))
	b := PointSetOf(Pt(1, 1), Pt(0, 0))
	c := PointSetOf(Pt(0, 0))
	if !a.Equal(b) || a.Equal(c) {
		t.Fatal("Equal broken")
	}
	if !c.SubsetOf(a) || a.SubsetOf(c) {
		t.Fatal("SubsetOf broken")
	}
	if !NewPointSet().SubsetOf(c) {
		t.Fatal("empty set is a subset of everything")
	}
}

func TestPointSetBounds(t *testing.T) {
	if !NewPointSet().Bounds().IsEmpty() {
		t.Fatal("empty set bounds must be empty")
	}
	s := PointSetOf(Pt(3, 1), Pt(1, 4), Pt(2, 2))
	if got, want := s.Bounds(), (Rect{1, 1, 3, 4}); got != want {
		t.Fatalf("Bounds = %v, want %v", got, want)
	}
}

func TestPointSetDiameter(t *testing.T) {
	if d := NewPointSet().Diameter(); d != 0 {
		t.Fatalf("empty Diameter = %d", d)
	}
	if d := PointSetOf(Pt(5, 5)).Diameter(); d != 0 {
		t.Fatalf("singleton Diameter = %d", d)
	}
	s := PointSetOf(Pt(0, 0), Pt(3, 0), Pt(0, 2))
	if d := s.Diameter(); d != 5 {
		t.Fatalf("Diameter = %d, want 5", d)
	}
}

// Diameter via rotated coordinates must match the brute-force pairwise max.
func TestPointSetDiameterMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		s := NewPointSet()
		n := 1 + rng.Intn(12)
		for i := 0; i < n; i++ {
			s.Add(Pt(rng.Intn(20)-10, rng.Intn(20)-10))
		}
		want := 0
		ps := s.Points()
		for i := range ps {
			for j := range ps {
				if d := ps[i].Dist(ps[j]); d > want {
					want = d
				}
			}
		}
		if got := s.Diameter(); got != want {
			t.Fatalf("trial %d: Diameter = %d, want %d for %v", trial, got, want, ps)
		}
	}
}

func TestPointSetEach(t *testing.T) {
	s := PointSetOf(Pt(0, 0), Pt(1, 0), Pt(0, 1))
	count := 0
	s.Each(func(Point) { count++ })
	if count != 3 {
		t.Fatalf("Each visited %d points", count)
	}
}

func TestPointSetAddAllProperty(t *testing.T) {
	f := func(raw []int8) bool {
		s := NewPointSet()
		var ps []Point
		for i := 0; i+1 < len(raw); i += 2 {
			ps = append(ps, Pt(int(raw[i]), int(raw[i+1])))
		}
		s.AddAll(ps...)
		for _, p := range ps {
			if !s.Has(p) {
				return false
			}
		}
		return s.Len() <= len(ps)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
