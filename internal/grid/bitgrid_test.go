package grid

import (
	"math/rand"
	"testing"
)

// TestBitGridRoundTrip: SetBools/Bools/Get agree with a plain []bool
// model at widths around the word boundary, and the padding-bits-zero
// invariant holds after every mutation.
func TestBitGridRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, w := range []int{1, 2, 63, 64, 65, 127, 128, 129} {
		for _, h := range []int{1, 3, 5} {
			g := NewBitGrid(w, h)
			model := make([]bool, w*h)
			for i := range model {
				model[i] = rng.Intn(2) == 0
			}
			g.SetBools(model)
			checkPadding(t, g)
			if got := g.Bools(nil); len(got) != len(model) {
				t.Fatalf("%dx%d: Bools len %d, want %d", w, h, len(got), len(model))
			} else {
				for i := range model {
					if got[i] != model[i] {
						t.Fatalf("%dx%d: Bools[%d] = %t, want %t", w, h, i, got[i], model[i])
					}
				}
			}
			count := 0
			for i := range model {
				x, y := i%w, i/w
				if g.Get(x, y) != model[i] {
					t.Fatalf("%dx%d: Get(%d,%d) = %t, want %t", w, h, x, y, g.Get(x, y), model[i])
				}
				if model[i] {
					count++
				}
			}
			if g.Count() != count {
				t.Fatalf("%dx%d: Count = %d, want %d", w, h, g.Count(), count)
			}

			// Point mutations.
			for trial := 0; trial < 50; trial++ {
				x, y, v := rng.Intn(w), rng.Intn(h), rng.Intn(2) == 0
				g.Set(x, y, v)
				model[y*w+x] = v
			}
			checkPadding(t, g)
			got := g.Bools(make([]bool, 0, w*h))
			for i := range model {
				if got[i] != model[i] {
					t.Fatalf("%dx%d after Set: cell %d = %t, want %t", w, h, i, got[i], model[i])
				}
			}

			// Clone independence and equality.
			c := g.Clone()
			if !c.Equal(g) {
				t.Fatalf("%dx%d: clone not equal", w, h)
			}
			c.Set(0, 0, !c.Get(0, 0))
			if c.Equal(g) {
				t.Fatalf("%dx%d: clone shares storage", w, h)
			}

			// Fill keeps padding clear.
			g.Fill(true)
			checkPadding(t, g)
			if g.Count() != w*h {
				t.Fatalf("%dx%d: Fill(true) Count = %d, want %d", w, h, g.Count(), w*h)
			}
			g.Fill(false)
			if g.Count() != 0 {
				t.Fatalf("%dx%d: Fill(false) Count = %d", w, h, g.Count())
			}
		}
	}
}

// checkPadding asserts the invariant documented on BitGrid: lanes at or
// beyond Width%64 in each row's last word are zero.
func checkPadding(t *testing.T, g *BitGrid) {
	t.Helper()
	mask := g.LastWordMask()
	for y := 0; y < g.Height(); y++ {
		w := g.Words()[(y+1)*g.WordsPerRow()-1]
		if w&^mask != 0 {
			t.Fatalf("row %d last word has padding bits set: %#x &^ %#x", y, w, mask)
		}
	}
}

// TestBitGridMasks pins the valid-lane masks at the word boundary.
func TestBitGridMasks(t *testing.T) {
	cases := []struct {
		width int
		last  uint64
	}{
		{1, 1},
		{63, 1<<63 - 1},
		{64, ^uint64(0)},
		{65, 1},
		{128, ^uint64(0)},
	}
	for _, c := range cases {
		g := NewBitGrid(c.width, 2)
		if got := g.LastWordMask(); got != c.last {
			t.Errorf("width %d: LastWordMask = %#x, want %#x", c.width, got, c.last)
		}
		for k := 0; k < g.WordsPerRow()-1; k++ {
			if g.WordMask(k) != ^uint64(0) {
				t.Errorf("width %d: WordMask(%d) not full", c.width, k)
			}
		}
		if g.WordMask(g.WordsPerRow()-1) != c.last {
			t.Errorf("width %d: WordMask(last) = %#x, want %#x",
				c.width, g.WordMask(g.WordsPerRow()-1), c.last)
		}
	}
}

// TestBitGridPanics: constructor and accessors reject invalid inputs.
func TestBitGridPanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	expectPanic("NewBitGrid(0,1)", func() { NewBitGrid(0, 1) })
	expectPanic("NewBitGrid(1,-1)", func() { NewBitGrid(1, -1) })
	g := NewBitGrid(4, 4)
	expectPanic("Get out of range", func() { g.Get(4, 0) })
	expectPanic("Set out of range", func() { g.Set(0, -1, true) })
	expectPanic("SetBools short", func() { g.SetBools(make([]bool, 3)) })
}
