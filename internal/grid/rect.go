package grid

import "fmt"

// Rect is an axis-aligned rectangle of lattice points with inclusive
// bounds. The zero Rect is the degenerate rectangle containing only the
// origin; use Empty for the canonical empty rectangle.
type Rect struct {
	MinX, MinY, MaxX, MaxY int
}

// Empty returns a rectangle that contains no points.
func Empty() Rect { return Rect{MinX: 0, MinY: 0, MaxX: -1, MaxY: -1} }

// NewRect returns the rectangle with the given inclusive bounds.
func NewRect(minX, minY, maxX, maxY int) Rect {
	return Rect{MinX: minX, MinY: minY, MaxX: maxX, MaxY: maxY}
}

// RectFromPoints returns the bounding rectangle of the given points and
// false if the slice is empty.
func RectFromPoints(ps []Point) (Rect, bool) {
	if len(ps) == 0 {
		return Empty(), false
	}
	r := Rect{ps[0].X, ps[0].Y, ps[0].X, ps[0].Y}
	for _, p := range ps[1:] {
		r = r.Include(p)
	}
	return r, true
}

// IsEmpty reports whether r contains no points.
func (r Rect) IsEmpty() bool { return r.MinX > r.MaxX || r.MinY > r.MaxY }

// Width returns the number of columns covered by r.
func (r Rect) Width() int {
	if r.IsEmpty() {
		return 0
	}
	return r.MaxX - r.MinX + 1
}

// Height returns the number of rows covered by r.
func (r Rect) Height() int {
	if r.IsEmpty() {
		return 0
	}
	return r.MaxY - r.MinY + 1
}

// Area returns the number of lattice points in r.
func (r Rect) Area() int { return r.Width() * r.Height() }

// Diameter returns the Manhattan diameter d(B) of the rectangle: the
// maximum L1 distance between two of its points, (Width-1)+(Height-1).
// The paper bounds the round complexity of both labeling phases by the
// maximum diameter over all faulty blocks.
func (r Rect) Diameter() int {
	if r.IsEmpty() {
		return 0
	}
	return (r.Width() - 1) + (r.Height() - 1)
}

// Contains reports whether p lies inside r.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// ContainsRect reports whether s lies entirely inside r.
func (r Rect) ContainsRect(s Rect) bool {
	if s.IsEmpty() {
		return true
	}
	return r.Contains(Pt(s.MinX, s.MinY)) && r.Contains(Pt(s.MaxX, s.MaxY))
}

// Include returns the smallest rectangle containing both r and p.
func (r Rect) Include(p Point) Rect {
	if r.IsEmpty() {
		return Rect{p.X, p.Y, p.X, p.Y}
	}
	return Rect{
		MinX: min(r.MinX, p.X),
		MinY: min(r.MinY, p.Y),
		MaxX: max(r.MaxX, p.X),
		MaxY: max(r.MaxY, p.Y),
	}
}

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	if r.IsEmpty() {
		return s
	}
	if s.IsEmpty() {
		return r
	}
	return Rect{
		MinX: min(r.MinX, s.MinX),
		MinY: min(r.MinY, s.MinY),
		MaxX: max(r.MaxX, s.MaxX),
		MaxY: max(r.MaxY, s.MaxY),
	}
}

// Intersect returns the rectangle common to r and s (possibly empty).
func (r Rect) Intersect(s Rect) Rect {
	out := Rect{
		MinX: max(r.MinX, s.MinX),
		MinY: max(r.MinY, s.MinY),
		MaxX: min(r.MaxX, s.MaxX),
		MaxY: min(r.MaxY, s.MaxY),
	}
	if out.IsEmpty() {
		return Empty()
	}
	return out
}

// Overlaps reports whether r and s share at least one point.
func (r Rect) Overlaps(s Rect) bool { return !r.Intersect(s).IsEmpty() }

// Expand grows r by k points in every direction. Expanding an empty
// rectangle yields an empty rectangle.
func (r Rect) Expand(k int) Rect {
	if r.IsEmpty() {
		return r
	}
	return Rect{r.MinX - k, r.MinY - k, r.MaxX + k, r.MaxY + k}
}

// Dist returns the minimal Manhattan distance between a point of r and a
// point of s. Touching or overlapping rectangles have distance zero. The
// paper's block-distance results state Dist >= 3 between faulty blocks
// under Definition 2a and Dist >= 2 under Definition 2b.
func (r Rect) Dist(s Rect) int {
	if r.IsEmpty() || s.IsEmpty() {
		return 0
	}
	dx := 0
	if s.MinX > r.MaxX {
		dx = s.MinX - r.MaxX
	} else if r.MinX > s.MaxX {
		dx = r.MinX - s.MaxX
	}
	dy := 0
	if s.MinY > r.MaxY {
		dy = s.MinY - r.MaxY
	} else if r.MinY > s.MaxY {
		dy = r.MinY - s.MaxY
	}
	return dx + dy
}

// Points returns all lattice points of r in canonical row-major order.
func (r Rect) Points() []Point {
	if r.IsEmpty() {
		return nil
	}
	out := make([]Point, 0, r.Area())
	for y := r.MinY; y <= r.MaxY; y++ {
		for x := r.MinX; x <= r.MaxX; x++ {
			out = append(out, Pt(x, y))
		}
	}
	return out
}

// Corners returns the four corner points of r in the order
// (MinX,MinY), (MaxX,MinY), (MinX,MaxY), (MaxX,MaxY).
func (r Rect) Corners() [4]Point {
	return [4]Point{
		{r.MinX, r.MinY},
		{r.MaxX, r.MinY},
		{r.MinX, r.MaxY},
		{r.MaxX, r.MaxY},
	}
}

// String renders the rectangle as "[minX..maxX]x[minY..maxY]".
func (r Rect) String() string {
	if r.IsEmpty() {
		return "[empty]"
	}
	return fmt.Sprintf("[%d..%d]x[%d..%d]", r.MinX, r.MaxX, r.MinY, r.MaxY)
}
