package grid

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointDist(t *testing.T) {
	tests := []struct {
		p, q Point
		want int
	}{
		{Pt(0, 0), Pt(0, 0), 0},
		{Pt(0, 0), Pt(1, 0), 1},
		{Pt(0, 0), Pt(0, 1), 1},
		{Pt(2, 3), Pt(5, 7), 7},
		{Pt(-2, -3), Pt(2, 3), 10},
		{Pt(5, 5), Pt(1, 9), 8},
	}
	for _, tt := range tests {
		if got := tt.p.Dist(tt.q); got != tt.want {
			t.Errorf("Dist(%v,%v) = %d, want %d", tt.p, tt.q, got, tt.want)
		}
		if got := tt.q.Dist(tt.p); got != tt.want {
			t.Errorf("Dist symmetry violated for %v,%v: %d != %d", tt.p, tt.q, got, tt.want)
		}
	}
}

func TestPointDistProperties(t *testing.T) {
	// Triangle inequality and identity of indiscernibles.
	f := func(ax, ay, bx, by, cx, cy int8) bool {
		a, b, c := Pt(int(ax), int(ay)), Pt(int(bx), int(by)), Pt(int(cx), int(cy))
		if a.Dist(b) < 0 {
			return false
		}
		if (a.Dist(b) == 0) != (a == b) {
			return false
		}
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChebyshevDist(t *testing.T) {
	if got := Pt(0, 0).ChebyshevDist(Pt(3, -7)); got != 7 {
		t.Fatalf("ChebyshevDist = %d, want 7", got)
	}
	f := func(ax, ay, bx, by int8) bool {
		a, b := Pt(int(ax), int(ay)), Pt(int(bx), int(by))
		ch, l1 := a.ChebyshevDist(b), a.Dist(b)
		return ch <= l1 && l1 <= 2*ch
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNeighbors4(t *testing.T) {
	n := Pt(3, 4).Neighbors4()
	want := [4]Point{{2, 4}, {4, 4}, {3, 3}, {3, 5}}
	if n != want {
		t.Fatalf("Neighbors4 = %v, want %v", n, want)
	}
	for _, q := range n {
		if !Pt(3, 4).IsNeighbor(q) {
			t.Errorf("%v should be a neighbor of (3,4)", q)
		}
	}
	if Pt(3, 4).IsNeighbor(Pt(4, 5)) {
		t.Error("diagonal point must not be a neighbor")
	}
	if Pt(3, 4).IsNeighbor(Pt(3, 4)) {
		t.Error("a point must not be its own neighbor")
	}
}

func TestAddSub(t *testing.T) {
	p := Pt(2, 3).Add(Pt(-5, 7))
	if p != Pt(-3, 10) {
		t.Fatalf("Add = %v", p)
	}
	if q := p.Sub(Pt(-5, 7)); q != Pt(2, 3) {
		t.Fatalf("Sub = %v", q)
	}
}

func TestSameRowCol(t *testing.T) {
	if !Pt(1, 5).SameRow(Pt(9, 5)) || Pt(1, 5).SameRow(Pt(1, 6)) {
		t.Error("SameRow wrong")
	}
	if !Pt(1, 5).SameCol(Pt(1, 9)) || Pt(1, 5).SameCol(Pt(2, 5)) {
		t.Error("SameCol wrong")
	}
}

func TestSortPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ps := make([]Point, 50)
	for i := range ps {
		ps[i] = Pt(rng.Intn(10), rng.Intn(10))
	}
	SortPoints(ps)
	for i := 1; i < len(ps); i++ {
		if ps[i].Less(ps[i-1]) {
			t.Fatalf("points not sorted at %d: %v < %v", i, ps[i], ps[i-1])
		}
	}
}

func TestPointString(t *testing.T) {
	if s := Pt(3, -4).String(); s != "(3,-4)" {
		t.Fatalf("String = %q", s)
	}
}

func TestLessIsStrictWeakOrder(t *testing.T) {
	f := func(ax, ay, bx, by int8) bool {
		a, b := Pt(int(ax), int(ay)), Pt(int(bx), int(by))
		if a == b {
			return !a.Less(b) && !b.Less(a)
		}
		return a.Less(b) != b.Less(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
