// Package grid provides the shared lattice vocabulary for the repository:
// integer points, inclusive rectangles, point sets and the closed quadrants
// used by the paper's Lemma 2/3 arguments.
//
// Coordinates follow the paper's convention: a 2-D mesh node has an address
// (x, y) with x growing to the east and y growing to the north. All
// distances are Manhattan (L1) distances, the routing distance of a 2-D
// mesh.
package grid

import (
	"fmt"
	"sort"
)

// Point is a node address in the 2-D lattice.
type Point struct {
	X, Y int
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y int) Point { return Point{X: x, Y: y} }

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p minus q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Dist returns the Manhattan (L1) distance between p and q, which is the
// minimal routing distance between the two nodes in a 2-D mesh.
func (p Point) Dist(q Point) int {
	return abs(p.X-q.X) + abs(p.Y-q.Y)
}

// ChebyshevDist returns the L-infinity distance between p and q.
func (p Point) ChebyshevDist(q Point) int {
	return max(abs(p.X-q.X), abs(p.Y-q.Y))
}

// Neighbors4 returns the four mesh neighbors of p in the fixed order
// west, east, south, north. Callers that need boundary clipping should
// filter the result themselves (see package mesh).
func (p Point) Neighbors4() [4]Point {
	return [4]Point{
		{p.X - 1, p.Y}, // west
		{p.X + 1, p.Y}, // east
		{p.X, p.Y - 1}, // south
		{p.X, p.Y + 1}, // north
	}
}

// IsNeighbor reports whether p and q are adjacent in the mesh, i.e. their
// addresses differ by exactly one in exactly one dimension.
func (p Point) IsNeighbor(q Point) bool { return p.Dist(q) == 1 }

// SameRow reports whether p and q lie on one horizontal line.
func (p Point) SameRow(q Point) bool { return p.Y == q.Y }

// SameCol reports whether p and q lie on one vertical line.
func (p Point) SameCol(q Point) bool { return p.X == q.X }

// Less orders points by row first (y), then by column (x). It is the
// canonical deterministic ordering used throughout the repository.
func (p Point) Less(q Point) bool {
	if p.Y != q.Y {
		return p.Y < q.Y
	}
	return p.X < q.X
}

// String renders the point in the paper's "(x,y)" address notation.
func (p Point) String() string { return fmt.Sprintf("(%d,%d)", p.X, p.Y) }

// SortPoints sorts points in canonical (row-major) order in place.
func SortPoints(ps []Point) {
	sort.Slice(ps, func(i, j int) bool { return ps[i].Less(ps[j]) })
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
