package grid

import "fmt"

// Quadrant identifies one of the four closed quadrants induced by the
// horizontal and vertical lines through an origin node, as used in the
// paper's Lemma 2 and Lemma 3. Each quadrant includes its portion of both
// axes and the origin itself, so the four quadrants overlap along the axes.
type Quadrant int

// The quadrants in the paper's (sign-of-x, sign-of-y) notation.
const (
	QuadPP Quadrant = iota // (+,+): x >= 0 and y >= 0
	QuadPM                 // (+,-): x >= 0 and y <= 0
	QuadMP                 // (-,+): x <= 0 and y >= 0
	QuadMM                 // (-,-): x <= 0 and y <= 0
)

// Quadrants lists the four quadrants in declaration order.
var Quadrants = [4]Quadrant{QuadPP, QuadPM, QuadMP, QuadMM}

// Contains reports whether p lies in quadrant q relative to origin. Points
// on an axis belong to both adjacent quadrants; origin belongs to all four.
func (q Quadrant) Contains(origin, p Point) bool {
	dx, dy := p.X-origin.X, p.Y-origin.Y
	switch q {
	case QuadPP:
		return dx >= 0 && dy >= 0
	case QuadPM:
		return dx >= 0 && dy <= 0
	case QuadMP:
		return dx <= 0 && dy >= 0
	case QuadMM:
		return dx <= 0 && dy <= 0
	default:
		panic(fmt.Sprintf("grid: invalid quadrant %d", int(q)))
	}
}

// String returns the paper's sign-pair notation for q.
func (q Quadrant) String() string {
	switch q {
	case QuadPP:
		return "(+,+)"
	case QuadPM:
		return "(+,-)"
	case QuadMP:
		return "(-,+)"
	case QuadMM:
		return "(-,-)"
	default:
		return fmt.Sprintf("Quadrant(%d)", int(q))
	}
}
