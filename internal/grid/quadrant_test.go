package grid

import (
	"testing"
	"testing/quick"
)

func TestQuadrantContains(t *testing.T) {
	origin := Pt(5, 5)
	tests := []struct {
		q    Quadrant
		p    Point
		want bool
	}{
		{QuadPP, Pt(7, 9), true},
		{QuadPP, Pt(5, 5), true}, // origin is in every quadrant
		{QuadPP, Pt(4, 6), false},
		{QuadPM, Pt(9, 1), true},
		{QuadPM, Pt(9, 6), false},
		{QuadMP, Pt(1, 9), true},
		{QuadMP, Pt(6, 9), false},
		{QuadMM, Pt(0, 0), true},
		{QuadMM, Pt(6, 4), false},
	}
	for _, tt := range tests {
		if got := tt.q.Contains(origin, tt.p); got != tt.want {
			t.Errorf("%v.Contains(%v,%v) = %t, want %t", tt.q, origin, tt.p, got, tt.want)
		}
	}
}

// The paper's quadrants are closed: every point on an axis lies in exactly
// two quadrants, the origin in all four, and every other point in exactly
// one.
func TestQuadrantCoverage(t *testing.T) {
	f := func(ox, oy, px, py int8) bool {
		o, p := Pt(int(ox), int(oy)), Pt(int(px), int(py))
		n := 0
		for _, q := range Quadrants {
			if q.Contains(o, p) {
				n++
			}
		}
		switch {
		case p == o:
			return n == 4
		case p.X == o.X || p.Y == o.Y:
			return n == 2
		default:
			return n == 1
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuadrantString(t *testing.T) {
	want := map[Quadrant]string{QuadPP: "(+,+)", QuadPM: "(+,-)", QuadMP: "(-,+)", QuadMM: "(-,-)"}
	for q, s := range want {
		if q.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(q), q.String(), s)
		}
	}
	if Quadrant(9).String() != "Quadrant(9)" {
		t.Errorf("unknown quadrant String = %q", Quadrant(9).String())
	}
}

func TestQuadrantContainsPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for invalid quadrant")
		}
	}()
	Quadrant(42).Contains(Pt(0, 0), Pt(1, 1))
}
