package grid

import (
	"math/rand"
	"testing"
)

func TestWordSetBasics(t *testing.T) {
	s := NewWordSet(200)
	if s.Len() != 0 || s.Has(0) {
		t.Fatal("new set not empty")
	}
	if !s.Add(5) || !s.Add(130) || !s.Add(0) {
		t.Fatal("fresh Add returned false")
	}
	if s.Add(5) {
		t.Fatal("duplicate Add returned true")
	}
	if s.Len() != 3 || !s.Has(5) || !s.Has(130) || !s.Has(0) || s.Has(64) {
		t.Fatalf("membership wrong: len=%d", s.Len())
	}
	got := s.Sorted()
	want := []int{0, 5, 130}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Sorted = %v, want %v", got, want)
		}
	}
	s.Clear()
	if s.Len() != 0 || s.Has(5) || s.Has(130) || s.Has(0) {
		t.Fatal("Clear left members behind")
	}
	if !s.Add(130) {
		t.Fatal("Add after Clear returned false")
	}
}

// TestWordSetAgainstMap drives randomized adds and clears against a
// plain map reference.
func TestWordSetAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	const n = 500
	s := NewWordSet(n)
	ref := map[int]bool{}
	for step := 0; step < 2000; step++ {
		if rng.Intn(100) == 0 {
			s.Clear()
			ref = map[int]bool{}
			continue
		}
		wi := rng.Intn(n)
		if got, want := s.Add(wi), !ref[wi]; got != want {
			t.Fatalf("step %d: Add(%d) = %t, want %t", step, wi, got, want)
		}
		ref[wi] = true
		if s.Len() != len(ref) {
			t.Fatalf("step %d: Len = %d, want %d", step, s.Len(), len(ref))
		}
	}
	for _, wi := range s.Sorted() {
		if !ref[wi] {
			t.Fatalf("Sorted lists %d, not in reference", wi)
		}
	}
}

// TestBitGridTrack pins the dirty-word hook: only Sets that actually
// change a bit are recorded, Clone does not inherit the tracker, and
// detaching stops recording.
func TestBitGridTrack(t *testing.T) {
	g := NewBitGrid(70, 3) // wpr = 2: cell (65, y) lands in word y*2+1
	ws := NewWordSet(g.WordsPerRow() * g.Height())
	g.Track(ws)

	g.Set(0, 0, true)
	g.Set(65, 2, true)
	g.Set(3, 1, false) // already false: no change, no record
	got := ws.Sorted()
	if len(got) != 2 || got[0] != 0 || got[1] != 5 {
		t.Fatalf("tracked words = %v, want [0 5]", got)
	}

	ws.Clear()
	g.Set(0, 0, true) // idempotent: still no record
	if ws.Len() != 0 {
		t.Fatalf("idempotent Set recorded %v", ws.Sorted())
	}
	g.Set(0, 0, false) // clearing a set bit is a change
	if ws.Len() != 1 || !ws.Has(0) {
		t.Fatalf("clearing Set not recorded: %v", ws.Sorted())
	}

	c := g.Clone()
	ws.Clear()
	c.Set(1, 0, true) // clone must not feed the original's tracker
	if ws.Len() != 0 {
		t.Fatal("clone inherited the tracker")
	}
	g.Track(nil)
	g.Set(9, 0, true)
	if ws.Len() != 0 {
		t.Fatal("detached tracker still recorded")
	}
}
