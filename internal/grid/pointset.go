package grid

// PointSet is a mutable set of lattice points.
//
// The zero value is not ready to use; construct sets with NewPointSet or
// PointSetOf. All iteration-order-sensitive accessors return points in the
// canonical row-major order so results are deterministic.
type PointSet struct {
	m map[Point]struct{}
}

// NewPointSet returns an empty set.
func NewPointSet() *PointSet { return &PointSet{m: make(map[Point]struct{})} }

// NewPointSetCap returns an empty set with room preallocated for n
// points, for callers that know a size bound up front (flood fills,
// bulk conversions) and want to avoid incremental map growth.
func NewPointSetCap(n int) *PointSet { return &PointSet{m: make(map[Point]struct{}, n)} }

// PointSetOf returns a set holding the given points.
func PointSetOf(ps ...Point) *PointSet {
	s := &PointSet{m: make(map[Point]struct{}, len(ps))}
	for _, p := range ps {
		s.m[p] = struct{}{}
	}
	return s
}

// Add inserts p and reports whether it was newly added.
func (s *PointSet) Add(p Point) bool {
	if _, ok := s.m[p]; ok {
		return false
	}
	s.m[p] = struct{}{}
	return true
}

// AddAll inserts every point of ps.
func (s *PointSet) AddAll(ps ...Point) {
	for _, p := range ps {
		s.m[p] = struct{}{}
	}
}

// Remove deletes p and reports whether it was present.
func (s *PointSet) Remove(p Point) bool {
	if _, ok := s.m[p]; !ok {
		return false
	}
	delete(s.m, p)
	return true
}

// Has reports whether p is in the set.
func (s *PointSet) Has(p Point) bool {
	_, ok := s.m[p]
	return ok
}

// Len returns the number of points in the set.
func (s *PointSet) Len() int { return len(s.m) }

// Points returns the members in canonical row-major order.
func (s *PointSet) Points() []Point {
	out := make([]Point, 0, len(s.m))
	for p := range s.m {
		out = append(out, p)
	}
	SortPoints(out)
	return out
}

// Each calls fn for every member in unspecified order.
func (s *PointSet) Each(fn func(Point)) {
	for p := range s.m {
		fn(p)
	}
}

// Clone returns an independent copy of the set.
func (s *PointSet) Clone() *PointSet {
	c := &PointSet{m: make(map[Point]struct{}, len(s.m))}
	for p := range s.m {
		c.m[p] = struct{}{}
	}
	return c
}

// Union inserts every member of t into s and returns s.
func (s *PointSet) Union(t *PointSet) *PointSet {
	for p := range t.m {
		s.m[p] = struct{}{}
	}
	return s
}

// Subtract removes every member of t from s and returns s.
func (s *PointSet) Subtract(t *PointSet) *PointSet {
	for p := range t.m {
		delete(s.m, p)
	}
	return s
}

// Intersect removes from s every point not in t and returns s.
func (s *PointSet) Intersect(t *PointSet) *PointSet {
	for p := range s.m {
		if !t.Has(p) {
			delete(s.m, p)
		}
	}
	return s
}

// Equal reports whether s and t hold exactly the same points.
func (s *PointSet) Equal(t *PointSet) bool {
	if len(s.m) != len(t.m) {
		return false
	}
	for p := range s.m {
		if !t.Has(p) {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every member of s is also in t.
func (s *PointSet) SubsetOf(t *PointSet) bool {
	if len(s.m) > len(t.m) {
		return false
	}
	for p := range s.m {
		if !t.Has(p) {
			return false
		}
	}
	return true
}

// Bounds returns the bounding rectangle of the set (empty for an empty
// set).
func (s *PointSet) Bounds() Rect {
	r := Empty()
	for p := range s.m {
		r = r.Include(p)
	}
	return r
}

// Diameter returns the maximum L1 distance between two members, zero for
// sets with fewer than two points. For the axis-aligned sets used in this
// repository the diameter of the bounding rectangle equals the set
// diameter only when opposite bounding corners are occupied, so this
// method computes the exact pairwise maximum.
func (s *PointSet) Diameter() int {
	// The L1 diameter of any planar set is realized on the rotated
	// coordinates u=x+y, v=x-y: diam = max(maxU-minU, maxV-minV).
	first := true
	var minU, maxU, minV, maxV int
	for p := range s.m {
		u, v := p.X+p.Y, p.X-p.Y
		if first {
			minU, maxU, minV, maxV = u, u, v, v
			first = false
			continue
		}
		minU, maxU = min(minU, u), max(maxU, u)
		minV, maxV = min(minV, v), max(maxV, v)
	}
	if first {
		return 0
	}
	return max(maxU-minU, maxV-minV)
}
