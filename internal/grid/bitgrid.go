package grid

import (
	"fmt"
	"math/bits"
)

// BitGrid is a Width x Height boolean matrix packed 64 cells per uint64:
// row-major words, cell (x, y) at bit x%64 of word y*WordsPerRow()+x/64.
// It is the storage behind the word-parallel (SWAR) fixpoint engine,
// where one shift/AND/OR over a word advances 64 nodes at once.
//
// Invariant: the padding bits of each row's last word (lanes >= Width%64
// when Width is not a multiple of 64) are always zero. Every mutator
// maintains this, so word-level consumers may aggregate (popcount,
// compare, hash) raw words without masking.
type BitGrid struct {
	width, height, wpr int
	words              []uint64
	track              *WordSet
}

// NewBitGrid returns an all-false grid of the given dimensions.
func NewBitGrid(width, height int) *BitGrid {
	if width < 1 || height < 1 {
		panic(fmt.Sprintf("grid: BitGrid dimensions must be positive, got %dx%d", width, height))
	}
	wpr := (width + 63) / 64
	return &BitGrid{width: width, height: height, wpr: wpr, words: make([]uint64, wpr*height)}
}

// Width returns the number of columns.
func (g *BitGrid) Width() int { return g.width }

// Height returns the number of rows.
func (g *BitGrid) Height() int { return g.height }

// WordsPerRow returns the number of uint64 words backing one row.
func (g *BitGrid) WordsPerRow() int { return g.wpr }

// Words returns the raw backing words, row-major. Callers mutating them
// must preserve the padding-bits-zero invariant (see LastWordMask).
func (g *BitGrid) Words() []uint64 { return g.words }

// LastWordMask returns the mask of valid lanes in the last word of each
// row: all ones when Width is a multiple of 64, else the low Width%64
// bits.
func (g *BitGrid) LastWordMask() uint64 {
	if r := g.width % 64; r != 0 {
		return 1<<r - 1
	}
	return ^uint64(0)
}

// WordMask returns the valid-lane mask of word k of a row: full except
// for the row's last word.
func (g *BitGrid) WordMask(k int) uint64 {
	if k == g.wpr-1 {
		return g.LastWordMask()
	}
	return ^uint64(0)
}

func (g *BitGrid) check(x, y int) {
	if x < 0 || x >= g.width || y < 0 || y >= g.height {
		panic(fmt.Sprintf("grid: (%d,%d) outside %dx%d BitGrid", x, y, g.width, g.height))
	}
}

// Get returns cell (x, y).
func (g *BitGrid) Get(x, y int) bool {
	g.check(x, y)
	return g.words[y*g.wpr+x/64]>>(uint(x)%64)&1 != 0
}

// Set assigns cell (x, y).
func (g *BitGrid) Set(x, y int, v bool) {
	g.check(x, y)
	wi := y*g.wpr + x/64
	bit := uint64(1) << (uint(x) % 64)
	old := g.words[wi]
	if v {
		g.words[wi] = old | bit
	} else {
		g.words[wi] = old &^ bit
	}
	if g.track != nil && g.words[wi] != old {
		g.track.Add(wi)
	}
}

// Track attaches a dirty-word set: every Set that actually changes a
// bit records its word index there (word-level mutations via Words()
// bypass it). Pass nil to detach. The set must span at least
// WordsPerRow()*Height() indexes; the caller owns draining it.
func (g *BitGrid) Track(ws *WordSet) { g.track = ws }

// Fill sets every valid cell to v, keeping padding bits zero.
func (g *BitGrid) Fill(v bool) {
	var full uint64
	if v {
		full = ^uint64(0)
	}
	last := g.LastWordMask()
	for i := range g.words {
		if (i+1)%g.wpr == 0 {
			g.words[i] = full & last
		} else {
			g.words[i] = full
		}
	}
}

// SetBools loads a row-major []bool of length Width*Height (the label
// vector layout used by mesh.Topology.Index).
func (g *BitGrid) SetBools(vals []bool) {
	if len(vals) != g.width*g.height {
		panic(fmt.Sprintf("grid: SetBools got %d values, want %d", len(vals), g.width*g.height))
	}
	for i := range g.words {
		g.words[i] = 0
	}
	for i, v := range vals {
		if v {
			x, y := i%g.width, i/g.width
			g.words[y*g.wpr+x/64] |= 1 << (uint(x) % 64)
		}
	}
}

// Bools appends the grid as a row-major []bool to dst (pass nil to
// allocate) and returns the result, inverse of SetBools.
func (g *BitGrid) Bools(dst []bool) []bool {
	n := g.width * g.height
	if cap(dst) < n {
		dst = make([]bool, n)
	}
	dst = dst[:n]
	for y := 0; y < g.height; y++ {
		base := y * g.wpr
		row := dst[y*g.width : (y+1)*g.width]
		for x := range row {
			row[x] = g.words[base+x/64]>>(uint(x)%64)&1 != 0
		}
	}
	return dst
}

// Count returns the number of true cells.
func (g *BitGrid) Count() int {
	n := 0
	for _, w := range g.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Clone returns an independent copy. An attached dirty-word tracker is
// not inherited.
func (g *BitGrid) Clone() *BitGrid {
	c := *g
	c.words = append([]uint64(nil), g.words...)
	c.track = nil
	return &c
}

// Equal reports whether the grids have identical dimensions and cells.
func (g *BitGrid) Equal(o *BitGrid) bool {
	if g.width != o.width || g.height != o.height {
		return false
	}
	for i, w := range g.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}
