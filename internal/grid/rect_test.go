package grid

import (
	"testing"
	"testing/quick"
)

func TestEmptyRect(t *testing.T) {
	e := Empty()
	if !e.IsEmpty() {
		t.Fatal("Empty() must be empty")
	}
	if e.Width() != 0 || e.Height() != 0 || e.Area() != 0 || e.Diameter() != 0 {
		t.Fatal("empty rect must have zero measures")
	}
	if e.Contains(Pt(0, 0)) {
		t.Fatal("empty rect contains nothing")
	}
	if got := e.Points(); got != nil {
		t.Fatalf("empty rect Points = %v", got)
	}
}

func TestRectFromPoints(t *testing.T) {
	if _, ok := RectFromPoints(nil); ok {
		t.Fatal("RectFromPoints(nil) must report not-ok")
	}
	r, ok := RectFromPoints([]Point{{3, 1}, {1, 2}, {2, 5}})
	if !ok {
		t.Fatal("expected ok")
	}
	want := Rect{1, 1, 3, 5}
	if r != want {
		t.Fatalf("RectFromPoints = %v, want %v", r, want)
	}
}

func TestRectMeasures(t *testing.T) {
	r := Rect{2, 3, 5, 4} // 4 wide, 2 tall
	if r.Width() != 4 || r.Height() != 2 || r.Area() != 8 {
		t.Fatalf("measures wrong: w=%d h=%d a=%d", r.Width(), r.Height(), r.Area())
	}
	if r.Diameter() != 4 {
		t.Fatalf("Diameter = %d, want 4", r.Diameter())
	}
	single := Rect{7, 7, 7, 7}
	if single.Diameter() != 0 || single.Area() != 1 {
		t.Fatal("single-point rect measures wrong")
	}
}

func TestRectContains(t *testing.T) {
	r := Rect{1, 1, 3, 3}
	for _, p := range []Point{{1, 1}, {3, 3}, {2, 2}, {1, 3}} {
		if !r.Contains(p) {
			t.Errorf("%v should contain %v", r, p)
		}
	}
	for _, p := range []Point{{0, 1}, {4, 2}, {2, 0}, {2, 4}} {
		if r.Contains(p) {
			t.Errorf("%v should not contain %v", r, p)
		}
	}
}

func TestRectUnionIntersect(t *testing.T) {
	a := Rect{0, 0, 2, 2}
	b := Rect{2, 1, 4, 5}
	if got, want := a.Union(b), (Rect{0, 0, 4, 5}); got != want {
		t.Fatalf("Union = %v, want %v", got, want)
	}
	if got, want := a.Intersect(b), (Rect{2, 1, 2, 2}); got != want {
		t.Fatalf("Intersect = %v, want %v", got, want)
	}
	if !a.Overlaps(b) {
		t.Fatal("a and b overlap")
	}
	c := Rect{10, 10, 11, 11}
	if a.Overlaps(c) {
		t.Fatal("a and c must not overlap")
	}
	if got := a.Intersect(c); !got.IsEmpty() {
		t.Fatalf("disjoint Intersect = %v, want empty", got)
	}
	if got := Empty().Union(a); got != a {
		t.Fatalf("Union with empty = %v", got)
	}
}

func TestRectDist(t *testing.T) {
	tests := []struct {
		a, b Rect
		want int
	}{
		{Rect{0, 0, 2, 2}, Rect{0, 0, 2, 2}, 0},
		{Rect{0, 0, 2, 2}, Rect{2, 2, 4, 4}, 0},  // overlapping corner
		{Rect{0, 0, 2, 2}, Rect{3, 0, 4, 2}, 1},  // adjacent columns
		{Rect{0, 0, 2, 2}, Rect{4, 0, 5, 2}, 2},  // one column gap
		{Rect{0, 0, 2, 2}, Rect{4, 4, 6, 6}, 4},  // diagonal gap: 2+2
		{Rect{0, 0, 0, 0}, Rect{5, 7, 5, 7}, 12}, // two points
	}
	for _, tt := range tests {
		if got := tt.a.Dist(tt.b); got != tt.want {
			t.Errorf("Dist(%v,%v) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
		if got := tt.b.Dist(tt.a); got != tt.want {
			t.Errorf("Dist symmetry broken for %v,%v", tt.a, tt.b)
		}
	}
}

// Rect.Dist must equal the minimum pairwise point distance.
func TestRectDistMatchesPointwise(t *testing.T) {
	f := func(ax, ay, aw, ah, bx, by, bw, bh uint8) bool {
		a := Rect{int(ax % 8), int(ay % 8), int(ax%8) + int(aw%4), int(ay%8) + int(ah%4)}
		b := Rect{int(bx % 8), int(by % 8), int(bx%8) + int(bw%4), int(by%8) + int(bh%4)}
		want := 1 << 30
		for _, p := range a.Points() {
			for _, q := range b.Points() {
				if d := p.Dist(q); d < want {
					want = d
				}
			}
		}
		return a.Dist(b) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRectPointsAndCorners(t *testing.T) {
	r := Rect{1, 1, 2, 3}
	ps := r.Points()
	if len(ps) != r.Area() {
		t.Fatalf("Points len = %d, want %d", len(ps), r.Area())
	}
	for i := 1; i < len(ps); i++ {
		if ps[i].Less(ps[i-1]) {
			t.Fatal("Points not in canonical order")
		}
	}
	cs := r.Corners()
	want := [4]Point{{1, 1}, {2, 1}, {1, 3}, {2, 3}}
	if cs != want {
		t.Fatalf("Corners = %v, want %v", cs, want)
	}
}

func TestRectExpandInclude(t *testing.T) {
	r := Rect{2, 2, 3, 3}
	if got, want := r.Expand(2), (Rect{0, 0, 5, 5}); got != want {
		t.Fatalf("Expand = %v, want %v", got, want)
	}
	if !Empty().Expand(3).IsEmpty() {
		t.Fatal("expanding empty must stay empty")
	}
	if got, want := Empty().Include(Pt(4, 5)), (Rect{4, 5, 4, 5}); got != want {
		t.Fatalf("Include on empty = %v, want %v", got, want)
	}
	if got, want := r.Include(Pt(0, 7)), (Rect{0, 2, 3, 7}); got != want {
		t.Fatalf("Include = %v, want %v", got, want)
	}
}

func TestContainsRect(t *testing.T) {
	outer := Rect{0, 0, 9, 9}
	if !outer.ContainsRect(Rect{1, 1, 8, 8}) || !outer.ContainsRect(outer) {
		t.Fatal("ContainsRect false negative")
	}
	if outer.ContainsRect(Rect{1, 1, 10, 8}) {
		t.Fatal("ContainsRect false positive")
	}
	if !outer.ContainsRect(Empty()) {
		t.Fatal("every rect contains the empty rect")
	}
}

func TestRectString(t *testing.T) {
	if s := (Rect{1, 2, 3, 4}).String(); s != "[1..3]x[2..4]" {
		t.Fatalf("String = %q", s)
	}
	if s := Empty().String(); s != "[empty]" {
		t.Fatalf("empty String = %q", s)
	}
}
