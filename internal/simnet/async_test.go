package simnet

import (
	"math/rand"
	"testing"

	"ocpmesh/internal/grid"
	"ocpmesh/internal/mesh"
)

// For monotone rules the fixpoint is schedule-independent: random
// asynchronous (chaotic) iteration reaches exactly the synchronous
// labels — the paper's lock-step assumption only simplifies the round
// accounting, it is not needed for correctness.
func TestAsyncMatchesSync(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 30; trial++ {
		kind := mesh.Mesh2D
		if trial%3 == 0 {
			kind = mesh.Torus2D
		}
		topo := mesh.MustNew(4+rng.Intn(7), 4+rng.Intn(7), kind)
		faults := grid.NewPointSet()
		for i := 0; i < rng.Intn(topo.Size()/3); i++ {
			faults.Add(topo.PointAt(rng.Intn(topo.Size())))
		}
		env, err := NewEnv(topo, faults, nil)
		if err != nil {
			t.Fatal(err)
		}
		rule := hopRule{cap: 500}
		sync, err := RunSequentialGeneric[int](env, rule, GenericOptions[int]{})
		if err != nil {
			t.Fatal(err)
		}
		for rep := 0; rep < 3; rep++ { // several random schedules
			labels, steps, err := RunAsyncGeneric[int](env, rule,
				rand.New(rand.NewSource(int64(trial*10+rep))), 0)
			if err != nil {
				t.Fatal(err)
			}
			for i := range labels {
				if labels[i] != sync.Labels[i] {
					t.Fatalf("trial %d rep %d: async label at %v differs: %d vs %d",
						trial, rep, topo.PointAt(i), labels[i], sync.Labels[i])
				}
			}
			if faults.Len() > 0 && steps == 0 && sync.Rounds > 0 {
				t.Fatalf("trial %d: async converged without any update", trial)
			}
		}
	}
}

func TestAsyncBooleanRules(t *testing.T) {
	// The paper's spread-style boolean rule converges identically too.
	rng := rand.New(rand.NewSource(102))
	topo := mesh.MustNew(9, 9, mesh.Mesh2D)
	faults := grid.PointSetOf(grid.Pt(2, 2), grid.Pt(6, 6), grid.Pt(6, 7))
	env, err := NewEnv(topo, faults, nil)
	if err != nil {
		t.Fatal(err)
	}
	sync, err := Sequential().Run(env, spreadRule{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	labels, _, err := RunAsyncGeneric[bool](env, spreadRule{}, rng, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range labels {
		if labels[i] != sync.Labels[i] {
			t.Fatalf("async boolean label mismatch at %v", topo.PointAt(i))
		}
	}
}

func TestAsyncAllFaulty(t *testing.T) {
	topo := mesh.MustNew(3, 3, mesh.Mesh2D)
	env, err := NewEnv(topo, grid.PointSetOf(topo.Points()...), nil)
	if err != nil {
		t.Fatal(err)
	}
	labels, steps, err := RunAsyncGeneric[bool](env, spreadRule{}, rand.New(rand.NewSource(1)), 0)
	if err != nil || steps != 0 {
		t.Fatalf("no participants: steps=%d err=%v", steps, err)
	}
	for _, l := range labels {
		if !l {
			t.Fatal("faulty nodes carry FaultyLabel")
		}
	}
}

func TestAsyncMaxSteps(t *testing.T) {
	topo := mesh.MustNew(6, 6, mesh.Mesh2D)
	env, err := NewEnv(topo, grid.PointSetOf(grid.Pt(0, 0)), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := RunAsyncGeneric[bool](env, spreadRule{}, rand.New(rand.NewSource(1)), 3); err == nil {
		t.Fatal("tiny step budget must trip")
	}
}
