package simnet

import (
	"fmt"
	"math/bits"
	"time"
)

// fusedTile is one worker's private state for the round-fused bitset
// engine: an extended copy of its owned rows plus a k-deep halo on each
// interior edge, advanced k sub-rounds per superstep without touching
// shared planes. Halo rows are recomputed redundantly — the kernel is
// deterministic, so the redundant values equal the owning tile's — with
// the valid row range shrinking by one per sub-round at each interior
// edge, which is exactly the light cone of information that could have
// arrived from outside the buffer. Owned rows sit k rows inside every
// interior edge and therefore stay exact through all k sub-rounds.
//
// On a torus the extended region is laid out linearly (globalRow wraps
// the indices), so private stepping never row-wraps; fusedDepth clamps
// k so the region cannot alias itself. Mesh edges at the machine
// boundary do not shrink — the ghost row is a constant, not a light
// cone.
type fusedTile struct {
	p *bitPlanes
	k int

	elo          int // global row of extended row 0
	rows         int // extended row count
	ownLo, ownHi int // owned rows in extended coordinates
	shrinkLo     bool
	shrinkHi     bool

	cur, next            []uint64
	changed, nextChanged []bool

	// flip accumulates, per owned word, whether any sub-round of the
	// current superstep flipped it; copyOut publishes it to superChanged
	// and resets it. counts[j] is the owned-lane flip count of sub-round
	// j — the coordinator sums these across tiles to replay the exact
	// per-round totals of the unfused engine.
	flip   []bool
	counts []int64

	// superChanged is shared by all tiles (one flag per global word):
	// written by owners during copyOut, read by everyone during the next
	// superstep's copyIn to refresh stale halo words. The two pool
	// barriers per superstep order the accesses.
	superChanged []bool
}

func newFusedTile(p *bitPlanes, lo, hi, k int, superChanged []bool) *fusedTile {
	t := &fusedTile{p: p, k: k, superChanged: superChanged}
	if p.torus {
		t.elo = ((lo-k)%p.h + p.h) % p.h
		t.rows = (hi - lo) + 2*k
		t.shrinkLo, t.shrinkHi = true, true
		t.ownLo, t.ownHi = k, k+(hi-lo)
	} else {
		elo, ehi := lo-k, hi+k
		if elo < 0 {
			elo = 0
		}
		if ehi > p.h {
			ehi = p.h
		}
		t.elo = elo
		t.rows = ehi - elo
		t.shrinkLo, t.shrinkHi = elo > 0, ehi < p.h
		t.ownLo, t.ownHi = lo-elo, hi-elo
	}
	n := t.rows * p.wpr
	t.cur = make([]uint64, n)
	t.next = make([]uint64, n)
	t.changed = make([]bool, n)
	t.nextChanged = make([]bool, n)
	t.flip = make([]bool, n)
	t.counts = make([]int64, k+1)
	// Full initial copy: both planes (the skip optimization relies on
	// cur == next for every word not flagged changed) and the flags.
	for pr := 0; pr < t.rows; pr++ {
		g, lb := t.globalRow(pr)*p.wpr, pr*p.wpr
		copy(t.cur[lb:lb+p.wpr], p.cur[g:g+p.wpr])
		copy(t.next[lb:lb+p.wpr], p.cur[g:g+p.wpr])
		copy(t.changed[lb:lb+p.wpr], p.changed[g:g+p.wpr])
	}
	return t
}

func (t *fusedTile) globalRow(pr int) int {
	g := t.elo + pr
	if t.p.torus && g >= t.p.h {
		g -= t.p.h
	}
	return g
}

// copyIn refreshes the halo before a superstep: values only where the
// owner flipped the word last superstep (anywhere our private copy
// diverges, the owner flipped — we compute identical flips while a row
// is valid and rows beyond validity only go stale if the owner flipped
// them), flags always (they mean "flipped in the last global round" and
// our halo fringe holds stale flags past its validity horizon).
func (t *fusedTile) copyIn() {
	p := t.p
	for pr := 0; pr < t.rows; pr++ {
		if pr == t.ownLo {
			pr = t.ownHi - 1
			continue
		}
		gb, lb := t.globalRow(pr)*p.wpr, pr*p.wpr
		for kk := 0; kk < p.wpr; kk++ {
			if t.superChanged[gb+kk] {
				v := p.cur[gb+kk]
				t.cur[lb+kk] = v
				t.next[lb+kk] = v
			}
			t.changed[lb+kk] = p.changed[gb+kk]
		}
	}
}

// copyOut publishes the owned rows after a superstep: values and
// superChanged flags for words some sub-round flipped, plus the
// last-sub-round changed flags that seed the next superstep's activity
// checks. Owned row ranges are disjoint across tiles.
func (t *fusedTile) copyOut() {
	p := t.p
	for pr := t.ownLo; pr < t.ownHi; pr++ {
		gb, lb := t.globalRow(pr)*p.wpr, pr*p.wpr
		for kk := 0; kk < p.wpr; kk++ {
			f := t.flip[lb+kk]
			t.superChanged[gb+kk] = f
			if f {
				p.cur[gb+kk] = t.cur[lb+kk]
				t.flip[lb+kk] = false
			}
			p.changed[gb+kk] = t.changed[lb+kk]
		}
	}
}

// wordActive is bitPlanes.wordActive over the private buffer. Row wrap
// never applies: on a torus the extended region is linear by
// construction, and on a mesh the boundary rows see ghosts.
func (t *fusedTile) wordActive(pr, kk int) bool {
	p := t.p
	base := pr * p.wpr
	if t.changed[base+kk] {
		return true
	}
	if kk > 0 && t.changed[base+kk-1] {
		return true
	}
	if kk < p.wpr-1 && t.changed[base+kk+1] {
		return true
	}
	if p.torus && p.wpr > 1 && (kk == 0 && t.changed[base+p.wpr-1] || kk == p.wpr-1 && t.changed[base]) {
		return true
	}
	if pr > 0 && t.changed[base-p.wpr+kk] {
		return true
	}
	if pr < t.rows-1 && t.changed[base+p.wpr+kk] {
		return true
	}
	return false
}

// stepSub advances the private buffer one sub-round (1-based j within
// the superstep), writing the rows still inside the validity cone. It
// returns the owned-lane flip count (the sub-round's contribution to
// the global round total), whether any word in the buffer flipped
// (false ends the superstep early: a buffer-wide fixpoint at sub-round
// j forces zero flips at every later sub-round of the superstep), and
// the words evaluated.
func (t *fusedTile) stepSub(wr WordRule, j int) (owned int, any bool, words int) {
	p := t.p
	last := p.wpr - 1
	cl, ch := 0, t.rows
	if t.shrinkLo {
		cl = j
	}
	if t.shrinkHi {
		ch = t.rows - j
	}
	r32 := p.round + int32(j)
	for pr := cl; pr < ch; pr++ {
		base := pr * p.wpr
		// Rows feeding the south/north reads; -1 marks the mesh ghost
		// row (shrink edges never reach the buffer boundary, so pr 0 /
		// rows-1 here is always a machine boundary).
		southBase, northBase := base-p.wpr, base+p.wpr
		if pr == 0 {
			southBase = -1
		}
		if pr == t.rows-1 {
			northBase = -1
		}
		carryW, carryE := p.ghostBit, p.ghostBit
		if p.torus {
			carryW = t.cur[base+last] >> p.lastLane & 1
			carryE = t.cur[base] & 1
		}
		g := t.globalRow(pr)
		gbase := g * p.wpr
		isOwned := pr >= t.ownLo && pr < t.ownHi
		for kk := 0; kk <= last; kk++ {
			wi := base + kk
			t.nextChanged[wi] = false
			if !t.wordActive(pr, kk) {
				continue
			}
			words++
			c := t.cur[wi]
			west := c << 1
			if kk > 0 {
				west |= t.cur[wi-1] >> 63
			} else {
				west |= carryW
			}
			east := c >> 1
			if kk < last {
				east |= t.cur[wi+1] << 63
			} else {
				east |= carryE << p.lastLane
			}
			south, north := p.ghost, p.ghost
			if southBase >= 0 {
				south = t.cur[southBase+kk]
			}
			if northBase >= 0 {
				north = t.cur[northBase+kk]
			}
			nxt := wr.StepWord(c, west, east, south, north)&p.live[gbase+kk] | p.fixed[gbase+kk]
			t.next[wi] = nxt
			if nxt != c {
				any = true
				t.nextChanged[wi] = true
				// Count and stamp owned lanes only: every global word has
				// exactly one owner, so the summed counts are exact and
				// redundant halo flips never race on the tracker.
				if isOwned {
					owned += bits.OnesCount64(nxt ^ c)
					t.flip[wi] = true
					if p.tr != nil {
						x := nxt ^ c
						nodeBase := g*p.w + kk*64
						for x != 0 {
							p.tr[nodeBase+bits.TrailingZeros64(x)] = r32
							x &= x - 1
						}
					}
				}
			}
		}
	}
	return owned, any, words
}

func (t *fusedTile) swapPriv() {
	t.cur, t.next = t.next, t.cur
	t.changed, t.nextChanged = t.nextChanged, t.changed
}

// runSuper executes one superstep: refresh the halo, then up to k
// sub-rounds on the private buffer. Returns the words evaluated.
func (t *fusedTile) runSuper(wr WordRule) int {
	t.copyIn()
	for j := range t.counts {
		t.counts[j] = 0
	}
	words := 0
	for j := 1; j <= t.k; j++ {
		owned, any, w := t.stepSub(wr, j)
		t.counts[j] = int64(owned)
		words += w
		t.swapPriv()
		if !any {
			break
		}
	}
	return words
}

// runBitsetFused is the k >= 2 multi-tile round loop of
// RunBitsetFusedGeneric: two pool barriers per superstep (compute, then
// publish), with the coordinator replaying the per-sub-round owned flip
// totals as the exact round sequence of the unfused engine.
func runBitsetFused(rule GenericRule[bool], wr WordRule, opt GenericOptions[bool], p *bitPlanes, scratch []bool,
	tiles [][2]int, k int, pool *WorkerPool, busyNS []int64, finishObs func(), ro roundObs, maxRounds int) (*GenericResult[bool], error) {
	rec := opt.Recorder
	pc := opt.Costs
	nTiles := len(tiles)
	superChanged := make([]bool, len(p.cur))
	fts := make([]*fusedTile, nTiles)
	for i, tl := range tiles {
		fts[i] = newFusedTile(p, tl[0], tl[1], k, superChanged)
	}
	jobsA := make([]func(), nTiles)
	jobsB := make([]func(), nTiles)
	for i := range fts {
		i, ft := i, fts[i]
		jobsA[i] = func() {
			var start time.Time
			if rec != nil {
				start = rec.Now()
			}
			words := ft.runSuper(wr)
			pc.AddWords(int64(words))
			if rec != nil {
				busyNS[i] += rec.Now().Sub(start).Nanoseconds()
			}
		}
		jobsB[i] = ft.copyOut
	}

	rounds := 0
	for {
		// Workers stamp tracker entries as p.round + sub-round; the
		// barrier channel send orders this write before their reads.
		p.round = int32(rounds)
		pool.Run(jobsA)
		pool.Run(jobsB)
		for j := 1; j <= k; j++ {
			total := 0
			for _, ft := range fts {
				total += int(ft.counts[j])
			}
			if total == 0 {
				// First zero-flip round: the global fixpoint. Later
				// sub-rounds of this superstep flipped nothing either
				// (each tile's counts stay zero after its buffer
				// settles), so the published planes are the fixpoint.
				finishObs()
				return &GenericResult[bool]{Labels: p.unpack(scratch), Rounds: rounds}, nil
			}
			rounds++
			ro.observe(rounds, total)
			if rounds > maxRounds {
				finishObs()
				return nil, fmt.Errorf("simnet: rule %q did not stabilize within %d rounds (non-monotone rule?)",
					rule.Name(), maxRounds)
			}
		}
	}
}
