package simnet

import "fmt"

// WorkerPool is a fixed-size pool of worker goroutines shared across
// engine invocations. The tiled engines historically spawned a fresh
// goroutine set per run and tore it down with an explicit stop fan-out
// that error paths skipped, leaking workers; a WorkerPool is created
// once (per formation, or per incremental Field for its lifetime of
// deltas), passed in via Options.Pool / GenericOptions.Pool, and closed
// exactly once by its owner — engines that receive one never spawn.
//
// The pool is a plain jobs/done channel pair: Run dispatches a batch and
// blocks until every job returned, which doubles as the engines' round
// barrier. Channel operations give the usual happens-before edges, so a
// coordinator mutating shared state between Run calls needs no further
// synchronization. Run is not safe for concurrent use of the same pool;
// the engines are strictly phase-sequential, which is the intended use.
type WorkerPool struct {
	jobs chan func()
	done chan struct{}
	size int
}

// NewWorkerPool starts n worker goroutines (n >= 1) and returns the
// pool. Close must be called to release them.
func NewWorkerPool(n int) *WorkerPool {
	if n < 1 {
		n = 1
	}
	p := &WorkerPool{
		jobs: make(chan func(), n),
		done: make(chan struct{}, n),
		size: n,
	}
	for i := 0; i < n; i++ {
		go func() {
			for f := range p.jobs {
				f()
				p.done <- struct{}{}
			}
		}()
	}
	return p
}

// Size returns the worker count.
func (p *WorkerPool) Size() int { return p.size }

// Run dispatches the jobs to the workers and blocks until all have
// completed — a full barrier. len(fs) must not exceed Size (both
// channels are sized to the pool, so larger batches could deadlock);
// engines size their tile count to the pool they use.
func (p *WorkerPool) Run(fs []func()) {
	if len(fs) > p.size {
		panic(fmt.Sprintf("simnet: WorkerPool.Run got %d jobs for %d workers", len(fs), p.size))
	}
	for _, f := range fs {
		p.jobs <- f
	}
	for range fs {
		<-p.done
	}
}

// Close stops the workers. The pool must be idle (no Run in flight);
// Run must not be called after Close.
func (p *WorkerPool) Close() { close(p.jobs) }

// acquirePool returns the pool an engine invocation should fan out
// over: the caller-provided shared pool when it can host n concurrent
// jobs, else a private pool. The returned release func must run on
// every exit path (defer it): it closes a private pool — fixing the
// historical worker leak on error returns — and is a no-op for a
// shared one, whose owner closes it.
func acquirePool(shared *WorkerPool, n int) (pool *WorkerPool, release func()) {
	if shared != nil && shared.Size() >= n {
		return shared, func() {}
	}
	pool = NewWorkerPool(n)
	return pool, pool.Close
}
