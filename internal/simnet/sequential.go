package simnet

// SeqEngine computes the synchronous fixpoint with a double-buffered
// sequential sweep: every round reads the previous round's labels only,
// exactly like the lock-step distributed execution, so its results
// (labels and round counts) are identical to ChannelEngine's.
type SeqEngine struct{}

// Sequential returns the sequential engine.
func Sequential() Engine { return SeqEngine{} }

// Name implements Engine.
func (SeqEngine) Name() string { return "sequential" }

// Run implements Engine.
func (SeqEngine) Run(env *Env, rule Rule, opt Options) (*Result, error) {
	res, err := RunSequentialGeneric[bool](env, rule, GenericOptions[bool]{
		MaxRounds: opt.MaxRounds, OnRound: opt.OnRound,
		Recorder: opt.Recorder, Phase: opt.Phase, Costs: opt.Costs,
	})
	if err != nil {
		return nil, err
	}
	return &Result{Labels: res.Labels, Rounds: res.Rounds}, nil
}
