package simnet

import (
	"math/rand"
	"testing"

	"ocpmesh/internal/grid"
	"ocpmesh/internal/mesh"
	"ocpmesh/internal/obs"
)

// frontierFullSeed returns every nonfaulty node index, i.e. a frontier
// covering the whole machine.
func frontierFullSeed(env *Env) []int {
	var seed []int
	for _, p := range env.Topo.Points() {
		if !env.Faulty.Has(p) {
			seed = append(seed, env.Topo.Index(p))
		}
	}
	return seed
}

// TestFrontierAgreesWithSequential pins the frontier engine to the
// sequential engine: seeded with the full machine from initial labels it
// must reach the same fixpoint, and seeded with just a perturbation it
// must update an existing fixpoint to the perturbed one bit for bit.
func TestFrontierAgreesWithSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 30; trial++ {
		topo := mesh.MustNew(8+rng.Intn(10), 8+rng.Intn(10), mesh.Mesh2D)
		faults := grid.NewPointSet()
		for i := 0; i < 5+rng.Intn(10); i++ {
			faults.Add(grid.Pt(rng.Intn(topo.Width()), rng.Intn(topo.Height())))
		}
		env, err := NewEnv(topo, faults, nil)
		if err != nil {
			t.Fatal(err)
		}
		rule := testMajorityRule{}

		want, err := Sequential().Run(env, rule, Options{})
		if err != nil {
			t.Fatal(err)
		}

		// Full-seed frontier run from initial labels.
		labels, _ := initGenericLabels[bool](env, rule)
		fr, err := RunFrontierGeneric[bool](env, rule, labels, frontierFullSeed(env), GenericOptions[bool]{})
		if err != nil {
			t.Fatal(err)
		}
		for i := range labels {
			if labels[i] != want.Labels[i] {
				t.Fatalf("trial %d: full-seed frontier label %d = %t, want %t", trial, i, labels[i], want.Labels[i])
			}
		}
		if len(fr.Changed) == 0 && faults.Len() > 0 && countTrue(want.Labels) > faults.Len() {
			t.Fatalf("trial %d: frontier reported no changes", trial)
		}

		// Perturbation: add one more fault, seed only its neighborhood.
		p := grid.Pt(rng.Intn(topo.Width()), rng.Intn(topo.Height()))
		if faults.Has(p) {
			continue
		}
		faults2 := faults.Clone()
		faults2.Add(p)
		env2, err := NewEnv(topo, faults2, nil)
		if err != nil {
			t.Fatal(err)
		}
		want2, err := Sequential().Run(env2, rule, Options{})
		if err != nil {
			t.Fatal(err)
		}
		labels[topo.Index(p)] = rule.FaultyLabel()
		var seed []int
		for _, q := range topo.Neighbors(p) {
			if !faults2.Has(q) {
				seed = append(seed, topo.Index(q))
			}
		}
		if _, err := RunFrontierGeneric[bool](env2, rule, labels, seed, GenericOptions[bool]{}); err != nil {
			t.Fatal(err)
		}
		for i := range labels {
			if labels[i] != want2.Labels[i] {
				t.Fatalf("trial %d: perturbed frontier label %d = %t, want %t", trial, i, labels[i], want2.Labels[i])
			}
		}
	}
}

func countTrue(labels []bool) int {
	n := 0
	for _, l := range labels {
		if l {
			n++
		}
	}
	return n
}

// testMajorityRule is a simple monotone rule (true once two neighbors are
// true) exercising the frontier machinery without depending on package
// status.
type testMajorityRule struct{}

func (testMajorityRule) Name() string               { return "test/majority" }
func (testMajorityRule) Init(*Env, grid.Point) bool { return false }
func (testMajorityRule) GhostLabel() bool           { return false }
func (testMajorityRule) FaultyLabel() bool          { return true }
func (testMajorityRule) Step(_ *Env, _ grid.Point, cur bool, nbr [4]bool) bool {
	if cur {
		return true
	}
	n := 0
	for _, v := range nbr {
		if v {
			n++
		}
	}
	return n >= 2
}

// TestFrontierValidation covers the error paths and the obs stream.
func TestFrontierValidation(t *testing.T) {
	topo := mesh.MustNew(5, 5, mesh.Mesh2D)
	env, err := NewEnv(topo, grid.PointSetOf(grid.Pt(2, 2)), nil)
	if err != nil {
		t.Fatal(err)
	}
	rule := testMajorityRule{}
	if _, err := RunFrontierGeneric[bool](env, rule, make([]bool, 3), nil, GenericOptions[bool]{}); err == nil {
		t.Fatal("short label vector must fail")
	}
	labels, _ := initGenericLabels[bool](env, rule)
	if _, err := RunFrontierGeneric[bool](env, rule, labels, []int{-1}, GenericOptions[bool]{}); err == nil {
		t.Fatal("out-of-range seed must fail")
	}

	sink := &obs.CollectSink{}
	rec := obs.NewRecorder(obs.NewTracer(sink), obs.NewRegistry())
	faults := grid.PointSetOf(grid.Pt(1, 2), grid.Pt(3, 2), grid.Pt(2, 1), grid.Pt(2, 3))
	env2, err := NewEnv(topo, faults, nil)
	if err != nil {
		t.Fatal(err)
	}
	labels2, _ := initGenericLabels[bool](env2, rule)
	fr, err := RunFrontierGeneric[bool](env2, rule, labels2, frontierFullSeed(env2), GenericOptions[bool]{
		Recorder: rec, Phase: "frontier-test",
	})
	if err != nil {
		t.Fatal(err)
	}
	rounds := sink.Filter(obs.ERound)
	if len(rounds) != fr.Rounds || fr.Rounds == 0 {
		t.Fatalf("got %d round events, want %d > 0", len(rounds), fr.Rounds)
	}
	for _, e := range rounds {
		if e.Phase != "frontier-test" || e.Changed == 0 || e.Msgs == 0 {
			t.Fatalf("bad round event: %+v", e)
		}
	}
}
