package simnet

import (
	"fmt"
	"math/rand"
)

// RunAsyncGeneric computes the fixpoint by chaotic iteration: single
// nodes update one at a time in a random order, each reading its
// neighbors' *current* labels. The paper assumes synchronous lock-step
// rounds "to simplify our discussion"; for monotone rules the least
// fixpoint is schedule-independent, so the asynchronous execution reaches
// exactly the labels of the synchronous engines — only the round/step
// accounting differs. TestAsyncMatchesSync pins this.
//
// Steps counts individual node updates that changed a label.
func RunAsyncGeneric[T comparable](env *Env, rule GenericRule[T], rng *rand.Rand, maxSteps int) (labels []T, steps int, err error) {
	labels, _ = initGenericLabels(env, rule)
	if maxSteps <= 0 {
		maxSteps = 4 * env.Topo.Size() * env.Topo.Size()
	}

	var active []int // node indices of nonfaulty nodes
	for _, p := range env.Topo.Points() {
		if !env.Faulty.Has(p) {
			active = append(active, env.Topo.Index(p))
		}
	}
	if len(active) == 0 {
		return labels, 0, nil
	}

	// Chaotic iteration with convergence detection: keep sweeping random
	// permutations until one full sweep changes nothing. A random
	// permutation guarantees fairness (every node updates in every
	// sweep), which chaotic-iteration convergence requires.
	for {
		rng.Shuffle(len(active), func(i, j int) { active[i], active[j] = active[j], active[i] })
		changed := false
		for _, i := range active {
			p := env.Topo.PointAt(i)
			next := rule.Step(env, p, labels[i], genericNeighborLabels(env, rule, labels, p))
			if next != labels[i] {
				labels[i] = next
				changed = true
				steps++
				if steps > maxSteps {
					return nil, steps, fmt.Errorf(
						"simnet: rule %q did not stabilize within %d async steps", rule.Name(), maxSteps)
				}
			}
		}
		if !changed {
			return labels, steps, nil
		}
	}
}
