package simnet

// ChannelEngine is the faithful distributed simulation: one goroutine per
// nonfaulty node, a buffered channel per incoming link, and a coordinator
// goroutine that releases rounds in lock step and detects global
// stabilization. See the package comment for the model and
// RunChannelsGeneric for the implementation.
type ChannelEngine struct{}

// Channels returns the goroutine-per-node engine.
func Channels() Engine { return ChannelEngine{} }

// Name implements Engine.
func (ChannelEngine) Name() string { return "channels" }

// Run implements Engine.
func (ChannelEngine) Run(env *Env, rule Rule, opt Options) (*Result, error) {
	res, err := RunChannelsGeneric[bool](env, rule, GenericOptions[bool]{
		MaxRounds: opt.MaxRounds, OnRound: opt.OnRound,
		Recorder: opt.Recorder, Phase: opt.Phase, Costs: opt.Costs,
	})
	if err != nil {
		return nil, err
	}
	return &Result{Labels: res.Labels, Rounds: res.Rounds}, nil
}
